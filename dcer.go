// Package dcer is a Go implementation of deep and collective entity
// resolution ("Deep and Collective Entity Resolution in Parallel",
// ICDE 2022): a fixpoint (chase) engine over MRLs — matching rules that
// may embed ML classifiers as predicates and correlate any number of
// relations — together with the HyPart hypercube partitioner and the
// parallelly scalable BSP engine DMatch.
//
// # Quick start
//
//	db := dcer.MustDatabase(
//	    dcer.MustSchema("Customers", "cno",
//	        dcer.Attr("cno", dcer.TypeString),
//	        dcer.Attr("name", dcer.TypeString),
//	        dcer.Attr("phone", dcer.TypeString)))
//	d := dcer.NewDataset(db)
//	d.MustAppend("Customers", dcer.S("c1"), dcer.S("Ford Smith"), dcer.S("555"))
//	d.MustAppend("Customers", dcer.S("c2"), dcer.S("F. Smith"), dcer.S("555"))
//
//	rules, _ := dcer.ParseRules(`
//	    r1: Customers(a) ^ Customers(b) ^ a.phone = b.phone ^
//	        nameabbrev(a.name, b.name) -> a.id = b.id`, db)
//	result, _ := dcer.Match(d, rules, dcer.DefaultClassifiers())
//	for _, class := range result.Classes() { ... }
//
// Use MatchParallel to run the same fixpoint with HyPart partitioning and
// n BSP workers. See examples/ for complete programs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the reproduced evaluation.
package dcer

import (
	"fmt"
	"sort"
	"strings"

	"dcer/internal/chase"
	"dcer/internal/discovery"
	"dcer/internal/dmatch"
	"dcer/internal/eval"
	"dcer/internal/mlpred"
	"dcer/internal/provenance"
	"dcer/internal/relation"
	"dcer/internal/rule"
	"dcer/internal/soft"
	"dcer/internal/telemetry"
)

// Core relational types.
type (
	// Schema is a relation schema with a designated id attribute.
	Schema = relation.Schema
	// Database is a database schema R = (R_1, ..., R_m).
	Database = relation.Database
	// Dataset is an instance D of a database schema.
	Dataset = relation.Dataset
	// Tuple is one row; its GID is the dataset-wide tuple id.
	Tuple = relation.Tuple
	// TID is a global tuple id.
	TID = relation.TID
	// Value is a typed attribute value.
	Value = relation.Value
	// Attribute is a named, typed column.
	Attribute = relation.Attribute
	// Type is an attribute domain.
	Type = relation.Type
)

// Attribute domains.
const (
	TypeString = relation.TypeString
	TypeInt    = relation.TypeInt
	TypeFloat  = relation.TypeFloat
)

// Value constructors.
var (
	// S makes a string value.
	S = relation.S
	// I makes an integer value.
	I = relation.I
	// F makes a float value.
	F = relation.F
)

// Attr builds an attribute.
func Attr(name string, t Type) Attribute { return Attribute{Name: name, Type: t} }

// Schema and dataset constructors.
var (
	// NewSchema builds a relation schema; idAttr names the designated id.
	NewSchema = relation.NewSchema
	// MustSchema is NewSchema that panics on error.
	MustSchema = relation.MustSchema
	// NewDatabase assembles a database schema.
	NewDatabase = relation.NewDatabase
	// MustDatabase is NewDatabase that panics on error.
	MustDatabase = relation.MustDatabase
	// NewDataset creates an empty dataset over a database schema.
	NewDataset = relation.NewDataset
	// LoadDir loads every *.csv in a directory as one relation each.
	LoadDir = relation.LoadDir
	// SaveDir writes each relation of a dataset as CSV.
	SaveDir = relation.SaveDir
)

// Rule types.
type (
	// Rule is an MRL φ = X → l.
	Rule = rule.Rule
)

// ParseRules parses MRLs in the rule DSL and resolves them against db.
// See the rule package documentation for the grammar.
func ParseRules(text string, db *Database) ([]*Rule, error) {
	return rule.ParseResolved(text, db)
}

// IsAcyclic tests hypergraph acyclicity of a rule's precondition
// (the tractable case of Theorem 3).
var IsAcyclic = rule.IsAcyclic

// Classifier machinery (embedded ML predicates).
type (
	// Classifier is an embedded ML predicate M(t[Ā], s[B̄]).
	Classifier = mlpred.Classifier
	// ClassifierRegistry resolves classifier names used in rules.
	ClassifierRegistry = mlpred.Registry
	// SimClassifier thresholds a string-similarity metric.
	SimClassifier = mlpred.SimClassifier
	// LogisticModel is a trainable logistic-regression pair classifier.
	LogisticModel = mlpred.LogisticModel
)

// DefaultClassifiers returns the stock classifier registry (jaccard05,
// jaro085, lev075/080, embed080/090, cosine07, nameabbrev, surnames06).
func DefaultClassifiers() *ClassifierRegistry { return mlpred.DefaultRegistry() }

// NewClassifierRegistry returns an empty registry.
func NewClassifierRegistry() *ClassifierRegistry { return mlpred.NewRegistry() }

// Engine types.
type (
	// Engine is the sequential Match engine (Deduce + IncDeduce).
	Engine = chase.Engine
	// EngineOptions configures the sequential engine.
	EngineOptions = chase.Options
	// Fact is one element of Γ: a match or a validated ML prediction.
	Fact = chase.Fact
	// Gamma is the deduced set Γ.
	Gamma = chase.Gamma
	// ParallelOptions configures the parallel DMatch run.
	ParallelOptions = dmatch.Options
	// ParallelResult is the outcome of a DMatch run.
	ParallelResult = dmatch.Result
)

// NewEngine prepares a sequential chase engine.
func NewEngine(d *Dataset, rules []*Rule, reg *ClassifierRegistry, opts EngineOptions) (*Engine, error) {
	return chase.New(d, rules, reg, opts)
}

// Match runs the sequential deep-and-collective ER fixpoint (algorithm
// Match of the paper) and returns the engine holding Γ.
func Match(d *Dataset, rules []*Rule, reg *ClassifierRegistry) (*Engine, error) {
	eng, err := chase.New(d, rules, reg, chase.Options{ShareIndexes: true})
	if err != nil {
		return nil, err
	}
	eng.Run()
	return eng, nil
}

// MatchParallel partitions d with HyPart and runs the parallel BSP engine
// DMatch (Section V-B of the paper).
func MatchParallel(d *Dataset, rules []*Rule, reg *ClassifierRegistry, opts ParallelOptions) (*ParallelResult, error) {
	return dmatch.Run(d, rules, reg, opts)
}

// Distributed execution: the same DMatch fixpoint with the master and
// workers as separate OS processes over TCP, speaking the compact binary
// protocol of internal/wire. Γ is identical to MatchParallel with the
// same options; see DESIGN.md §16.
type (
	// DistributedOptions configures the process side of MatchDistributed:
	// the listen address, the worker spawn hook, and failure-detection
	// timeouts.
	DistributedOptions = dmatch.DistOptions
	// DistributedWorkerOptions configures one MatchWorker process.
	DistributedWorkerOptions = dmatch.WorkerOptions
)

// ErrWorkerCrash is returned by MatchWorker when the fault-injection
// hook (DistributedWorkerOptions.CrashAfter) fires.
var ErrWorkerCrash = dmatch.ErrInjectedCrash

// MatchDistributed runs DMatch with n worker processes over TCP: the
// master partitions, spawns workers via dopts.Spawn, routes facts through
// the wire protocol, and recovers from worker failures by reassigning the
// dead worker's blocks to the survivors.
func MatchDistributed(d *Dataset, rules []*Rule, reg *ClassifierRegistry, opts ParallelOptions, dopts DistributedOptions) (*ParallelResult, error) {
	return dmatch.RunDistributed(d, rules, reg, opts, dopts)
}

// MatchWorker runs the worker half of a distributed DMatch: dial the
// master, prove the locally loaded inputs match via the handshake
// fingerprint, then serve Deduce/IncDeduce supersteps until the master
// says done.
func MatchWorker(addr string, d *Dataset, rules []*Rule, reg *ClassifierRegistry, wopts DistributedWorkerOptions) error {
	return dmatch.RunWorker(addr, d, rules, reg, wopts)
}

// Observability (the telemetry layer): a dependency-free metrics
// registry (counters, gauges, log-scale histograms), a bounded span
// tracer, and an opt-in HTTP exposition endpoint. Attach a registry via
// EngineOptions.Metrics or ParallelOptions.Metrics; a nil registry makes
// every instrument a no-op.
type (
	// TelemetryRegistry names, stores, and exposes metric series.
	TelemetryRegistry = telemetry.Registry
	// TelemetryServer is the live /metrics + /debug/dcer + pprof endpoint.
	TelemetryServer = telemetry.Server
	// TelemetryLabel is one key=value dimension of a series.
	TelemetryLabel = telemetry.Label
	// Logger is the leveled stderr logger of the command-line tools.
	Logger = telemetry.Logger
	// SuperstepTimeline is the BSP execution profile of a DMatch run
	// (ParallelResult.Timeline): per-worker busy/idle time, routing
	// time, message counts, and skew per superstep.
	SuperstepTimeline = dmatch.Timeline
)

var (
	// Telemetry is the process-wide default registry (what -telemetry
	// serves in the bundled commands).
	Telemetry = telemetry.Default
	// NewTelemetry creates a private registry.
	NewTelemetry = telemetry.NewRegistry
	// ServeTelemetry starts the exposition endpoint for a registry.
	ServeTelemetry = telemetry.Serve
)

// Provenance (the justification log): a bounded record of why each fact
// entered Γ, captured inside the production engines when
// EngineOptions.Provenance / ParallelOptions.Provenance is set. Proofs
// are extracted with Engine.Proof / ParallelResult.Proof or rendered via
// Explain / ExplainParallel / ExplainFromLog.
type (
	// ProvenanceLog is the bounded justification log of one engine (or,
	// via ParallelResult.Provenance, the merged cross-worker log).
	ProvenanceLog = provenance.Log
	// ProvenanceEntry is one recorded derivation: fact, rule, valuation,
	// prerequisite facts, ML outcomes, worker, and superstep.
	ProvenanceEntry = provenance.Entry
	// MLCheck is one ML predicate outcome a derivation relied on.
	MLCheck = provenance.MLCheck
)

// NewProvenanceLog creates a justification log bounded to limit entries
// (0 means the default bound, negative means unbounded), to pass as
// EngineOptions.Provenance.
var NewProvenanceLog = provenance.NewLog

// CanonicalClasses renders equivalence classes in a canonical textual form
// (ids sorted within each class, classes sorted by first id), so two runs
// can be compared byte for byte regardless of deduction order.
func CanonicalClasses(classes [][]TID) string {
	canon := make([][]TID, len(classes))
	for i, c := range classes {
		cc := append([]TID(nil), c...)
		sort.Slice(cc, func(a, b int) bool { return cc[a] < cc[b] })
		canon[i] = cc
	}
	sort.Slice(canon, func(a, b int) bool {
		if len(canon[a]) == 0 || len(canon[b]) == 0 {
			return len(canon[a]) < len(canon[b])
		}
		return canon[a][0] < canon[b][0]
	})
	var b strings.Builder
	for _, c := range canon {
		for i, id := range c {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", id)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Rule discovery (the paper's experimental setup, Section VI): mine MRLs
// from labeled pairs by adapting denial-constraint discovery.
type (
	// MinedRule is one discovered rule with its support and confidence.
	MinedRule = discovery.Mined
	// MineOptions tunes the rule miner.
	MineOptions = discovery.Options
	// MinerPair is a labeled example for the miner.
	MinerPair = discovery.LabeledPair
)

// MineRules discovers single-relation MRLs from labeled pairs.
func MineRules(d *Dataset, pairs []MinerPair, reg *ClassifierRegistry, opts MineOptions) ([]MinedRule, error) {
	return discovery.Mine(d, pairs, reg, opts)
}

// Soft-rule extension (the paper's future-work item): MRLs with
// confidences, chased under max-product semantics to match probabilities.
type (
	// SoftRule is an MRL with a confidence in (0, 1].
	SoftRule = soft.Rule
	// SoftResult holds the soft fixpoint scores.
	SoftResult = soft.Result
	// SoftScore is one scored match pair.
	SoftScore = soft.Score
)

// MatchSoft runs the probabilistic (soft-rule) chase; see the soft package
// for the semantics. epsilon 0 means the default convergence bound.
func MatchSoft(d *Dataset, rules []SoftRule, reg *ClassifierRegistry, epsilon float64) (*SoftResult, error) {
	return soft.Chase(d, rules, reg, epsilon)
}

// Evaluation helpers.
type (
	// Metrics holds precision / recall / F-measure.
	Metrics = eval.Metrics
	// Truth is a set of ground-truth duplicate pairs.
	Truth = eval.Truth
)

// Evaluation constructors.
var (
	// NewTruth builds a truth set from (original, duplicate) pairs.
	NewTruth = eval.NewTruth
	// EvaluateClasses scores equivalence classes against a truth set.
	EvaluateClasses = eval.EvaluateClasses
	// EvaluatePairs scores explicit predicted pairs against a truth set.
	EvaluatePairs = eval.EvaluatePairs
)
