module dcer

go 1.22
