package dcer_test

import (
	"strings"
	"testing"

	"dcer"
	"dcer/internal/datagen"
)

// TestExplainDeepMatch renders the proof of the paper's deep match
// (t1, t3): it must mention the prerequisite product and shop rules before
// concluding the customer match.
func TestExplainDeepMatch(t *testing.T) {
	d, l := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := dcer.Explain(d, rules, dcer.DefaultClassifiers(), l["t1"].GID, l["t3"].GID)
	if err != nil {
		t.Fatal(err)
	}
	if ex == nil {
		t.Fatal("no explanation for a true match")
	}
	text := ex.Render(d)
	for _, want := range []string{"phi2", "phi3", "phi4", "Customers(c1) = Customers(c3)"} {
		if !strings.Contains(text, want) {
			t.Errorf("explanation missing %q:\n%s", want, text)
		}
	}
	// The non-match (t1, t4) must yield no explanation.
	none, err := dcer.Explain(d, rules, dcer.DefaultClassifiers(), l["t1"].GID, l["t4"].GID)
	if err != nil {
		t.Fatal(err)
	}
	if none != nil {
		t.Error("explanation produced for a non-match")
	}
}
