package dcer_test

import (
	"errors"
	"strings"
	"testing"

	"dcer"
	"dcer/internal/datagen"
)

// TestExplainDeepMatch renders the proof of the paper's deep match
// (t1, t3): it must mention the prerequisite product and shop rules before
// concluding the customer match.
func TestExplainDeepMatch(t *testing.T) {
	d, l := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := dcer.Explain(d, rules, dcer.DefaultClassifiers(), l["t1"].GID, l["t3"].GID)
	if err != nil {
		t.Fatal(err)
	}
	if ex == nil {
		t.Fatal("no explanation for a true match")
	}
	text := ex.Render(d)
	for _, want := range []string{"phi2", "phi3", "phi4", "Customers(c1) = Customers(c3)"} {
		if !strings.Contains(text, want) {
			t.Errorf("explanation missing %q:\n%s", want, text)
		}
	}
	// The non-match (t1, t4) must yield the sentinel, not (nil, nil).
	none, err := dcer.Explain(d, rules, dcer.DefaultClassifiers(), l["t1"].GID, l["t4"].GID)
	if !errors.Is(err, dcer.ErrNoMatch) {
		t.Errorf("non-match: err = %v, want ErrNoMatch", err)
	}
	if none != nil {
		t.Error("explanation produced for a non-match")
	}
}

// TestExplainParallelDeepMatch extracts the same proof from a DMatch run:
// the derivation chain crosses workers, so the stitched log must supply
// it without falling back to the reference chase.
func TestExplainParallelDeepMatch(t *testing.T) {
	d, l := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := dcer.ExplainParallel(d, rules, dcer.DefaultClassifiers(),
		dcer.ParallelOptions{Workers: 2}, l["t1"].GID, l["t3"].GID)
	if err != nil {
		t.Fatal(err)
	}
	text := ex.Render(d)
	if !strings.Contains(text, "Customers(c1) = Customers(c3)") {
		t.Errorf("parallel explanation missing the target match:\n%s", text)
	}
	// Steps extracted from the production log carry their origin; the
	// NaiveChase fallback leaves it empty. The proof must not have come
	// from the fallback.
	for _, st := range ex.Steps {
		if st.Origin == "" {
			t.Fatalf("step without origin — proof fell back to the reference chase:\n%s", text)
		}
	}
	_, err = dcer.ExplainParallel(d, rules, dcer.DefaultClassifiers(),
		dcer.ParallelOptions{Workers: 2}, l["t1"].GID, l["t4"].GID)
	if !errors.Is(err, dcer.ErrNoMatch) {
		t.Errorf("parallel non-match: err = %v, want ErrNoMatch", err)
	}
}

// TestExplainFromLog reuses the log of a run the caller already executed:
// no chase is re-run, and a missing log yields the incompleteness
// sentinel rather than a silent nil.
func TestExplainFromLog(t *testing.T) {
	d, l := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	log := dcer.NewProvenanceLog(0)
	eng, err := dcer.NewEngine(d, rules, dcer.DefaultClassifiers(),
		dcer.EngineOptions{ShareIndexes: true, Provenance: log})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	ex, err := dcer.ExplainFromLog(log, d, l["t1"].GID, l["t3"].GID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Steps) == 0 {
		t.Fatal("empty proof from a recorded log")
	}
	if _, err := dcer.ExplainFromLog(nil, d, l["t1"].GID, l["t3"].GID); !errors.Is(err, dcer.ErrProvenanceIncomplete) {
		t.Errorf("nil log: err = %v, want ErrProvenanceIncomplete", err)
	}
}
