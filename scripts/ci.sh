#!/usr/bin/env bash
# CI entry point: static analysis, build, the short test suite, and the
# race-enabled run of the concurrent packages. The concurrent first pass
# of Deduce (internal/chase) and the parallel BSP supersteps
# (internal/dmatch) make the race detector mandatory for those packages.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -short ./..."
go test -short ./...

echo "== go test -race -short ./internal/chase ./internal/dmatch"
go test -race -short ./internal/chase ./internal/dmatch

echo "CI OK"
