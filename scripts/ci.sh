#!/usr/bin/env bash
# CI entry point: formatting and static analysis, build, the short test
# suite, the race-enabled run of the concurrent packages, a one-shot
# bench smoke, the telemetry/causal-trace/health smoke, a cmd/doctor
# probe of a held live process, and the benchdiff regression gate over
# the BENCH trajectory. The concurrent first pass of Deduce and the batched
# parallel drain (internal/chase), the parallel BSP supersteps
# (internal/dmatch), the justification log written from concurrent
# drains (internal/provenance), and the distributed master's sender and
# reader goroutines over the shared wire stats (internal/wire) make the
# race detector mandatory for those packages.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -short ./..."
go test -short ./...

echo "== go test -race -short ./internal/chase ./internal/dmatch ./internal/hypart ./internal/telemetry ./internal/provenance ./internal/health ./internal/wire"
go test -race -short ./internal/chase ./internal/dmatch ./internal/hypart ./internal/telemetry ./internal/provenance ./internal/health ./internal/wire

echo "== provenance equivalence (proof replay vs the reference verifier, all drain modes + DMatch w>=2)"
go test -short -run 'TestProofReplaysAgainstVerifier|TestDMatchProofEveryPair' ./internal/provenance

echo "== distribution equivalence guards (parallel Partition byte-identity + dedup-routing Gamma equality + distributed TCP Gamma equality and recovery)"
go test -short -count=1 -run 'TestPartitionParallelEquivalence' ./internal/hypart
go test -short -count=1 -run 'TestRoutingDedupGammaEquality|TestAdaptiveRebalance|TestDistributedEqualsInProcess|TestDistributedRecovery' ./internal/dmatch

echo "== distributed process smoke (2 real worker processes over TCP: -out CSV byte-identity vs in-process, then kill-one-worker recovery)"
dist_data=/tmp/dcer_ci_dist_data
rm -rf "$dist_data"
go run ./cmd/datagen -kind tpch -scale 0.05 -dup 0.4 -seed 7 -out "$dist_data"
go build -o /tmp/dcer_ci_dmatch ./cmd/dmatch
/tmp/dcer_ci_dmatch -data "$dist_data" -rules "$dist_data/rules.mrl" -workers 2 -out /tmp/dcer_ci_inproc.csv > /dev/null
/tmp/dcer_ci_dmatch -data "$dist_data" -rules "$dist_data/rules.mrl" -workers 2 -distributed -out /tmp/dcer_ci_dist.csv > /dev/null
diff /tmp/dcer_ci_inproc.csv /tmp/dcer_ci_dist.csv
# Kill worker 1 after its first delta: the master must reassign its
# blocks, rebuild the survivors over the wire, and still match the
# in-process Gamma byte for byte.
/tmp/dcer_ci_dmatch -data "$dist_data" -rules "$dist_data/rules.mrl" -workers 3 -out /tmp/dcer_ci_inproc3.csv > /dev/null
/tmp/dcer_ci_dmatch -data "$dist_data" -rules "$dist_data/rules.mrl" -workers 3 -distributed -crash-worker 1 -v \
    -out /tmp/dcer_ci_crash.csv > /dev/null 2> /tmp/dcer_ci_crash.log
diff /tmp/dcer_ci_inproc3.csv /tmp/dcer_ci_crash.csv
if ! grep -q "recoveries=1" /tmp/dcer_ci_crash.log; then
    echo "kill-one-worker run did not record a recovery:" >&2
    cat /tmp/dcer_ci_crash.log >&2
    exit 1
fi

echo "== plan equivalence guards (compiled plans vs interpreter: Gamma byte-identity across drain modes, DMatch, adaptive reorders; then racing the compiled path)"
go test -short -count=1 -run 'TestPlanGammaEquivalence|TestPlanDMatchEquivalence|TestPlanAdaptiveReorderEquivalence' ./internal/chase
go test -race -short -count=1 -run 'TestPlan' ./internal/chase

echo "== allocation-regression guards (index/cache probes, string metrics, saturated enumeration)"
go test -count=1 -run 'TestIndexProbeAllocs|TestMetricAllocs|TestCacheProbeAllocs|TestEnumerationAllocs' \
    ./internal/relation ./internal/mlpred ./internal/chase

echo "== storage equivalence guards (columnar parity + memory-bounded chase Gamma equality)"
go test -short -count=1 -run 'TestStorageParity|TestMemBudgetGammaEquivalence|TestDepStoreByteBudget' \
    ./internal/relation ./internal/chase

echo "== bench smoke (IncDeduce + HyPart incl. the Partition equivalence assert, 1 iteration)"
go test -run=NONE -bench='IncDeduce|HyPart' -benchtime=1x -short .

echo "== storage bench smoke (Ingest arm at scale 20, single iteration)"
go run ./cmd/bench -fig6=false -repeat 1 -arms '^Ingest' -memscale 20 -prev '' -out /tmp/dcer_ci_bench.json

echo "== plan bench smoke (Deduce plan=off|on A/B at scale 0.5 with per-rule attribution, single iteration)"
go run ./cmd/bench -fig6=false -repeat 1 -scale 0.5 -arms '^Deduce/plan=' -memscale 0 -prev '' -out /tmp/dcer_ci_plan.json

echo "== telemetry smoke (ephemeral /metrics + provenance + /debug/trace + /debug/health scrape over a live DMatch run)"
go run ./scripts/telemetrysmoke

echo "== doctor probe (cmd/doctor diagnosing a held telemetrysmoke process over /debug/health)"
go build -o /tmp/dcer_ci_smoke ./scripts/telemetrysmoke
smoke_addrfile=/tmp/dcer_ci_smoke_addr
rm -f "$smoke_addrfile"
/tmp/dcer_ci_smoke -hold -addrfile "$smoke_addrfile" &
smoke_pid=$!
# The smoke publishes its address only after its own assertions pass.
for _ in $(seq 1 300); do
    [[ -s "$smoke_addrfile" ]] && break
    if ! kill -0 "$smoke_pid" 2>/dev/null; then
        echo "held telemetrysmoke exited before publishing its address" >&2
        wait "$smoke_pid" || true
        exit 1
    fi
    sleep 0.1
done
if [[ ! -s "$smoke_addrfile" ]]; then
    echo "held telemetrysmoke never published its address" >&2
    kill "$smoke_pid" 2>/dev/null || true
    exit 1
fi
go run ./cmd/doctor -addr "$(cat "$smoke_addrfile")"
kill "$smoke_pid"
wait "$smoke_pid" || true

echo "== causal-trace race guard (trace model, wide events, DMatch lane attribution under the race detector)"
go test -race -short -count=1 \
    -run 'TestParallelTraceCausality|TestSpanLabelCopy|TestTraceContextCausality|TestWriteChromeTrace|TestServeDebugTrace|TestLoggerWide' \
    ./internal/telemetry ./internal/dmatch

echo "== bench-regression gate (fresh Deduce/IncDeduce arms vs BENCH_9 via benchdiff, threshold 10%)"
# The gate keeps the BENCH trajectory honest: measure the gated tier
# fresh (min over 3 repeats suppresses scheduler noise on the shared
# host) and fail when any arm slowed past the threshold vs the last
# committed snapshot.
go run ./cmd/bench -fig6=false -repeat 3 -arms '^(Deduce|IncDeduce)/' -memscale 0 -prev '' -out /tmp/dcer_ci_gate.json
go run ./cmd/benchdiff -gate '^(Deduce|IncDeduce)/' -threshold 10 BENCH_9.json /tmp/dcer_ci_gate.json

echo "CI OK"
