// Command telemetrysmoke is the CI probe for the telemetry layer: it
// starts the exposition endpoint on an ephemeral port, runs a small
// instrumented DMatch job with justification capture and the health
// observatory on, then scrapes /metrics and /debug/dcer over real HTTP
// and asserts the key series — including the live per-superstep
// worker-skew gauge and the provenance family — are present, and that
// the stitched log yields a proof for a deduced match. It also scrapes
// /debug/trace and asserts the run left a non-empty causal trace spread
// over at least two distinct lanes with resolving parent links, and
// /debug/health asserting every invariant auditor ran and passed with no
// stalls. Scrapes retry with backoff under a deadline so a slow loopback
// listener cannot flake the build. Exit status 0 means the whole opt-in
// path (registry → engines → HTTP → proof → trace → health) works end to
// end. With -hold the process keeps serving after the assertions pass
// until SIGINT/SIGTERM, so an external probe (cmd/doctor in ci.sh) can
// scrape the same live endpoint; -addrfile publishes the ephemeral
// listener address for such probes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dcer/internal/datagen"
	"dcer/internal/dmatch"
	"dcer/internal/health"
	"dcer/internal/mlpred"
	"dcer/internal/provenance"
	"dcer/internal/telemetry"
)

// scrapeDeadline bounds the total time spent retrying one endpoint.
const scrapeDeadline = 10 * time.Second

func main() {
	hold := flag.Bool("hold", false, "keep serving after the assertions pass until SIGINT/SIGTERM (for external probes)")
	addrfile := flag.String("addrfile", "", "write the listener address to this file once serving")
	flag.Parse()

	reg := telemetry.NewRegistry()
	srv, err := telemetry.Serve("127.0.0.1:0", reg)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	mon := health.NewMonitor(health.Options{
		Registry:     reg,
		DiagnosisDir: os.TempDir(),
		Seed:         1,
	})
	mon.Start()
	defer mon.Stop()

	d, _ := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		fatal(err)
	}
	res, err := dmatch.Run(d, rules, mlpred.DefaultRegistry(), dmatch.Options{
		Workers:    2,
		Metrics:    reg,
		Provenance: true,
		Health:     mon,
	})
	if err != nil {
		fatal(err)
	}
	if len(res.Matches) == 0 {
		fatal(fmt.Errorf("instrumented run deduced no matches"))
	}
	// The stitched cross-worker log must prove a deduced match without
	// any fallback chase.
	sampled := res.Matches[0]
	proof, err := res.Proof(sampled.A, sampled.B)
	if err != nil {
		fatal(fmt.Errorf("no proof for deduced match (%d, %d): %w", sampled.A, sampled.B, err))
	}
	if len(proof) == 0 {
		fatal(fmt.Errorf("empty proof for deduced match (%d, %d)", sampled.A, sampled.B))
	}

	body := get(srv.Addr, "/metrics")
	for _, series := range []string{
		"dcer_dmatch_step_skew",
		"dcer_dmatch_step_makespan_ns",
		"dcer_dmatch_messages_routed",
		"dcer_dmatch_worker_busy_ns",
		"dcer_hypart_fragment_size",
		`dcer_chase_valuations{worker="0"}`,
		"dcer_chase_rule_enumerate_ns",
		"dcer_provenance_entries",
		"dcer_provenance_dropped",
		"dcer_provenance_record_ns",
	} {
		if !strings.Contains(body, series) {
			fatal(fmt.Errorf("/metrics lacks %s:\n%s", series, body))
		}
	}

	var doc struct {
		Endpoints []string                   `json:"endpoints"`
		Metrics   []json.RawMessage          `json:"metrics"`
		Spans     []telemetry.SpanRecord     `json:"spans"`
		Debug     map[string]json.RawMessage `json:"debug"`
	}
	if err := json.Unmarshal([]byte(get(srv.Addr, "/debug/dcer")), &doc); err != nil {
		fatal(fmt.Errorf("/debug/dcer is not valid JSON: %w", err))
	}
	if len(doc.Metrics) == 0 {
		fatal(fmt.Errorf("/debug/dcer has no metric snapshot"))
	}
	healthIndexed := false
	for _, ep := range doc.Endpoints {
		if ep == "/debug/health" {
			healthIndexed = true
		}
	}
	if !healthIndexed {
		fatal(fmt.Errorf("/debug/dcer endpoint index lacks /debug/health: %v", doc.Endpoints))
	}
	raw, ok := doc.Debug["dmatch_timeline"]
	if !ok {
		fatal(fmt.Errorf("/debug/dcer lacks the dmatch_timeline provider"))
	}
	tl, err := dmatch.ParseTimeline(raw)
	if err != nil {
		fatal(err)
	}
	if len(tl.Steps) != res.Supersteps {
		fatal(fmt.Errorf("timeline has %d steps, run reports %d supersteps", len(tl.Steps), res.Supersteps))
	}
	rawProv, ok := doc.Debug["provenance"]
	if !ok {
		fatal(fmt.Errorf("/debug/dcer lacks the provenance provider"))
	}
	var sums []provenance.Summary
	if err := json.Unmarshal(rawProv, &sums); err != nil {
		fatal(fmt.Errorf("provenance provider is not a summary list: %w", err))
	}
	if len(sums) == 0 {
		fatal(fmt.Errorf("provenance provider reported no per-worker logs"))
	}
	entries := 0
	for _, s := range sums {
		entries += s.Entries
	}
	if entries == 0 {
		fatal(fmt.Errorf("provenance provider reported zero recorded derivations"))
	}

	// The causal trace: /debug/trace must serve loadable trace-event
	// JSON whose complete events span >= 2 distinct (pid, tid) lanes
	// (master plus at least one worker) and whose parent IDs resolve
	// within their trace.
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int32          `json:"pid"`
			TID  int32          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(get(srv.Addr, "/debug/trace")), &trace); err != nil {
		fatal(fmt.Errorf("/debug/trace is not valid JSON: %w", err))
	}
	lanes := map[[2]int32]bool{}
	spanIDs := map[float64]bool{}
	var complete int
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		complete++
		lanes[[2]int32{ev.PID, ev.TID}] = true
		if id, ok := ev.Args["span_id"].(float64); ok {
			spanIDs[id] = true
		}
	}
	if complete == 0 {
		fatal(fmt.Errorf("/debug/trace has no complete events after an instrumented run"))
	}
	if len(lanes) < 2 {
		fatal(fmt.Errorf("/debug/trace shows %d lane(s), want >= 2 (master + worker)", len(lanes)))
	}
	unresolved := 0
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if pid, ok := ev.Args["parent_id"].(float64); ok && !spanIDs[pid] {
			unresolved++
		}
	}
	if unresolved > 0 {
		fatal(fmt.Errorf("/debug/trace has %d span(s) whose parent is not in the trace", unresolved))
	}

	// The health observatory: every invariant auditor must have run at
	// least once during the job (the drain loop audits at its fixpoint,
	// the master audits per superstep) and passed with no recorded
	// violations, and the stall watchdog must have stayed quiet.
	var hrep health.Report
	if err := json.Unmarshal([]byte(get(srv.Addr, "/debug/health")), &hrep); err != nil {
		fatal(fmt.Errorf("/debug/health is not valid JSON: %w", err))
	}
	if !hrep.Attached {
		fatal(fmt.Errorf("/debug/health reports no attached monitor"))
	}
	checks := map[string]health.CheckReport{}
	for _, c := range hrep.Checks {
		checks[c.Name] = c
	}
	for _, name := range []string{
		"unionfind_roots", "gamma_provenance", "depstore_bytes",
		"plan_order", "global_unionfind", "stall_watchdog",
	} {
		c, ok := checks[name]
		if !ok {
			fatal(fmt.Errorf("/debug/health lacks check %q", name))
		}
		if c.Status != health.StatusPass.String() || c.Violations > 0 {
			fatal(fmt.Errorf("health check %q: status %s, %d violation(s): %s", name, c.Status, c.Violations, c.Detail))
		}
		if name != "stall_watchdog" && c.Runs == 0 {
			fatal(fmt.Errorf("health check %q never ran during the instrumented job", name))
		}
	}
	if hrep.Stalls != 0 {
		fatal(fmt.Errorf("stall watchdog recorded %d stall(s) during a healthy run", hrep.Stalls))
	}
	if diag := health.Diagnose(hrep); !diag.Healthy() {
		fatal(fmt.Errorf("health diagnosis reports failures:\n%s", diag.String()))
	}

	fmt.Printf("telemetry smoke OK: %d supersteps, %d matches, %d-step proof, %d trace spans on %d lanes, %d health checks pass, endpoint %s\n",
		res.Supersteps, len(res.Matches), len(proof), complete, len(lanes), len(hrep.Checks), srv.Addr)

	// The address is published only after the assertions pass, so an
	// external probe polling the file never scrapes a half-initialized
	// process.
	if *addrfile != "" {
		if err := os.WriteFile(*addrfile, []byte(srv.Addr), 0o644); err != nil {
			fatal(err)
		}
	}

	if *hold {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		fmt.Printf("holding for external probes on %s (SIGINT/SIGTERM to exit)\n", srv.Addr)
		<-sig
	}
}

// get scrapes one endpoint, retrying with exponential backoff until the
// deadline: the listener is up before Serve returns, but CI machines can
// stall the first loopback round-trips arbitrarily.
func get(addr, path string) string {
	deadline := time.Now().Add(scrapeDeadline)
	backoff := 10 * time.Millisecond
	for {
		body, err := getOnce(addr, path)
		if err == nil {
			return body
		}
		if time.Now().Add(backoff).After(deadline) {
			fatal(fmt.Errorf("GET %s did not succeed within %v: %w", path, scrapeDeadline, err))
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

func getOnce(addr, path string) (string, error) {
	client := &http.Client{Timeout: scrapeDeadline / 2}
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(body), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "telemetrysmoke:", err)
	os.Exit(1)
}
