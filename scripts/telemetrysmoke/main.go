// Command telemetrysmoke is the CI probe for the telemetry layer: it
// starts the exposition endpoint on an ephemeral port, runs a small
// instrumented DMatch job, then scrapes /metrics and /debug/dcer over
// real HTTP and asserts the key series — including the live
// per-superstep worker-skew gauge — are present. Exit status 0 means the
// whole opt-in path (registry → engines → HTTP) works end to end.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"dcer/internal/datagen"
	"dcer/internal/dmatch"
	"dcer/internal/mlpred"
	"dcer/internal/telemetry"
)

func main() {
	reg := telemetry.NewRegistry()
	srv, err := telemetry.Serve("127.0.0.1:0", reg)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	d, _ := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		fatal(err)
	}
	res, err := dmatch.Run(d, rules, mlpred.DefaultRegistry(), dmatch.Options{
		Workers: 2,
		Metrics: reg,
	})
	if err != nil {
		fatal(err)
	}
	if len(res.Matches) == 0 {
		fatal(fmt.Errorf("instrumented run deduced no matches"))
	}

	body := get(srv.Addr, "/metrics")
	for _, series := range []string{
		"dcer_dmatch_step_skew",
		"dcer_dmatch_step_makespan_ns",
		"dcer_dmatch_messages_routed",
		"dcer_dmatch_worker_busy_ns",
		"dcer_hypart_fragment_size",
		`dcer_chase_valuations{worker="0"}`,
		"dcer_chase_rule_enumerate_ns",
	} {
		if !strings.Contains(body, series) {
			fatal(fmt.Errorf("/metrics lacks %s:\n%s", series, body))
		}
	}

	var doc struct {
		Metrics []json.RawMessage          `json:"metrics"`
		Spans   []telemetry.SpanRecord     `json:"spans"`
		Debug   map[string]json.RawMessage `json:"debug"`
	}
	if err := json.Unmarshal([]byte(get(srv.Addr, "/debug/dcer")), &doc); err != nil {
		fatal(fmt.Errorf("/debug/dcer is not valid JSON: %w", err))
	}
	if len(doc.Metrics) == 0 {
		fatal(fmt.Errorf("/debug/dcer has no metric snapshot"))
	}
	raw, ok := doc.Debug["dmatch_timeline"]
	if !ok {
		fatal(fmt.Errorf("/debug/dcer lacks the dmatch_timeline provider"))
	}
	tl, err := dmatch.ParseTimeline(raw)
	if err != nil {
		fatal(err)
	}
	if len(tl.Steps) != res.Supersteps {
		fatal(fmt.Errorf("timeline has %d steps, run reports %d supersteps", len(tl.Steps), res.Supersteps))
	}

	fmt.Printf("telemetry smoke OK: %d supersteps, %d matches, endpoint %s\n",
		res.Supersteps, len(res.Matches), srv.Addr)
}

func get(addr, path string) string {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("GET %s: %s", path, resp.Status))
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	return string(body)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "telemetrysmoke:", err)
	os.Exit(1)
}
