package wire

import (
	"fmt"
	"io"
	"math"
	"time"

	"dcer/internal/chase"
	"dcer/internal/hypart"
	"dcer/internal/relation"
)

// Hello is the worker's handshake. DatasetSize/IDSpace/Rules fingerprint
// the worker's locally loaded inputs; the master aborts the run on a
// mismatch instead of silently computing a wrong Γ over divergent data.
type Hello struct {
	Version     uint32
	Worker      int
	DatasetSize int
	IDSpace     int
	Rules       int
}

// EngineOpts is the subset of dmatch.Options a worker needs to construct
// a chase engine identical to the in-process one (the Γ byte-identity
// oracle depends on it).
type EngineOpts struct {
	NoMQO              bool
	SequentialDeduce   bool
	SequentialDrain    bool
	InterpretRules     bool
	MaxDeps            int
	DrainParallelMin   int
	PlanResortMinEvals int
}

// Assign carries a worker's (re)assignment: engine options, the fragment
// and per-rule scopes (delta-varint packed via hypart), and the fact
// history to replay through A_Δ after the rebuild (empty on the initial
// assignment, the full routed history after a recovery or migration).
type Assign struct {
	Worker, Workers int
	Opts            EngineOpts
	Frag            []relation.TID
	RuleFrags       [][]relation.TID
	Replay          []chase.Fact
}

// Step is one superstep's inbox.
type Step struct {
	Step  int
	Facts []chase.Fact
}

// Delta is one superstep's worker output: the newly deduced facts plus
// the worker's compute time (the master's timeline and rebalancer input).
type Delta struct {
	Step   int
	BusyNs int64
	Facts  []chase.Fact
}

// Msg is one decoded message; Type selects which field is set.
type Msg struct {
	Type      byte
	Hello     Hello
	Assign    Assign
	Step      Step
	Delta     Delta
	StatsJSON []byte
}

// Encoder frames and writes messages; it owns the outbound half of one
// connection's symbol dictionary and must be driven by one goroutine at
// a time (callers serialize with a mutex when a heartbeat goroutine
// shares the connection).
type Encoder struct {
	fw   *frameWriter
	dict *dictOut
}

// NewEncoder builds an encoder over w. stats may be nil.
func NewEncoder(w io.Writer, stats *Stats) *Encoder {
	return &Encoder{fw: newFrameWriter(w, stats), dict: newDictOut()}
}

// writeFacts frames a fact batch: the dictionary delta first (definitions
// before use, in id order), then uvarint-packed facts. Match facts cost
// three varints; ML facts add one dictionary id instead of the model
// string — NaiveSymBytes tracks what inline strings would have cost.
func (e *Encoder) writeFacts(facts []chase.Fact) {
	fw := e.fw
	for _, f := range facts {
		if f.Kind == chase.FactML {
			e.dict.id(f.Model)
			if fw.stats != nil {
				fw.stats.NaiveSymBytes.Add(int64(uvarintLen(uint64(len(f.Model)))) + int64(len(f.Model)))
			}
		}
	}
	fw.writeDictDelta(e.dict)
	fw.uvarint(uint64(len(facts)))
	for _, f := range facts {
		fw.uvarint(uint64(f.Kind))
		if f.Kind == chase.FactML {
			fw.uvarint(e.dict.id(f.Model))
		}
		fw.uvarint(uint64(uint32(f.A)))
		fw.uvarint(uint64(uint32(f.B)))
	}
}

// uvarintLen is the encoded size of x.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func (e *Encoder) timeEncode(t0 time.Time) {
	if e.fw.stats != nil {
		e.fw.stats.EncodeNs.Add(since(t0))
	}
}

// Hello writes the handshake frame.
func (e *Encoder) Hello(h Hello) error {
	t0 := time.Now()
	defer e.timeEncode(t0)
	fw := e.fw
	fw.begin(MsgHello)
	fw.uvarint(uint64(h.Version))
	fw.uvarint(uint64(h.Worker))
	fw.uvarint(uint64(h.DatasetSize))
	fw.uvarint(uint64(h.IDSpace))
	fw.uvarint(uint64(h.Rules))
	return fw.flush()
}

// Assign writes a fragment (re)assignment frame.
func (e *Encoder) Assign(a Assign) error {
	t0 := time.Now()
	defer e.timeEncode(t0)
	fw := e.fw
	fw.begin(MsgAssign)
	fw.uvarint(uint64(a.Worker))
	fw.uvarint(uint64(a.Workers))
	var flags uint64
	if a.Opts.NoMQO {
		flags |= 1
	}
	if a.Opts.SequentialDeduce {
		flags |= 2
	}
	if a.Opts.SequentialDrain {
		flags |= 4
	}
	if a.Opts.InterpretRules {
		flags |= 8
	}
	fw.uvarint(flags)
	fw.varint(int64(a.Opts.MaxDeps))
	fw.varint(int64(a.Opts.DrainParallelMin))
	fw.varint(int64(a.Opts.PlanResortMinEvals))
	fw.buf = hypart.AppendFragment(fw.buf, a.Frag, a.RuleFrags)
	e.writeFacts(a.Replay)
	return fw.flush()
}

// Step writes one superstep inbox frame.
func (e *Encoder) Step(s Step) error {
	t0 := time.Now()
	defer e.timeEncode(t0)
	fw := e.fw
	fw.begin(MsgStep)
	fw.uvarint(uint64(s.Step))
	e.writeFacts(s.Facts)
	return fw.flush()
}

// Delta writes one superstep result frame.
func (e *Encoder) Delta(d Delta) error {
	t0 := time.Now()
	defer e.timeEncode(t0)
	fw := e.fw
	fw.begin(MsgDelta)
	fw.uvarint(uint64(d.Step))
	fw.uvarint(uint64(d.BusyNs))
	e.writeFacts(d.Facts)
	return fw.flush()
}

// Pong writes a liveness beat.
func (e *Encoder) Pong() error {
	e.fw.begin(MsgPong)
	return e.fw.flush()
}

// Done writes the shutdown frame.
func (e *Encoder) Done() error {
	e.fw.begin(MsgDone)
	return e.fw.flush()
}

// StatsJSON writes the worker's final chase.Stats as an opaque JSON blob
// (one-shot, off the hot path).
func (e *Encoder) StatsJSON(js []byte) error {
	t0 := time.Now()
	defer e.timeEncode(t0)
	fw := e.fw
	fw.begin(MsgStats)
	fw.bytes(js)
	return fw.flush()
}

// Decoder reads frames and decodes messages; it owns the inbound half of
// the connection's symbol dictionary, so frames must be decoded in stream
// order (dictionary deltas are cumulative).
type Decoder struct {
	fr   *frameReader
	dict *dictIn
}

// NewDecoder builds a decoder over r. stats may be nil.
func NewDecoder(r io.Reader, stats *Stats) *Decoder {
	return &Decoder{fr: newFrameReader(r, stats), dict: &dictIn{}}
}

// readFacts decodes a fact batch (dictionary delta, then facts).
func (d *Decoder) readFacts(p *payload) ([]chase.Fact, error) {
	if err := p.readDictDelta(d.dict); err != nil {
		return nil, err
	}
	n, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	// A match fact costs at least three bytes on the wire; reject counts
	// the frame cannot hold before allocating.
	if n > uint64(p.remaining()/3)+1 {
		return nil, fmt.Errorf("%w: fact count %d exceeds %d remaining bytes", ErrTruncated, n, p.remaining())
	}
	if n == 0 {
		return nil, nil
	}
	facts := make([]chase.Fact, 0, n)
	for i := uint64(0); i < n; i++ {
		kind, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		var f chase.Fact
		switch chase.FactKind(kind) {
		case chase.FactMatch:
			f.Kind = chase.FactMatch
		case chase.FactML:
			f.Kind = chase.FactML
			id, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			if f.Model, err = d.dict.str(id); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("wire: unknown fact kind %d", kind)
		}
		a, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		if a > math.MaxUint32 || b > math.MaxUint32 {
			return nil, fmt.Errorf("wire: tuple id out of range (%d, %d)", a, b)
		}
		f.A, f.B = relation.TID(uint32(a)), relation.TID(uint32(b))
		facts = append(facts, f)
	}
	return facts, nil
}

// Next reads and decodes one message. It blocks on the underlying reader;
// DecodeNs covers only the parse after the frame arrived. io.EOF is
// returned verbatim on a clean frame boundary.
func (d *Decoder) Next() (Msg, error) {
	body, err := d.fr.next()
	if err != nil {
		return Msg{}, err
	}
	t0 := time.Now()
	defer func() {
		if d.fr.stats != nil {
			d.fr.stats.DecodeNs.Add(since(t0))
		}
	}()
	if len(body) == 0 {
		return Msg{}, fmt.Errorf("%w: empty frame", ErrTruncated)
	}
	m := Msg{Type: body[0]}
	p := &payload{b: body, off: 1}
	switch m.Type {
	case MsgHello:
		v, err := p.uvarint()
		if err != nil {
			return Msg{}, err
		}
		if v > math.MaxUint32 {
			return Msg{}, fmt.Errorf("wire: bad hello version %d", v)
		}
		m.Hello.Version = uint32(v)
		if m.Hello.Worker, err = p.intField("worker"); err != nil {
			return Msg{}, err
		}
		if m.Hello.DatasetSize, err = p.intField("dataset size"); err != nil {
			return Msg{}, err
		}
		if m.Hello.IDSpace, err = p.intField("id space"); err != nil {
			return Msg{}, err
		}
		if m.Hello.Rules, err = p.intField("rule count"); err != nil {
			return Msg{}, err
		}
	case MsgAssign:
		if m.Assign.Worker, err = p.intField("worker"); err != nil {
			return Msg{}, err
		}
		if m.Assign.Workers, err = p.intField("workers"); err != nil {
			return Msg{}, err
		}
		flags, err := p.uvarint()
		if err != nil {
			return Msg{}, err
		}
		m.Assign.Opts.NoMQO = flags&1 != 0
		m.Assign.Opts.SequentialDeduce = flags&2 != 0
		m.Assign.Opts.SequentialDrain = flags&4 != 0
		m.Assign.Opts.InterpretRules = flags&8 != 0
		if m.Assign.Opts.MaxDeps, err = p.varintInt("max deps"); err != nil {
			return Msg{}, err
		}
		if m.Assign.Opts.DrainParallelMin, err = p.varintInt("drain parallel min"); err != nil {
			return Msg{}, err
		}
		if m.Assign.Opts.PlanResortMinEvals, err = p.varintInt("plan resort min"); err != nil {
			return Msg{}, err
		}
		frag, ruleFrags, rest, err := hypart.ReadFragment(p.b[p.off:])
		if err != nil {
			return Msg{}, err
		}
		m.Assign.Frag, m.Assign.RuleFrags = frag, ruleFrags
		p.off = len(p.b) - len(rest)
		if m.Assign.Replay, err = d.readFacts(p); err != nil {
			return Msg{}, err
		}
	case MsgStep:
		if m.Step.Step, err = p.intField("step"); err != nil {
			return Msg{}, err
		}
		if m.Step.Facts, err = d.readFacts(p); err != nil {
			return Msg{}, err
		}
	case MsgDelta:
		if m.Delta.Step, err = p.intField("step"); err != nil {
			return Msg{}, err
		}
		busy, err := p.uvarint()
		if err != nil {
			return Msg{}, err
		}
		if busy > math.MaxInt64 {
			return Msg{}, fmt.Errorf("wire: busy ns out of range")
		}
		m.Delta.BusyNs = int64(busy)
		if m.Delta.Facts, err = d.readFacts(p); err != nil {
			return Msg{}, err
		}
	case MsgPong, MsgDone:
		// no body
	case MsgStats:
		b, err := p.bytes()
		if err != nil {
			return Msg{}, err
		}
		m.StatsJSON = append([]byte(nil), b...)
	default:
		return Msg{}, fmt.Errorf("wire: unknown message type %d", m.Type)
	}
	if err := p.done(); err != nil {
		return Msg{}, err
	}
	return m, nil
}

// varint writes a zigzag-encoded signed word.
func (fw *frameWriter) varint(x int64) {
	fw.uvarint(uint64(x<<1) ^ uint64(x>>63))
}

// intField reads a uvarint bounded to the int range.
func (p *payload) intField(what string) (int, error) {
	x, err := p.uvarint()
	if err != nil {
		return 0, err
	}
	if x > math.MaxInt32 {
		return 0, fmt.Errorf("wire: %s %d out of range", what, x)
	}
	return int(x), nil
}

// varintInt reads a zigzag-encoded signed word bounded to int32.
func (p *payload) varintInt(what string) (int, error) {
	u, err := p.uvarint()
	if err != nil {
		return 0, err
	}
	x := int64(u>>1) ^ -int64(u&1)
	if x > math.MaxInt32 || x < math.MinInt32 {
		return 0, fmt.Errorf("wire: %s %d out of range", what, x)
	}
	return int(x), nil
}
