package wire

import (
	"fmt"

	"dcer/internal/relation"
)

// dictOut is the sending side of a connection direction's symbol
// dictionary. Strings intern into a relation.SymTab (dense ids, arena
// backed); the shipped watermark tracks how many entries the peer has
// already received, so each batch only carries SymTab.Since(shipped) —
// the delta — and every symbol crosses the wire at most once per
// direction.
type dictOut struct {
	tab     *relation.SymTab
	shipped int
}

func newDictOut() *dictOut { return &dictOut{tab: relation.NewSymTab()} }

// id interns s, assigning the next dense id on first sight.
func (d *dictOut) id(s string) uint64 { return uint64(d.tab.Intern(s)) }

// pending returns the delta the peer is missing, in id order.
func (d *dictOut) pending() []string { return d.tab.Since(d.shipped) }

// markShipped advances the watermark after a delta was framed.
func (d *dictOut) markShipped() { d.shipped = d.tab.Len() }

// dictIn is the receiving side: a dense table grown strictly by applying
// deltas in frame order. Ids index the table; an id at or past the table
// length means the sender violated the delta-before-use ordering (or the
// stream is corrupt) and decodes as an error.
type dictIn struct {
	strs []string
}

// apply appends one delta in order.
func (d *dictIn) apply(delta []string) {
	d.strs = append(d.strs, delta...)
}

// str resolves a wire id.
func (d *dictIn) str(id uint64) (string, error) {
	if id >= uint64(len(d.strs)) {
		return "", fmt.Errorf("wire: dictionary id %d out of range (table has %d entries)", id, len(d.strs))
	}
	return d.strs[id], nil
}

// writeDictDelta frames the pending delta: count, then each string
// length-prefixed, ids implicit (the receiver's next dense ids). The
// watermark advances immediately — the delta is part of the same frame
// as the facts that reference it, so a successfully framed batch always
// carries its own definitions first.
func (fw *frameWriter) writeDictDelta(d *dictOut) {
	delta := d.pending()
	fw.uvarint(uint64(len(delta)))
	for _, s := range delta {
		fw.str(s)
		if fw.stats != nil {
			fw.stats.DictStrings.Add(1)
			fw.stats.DictBytes.Add(int64(len(s)))
		}
	}
	d.markShipped()
}

// readDictDelta decodes a delta section and applies it in order.
func (p *payload) readDictDelta(d *dictIn) error {
	n, err := p.length()
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		s, err := p.str()
		if err != nil {
			return err
		}
		d.apply([]string{s})
	}
	return nil
}
