package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"dcer/internal/chase"
	"dcer/internal/relation"
)

// randFacts builds a deterministic pseudo-random fact batch drawing model
// names from a small pool (the realistic shape: few classifiers, many
// facts).
func randFacts(rng *rand.Rand, n int) []chase.Fact {
	models := []string{"lev075", "jaro085", "bert-mini", "ditto"}
	facts := make([]chase.Fact, n)
	for i := range facts {
		f := chase.Fact{
			A: relation.TID(rng.Intn(1 << 20)),
			B: relation.TID(rng.Intn(1 << 20)),
		}
		if rng.Intn(3) == 0 {
			f.Kind = chase.FactML
			f.Model = models[rng.Intn(len(models))]
		} else {
			f.Kind = chase.FactMatch
		}
		facts[i] = f
	}
	return facts
}

func factsEqual(a, b []chase.Fact) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRoundTripAllMessages drives every message type through an
// encode/decode cycle on one stream and checks field-for-field identity.
func TestRoundTripAllMessages(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var buf bytes.Buffer
	stats := &Stats{}
	enc := NewEncoder(&buf, stats)

	hello := Hello{Version: Version, Worker: 3, DatasetSize: 12345, IDSpace: 67890, Rules: 7}
	assign := Assign{
		Worker: 2, Workers: 4,
		Opts: EngineOpts{NoMQO: true, SequentialDrain: true, MaxDeps: -1,
			DrainParallelMin: 512, PlanResortMinEvals: 9},
		Frag:      []relation.TID{1, 5, 9, 10, 11, 400},
		RuleFrags: [][]relation.TID{{1, 5}, nil, {9, 10, 11, 400}},
		Replay:    randFacts(rng, 40),
	}
	step := Step{Step: 12, Facts: randFacts(rng, 100)}
	delta := Delta{Step: 12, BusyNs: 987654321, Facts: randFacts(rng, 55)}
	js := []byte(`{"valuations": 42}`)

	for _, err := range []error{
		enc.Hello(hello), enc.Assign(assign), enc.Step(step),
		enc.Delta(delta), enc.Pong(), enc.Done(), enc.StatsJSON(js),
	} {
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
	}

	dec := NewDecoder(bytes.NewReader(buf.Bytes()), stats)
	m, err := dec.Next()
	if err != nil || m.Type != MsgHello || m.Hello != hello {
		t.Fatalf("hello round trip: %+v %v", m, err)
	}
	m, err = dec.Next()
	if err != nil || m.Type != MsgAssign {
		t.Fatalf("assign round trip: %v", err)
	}
	if m.Assign.Worker != assign.Worker || m.Assign.Workers != assign.Workers || m.Assign.Opts != assign.Opts {
		t.Fatalf("assign fields: got %+v", m.Assign)
	}
	if fmt.Sprint(m.Assign.Frag) != fmt.Sprint(assign.Frag) {
		t.Fatalf("assign frag: got %v want %v", m.Assign.Frag, assign.Frag)
	}
	if len(m.Assign.RuleFrags) != len(assign.RuleFrags) {
		t.Fatalf("assign rule frags: got %d lists", len(m.Assign.RuleFrags))
	}
	for i := range assign.RuleFrags {
		if fmt.Sprint(m.Assign.RuleFrags[i]) != fmt.Sprint(assign.RuleFrags[i]) {
			t.Fatalf("rule frag %d: got %v want %v", i, m.Assign.RuleFrags[i], assign.RuleFrags[i])
		}
	}
	if !factsEqual(m.Assign.Replay, assign.Replay) {
		t.Fatalf("assign replay mismatch")
	}
	m, err = dec.Next()
	if err != nil || m.Type != MsgStep || m.Step.Step != step.Step || !factsEqual(m.Step.Facts, step.Facts) {
		t.Fatalf("step round trip: %v", err)
	}
	m, err = dec.Next()
	if err != nil || m.Type != MsgDelta || m.Delta.Step != delta.Step ||
		m.Delta.BusyNs != delta.BusyNs || !factsEqual(m.Delta.Facts, delta.Facts) {
		t.Fatalf("delta round trip: %v", err)
	}
	if m, err = dec.Next(); err != nil || m.Type != MsgPong {
		t.Fatalf("pong round trip: %v", err)
	}
	if m, err = dec.Next(); err != nil || m.Type != MsgDone {
		t.Fatalf("done round trip: %v", err)
	}
	m, err = dec.Next()
	if err != nil || m.Type != MsgStats || string(m.StatsJSON) != string(js) {
		t.Fatalf("stats round trip: %v", err)
	}
	if _, err = dec.Next(); err != io.EOF {
		t.Fatalf("clean end: got %v, want io.EOF", err)
	}

	if stats.BytesOut.Load() != int64(buf.Len()) {
		t.Fatalf("BytesOut %d != stream length %d", stats.BytesOut.Load(), buf.Len())
	}
	if stats.BytesIn.Load() != int64(buf.Len()) {
		t.Fatalf("BytesIn %d != stream length %d", stats.BytesIn.Load(), buf.Len())
	}
	if stats.FramesOut.Load() != 7 || stats.FramesIn.Load() != 7 {
		t.Fatalf("frames: out %d in %d, want 7/7", stats.FramesOut.Load(), stats.FramesIn.Load())
	}
}

// TestRoundTripRandomBatches is the codec property test: many random fact
// batches through one connection, byte-identical on the far side.
func TestRoundTripRandomBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var buf bytes.Buffer
	enc := NewEncoder(&buf, nil)
	var sent [][]chase.Fact
	for i := 0; i < 50; i++ {
		facts := randFacts(rng, rng.Intn(200))
		sent = append(sent, facts)
		if err := enc.Step(Step{Step: i, Facts: facts}); err != nil {
			t.Fatalf("encode batch %d: %v", i, err)
		}
	}
	dec := NewDecoder(bytes.NewReader(buf.Bytes()), nil)
	for i, want := range sent {
		m, err := dec.Next()
		if err != nil {
			t.Fatalf("decode batch %d: %v", i, err)
		}
		if m.Step.Step != i || !factsEqual(m.Step.Facts, want) {
			t.Fatalf("batch %d mismatch", i)
		}
	}
}

// TestDictDeltaOncePerDirection checks the symbol-dictionary contract:
// a model name crosses the wire at most once per connection direction, no
// matter how many facts reference it.
func TestDictDeltaOncePerDirection(t *testing.T) {
	var buf bytes.Buffer
	stats := &Stats{}
	enc := NewEncoder(&buf, stats)
	mk := func(model string, n int) []chase.Fact {
		out := make([]chase.Fact, n)
		for i := range out {
			out[i] = chase.Fact{Kind: chase.FactML, Model: model, A: relation.TID(i), B: relation.TID(i + 1)}
		}
		return out
	}
	for step := 0; step < 20; step++ {
		facts := append(mk("model-alpha", 50), mk("model-beta", 50)...)
		if err := enc.Step(Step{Step: step, Facts: facts}); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	if got := stats.DictStrings.Load(); got != 2 {
		t.Fatalf("dictionary shipped %d strings, want 2 (one per unique model)", got)
	}
	// The dictionary must also beat naive inline strings by a wide margin
	// at steady state: 2000 ML facts referencing 2 models.
	naive := stats.NaiveSymBytes.Load()
	actual := stats.DictBytes.Load() + 2000 // ~1 id byte per fact
	if naive < 3*actual {
		t.Fatalf("dictionary ratio too small: naive %dB vs ~%dB shipped", naive, actual)
	}
	dec := NewDecoder(bytes.NewReader(buf.Bytes()), nil)
	for step := 0; step < 20; step++ {
		m, err := dec.Next()
		if err != nil {
			t.Fatalf("decode step %d: %v", step, err)
		}
		for _, f := range m.Step.Facts[:50] {
			if f.Model != "model-alpha" {
				t.Fatalf("step %d: wrong model %q", step, f.Model)
			}
		}
		for _, f := range m.Step.Facts[50:] {
			if f.Model != "model-beta" {
				t.Fatalf("step %d: wrong model %q", step, f.Model)
			}
		}
	}
}

// TestTruncationNeverPanics cuts a valid multi-message stream at every
// byte offset; each prefix must decode to some prefix of the messages and
// then produce io.EOF (clean boundary) or an error — never a panic, never
// a phantom message.
func TestTruncationNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var buf bytes.Buffer
	enc := NewEncoder(&buf, nil)
	if err := enc.Hello(Hello{Version: Version, Worker: 1, DatasetSize: 10, IDSpace: 10, Rules: 2}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Step(Step{Step: 1, Facts: randFacts(rng, 30)}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Delta(Delta{Step: 1, BusyNs: 5, Facts: randFacts(rng, 30)}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut <= len(full); cut++ {
		dec := NewDecoder(bytes.NewReader(full[:cut]), nil)
		msgs := 0
		for {
			_, err := dec.Next()
			if err == nil {
				msgs++
				if msgs > 3 {
					t.Fatalf("cut %d: decoded more messages than were sent", cut)
				}
				continue
			}
			if err == io.EOF {
				break // clean frame boundary
			}
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrFrameTooBig) && cut != len(full) {
				// Mid-frame cuts inside a length-prefixed string can also
				// surface as in-frame bounds errors; any error is fine,
				// a panic is not. Just stop.
				break
			}
			break
		}
	}
}

// TestFrameSizeCap rejects an adversarial length prefix without
// allocating.
func TestFrameSizeCap(t *testing.T) {
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0x7f} // uvarint ≈ 34 GB
	dec := NewDecoder(bytes.NewReader(huge), nil)
	_, err := dec.Next()
	if !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("got %v, want ErrFrameTooBig", err)
	}
}

// TestBadDictID rejects a fact referencing an unshipped dictionary entry.
func TestBadDictID(t *testing.T) {
	// Hand-build a Step frame: type, step, 0 dict entries, 1 fact,
	// kind=FactML, dict id 9 (undefined), a, b.
	payload := []byte{MsgStep, 1, 0, 1, byte(chase.FactML), 9, 4, 5}
	var frame []byte
	frame = append(frame, byte(len(payload)))
	frame = append(frame, payload...)
	dec := NewDecoder(bytes.NewReader(frame), nil)
	if _, err := dec.Next(); err == nil {
		t.Fatal("undefined dictionary id decoded without error")
	}
}

// TestTrailingGarbageRejected: extra bytes after a valid message body in
// the same frame are a protocol error.
func TestTrailingGarbageRejected(t *testing.T) {
	payload := []byte{MsgPong, 1, 2, 3}
	frame := append([]byte{byte(len(payload))}, payload...)
	dec := NewDecoder(bytes.NewReader(frame), nil)
	if _, err := dec.Next(); err == nil {
		t.Fatal("trailing frame bytes decoded without error")
	}
}
