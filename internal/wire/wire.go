// Package wire is the compact binary protocol the distributed DMatch
// speaks between the master and worker processes (ROADMAP item 2): the
// PR-5 outbox layer (per-destination batches, recipient bitsets, dedup
// seen-sets) feeds this encoding, which puts real bytes on a TCP stream
// instead of the in-process channel hand-off.
//
// Layout. The stream is a sequence of length-prefixed frames:
//
//	uvarint(payload length) | payload
//
// where payload[0] is the message type and the rest is message-specific,
// built entirely from varint-packed uint64 words (the packed-uint64
// discipline of the columnar arenas) and length-prefixed byte strings.
// Frames are size-capped (MaxFrame) so a corrupt or adversarial length
// prefix cannot force a huge allocation, and every decode path returns an
// error — never panics — on truncated or malformed input (fuzzed in
// fuzz_test.go).
//
// Symbol dictionary. Classifier names (and any future interned symbol)
// cross the wire as dense dictionary ids. Each fact batch is preceded by
// the dictionary delta — only the strings the receiving side has not seen
// on this connection direction yet, in id order — so a symbol crosses the
// wire at most once per worker per direction, mirroring how
// relation.SymTab interns each string once per process (see dict.go).
//
// Concurrency. An Encoder and a Decoder each belong to one goroutine;
// a connection therefore gets one of each per direction. Stats is the
// shared, atomically-updated tally a master aggregates over all its
// worker connections.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Version is the protocol version carried in Hello; mismatches abort the
// handshake rather than misdecoding frames.
const Version = 1

// MaxFrame caps one frame's payload so a corrupt length prefix cannot
// force an unbounded allocation. 256 MiB comfortably holds the largest
// realistic superstep batch (tens of millions of varint facts).
const MaxFrame = 1 << 28

// Message types (payload[0]).
const (
	// MsgHello is the worker's handshake: version, worker slot, and a
	// dataset fingerprint the master validates against its own load.
	MsgHello byte = 1 + iota
	// MsgAssign carries a worker's fragment: the engine options, the
	// fragment tuple ids, the per-rule scope ids, and the fact history to
	// replay (non-empty when a rebuild follows a recovery or migration).
	MsgAssign
	// MsgStep delivers one superstep's inbox to a worker.
	MsgStep
	// MsgDelta returns one superstep's newly deduced facts to the master,
	// with the worker's compute time for the timeline and the rebalancer.
	MsgDelta
	// MsgPong is the worker's liveness beat, sent on an interval by a
	// side goroutine so a long Deduce never looks like a dead process.
	MsgPong
	// MsgDone tells the worker the fixpoint is reached: reply with
	// MsgStats and exit.
	MsgDone
	// MsgStats is the worker's final chase.Stats, JSON-encoded (one-shot,
	// off the hot path).
	MsgStats
)

// ErrTruncated reports a stream or frame that ended mid-message.
var ErrTruncated = errors.New("wire: truncated message")

// ErrFrameTooBig reports a length prefix beyond MaxFrame.
var ErrFrameTooBig = errors.New("wire: frame exceeds size cap")

// Stats is the shared wire tally: bytes, frames, and codec time per
// direction, plus the dictionary economics (strings shipped once vs the
// bytes naive per-fact re-sending would have cost). All fields are
// atomics; one Stats is typically shared by every connection of a master.
type Stats struct {
	BytesOut, BytesIn   atomic.Int64
	FramesOut, FramesIn atomic.Int64
	EncodeNs, DecodeNs  atomic.Int64
	// DictStrings / DictBytes count dictionary-delta entries and their
	// payload bytes actually shipped. NaiveSymBytes counts what the same
	// traffic would have cost re-sending each fact's symbol string
	// inline (length prefix + bytes) — the ≥3× shrink the BENCH_10
	// acceptance tracks is NaiveSymBytes / (DictBytes + id bytes ≈
	// DictBytes + FactsWithSyms).
	DictStrings, DictBytes atomic.Int64
	NaiveSymBytes          atomic.Int64
}

// Snapshot is a plain-struct copy of Stats for reports and JSON.
type Snapshot struct {
	BytesOut      int64 `json:"bytes_out"`
	BytesIn       int64 `json:"bytes_in"`
	FramesOut     int64 `json:"frames_out"`
	FramesIn      int64 `json:"frames_in"`
	EncodeNs      int64 `json:"encode_ns"`
	DecodeNs      int64 `json:"decode_ns"`
	DictStrings   int64 `json:"dict_strings"`
	DictBytes     int64 `json:"dict_bytes"`
	NaiveSymBytes int64 `json:"naive_sym_bytes"`
}

// Snapshot returns a coherent-enough point-in-time copy (fields are read
// individually; the master only reads it at quiescent points).
func (s *Stats) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	return Snapshot{
		BytesOut: s.BytesOut.Load(), BytesIn: s.BytesIn.Load(),
		FramesOut: s.FramesOut.Load(), FramesIn: s.FramesIn.Load(),
		EncodeNs: s.EncodeNs.Load(), DecodeNs: s.DecodeNs.Load(),
		DictStrings: s.DictStrings.Load(), DictBytes: s.DictBytes.Load(),
		NaiveSymBytes: s.NaiveSymBytes.Load(),
	}
}

// countingWriter tallies bytes written beneath the bufio layer, so
// BytesOut reflects what actually hits the socket.
type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	if cw.n != nil {
		cw.n.Add(int64(n))
	}
	return n, err
}

// countingReader tallies bytes read beneath the bufio layer.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if cr.n != nil {
		cr.n.Add(int64(n))
	}
	return n, err
}

// frameWriter assembles frames in a reused buffer and writes each as one
// length-prefixed unit through a bufio.Writer (one flush per message, so
// a superstep inbox is a single syscall in the common case).
type frameWriter struct {
	bw    *bufio.Writer
	buf   []byte // payload scratch, reused across frames
	stats *Stats
}

func newFrameWriter(w io.Writer, stats *Stats) *frameWriter {
	var cnt *atomic.Int64
	if stats != nil {
		cnt = &stats.BytesOut
	}
	return &frameWriter{bw: bufio.NewWriterSize(countingWriter{w, cnt}, 1<<16), stats: stats}
}

// begin resets the payload scratch and stamps the message type.
func (fw *frameWriter) begin(msg byte) {
	fw.buf = append(fw.buf[:0], msg)
}

// flush writes the assembled payload as one frame and flushes the
// underlying writer. The encode clock of the caller brackets build+flush.
func (fw *frameWriter) flush() error {
	if len(fw.buf) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, len(fw.buf))
	}
	var pre [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(pre[:], uint64(len(fw.buf)))
	if _, err := fw.bw.Write(pre[:n]); err != nil {
		return err
	}
	if _, err := fw.bw.Write(fw.buf); err != nil {
		return err
	}
	if err := fw.bw.Flush(); err != nil {
		return err
	}
	if fw.stats != nil {
		fw.stats.FramesOut.Add(1)
	}
	return nil
}

func (fw *frameWriter) uvarint(x uint64) {
	fw.buf = binary.AppendUvarint(fw.buf, x)
}

func (fw *frameWriter) bytes(b []byte) {
	fw.buf = binary.AppendUvarint(fw.buf, uint64(len(b)))
	fw.buf = append(fw.buf, b...)
}

func (fw *frameWriter) str(s string) {
	fw.buf = binary.AppendUvarint(fw.buf, uint64(len(s)))
	fw.buf = append(fw.buf, s...)
}

// frameReader reads length-prefixed frames into a reused buffer.
type frameReader struct {
	br    *bufio.Reader
	buf   []byte
	stats *Stats
}

func newFrameReader(r io.Reader, stats *Stats) *frameReader {
	var cnt *atomic.Int64
	if stats != nil {
		cnt = &stats.BytesIn
	}
	return &frameReader{br: bufio.NewReaderSize(countingReader{r, cnt}, 1<<16), stats: stats}
}

// next reads one frame's payload. io.EOF is returned verbatim on a clean
// frame boundary; a stream ending inside a frame is ErrTruncated.
func (fr *frameReader) next() ([]byte, error) {
	ln, err := binary.ReadUvarint(fr.br)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF // clean boundary
		}
		return nil, fmt.Errorf("%w: frame length: %v", ErrTruncated, err)
	}
	if ln > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, ln)
	}
	if uint64(cap(fr.buf)) < ln {
		fr.buf = make([]byte, ln)
	}
	fr.buf = fr.buf[:ln]
	if _, err := io.ReadFull(fr.br, fr.buf); err != nil {
		return nil, fmt.Errorf("%w: frame body: %v", ErrTruncated, err)
	}
	if fr.stats != nil {
		fr.stats.FramesIn.Add(1)
	}
	return fr.buf, nil
}

// payload is a bounds-checked cursor over one frame's bytes; every read
// returns an error instead of panicking so malformed frames surface as
// decode errors (the fuzz targets hammer exactly this).
type payload struct {
	b   []byte
	off int
}

func (p *payload) uvarint() (uint64, error) {
	x, n := binary.Uvarint(p.b[p.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint at offset %d", ErrTruncated, p.off)
	}
	p.off += n
	return x, nil
}

// length reads a uvarint meant to count or size something inside this
// frame and rejects values that could not possibly fit in the remaining
// bytes, so corrupt counts fail fast instead of triggering huge loops.
func (p *payload) length() (int, error) {
	x, err := p.uvarint()
	if err != nil {
		return 0, err
	}
	if x > uint64(len(p.b)-p.off) {
		return 0, fmt.Errorf("%w: length %d exceeds %d remaining bytes", ErrTruncated, x, len(p.b)-p.off)
	}
	return int(x), nil
}

func (p *payload) bytes() ([]byte, error) {
	n, err := p.length()
	if err != nil {
		return nil, err
	}
	out := p.b[p.off : p.off+n]
	p.off += n
	return out, nil
}

func (p *payload) str() (string, error) {
	b, err := p.bytes()
	return string(b), err
}

func (p *payload) remaining() int { return len(p.b) - p.off }

func (p *payload) done() error {
	if p.off != len(p.b) {
		return fmt.Errorf("wire: %d trailing bytes in frame", len(p.b)-p.off)
	}
	return nil
}

// clock is the codec timer; split out so tests can observe stats without
// depending on wall-clock granularity.
func since(t0 time.Time) int64 { return int64(time.Since(t0)) }
