package wire

import (
	"bytes"
	"io"
	"testing"

	"dcer/internal/chase"
	"dcer/internal/relation"
)

// FuzzDecoder feeds arbitrary bytes to the frame/message decoder. The
// contract under fuzzing is purely "no panic, no runaway allocation":
// every malformed input must surface as an error (or a clean io.EOF),
// which is what lets the master treat any decode failure as a dead
// worker instead of a crashed master.
func FuzzDecoder(f *testing.F) {
	// Seed with valid streams so the fuzzer starts from structure.
	seed := func(build func(*Encoder) error) {
		var buf bytes.Buffer
		enc := NewEncoder(&buf, nil)
		if err := build(enc); err == nil {
			f.Add(buf.Bytes())
		}
	}
	seed(func(e *Encoder) error {
		return e.Hello(Hello{Version: Version, Worker: 1, DatasetSize: 100, IDSpace: 100, Rules: 3})
	})
	seed(func(e *Encoder) error {
		facts := []chase.Fact{
			{Kind: chase.FactMatch, A: 1, B: 2},
			{Kind: chase.FactML, Model: "lev075", A: 3, B: 4},
		}
		if err := e.Step(Step{Step: 2, Facts: facts}); err != nil {
			return err
		}
		return e.Delta(Delta{Step: 2, BusyNs: 42, Facts: facts})
	})
	seed(func(e *Encoder) error {
		return e.Assign(Assign{Worker: 0, Workers: 2,
			Opts:      EngineOpts{MaxDeps: 64, DrainParallelMin: -3},
			Frag:      []relation.TID{3, 1, 2},
			RuleFrags: [][]relation.TID{{1, 2, 3}},
			Replay:    []chase.Fact{{Kind: chase.FactMatch, A: 8, B: 9}},
		})
	})
	seed(func(e *Encoder) error {
		if err := e.Pong(); err != nil {
			return err
		}
		if err := e.StatsJSON([]byte(`{"x":1}`)); err != nil {
			return err
		}
		return e.Done()
	})
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data), nil)
		for i := 0; i < 1024; i++ { // bound work per input
			_, err := dec.Next()
			if err != nil {
				if err != io.EOF && err.Error() == "" {
					t.Fatal("empty error message")
				}
				return
			}
		}
	})
}

// FuzzRoundTrip encodes decoder-accepted fact batches back and checks the
// stream re-decodes identically — the codec is its own inverse on the
// valid subset the fuzzer discovers.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{MsgStep, 1, 0, 1, byte(chase.FactMatch), 4, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		frame := append([]byte{byte(len(data) & 0x7f)}, data[:len(data)&0x7f]...)
		dec := NewDecoder(bytes.NewReader(frame), nil)
		m, err := dec.Next()
		if err != nil || m.Type != MsgStep {
			return
		}
		var buf bytes.Buffer
		enc := NewEncoder(&buf, nil)
		if err := enc.Step(m.Step); err != nil {
			t.Fatalf("re-encode of decoded message failed: %v", err)
		}
		dec2 := NewDecoder(bytes.NewReader(buf.Bytes()), nil)
		m2, err := dec2.Next()
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m2.Step.Step != m.Step.Step || len(m2.Step.Facts) != len(m.Step.Facts) {
			t.Fatalf("round trip changed the message")
		}
		for i := range m.Step.Facts {
			if m.Step.Facts[i] != m2.Step.Facts[i] {
				t.Fatalf("fact %d changed in round trip", i)
			}
		}
	})
}
