// Package soft implements the paper's first future-work item: extending
// MRLs to *soft rules* that return the probability of a match instead of a
// hard decision.
//
// Each rule carries a confidence in (0, 1]. The engine computes, for every
// tuple pair, a match score under max-product semantics (the tropical
// semiring commonly used for probabilistic provenance): the score of a
// derivation is the rule's confidence times the product of the scores of
// the id predicates it consumes, and a fact's score is the maximum over
// its derivations. Transitivity contributes score(x,z) ≥ score(x,y) ·
// score(y,z). The fixpoint exists and is order-independent because all
// updates are monotone under max and scores are bounded by 1.
//
// With every confidence equal to 1 the engine coincides with the crisp
// chase. Thresholding the final scores turns the result back into hard
// matches, with the threshold trading precision for recall.
package soft

import (
	"fmt"
	"sort"

	"dcer/internal/mlpred"
	"dcer/internal/relation"
	"dcer/internal/rule"
)

// Rule is an MRL with a confidence.
type Rule struct {
	*rule.Rule
	Confidence float64
}

// Score is one scored match pair.
type Score struct {
	A, B relation.TID
	P    float64
}

// Result holds the fixpoint scores.
type Result struct {
	scores map[[2]relation.TID]float64
	d      *relation.Dataset
}

// P returns the match score of (a, b); 1 for a tuple with itself.
func (r *Result) P(a, b relation.TID) float64 {
	if a == b {
		return 1
	}
	return r.scores[canon(a, b)]
}

// Matches returns all pairs with score ≥ threshold, sorted by descending
// score then pair.
func (r *Result) Matches(threshold float64) []Score {
	var out []Score
	for p, s := range r.scores {
		if s >= threshold {
			out = append(out, Score{A: p[0], B: p[1], P: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P > out[j].P
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

func canon(a, b relation.TID) [2]relation.TID {
	if b < a {
		a, b = b, a
	}
	return [2]relation.TID{a, b}
}

// Chase runs the soft fixpoint. epsilon bounds the score improvement below
// which updates are ignored (guards convergence with cyclic rule sets);
// 0 means 1e-9.
func Chase(d *relation.Dataset, rules []Rule, reg *mlpred.Registry, epsilon float64) (*Result, error) {
	if epsilon <= 0 {
		epsilon = 1e-9
	}
	res := &Result{scores: make(map[[2]relation.TID]float64), d: d}
	for _, r := range rules {
		if !r.Resolved() {
			return nil, fmt.Errorf("soft: rule %s not resolved", r.Name)
		}
		if r.Confidence <= 0 || r.Confidence > 1 {
			return nil, fmt.Errorf("soft: rule %s confidence %v outside (0,1]", r.Name, r.Confidence)
		}
		if r.Head.Kind != rule.PredID {
			return nil, fmt.Errorf("soft: rule %s: soft chase supports id heads only", r.Name)
		}
	}
	// Literal id duplicates score 1.
	for _, rel := range d.Relations {
		byID := make(map[string]relation.TID)
		for _, t := range rel.Tuples {
			k := t.Val(rel.Schema.IDAttr).Key()
			if first, ok := byID[k]; ok {
				res.scores[canon(first, t.GID)] = 1
			} else {
				byID[k] = t.GID
			}
		}
	}
	cache := mlpred.NewCache()
	classifiers := make([]map[*rule.Pred]mlpred.Classifier, len(rules))
	for ri, r := range rules {
		classifiers[ri] = make(map[*rule.Pred]mlpred.Classifier)
		for i := range r.Body {
			p := &r.Body[i]
			if p.Kind == rule.PredML {
				cl, err := reg.Get(p.Model)
				if err != nil {
					return nil, err
				}
				classifiers[ri][p] = cl
			}
		}
	}

	score := func(a, b relation.TID) float64 {
		if a == b {
			return 1
		}
		return res.scores[canon(a, b)]
	}
	improve := func(a, b relation.TID, p float64) bool {
		if a == b || p <= 0 {
			return false
		}
		k := canon(a, b)
		if p > res.scores[k]+epsilon {
			res.scores[k] = p
			return true
		}
		return false
	}

	for round := 0; ; round++ {
		progressed := false
		// Rule applications (brute-force valuation walk with static
		// pruning; the soft engine targets moderate data sizes).
		for ri, r := range rules {
			binding := make([]*relation.Tuple, len(r.Vars))
			var walk func(v int)
			apply := func() {
				p := r.Confidence
				for i := range r.Body {
					pd := &r.Body[i]
					switch pd.Kind {
					case rule.PredConst:
						if !binding[pd.V1].Val(pd.A1).Equal(pd.Const) {
							return
						}
					case rule.PredEq:
						if !binding[pd.V1].Val(pd.A1).Equal(binding[pd.V2].Val(pd.A2)) {
							return
						}
					case rule.PredID:
						s := score(binding[pd.V1].GID, binding[pd.V2].GID)
						if s <= 0 {
							return
						}
						p *= s
					case rule.PredML:
						la := make([]relation.Value, len(pd.A1Vec))
						for j, at := range pd.A1Vec {
							la[j] = binding[pd.V1].Val(at)
						}
						lb := make([]relation.Value, len(pd.A2Vec))
						for j, at := range pd.A2Vec {
							lb[j] = binding[pd.V2].Val(at)
						}
						if !cache.Predict(classifiers[ri][pd], la, lb) {
							return
						}
					}
				}
				a, b := binding[r.Head.V1], binding[r.Head.V2]
				if a == b {
					return
				}
				if improve(a.GID, b.GID, p) {
					progressed = true
				}
			}
			walk = func(v int) {
				if v == len(r.Vars) {
					apply()
					return
				}
				for _, t := range d.Relations[r.Vars[v].RelIdx].Tuples {
					binding[v] = t
					walk(v + 1)
				}
			}
			walk(0)
		}
		// Soft transitive closure over the currently scored pairs.
		type edge struct {
			to relation.TID
			p  float64
		}
		adj := make(map[relation.TID][]edge)
		for pr, s := range res.scores {
			adj[pr[0]] = append(adj[pr[0]], edge{pr[1], s})
			adj[pr[1]] = append(adj[pr[1]], edge{pr[0], s})
		}
		for _, edges := range adj {
			for i := 0; i < len(edges); i++ {
				for j := i + 1; j < len(edges); j++ {
					p := edges[i].p * edges[j].p
					if improve(edges[i].to, edges[j].to, p) {
						progressed = true
					}
				}
			}
		}
		if !progressed {
			return res, nil
		}
		if round > d.Size()*d.Size() {
			return nil, fmt.Errorf("soft: fixpoint did not converge")
		}
	}
}

// Harden converts scores above threshold into equivalence classes: each
// surviving pair is a hard match.
func (r *Result) Harden(threshold float64) [][]relation.TID {
	parent := make(map[relation.TID]relation.TID)
	var find func(relation.TID) relation.TID
	find = func(x relation.TID) relation.TID {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	for pr, s := range r.scores {
		if s >= threshold {
			parent[find(pr[0])] = find(pr[1])
		}
	}
	groups := make(map[relation.TID][]relation.TID)
	for x := range parent {
		groups[find(x)] = append(groups[find(x)], x)
	}
	var out [][]relation.TID
	for _, g := range groups {
		if len(g) > 1 {
			sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
