package soft_test

import (
	"math"
	"testing"

	"dcer/internal/chase"
	"dcer/internal/datagen"
	"dcer/internal/mlpred"
	"dcer/internal/relation"
	"dcer/internal/rule"
	"dcer/internal/soft"
)

func softRules(t *testing.T, db *relation.Database, conf float64) []soft.Rule {
	t.Helper()
	rules, err := datagen.PaperRules(db)
	if err != nil {
		t.Fatal(err)
	}
	var out []soft.Rule
	for _, r := range rules {
		if r.Head.Kind != rule.PredID {
			continue // soft chase scores id heads only (φ5 is ML-headed)
		}
		out = append(out, soft.Rule{Rule: r, Confidence: conf})
	}
	return out
}

// TestConfidenceOneMatchesCrispChase checks the boundary case: with every
// confidence 1 the soft fixpoint must be the crisp Γ.
func TestConfidenceOneMatchesCrispChase(t *testing.T) {
	d, _ := datagen.PaperExample()
	res, err := soft.Chase(d, softRules(t, d.DB, 1), mlpred.DefaultRegistry(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	crisp, err := chase.New(d, rules, mlpred.DefaultRegistry(), chase.Options{ShareIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	crisp.Run()
	for i := 0; i < d.Size(); i++ {
		for j := i + 1; j < d.Size(); j++ {
			a, b := relation.TID(i), relation.TID(j)
			hard := crisp.Same(a, b)
			sc := res.P(a, b)
			if hard && math.Abs(sc-1) > 1e-9 {
				t.Errorf("(%d,%d): crisp match but soft score %v", i, j, sc)
			}
			if !hard && sc > 1e-9 {
				t.Errorf("(%d,%d): no crisp match but soft score %v", i, j, sc)
			}
		}
	}
}

// TestDeepScoresMultiply checks the max-product semantics: the deep φ4
// match (t1,t3) consumes the φ2 and φ3 matches, so its score is
// conf(φ4)·conf(φ2)·conf(φ3), and the transitive (t1,t2) further picks up
// the direct φ1 score of (t2,t3).
func TestDeepScoresMultiply(t *testing.T) {
	d, l := datagen.PaperExample()
	const c = 0.9
	res, err := soft.Chase(d, softRules(t, d.DB, c), mlpred.DefaultRegistry(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Direct matches score the rule confidence.
	if got := res.P(l["t2"].GID, l["t3"].GID); math.Abs(got-c) > 1e-9 {
		t.Errorf("P(t2,t3) = %v, want %v", got, c)
	}
	if got := res.P(l["t12"].GID, l["t13"].GID); math.Abs(got-c) > 1e-9 {
		t.Errorf("P(t12,t13) = %v, want %v", got, c)
	}
	// The deep match multiplies its prerequisites: c (φ4) · c (φ2) · c (φ3).
	want := c * c * c
	if got := res.P(l["t1"].GID, l["t3"].GID); math.Abs(got-want) > 1e-9 {
		t.Errorf("P(t1,t3) = %v, want %v", got, want)
	}
	// Transitive (t1,t2): P(t1,t3)·P(t3,t2) = c⁴.
	if got := res.P(l["t1"].GID, l["t2"].GID); math.Abs(got-want*c) > 1e-9 {
		t.Errorf("P(t1,t2) = %v, want %v", got, want*c)
	}
}

// TestThresholdTradeoff checks that raising the threshold drops the deep
// (lower-scored) matches first.
func TestThresholdTradeoff(t *testing.T) {
	d, l := datagen.PaperExample()
	res, err := soft.Chase(d, softRules(t, d.DB, 0.9), mlpred.DefaultRegistry(), 0)
	if err != nil {
		t.Fatal(err)
	}
	all := res.Matches(0.5)
	strict := res.Matches(0.85)
	if len(strict) >= len(all) {
		t.Errorf("threshold did not prune: %d vs %d", len(strict), len(all))
	}
	// The direct (t2,t3) survives 0.85; the deep (t1,t3) does not.
	has := func(ms []soft.Score, a, b relation.TID) bool {
		for _, m := range ms {
			if m.A == a && m.B == b || m.A == b && m.B == a {
				return true
			}
		}
		return false
	}
	if !has(strict, l["t2"].GID, l["t3"].GID) {
		t.Error("direct match pruned at 0.85")
	}
	if has(strict, l["t1"].GID, l["t3"].GID) {
		t.Error("deep match survived 0.85")
	}
	classes := res.Harden(0.5)
	if len(classes) != 3 {
		t.Errorf("Harden(0.5) classes = %d, want 3", len(classes))
	}
}

// TestValidation checks the input guards.
func TestValidation(t *testing.T) {
	d, _ := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := soft.Chase(d, []soft.Rule{{Rule: rules[0], Confidence: 0}},
		mlpred.DefaultRegistry(), 0); err == nil {
		t.Error("confidence 0 accepted")
	}
	if _, err := soft.Chase(d, []soft.Rule{{Rule: rules[4], Confidence: 0.5}},
		mlpred.DefaultRegistry(), 0); err == nil {
		t.Error("ML-headed rule accepted")
	}
}
