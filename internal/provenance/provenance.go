// Package provenance is the justification log of the production chase:
// a bounded, append-only record of why each fact entered Γ. Where the
// telemetry layer answers "how fast", this package answers "why this
// match" — the proof graph of the paper's Theorem 2 captured inside the
// optimized engines (Deduce, the parallel drain, IncDeduce, and the BSP
// supersteps of DMatch) instead of re-derived by the brute-force
// reference chase.
//
// Each Entry records the derived fact, the rule and valuation that
// produced it, the prerequisite facts of Γ it consumed (Deps), the ML
// predicate outcomes it relied on (Checks), and — under DMatch — the
// worker and superstep that derived it. Proof extraction walks the
// recorded dependency edges backwards (see proof.go); Merge stitches the
// per-worker logs of a parallel run into one globally ordered log, so
// cross-worker proofs survive fact routing.
//
// Capture is opt-in (chase.Options.Provenance / dmatch.Options.Provenance)
// and follows the telemetry discipline: a nil log costs one branch per
// applied fact and nothing on the valuation hot path.
package provenance

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dcer/internal/relation"
	"dcer/internal/telemetry"
)

// Kind discriminates the two fact kinds of Γ (mirrors chase.FactKind;
// this package stays a leaf so both chase and dmatch can import it).
type Kind uint8

const (
	// KindMatch is an id match (t.id, s.id).
	KindMatch Kind = iota
	// KindML is a validated ML prediction M(t[Ā], s[B̄]).
	KindML
)

// FactID identifies one fact of Γ. Match facts are canonical (A ≤ B);
// ML facts keep their pair order (predicates are not assumed symmetric).
type FactID struct {
	Kind  Kind         `json:"kind"`
	A     relation.TID `json:"a"`
	B     relation.TID `json:"b"`
	Model string       `json:"model,omitempty"`
}

// MatchID builds a canonical match FactID.
func MatchID(a, b relation.TID) FactID {
	if b < a {
		a, b = b, a
	}
	return FactID{Kind: KindMatch, A: a, B: b}
}

// MLID builds a validated-prediction FactID.
func MLID(model string, a, b relation.TID) FactID {
	return FactID{Kind: KindML, A: a, B: b, Model: model}
}

// canon returns the id in canonical form (match pairs ordered A ≤ B).
func (f FactID) canon() FactID {
	if f.Kind == KindMatch && f.B < f.A {
		f.A, f.B = f.B, f.A
	}
	return f
}

// String renders the fact for logs and debug payloads.
func (f FactID) String() string {
	if f.Kind == KindMatch {
		return fmt.Sprintf("(%d.id = %d.id)", f.A, f.B)
	}
	return fmt.Sprintf("%s(%d, %d)", f.Model, f.A, f.B)
}

// Origin says how a fact entered Γ.
type Origin uint8

const (
	// OriginRule is a direct rule application: every dynamic body literal
	// already held when the valuation was inspected.
	OriginRule Origin = iota
	// OriginDep is a fired dependency of H: the valuation was inspected
	// earlier with some body literals unsatisfied, and a later fact
	// completed the body.
	OriginDep
	// OriginExternal is a fact applied from outside the engine — in
	// DMatch, a fact routed from another worker. Merge prefers the
	// originating worker's derivation over these arrival records.
	OriginExternal
	// OriginIDDup is a literal id-value duplicate discovered after setup
	// (the ΔD path of InsertTuples): two tuples sharing an id value denote
	// the same entity by definition and need no rule.
	OriginIDDup
)

// String names the origin.
func (o Origin) String() string {
	switch o {
	case OriginRule:
		return "rule"
	case OriginDep:
		return "dep"
	case OriginExternal:
		return "external"
	case OriginIDDup:
		return "id-dup"
	}
	return fmt.Sprintf("Origin(%d)", uint8(o))
}

// MarshalText renders origins as their names in JSON debug payloads.
func (o Origin) MarshalText() ([]byte, error) { return []byte(o.String()), nil }

// UnmarshalText parses the textual origin names back, so the debug
// payloads round-trip through JSON consumers.
func (o *Origin) UnmarshalText(text []byte) error {
	for _, k := range []Origin{OriginRule, OriginDep, OriginExternal, OriginIDDup} {
		if string(text) == k.String() {
			*o = k
			return nil
		}
	}
	return fmt.Errorf("provenance: unknown origin %q", text)
}

// MLCheck is one ML predicate outcome a derivation relied on: the
// classifier's answer over the pair, as observed by the engine (through
// its answer cache) at derivation time.
type MLCheck struct {
	Model    string       `json:"model"`
	A        relation.TID `json:"a"`
	B        relation.TID `json:"b"`
	Positive bool         `json:"positive"`
}

// Entry is one recorded derivation: the fact, how it was derived, and
// the evidence.
type Entry struct {
	Fact   FactID `json:"fact"`
	Origin Origin `json:"origin"`
	// Rule and Valuation identify the rule application (empty for
	// external and id-dup origins): the rule name and one tuple id per
	// rule variable.
	Rule      string         `json:"rule,omitempty"`
	Valuation []relation.TID `json:"valuation,omitempty"`
	// Deps are the prerequisite facts of Γ the application consumed: the
	// id body predicates satisfied through earlier matches and the ML
	// body predicates satisfied through earlier validations.
	Deps []FactID `json:"deps,omitempty"`
	// Checks are the ML predicate outcomes consumed directly from the
	// classifiers (base evidence, checkable against D).
	Checks []MLCheck `json:"checks,omitempty"`
	// Worker and Step locate the derivation in a DMatch run (-1/0 for a
	// sequential engine).
	Worker int `json:"worker"`
	Step   int `json:"step"`
}

// DefaultLimit is the default capacity of a log, far above the Γ sizes of
// the bundled workloads but a hard bound on memory; when full, new
// entries are dropped and counted, and proof extraction reports
// incompleteness instead of returning a proof with holes.
const DefaultLimit = 1 << 20

// Log is the bounded justification log one engine records into. Record
// is called on the engine's fact-application path (single-goroutine per
// engine); Lookup, Entries, and the snapshot methods are safe for
// concurrent use from the debug endpoint.
type Log struct {
	mu      sync.Mutex
	entries []Entry
	index   map[FactID]int // canonical fact -> first entry index
	limit   int
	worker  int
	step    int

	dropped atomic.Int64
	// recordNs, when attached, times each Record call — the
	// dcer_provenance_* overhead family.
	recordNs *telemetry.Histogram
}

// NewLog creates a log bounded to limit entries (0 means DefaultLimit,
// negative means unbounded) recording worker -1, step 0.
func NewLog(limit int) *Log {
	if limit == 0 {
		limit = DefaultLimit
	}
	return &Log{index: make(map[FactID]int), limit: limit, worker: -1}
}

// SetWorker stamps subsequent entries with worker id w.
func (l *Log) SetWorker(w int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.worker = w
	l.mu.Unlock()
}

// SetStep stamps subsequent entries with BSP superstep s (the DMatch
// master calls it between supersteps).
func (l *Log) SetStep(s int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.step = s
	l.mu.Unlock()
}

// Record appends one derivation, stamping it with the log's worker and
// step. The first derivation of a fact wins; duplicates (the same fact
// re-derived by another rule or chunk) are ignored. It reports whether
// the entry was stored.
func (l *Log) Record(e Entry) bool {
	if l == nil {
		return false
	}
	var t0 time.Time
	timed := l.recordNs != nil
	if timed {
		t0 = time.Now()
	}
	key := e.Fact.canon()
	l.mu.Lock()
	if _, dup := l.index[key]; dup {
		l.mu.Unlock()
		return false
	}
	if l.limit > 0 && len(l.entries) >= l.limit {
		l.mu.Unlock()
		l.dropped.Add(1)
		return false
	}
	e.Worker, e.Step = l.worker, l.step
	l.index[key] = len(l.entries)
	l.entries = append(l.entries, e)
	l.mu.Unlock()
	if timed {
		l.recordNs.ObserveDuration(time.Since(t0))
	}
	return true
}

// Len returns the number of recorded entries.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Dropped returns how many entries were rejected for capacity.
func (l *Log) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped.Load()
}

// Complete reports whether every derivation offered to the log was
// retained — the precondition for a proof with no holes.
func (l *Log) Complete() bool { return l.Dropped() == 0 }

// Lookup returns the recorded derivation of a fact.
func (l *Log) Lookup(f FactID) (Entry, bool) {
	if l == nil {
		return Entry{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if i, ok := l.index[f.canon()]; ok {
		return l.entries[i], true
	}
	return Entry{}, false
}

// Entries returns a copy of the log in record order (a topological order
// of the dependency edges: every entry's prerequisites precede it).
func (l *Log) Entries() []Entry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Entry(nil), l.entries...)
}

// AttachMetrics registers the dcer_provenance_* family on reg: entry and
// drop gauges sharing the log as their source of truth, and the Record
// latency histogram (the capture overhead, observed per applied fact —
// the valuation hot path is never timed).
func (l *Log) AttachMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	if l == nil || reg == nil {
		return
	}
	reg.GaugeFunc("dcer_provenance_entries", func() float64 { return float64(l.Len()) }, labels...)
	reg.GaugeFunc("dcer_provenance_dropped", func() float64 { return float64(l.Dropped()) }, labels...)
	l.recordNs = reg.Histogram("dcer_provenance_record_ns", labels...)
}

// Summary is the debug-endpoint view of one log.
type Summary struct {
	Worker   int            `json:"worker"`
	Step     int            `json:"step"`
	Entries  int            `json:"entries"`
	Dropped  int64          `json:"dropped"`
	ByOrigin map[string]int `json:"by_origin"`
	// Recent holds the newest entries (bounded) so the live endpoint
	// shows what the engine is deriving right now.
	Recent []Entry `json:"recent,omitempty"`
}

// summaryRecent bounds how many entries a debug summary carries.
const summaryRecent = 16

// Summarize builds the debug view of the log.
func (l *Log) Summarize() Summary {
	s := Summary{Worker: -1, ByOrigin: map[string]int{}}
	if l == nil {
		return s
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s.Worker, s.Step = l.worker, l.step
	s.Entries = len(l.entries)
	s.Dropped = l.dropped.Load()
	for i := range l.entries {
		s.ByOrigin[l.entries[i].Origin.String()]++
	}
	lo := len(l.entries) - summaryRecent
	if lo < 0 {
		lo = 0
	}
	s.Recent = append([]Entry(nil), l.entries[lo:]...)
	return s
}

// Summarize builds the aggregate debug view of several logs (the DMatch
// per-worker logs), one Summary per log.
func Summarize(logs ...*Log) []Summary {
	out := make([]Summary, 0, len(logs))
	for _, l := range logs {
		out = append(out, l.Summarize())
	}
	return out
}
