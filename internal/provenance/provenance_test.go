package provenance

import (
	"testing"

	"dcer/internal/relation"
	"dcer/internal/unionfind"
)

func TestRecordFirstWinsAndLimit(t *testing.T) {
	l := NewLog(2)
	if !l.Record(Entry{Fact: MatchID(1, 2), Origin: OriginRule, Rule: "r1"}) {
		t.Fatal("first record rejected")
	}
	// Same fact, opposite order: canonical dedup.
	if l.Record(Entry{Fact: FactID{Kind: KindMatch, A: 2, B: 1}, Origin: OriginDep}) {
		t.Error("duplicate (canonicalized) fact recorded")
	}
	if !l.Record(Entry{Fact: MLID("m", 3, 4)}) {
		t.Fatal("second record rejected")
	}
	if l.Record(Entry{Fact: MatchID(5, 6)}) {
		t.Error("record beyond limit accepted")
	}
	if l.Len() != 2 || l.Dropped() != 1 || l.Complete() {
		t.Errorf("Len=%d Dropped=%d Complete=%v, want 2, 1, false", l.Len(), l.Dropped(), l.Complete())
	}
	e, ok := l.Lookup(FactID{Kind: KindMatch, A: 2, B: 1})
	if !ok || e.Rule != "r1" || e.Origin != OriginRule {
		t.Errorf("Lookup returned %+v, %v — want the first derivation", e, ok)
	}
	// ML ids are not canonicalized: (4,3) is a different fact.
	if _, ok := l.Lookup(MLID("m", 4, 3)); ok {
		t.Error("ML lookup canonicalized the pair order")
	}
}

func TestWorkerStepStamping(t *testing.T) {
	l := NewLog(0)
	l.SetWorker(3)
	l.SetStep(7)
	l.Record(Entry{Fact: MatchID(1, 2)})
	e, _ := l.Lookup(MatchID(1, 2))
	if e.Worker != 3 || e.Step != 7 {
		t.Errorf("stamped worker=%d step=%d, want 3, 7", e.Worker, e.Step)
	}
}

// TestMergePrefersDerivation checks the cross-worker stitching invariant:
// the originating worker's rule derivation (earlier superstep) displaces
// the arrival record of the same fact routed to another worker.
func TestMergePrefersDerivation(t *testing.T) {
	w0, w1 := NewLog(0), NewLog(0)
	w0.SetWorker(0)
	w1.SetWorker(1)
	w0.SetStep(0)
	w1.SetStep(0)
	w0.Record(Entry{Fact: MatchID(1, 2), Origin: OriginRule, Rule: "r1"})
	w1.SetStep(1)
	w1.Record(Entry{Fact: MatchID(1, 2), Origin: OriginExternal})
	w1.Record(Entry{Fact: MatchID(2, 3), Origin: OriginRule, Rule: "r2",
		Deps: []FactID{MatchID(1, 2)}})

	m := Merge(w0, w1)
	if m.Len() != 2 {
		t.Fatalf("merged Len = %d, want 2", m.Len())
	}
	e, _ := m.Lookup(MatchID(1, 2))
	if e.Origin != OriginRule || e.Worker != 0 {
		t.Errorf("merge kept the arrival record over the derivation: %+v", e)
	}
	// Record order must be topological: the derivation of (1,2) precedes
	// its consumer (2,3).
	ents := m.Entries()
	if ents[0].Fact != MatchID(1, 2) || ents[1].Fact != MatchID(2, 3) {
		t.Errorf("merged order not topological: %+v", ents)
	}
}

func TestProofBackwardClosure(t *testing.T) {
	l := NewLog(0)
	l.Record(Entry{Fact: MLID("m", 0, 1), Origin: OriginRule, Rule: "rv"})
	l.Record(Entry{Fact: MatchID(0, 1), Origin: OriginRule, Rule: "r1",
		Deps: []FactID{MLID("m", 0, 1)}})
	l.Record(Entry{Fact: MatchID(2, 3), Origin: OriginRule, Rule: "r2"}) // unrelated
	base := unionfind.New(4)

	proof, err := l.Proof([2]relation.TID{0, 1}, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(proof) != 2 {
		t.Fatalf("proof has %d steps, want 2 (the unrelated match excluded): %+v", len(proof), proof)
	}
	if proof[0].Fact != MLID("m", 0, 1) || proof[1].Fact != MatchID(0, 1) {
		t.Errorf("proof order wrong: %+v", proof)
	}

	if _, err := l.Proof([2]relation.TID{0, 2}, base); err != ErrNotEntailed {
		t.Errorf("unrelated pair: err = %v, want ErrNotEntailed", err)
	}

	// A dep with no recorded derivation and no base coverage: incomplete.
	l2 := NewLog(0)
	l2.Record(Entry{Fact: MatchID(0, 1), Origin: OriginRule, Rule: "r1",
		Deps: []FactID{MLID("x", 2, 3)}})
	if _, err := l2.Proof([2]relation.TID{0, 1}, base); err != ErrIncomplete {
		t.Errorf("missing ML dep: err = %v, want ErrIncomplete", err)
	}
}
