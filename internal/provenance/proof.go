package provenance

import (
	"errors"
	"sort"

	"dcer/internal/relation"
	"dcer/internal/unionfind"
)

// ErrNotEntailed reports that the target pair is not matched by the
// recorded facts (plus the base equivalence), so no proof exists.
var ErrNotEntailed = errors.New("provenance: pair not entailed by recorded facts")

// ErrIncomplete reports that a proof exists but the log cannot supply it:
// a prerequisite's derivation was dropped (capacity) or never offered.
// Callers fall back to the reference chase in that case.
var ErrIncomplete = errors.New("provenance: log incomplete, derivation missing")

// Proof extracts a justification of target from the log: a subsequence of
// the recorded entries, in record order (a valid derivation order), whose
// facts suffice to match the pair. base is the pre-chase id equivalence of
// the dataset — literal id-value duplicates merged at setup, which need no
// recorded derivation (chase.BuildEquivalence(d, nil) supplies it).
//
// The extraction mirrors complexity.ProofOf: seed the need-set with every
// recorded match inside the target's final equivalence class (the sound
// over-approximation — any of those merges may be on the path connecting
// the pair), then close backwards over the recorded dependency edges. ML
// dependencies resolve to their own entries; match dependencies already
// implied by base need no entry.
func (l *Log) Proof(target [2]relation.TID, base *unionfind.UnionFind) ([]Entry, error) {
	if l == nil {
		return nil, ErrIncomplete
	}
	entries := l.Entries()

	// Final equivalence = base + every recorded match.
	uf := base.Clone()
	max := uf.Len()
	for i := range entries {
		f := entries[i].Fact
		if int(f.A)+1 > max {
			max = int(f.A) + 1
		}
		if int(f.B)+1 > max {
			max = int(f.B) + 1
		}
	}
	uf.Grow(max)
	for i := range entries {
		if entries[i].Fact.Kind == KindMatch {
			uf.Union(int(entries[i].Fact.A), int(entries[i].Fact.B))
		}
	}
	a, b := int(target[0]), int(target[1])
	if a >= uf.Len() || b >= uf.Len() || !uf.Same(a, b) {
		return nil, ErrNotEntailed
	}

	// Index entries by canonical fact and group match entries by final
	// class root, working over the snapshot so the extraction is stable
	// even if the engine is still recording.
	index := make(map[FactID]int, len(entries))
	byRoot := make(map[int][]int)
	for i := range entries {
		f := entries[i].Fact.canon()
		if _, dup := index[f]; !dup {
			index[f] = i
		}
		if f.Kind == KindMatch {
			r := uf.Find(int(f.A))
			byRoot[r] = append(byRoot[r], i)
		}
	}

	need := make(map[int]bool)
	var work []int
	add := func(i int) {
		if !need[i] {
			need[i] = true
			work = append(work, i)
		}
	}
	// Seed: every recorded match in the target's class.
	for _, i := range byRoot[uf.Find(a)] {
		add(i)
	}
	// Backward closure over recorded dependency edges.
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		for _, dep := range entries[i].Deps {
			dep = dep.canon()
			if j, ok := index[dep]; ok {
				add(j)
				continue
			}
			if dep.Kind == KindMatch {
				// No entry: sound only if the base equivalence already
				// implies it (a setup id-dup merge, checkable against D).
				if int(dep.A) < base.Len() && int(dep.B) < base.Len() && base.Same(int(dep.A), int(dep.B)) {
					continue
				}
				// Otherwise the merge chain connecting the dep must be
				// recorded somewhere in its class; pull the whole class in.
				if int(dep.A) < uf.Len() {
					if cls := byRoot[uf.Find(int(dep.A))]; len(cls) > 0 {
						for _, j := range cls {
							add(j)
						}
						continue
					}
				}
				return nil, ErrIncomplete
			}
			// A consumed ML validation with no recorded derivation: the
			// log missed it (dropped at capacity).
			return nil, ErrIncomplete
		}
	}

	proof := make([]int, 0, len(need))
	for i := range need {
		proof = append(proof, i)
	}
	sort.Ints(proof)
	out := make([]Entry, len(proof))
	for k, i := range proof {
		out[k] = entries[i]
	}
	return out, nil
}

// Merge stitches per-worker logs of a DMatch run into one global log in a
// valid derivation order. Entries sort by (superstep, worker, in-log
// sequence); within a superstep a worker consumes only its own earlier
// entries and facts routed in previous supersteps, and a routed fact's
// arrival record (OriginExternal) always carries a later superstep than
// the originating worker's derivation — so the sort is a topological
// order of the cross-worker dependency edges, and first-wins per fact
// keeps the real derivation over arrival records.
func Merge(logs ...*Log) *Log {
	type keyed struct {
		step, worker, seq int
		e                 Entry
	}
	var all []keyed
	var dropped int64
	for _, l := range logs {
		for seq, e := range l.Entries() {
			all = append(all, keyed{step: e.Step, worker: e.Worker, seq: seq, e: e})
		}
		dropped += l.Dropped()
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].step != all[j].step {
			return all[i].step < all[j].step
		}
		if all[i].worker != all[j].worker {
			return all[i].worker < all[j].worker
		}
		return all[i].seq < all[j].seq
	})
	m := NewLog(-1)
	for _, k := range all {
		e := k.e
		// Record stamps worker/step from the log's own state; restore the
		// entry's origin stamps afterwards.
		key := e.Fact.canon()
		if _, dup := m.index[key]; dup {
			continue
		}
		m.index[key] = len(m.entries)
		m.entries = append(m.entries, e)
	}
	m.dropped.Store(dropped)
	return m
}
