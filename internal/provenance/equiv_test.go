package provenance_test

// Provenance ≡ reference: for random small instances, every proof
// extracted from the production justification log must replay through
// complexity.VerifyProof — the independent polynomial verifier of
// Theorem 2(1) — and the log must entail exactly the pairs the
// brute-force NaiveChase matches. Checked under the sequential drain, the
// forced batched/parallel drain, and the BSP engine with w ≥ 2.

import (
	"fmt"
	"math/rand"
	"testing"

	"dcer/internal/chase"
	"dcer/internal/complexity"
	"dcer/internal/dmatch"
	"dcer/internal/mlpred"
	"dcer/internal/provenance"
	"dcer/internal/relation"
	"dcer/internal/rule"
)

// randomInstance builds a small random dataset over a fixed 3-relation
// schema with tiny value domains (to force collisions) and a random rule
// set mixing equality, constant, id and ML predicates — the same
// construction the chase oracle tests use (internal/chase/random_test.go;
// duplicated here because test helpers do not cross packages).
func randomInstance(seed int64) (*relation.Dataset, []*rule.Rule, error) {
	rng := rand.New(rand.NewSource(seed))
	str := relation.TypeString
	a := func(n string) relation.Attribute { return relation.Attribute{Name: n, Type: str} }
	db := relation.MustDatabase(
		relation.MustSchema("P", "pk", a("pk"), a("x"), a("y"), a("ref")),
		relation.MustSchema("Q", "qk", a("qk"), a("x"), a("y"), a("ref")),
		relation.MustSchema("R", "rk", a("rk"), a("x"), a("y"), a("ref")),
	)
	d := relation.NewDataset(db)
	names := []string{"P", "Q", "R"}
	vals := []string{"u", "v", "w"}
	size := 6 + rng.Intn(10)
	for _, rel := range names {
		for i := 0; i < size; i++ {
			d.MustAppend(rel,
				relation.S(fmt.Sprintf("%s%d", rel, i)),
				relation.S(vals[rng.Intn(len(vals))]),
				relation.S(vals[rng.Intn(len(vals))]),
				relation.S(fmt.Sprintf("%s%d", names[rng.Intn(3)], rng.Intn(size))))
		}
	}
	attrs := []string{"x", "y"}
	var rulesText string
	numRules := 2 + rng.Intn(4)
	for ri := 0; ri < numRules; ri++ {
		relA := names[rng.Intn(3)]
		relB := names[rng.Intn(3)]
		body := ""
		for k := 0; k <= rng.Intn(2); k++ {
			body += fmt.Sprintf(" ^ a.%s = b.%s", attrs[rng.Intn(2)], attrs[rng.Intn(2)])
		}
		extra := ""
		switch rng.Intn(4) {
		case 0:
			body += fmt.Sprintf(" ^ a.x = %q", vals[rng.Intn(len(vals))])
		case 1:
			body += " ^ lev080(a.y, b.y)"
		case 2:
			relC := names[rng.Intn(3)]
			extra = fmt.Sprintf(" ^ %s(c) ^ %s(e) ^ a.ref = c.%sk ^ b.ref = e.%sk ^ c.id = e.id",
				relC, relC, lower(relC), lower(relC))
		case 3:
			relC := names[rng.Intn(3)]
			extra = fmt.Sprintf(" ^ %s(c) ^ a.ref = c.%sk ^ c.x = b.y", relC, lower(relC))
		}
		rulesText += fmt.Sprintf("r%d: %s(a) ^ %s(b)%s%s -> a.id = b.id\n",
			ri, relA, relB, body, extra)
	}
	rules, err := rule.ParseResolved(rulesText, db)
	return d, rules, err
}

func lower(s string) string { return string(s[0] + 32) }

// replayProof converts a proof extracted from the production log into the
// verifier's fact sequence and replays it. Setup id-value duplicates need
// no step (the verifier pre-merges them from D); a surviving external
// (arrival) record means the derivation is missing and the proof is
// unsound.
func replayProof(t *testing.T, tag string, d *relation.Dataset, rules []*rule.Rule,
	reg *mlpred.Registry, proof []provenance.Entry, a, b relation.TID) {
	t.Helper()
	var facts []complexity.Fact
	for _, en := range proof {
		switch en.Origin {
		case provenance.OriginIDDup:
			continue
		case provenance.OriginExternal:
			t.Fatalf("%s: proof of (%d,%d) contains an unresolved external record: %+v", tag, a, b, en)
		}
		if en.Rule == "" {
			t.Fatalf("%s: proof of (%d,%d) has a rule-less step: %+v", tag, a, b, en)
		}
		facts = append(facts, complexity.Fact{
			IsMatch:   en.Fact.Kind == provenance.KindMatch,
			A:         en.Fact.A,
			B:         en.Fact.B,
			Model:     en.Fact.Model,
			Rule:      en.Rule,
			Valuation: en.Valuation,
		})
	}
	ok, err := complexity.VerifyProof(d, rules, reg, facts, [2]relation.TID{a, b})
	if err != nil {
		t.Fatalf("%s: proof of (%d,%d) rejected: %v\nproof: %+v", tag, a, b, err, proof)
	}
	if !ok {
		t.Fatalf("%s: proof of (%d,%d) does not entail the target\nproof: %+v", tag, a, b, proof)
	}
}

// TestProofReplaysAgainstVerifier is the sequential-engine property: under
// every drain mode, each matched pair gets a proof from the log that the
// independent verifier accepts, and unmatched pairs get ErrNotEntailed.
func TestProofReplaysAgainstVerifier(t *testing.T) {
	reg := mlpred.DefaultRegistry()
	seeds := int64(20)
	if testing.Short() {
		seeds = 6
	}
	modes := []struct {
		tag  string
		opts chase.Options
	}{
		{"seqdrain", chase.Options{ShareIndexes: true, SequentialDeduce: true, SequentialDrain: true}},
		{"pardrain", chase.Options{ShareIndexes: true, DrainParallelMin: 1}},
		{"default", chase.Options{ShareIndexes: true}},
	}
	for seed := int64(0); seed < seeds; seed++ {
		d, rules, err := randomInstance(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		naive, err := complexity.NaiveChase(d, rules, reg)
		if err != nil {
			t.Fatalf("seed %d: naive: %v", seed, err)
		}
		for _, m := range modes {
			opts := m.opts
			log := provenance.NewLog(0)
			opts.Provenance = log
			eng, err := chase.New(d, rules, reg, opts)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, m.tag, err)
			}
			eng.Run()
			tag := fmt.Sprintf("seed %d %s", seed, m.tag)
			if !log.Complete() {
				t.Fatalf("%s: log dropped %d entries", tag, log.Dropped())
			}
			for i := 0; i < d.Size(); i++ {
				for j := i + 1; j < d.Size(); j++ {
					a, b := relation.TID(i), relation.TID(j)
					proof, err := eng.Proof(a, b)
					if !naive.Same(a, b) {
						if err != provenance.ErrNotEntailed {
							t.Fatalf("%s: unmatched (%d,%d): err = %v, want ErrNotEntailed", tag, a, b, err)
						}
						continue
					}
					if err != nil {
						t.Fatalf("%s: matched (%d,%d) has no proof: %v", tag, a, b, err)
					}
					replayProof(t, tag, d, rules, reg, proof, a, b)
				}
			}
		}
	}
}

// TestDMatchProofEveryPair is the parallel acceptance property: on a
// DMatch run with w=4 workers and provenance on, every pair in Γ yields a
// proof from the stitched cross-worker log — no NaiveChase involved — and
// each proof replays through the verifier.
func TestDMatchProofEveryPair(t *testing.T) {
	reg := mlpred.DefaultRegistry()
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(300); seed < 300+seeds; seed++ {
		d, rules, err := randomInstance(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		workers := 4
		if seed%3 == 0 {
			workers = 2
		}
		res, err := dmatch.Run(d, rules, reg, dmatch.Options{Workers: workers, Provenance: true})
		if err != nil {
			t.Fatalf("seed %d: dmatch: %v", seed, err)
		}
		log := res.Provenance()
		if log == nil || !log.Complete() {
			t.Fatalf("seed %d: merged log missing or incomplete", seed)
		}
		tag := fmt.Sprintf("seed %d w=%d", seed, workers)
		for _, f := range res.Matches {
			proof, err := res.Proof(f.A, f.B)
			if err != nil {
				t.Fatalf("%s: matched pair (%d,%d) has no proof: %v", tag, f.A, f.B, err)
			}
			replayProof(t, tag, d, rules, reg, proof, f.A, f.B)
		}
		// Entailment must agree with the reference chase in both directions.
		naive, err := complexity.NaiveChase(d, rules, reg)
		if err != nil {
			t.Fatalf("seed %d: naive: %v", seed, err)
		}
		for i := 0; i < d.Size(); i++ {
			for j := i + 1; j < d.Size(); j++ {
				a, b := relation.TID(i), relation.TID(j)
				_, err := res.Proof(a, b)
				if naive.Same(a, b) && err != nil {
					t.Fatalf("%s: naive matches (%d,%d) but log yields %v", tag, a, b, err)
				}
				if !naive.Same(a, b) && err != provenance.ErrNotEntailed {
					t.Fatalf("%s: naive rejects (%d,%d) but log yields %v", tag, a, b, err)
				}
			}
		}
	}
}
