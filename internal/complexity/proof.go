package complexity

import (
	"fmt"

	"dcer/internal/mlpred"
	"dcer/internal/relation"
	"dcer/internal/rule"
	"dcer/internal/unionfind"
)

// VerifyProof is the polynomial-time verifier behind the NP-membership
// argument of Theorem 2(1): given a candidate proof graph — a sequence of
// facts in topological order, each carrying the rule and valuation that
// derives it — it checks that every step is a sound rule application under
// the Γ built from the preceding steps, and that the target match is
// entailed at the end. It is deliberately implemented independently of
// NaiveChase so that the two cross-validate each other in tests.
//
// The verifier runs in time polynomial in |proof| + |D| + ‖Σ‖, matching
// the small-model property: a valid proof of size ‖Σ‖(|Σ|+1)|D|² exists
// iff (D, Σ) ⊨ (target[0].id, target[1].id).
func VerifyProof(d *relation.Dataset, rules []*rule.Rule, reg *mlpred.Registry, proof []Fact, target [2]relation.TID) (bool, error) {
	byName := make(map[string]*rule.Rule, len(rules))
	for _, r := range rules {
		byName[r.Name] = r
	}
	size := 0
	for _, t := range d.Tuples() {
		if int(t.GID)+1 > size {
			size = int(t.GID) + 1
		}
	}
	eq := unionfind.New(size)
	for _, rel := range d.Relations {
		byID := make(map[string]relation.TID)
		for _, t := range rel.Tuples {
			k := t.Val(rel.Schema.IDAttr).Key()
			if first, ok := byID[k]; ok {
				eq.Union(int(first), int(t.GID))
			} else {
				byID[k] = t.GID
			}
		}
	}
	validated := make(map[string]bool)
	cache := mlpred.NewCache()

	for step, f := range proof {
		r, ok := byName[f.Rule]
		if !ok {
			return false, fmt.Errorf("complexity: step %d uses unknown rule %q", step, f.Rule)
		}
		if len(f.Valuation) != len(r.Vars) {
			return false, fmt.Errorf("complexity: step %d: valuation arity %d, rule %s needs %d",
				step, len(f.Valuation), r.Name, len(r.Vars))
		}
		binding := make([]*relation.Tuple, len(r.Vars))
		for i, gid := range f.Valuation {
			t := d.Tuple(gid)
			if t == nil {
				return false, fmt.Errorf("complexity: step %d references missing tuple %d", step, gid)
			}
			if t.Rel != r.Vars[i].RelIdx {
				return false, fmt.Errorf("complexity: step %d binds %s-variable to a tuple of relation %d",
					step, r.Vars[i].Rel, t.Rel)
			}
			binding[i] = t
		}
		okStep, err := checkBody(r, reg, cache, eq, validated, binding)
		if err != nil {
			return false, fmt.Errorf("complexity: step %d: %w", step, err)
		}
		if !okStep {
			return false, fmt.Errorf("complexity: step %d: precondition of %s not satisfied", step, r.Name)
		}
		h := &r.Head
		a, b := binding[h.V1], binding[h.V2]
		if h.Kind == rule.PredID {
			if !f.IsMatch || !sameTID(f.A, f.B, a.GID, b.GID) {
				return false, fmt.Errorf("complexity: step %d: head mismatch", step)
			}
			eq.Union(int(a.GID), int(b.GID))
		} else {
			if f.IsMatch || f.Model != h.Model || !sameTID(f.A, f.B, a.GID, b.GID) {
				return false, fmt.Errorf("complexity: step %d: head mismatch", step)
			}
			validated[f.key()] = true
		}
	}
	return target[0] == target[1] || eq.Same(int(target[0]), int(target[1])), nil
}

func sameTID(a, b, x, y relation.TID) bool {
	return a == x && b == y || a == y && b == x
}

// checkBody verifies every precondition predicate of r under the valuation
// binding, the current equivalence relation and validated predictions.
func checkBody(r *rule.Rule, reg *mlpred.Registry, cache *mlpred.Cache,
	eq *unionfind.UnionFind, validated map[string]bool, binding []*relation.Tuple) (bool, error) {
	for i := range r.Body {
		p := &r.Body[i]
		switch p.Kind {
		case rule.PredConst:
			if !binding[p.V1].Val(p.A1).Equal(p.Const) {
				return false, nil
			}
		case rule.PredEq:
			if !binding[p.V1].Val(p.A1).Equal(binding[p.V2].Val(p.A2)) {
				return false, nil
			}
		case rule.PredID:
			a, b := binding[p.V1].GID, binding[p.V2].GID
			if a != b && !eq.Same(int(a), int(b)) {
				return false, nil
			}
		case rule.PredML:
			a, b := binding[p.V1], binding[p.V2]
			if validated[Fact{Model: p.Model, A: a.GID, B: b.GID}.key()] {
				continue
			}
			cl, err := reg.Get(p.Model)
			if err != nil {
				return false, err
			}
			la := make([]relation.Value, len(p.A1Vec))
			for j, at := range p.A1Vec {
				la[j] = a.Val(at)
			}
			lb := make([]relation.Value, len(p.A2Vec))
			for j, at := range p.A2Vec {
				lb[j] = b.Val(at)
			}
			if !cache.Predict(cl, la, lb) {
				return false, nil
			}
		}
	}
	return true, nil
}

// ProofOf extracts from a chase result the minimal proof sub-sequence that
// derives the target match: the facts reachable backwards from any fact
// chain merging the target pair. It returns nil when the target is not
// entailed.
func ProofOf(res *Result, target [2]relation.TID) []Fact {
	if !res.Same(target[0], target[1]) {
		return nil
	}
	// Collect all match facts; replay unions to find which facts
	// contributed to the target's class, then close backwards over
	// justifications. Keeping every match fact of the class is within the
	// small-model bound and always sound.
	need := make(map[int]bool)
	root := res.Eq.Find(int(target[0]))
	for i, f := range res.Facts {
		if f.IsMatch && res.Eq.Find(int(f.A)) == root {
			need[i] = true
		}
	}
	// Backward closure over body justifications.
	for {
		grew := false
		for i := range need {
			for _, b := range res.Facts[i].Body {
				if !need[b] {
					need[b] = true
					grew = true
				}
			}
		}
		if !grew {
			break
		}
	}
	var proof []Fact
	remap := make(map[int]int)
	for i, f := range res.Facts {
		if need[i] {
			nf := f
			nf.Body = nil
			for _, b := range f.Body {
				nf.Body = append(nf.Body, remap[b])
			}
			remap[i] = len(proof)
			proof = append(proof, nf)
		}
	}
	return proof
}
