// Package complexity provides the theory artifacts of Section III: the
// paper's size bounds, a naive reference chase that tracks justifications
// (usable as a correctness oracle for the optimized engine and as the
// PTIME algorithm for deep ER of Theorem 2(2)), proof graphs with a
// polynomial-time verifier (the NP-membership argument of Theorem 2(1)),
// and the acyclic-case solver of Theorem 3.
package complexity

import (
	"fmt"

	"dcer/internal/mlpred"
	"dcer/internal/relation"
	"dcer/internal/rule"
	"dcer/internal/unionfind"
)

// Bound returns the paper's bound ‖Σ‖·(|Σ|+1)·|D|² on the number of
// matches and validated ML predictions in Γ, where numRules = ‖Σ‖,
// maxVars = |Σ| (the maximum number of tuple variables of any rule) and
// size = |D|.
func Bound(numRules, maxVars, size int) int {
	return numRules * (maxVars + 1) * size * size
}

// Fact mirrors a deduced fact with its justification: the rule applied and
// the valuation (one tuple per rule variable), plus the body facts (id and
// ML literals) the application consumed. Base equality predicates need no
// justification — they are checkable directly against D.
type Fact struct {
	IsMatch bool
	A, B    relation.TID
	Model   string

	Rule      string
	Valuation []relation.TID
	Body      []int // indexes of earlier facts this application used
}

func (f Fact) key() string {
	if f.IsMatch {
		a, b := f.A, f.B
		if b < a {
			a, b = b, a
		}
		return fmt.Sprintf("m:%d,%d", a, b)
	}
	return fmt.Sprintf("v:%s:%d,%d", f.Model, f.A, f.B)
}

// Result is the output of the naive chase: the ordered list of deduced
// facts (a proof graph in topological order) and the final equivalence
// relation.
type Result struct {
	Facts []Fact
	Eq    *unionfind.UnionFind
	d     *relation.Dataset
}

// Same reports whether (D, Σ) ⊨ (a.id, b.id).
func (r *Result) Same(a, b relation.TID) bool {
	return a == b || r.Eq.Same(int(a), int(b))
}

// Classes returns the non-singleton equivalence classes.
func (r *Result) Classes() [][]relation.TID {
	groups := make(map[int][]relation.TID)
	for _, t := range r.d.Tuples() {
		groups[r.Eq.Find(int(t.GID))] = append(groups[r.Eq.Find(int(t.GID))], t.GID)
	}
	var out [][]relation.TID
	for _, g := range groups {
		if len(g) > 1 {
			out = append(out, g)
		}
	}
	return out
}

// NaiveChase runs the textbook chase to a fixpoint: in every round it
// enumerates every valuation of every rule by brute force and applies all
// enabled rules, recording justifications. Exponential in the number of
// tuple variables but linear rounds — the reference oracle for small
// inputs, and the PTIME deep-ER procedure when the variable count is a
// constant (Theorem 2(2)).
func NaiveChase(d *relation.Dataset, rules []*rule.Rule, reg *mlpred.Registry) (*Result, error) {
	size := 0
	for _, t := range d.Tuples() {
		if int(t.GID)+1 > size {
			size = int(t.GID) + 1
		}
	}
	res := &Result{Eq: unionfind.New(size), d: d}
	// Materialize every tuple's boxed attribute vector once. The naive
	// enumeration evaluates predicates Ω(|D|^(k-1)) times per tuple, so
	// rehydrating values from the packed columns inside the cross
	// product would dominate the run.
	mat := make([][]relation.Value, size)
	for _, t := range d.Tuples() {
		mat[t.GID] = t.Values()
	}
	// Literal id-value duplicates are the same entity by definition.
	for _, rel := range d.Relations {
		byID := make(map[string]relation.TID)
		for _, t := range rel.Tuples {
			k := mat[t.GID][rel.Schema.IDAttr].Key()
			if first, ok := byID[k]; ok {
				res.Eq.Union(int(first), int(t.GID))
			} else {
				byID[k] = t.GID
			}
		}
	}
	validated := make(map[string]int) // fact key -> index in Facts
	cache := mlpred.NewCache()

	type mlBound struct {
		pred *rule.Pred
		cl   mlpred.Classifier
	}
	classifiers := make([][]mlBound, len(rules))
	for ri, r := range rules {
		if !r.Resolved() {
			return nil, fmt.Errorf("complexity: rule %s not resolved", r.Name)
		}
		for i := range r.Body {
			p := &r.Body[i]
			if p.Kind == rule.PredML {
				cl, err := reg.Get(p.Model)
				if err != nil {
					return nil, err
				}
				classifiers[ri] = append(classifiers[ri], mlBound{p, cl})
			}
		}
		if r.Head.Kind == rule.PredML {
			// Resolve eagerly so a missing head classifier fails fast,
			// even though validation itself does not invoke it.
			if _, err := reg.Get(r.Head.Model); err != nil {
				return nil, err
			}
		}
	}

	gather := func(t *relation.Tuple, attrs []int) []relation.Value {
		vs := make([]relation.Value, len(attrs))
		for i, a := range attrs {
			vs[i] = mat[t.GID][a]
		}
		return vs
	}

	for round := 0; ; round++ {
		progressed := false
		for ri, r := range rules {
			binding := make([]*relation.Tuple, len(r.Vars))
			var walk func(v int)
			apply := func() {
				var body []int
				// Check every body predicate under the current Γ.
				for i := range r.Body {
					p := &r.Body[i]
					switch p.Kind {
					case rule.PredConst:
						if !mat[binding[p.V1].GID][p.A1].Equal(p.Const) {
							return
						}
					case rule.PredEq:
						if !mat[binding[p.V1].GID][p.A1].Equal(mat[binding[p.V2].GID][p.A2]) {
							return
						}
					case rule.PredID:
						a, b := binding[p.V1].GID, binding[p.V2].GID
						if a != b && !res.Eq.Same(int(a), int(b)) {
							return
						}
						if a != b {
							if fi, ok := validated[Fact{IsMatch: true, A: a, B: b}.key()]; ok {
								body = append(body, fi)
							} else {
								// The pair is matched transitively; justify
								// with every match fact of the shared class
								// (a sound over-approximation within the
								// small-model bound).
								root := res.Eq.Find(int(a))
								for fi := range res.Facts {
									if res.Facts[fi].IsMatch && res.Eq.Find(int(res.Facts[fi].A)) == root {
										body = append(body, fi)
									}
								}
							}
						}
					case rule.PredML:
						var cl mlpred.Classifier
						for _, mb := range classifiers[ri] {
							if mb.pred == p {
								cl = mb.cl
							}
						}
						a, b := binding[p.V1], binding[p.V2]
						k := Fact{IsMatch: false, Model: p.Model, A: a.GID, B: b.GID}.key()
						if fi, ok := validated[k]; ok {
							body = append(body, fi)
							continue
						}
						// Not validated in Γ: the predicate holds only if
						// the classifier itself predicts true. (A later
						// round may validate it via a rule head, and the
						// fixpoint loop re-enumerates every round.)
						if !cache.Predict(cl, gather(a, p.A1Vec), gather(b, p.A2Vec)) {
							return
						}
					}
				}
				// Apply the head.
				h := &r.Head
				a, b := binding[h.V1], binding[h.V2]
				if a == b {
					return
				}
				var f Fact
				if h.Kind == rule.PredID {
					if res.Eq.Same(int(a.GID), int(b.GID)) {
						return
					}
					f = Fact{IsMatch: true, A: a.GID, B: b.GID}
					res.Eq.Union(int(a.GID), int(b.GID))
				} else {
					f = Fact{IsMatch: false, Model: h.Model, A: a.GID, B: b.GID}
					if _, ok := validated[f.key()]; ok {
						return
					}
				}
				f.Rule = r.Name
				f.Valuation = make([]relation.TID, len(binding))
				for i, t := range binding {
					f.Valuation[i] = t.GID
				}
				f.Body = body
				validated[f.key()] = len(res.Facts)
				res.Facts = append(res.Facts, f)
				progressed = true
			}
			walk = func(v int) {
				if v == len(r.Vars) {
					apply()
					return
				}
				for _, t := range d.Relations[r.Vars[v].RelIdx].Tuples {
					binding[v] = t
					walk(v + 1)
				}
			}
			walk(0)
		}
		if !progressed {
			break
		}
		if round > Bound(len(rules), rule.MaxVars(rules), size) {
			return nil, fmt.Errorf("complexity: chase exceeded the theoretical bound; non-terminating?")
		}
	}
	return res, nil
}

// SolveAcyclic is the tractable-case solver of Theorem 3: it verifies
// every rule's precondition hypergraph is acyclic and then chases. (The
// chase itself is shared; acyclicity is what bounds the valuation
// enumeration polynomially via join trees.)
func SolveAcyclic(d *relation.Dataset, rules []*rule.Rule, reg *mlpred.Registry) (*Result, error) {
	for _, r := range rules {
		ok, err := rule.IsAcyclic(r)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("complexity: rule %s is cyclic; Theorem 3 does not apply", r.Name)
		}
	}
	return NaiveChase(d, rules, reg)
}
