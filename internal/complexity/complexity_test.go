package complexity_test

import (
	"testing"

	"dcer/internal/chase"
	"dcer/internal/complexity"
	"dcer/internal/datagen"
	"dcer/internal/mlpred"
	"dcer/internal/relation"
	"dcer/internal/rule"
)

// TestNaiveChaseMatchesEngine cross-validates the brute-force reference
// chase against the optimized engine on the paper's running example.
func TestNaiveChaseMatchesEngine(t *testing.T) {
	d, l := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := complexity.NaiveChase(d, rules, mlpred.DefaultRegistry())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chase.New(d, rules, mlpred.DefaultRegistry(), chase.Options{ShareIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	for _, a := range []string{"t1", "t2", "t3", "t4", "t5", "t9", "t10", "t12", "t13"} {
		for _, b := range []string{"t1", "t2", "t3", "t4", "t5", "t9", "t10", "t12", "t13"} {
			if naive.Same(l[a].GID, l[b].GID) != eng.Same(l[a].GID, l[b].GID) {
				t.Errorf("naive and engine disagree on (%s, %s)", a, b)
			}
		}
	}
}

// TestProofGraphRoundTrip extracts the proof of the deep match (t1, t3)
// and checks the independent PTIME verifier accepts it, and that the proof
// stays within the small-model bound of Theorem 2.
func TestProofGraphRoundTrip(t *testing.T) {
	d, l := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := complexity.NaiveChase(d, rules, mlpred.DefaultRegistry())
	if err != nil {
		t.Fatal(err)
	}
	target := [2]relation.TID{l["t1"].GID, l["t3"].GID}
	proof := complexity.ProofOf(res, target)
	if proof == nil {
		t.Fatal("no proof extracted for (t1, t3)")
	}
	bound := complexity.Bound(len(rules), rule.MaxVars(rules), d.Size())
	if len(proof) > bound {
		t.Errorf("proof size %d exceeds bound %d", len(proof), bound)
	}
	ok, err := complexity.VerifyProof(d, rules, mlpred.DefaultRegistry(), proof, target)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !ok {
		t.Error("verifier rejected a valid proof")
	}
	// The proof must be genuinely deep: it needs the product and shop
	// matches before the customer match.
	var sawProduct, sawShop bool
	for _, f := range proof {
		switch f.Rule {
		case "phi2":
			sawProduct = true
		case "phi3":
			sawShop = true
		}
	}
	if !sawProduct || !sawShop {
		t.Errorf("proof lacks the prerequisite steps (product=%v shop=%v)", sawProduct, sawShop)
	}
}

// TestVerifyProofRejectsBogus checks the verifier rejects a fabricated
// step whose precondition does not hold.
func TestVerifyProofRejectsBogus(t *testing.T) {
	d, l := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	// Claim phi1 matches t1 and t4 (different name/phone/addr).
	bogus := []complexity.Fact{{
		IsMatch:   true,
		A:         l["t1"].GID,
		B:         l["t4"].GID,
		Rule:      "phi1",
		Valuation: []relation.TID{l["t1"].GID, l["t4"].GID},
	}}
	ok, err := complexity.VerifyProof(d, rules, mlpred.DefaultRegistry(), bogus,
		[2]relation.TID{l["t1"].GID, l["t4"].GID})
	if err == nil && ok {
		t.Error("verifier accepted a bogus proof")
	}
}

// TestVerifyProofRejectsWrongOrder checks topological validity: a deep
// step placed before its prerequisites must fail.
func TestVerifyProofRejectsWrongOrder(t *testing.T) {
	d, l := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := complexity.NaiveChase(d, rules, mlpred.DefaultRegistry())
	if err != nil {
		t.Fatal(err)
	}
	target := [2]relation.TID{l["t1"].GID, l["t3"].GID}
	proof := complexity.ProofOf(res, target)
	if len(proof) < 2 {
		t.Skip("proof too short to reorder")
	}
	// Move the last (deepest) step to the front.
	reordered := append([]complexity.Fact{proof[len(proof)-1]}, proof[:len(proof)-1]...)
	ok, err := complexity.VerifyProof(d, rules, mlpred.DefaultRegistry(), reordered, target)
	if err == nil && ok {
		t.Error("verifier accepted an out-of-order proof")
	}
}

// TestAcyclicSolver exercises Theorem 3: φ1 (acyclic) is solvable, and the
// solver refuses rule sets containing a cyclic precondition.
func TestAcyclicSolver(t *testing.T) {
	d, l := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	var phi1 []*rule.Rule
	for _, r := range rules {
		if r.Name == "phi1" {
			phi1 = append(phi1, r)
		}
	}
	res, err := complexity.SolveAcyclic(d, phi1, mlpred.DefaultRegistry())
	if err != nil {
		t.Fatalf("phi1 should be acyclic: %v", err)
	}
	if !res.Same(l["t2"].GID, l["t3"].GID) {
		t.Error("acyclic solver missed (t2, t3)")
	}

	// A genuinely cyclic precondition: a triangle of equalities over
	// three relations.
	db := relation.MustDatabase(
		relation.MustSchema("A", "x", relation.Attribute{Name: "x", Type: relation.TypeString}, relation.Attribute{Name: "y", Type: relation.TypeString}),
		relation.MustSchema("B", "x", relation.Attribute{Name: "x", Type: relation.TypeString}, relation.Attribute{Name: "y", Type: relation.TypeString}),
		relation.MustSchema("C", "x", relation.Attribute{Name: "x", Type: relation.TypeString}, relation.Attribute{Name: "y", Type: relation.TypeString}),
	)
	cyc, err := rule.ParseResolved(`
cy: A(a) ^ B(b) ^ C(c) ^ A(a2) ^ a.x = b.x ^ b.y = c.x ^ c.y = a.y ^ a2.x = a.x -> a.id = a2.id
`, db)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := rule.IsAcyclic(cyc[0])
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("triangle rule reported acyclic")
	}
	if _, err := complexity.SolveAcyclic(relation.NewDataset(db), cyc, mlpred.DefaultRegistry()); err == nil {
		t.Error("SolveAcyclic accepted a cyclic rule")
	}
}

// TestBound sanity-checks the bound formula.
func TestBound(t *testing.T) {
	if got := complexity.Bound(10, 4, 100); got != 10*5*100*100 {
		t.Errorf("Bound = %d", got)
	}
}
