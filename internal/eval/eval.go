// Package eval measures ER accuracy against planted ground truth using the
// paper's metrics: Precision, Recall and F-Measure over duplicate pairs.
package eval

import (
	"fmt"

	"dcer/internal/relation"
)

// Truth is the set of ground-truth duplicate pairs (unordered).
type Truth struct {
	pairs map[[2]relation.TID]bool
}

func canonical(a, b relation.TID) [2]relation.TID {
	if b < a {
		a, b = b, a
	}
	return [2]relation.TID{a, b}
}

// NewTruth builds a truth set from (original, duplicate) pairs.
func NewTruth(pairs [][2]relation.TID) *Truth {
	t := &Truth{pairs: make(map[[2]relation.TID]bool, len(pairs))}
	for _, p := range pairs {
		t.pairs[canonical(p[0], p[1])] = true
	}
	return t
}

// Len returns the number of ground-truth pairs.
func (t *Truth) Len() int { return len(t.pairs) }

// Has reports whether (a, b) is a true duplicate pair.
func (t *Truth) Has(a, b relation.TID) bool { return t.pairs[canonical(a, b)] }

// Metrics is the accuracy result of one matcher run.
type Metrics struct {
	TP, FP, FN int
	Precision  float64
	Recall     float64
	F1         float64
}

// String renders the metrics in one line.
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.4f R=%.4f F=%.4f (tp=%d fp=%d fn=%d)", m.Precision, m.Recall, m.F1, m.TP, m.FP, m.FN)
}

func finish(m *Metrics, truthLen int) {
	m.FN = truthLen - m.TP
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if truthLen > 0 {
		m.Recall = float64(m.TP) / float64(truthLen)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
}

// EvaluatePairs scores an explicit list of predicted duplicate pairs.
func EvaluatePairs(pred [][2]relation.TID, truth *Truth) Metrics {
	var m Metrics
	seen := make(map[[2]relation.TID]bool, len(pred))
	for _, p := range pred {
		c := canonical(p[0], p[1])
		if c[0] == c[1] || seen[c] {
			continue
		}
		seen[c] = true
		if truth.pairs[c] {
			m.TP++
		} else {
			m.FP++
		}
	}
	finish(&m, truth.Len())
	return m
}

// EvaluateClasses scores equivalence classes: the predicted pairs are all
// unordered tuple pairs within each class.
func EvaluateClasses(classes [][]relation.TID, truth *Truth) Metrics {
	var pred [][2]relation.TID
	for _, c := range classes {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				pred = append(pred, [2]relation.TID{c[i], c[j]})
			}
		}
	}
	return EvaluatePairs(pred, truth)
}
