// Package eval measures ER accuracy against planted ground truth using the
// paper's metrics: Precision, Recall and F-Measure over duplicate pairs.
package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"dcer/internal/relation"
)

// Truth is the set of ground-truth duplicate pairs (unordered).
type Truth struct {
	pairs map[[2]relation.TID]bool
}

func canonical(a, b relation.TID) [2]relation.TID {
	if b < a {
		a, b = b, a
	}
	return [2]relation.TID{a, b}
}

// NewTruth builds a truth set from (original, duplicate) pairs.
func NewTruth(pairs [][2]relation.TID) *Truth {
	t := &Truth{pairs: make(map[[2]relation.TID]bool, len(pairs))}
	for _, p := range pairs {
		t.pairs[canonical(p[0], p[1])] = true
	}
	return t
}

// Len returns the number of ground-truth pairs.
func (t *Truth) Len() int { return len(t.pairs) }

// Has reports whether (a, b) is a true duplicate pair.
func (t *Truth) Has(a, b relation.TID) bool { return t.pairs[canonical(a, b)] }

// Pairs returns every ground-truth pair in canonical order, sorted by
// (first, second) id so the result is deterministic despite the map.
func (t *Truth) Pairs() [][2]relation.TID {
	ps := make([][2]relation.TID, 0, len(t.pairs))
	for p := range t.pairs {
		ps = append(ps, p)
	}
	sortPairs(ps)
	return ps
}

// Sample returns a deterministic sample of up to n ground-truth pairs for
// the given seed, sorted by pair id. n <= 0 or n >= Len returns every
// pair. The health observatory's recall probes and eval.Audit share this
// sampler, so "the sampled truth subset" means the same thing in both.
func (t *Truth) Sample(n int, seed int64) [][2]relation.TID {
	ps := t.Pairs()
	if n <= 0 || n >= len(ps) {
		return ps
	}
	return samplePairs(ps, n, rand.New(rand.NewSource(seed)))
}

// sortPairs orders pairs by (first, second) id.
func sortPairs(ps [][2]relation.TID) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}

// samplePairs picks k pairs from ps uniformly via rng (destructively
// shuffling ps) and returns them sorted by pair id; k >= len(ps) returns
// all of ps sorted, k <= 0 none.
func samplePairs(ps [][2]relation.TID, k int, rng *rand.Rand) [][2]relation.TID {
	if k <= 0 {
		return nil
	}
	if k >= len(ps) {
		sortPairs(ps)
		return ps
	}
	rng.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })
	ps = ps[:k]
	sortPairs(ps)
	return ps
}

// Metrics is the accuracy result of one matcher run.
type Metrics struct {
	TP, FP, FN int
	Precision  float64
	Recall     float64
	F1         float64
}

// String renders the metrics in one line.
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.4f R=%.4f F=%.4f (tp=%d fp=%d fn=%d)", m.Precision, m.Recall, m.F1, m.TP, m.FP, m.FN)
}

func finish(m *Metrics, truthLen int) {
	m.FN = truthLen - m.TP
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if truthLen > 0 {
		m.Recall = float64(m.TP) / float64(truthLen)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
}

// EvaluatePairs scores an explicit list of predicted duplicate pairs.
func EvaluatePairs(pred [][2]relation.TID, truth *Truth) Metrics {
	var m Metrics
	seen := make(map[[2]relation.TID]bool, len(pred))
	for _, p := range pred {
		c := canonical(p[0], p[1])
		if c[0] == c[1] || seen[c] {
			continue
		}
		seen[c] = true
		if truth.pairs[c] {
			m.TP++
		} else {
			m.FP++
		}
	}
	finish(&m, truth.Len())
	return m
}

// EvaluateClasses scores equivalence classes: the predicted pairs are all
// unordered tuple pairs within each class.
func EvaluateClasses(classes [][]relation.TID, truth *Truth) Metrics {
	var pred [][2]relation.TID
	for _, c := range classes {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				pred = append(pred, [2]relation.TID{c[i], c[j]})
			}
		}
	}
	return EvaluatePairs(pred, truth)
}
