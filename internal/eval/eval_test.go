package eval_test

import (
	"math"
	"testing"

	"dcer/internal/eval"
	"dcer/internal/relation"
)

func pairs(ps ...[2]int) [][2]relation.TID {
	out := make([][2]relation.TID, len(ps))
	for i, p := range ps {
		out[i] = [2]relation.TID{relation.TID(p[0]), relation.TID(p[1])}
	}
	return out
}

// TestTruthSample: the sampler shared by eval.Audit and the health
// observatory's recall probe — deterministic per seed, bounded, sorted,
// and degenerating to every pair when the bound doesn't bind.
func TestTruthSample(t *testing.T) {
	var ps [][2]relation.TID
	for i := 0; i < 100; i += 2 {
		ps = append(ps, [2]relation.TID{relation.TID(i), relation.TID(i + 1)})
	}
	truth := eval.NewTruth(ps)

	for _, n := range []int{0, -3, 50, 60} {
		got := truth.Sample(n, 1)
		if len(got) != truth.Len() {
			t.Fatalf("Sample(%d) returned %d pairs, want all %d", n, len(got), truth.Len())
		}
	}

	a := truth.Sample(10, 7)
	b := truth.Sample(10, 7)
	if len(a) != 10 {
		t.Fatalf("bounded sample has %d pairs, want 10", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different samples")
		}
		if i > 0 && !(a[i-1][0] < a[i][0]) {
			t.Fatalf("sample not sorted by pair id: %v", a)
		}
		if !truth.Has(a[i][0], a[i][1]) {
			t.Fatalf("sampled pair %v not in the truth", a[i])
		}
	}
	c := truth.Sample(10, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical samples")
	}
}

func TestEvaluatePairs(t *testing.T) {
	truth := eval.NewTruth(pairs([2]int{1, 2}, [2]int{3, 4}))
	if truth.Len() != 2 || !truth.Has(2, 1) || truth.Has(1, 3) {
		t.Fatal("truth set wrong")
	}
	m := eval.EvaluatePairs(pairs([2]int{2, 1}, [2]int{5, 6}), truth)
	if m.TP != 1 || m.FP != 1 || m.FN != 1 {
		t.Errorf("counts = %+v", m)
	}
	if math.Abs(m.Precision-0.5) > 1e-9 || math.Abs(m.Recall-0.5) > 1e-9 || math.Abs(m.F1-0.5) > 1e-9 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestEvaluatePairsDedupAndSelf(t *testing.T) {
	truth := eval.NewTruth(pairs([2]int{1, 2}))
	m := eval.EvaluatePairs(pairs([2]int{1, 2}, [2]int{2, 1}, [2]int{3, 3}), truth)
	if m.TP != 1 || m.FP != 0 {
		t.Errorf("dedup/self-pair handling wrong: %+v", m)
	}
}

func TestEvaluateClasses(t *testing.T) {
	truth := eval.NewTruth(pairs([2]int{1, 2}, [2]int{2, 3}, [2]int{1, 3}))
	// One perfect class {1,2,3} = 3 predicted pairs, all true.
	m := eval.EvaluateClasses([][]relation.TID{{1, 2, 3}}, truth)
	if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
		t.Errorf("perfect class: %+v", m)
	}
	// Over-merged class {1,2,3,9} adds 3 false pairs.
	m = eval.EvaluateClasses([][]relation.TID{{1, 2, 3, 9}}, truth)
	if m.TP != 3 || m.FP != 3 {
		t.Errorf("over-merge: %+v", m)
	}
}

func TestEmptyEdges(t *testing.T) {
	truth := eval.NewTruth(nil)
	m := eval.EvaluatePairs(nil, truth)
	if m.F1 != 0 || m.Precision != 0 || m.Recall != 0 {
		t.Errorf("empty metrics: %+v", m)
	}
	m = eval.EvaluatePairs(pairs([2]int{1, 2}), truth)
	if m.FP != 1 || m.Precision != 0 {
		t.Errorf("all-FP metrics: %+v", m)
	}
	if m.String() == "" {
		t.Error("String empty")
	}
}
