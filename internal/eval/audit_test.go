package eval_test

import (
	"fmt"
	"testing"

	"dcer/internal/eval"
	"dcer/internal/relation"
)

// TestAuditSamplesFalsePositivesFirst: classes predict (0,1), (0,2),
// (1,2) and (3,4); the truth holds only (0,1) and (3,4), so (0,2) and
// (1,2) are false positives and must fill the sample before any true
// positive, each carrying the prover's output.
func TestAuditSamplesFalsePositivesFirst(t *testing.T) {
	classes := [][]relation.TID{{0, 1, 2}, {3, 4}}
	truth := eval.NewTruth([][2]relation.TID{{0, 1}, {3, 4}, {5, 6}})
	proved := 0
	rep := eval.Audit(classes, truth, 3, 1, func(a, b relation.TID) (string, error) {
		proved++
		return fmt.Sprintf("proof(%d,%d)", a, b), nil
	})
	if rep.Metrics.TP != 2 || rep.Metrics.FP != 2 || rep.Metrics.FN != 1 {
		t.Fatalf("metrics tp=%d fp=%d fn=%d, want 2, 2, 1",
			rep.Metrics.TP, rep.Metrics.FP, rep.Metrics.FN)
	}
	if len(rep.Sampled) != 3 || proved != 3 {
		t.Fatalf("sampled %d pairs, proved %d, want 3, 3", len(rep.Sampled), proved)
	}
	// Both false positives precede the single sampled true positive.
	for i, e := range rep.Sampled {
		wantTP := i == 2
		if e.TruePositive != wantTP {
			t.Errorf("sample[%d] = %+v: TruePositive = %v, want %v", i, e.Pair, e.TruePositive, wantTP)
		}
		if want := fmt.Sprintf("proof(%d,%d)", e.Pair[0], e.Pair[1]); e.Proof != want {
			t.Errorf("sample[%d] proof = %q, want %q", i, e.Proof, want)
		}
	}
	// FPs are ordered by pair id.
	if rep.Sampled[0].Pair != [2]relation.TID{0, 2} || rep.Sampled[1].Pair != [2]relation.TID{1, 2} {
		t.Errorf("false positives out of order: %+v, %+v", rep.Sampled[0].Pair, rep.Sampled[1].Pair)
	}
}

// TestAuditZeroSamplesEverything: n = 0 audits every predicted pair, and
// a nil prover leaves the proofs empty without panicking.
func TestAuditZeroSamplesEverything(t *testing.T) {
	classes := [][]relation.TID{{0, 1}, {2, 3}}
	truth := eval.NewTruth([][2]relation.TID{{0, 1}})
	rep := eval.Audit(classes, truth, 0, 1, nil)
	if len(rep.Sampled) != 2 {
		t.Fatalf("sampled %d pairs, want all 2", len(rep.Sampled))
	}
	for _, e := range rep.Sampled {
		if e.Proof != "" || e.ProofErr != nil {
			t.Errorf("nil prover produced %+v", e)
		}
	}
}
