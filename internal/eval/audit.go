package eval

import (
	"math/rand"

	"dcer/internal/relation"
)

// AuditEntry is one sampled matched pair with its proof: the evidence a
// reviewer inspects alongside the aggregate precision/recall numbers.
type AuditEntry struct {
	Pair [2]relation.TID
	// TruePositive says whether the pair is in the ground truth (false
	// marks the sampled false positives — the pairs most worth reading).
	TruePositive bool
	// Proof is the rendered justification supplied by the prover
	// callback; ProofErr is its failure, if any (e.g. provenance off).
	Proof    string
	ProofErr error
}

// AuditReport is the outcome of an audit pass over a matcher run: the
// usual pair metrics plus a proof for each sampled matched pair.
type AuditReport struct {
	Metrics Metrics
	// Sampled holds up to the requested number of audited pairs, false
	// positives first (they are the interesting ones), then true
	// positives, each ordered by pair id.
	Sampled []AuditEntry
}

// Audit scores equivalence classes against the truth set and attaches a
// proof to a sample of the predicted pairs. prove renders the
// justification of one matched pair — callers pass a closure over a
// provenance log or an Explain call, keeping this package free of engine
// dependencies. n bounds the sample size (0 means every matched pair);
// the sample prefers false positives, and seed makes it reproducible.
func Audit(classes [][]relation.TID, truth *Truth, n int, seed int64,
	prove func(a, b relation.TID) (string, error)) AuditReport {
	var pred [][2]relation.TID
	seen := make(map[[2]relation.TID]bool)
	for _, c := range classes {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				p := canonical(c[i], c[j])
				if p[0] != p[1] && !seen[p] {
					seen[p] = true
					pred = append(pred, p)
				}
			}
		}
	}
	rep := AuditReport{Metrics: EvaluatePairs(pred, truth)}

	var fps, tps [][2]relation.TID
	for _, p := range pred {
		if truth.pairs[p] {
			tps = append(tps, p)
		} else {
			fps = append(fps, p)
		}
	}
	if n <= 0 {
		n = len(pred)
	}
	rng := rand.New(rand.NewSource(seed))
	fps = samplePairs(fps, n, rng)
	tps = samplePairs(tps, n-len(fps), rng)
	emit := func(ps [][2]relation.TID, tp bool) {
		for _, p := range ps {
			e := AuditEntry{Pair: p, TruePositive: tp}
			if prove != nil {
				e.Proof, e.ProofErr = prove(p[0], p[1])
			}
			rep.Sampled = append(rep.Sampled, e)
		}
	}
	emit(fps, false)
	emit(tps, true)
	return rep
}
