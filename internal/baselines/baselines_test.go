package baselines_test

import (
	"testing"

	"dcer/internal/baselines"
	"dcer/internal/datagen"
	"dcer/internal/eval"
	"dcer/internal/relation"
)

func trainFrom(g *datagen.Labeled) []baselines.TrainingPair {
	var out []baselines.TrainingPair
	for i, p := range g.LabeledPairs {
		if i%3 == 0 {
			continue // hold out a third
		}
		out = append(out, baselines.TrainingPair{A: p.A, B: p.B, Match: p.Match})
	}
	return out
}

// TestBaselinesOnSingleTable checks every baseline produces sane output on
// the IMDB-shaped single-table dataset: non-trivial recall for the
// similarity-driven ones and better-than-random precision throughout.
func TestBaselinesOnSingleTable(t *testing.T) {
	g := datagen.IMDBLike(400, 0.25, 11)
	truth := eval.NewTruth(g.Truth)
	model := baselines.TrainPairModel(g.D, trainFrom(g), 10, 0.5, 1e-4, 1)
	systems := []struct {
		m    baselines.Matcher
		name string
		minF float64
	}{
		{baselines.DeepERLike(model), "DeepER", 0.3},
		{baselines.DeepMatcherLike(model), "DeepMatcher", 0.3},
		{baselines.DittoLike(0.8), "Ditto", 0.3},
		{&baselines.ERBloxLike{Model: model}, "ERBlox", 0.3},
		{&baselines.JedAILike{}, "JedAI", 0.3},
		{&baselines.DedoopLike{}, "Dedoop", 0.5},
		{&baselines.DisDedupLike{}, "DisDedup", 0.5},
		{&baselines.SparkERLike{}, "SparkER", 0.2},
		{&baselines.Windowing{}, "Windowing", 0.2},
	}
	for _, s := range systems {
		if s.m.Name() != s.name {
			t.Errorf("Name() = %q, want %q", s.m.Name(), s.name)
		}
		m := eval.EvaluatePairs(s.m.Match(g.D), truth)
		t.Logf("%-12s %s", s.name, m)
		if m.F1 < s.minF {
			t.Errorf("%s: F = %.3f below sanity floor %.2f", s.name, m.F1, s.minF)
		}
	}
}

// TestSingleTableBaselinesMissDeepDuplicates is the paper's core claim in
// test form: on TPC-H the order and lineitem duplicates are only reliably
// decidable through recursion across tables — a single-pass single-table
// matcher either misses them or pays in precision on the ambiguous
// single-table signals (shared dates, prices, clerks), so its F-measure
// stays far below the deep+collective engine's (≈0.92 at this scale).
func TestSingleTableBaselinesMissDeepDuplicates(t *testing.T) {
	g := datagen.TPCH(datagen.TPCHOptions{Scale: 0.08, Dup: 0.4, Seed: 3})
	truth := eval.NewTruth(g.Truth)
	for _, m := range []baselines.Matcher{
		&baselines.DedoopLike{}, &baselines.DisDedupLike{}, &baselines.SparkERLike{},
	} {
		res := eval.EvaluatePairs(m.Match(g.D), truth)
		t.Logf("%-10s %s", m.Name(), res)
		if res.F1 > 0.65 {
			t.Errorf("%s: F = %.3f suspiciously high for a single-pass matcher", m.Name(), res.F1)
		}
	}
}

// TestDisDedupMatchesDedoop checks the two share a matching core: same
// pairs, different execution strategy.
func TestDisDedupMatchesDedoop(t *testing.T) {
	g := datagen.SongsLike(300, 0.3, 5)
	a := (&baselines.DedoopLike{Threshold: 0.9}).Match(g.D)
	b := (&baselines.DisDedupLike{Threshold: 0.9, Workers: 4}).Match(g.D)
	if len(a) != len(b) {
		t.Fatalf("Dedoop found %d pairs, DisDedup %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pair %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestWindowingWindowEffect checks a wider window cannot lower recall.
func TestWindowingWindowEffect(t *testing.T) {
	g := datagen.SongsLike(300, 0.3, 6)
	truth := eval.NewTruth(g.Truth)
	narrow := eval.EvaluatePairs((&baselines.Windowing{Window: 2}).Match(g.D), truth)
	wide := eval.EvaluatePairs((&baselines.Windowing{Window: 40}).Match(g.D), truth)
	if wide.Recall < narrow.Recall {
		t.Errorf("wider window lowered recall: %.3f -> %.3f", narrow.Recall, wide.Recall)
	}
}

// TestEmptyDataset checks the baselines tolerate empty inputs.
func TestEmptyDataset(t *testing.T) {
	db := relation.MustDatabase(relation.MustSchema("R", "k",
		relation.Attribute{Name: "k", Type: relation.TypeString},
		relation.Attribute{Name: "v", Type: relation.TypeString}))
	d := relation.NewDataset(db)
	for _, m := range []baselines.Matcher{
		&baselines.DedoopLike{}, &baselines.DisDedupLike{}, &baselines.SparkERLike{},
		&baselines.JedAILike{}, &baselines.Windowing{}, baselines.DittoLike(0.9),
	} {
		if got := m.Match(d); len(got) != 0 {
			t.Errorf("%s invented %d pairs on empty data", m.Name(), len(got))
		}
	}
}
