package baselines

import (
	"dcer/internal/mlpred"
	"dcer/internal/relation"
)

// metaBlockedCandidates implements meta-blocking (the SparkER/BLAST idea):
// build token blocks, weight each candidate pair by the number of blocks
// it co-occurs in, and prune pairs below the average weight.
func metaBlockedCandidates(rel *relation.Relation, maxBlock int) [][2]*relation.Tuple {
	blocks := tokenBlocks(rel, maxBlock)
	weight := make(map[[2]relation.TID]int)
	byPair := make(map[[2]relation.TID][2]*relation.Tuple)
	for _, blk := range blocks {
		for i := 0; i < len(blk); i++ {
			for j := i + 1; j < len(blk); j++ {
				p := pair(blk[i], blk[j])
				weight[p]++
				byPair[p] = [2]*relation.Tuple{blk[i], blk[j]}
			}
		}
	}
	if len(weight) == 0 {
		return nil
	}
	total := 0
	for _, w := range weight {
		total += w
	}
	avg := float64(total) / float64(len(weight))
	var out [][2]*relation.Tuple
	for p, w := range weight {
		if float64(w) >= avg {
			out = append(out, byPair[p])
		}
	}
	return out
}

// SparkERLike is the SparkER stand-in: schema-agnostic token blocking with
// BLAST-style meta-blocking, then a similarity decision, executed in
// parallel over block partitions.
type SparkERLike struct {
	MaxBlock  int
	Threshold float64
	Workers   int
}

// Name implements Matcher.
func (m *SparkERLike) Name() string { return "SparkER" }

// Match implements Matcher.
func (m *SparkERLike) Match(d *relation.Dataset) [][2]relation.TID {
	maxBlock, th := m.MaxBlock, m.Threshold
	if maxBlock <= 0 {
		maxBlock = 50
	}
	if th == 0 {
		th = 0.55
	}
	var cands [][2]*relation.Tuple
	schemaOf := make(map[relation.TID]*relation.Schema)
	for _, rel := range d.Relations {
		cs := metaBlockedCandidates(rel, maxBlock)
		for _, c := range cs {
			schemaOf[c[0].GID] = rel.Schema
		}
		cands = append(cands, cs...)
	}
	// Each record is tokenized once into the store (thread-safe, shared by
	// the parallel filter workers); pairs then score by a linear merge.
	fs := mlpred.NewFeatureStore(0)
	aid := fs.AttrsID(nil)
	decide := func(c [2]*relation.Tuple) bool {
		s := schemaOf[c[0].GID]
		fa := fs.GetText(c[0].GID, aid, recordText(s, c[0]))
		fb := fs.GetText(c[1].GID, aid, recordText(s, c[1]))
		return mlpred.CosineTokensFeatures(fa, fb) >= th
	}
	out := parallelFilter(cands, m.Workers, decide)
	sortPairs(out)
	return out
}
