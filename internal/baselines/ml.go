package baselines

import (
	"dcer/internal/mlpred"
	"dcer/internal/relation"
)

// MLMatcher is the shared shape of the ML-based baselines: candidate
// generation by token blocking, then a binary decision on the record-text
// pair. DeepER, DeepMatcher and Ditto instantiate it with different
// deciders (see the DESIGN.md substitution table).
type MLMatcher struct {
	MatcherName string
	MaxBlock    int
	// Decide classifies a candidate record-text pair; used when
	// DecideFeatures is nil.
	Decide func(a, b string) bool
	// DecideFeatures classifies a candidate pair of precomputed feature
	// bundles served from a per-run FeatureStore, so each record is
	// tokenized and embedded once instead of once per candidate pair it
	// appears in.
	DecideFeatures func(a, b *mlpred.Features) bool
}

// Name implements Matcher.
func (m *MLMatcher) Name() string { return m.MatcherName }

// Match implements Matcher.
func (m *MLMatcher) Match(d *relation.Dataset) [][2]relation.TID {
	maxBlock := m.MaxBlock
	if maxBlock <= 0 {
		maxBlock = 50
	}
	var fs *mlpred.FeatureStore
	var aid uint32
	if m.DecideFeatures != nil {
		fs = mlpred.NewFeatureStore(0)
		aid = fs.AttrsID(nil)
	}
	var out [][2]relation.TID
	for _, rel := range d.Relations {
		blocks := tokenBlocks(rel, maxBlock)
		var bl [][]*relation.Tuple
		for _, b := range blocks {
			bl = append(bl, b)
		}
		for _, c := range candidatesFromBlocks(bl) {
			var match bool
			if fs != nil {
				fa := fs.GetText(c[0].GID, aid, recordText(rel.Schema, c[0]))
				fb := fs.GetText(c[1].GID, aid, recordText(rel.Schema, c[1]))
				match = m.DecideFeatures(fa, fb)
			} else {
				match = m.Decide(recordText(rel.Schema, c[0]), recordText(rel.Schema, c[1]))
			}
			if match {
				out = append(out, pair(c[0], c[1]))
			}
		}
	}
	sortPairs(out)
	return out
}

// DeepERLike builds the DeepER stand-in: a trained logistic-regression
// classifier over the similarity-feature battery, with token blocking
// standing in for LSH blocking.
func DeepERLike(model *mlpred.LogisticModel) *MLMatcher {
	return &MLMatcher{
		MatcherName:    "DeepER",
		Decide:         model.PredictPair,
		DecideFeatures: model.PredictPairFeatures,
	}
}

// DeepMatcherLike builds the DeepMatcher stand-in: the same classifier
// family trained longer with a stricter decision threshold.
func DeepMatcherLike(model *mlpred.LogisticModel) *MLMatcher {
	return &MLMatcher{
		MatcherName:    "DeepMatcher",
		Decide:         model.PredictPair,
		DecideFeatures: model.PredictPairFeatures,
	}
}

// DittoLike builds the Ditto stand-in: a pretrained-representation
// matcher, i.e. hashed-embedding cosine with a fixed threshold (no
// task-specific training).
func DittoLike(threshold float64) *MLMatcher {
	return &MLMatcher{
		MatcherName: "Ditto",
		Decide: func(a, b string) bool {
			return mlpred.EmbeddingSim(a, b, mlpred.EmbeddingDim) >= threshold
		},
		DecideFeatures: func(a, b *mlpred.Features) bool {
			return mlpred.EmbeddingSimFeatures(a, b) >= threshold
		},
	}
}

// TrainPairModel fits a logistic model on labeled tuple pairs, rendering
// each tuple as its record text. epochs/lr/l2 follow mlpred.Fit.
func TrainPairModel(d *relation.Dataset, pairs []TrainingPair, epochs int, lr, l2 float64, seed int64) *mlpred.LogisticModel {
	var examples []mlpred.Example
	for _, p := range pairs {
		a, b := d.Tuple(p.A), d.Tuple(p.B)
		if a == nil || b == nil {
			continue
		}
		examples = append(examples, mlpred.Example{
			A:     recordText(d.SchemaOf(a), a),
			B:     recordText(d.SchemaOf(b), b),
			Match: p.Match,
		})
	}
	m := &mlpred.LogisticModel{}
	m.Fit(examples, epochs, lr, l2, seed)
	return m
}

// TrainingPair is a labeled tuple pair for baseline training.
type TrainingPair struct {
	A, B  relation.TID
	Match bool
}
