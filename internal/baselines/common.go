// Package baselines reimplements the algorithmic cores of the eight
// comparison systems of the paper's evaluation (Section VI) plus the
// classic sorted-neighborhood windowing method. Each baseline keeps its
// defining limitation — a single pass of pairwise comparison within one
// table, no recursion, no cross-table correlation — which is exactly what
// the accuracy experiments contrast with deep and collective ER.
//
// All baselines implement Matcher and run per relation over the whole
// dataset.
package baselines

import (
	"sort"
	"strings"

	"dcer/internal/mlpred"
	"dcer/internal/relation"
)

// Matcher is a conventional pairwise ER algorithm.
type Matcher interface {
	Name() string
	// Match returns the predicted duplicate pairs over all relations.
	Match(d *relation.Dataset) [][2]relation.TID
}

// recordText concatenates a tuple's non-id string attributes: the
// schema-agnostic "record" view the single-table baselines compare.
func recordText(s *relation.Schema, t *relation.Tuple) string {
	var b strings.Builder
	for i, a := range s.Attrs {
		if i == s.IDAttr || a.Type != relation.TypeString {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t.Val(i).Str)
	}
	return b.String()
}

// pair canonicalizes a tuple pair.
func pair(a, b *relation.Tuple) [2]relation.TID {
	x, y := a.GID, b.GID
	if y < x {
		x, y = y, x
	}
	return [2]relation.TID{x, y}
}

// tokenBlocks groups a relation's tuples by the tokens of their record
// text, dropping blocks larger than maxBlock (stop-word-like tokens).
func tokenBlocks(rel *relation.Relation, maxBlock int) map[string][]*relation.Tuple {
	blocks := make(map[string][]*relation.Tuple)
	for _, t := range rel.Tuples {
		seen := make(map[string]bool)
		for _, tok := range mlpred.Tokenize(recordText(rel.Schema, t)) {
			if len(tok) < 2 || seen[tok] {
				continue
			}
			seen[tok] = true
			blocks[tok] = append(blocks[tok], t)
		}
	}
	for tok, ts := range blocks {
		if len(ts) > maxBlock {
			delete(blocks, tok)
		}
	}
	return blocks
}

// keyBlocks groups a relation's tuples by full attribute values (classic
// blocking keys), one block family per non-id attribute, dropping blocks
// larger than maxBlock.
func keyBlocks(rel *relation.Relation, maxBlock int) [][]*relation.Tuple {
	var out [][]*relation.Tuple
	for ai := range rel.Schema.Attrs {
		if ai == rel.Schema.IDAttr {
			continue
		}
		groups := make(map[string][]*relation.Tuple)
		for _, t := range rel.Tuples {
			v := t.Val(ai)
			if v.IsZero() {
				continue
			}
			groups[v.Key()] = append(groups[v.Key()], t)
		}
		for _, g := range groups {
			if len(g) >= 2 && len(g) <= maxBlock {
				out = append(out, g)
			}
		}
	}
	return out
}

// candidatesFromBlocks enumerates the distinct candidate pairs of a set of
// blocks.
func candidatesFromBlocks(blocks [][]*relation.Tuple) [][2]*relation.Tuple {
	seen := make(map[[2]relation.TID]bool)
	var out [][2]*relation.Tuple
	for _, blk := range blocks {
		for i := 0; i < len(blk); i++ {
			for j := i + 1; j < len(blk); j++ {
				p := pair(blk[i], blk[j])
				if seen[p] {
					continue
				}
				seen[p] = true
				out = append(out, [2]*relation.Tuple{blk[i], blk[j]})
			}
		}
	}
	return out
}

// avgSimilarity is the Dedoop-style weighted-average matcher: the mean of
// per-attribute similarities (Jaro-Winkler on strings, exact match on
// numerics), ignoring the id attribute.
func avgSimilarity(s *relation.Schema, a, b *relation.Tuple) float64 {
	sum, cnt := 0.0, 0
	for i, attr := range s.Attrs {
		if i == s.IDAttr {
			continue
		}
		cnt++
		if attr.Type == relation.TypeString {
			sum += mlpred.JaroWinkler(a.Val(i).Str, b.Val(i).Str)
		} else if a.Val(i).Equal(b.Val(i)) {
			sum++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// sortPairs orders predicted pairs deterministically.
func sortPairs(ps [][2]relation.TID) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}
