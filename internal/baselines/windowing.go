package baselines

import (
	"sort"

	"dcer/internal/relation"
)

// Windowing is the classic sorted-neighborhood method (Hernández &
// Stolfo): sort each relation's tuples by a key (the record text), slide a
// window of size W and compare only tuples inside the same window.
type Windowing struct {
	Window    int
	Threshold float64
}

// Name implements Matcher.
func (m *Windowing) Name() string { return "Windowing" }

// Match implements Matcher.
func (m *Windowing) Match(d *relation.Dataset) [][2]relation.TID {
	w, th := m.Window, m.Threshold
	if w <= 1 {
		w = 10
	}
	if th == 0 {
		th = 0.85
	}
	var out [][2]relation.TID
	for _, rel := range d.Relations {
		type keyed struct {
			key string
			t   *relation.Tuple
		}
		ks := make([]keyed, len(rel.Tuples))
		for i, t := range rel.Tuples {
			ks[i] = keyed{recordText(rel.Schema, t), t}
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
		for i := range ks {
			for j := i + 1; j < len(ks) && j <= i+w-1; j++ {
				if avgSimilarity(rel.Schema, ks[i].t, ks[j].t) >= th {
					out = append(out, pair(ks[i].t, ks[j].t))
				}
			}
		}
	}
	sortPairs(out)
	return out
}
