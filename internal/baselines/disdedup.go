package baselines

import (
	"runtime"
	"sort"
	"sync"

	"dcer/internal/relation"
)

// parallelFilter evaluates a decision over candidate pairs using w
// goroutines with contiguous chunking, preserving result determinism.
func parallelFilter(cands [][2]*relation.Tuple, w int, decide func([2]*relation.Tuple) bool) [][2]relation.TID {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(cands) {
		w = len(cands)
	}
	if w <= 1 {
		var out [][2]relation.TID
		for _, c := range cands {
			if decide(c) {
				out = append(out, pair(c[0], c[1]))
			}
		}
		return out
	}
	parts := make([][][2]relation.TID, w)
	var wg sync.WaitGroup
	chunk := (len(cands) + w - 1) / w
	for i := 0; i < w; i++ {
		lo, hi := i*chunk, (i+1)*chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			for _, c := range cands[lo:hi] {
				if decide(c) {
					parts[i] = append(parts[i], pair(c[0], c[1]))
				}
			}
		}(i, lo, hi)
	}
	wg.Wait()
	var out [][2]relation.TID
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// DisDedupLike is the DisDedup stand-in: the same block-based matching
// core as Dedoop, but with candidate comparisons spread over workers so
// that the maximum per-worker workload is minimized (the system's defining
// contribution). Blocks are split by descending size before chunking,
// which approximates the triangle-distribution balancing of Chu et al.
type DisDedupLike struct {
	MaxBlock  int
	Threshold float64
	Workers   int
}

// Name implements Matcher.
func (m *DisDedupLike) Name() string { return "DisDedup" }

// Match implements Matcher.
func (m *DisDedupLike) Match(d *relation.Dataset) [][2]relation.TID {
	maxBlock, th := m.MaxBlock, m.Threshold
	if maxBlock <= 0 {
		maxBlock = 50
	}
	if th == 0 {
		th = 0.85
	}
	var cands [][2]*relation.Tuple
	schemaOf := make(map[relation.TID]*relation.Schema)
	for _, rel := range d.Relations {
		blocks := keyBlocks(rel, maxBlock)
		sort.Slice(blocks, func(i, j int) bool { return len(blocks[i]) > len(blocks[j]) })
		cs := candidatesFromBlocks(blocks)
		for _, c := range cs {
			schemaOf[c[0].GID] = rel.Schema
		}
		cands = append(cands, cs...)
	}
	out := parallelFilter(cands, m.Workers, func(c [2]*relation.Tuple) bool {
		return avgSimilarity(schemaOf[c[0].GID], c[0], c[1]) >= th
	})
	sortPairs(out)
	return out
}
