package baselines

import (
	"dcer/internal/mlpred"
	"dcer/internal/relation"
)

// DedoopLike is the Dedoop stand-in: classic blocking on attribute-value
// keys, then weighted-average similarity matching within blocks. A single
// pass over a single table — no recursion, no cross-table correlation.
type DedoopLike struct {
	MaxBlock  int
	Threshold float64
}

// Name implements Matcher.
func (m *DedoopLike) Name() string { return "Dedoop" }

// Match implements Matcher.
func (m *DedoopLike) Match(d *relation.Dataset) [][2]relation.TID {
	maxBlock, th := m.MaxBlock, m.Threshold
	if maxBlock <= 0 {
		maxBlock = 50
	}
	if th == 0 {
		th = 0.88
	}
	var out [][2]relation.TID
	for _, rel := range d.Relations {
		for _, c := range candidatesFromBlocks(keyBlocks(rel, maxBlock)) {
			if avgSimilarity(rel.Schema, c[0], c[1]) >= th {
				out = append(out, pair(c[0], c[1]))
			}
		}
	}
	sortPairs(out)
	return out
}

// ERBloxLike is the ERBlox stand-in: matching dependencies supply the
// blocking keys (equality on key attributes), and an ML classifier makes
// the final match decision — the hybrid design of Bahmani et al.
type ERBloxLike struct {
	Model    *mlpred.LogisticModel
	MaxBlock int
}

// Name implements Matcher.
func (m *ERBloxLike) Name() string { return "ERBlox" }

// Match implements Matcher.
func (m *ERBloxLike) Match(d *relation.Dataset) [][2]relation.TID {
	maxBlock := m.MaxBlock
	if maxBlock <= 0 {
		maxBlock = 50
	}
	var out [][2]relation.TID
	for _, rel := range d.Relations {
		for _, c := range candidatesFromBlocks(keyBlocks(rel, maxBlock)) {
			a := recordText(rel.Schema, c[0])
			b := recordText(rel.Schema, c[1])
			if m.Model.PredictPair(a, b) {
				out = append(out, pair(c[0], c[1]))
			}
		}
	}
	sortPairs(out)
	return out
}

// JedAILike is the JedAI stand-in: non-learning, structure-agnostic ER —
// token blocking, meta-blocking pruning, and a Jaccard decision on record
// text.
type JedAILike struct {
	MaxBlock  int
	Threshold float64
}

// Name implements Matcher.
func (m *JedAILike) Name() string { return "JedAI" }

// Match implements Matcher.
func (m *JedAILike) Match(d *relation.Dataset) [][2]relation.TID {
	maxBlock, th := m.MaxBlock, m.Threshold
	if maxBlock <= 0 {
		maxBlock = 50
	}
	if th == 0 {
		th = 0.6
	}
	var out [][2]relation.TID
	for _, rel := range d.Relations {
		for _, c := range metaBlockedCandidates(rel, maxBlock) {
			a := recordText(rel.Schema, c[0])
			b := recordText(rel.Schema, c[1])
			if mlpred.Jaccard(a, b) >= th {
				out = append(out, pair(c[0], c[1]))
			}
		}
	}
	sortPairs(out)
	return out
}
