package hypart

import (
	"sort"
	"strconv"
	"strings"

	"dcer/internal/mqo"
	"dcer/internal/relation"
	"dcer/internal/rule"
)

// PartitionReference is the seed-era single-threaded partitioner, kept
// verbatim (string block keys, per-emit key concatenation, map-of-maps
// accumulation) as the baseline the BENCH_<n>.json Partition arms measure
// the rewritten partitioner against, and as an independent oracle for the
// invariants the rewrite must preserve: the same non-empty block count,
// the same multiset of block sizes, and the same generated/placed tuple
// totals. The LPT tie-break differs (string vs numeric key order), so
// fragment contents are compared against Partition's own sequential path
// instead (see TestPartitionParallelEquivalence).
func PartitionReference(d *relation.Dataset, rules []*rule.Rule, n int, opts Options) (*Result, error) {
	if n < 1 {
		return nil, errWorkers(n)
	}
	plan, err := mqo.Build(rules, opts.Share)
	if err != nil {
		return nil, err
	}
	res := &Result{Plan: plan}
	res.Stats.HashFns, res.Stats.HashFnsBaseline = plan.Savings()
	if n == 1 {
		return partitionSingle(d, rules, res, nil), nil
	}

	vb := opts.VirtualBlocks
	if vb == 0 {
		vb = n * n
	}
	hasher := mqo.NewHasher()
	blocks := make(map[string]map[relation.TID]bool)
	blockRules := make(map[string]map[int]bool)

	repCap := effectiveRepCap(opts.ReplicationCap, n)
	relSizes := make([]int, len(d.Relations))
	for i, rel := range d.Relations {
		relSizes[i] = len(rel.Tuples)
	}
	for ri, ra := range plan.Assignments {
		dims := buildDims(ra, vb, repCap, relSizes)
		ruleKeys := make(map[string]bool)
		for vi, v := range ra.Rule.Vars {
			rel := d.Relations[v.RelIdx]
			var hashed []int
			var bcast []int
			for di := range dims {
				if _, ok := dims[di].dv.AttrOf(vi); ok {
					hashed = append(hashed, di)
				} else if dims[di].size > 1 {
					bcast = append(bcast, di)
				}
			}
			for _, t := range rel.Tuples {
				coord := make([]int, len(dims))
				for di := range coord {
					coord[di] = -1
				}
				for di := range dims {
					if dims[di].size == 1 {
						coord[di] = 0
					}
				}
				for _, di := range hashed {
					attr, _ := dims[di].dv.AttrOf(vi)
					coord[di] = int(hasher.Hash(dims[di].fn, t.Val(attr))) % dims[di].size
				}
				refEmitBlocks(dims, coord, bcast, 0, t.GID, blocks, ruleKeys, &res.Stats)
			}
		}
		for key := range ruleKeys {
			rs, ok := blockRules[key]
			if !ok {
				rs = make(map[int]bool)
				blockRules[key] = rs
			}
			rs[ri] = true
		}
	}
	res.Stats.HashComputations = hasher.Computations
	res.Stats.HashLookups = hasher.Lookups
	res.Stats.Blocks = len(blocks)

	// LPT minimum-makespan assignment of virtual blocks to workers.
	type blockInfo struct {
		key  string
		size int
	}
	infos := make([]blockInfo, 0, len(blocks))
	for k, set := range blocks {
		infos = append(infos, blockInfo{k, len(set)})
	}
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].size != infos[j].size {
			return infos[i].size > infos[j].size
		}
		return infos[i].key < infos[j].key
	})
	load := make([]int, n)
	fragSets := make([]map[relation.TID]bool, n)
	ruleSets := make([][]map[relation.TID]bool, n)
	for i := range fragSets {
		fragSets[i] = make(map[relation.TID]bool)
		ruleSets[i] = make([]map[relation.TID]bool, len(rules))
	}
	for _, bi := range infos {
		w := 0
		for i := 1; i < n; i++ {
			if load[i] < load[w] {
				w = i
			}
		}
		load[w] += bi.size
		for gid := range blocks[bi.key] {
			fragSets[w][gid] = true
		}
		for ri := range blockRules[bi.key] {
			set := ruleSets[w][ri]
			if set == nil {
				set = make(map[relation.TID]bool)
				ruleSets[w][ri] = set
			}
			for gid := range blocks[bi.key] {
				set[gid] = true
			}
		}
	}
	res.Fragments = make([][]relation.TID, n)
	res.RuleFragments = make([][][]relation.TID, n)
	res.Stats.MinFragment = int(^uint(0) >> 1)
	sortIDs := func(set map[relation.TID]bool) []relation.TID {
		ids := make([]relation.TID, 0, len(set))
		for gid := range set {
			ids = append(ids, gid)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		return ids
	}
	for i, set := range fragSets {
		ids := sortIDs(set)
		res.Fragments[i] = ids
		res.RuleFragments[i] = make([][]relation.TID, len(rules))
		for ri, rset := range ruleSets[i] {
			res.RuleFragments[i][ri] = sortIDs(rset)
		}
		if len(ids) > res.Stats.MaxFragment {
			res.Stats.MaxFragment = len(ids)
		}
		if len(ids) < res.Stats.MinFragment {
			res.Stats.MinFragment = len(ids)
		}
	}
	return res, nil
}

// refEmitBlocks is the seed-era emitBlocks: broadcast enumeration into the
// string-keyed block maps.
func refEmitBlocks(dims []dim, coord []int, bcast []int, bi int, gid relation.TID,
	blocks map[string]map[relation.TID]bool, ruleKeys map[string]bool, stats *Stats) {
	if bi == len(bcast) {
		stats.GeneratedTuples++
		key := refBlockKey(dims, coord)
		ruleKeys[key] = true
		set, ok := blocks[key]
		if !ok {
			set = make(map[relation.TID]bool)
			blocks[key] = set
		}
		if !set[gid] {
			set[gid] = true
			stats.PlacedTuples++
		}
		return
	}
	di := bcast[bi]
	for b := 0; b < dims[di].size; b++ {
		coord[di] = b
		refEmitBlocks(dims, coord, bcast, bi+1, gid, blocks, ruleKeys, stats)
	}
	coord[di] = -1
}

func refBlockKey(dims []dim, coord []int) string {
	parts := make([]string, len(dims))
	for i := range dims {
		parts[i] = strconv.Itoa(dims[i].fn) + "/" + strconv.Itoa(dims[i].size) + ":" + strconv.Itoa(coord[i])
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
