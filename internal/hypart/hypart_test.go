package hypart_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dcer/internal/datagen"
	"dcer/internal/hypart"
	"dcer/internal/relation"
	"dcer/internal/rule"
)

// bruteValuations enumerates every valuation of r over d that satisfies
// the static (constant and equality) predicates, ignoring id and ML
// predicates — exactly the valuations Lemma 6 requires to be co-located,
// since id/ML predicates can become true through deduction.
func bruteValuations(d *relation.Dataset, r *rule.Rule, emit func([]*relation.Tuple)) {
	binding := make([]*relation.Tuple, len(r.Vars))
	ok := func(v int, t *relation.Tuple) bool {
		for i := range r.Body {
			p := &r.Body[i]
			switch p.Kind {
			case rule.PredConst:
				if p.V1 == v && !t.Val(p.A1).Equal(p.Const) {
					return false
				}
			case rule.PredEq:
				if p.V1 == v && p.V2 == v {
					if !t.Val(p.A1).Equal(t.Val(p.A2)) {
						return false
					}
				} else if p.V1 == v && p.V2 < v && binding[p.V2] != nil {
					if !t.Val(p.A1).Equal(binding[p.V2].Val(p.A2)) {
						return false
					}
				} else if p.V2 == v && p.V1 < v && binding[p.V1] != nil {
					if !t.Val(p.A2).Equal(binding[p.V1].Val(p.A1)) {
						return false
					}
				}
			}
		}
		return true
	}
	var walk func(v int)
	walk = func(v int) {
		if v == len(r.Vars) {
			emit(binding)
			return
		}
		for _, t := range d.Relations[r.Vars[v].RelIdx].Tuples {
			if !ok(v, t) {
				continue
			}
			binding[v] = t
			walk(v + 1)
		}
	}
	walk(0)
}

// TestLemma6Locality checks HyPart's locality property on the paper's
// running example: every static-satisfying valuation of every rule is
// fully contained in at least one fragment, for several worker counts and
// both MQO settings.
func TestLemma6Locality(t *testing.T) {
	d, _ := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	for _, share := range []bool{true, false} {
		for _, n := range []int{2, 3, 4, 8, 16} {
			res, err := hypart.Partition(d, rules, n, hypart.Options{Share: share})
			if err != nil {
				t.Fatalf("share=%v n=%d: %v", share, n, err)
			}
			fragSets := make([]map[relation.TID]bool, n)
			for i, frag := range res.Fragments {
				fragSets[i] = make(map[relation.TID]bool, len(frag))
				for _, gid := range frag {
					fragSets[i][gid] = true
				}
			}
			for _, r := range rules {
				violations := 0
				bruteValuations(d, r, func(binding []*relation.Tuple) {
					for _, fs := range fragSets {
						all := true
						for _, b := range binding {
							if !fs[b.GID] {
								all = false
								break
							}
						}
						if all {
							return
						}
					}
					violations++
				})
				if violations > 0 {
					t.Errorf("share=%v n=%d rule %s: %d valuations not co-located", share, n, r.Name, violations)
				}
			}
		}
	}
}

// TestLemma6LocalityRandom repeats the locality check on random datasets
// and random rule sets (the same generator as the chase oracle tests),
// asserting per-rule block co-location: every static-satisfying valuation
// of rule r is contained in some worker's rule-r fragment.
func TestLemma6LocalityRandom(t *testing.T) {
	for seed := int64(200); seed < 220; seed++ {
		d, rules := randomPartitionInstance(t, seed)
		for _, n := range []int{3, 7} {
			res, err := hypart.Partition(d, rules, n, hypart.Options{Share: seed%2 == 0})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for ri, r := range rules {
				scopeSets := make([]map[relation.TID]bool, n)
				for w := 0; w < n; w++ {
					scopeSets[w] = make(map[relation.TID]bool)
					for _, gid := range res.RuleFragments[w][ri] {
						scopeSets[w][gid] = true
					}
				}
				violations := 0
				bruteValuations(d, r, func(binding []*relation.Tuple) {
					for _, fs := range scopeSets {
						all := true
						for _, b := range binding {
							if !fs[b.GID] {
								all = false
								break
							}
						}
						if all {
							return
						}
					}
					violations++
				})
				if violations > 0 {
					t.Errorf("seed %d n=%d rule %s: %d valuations not co-located in any rule fragment",
						seed, n, r.Name, violations)
				}
			}
		}
	}
}

// randomPartitionInstance builds small random datasets and rules for the
// locality property test (kept narrow: brute-force enumeration must stay
// cheap).
func randomPartitionInstance(t *testing.T, seed int64) (*relation.Dataset, []*rule.Rule) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	str := relation.TypeString
	a := func(n string) relation.Attribute { return relation.Attribute{Name: n, Type: str} }
	db := relation.MustDatabase(
		relation.MustSchema("P", "pk", a("pk"), a("x"), a("y"), a("ref")),
		relation.MustSchema("Q", "qk", a("qk"), a("x"), a("y"), a("ref")),
	)
	d := relation.NewDataset(db)
	vals := []string{"u", "v", "w", "z"}
	names := []string{"P", "Q"}
	size := 8 + rng.Intn(8)
	for _, rel := range names {
		for i := 0; i < size; i++ {
			d.MustAppend(rel,
				relation.S(fmt.Sprintf("%s%d", rel, i)),
				relation.S(vals[rng.Intn(len(vals))]),
				relation.S(vals[rng.Intn(len(vals))]),
				relation.S(fmt.Sprintf("%s%d", names[rng.Intn(2)], rng.Intn(size))))
		}
	}
	var text string
	for ri := 0; ri < 2+rng.Intn(3); ri++ {
		ra, rb := names[rng.Intn(2)], names[rng.Intn(2)]
		body := fmt.Sprintf("a.x = b.%s", []string{"x", "y"}[rng.Intn(2)])
		switch rng.Intn(3) {
		case 0:
			body += fmt.Sprintf(" ^ a.y = %q", vals[rng.Intn(len(vals))])
		case 1:
			rc := names[rng.Intn(2)]
			body += fmt.Sprintf(" ^ %s(c) ^ a.ref = c.%sk ^ c.id = b.id", rc, lower(rc))
		case 2:
			body += " ^ lev080(a.y, b.y)"
		}
		text += fmt.Sprintf("r%d: %s(a) ^ %s(b) ^ %s -> a.id = b.id\n", ri, ra, rb, body)
	}
	rules, err := rule.ParseResolved(text, db)
	if err != nil {
		t.Fatalf("seed %d: %v\n%s", seed, err, text)
	}
	return d, rules
}

func lower(s string) string { return string(s[0] + 32) }

// TestPartitionShapes sanity-checks fragment accounting.
func TestPartitionShapes(t *testing.T) {
	g := datagen.TPCH(datagen.TPCHOptions{Scale: 0.05, Dup: 0.3, Seed: 2})
	rules, err := g.Rules()
	if err != nil {
		t.Fatal(err)
	}
	res, err := hypart.Partition(g.D, rules, 8, hypart.Options{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 8 {
		t.Fatalf("got %d fragments", len(res.Fragments))
	}
	total := 0
	for _, f := range res.Fragments {
		total += len(f)
	}
	if total == 0 {
		t.Fatal("empty partition")
	}
	// Replication must stay moderate under the cap.
	if factor := float64(total) / float64(g.D.Size()); factor > 6 {
		t.Errorf("replication factor %.1f too high", factor)
	}
	if res.Stats.HashFns > res.Stats.HashFnsBaseline {
		t.Errorf("sharing uses more hash functions (%d) than baseline (%d)",
			res.Stats.HashFns, res.Stats.HashFnsBaseline)
	}
	// The memoizing hasher must be reusing computations across rules.
	if res.Stats.HashComputations >= res.Stats.HashLookups {
		t.Errorf("no hash-computation reuse: %d computations, %d lookups",
			res.Stats.HashComputations, res.Stats.HashLookups)
	}
}

// TestSingleWorkerIsWholeDataset checks the n=1 fast path.
func TestSingleWorkerIsWholeDataset(t *testing.T) {
	d, _ := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hypart.Partition(d, rules, 1, hypart.Options{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 1 || len(res.Fragments[0]) != d.Size() {
		t.Errorf("n=1 partition should hold all %d tuples, got %d fragments / %d tuples",
			d.Size(), len(res.Fragments), len(res.Fragments[0]))
	}
}
