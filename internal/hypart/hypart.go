// Package hypart implements HyPart (Section IV): data partitioning for
// deep and collective ER in place of blocking. It extends the Hypercube
// algorithm to a set of MRLs using the MQO hash-function assignment, lays
// tuples out over virtual blocks (n² blocks for n workers), and assigns
// blocks to workers with an LPT minimum-makespan heuristic to balance the
// load.
//
// The partition has the locality property of Lemma 6: every valuation of
// every rule is fully contained in at least one fragment, so checking
// D ⊨ Σ (and chasing) can be done locally, with only deduced matches and
// validated ML predictions exchanged between workers.
package hypart

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dcer/internal/mqo"
	"dcer/internal/relation"
	"dcer/internal/rule"
	"dcer/internal/telemetry"
)

// Options configures the partitioner.
type Options struct {
	// Share enables MQO hash-function sharing (HyPart proper); false is
	// the DMatch_noMQO configuration.
	Share bool
	// VirtualBlocks overrides the number of virtual blocks; 0 means n².
	VirtualBlocks int
	// ReplicationCap bounds the per-tuple copy factor of any rule: a
	// dimension is only enlarged while every tuple variable's broadcast
	// product stays within the cap. This is the pragmatic stand-in for
	// the Lagrangean extent allocation of Afrati-Ullman — wide collective
	// rules keep locality (Lemma 6) but are spread over fewer blocks.
	// Replication is inherent to Hypercube multi-way joins (the
	// communication-optimal factor for a ρ-wide join is n^(1-1/ρ)), so
	// the default grows with the worker count: max(4, n/2).
	ReplicationCap int
	// Metrics, when non-nil, receives the partition shape as histograms:
	// dcer_hypart_fragment_size (tuples per worker fragment, one
	// observation per worker) and dcer_hypart_block_size (tuples per
	// non-empty virtual block). Nil disables with no overhead.
	Metrics *telemetry.Registry
}

// Stats reports the partitioning work, for the Exp-2 experiments.
type Stats struct {
	HashComputations int64 // distinct hash-function evaluations
	HashLookups      int64 // total evaluations incl. memoized reuse
	GeneratedTuples  int64 // |H(Σ,D)|: tuple copies generated before dedup
	PlacedTuples     int64 // tuple copies after per-block dedup
	Blocks           int   // non-empty virtual blocks
	HashFns          int   // hash functions used (after sharing)
	HashFnsBaseline  int   // one-per-distinct-variable baseline
	MaxFragment      int
	MinFragment      int
}

// Result is the computed partition.
type Result struct {
	// Fragments[i] lists the GIDs assigned to worker i (deduplicated):
	// the union of the virtual blocks placed on the worker.
	Fragments [][]relation.TID
	// RuleFragments[i][r] lists the GIDs of worker i's blocks that were
	// generated for rule r. Hypercube semantics evaluate each rule within
	// its own blocks; scoping the chase per rule avoids every rule
	// re-scanning tuples that other rules' blocks brought to the worker.
	RuleFragments [][][]relation.TID
	Plan          *mqo.Plan
	Stats         Stats
}

// dim is one hypercube dimension of a rule: a distinct-variable class with
// its hash function and extent.
type dim struct {
	dv   *rule.DistinctVar
	fn   int
	size int
}

// Partition splits dataset d into n fragments for the rule set Σ.
func Partition(d *relation.Dataset, rules []*rule.Rule, n int, opts Options) (*Result, error) {
	if n < 1 {
		return nil, fmt.Errorf("hypart: need at least one worker, got %d", n)
	}
	plan, err := mqo.Build(rules, opts.Share)
	if err != nil {
		return nil, err
	}
	res := &Result{Plan: plan}
	res.Stats.HashFns, res.Stats.HashFnsBaseline = plan.Savings()
	if n == 1 {
		ids := make([]relation.TID, 0, d.Size())
		for _, t := range d.Tuples() {
			ids = append(ids, t.GID)
		}
		res.Fragments = [][]relation.TID{ids}
		perRule := make([][]relation.TID, len(rules))
		for r := range perRule {
			perRule[r] = ids
		}
		res.RuleFragments = [][][]relation.TID{perRule}
		res.Stats.MaxFragment, res.Stats.MinFragment = len(ids), len(ids)
		opts.Metrics.Histogram("dcer_hypart_fragment_size").Observe(uint64(len(ids)))
		return res, nil
	}

	vb := opts.VirtualBlocks
	if vb == 0 {
		vb = n * n
	}
	hasher := mqo.NewHasher()
	blocks := make(map[string]map[relation.TID]bool)
	blockRules := make(map[string]map[int]bool)

	repCap := opts.ReplicationCap
	if repCap <= 0 {
		repCap = 4
		if n/2 > repCap {
			repCap = n / 2
		}
	}
	relSizes := make([]int, len(d.Relations))
	for i, rel := range d.Relations {
		relSizes[i] = len(rel.Tuples)
	}
	for ri, ra := range plan.Assignments {
		dims := buildDims(ra, vb, repCap, relSizes)
		ruleKeys := make(map[string]bool)
		for vi, v := range ra.Rule.Vars {
			rel := d.Relations[v.RelIdx]
			// Split dimensions into hashed (the variable has a member
			// attribute in the class) and broadcast.
			var hashed []int
			var bcast []int
			for di := range dims {
				if _, ok := dims[di].dv.AttrOf(vi); ok {
					hashed = append(hashed, di)
				} else if dims[di].size > 1 {
					bcast = append(bcast, di)
				}
			}
			for _, t := range rel.Tuples {
				coord := make([]int, len(dims))
				for di := range coord {
					coord[di] = -1 // size-1 or broadcast dims default below
				}
				for di := range dims {
					if dims[di].size == 1 {
						coord[di] = 0
					}
				}
				for _, di := range hashed {
					attr, _ := dims[di].dv.AttrOf(vi)
					coord[di] = int(hasher.Hash(dims[di].fn, t.Values[attr])) % dims[di].size
				}
				emitBlocks(dims, coord, bcast, 0, t.GID, blocks, ruleKeys, &res.Stats)
			}
		}
		for key := range ruleKeys {
			rs, ok := blockRules[key]
			if !ok {
				rs = make(map[int]bool)
				blockRules[key] = rs
			}
			rs[ri] = true
		}
	}
	res.Stats.HashComputations = hasher.Computations
	res.Stats.HashLookups = hasher.Lookups
	res.Stats.Blocks = len(blocks)
	if opts.Metrics != nil {
		bh := opts.Metrics.Histogram("dcer_hypart_block_size")
		for _, set := range blocks {
			bh.Observe(uint64(len(set)))
		}
	}

	// LPT minimum-makespan assignment of virtual blocks to workers.
	type blockInfo struct {
		key  string
		size int
	}
	infos := make([]blockInfo, 0, len(blocks))
	for k, set := range blocks {
		infos = append(infos, blockInfo{k, len(set)})
	}
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].size != infos[j].size {
			return infos[i].size > infos[j].size
		}
		return infos[i].key < infos[j].key
	})
	load := make([]int, n)
	fragSets := make([]map[relation.TID]bool, n)
	ruleSets := make([][]map[relation.TID]bool, n)
	for i := range fragSets {
		fragSets[i] = make(map[relation.TID]bool)
		ruleSets[i] = make([]map[relation.TID]bool, len(rules))
	}
	for _, bi := range infos {
		w := 0
		for i := 1; i < n; i++ {
			if load[i] < load[w] {
				w = i
			}
		}
		load[w] += bi.size
		for gid := range blocks[bi.key] {
			fragSets[w][gid] = true
		}
		for ri := range blockRules[bi.key] {
			set := ruleSets[w][ri]
			if set == nil {
				set = make(map[relation.TID]bool)
				ruleSets[w][ri] = set
			}
			for gid := range blocks[bi.key] {
				set[gid] = true
			}
		}
	}
	res.Fragments = make([][]relation.TID, n)
	res.RuleFragments = make([][][]relation.TID, n)
	res.Stats.MinFragment = int(^uint(0) >> 1)
	sortIDs := func(set map[relation.TID]bool) []relation.TID {
		ids := make([]relation.TID, 0, len(set))
		for gid := range set {
			ids = append(ids, gid)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		return ids
	}
	for i, set := range fragSets {
		ids := sortIDs(set)
		res.Fragments[i] = ids
		res.RuleFragments[i] = make([][]relation.TID, len(rules))
		for ri, rset := range ruleSets[i] {
			res.RuleFragments[i][ri] = sortIDs(rset)
		}
		if len(ids) > res.Stats.MaxFragment {
			res.Stats.MaxFragment = len(ids)
		}
		if len(ids) < res.Stats.MinFragment {
			res.Stats.MinFragment = len(ids)
		}
		opts.Metrics.Histogram("dcer_hypart_fragment_size").Observe(uint64(len(ids)))
	}
	return res, nil
}

// buildDims allocates hypercube extents to a rule's dimensions by greedy
// doubling, the pragmatic stand-in for the Lagrangean allocation of
// Afrati-Ullman: at each step it doubles the dimension whose member
// variables contribute the most tuples to each block (so the doubling
// shrinks the expected block the most), refusing any doubling that would
// push some variable's broadcast product beyond repCap or exceed the block
// budget vb. Constant-pinned dimensions carry one value and keep extent 1.
func buildDims(ra *mqo.RuleAssignment, vb, repCap int, relSizes []int) []dim {
	dims := make([]dim, len(ra.DVs))
	for _, di := range ra.DimOrder {
		dims[di] = dim{dv: ra.DVs[di], fn: ra.HashFn[di], size: 1}
	}
	nvars := len(ra.Rule.Vars)
	// replication(v) = product of extents of dimensions without a member
	// on v — the number of copies each tuple bound to v generates.
	replication := func(v int) int {
		r := 1
		for di := range dims {
			if _, ok := dims[di].dv.AttrOf(v); !ok {
				r *= dims[di].size
			}
		}
		return r
	}
	// contribution(v) = expected tuples variable v places in one block.
	contribution := func(v int) float64 {
		c := float64(relSizes[ra.Rule.Vars[v].RelIdx])
		for di := range dims {
			if _, ok := dims[di].dv.AttrOf(v); ok {
				c /= float64(dims[di].size)
			}
		}
		return c
	}
	product := 1
	for product*2 <= vb {
		best, bestGain := -1, 0.0
		for di := range dims {
			if dims[di].dv.Const {
				continue
			}
			// Doubling di halves its member variables' block contribution
			// but doubles the broadcast of every non-member variable;
			// check the cap.
			ok := true
			gain := 0.0
			for v := 0; v < nvars; v++ {
				if _, member := dims[di].dv.AttrOf(v); member {
					gain += contribution(v) / 2
				} else if replication(v)*2 > repCap {
					ok = false
					break
				}
			}
			if !ok || gain <= 0 {
				continue
			}
			if best < 0 || gain > bestGain {
				best, bestGain = di, gain
			}
		}
		if best < 0 {
			break
		}
		dims[best].size *= 2
		product *= 2
	}
	return dims
}

// emitBlocks enumerates the broadcast combinations of coord and registers
// the tuple in each resulting block. Block keys embed (fn, extent, bucket)
// per dimension, so rules sharing all hash functions and extents share
// blocks — the tuple-copy dedup that MQO sharing buys.
func emitBlocks(dims []dim, coord []int, bcast []int, bi int, gid relation.TID,
	blocks map[string]map[relation.TID]bool, ruleKeys map[string]bool, stats *Stats) {
	if bi == len(bcast) {
		stats.GeneratedTuples++
		key := blockKey(dims, coord)
		ruleKeys[key] = true
		set, ok := blocks[key]
		if !ok {
			set = make(map[relation.TID]bool)
			blocks[key] = set
		}
		if !set[gid] {
			set[gid] = true
			stats.PlacedTuples++
		}
		return
	}
	di := bcast[bi]
	for b := 0; b < dims[di].size; b++ {
		coord[di] = b
		emitBlocks(dims, coord, bcast, bi+1, gid, blocks, ruleKeys, stats)
	}
	coord[di] = -1
}

func blockKey(dims []dim, coord []int) string {
	parts := make([]string, len(dims))
	for i := range dims {
		parts[i] = strconv.Itoa(dims[i].fn) + "/" + strconv.Itoa(dims[i].size) + ":" + strconv.Itoa(coord[i])
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
