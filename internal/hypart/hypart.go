// Package hypart implements HyPart (Section IV): data partitioning for
// deep and collective ER in place of blocking. It extends the Hypercube
// algorithm to a set of MRLs using the MQO hash-function assignment, lays
// tuples out over virtual blocks (n² blocks for n workers), and assigns
// blocks to workers with an LPT minimum-makespan heuristic to balance the
// load.
//
// The partition has the locality property of Lemma 6: every valuation of
// every rule is fully contained in at least one fragment, so checking
// D ⊨ Σ (and chasing) can be done locally, with only deduced matches and
// validated ML predictions exchanged between workers.
//
// Partition itself is parallel: the (rule, variable) tuple scans are
// sharded over Options.Shards goroutines, each feeding a private block
// accumulator keyed by packed-uint64 block fingerprints, and the
// accumulators are merged commutatively and ordered canonically — the
// output is byte-identical for every shard count (the snapshot-
// enumerate-merge discipline of internal/chase applied to partitioning).
package hypart

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"dcer/internal/fnv"
	"dcer/internal/mqo"
	"dcer/internal/relation"
	"dcer/internal/rule"
	"dcer/internal/telemetry"
)

// Options configures the partitioner.
type Options struct {
	// Share enables MQO hash-function sharing (HyPart proper); false is
	// the DMatch_noMQO configuration.
	Share bool
	// VirtualBlocks overrides the number of virtual blocks; 0 means n².
	VirtualBlocks int
	// ReplicationCap bounds the per-tuple copy factor of any rule: a
	// dimension is only enlarged while every tuple variable's broadcast
	// product stays within the cap. This is the pragmatic stand-in for
	// the Lagrangean extent allocation of Afrati-Ullman — wide collective
	// rules keep locality (Lemma 6) but are spread over fewer blocks.
	// Replication is inherent to Hypercube multi-way joins (the
	// communication-optimal factor for a ρ-wide join is n^(1-1/ρ)), so
	// the default grows with the worker count: max(4, n/2).
	ReplicationCap int
	// Shards is the number of goroutines the tuple scans fan out over;
	// 0 means GOMAXPROCS, 1 forces the single-threaded path. The output
	// is byte-identical for every value (merge is commutative and the
	// final block order canonical).
	Shards int
	// Metrics, when non-nil, receives the partition shape as histograms:
	// dcer_hypart_fragment_size (tuples per worker fragment, one
	// observation per worker) and dcer_hypart_block_size (tuples per
	// non-empty virtual block). Nil disables with no overhead.
	Metrics *telemetry.Registry
	// Trace parents the partition's causal spans: a hypart.Partition
	// root, one hypart.shard.scan span per scan goroutine (each on its
	// own shard lane), and the hypart.merge/hypart.assign spans of the
	// sequential tail. The zero value disables capture; when Metrics is
	// set and Trace is not, a root is derived from the registry's tracer.
	Trace telemetry.TraceContext
}

// Stats reports the partitioning work, for the Exp-2 experiments.
type Stats struct {
	HashComputations int64 // distinct hash-function evaluations
	HashLookups      int64 // total evaluations incl. memoized reuse
	GeneratedTuples  int64 // |H(Σ,D)|: tuple copies generated before dedup
	PlacedTuples     int64 // tuple copies after per-block dedup
	Blocks           int   // non-empty virtual blocks
	HashFns          int   // hash functions used (after sharing)
	HashFnsBaseline  int   // one-per-distinct-variable baseline
	MaxFragment      int
	MinFragment      int
	Shards           int // goroutines the partition pass actually used
}

// Block is one virtual block of the computed partition: its canonical
// identity (the sorted packed (fn, extent, bucket) triples), its member
// tuples, the rules whose hypercubes generated it, and the worker the LPT
// assignment placed it on. Blocks are retained in the Result so the
// scheduler can re-assign them later (skew-adaptive rebalancing in
// dmatch) without re-partitioning.
type Block struct {
	Canon  []uint64       // sorted packed dims; the deterministic identity
	GIDs   []relation.TID // sorted member tuples
	Rules  []int          // sorted indices of the rules generating the block
	Worker int            // LPT assignment
}

// Result is the computed partition.
type Result struct {
	// Fragments[i] lists the GIDs assigned to worker i (deduplicated):
	// the union of the virtual blocks placed on the worker.
	Fragments [][]relation.TID
	// RuleFragments[i][r] lists the GIDs of worker i's blocks that were
	// generated for rule r. Hypercube semantics evaluate each rule within
	// its own blocks; scoping the chase per rule avoids every rule
	// re-scanning tuples that other rules' blocks brought to the worker.
	RuleFragments [][][]relation.TID
	// Blocks lists the non-empty virtual blocks in canonical order (nil
	// on the n=1 fast path, which has no blocks to balance).
	Blocks []Block
	Plan   *mqo.Plan
	Stats  Stats
}

// dim is one hypercube dimension of a rule: a distinct-variable class with
// its hash function and extent.
type dim struct {
	dv   *rule.DistinctVar
	fn   int
	size int
}

func errWorkers(n int) error {
	return fmt.Errorf("hypart: need at least one worker, got %d", n)
}

// effectiveRepCap resolves the replication-cap default: max(4, n/2).
func effectiveRepCap(cap, n int) int {
	if cap > 0 {
		return cap
	}
	out := 4
	if n/2 > out {
		out = n / 2
	}
	return out
}

// partitionSingle is the n=1 fast path: one fragment holding everything.
func partitionSingle(d *relation.Dataset, rules []*rule.Rule, res *Result, metrics *telemetry.Registry) *Result {
	ids := make([]relation.TID, 0, d.Size())
	for _, t := range d.Tuples() {
		ids = append(ids, t.GID)
	}
	res.Fragments = [][]relation.TID{ids}
	perRule := make([][]relation.TID, len(rules))
	for r := range perRule {
		perRule[r] = ids
	}
	res.RuleFragments = [][][]relation.TID{perRule}
	res.Stats.MaxFragment, res.Stats.MinFragment = len(ids), len(ids)
	metrics.Histogram("dcer_hypart_fragment_size").Observe(uint64(len(ids)))
	return res
}

// packDim packs one (fn, extent, bucket) dimension into a uint64 so block
// identities are short integer vectors instead of concatenated strings.
// Numeric order on the packed value equals (fn, extent, bucket)
// lexicographic order, so sorting packed dims canonicalizes a key exactly
// like the seed partitioner's sorted string parts. The fields are bounded
// far below the packing widths: fn by the plan's hash-function count,
// extent and bucket by the virtual-block budget n².
func packDim(fn, size, coord int) uint64 {
	return uint64(fn)<<40 | uint64(size)<<20 | uint64(coord)
}

// blockAcc accumulates one virtual block inside a shard (and, after the
// merge, globally): identity, member set, and the rules that emitted it.
type blockAcc struct {
	canon []uint64
	gids  map[relation.TID]struct{}
	rules []uint64 // bitset over rule indices
}

// shardAcc is one goroutine's private accumulator: blocks keyed by the
// FNV fingerprint of the canonical key, fingerprint collisions resolved
// by comparing the canonical keys themselves (the scopeKey/sameIDs
// discipline — a collision costs a chain walk, never a wrong block).
type shardAcc struct {
	blocks    map[uint64][]*blockAcc
	generated int64
	ruleWords int
	key       []uint64 // per-emit scratch
}

func newShardAcc(numRules int) *shardAcc {
	return &shardAcc{
		blocks:    make(map[uint64][]*blockAcc),
		ruleWords: (numRules + 63) / 64,
	}
}

func canonEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// canonLess orders canonical keys: shorter first, then elementwise.
func canonLess(a, b []uint64) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// emit registers gid in the block identified by dims/coord for rule ri.
func (sa *shardAcc) emit(dims []dim, coord []int, ri int, gid relation.TID) {
	sa.generated++
	key := sa.key[:0]
	for i := range dims {
		key = append(key, packDim(dims[i].fn, dims[i].size, coord[i]))
	}
	// Insertion sort: keys are tiny (one element per rule dimension).
	for i := 1; i < len(key); i++ {
		for j := i; j > 0 && key[j] < key[j-1]; j-- {
			key[j], key[j-1] = key[j-1], key[j]
		}
	}
	sa.key = key
	h := uint64(fnv.Offset64)
	for _, k := range key {
		h = fnv.Uint64(h, k)
	}
	var acc *blockAcc
	for _, cand := range sa.blocks[h] {
		if canonEqual(cand.canon, key) {
			acc = cand
			break
		}
	}
	if acc == nil {
		acc = &blockAcc{
			canon: append([]uint64(nil), key...),
			gids:  make(map[relation.TID]struct{}),
			rules: make([]uint64, sa.ruleWords),
		}
		sa.blocks[h] = append(sa.blocks[h], acc)
	}
	acc.gids[gid] = struct{}{}
	acc.rules[ri>>6] |= 1 << (uint(ri) & 63)
}

// emitBroadcast enumerates the broadcast combinations of coord and emits
// the tuple into each resulting block. Block keys embed (fn, extent,
// bucket) per dimension, so rules sharing all hash functions and extents
// share blocks — the tuple-copy dedup that MQO sharing buys.
func (sa *shardAcc) emitBroadcast(dims []dim, coord []int, bcast []int, bi, ri int, gid relation.TID) {
	if bi == len(bcast) {
		sa.emit(dims, coord, ri, gid)
		return
	}
	di := bcast[bi]
	for b := 0; b < dims[di].size; b++ {
		coord[di] = b
		sa.emitBroadcast(dims, coord, bcast, bi+1, ri, gid)
	}
}

// merge folds other into sa. Union is commutative, so the merged content
// is independent of shard scheduling.
func (sa *shardAcc) merge(other *shardAcc) {
	sa.generated += other.generated
	for h, chain := range other.blocks {
		for _, in := range chain {
			var acc *blockAcc
			for _, cand := range sa.blocks[h] {
				if canonEqual(cand.canon, in.canon) {
					acc = cand
					break
				}
			}
			if acc == nil {
				sa.blocks[h] = append(sa.blocks[h], in)
				continue
			}
			if len(acc.gids) < len(in.gids) {
				acc.gids, in.gids = in.gids, acc.gids
			}
			for gid := range in.gids {
				acc.gids[gid] = struct{}{}
			}
			for i, w := range in.rules {
				acc.rules[i] |= w
			}
		}
	}
}

// varScan is the per-(rule, variable) scan preparation shared by every
// shard: the rule's dimensions, which of them hash this variable (and on
// which attribute), which are broadcast, and the base coordinates.
type varScan struct {
	ri     int
	dims   []dim
	rel    *relation.Relation
	hashed []int
	attrs  []int // attribute per hashed dim
	bcast  []int
	base   []int // -1 for open dims, 0 for extent-1 dims
}

// unit is one shard work item: a tuple range of one varScan.
type unit struct {
	scan   *varScan
	lo, hi int
}

// unitChunk bounds the tuples per work unit so large relations split
// across shards while the unit list stays short.
const unitChunk = 2048

// Partition splits dataset d into n fragments for the rule set Σ.
func Partition(d *relation.Dataset, rules []*rule.Rule, n int, opts Options) (*Result, error) {
	if n < 1 {
		return nil, errWorkers(n)
	}
	tc := opts.Trace
	if !tc.Enabled() && opts.Metrics != nil {
		tc = opts.Metrics.Tracer().NewTrace(telemetry.PIDHyPart, 0)
	}
	root := tc.Start("hypart.Partition", telemetry.L("workers", strconv.Itoa(n)))
	defer root.End()
	ptc := root.Context()

	plan, err := mqo.Build(rules, opts.Share)
	if err != nil {
		return nil, err
	}
	res := &Result{Plan: plan}
	res.Stats.HashFns, res.Stats.HashFnsBaseline = plan.Savings()
	if n == 1 {
		res.Stats.Shards = 1
		return partitionSingle(d, rules, res, opts.Metrics), nil
	}

	vb := opts.VirtualBlocks
	if vb == 0 {
		vb = n * n
	}
	repCap := effectiveRepCap(opts.ReplicationCap, n)
	relSizes := make([]int, len(d.Relations))
	for i, rel := range d.Relations {
		relSizes[i] = len(rel.Tuples)
	}

	// Prepare the per-(rule, variable) scans and chunk them into units.
	var scans []*varScan
	for ri, ra := range plan.Assignments {
		dims := buildDims(ra, vb, repCap, relSizes)
		for vi, v := range ra.Rule.Vars {
			sc := &varScan{ri: ri, dims: dims, rel: d.Relations[v.RelIdx], base: make([]int, len(dims))}
			for di := range dims {
				sc.base[di] = -1
				if dims[di].size == 1 {
					sc.base[di] = 0
				}
				if attr, ok := dims[di].dv.AttrOf(vi); ok {
					sc.hashed = append(sc.hashed, di)
					sc.attrs = append(sc.attrs, attr)
				} else if dims[di].size > 1 {
					sc.bcast = append(sc.bcast, di)
				}
			}
			scans = append(scans, sc)
		}
	}
	var units []unit
	for _, sc := range scans {
		for lo := 0; lo < len(sc.rel.Tuples); lo += unitChunk {
			hi := lo + unitChunk
			if hi > len(sc.rel.Tuples) {
				hi = len(sc.rel.Tuples)
			}
			units = append(units, unit{sc, lo, hi})
		}
	}

	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > len(units) {
		shards = len(units)
	}
	if shards < 1 {
		shards = 1
	}
	res.Stats.Shards = shards

	hasher := mqo.NewShardedHasher()
	runShard := func(sa *shardAcc, take func() (unit, bool)) {
		var coord []int
		for {
			u, ok := take()
			if !ok {
				return
			}
			sc := u.scan
			coord = append(coord[:0], sc.base...)
			for _, t := range sc.rel.Tuples[u.lo:u.hi] {
				copy(coord, sc.base)
				for hi, di := range sc.hashed {
					coord[di] = int(hasher.Hash(sc.dims[di].fn, t.Val(sc.attrs[hi]))) % sc.dims[di].size
				}
				sa.emitBroadcast(sc.dims, coord, sc.bcast, 0, sc.ri, t.GID)
			}
		}
	}

	global := newShardAcc(len(rules))
	if shards == 1 {
		var sp telemetry.Span
		if ptc.Enabled() {
			sp = ptc.Lane(telemetry.PIDHyPart, 1).Start("hypart.shard.scan")
		}
		i := 0
		runShard(global, func() (unit, bool) {
			if i >= len(units) {
				return unit{}, false
			}
			i++
			return units[i-1], true
		})
		sp.End()
	} else {
		accs := make([]*shardAcc, shards)
		var cursor atomic.Int64
		take := func() (unit, bool) {
			i := int(cursor.Add(1)) - 1
			if i >= len(units) {
				return unit{}, false
			}
			return units[i], true
		}
		var wg sync.WaitGroup
		for s := 0; s < shards; s++ {
			accs[s] = newShardAcc(len(rules))
			wg.Add(1)
			go func(s int, sa *shardAcc) {
				defer wg.Done()
				var sp telemetry.Span
				if ptc.Enabled() {
					// Each scan goroutine renders on its own shard lane.
					sp = ptc.Lane(telemetry.PIDHyPart, int32(s+1)).Start("hypart.shard.scan")
				}
				runShard(sa, take)
				sp.End()
			}(s, accs[s])
		}
		wg.Wait()
		var msp telemetry.Span
		if ptc.Enabled() {
			msp = ptc.Start("hypart.merge", telemetry.L("shards", strconv.Itoa(shards)))
		}
		for _, sa := range accs {
			global.merge(sa)
		}
		msp.End()
	}
	res.Stats.HashComputations, res.Stats.HashLookups = hasher.Counts()
	res.Stats.GeneratedTuples = global.generated

	var asp telemetry.Span
	if ptc.Enabled() {
		asp = ptc.Start("hypart.assign")
		defer asp.End()
	}
	// Canonical block order: by key, so the result is independent of the
	// shard count and scheduling.
	var accs []*blockAcc
	for _, chain := range global.blocks {
		accs = append(accs, chain...)
	}
	sort.Slice(accs, func(i, j int) bool { return canonLess(accs[i].canon, accs[j].canon) })
	res.Blocks = make([]Block, len(accs))
	for bi, acc := range accs {
		gids := make([]relation.TID, 0, len(acc.gids))
		for gid := range acc.gids {
			gids = append(gids, gid)
		}
		sort.Slice(gids, func(a, b int) bool { return gids[a] < gids[b] })
		var ris []int
		for w, word := range acc.rules {
			for ; word != 0; word &= word - 1 {
				ris = append(ris, w*64+bits.TrailingZeros64(word))
			}
		}
		res.Blocks[bi] = Block{Canon: acc.canon, GIDs: gids, Rules: ris}
		res.Stats.PlacedTuples += int64(len(gids))
	}
	res.Stats.Blocks = len(res.Blocks)
	if opts.Metrics != nil {
		bh := opts.Metrics.Histogram("dcer_hypart_block_size")
		for i := range res.Blocks {
			bh.Observe(uint64(len(res.Blocks[i].GIDs)))
		}
	}

	// LPT minimum-makespan assignment of virtual blocks to workers, by
	// block size (the static cost model; dmatch re-runs this over
	// observed costs when a run shows skew).
	costs := make([]float64, len(res.Blocks))
	for i := range res.Blocks {
		costs[i] = float64(len(res.Blocks[i].GIDs))
	}
	assign := AssignLPT(costs, n)
	for i := range res.Blocks {
		res.Blocks[i].Worker = assign[i]
	}
	res.Fragments, res.RuleFragments = BuildFragments(res.Blocks, assign, n, len(rules))
	res.Stats.MinFragment = int(^uint(0) >> 1)
	for i, ids := range res.Fragments {
		if len(ids) > res.Stats.MaxFragment {
			res.Stats.MaxFragment = len(ids)
		}
		if len(ids) < res.Stats.MinFragment {
			res.Stats.MinFragment = len(ids)
		}
		opts.Metrics.Histogram("dcer_hypart_fragment_size").Observe(uint64(len(res.Fragments[i])))
	}
	return res, nil
}

// AssignLPT assigns blocks to n workers with the LPT minimum-makespan
// heuristic over the given per-block costs: blocks in descending cost
// order (ties by block index, which is canonical key order) go to the
// least-loaded worker (ties to the lowest worker). Partition calls it
// with block sizes; the skew-adaptive scheduler in dmatch re-invokes it
// with observed per-block costs to migrate blocks between supersteps.
func AssignLPT(costs []float64, n int) []int {
	order := make([]int, len(costs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return costs[order[i]] > costs[order[j]] })
	load := make([]float64, n)
	assign := make([]int, len(costs))
	for _, b := range order {
		w := 0
		for i := 1; i < n; i++ {
			if load[i] < load[w] {
				w = i
			}
		}
		assign[b] = w
		load[w] += costs[b]
	}
	return assign
}

// BuildFragments materializes the per-worker fragments and per-rule rule
// scopes implied by an assignment of blocks to workers: Fragments[i] is
// the sorted union of worker i's blocks, RuleFragments[i][r] the sorted
// union of its blocks generated for rule r.
func BuildFragments(blocks []Block, assign []int, n, numRules int) ([][]relation.TID, [][][]relation.TID) {
	fragSets := make([]map[relation.TID]struct{}, n)
	ruleSets := make([][]map[relation.TID]struct{}, n)
	for i := range fragSets {
		fragSets[i] = make(map[relation.TID]struct{})
		ruleSets[i] = make([]map[relation.TID]struct{}, numRules)
	}
	for bi := range blocks {
		w := assign[bi]
		for _, gid := range blocks[bi].GIDs {
			fragSets[w][gid] = struct{}{}
		}
		for _, ri := range blocks[bi].Rules {
			set := ruleSets[w][ri]
			if set == nil {
				set = make(map[relation.TID]struct{})
				ruleSets[w][ri] = set
			}
			for _, gid := range blocks[bi].GIDs {
				set[gid] = struct{}{}
			}
		}
	}
	sortIDs := func(set map[relation.TID]struct{}) []relation.TID {
		ids := make([]relation.TID, 0, len(set))
		for gid := range set {
			ids = append(ids, gid)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		return ids
	}
	frags := make([][]relation.TID, n)
	ruleFrags := make([][][]relation.TID, n)
	for i := range fragSets {
		frags[i] = sortIDs(fragSets[i])
		ruleFrags[i] = make([][]relation.TID, numRules)
		for ri, rset := range ruleSets[i] {
			ruleFrags[i][ri] = sortIDs(rset)
		}
	}
	return frags, ruleFrags
}

// buildDims allocates hypercube extents to a rule's dimensions by greedy
// doubling, the pragmatic stand-in for the Lagrangean allocation of
// Afrati-Ullman: at each step it doubles the dimension whose member
// variables contribute the most tuples to each block (so the doubling
// shrinks the expected block the most), refusing any doubling that would
// push some variable's broadcast product beyond repCap or exceed the block
// budget vb. Constant-pinned dimensions carry one value and keep extent 1.
func buildDims(ra *mqo.RuleAssignment, vb, repCap int, relSizes []int) []dim {
	dims := make([]dim, len(ra.DVs))
	for _, di := range ra.DimOrder {
		dims[di] = dim{dv: ra.DVs[di], fn: ra.HashFn[di], size: 1}
	}
	nvars := len(ra.Rule.Vars)
	// replication(v) = product of extents of dimensions without a member
	// on v — the number of copies each tuple bound to v generates.
	replication := func(v int) int {
		r := 1
		for di := range dims {
			if _, ok := dims[di].dv.AttrOf(v); !ok {
				r *= dims[di].size
			}
		}
		return r
	}
	// contribution(v) = expected tuples variable v places in one block.
	contribution := func(v int) float64 {
		c := float64(relSizes[ra.Rule.Vars[v].RelIdx])
		for di := range dims {
			if _, ok := dims[di].dv.AttrOf(v); ok {
				c /= float64(dims[di].size)
			}
		}
		return c
	}
	product := 1
	for product*2 <= vb {
		best, bestGain := -1, 0.0
		for di := range dims {
			if dims[di].dv.Const {
				continue
			}
			// Doubling di halves its member variables' block contribution
			// but doubles the broadcast of every non-member variable;
			// check the cap.
			ok := true
			gain := 0.0
			for v := 0; v < nvars; v++ {
				if _, member := dims[di].dv.AttrOf(v); member {
					gain += contribution(v) / 2
				} else if replication(v)*2 > repCap {
					ok = false
					break
				}
			}
			if !ok || gain <= 0 {
				continue
			}
			if best < 0 || gain > bestGain {
				best, bestGain = di, gain
			}
		}
		if best < 0 {
			break
		}
		dims[best].size *= 2
		product *= 2
	}
	return dims
}
