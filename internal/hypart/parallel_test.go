package hypart_test

import (
	"reflect"
	"testing"

	"dcer/internal/datagen"
	"dcer/internal/hypart"
	"dcer/internal/relation"
	"dcer/internal/rule"
)

// checkPartitionEquivalent asserts the sharded partitioner is byte-identical
// to its own sequential path (Shards=1) on one instance, for several shard
// counts, and that the seed-era reference partitioner agrees on every
// schedule-independent invariant.
func checkPartitionEquivalent(t *testing.T, d *relation.Dataset, rules []*rule.Rule, n int) {
	t.Helper()
	seq, err := hypart.Partition(d, rules, n, hypart.Options{Share: true, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 8} {
		par, err := hypart.Partition(d, rules, n, hypart.Options{Share: true, Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(par.Fragments, seq.Fragments) {
			t.Fatalf("shards=%d: fragments differ from sequential path", shards)
		}
		if !reflect.DeepEqual(par.RuleFragments, seq.RuleFragments) {
			t.Fatalf("shards=%d: rule fragments differ from sequential path", shards)
		}
		if !reflect.DeepEqual(par.Blocks, seq.Blocks) {
			t.Fatalf("shards=%d: virtual blocks differ from sequential path", shards)
		}
		ps, ss := par.Stats, seq.Stats
		ps.Shards, ss.Shards = 0, 0
		if ps != ss {
			t.Fatalf("shards=%d: stats differ:\n  par %+v\n  seq %+v", shards, ps, ss)
		}
	}
	// The reference implementation assigns blocks to workers with a
	// different LPT tie-break, so fragments may differ; every
	// assignment-independent quantity must agree exactly.
	ref, err := hypart.PartitionReference(d, rules, n, hypart.Options{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Stats.Blocks != seq.Stats.Blocks {
		t.Errorf("reference found %d blocks, rewrite %d", ref.Stats.Blocks, seq.Stats.Blocks)
	}
	if ref.Stats.GeneratedTuples != seq.Stats.GeneratedTuples {
		t.Errorf("reference generated %d tuples, rewrite %d",
			ref.Stats.GeneratedTuples, seq.Stats.GeneratedTuples)
	}
	if ref.Stats.PlacedTuples != seq.Stats.PlacedTuples {
		t.Errorf("reference placed %d tuples, rewrite %d",
			ref.Stats.PlacedTuples, seq.Stats.PlacedTuples)
	}
	if ref.Stats.HashComputations != seq.Stats.HashComputations ||
		ref.Stats.HashLookups != seq.Stats.HashLookups {
		t.Errorf("hasher stats diverge: reference %d/%d, rewrite %d/%d",
			ref.Stats.HashComputations, ref.Stats.HashLookups,
			seq.Stats.HashComputations, seq.Stats.HashLookups)
	}
	if len(ref.Fragments) != len(seq.Fragments) {
		t.Errorf("reference built %d fragments, rewrite %d", len(ref.Fragments), len(seq.Fragments))
	}
}

// TestPartitionParallelEquivalence is the property test of the tentpole:
// for random rule sets and datasets, the sharded Partition is byte-
// identical to the sequential path at every shard count, and the seed-era
// reference partitioner agrees on all assignment-independent invariants.
func TestPartitionParallelEquivalence(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		d, rules := randomPartitionInstance(t, seed)
		for _, n := range []int{2, 4, 8} {
			checkPartitionEquivalent(t, d, rules, n)
		}
	}
}

// TestPartitionParallelEquivalenceTPCH runs the same equivalence check on
// the realistic TPC-H-derived workload the benchmarks use.
func TestPartitionParallelEquivalenceTPCH(t *testing.T) {
	g := datagen.TPCH(datagen.TPCHOptions{Scale: 0.03, Dup: 0.3, Seed: 5})
	rules, err := g.Rules()
	if err != nil {
		t.Fatal(err)
	}
	checkPartitionEquivalent(t, g.D, rules, 8)
}

// TestReplicationCapOne: with the per-tuple copy factor capped at 1 no
// dimension may broadcast, so every (rule, variable, tuple) emits exactly
// one generated tuple and the partition is still a correct cover (checked
// against brute-force valuations via Lemma 6).
func TestReplicationCapOne(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		d, rules := randomPartitionInstance(t, seed)
		res, err := hypart.Partition(d, rules, 4, hypart.Options{Share: true, ReplicationCap: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := int64(0)
		for _, r := range rules {
			for _, v := range r.Vars {
				want += int64(len(d.Relations[v.RelIdx].Tuples))
			}
		}
		if res.Stats.GeneratedTuples != want {
			t.Errorf("seed %d: cap=1 generated %d tuples, want exactly %d (no broadcast)",
				seed, res.Stats.GeneratedTuples, want)
		}
		checkLocality(t, d, rules, res)
	}
}

// TestReplicationCapBelowBroadcastDims pins the cap below what the
// broadcast dimensions of a multi-atom rule would need: the allocator must
// degrade extents (fewer, coarser blocks) rather than violate the cap or
// lose valuations.
func TestReplicationCapBelowBroadcastDims(t *testing.T) {
	d, rules := randomPartitionInstance(t, 3)
	uncapped, err := hypart.Partition(d, rules, 8, hypart.Options{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := hypart.Partition(d, rules, 8, hypart.Options{Share: true, ReplicationCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Stats.GeneratedTuples > uncapped.Stats.GeneratedTuples {
		t.Errorf("cap=2 generated more tuples (%d) than uncapped (%d)",
			capped.Stats.GeneratedTuples, uncapped.Stats.GeneratedTuples)
	}
	if d.Size() > 0 {
		factor := float64(capped.Stats.GeneratedTuples) / float64(d.Size())
		// Per (rule, variable) each tuple may generate at most cap copies.
		bound := 0.0
		for _, r := range rules {
			bound += 2 * float64(len(r.Vars))
		}
		if factor > bound {
			t.Errorf("copy factor %.1f exceeds cap-implied bound %.1f", factor, bound)
		}
	}
	checkLocality(t, d, rules, capped)
}

// checkLocality asserts Lemma 6 for a partition result: every valuation of
// every rule is fully contained in at least one worker's scope for that
// rule.
func checkLocality(t *testing.T, d *relation.Dataset, rules []*rule.Rule, res *hypart.Result) {
	t.Helper()
	for ri, r := range rules {
		scopes := make([]map[relation.TID]bool, len(res.RuleFragments))
		for w := range res.RuleFragments {
			set := make(map[relation.TID]bool)
			for _, gid := range res.RuleFragments[w][ri] {
				set[gid] = true
			}
			scopes[w] = set
		}
		bruteValuations(d, r, func(binding []*relation.Tuple) {
			for _, scope := range scopes {
				all := true
				for _, tu := range binding {
					if !scope[tu.GID] {
						all = false
						break
					}
				}
				if all {
					return
				}
			}
			t.Fatalf("rule %d: valuation not local to any worker", ri)
		})
	}
}
