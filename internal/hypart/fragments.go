package hypart

import (
	"encoding/binary"
	"fmt"
	"math"

	"dcer/internal/relation"
)

// Fragment serialization: the binary form a worker fragment takes on the
// distributed DMatch wire. Fragments and per-rule scopes are sorted TID
// lists (BuildFragments unions sorted block GID lists), so the packing is
// delta-varint: a leading flag byte (1 = sorted, deltas follow; 0 = raw
// varints, the defensive fallback), then uvarint(count) and the packed
// words. At TPCH scale the deltas are small (dense id ranges per block),
// so most ids cost one byte instead of up to five.

// AppendTIDs appends one TID list to buf in the packed form above and
// returns the extended buffer.
func AppendTIDs(buf []byte, ids []relation.TID) []byte {
	sorted := true
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	prev := uint64(0)
	for _, id := range ids {
		w := uint64(uint32(id))
		if sorted {
			buf = binary.AppendUvarint(buf, w-prev)
			prev = w
		} else {
			buf = binary.AppendUvarint(buf, w)
		}
	}
	return buf
}

// ReadTIDs decodes one packed TID list from b, returning the list and the
// unconsumed remainder. Malformed input returns an error, never panics:
// counts are bounded by the remaining bytes and every word is range-
// checked against the TID domain.
func ReadTIDs(b []byte) ([]relation.TID, []byte, error) {
	if len(b) == 0 {
		return nil, nil, fmt.Errorf("hypart: truncated TID list: missing flag")
	}
	flag := b[0]
	if flag > 1 {
		return nil, nil, fmt.Errorf("hypart: bad TID-list flag %d", flag)
	}
	b = b[1:]
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("hypart: truncated TID list: bad count")
	}
	b = b[sz:]
	// Every id costs at least one byte; reject counts the remaining bytes
	// cannot possibly hold so corrupt counts fail before allocating.
	if n > uint64(len(b)) {
		return nil, nil, fmt.Errorf("hypart: TID count %d exceeds %d remaining bytes", n, len(b))
	}
	ids := make([]relation.TID, 0, n)
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		w, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, nil, fmt.Errorf("hypart: truncated TID list at id %d/%d", i, n)
		}
		b = b[sz:]
		if flag == 1 {
			w += prev
			prev = w
		}
		if w > math.MaxUint32 {
			return nil, nil, fmt.Errorf("hypart: TID %d out of range", w)
		}
		ids = append(ids, relation.TID(uint32(w)))
	}
	return ids, b, nil
}

// AppendFragment appends a worker's full assignment — its fragment plus
// the per-rule scope lists — to buf.
func AppendFragment(buf []byte, frag []relation.TID, ruleFrags [][]relation.TID) []byte {
	buf = AppendTIDs(buf, frag)
	buf = binary.AppendUvarint(buf, uint64(len(ruleFrags)))
	for _, ids := range ruleFrags {
		buf = AppendTIDs(buf, ids)
	}
	return buf
}

// ReadFragment is the inverse of AppendFragment.
func ReadFragment(b []byte) (frag []relation.TID, ruleFrags [][]relation.TID, rest []byte, err error) {
	frag, b, err = ReadTIDs(b)
	if err != nil {
		return nil, nil, nil, err
	}
	nr, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, nil, nil, fmt.Errorf("hypart: truncated fragment: bad rule count")
	}
	b = b[sz:]
	// Each rule list costs at least two bytes (flag + count).
	if nr > uint64(len(b)/2) {
		return nil, nil, nil, fmt.Errorf("hypart: rule count %d exceeds %d remaining bytes", nr, len(b))
	}
	ruleFrags = make([][]relation.TID, 0, nr)
	for i := uint64(0); i < nr; i++ {
		var ids []relation.TID
		ids, b, err = ReadTIDs(b)
		if err != nil {
			return nil, nil, nil, err
		}
		ruleFrags = append(ruleFrags, ids)
	}
	return frag, ruleFrags, b, nil
}
