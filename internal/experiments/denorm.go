package experiments

import (
	"dcer/internal/baselines"
	"dcer/internal/datagen"
	"dcer/internal/eval"
	"dcer/internal/relation"
)

// Denorm reproduces Exp-1(5): ER on a universal relation. TPC-H is
// denormalized through its foreign keys into one wide table TPCH_d and the
// single-table baselines are run on it; DMatch runs on the original
// normalized tables, scored on the same order duplicates. The paper found
// denormalization costly (1517s / 134GB on 30M tuples) and still less
// accurate than DMatch, because it is impossible to know statically how
// many joins the recursion needs — here TPCH_d materializes three levels
// while the deep chains need four.
func Denorm(cfg Config) *Table {
	cfg = cfg.withDefaults()
	g := datagen.TPCH(datagen.TPCHOptions{Scale: cfg.Scale, Dup: 0.5, Seed: cfg.Seed})

	var joinedD *relation.Dataset
	var joinedTruth *eval.Truth
	joinTime := timeIt(func() {
		d, truth, err := datagen.DenormalizeTPCH(g)
		if err != nil {
			panic(err)
		}
		joinedD, joinedTruth = d, eval.NewTruth(truth)
	})

	t := &Table{
		Title:  "Exp-1(5): ER on a denormalized universal relation (Dup=0.5)",
		Header: []string{"system", "input", "rows", "order-pair F", "time"},
	}
	t.AddRow("join (denormalize)", "TPCH -> TPCH_d", joinedD.Size(), "-", joinTime)
	for _, b := range []baselines.Matcher{&baselines.DisDedupLike{}, &baselines.SparkERLike{}} {
		m, dur := runBaseline(b, joinedD, joinedTruth)
		t.AddRow(b.Name(), "TPCH_d", joinedD.Size(), m.F1, dur)
	}

	// DMatch on the normalized tables, scored on the order pairs only.
	rules, err := g.Rules()
	if err != nil {
		panic(err)
	}
	_, dur, res := runDMatchRules(g, rules, cfg.Workers, false)
	orderRel := g.D.DB.SchemaIndex("orders")
	var orderTruthPairs [][2]relation.TID
	for _, pr := range g.Truth {
		if tt := g.D.Tuple(pr[0]); tt != nil && tt.Rel == orderRel {
			orderTruthPairs = append(orderTruthPairs, pr)
		}
	}
	var orderClasses [][]relation.TID
	for _, class := range res.Classes() {
		var orders []relation.TID
		for _, gid := range class {
			if tt := g.D.Tuple(gid); tt != nil && tt.Rel == orderRel {
				orders = append(orders, gid)
			}
		}
		if len(orders) > 1 {
			orderClasses = append(orderClasses, orders)
		}
	}
	mo := eval.EvaluateClasses(orderClasses, eval.NewTruth(orderTruthPairs))
	t.AddRow("DMatch", "TPCH (normalized)", g.D.Size(), mo.F1, dur)
	return t
}
