package experiments

import (
	"fmt"
	"strings"

	"dcer/internal/complexity"
	"dcer/internal/datagen"
	"dcer/internal/mlpred"
	"dcer/internal/relation"
)

// CaseStudy reproduces Exp-4: it runs the justification-tracking reference
// chase on the TPC-H workload and reports, per MRL, how many matches the
// rule derived and how deep its derivations reach — the analogue of the
// paper's discovered rules φ_a–φ_d, which span 2-3 tables, carry 4-8
// relation atoms, and mix ML and id predicates. It also renders one full
// deep proof.
func CaseStudy(cfg Config) *Table {
	cfg = cfg.withDefaults()
	g := datagen.TPCH(datagen.TPCHOptions{Scale: cfg.Scale / 4, Dup: 0.3, Seed: cfg.Seed})
	rules, err := g.Rules()
	if err != nil {
		panic(err)
	}
	res, err := complexity.NaiveChase(g.D, rules, mlpred.DefaultRegistry())
	if err != nil {
		panic(err)
	}
	t := &Table{
		Title:  "Exp-4 case study: per-rule derivations on TPCH",
		Header: []string{"rule", "atoms", "matches", "max depth"},
	}
	// Depth of a fact = 1 + max depth of its justifications.
	depth := make([]int, len(res.Facts))
	for i, f := range res.Facts {
		d := 1
		for _, b := range f.Body {
			if depth[b]+1 > d {
				d = depth[b] + 1
			}
		}
		depth[i] = d
	}
	count := map[string]int{}
	maxDepth := map[string]int{}
	for i, f := range res.Facts {
		count[f.Rule]++
		if depth[i] > maxDepth[f.Rule] {
			maxDepth[f.Rule] = depth[i]
		}
	}
	for _, r := range rules {
		t.AddRow(r.Name, len(r.Vars), count[r.Name], maxDepth[r.Name])
	}

	// Append one rendered deep chain as a trailing "row" block.
	var deepest int
	for i := range res.Facts {
		if depth[i] > depth[deepest] {
			deepest = i
		}
	}
	if len(res.Facts) > 0 {
		target := [2]relation.TID{res.Facts[deepest].A, res.Facts[deepest].B}
		proof := complexity.ProofOf(res, target)
		var b strings.Builder
		fmt.Fprintf(&b, "deepest derivation (%d levels): ", depth[deepest])
		for i, st := range proof {
			if i > 0 {
				b.WriteString(" -> ")
			}
			b.WriteString(st.Rule)
		}
		t.AddRow(b.String(), "", "", "")
	}
	return t
}
