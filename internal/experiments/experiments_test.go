package experiments_test

import (
	"strconv"
	"strings"
	"testing"

	"dcer/internal/experiments"
)

// tiny keeps the drivers fast enough for the regular test run.
var tiny = experiments.Config{Scale: 0.04, Workers: 4, Seed: 1}

func parseF(t *testing.T, cell string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q is not a number: %v", cell, err)
	}
	return f
}

// TestTableVIShape checks the Table VI driver emits five Dup rows with
// plausible accuracy on both datasets.
func TestTableVIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver (TableVI) is minutes-long; run without -short")
	}
	tb := experiments.TableVI(tiny)
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			if f := parseF(t, cell); f < 0.7 || f > 1 {
				t.Errorf("accuracy %v out of the plausible band", f)
			}
		}
	}
	if !strings.Contains(tb.String(), "Dup") {
		t.Error("table rendering lacks header")
	}
}

// TestFig6ABShape checks the ablation ordering the paper reports: DMatch
// beats both DMatch_C and DMatch_D, which beat nothing in particular but
// the full engine must also beat the distributed baselines.
func TestFig6ABShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver (Fig6AB) is minutes-long; run without -short")
	}
	tb := experiments.Fig6AB(tiny)
	f := map[string][2]float64{}
	for _, row := range tb.Rows {
		f[row[0]] = [2]float64{parseF(t, row[1]), parseF(t, row[2])}
	}
	for _, col := range []int{0, 1} {
		full := f["DMatch"][col]
		if full <= f["DMatch_C"][col] {
			t.Errorf("col %d: DMatch (%.3f) not above DMatch_C (%.3f)", col, full, f["DMatch_C"][col])
		}
		if full < f["DMatch_D"][col] {
			t.Errorf("col %d: DMatch (%.3f) below DMatch_D (%.3f)", col, full, f["DMatch_D"][col])
		}
		for _, b := range []string{"Dedoop", "DisDedup", "SparkER"} {
			if full <= f[b][col] {
				t.Errorf("col %d: DMatch (%.3f) not above %s (%.3f)", col, full, b, f[b][col])
			}
		}
	}
}

// TestPartitioningShape checks the Exp-2 driver emits one row per worker
// count with positive message counts.
func TestPartitioningShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver (Partitioning) is minutes-long; run without -short")
	}
	tb := experiments.Partitioning(tiny)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if msgs, _ := strconv.Atoi(row[4]); msgs <= 0 {
			t.Errorf("n=%s: no messages routed", row[0])
		}
	}
}

// TestCaseStudyShape checks the Exp-4 driver reports one row per rule and
// at least one derivation deeper than two levels (genuine recursion).
func TestCaseStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver (CaseStudy) is minutes-long; run without -short")
	}
	// CaseStudy runs the brute-force NaiveChase oracle, which is
	// exponential in a rule's tuple variables — the scale must stay far
	// below the other drivers' or the enumeration takes hours. Scale
	// 0.025 (≈220 tuples) is the smallest workload that still derives a
	// chain deeper than two levels.
	tb := experiments.CaseStudy(experiments.Config{Scale: 0.025, Workers: 4, Seed: 1})
	if len(tb.Rows) < 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	deep := false
	for _, row := range tb.Rows {
		if len(row) == 4 && row[3] != "" {
			if d, _ := strconv.Atoi(row[3]); d >= 3 {
				deep = true
			}
		}
	}
	if !deep {
		t.Error("no rule reached depth ≥ 3")
	}
}

// TestDenormShape checks the Exp-1(5) driver: the join is materialized and
// DMatch's order accuracy beats the universal-relation baselines.
func TestDenormShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver (Denorm) is minutes-long; run without -short")
	}
	tb := experiments.Denorm(tiny)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var dmatchF, bestBaseline float64
	for _, row := range tb.Rows {
		if row[3] == "-" {
			continue
		}
		f := parseF(t, row[3])
		if row[0] == "DMatch" {
			dmatchF = f
		} else if f > bestBaseline {
			bestBaseline = f
		}
	}
	if dmatchF <= bestBaseline {
		t.Errorf("DMatch order F %.3f not above universal-relation baselines %.3f", dmatchF, bestBaseline)
	}
}
