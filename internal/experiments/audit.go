package experiments

import (
	"fmt"
	"strings"

	"dcer/internal/datagen"
	"dcer/internal/dmatch"
	"dcer/internal/eval"
	"dcer/internal/mlpred"
	"dcer/internal/provenance"
	"dcer/internal/relation"
)

// auditSample is how many predicted pairs the audit driver proves; the
// sample prefers false positives, the pairs a reviewer actually reads.
const auditSample = 8

// AuditRun demonstrates the audit mode of the evaluation: DMatch with
// justification capture on a labeled dataset, the usual accuracy numbers,
// and — new with the provenance layer — a proof chain for each sampled
// predicted pair, so precision failures can be traced to the rule
// applications that caused them.
func AuditRun(cfg Config) *Table {
	cfg = cfg.withDefaults()
	size := int(2000 * cfg.Scale)
	if size < 200 {
		size = 200
	}
	g := datagen.IMDBLike(size, 0.25, cfg.Seed)
	rules, err := g.Rules()
	if err != nil {
		panic(err)
	}
	res, err := dmatch.Run(g.D, rules, mlpred.DefaultRegistry(), dmatch.Options{
		Workers:    cfg.Workers,
		Sequential: true,
		Provenance: true,
	})
	if err != nil {
		panic(err)
	}
	rep := eval.Audit(res.Classes(), eval.NewTruth(g.Truth), auditSample, cfg.Seed,
		func(a, b relation.TID) (string, error) {
			proof, err := res.Proof(a, b)
			if err != nil {
				return "", err
			}
			return proofSummary(proof), nil
		})
	t := &Table{
		Title:  fmt.Sprintf("Audit: DMatch on IMDB with proofs — %s", rep.Metrics),
		Header: []string{"pair", "truth", "proof"},
	}
	for _, e := range rep.Sampled {
		verdict := "TP"
		if !e.TruePositive {
			verdict = "FP"
		}
		p := e.Proof
		if e.ProofErr != nil {
			p = "unavailable: " + e.ProofErr.Error()
		}
		t.AddRow(fmt.Sprintf("(%d, %d)", e.Pair[0], e.Pair[1]), verdict, p)
	}
	return t
}

// proofSummary compresses a proof to its derivation chain: the rules
// fired in order, with setup id-value duplicates folded into one marker.
func proofSummary(proof []provenance.Entry) string {
	var steps []string
	idDups := 0
	for _, en := range proof {
		if en.Origin == provenance.OriginIDDup {
			idDups++
			continue
		}
		if en.Rule != "" {
			steps = append(steps, en.Rule)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d steps", len(proof))
	if idDups > 0 {
		fmt.Fprintf(&b, " (%d id-dup)", idDups)
	}
	if len(steps) > 0 {
		b.WriteString(": " + strings.Join(steps, " → "))
	}
	return b.String()
}
