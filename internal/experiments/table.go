// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI) on the synthetic stand-in datasets: Table V
// (accuracy and time of DMatch vs the eight baselines), Table VI (accuracy
// vs Dup), and Figures 6(a)-(l) (accuracy ablations, time vs Dup, rule
// width, rule count, workers, and scale). The drivers are shared by
// cmd/experiments and the top-level benchmarks.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case time.Duration:
			row[i] = fmtDuration(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			pad := widths[i] - len(c)
			if i == 0 {
				fmt.Fprintf(w, "%s%s", c, strings.Repeat(" ", pad))
			} else {
				fmt.Fprintf(w, "  %s%s", strings.Repeat(" ", pad), c)
			}
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
