package experiments

import (
	"fmt"
	"time"

	"dcer/internal/baselines"
	"dcer/internal/datagen"
	"dcer/internal/dmatch"
	"dcer/internal/eval"
	"dcer/internal/mlpred"
	"dcer/internal/relation"
	"dcer/internal/rule"
)

// Config scales the experiments. The defaults keep every driver at
// laptop/bench scale; raise Scale for longer runs.
type Config struct {
	// Scale multiplies the dataset sizes (1.0 ≈ 25k TPC-H tuples).
	Scale float64
	// Workers is the default worker count n (the paper's default is 16).
	Workers int
	Seed    int64
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.2
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	return c
}

// runDMatch executes DMatch and returns its accuracy and simulated
// cluster time (the BSP makespan; see dmatch.Result.SimulatedTime —
// wall-clock is meaningless for n workers on a smaller host).
func runDMatch(g *datagen.Generated, workers int, noMQO bool) (eval.Metrics, time.Duration, *dmatch.Result) {
	rules, err := g.Rules()
	if err != nil {
		panic(err)
	}
	return runDMatchRules(g, rules, workers, noMQO)
}

// runDMatchRules is runDMatch with an explicit rule set (for ablations).
// Workers run sequentially so per-worker timings are undistorted.
func runDMatchRules(g *datagen.Generated, rules []*rule.Rule, workers int, noMQO bool) (eval.Metrics, time.Duration, *dmatch.Result) {
	res, err := dmatch.Run(g.D, rules, mlpred.DefaultRegistry(),
		dmatch.Options{Workers: workers, NoMQO: noMQO, Sequential: true})
	if err != nil {
		panic(err)
	}
	m := eval.EvaluateClasses(res.Classes(), eval.NewTruth(g.Truth))
	return m, res.SimulatedTime, res
}

// timeRepeats is how often the timed experiments repeat each measurement;
// the minimum is reported (standard noise suppression).
const timeRepeats = 3

// runTimed repeats a DMatch run and returns the minimum simulated time.
func runTimed(g *datagen.Generated, rules []*rule.Rule, workers int, noMQO bool) time.Duration {
	best := time.Duration(0)
	for i := 0; i < timeRepeats; i++ {
		_, d, _ := runDMatchRules(g, rules, workers, noMQO)
		if i == 0 || d < best {
			best = d
		}
	}
	return best
}

// runBaseline executes a pairwise baseline and returns accuracy and time.
func runBaseline(b baselines.Matcher, d *relation.Dataset, truth *eval.Truth) (eval.Metrics, time.Duration) {
	var pairs [][2]relation.TID
	dur := timeIt(func() { pairs = b.Match(d) })
	return eval.EvaluatePairs(pairs, truth), dur
}

// trainSplit splits labeled pairs 2:1 (the paper's training/testing split
// for ML models) deterministically.
func trainSplit(pairs []datagen.LabeledPair, seed int64) (train []baselines.TrainingPair) {
	n := datagen.NewNoiser(seed)
	perm := n.Perm(len(pairs))
	cut := len(pairs) * 2 / 3
	for _, i := range perm[:cut] {
		p := pairs[i]
		train = append(train, baselines.TrainingPair{A: p.A, B: p.B, Match: p.Match})
	}
	return train
}

// labeledSystems builds the full baseline battery for one labeled dataset,
// training the learned models on the 2/3 split.
func labeledSystems(g *datagen.Labeled, seed int64) []baselines.Matcher {
	train := trainSplit(g.LabeledPairs, seed)
	deepER := baselines.TrainPairModel(g.D, train, 8, 0.5, 1e-4, seed)
	deepMatcher := baselines.TrainPairModel(g.D, train, 30, 0.3, 1e-4, seed+1)
	deepMatcher.Threshold = 0.6
	erblox := baselines.TrainPairModel(g.D, train, 15, 0.5, 1e-4, seed+2)
	return []baselines.Matcher{
		baselines.DeepMatcherLike(deepMatcher),
		&baselines.JedAILike{},
		&baselines.ERBloxLike{Model: erblox},
		baselines.DeepERLike(deepER),
		baselines.DittoLike(0.8),
		&baselines.DisDedupLike{},
		&baselines.DedoopLike{},
		&baselines.SparkERLike{},
		&baselines.Windowing{},
	}
}

// TableV reproduces Table V: F-measure and time of the baselines and
// DMatch on the four labeled datasets (IMDB, ACM-DBLP, Movie, Songs
// stand-ins).
func TableV(cfg Config) *Table {
	cfg = cfg.withDefaults()
	size := int(4000 * cfg.Scale)
	if size < 200 {
		size = 200
	}
	sets := []struct {
		name string
		g    *datagen.Labeled
	}{
		{"IMDB", datagen.IMDBLike(size, 0.25, cfg.Seed+1)},
		{"ACM-DBLP", datagen.DBLPLike(size*3/4, 0.25, cfg.Seed+2)},
		{"Movie", datagen.MovieLike(size*3/4, 0.25, cfg.Seed+3)},
		{"Songs", datagen.SongsLike(size, 0.25, cfg.Seed+4)},
	}
	t := &Table{
		Title:  "Table V: accuracy (F) and time on labeled datasets",
		Header: []string{"system", "IMDB F", "IMDB T", "ACM-DBLP F", "ACM-DBLP T", "Movie F", "Movie T", "Songs F", "Songs T"},
	}
	type cell struct {
		f eval.Metrics
		t time.Duration
	}
	results := map[string][]cell{}
	var order []string
	record := func(name string, c cell) {
		if _, ok := results[name]; !ok {
			order = append(order, name)
		}
		results[name] = append(results[name], c)
	}
	for _, set := range sets {
		truth := eval.NewTruth(set.g.Truth)
		for _, b := range labeledSystems(set.g, cfg.Seed) {
			m, dur := runBaseline(b, set.g.D, truth)
			record(b.Name(), cell{m, dur})
		}
		m, dur, _ := runDMatch(&set.g.Generated, cfg.Workers, false)
		record("DMatch", cell{m, dur})
	}
	for _, name := range order {
		row := []any{name}
		for _, c := range results[name] {
			row = append(row, c.f.F1, c.t)
		}
		t.AddRow(row...)
	}
	return t
}

// TableVI reproduces Table VI: DMatch accuracy vs Dup on TPCH and TFACC.
func TableVI(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Table VI: accuracy of DMatch varying Dup",
		Header: []string{"Dup", "TPCH F", "TFACC F"},
	}
	for _, dup := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		tp := datagen.TPCH(datagen.TPCHOptions{Scale: cfg.Scale, Dup: dup, Seed: cfg.Seed})
		tf := datagen.TFACC(datagen.TFACCOptions{Scale: cfg.Scale, Dup: dup, Seed: cfg.Seed})
		mtp, _, _ := runDMatch(tp, cfg.Workers, false)
		mtf, _, _ := runDMatch(tf, cfg.Workers, false)
		t.AddRow(dup, mtp.F1, mtf.F1)
	}
	return t
}

// ablationRules derives the DMatch_C (collective-only, no id
// preconditions) and DMatch_D (deep-only, ≤ 4 tuple variables) rule sets.
func ablationRules(g *datagen.Generated) (full, collective, deep []*rule.Rule) {
	full, err := g.Rules()
	if err != nil {
		panic(err)
	}
	return full, rule.FilterCollectiveOnly(full), rule.FilterDeepOnly(full, 4)
}

// Fig6AB reproduces Figures 6(a)-(b): F-measure of DMatch vs its
// ablations and the distributed baselines on TPCH and TFACC at Dup = 0.5.
func Fig6AB(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Fig 6(a)-(b): accuracy on TPCH and TFACC (Dup=0.5)",
		Header: []string{"system", "TPCH F", "TFACC F"},
	}
	tp := datagen.TPCH(datagen.TPCHOptions{Scale: cfg.Scale, Dup: 0.5, Seed: cfg.Seed})
	tf := datagen.TFACC(datagen.TFACCOptions{Scale: cfg.Scale, Dup: 0.5, Seed: cfg.Seed})
	fullTP, collTP, deepTP := ablationRules(tp)
	fullTF, collTF, deepTF := ablationRules(tf)
	row := func(name string, ftp, ftf float64) { t.AddRow(name, ftp, ftf) }

	m1, _, _ := runDMatchRules(tp, fullTP, cfg.Workers, false)
	m2, _, _ := runDMatchRules(tf, fullTF, cfg.Workers, false)
	row("DMatch", m1.F1, m2.F1)
	m1, _, _ = runDMatchRules(tp, collTP, cfg.Workers, false)
	m2, _, _ = runDMatchRules(tf, collTF, cfg.Workers, false)
	row("DMatch_C", m1.F1, m2.F1)
	m1, _, _ = runDMatchRules(tp, deepTP, cfg.Workers, false)
	m2, _, _ = runDMatchRules(tf, deepTF, cfg.Workers, false)
	row("DMatch_D", m1.F1, m2.F1)
	for _, b := range []baselines.Matcher{&baselines.DedoopLike{}, &baselines.DisDedupLike{}, &baselines.SparkERLike{}} {
		mtp, _ := runBaseline(b, tp.D, eval.NewTruth(tp.Truth))
		mtf, _ := runBaseline(b, tf.D, eval.NewTruth(tf.Truth))
		row(b.Name(), mtp.F1, mtf.F1)
	}
	return t
}

// Fig6CD reproduces Figures 6(c)-(d): time vs Dup on TPCH and TFACC.
func Fig6CD(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Fig 6(c)-(d): time varying Dup (n=" + itoa(cfg.Workers) + ")",
		Header: []string{"Dup", "TPCH DMatch", "TPCH DisDedup", "TPCH SparkER", "TFACC DMatch", "TFACC DisDedup", "TFACC SparkER"},
	}
	for _, dup := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		tp := datagen.TPCH(datagen.TPCHOptions{Scale: cfg.Scale, Dup: dup, Seed: cfg.Seed})
		tf := datagen.TFACC(datagen.TFACCOptions{Scale: cfg.Scale, Dup: dup, Seed: cfg.Seed})
		tpRules, _ := tp.Rules()
		tfRules, _ := tf.Rules()
		dtp := runTimed(tp, tpRules, cfg.Workers, false)
		dtf := runTimed(tf, tfRules, cfg.Workers, false)
		dd := &baselines.DisDedupLike{Workers: cfg.Workers}
		sp := &baselines.SparkERLike{Workers: cfg.Workers}
		_, ddtp := runBaseline(dd, tp.D, eval.NewTruth(tp.Truth))
		_, sptp := runBaseline(sp, tp.D, eval.NewTruth(tp.Truth))
		_, ddtf := runBaseline(dd, tf.D, eval.NewTruth(tf.Truth))
		_, sptf := runBaseline(sp, tf.D, eval.NewTruth(tf.Truth))
		t.AddRow(dup, dtp, ddtp, sptp, dtf, ddtf, sptf)
	}
	return t
}

// Fig6EF reproduces Figures 6(e)-(f): time vs the number |φ| of predicates
// per rule (‖Σ‖ = 10), DMatch vs DMatch_noMQO.
func Fig6EF(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Fig 6(e)-(f): time varying |φ| (10 rules, n=" + itoa(cfg.Workers) + ")",
		Header: []string{"|φ|", "TPCH DMatch", "TPCH noMQO", "TFACC DMatch", "TFACC noMQO"},
	}
	tp := datagen.TPCH(datagen.TPCHOptions{Scale: cfg.Scale, Dup: 0.3, Seed: cfg.Seed})
	tf := datagen.TFACC(datagen.TFACCOptions{Scale: cfg.Scale, Dup: 0.3, Seed: cfg.Seed})
	for _, width := range []int{2, 4, 6, 8, 10} {
		tpRules := mustResolve(datagen.TPCHWidthRules(width, 10), tp.D.DB)
		tfWidth := width
		if tfWidth > 8 {
			tfWidth = 8
		}
		tfRules := mustResolve(datagen.TFACCWidthRules(tfWidth, 10), tf.D.DB)
		t1 := runTimed(tp, tpRules, cfg.Workers, false)
		t2 := runTimed(tp, tpRules, cfg.Workers, true)
		t3 := runTimed(tf, tfRules, cfg.Workers, false)
		t4 := runTimed(tf, tfRules, cfg.Workers, true)
		t.AddRow(width, t1, t2, t3, t4)
	}
	return t
}

// Fig6GH reproduces Figures 6(g)-(h): time vs the number ‖Σ‖ of rules,
// DMatch vs DMatch_noMQO.
func Fig6GH(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Fig 6(g)-(h): time varying ‖Σ‖ (n=" + itoa(cfg.Workers) + ")",
		Header: []string{"‖Σ‖ TPCH", "TPCH DMatch", "TPCH noMQO", "‖Σ‖ TFACC", "TFACC DMatch", "TFACC noMQO"},
	}
	tp := datagen.TPCH(datagen.TPCHOptions{Scale: cfg.Scale, Dup: 0.3, Seed: cfg.Seed})
	tf := datagen.TFACC(datagen.TFACCOptions{Scale: cfg.Scale, Dup: 0.3, Seed: cfg.Seed})
	tpCounts := []int{30, 45, 60, 75}
	tfCounts := []int{10, 17, 24, 30}
	for i := range tpCounts {
		tpRules := mustResolve(datagen.TPCHManyRules(tpCounts[i]), tp.D.DB)
		tfRules := mustResolve(datagen.TFACCManyRules(tfCounts[i]), tf.D.DB)
		t1 := runTimed(tp, tpRules, cfg.Workers, false)
		t2 := runTimed(tp, tpRules, cfg.Workers, true)
		t3 := runTimed(tf, tfRules, cfg.Workers, false)
		t4 := runTimed(tf, tfRules, cfg.Workers, true)
		t.AddRow(tpCounts[i], t1, t2, tfCounts[i], t3, t4)
	}
	return t
}

// Fig6IJ reproduces Figures 6(i)-(j): time (and speedup) vs the number n
// of workers — the parallel-scalability experiment.
func Fig6IJ(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Fig 6(i)-(j): time varying workers n",
		Header: []string{"n", "TPCH DMatch", "TPCH noMQO", "TFACC DMatch", "TFACC noMQO", "TPCH speedup vs n=2"},
	}
	tp := datagen.TPCH(datagen.TPCHOptions{Scale: cfg.Scale, Dup: 0.3, Seed: cfg.Seed})
	tf := datagen.TFACC(datagen.TFACCOptions{Scale: cfg.Scale, Dup: 0.3, Seed: cfg.Seed})
	tpRules := mustResolve(datagen.TPCHManyRules(30), tp.D.DB)
	tfRules := mustResolve(datagen.TFACCManyRules(10), tf.D.DB)
	var base time.Duration
	for _, n := range []int{2, 4, 8, 16, 32} {
		t1 := runTimed(tp, tpRules, n, false)
		t2 := runTimed(tp, tpRules, n, true)
		t3 := runTimed(tf, tfRules, n, false)
		t4 := runTimed(tf, tfRules, n, true)
		if n == 2 {
			base = t1
		}
		speedup := float64(base) / float64(t1)
		t.AddRow(n, t1, t2, t3, t4, speedup)
	}
	t.Title += " (simulated BSP makespan)"
	return t
}

// Fig6KL reproduces Figures 6(k)-(l): time vs scale factor.
func Fig6KL(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Fig 6(k)-(l): time varying scale factor (n=" + itoa(cfg.Workers) + ")",
		Header: []string{"sf", "TPCH DMatch", "TPCH noMQO", "TFACC DMatch", "TFACC noMQO"},
	}
	for _, sf := range []float64{0.05, 0.1, 0.25, 0.5, 1.0} {
		tp := datagen.TPCH(datagen.TPCHOptions{Scale: sf * cfg.Scale * 5, Dup: 0.3, Seed: cfg.Seed})
		tf := datagen.TFACC(datagen.TFACCOptions{Scale: sf * cfg.Scale * 5, Dup: 0.3, Seed: cfg.Seed})
		tpRules, _ := tp.Rules()
		tfRules, _ := tf.Rules()
		t1 := runTimed(tp, tpRules, cfg.Workers, false)
		t2 := runTimed(tp, tpRules, cfg.Workers, true)
		t3 := runTimed(tf, tfRules, cfg.Workers, false)
		t4 := runTimed(tf, tfRules, cfg.Workers, true)
		t.AddRow(sf, t1, t2, t3, t4)
	}
	return t
}

// Partitioning reproduces the Exp-2 partitioning measurement: HyPart time
// vs ER time as n grows.
func Partitioning(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Exp-2: partitioning time vs ER time on TPCH",
		Header: []string{"n", "partition", "ER", "partition/ER", "messages", "supersteps"},
	}
	tp := datagen.TPCH(datagen.TPCHOptions{Scale: cfg.Scale, Dup: 0.3, Seed: cfg.Seed})
	rules, err := tp.Rules()
	if err != nil {
		panic(err)
	}
	for _, n := range []int{4, 8, 16, 32} {
		var best *dmatch.Result
		for i := 0; i < timeRepeats; i++ {
			res, err := dmatch.Run(tp.D, rules, mlpred.DefaultRegistry(),
				dmatch.Options{Workers: n, Sequential: true})
			if err != nil {
				panic(err)
			}
			if best == nil || res.SimulatedTime+res.PartitionTime < best.SimulatedTime+best.PartitionTime {
				best = res
			}
		}
		// Hypercube routing is per-tuple parallel; the simulated cluster
		// partition time is the single-threaded wall time divided by n.
		simPart := best.PartitionTime / time.Duration(n)
		ratio := float64(simPart) / float64(best.SimulatedTime)
		t.AddRow(n, simPart, best.SimulatedTime, ratio, best.MessagesRouted, best.Supersteps)
	}
	return t
}

func mustResolve(text string, db *relation.Database) []*rule.Rule {
	rules, err := rule.ParseResolved(text, db)
	if err != nil {
		panic(err)
	}
	return rules
}

func itoa(n int) string { return fmt.Sprint(n) }
