// Package mqo implements the multi-query-optimization side of HyPart
// (Section IV): it builds a query plan over the predicates of a rule set
// Σ, detects predicates shared between rules, and assigns hash functions
// to the distinct variables of each rule so that rules with common
// predicates share hash functions. It realizes the three orderings of the
// paper: O_r on rules (SortQuery), O_p on predicates (AssignHash) and O_h
// on hash functions.
package mqo

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"dcer/internal/relation"
	"dcer/internal/rule"
)

// PredSig is a canonical cross-rule signature of a predicate: two
// predicates in different rules share hash functions iff their signatures
// are equal. Signatures abstract tuple-variable names away and keep only
// relation/attribute structure (plus the model name for ML predicates).
type PredSig string

// sigOf computes the canonical signature of a body or head predicate of a
// resolved rule. Equality predicates are symmetric, so the two sides are
// ordered canonically.
func sigOf(r *rule.Rule, p *rule.Pred) PredSig {
	rel := func(v int) string { return r.Vars[v].Rel }
	switch p.Kind {
	case rule.PredConst:
		return PredSig(fmt.Sprintf("c|%s.%d=%s", rel(p.V1), p.A1, p.Const.Key()))
	case rule.PredEq:
		a := fmt.Sprintf("%s.%d", rel(p.V1), p.A1)
		b := fmt.Sprintf("%s.%d", rel(p.V2), p.A2)
		if b < a {
			a, b = b, a
		}
		return PredSig("e|" + a + "=" + b)
	case rule.PredID:
		return PredSig("i|" + rel(p.V1))
	case rule.PredML:
		return PredSig(fmt.Sprintf("m|%s(%s.%v,%s.%v)", p.Model, rel(p.V1), p.A1Vec, rel(p.V2), p.A2Vec))
	}
	return ""
}

// RuleAssignment holds the hash-function assignment of one rule: its
// distinct variables (dimensions of its hypercube) and, per distinct
// variable, the id of the hash function assigned to it. DimOrder lists the
// distinct-variable positions sorted by hash-function id — the order O_h
// that makes tuples with the same functions land at the same place across
// rules.
type RuleAssignment struct {
	Rule     *rule.Rule
	DVs      []*rule.DistinctVar
	HashFn   []int
	DimOrder []int
}

// Plan is the MQO query plan for a rule set: the shared-predicate DAG
// (flattened to the sharing map), the rule order O_r, and per-rule hash
// assignments.
type Plan struct {
	Assignments []*RuleAssignment
	// Order is O_r: indexes into Assignments in processing order
	// (descending sharing score S_φ).
	Order []int
	// NumHashFns is the total number of distinct hash functions used;
	// with sharing this is below the total number of distinct variables.
	NumHashFns int
	// Shared maps each predicate signature to the rules carrying it.
	Shared map[PredSig][]int
	// TotalDVs is the total distinct-variable count over all rules (the
	// no-sharing hash-function count, for reporting the MQO saving).
	TotalDVs int
}

// Build constructs the plan for Σ. With share=false every distinct
// variable receives a fresh hash function (the DMatch_noMQO
// configuration); with share=true rules with common predicates share.
func Build(rules []*rule.Rule, share bool) (*Plan, error) {
	p := &Plan{Shared: make(map[PredSig][]int)}
	type predRef struct {
		sig  PredSig
		pred *rule.Pred
	}
	rulePreds := make([][]predRef, len(rules))
	for ri, r := range rules {
		dvs, err := rule.DistinctVars(r)
		if err != nil {
			return nil, err
		}
		ra := &RuleAssignment{Rule: r, DVs: dvs, HashFn: make([]int, len(dvs))}
		for i := range ra.HashFn {
			ra.HashFn[i] = -1
		}
		p.Assignments = append(p.Assignments, ra)
		p.TotalDVs += len(dvs)
		seen := make(map[PredSig]bool)
		addPred := func(pr *rule.Pred) {
			sig := sigOf(r, pr)
			rulePreds[ri] = append(rulePreds[ri], predRef{sig, pr})
			if !seen[sig] {
				seen[sig] = true
				p.Shared[sig] = append(p.Shared[sig], ri)
			}
		}
		for i := range r.Body {
			addPred(&r.Body[i])
		}
		addPred(&r.Head)
	}

	// SortQuery: O_r by descending S_φ = number of rules sharing some
	// predicate with φ.
	score := make([]int, len(rules))
	for ri := range rules {
		neighbors := make(map[int]bool)
		for _, pr := range rulePreds[ri] {
			for _, other := range p.Shared[pr.sig] {
				if other != ri {
					neighbors[other] = true
				}
			}
		}
		score[ri] = len(neighbors)
	}
	p.Order = make([]int, len(rules))
	for i := range p.Order {
		p.Order[i] = i
	}
	sort.SliceStable(p.Order, func(i, j int) bool { return score[p.Order[i]] > score[p.Order[j]] })

	// AssignHash, following O_r, O_p, O_h. The sharing unit is the
	// attribute occurrence: per the paper's Example 4, R.B carries the
	// same hash function in every rule mentioning it, equality classes
	// propagate a side's function to the other side (S.A adopts R.B's
	// function when R.B = S.A), id classes share per relation and ML
	// classes per (model, relation, attribute vector, side).
	next := 0
	fresh := func() int { next++; return next - 1 }
	assigned := make(map[string]int) // occurrence key -> hash fn
	occKeys := func(r *rule.Rule, dv *rule.DistinctVar) []string {
		if dv.ID {
			return []string{"i|" + r.Vars[dv.Members[0].Var].Rel}
		}
		if dv.MLVec != nil {
			return []string{fmt.Sprintf("m|%s.%v", r.Vars[dv.Members[0].Var].Rel, dv.MLVec)}
		}
		keys := make([]string, 0, len(dv.Members))
		seen := make(map[string]bool)
		for _, m := range dv.Members {
			k := fmt.Sprintf("a|%s.%d", r.Vars[m.Var].Rel, m.Attr)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		return keys
	}
	assignClass := func(r *rule.Rule, ra *RuleAssignment, dvIdx int) {
		if ra.HashFn[dvIdx] >= 0 {
			return
		}
		if !share {
			ra.HashFn[dvIdx] = fresh()
			return
		}
		keys := occKeys(r, ra.DVs[dvIdx])
		fn := -1
		for _, k := range keys {
			if f, ok := assigned[k]; ok && (fn < 0 || f < fn) {
				fn = f
			}
		}
		if fn < 0 {
			fn = fresh()
		}
		for _, k := range keys {
			if _, ok := assigned[k]; !ok {
				assigned[k] = fn
			}
		}
		ra.HashFn[dvIdx] = fn
	}
	for _, ri := range p.Order {
		ra := p.Assignments[ri]
		r := rules[ri]
		// O_p: predicates by descending S_lp = number of rules sharing.
		prs := append([]predRef(nil), rulePreds[ri]...)
		sort.SliceStable(prs, func(i, j int) bool {
			return len(p.Shared[prs[i].sig]) > len(p.Shared[prs[j].sig])
		})
		for _, pr := range prs {
			for _, dv := range predSides(r, ra.DVs, pr.pred) {
				if dv >= 0 {
					assignClass(r, ra, dv)
				}
			}
		}
		// Remaining distinct variables (not touched by any predicate).
		for i := range ra.HashFn {
			assignClass(r, ra, i)
		}
		// O_h: dimensions sorted by hash-function id.
		ra.DimOrder = make([]int, len(ra.DVs))
		for i := range ra.DimOrder {
			ra.DimOrder[i] = i
		}
		sort.SliceStable(ra.DimOrder, func(a, b int) bool {
			return ra.HashFn[ra.DimOrder[a]] < ra.HashFn[ra.DimOrder[b]]
		})
	}
	p.NumHashFns = next
	return p, nil
}

// predSides maps a predicate to the distinct-variable classes it touches:
// index 0 for its V1 side and 1 for its V2 side (-1 when absent). For
// equality predicates both sides belong to the same class.
func predSides(r *rule.Rule, dvs []*rule.DistinctVar, p *rule.Pred) [2]int {
	findClass := func(v, a int, mlVec []int) int {
		for ci, dv := range dvs {
			if mlVec != nil {
				if dv.MLVec == nil {
					continue
				}
				if len(dv.MLVec) != len(mlVec) {
					continue
				}
				same := dv.Members[0].Var == v
				for i := range mlVec {
					if dv.MLVec[i] != mlVec[i] {
						same = false
						break
					}
				}
				if same {
					return ci
				}
				continue
			}
			if dv.MLVec != nil {
				continue
			}
			for _, m := range dv.Members {
				if m.Var == v && m.Attr == a {
					return ci
				}
			}
		}
		return -1
	}
	switch p.Kind {
	case rule.PredConst:
		return [2]int{findClass(p.V1, p.A1, nil), -1}
	case rule.PredEq:
		return [2]int{findClass(p.V1, p.A1, nil), findClass(p.V2, p.A2, nil)}
	case rule.PredID:
		return [2]int{findIDClass(dvs, p.V1), findIDClass(dvs, p.V2)}
	case rule.PredML:
		return [2]int{findClass(p.V1, p.A1Vec[0], p.A1Vec), findClass(p.V2, p.A2Vec[0], p.A2Vec)}
	}
	return [2]int{-1, -1}
}

func findIDClass(dvs []*rule.DistinctVar, v int) int {
	for ci, dv := range dvs {
		if dv.ID && dv.Members[0].Var == v {
			return ci
		}
	}
	return -1
}

// Savings reports the hash-function saving of the plan: functions used vs
// the one-per-distinct-variable baseline.
func (p *Plan) Savings() (used, baseline int) { return p.NumHashFns, p.TotalDVs }

// String renders a compact summary of the plan.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mqo plan: %d rules, %d hash fns (baseline %d)\n",
		len(p.Assignments), p.NumHashFns, p.TotalDVs)
	for _, ri := range p.Order {
		ra := p.Assignments[ri]
		fmt.Fprintf(&b, "  %s: dims=%d fns=%v\n", ra.Rule.Name, len(ra.DVs), ra.HashFn)
	}
	return b.String()
}

// Hasher evaluates hash functions over values with cross-rule memoization:
// the same (function, value) pair is computed once, which is exactly the
// computation MQO sharing saves. Computations and lookups are counted for
// the experiments. Hasher is single-threaded; the parallel partitioner
// uses ShardedHasher, which keeps the same memo semantics under
// concurrency.
type Hasher struct {
	memo         map[hkey]uint32
	Computations int64
	Lookups      int64
}

// hkey identifies a memoized (function, value) pair without rendering the
// value's canonical key string: strings carry their payload directly
// (the header is shared, not copied) and numerics their exact bit
// pattern, so distinct canonical keys — including -0 vs +0 and int vs
// float of equal magnitude — stay distinct memo entries, exactly as the
// old string-keyed memo had them.
type hkey struct {
	fn   int
	kind relation.Type
	bits uint64
	str  string
}

func hkeyOf(fn int, v relation.Value) hkey {
	if v.Kind == relation.TypeString {
		return hkey{fn: fn, kind: v.Kind, str: v.Str}
	}
	return hkey{fn: fn, kind: v.Kind, bits: math.Float64bits(v.Num)}
}

// NewHasher creates an empty memoizing hasher.
func NewHasher() *Hasher { return &Hasher{memo: make(map[hkey]uint32)} }

// Hash evaluates hash function fn on value v (FNV-1a seeded by fn).
func (h *Hasher) Hash(fn int, v relation.Value) uint32 {
	h.Lookups++
	k := hkeyOf(fn, v)
	if r, ok := h.memo[k]; ok {
		return r
	}
	h.Computations++
	r := fnvHashValue(fn, v)
	h.memo[k] = r
	return r
}

// hasherStripes is the stripe count of ShardedHasher. 64 keeps the
// per-stripe maps small and the lock contention negligible at any
// realistic shard count.
const hasherStripes = 64

// ShardedHasher is the concurrency-safe Hasher used by the parallel
// partitioner: the memo is striped over lock-guarded shards keyed by the
// (function, value) fingerprint, and the counters are atomics. All
// partition shards share one ShardedHasher, so each distinct (fn, value)
// pair is still computed exactly once — the memo semantics (and the
// Computations/Lookups accounting the Exp-2 experiments report) are
// identical to the sequential Hasher.
type ShardedHasher struct {
	stripes      [hasherStripes]hasherStripe
	computations atomic.Int64
	lookups      atomic.Int64
}

type hasherStripe struct {
	mu   sync.Mutex
	memo map[hkey]uint32
	_    [40]byte // pad to a cache line so stripes don't false-share
}

// NewShardedHasher creates an empty concurrency-safe memoizing hasher.
func NewShardedHasher() *ShardedHasher {
	h := &ShardedHasher{}
	for i := range h.stripes {
		h.stripes[i].memo = make(map[hkey]uint32)
	}
	return h
}

// Hash evaluates hash function fn on value v, memoized across all
// goroutines sharing the hasher.
func (h *ShardedHasher) Hash(fn int, v relation.Value) uint32 {
	h.lookups.Add(1)
	k := hkeyOf(fn, v)
	// Stripe by a cheap fingerprint of the key; any distribution works,
	// only the per-stripe map lookup must stay exact.
	fp := uint32(fn) * 2654435761
	if k.kind == relation.TypeString {
		for i := 0; i < len(k.str); i++ {
			fp = fp*31 + uint32(k.str[i])
		}
	} else {
		fp = fp*31 + uint32(k.kind)
		fp = fp*31 + uint32(k.bits) + uint32(k.bits>>32)
	}
	st := &h.stripes[fp%hasherStripes]
	st.mu.Lock()
	if r, ok := st.memo[k]; ok {
		st.mu.Unlock()
		return r
	}
	r := fnvHashValue(fn, v)
	st.memo[k] = r
	st.mu.Unlock()
	h.computations.Add(1)
	return r
}

// Counts reports the hash evaluations performed and requested so far.
func (h *ShardedHasher) Counts() (computations, lookups int64) {
	return h.computations.Load(), h.lookups.Load()
}

const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

func fnvHash(seed int, s string) uint32 {
	return fnvFold(uint32(fnvOffset32)^uint32(seed*2654435761), s)
}

func fnvFold(x uint32, s string) uint32 {
	for i := 0; i < len(s); i++ {
		x ^= uint32(s[i])
		x *= fnvPrime32
	}
	return x
}

// fnvHashValue computes fnvHash(seed, v.Key()) without materializing the
// canonical key string: the kind prefix and payload rendering are folded
// into the FNV state incrementally, numerics through stack buffers. The
// resulting hash — and therefore every partitioning decision downstream —
// is bit-identical to the string-keyed path.
func fnvHashValue(seed int, v relation.Value) uint32 {
	x := uint32(fnvOffset32) ^ uint32(seed*2654435761)
	var buf [32]byte
	var payload []byte
	switch v.Kind {
	case relation.TypeString:
		x = fnvFold(x, "s:")
		return fnvFold(x, v.Str)
	case relation.TypeInt:
		x = fnvFold(x, "i:")
		payload = strconv.AppendInt(buf[:0], int64(v.Num), 10)
	default:
		x = fnvFold(x, "f:")
		payload = strconv.AppendFloat(buf[:0], v.Num, 'g', -1, 64)
	}
	for _, c := range payload {
		x ^= uint32(c)
		x *= fnvPrime32
	}
	return x
}

// Dot renders the query plan as a Graphviz digraph: one node per rule, one
// node per shared predicate signature, and edges from predicates to the
// rules carrying them — the flattened form of the MQO plan DAG of Fig. 1
// in the paper.
func (p *Plan) Dot() string {
	var b strings.Builder
	b.WriteString("digraph mqo {\n  rankdir=LR;\n")
	for i, ra := range p.Assignments {
		fmt.Fprintf(&b, "  r%d [shape=box,label=%q];\n", i, ra.Rule.Name)
	}
	sigs := make([]string, 0, len(p.Shared))
	for sig, rules := range p.Shared {
		if len(rules) > 1 {
			sigs = append(sigs, string(sig))
		}
	}
	sort.Strings(sigs)
	for si, sig := range sigs {
		fmt.Fprintf(&b, "  p%d [shape=ellipse,label=%q];\n", si, sig)
		for _, ri := range p.Shared[PredSig(sig)] {
			fmt.Fprintf(&b, "  p%d -> r%d;\n", si, ri)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
