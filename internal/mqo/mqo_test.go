package mqo_test

import (
	"strings"
	"testing"

	"dcer/internal/datagen"
	"dcer/internal/mqo"
	"dcer/internal/relation"
	"dcer/internal/rule"
)

// exampleRules builds the three-rule sharing scenario of the paper's
// Example 4: φ1 joins R-S, φ2 joins R-T and φ3 joins T-P, all via the same
// crossed equality pattern, so φ1/φ2 share the R-side hash functions and
// φ2/φ3 the T-side ones.
func exampleRules(t *testing.T) (*relation.Database, []*rule.Rule) {
	t.Helper()
	str := relation.TypeString
	a := func(n string) relation.Attribute { return relation.Attribute{Name: n, Type: str} }
	db := relation.MustDatabase(
		relation.MustSchema("R", "id", a("id"), a("A"), a("B")),
		relation.MustSchema("S", "id", a("id"), a("A"), a("B")),
		relation.MustSchema("T", "id", a("id"), a("A"), a("B")),
		relation.MustSchema("P", "id", a("id"), a("A"), a("B")),
	)
	rules, err := rule.ParseResolved(`
phi1: R(t1) ^ S(t2) ^ t1.B = t2.A ^ t2.B = t1.A -> t1.id = t2.id
phi2: R(t3) ^ T(t4) ^ t3.B = t4.A ^ t4.B = t3.A -> t3.id = t4.id
phi3: T(t5) ^ P(t6) ^ t5.B = t6.A ^ t6.B = t5.A -> t5.id = t6.id
`, db)
	if err != nil {
		t.Fatal(err)
	}
	return db, rules
}

func TestBuildSharing(t *testing.T) {
	_, rules := exampleRules(t)
	shared, err := mqo.Build(rules, true)
	if err != nil {
		t.Fatal(err)
	}
	private, err := mqo.Build(rules, false)
	if err != nil {
		t.Fatal(err)
	}
	if shared.NumHashFns >= private.NumHashFns {
		t.Errorf("sharing uses %d fns, no-sharing %d — no saving",
			shared.NumHashFns, private.NumHashFns)
	}
	used, baseline := shared.Savings()
	if used >= baseline {
		t.Errorf("Savings() = %d/%d", used, baseline)
	}
	if !strings.Contains(shared.String(), "mqo plan") {
		t.Error("String() malformed")
	}
}

// TestExample4HashFunctionCount mirrors the paper's count: the three rules
// have 12 distinct variables but need only 6 hash functions with sharing.
func TestExample4HashFunctionCount(t *testing.T) {
	_, rules := exampleRules(t)
	plan, err := mqo.Build(rules, true)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalDVs != 12 {
		t.Errorf("total distinct variables = %d, want 12 (4 per rule)", plan.TotalDVs)
	}
	if plan.NumHashFns != 6 {
		t.Errorf("hash functions = %d, want 6 as in Example 4", plan.NumHashFns)
	}
}

func TestSharedSidesGetSameFunction(t *testing.T) {
	_, rules := exampleRules(t)
	plan, err := mqo.Build(rules, true)
	if err != nil {
		t.Fatal(err)
	}
	// φ1 and φ2 share the R-side equality classes: the class containing
	// R.B (= partner .A) must carry the same hash fn in both assignments.
	fnOf := func(ra *mqo.RuleAssignment, varIdx, attr int) int {
		for ci, dv := range ra.DVs {
			for _, m := range dv.Members {
				if m.Var == varIdx && m.Attr == attr {
					return ra.HashFn[ci]
				}
			}
		}
		return -1
	}
	// R is variable 0 in both rules; attribute B is index 2.
	f1 := fnOf(plan.Assignments[0], 0, 2)
	f2 := fnOf(plan.Assignments[1], 0, 2)
	if f1 < 0 || f1 != f2 {
		t.Errorf("R.B hash fn differs across φ1/φ2: %d vs %d", f1, f2)
	}
}

func TestOrderByScore(t *testing.T) {
	db := datagen.PaperSchemas()
	rules, err := datagen.PaperRules(db)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := mqo.Build(rules, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Order) != len(rules) {
		t.Fatalf("order length %d", len(plan.Order))
	}
	// φ1 shares phone/addr predicates with φ3 and φ4, so it must come
	// before the unshared φ2 (mirrors the paper's Example 5 O_r).
	pos := map[string]int{}
	for i, ri := range plan.Order {
		pos[plan.Assignments[ri].Rule.Name] = i
	}
	if pos["phi1"] > pos["phi2"] {
		t.Errorf("O_r puts phi1 after phi2: %v", pos)
	}
}

func TestDimOrderSortedByFn(t *testing.T) {
	_, rules := exampleRules(t)
	plan, err := mqo.Build(rules, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, ra := range plan.Assignments {
		last := -1
		for _, di := range ra.DimOrder {
			if ra.HashFn[di] < last {
				t.Errorf("%s: DimOrder not sorted by hash fn", ra.Rule.Name)
			}
			last = ra.HashFn[di]
		}
	}
}

func TestHasherMemoization(t *testing.T) {
	h := mqo.NewHasher()
	v := relation.S("hello")
	a := h.Hash(3, v)
	b := h.Hash(3, v)
	if a != b {
		t.Error("hash not deterministic")
	}
	if h.Computations != 1 || h.Lookups != 2 {
		t.Errorf("memo stats = %d/%d", h.Computations, h.Lookups)
	}
	if h.Hash(4, v) == a {
		t.Log("different fns collided (allowed but suspicious)")
	}
	if h.Computations != 2 {
		t.Error("different fn should compute")
	}
}

func TestDot(t *testing.T) {
	_, rules := exampleRules(t)
	plan, err := mqo.Build(rules, true)
	if err != nil {
		t.Fatal(err)
	}
	dot := plan.Dot()
	for _, want := range []string{"digraph mqo", "phi1", "phi2", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot() missing %q:\n%s", want, dot)
		}
	}
}
