// Package rule defines MRLs — Matching Rules with mL (Section II of the
// paper): matching dependencies extended with embedded ML predicates,
// constant predicates, and collective preconditions spanning any number of
// relations. It provides a text parser for a rule DSL, schema resolution,
// structural analysis (deep/collective classification, distinct variables)
// and the hypergraph acyclicity test of Theorem 3.
package rule

import (
	"fmt"
	"strings"

	"dcer/internal/relation"
)

// PredKind discriminates the predicate forms p of Section II.
type PredKind uint8

// Predicate kinds. Relation atoms R(t) are represented separately as
// variable bindings (Rule.Vars), matching the paper's tuple-relational
// presentation.
const (
	// PredConst is t.A = c.
	PredConst PredKind = iota
	// PredEq is t.A = s.B.
	PredEq
	// PredID is the id predicate t.id = s.id.
	PredID
	// PredML is an ML predicate M(t[Ā], s[B̄]).
	PredML
)

// String names the predicate kind.
func (k PredKind) String() string {
	switch k {
	case PredConst:
		return "const"
	case PredEq:
		return "eq"
	case PredID:
		return "id"
	case PredML:
		return "ml"
	}
	return fmt.Sprintf("PredKind(%d)", uint8(k))
}

// Var is a tuple variable bound by a relation atom R(t).
type Var struct {
	Name string // variable name as written in the rule, e.g. "tc"
	Rel  string // relation schema name, e.g. "Customers"

	// RelIdx is the relation's index in the database schema; filled by
	// Rule.Resolve.
	RelIdx int
}

// Pred is one precondition or consequence predicate.
type Pred struct {
	Kind PredKind

	// V1/A1 and V2/A2 address var.attr operands by position (indexes into
	// Rule.Vars and the variable's schema) after Resolve; the *Name fields
	// hold the surface syntax.
	V1, V2     int
	A1, A2     int
	V1Name     string
	V2Name     string
	A1Name     string
	A2Name     string
	Const      relation.Value
	ConstText  string // surface text of the constant, before typing
	Model      string // ML classifier name
	A1Vec      []int  // ML attribute vector of V1 (resolved)
	A2Vec      []int  // ML attribute vector of V2 (resolved)
	A1VecNames []string
	A2VecNames []string
}

// Rule is an MRL φ = X → l. Vars lists the tuple variables (the relation
// atoms of X); Body lists the remaining predicates of X; Head is l, which
// must be an id predicate or an ML predicate.
type Rule struct {
	Name string
	Vars []Var
	Body []Pred
	Head Pred

	resolved bool
}

// Resolved reports whether Resolve has succeeded on this rule.
func (r *Rule) Resolved() bool { return r.resolved }

// VarIndex returns the position of the named tuple variable, or -1.
func (r *Rule) VarIndex(name string) int {
	for i, v := range r.Vars {
		if v.Name == name {
			return i
		}
	}
	return -1
}

// Resolve binds the rule to a database schema: it fills relation indexes,
// attribute indexes, and types constants, and validates compatibility
// (same-typed operands of equality predicates, pairwise-compatible ML
// attribute vectors, head restricted to id/ML predicates).
func (r *Rule) Resolve(db *relation.Database) error {
	for i := range r.Vars {
		idx := db.SchemaIndex(r.Vars[i].Rel)
		if idx < 0 {
			return fmt.Errorf("rule %s: unknown relation %q", r.Name, r.Vars[i].Rel)
		}
		r.Vars[i].RelIdx = idx
	}
	for i := range r.Body {
		if err := r.resolvePred(db, &r.Body[i]); err != nil {
			return err
		}
	}
	if r.Head.Kind != PredID && r.Head.Kind != PredML {
		return fmt.Errorf("rule %s: head must be an id or ML predicate, got %s", r.Name, r.Head.Kind)
	}
	if err := r.resolvePred(db, &r.Head); err != nil {
		return err
	}
	r.resolved = true
	return nil
}

func (r *Rule) resolvePred(db *relation.Database, p *Pred) error {
	lookupVar := func(name string) (int, *relation.Schema, error) {
		vi := r.VarIndex(name)
		if vi < 0 {
			return -1, nil, fmt.Errorf("rule %s: unbound tuple variable %q", r.Name, name)
		}
		return vi, db.Schemas[r.Vars[vi].RelIdx], nil
	}
	lookupAttr := func(s *relation.Schema, attr string) (int, error) {
		// ".id" is the designated id attribute of the schema.
		if attr == "id" {
			return s.IDAttr, nil
		}
		ai := s.AttrIndex(attr)
		if ai < 0 {
			return -1, fmt.Errorf("rule %s: relation %s has no attribute %q", r.Name, s.Name, attr)
		}
		return ai, nil
	}
	switch p.Kind {
	case PredConst:
		vi, s, err := lookupVar(p.V1Name)
		if err != nil {
			return err
		}
		ai, err := lookupAttr(s, p.A1Name)
		if err != nil {
			return err
		}
		p.V1, p.A1 = vi, ai
		v, err := relation.ParseValue(p.ConstText, s.Attrs[ai].Type)
		if err != nil {
			return fmt.Errorf("rule %s: constant for %s.%s: %w", r.Name, s.Name, p.A1Name, err)
		}
		p.Const = v
	case PredEq, PredID:
		v1, s1, err := lookupVar(p.V1Name)
		if err != nil {
			return err
		}
		v2, s2, err := lookupVar(p.V2Name)
		if err != nil {
			return err
		}
		a1, err := lookupAttr(s1, p.A1Name)
		if err != nil {
			return err
		}
		a2, err := lookupAttr(s2, p.A2Name)
		if err != nil {
			return err
		}
		if s1.Attrs[a1].Type != s2.Attrs[a2].Type {
			return fmt.Errorf("rule %s: incompatible types %s.%s (%s) vs %s.%s (%s)",
				r.Name, s1.Name, p.A1Name, s1.Attrs[a1].Type, s2.Name, p.A2Name, s2.Attrs[a2].Type)
		}
		p.V1, p.A1, p.V2, p.A2 = v1, a1, v2, a2
	case PredML:
		v1, s1, err := lookupVar(p.V1Name)
		if err != nil {
			return err
		}
		v2, s2, err := lookupVar(p.V2Name)
		if err != nil {
			return err
		}
		if len(p.A1VecNames) != len(p.A2VecNames) {
			return fmt.Errorf("rule %s: ML predicate %s has mismatched attribute vectors", r.Name, p.Model)
		}
		p.V1, p.V2 = v1, v2
		p.A1Vec = p.A1Vec[:0]
		p.A2Vec = p.A2Vec[:0]
		for i := range p.A1VecNames {
			a1, err := lookupAttr(s1, p.A1VecNames[i])
			if err != nil {
				return err
			}
			a2, err := lookupAttr(s2, p.A2VecNames[i])
			if err != nil {
				return err
			}
			if s1.Attrs[a1].Type != s2.Attrs[a2].Type {
				return fmt.Errorf("rule %s: ML predicate %s: incompatible %s.%s vs %s.%s",
					r.Name, p.Model, s1.Name, p.A1VecNames[i], s2.Name, p.A2VecNames[i])
			}
			p.A1Vec = append(p.A1Vec, a1)
			p.A2Vec = append(p.A2Vec, a2)
		}
	}
	return nil
}

// String renders the rule in the DSL syntax accepted by Parse.
func (r *Rule) String() string {
	var b strings.Builder
	if r.Name != "" {
		b.WriteString(r.Name)
		b.WriteString(": ")
	}
	for i, v := range r.Vars {
		if i > 0 {
			b.WriteString(" ^ ")
		}
		fmt.Fprintf(&b, "%s(%s)", v.Rel, v.Name)
	}
	for i := range r.Body {
		b.WriteString(" ^ ")
		b.WriteString(predString(&r.Body[i]))
	}
	b.WriteString(" -> ")
	b.WriteString(predString(&r.Head))
	return b.String()
}

// String renders the predicate in the DSL syntax accepted by Parse.
func (p *Pred) String() string { return predString(p) }

func predString(p *Pred) string {
	switch p.Kind {
	case PredConst:
		return fmt.Sprintf("%s.%s = %q", p.V1Name, p.A1Name, p.ConstText)
	case PredEq:
		return fmt.Sprintf("%s.%s = %s.%s", p.V1Name, p.A1Name, p.V2Name, p.A2Name)
	case PredID:
		return fmt.Sprintf("%s.id = %s.id", p.V1Name, p.V2Name)
	case PredML:
		return fmt.Sprintf("%s(%s[%s], %s[%s])", p.Model,
			p.V1Name, strings.Join(p.A1VecNames, ","),
			p.V2Name, strings.Join(p.A2VecNames, ","))
	}
	return "?"
}

// NumPredicates returns |φ|-style size: the number of body predicates plus
// relation atoms (used by the Fig 6(e)-(f) experiments when sweeping the
// average rule width).
func (r *Rule) NumPredicates() int { return len(r.Vars) + len(r.Body) }
