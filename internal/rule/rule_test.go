package rule_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dcer/internal/datagen"
	"dcer/internal/relation"
	"dcer/internal/rule"
)

func paperDB() *relation.Database { return datagen.PaperSchemas() }

func TestParseBasics(t *testing.T) {
	rules, err := rule.Parse(`
phi1: Customers(t) ^ Customers(s) ^ t.name = s.name -> t.id = s.id
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 {
		t.Fatalf("got %d rules", len(rules))
	}
	r := rules[0]
	if r.Name != "phi1" || len(r.Vars) != 2 || len(r.Body) != 1 {
		t.Errorf("parsed shape wrong: %+v", r)
	}
	if r.Body[0].Kind != rule.PredEq {
		t.Errorf("body kind = %v", r.Body[0].Kind)
	}
	if r.Head.Kind != rule.PredID {
		t.Errorf("head kind = %v", r.Head.Kind)
	}
}

func TestParseSeparatorsAndComments(t *testing.T) {
	for _, src := range []string{
		`r: A(a) ^ A(b) ^ a.x = b.x -> a.id = b.id`,
		`r: A(a) && A(b) && a.x = b.x -> a.id = b.id`,
		`r: A(a) , A(b) , a.x = b.x -> a.id = b.id`,
		"# leading comment\nr: A(a) ^ A(b) ^\n   a.x = b.x # trailing comment\n   -> a.id = b.id\n",
	} {
		rules, err := rule.Parse(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if len(rules) != 1 || len(rules[0].Body) != 1 {
			t.Errorf("%q: wrong shape", src)
		}
	}
}

func TestParseMLForms(t *testing.T) {
	rules, err := rule.Parse(`
a: P(p) ^ P(q) ^ m1(p.x, q.x) -> p.id = q.id
b: P(p) ^ P(q) ^ m2(p[x,y], q[x,y]) -> m3(p.x, q.x)
`)
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].Body[0].Kind != rule.PredML || rules[0].Body[0].Model != "m1" {
		t.Error("single-attr ML atom mis-parsed")
	}
	if got := rules[1].Body[0].A1VecNames; len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("vector ML atom attrs = %v", got)
	}
	if rules[1].Head.Kind != rule.PredML || rules[1].Head.Model != "m3" {
		t.Error("ML head mis-parsed")
	}
}

func TestParseConstants(t *testing.T) {
	rules, err := rule.Parse(`
r: A(a) ^ A(b) ^ a.seg = "BUILDING" ^ a.n = 42 ^ a.f = -1.5 -> a.id = b.id
`)
	if err != nil {
		t.Fatal(err)
	}
	body := rules[0].Body
	if body[0].Kind != rule.PredConst || body[0].ConstText != "BUILDING" {
		t.Errorf("string const: %+v", body[0])
	}
	if body[1].ConstText != "42" || body[2].ConstText != "-1.5" {
		t.Errorf("numeric consts: %+v %+v", body[1], body[2])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`r: -> a.id = b.id`,                      // no atoms
		`r: A(a) ^ a.x = `,                       // dangling
		`r: A(a) ^ A(b) ^ a.x = b.x`,             // no head
		`r: A(a) ^ A(b) ^ a.x = b.x -> A(c)`,     // relation atom head
		`r: A(a) ^ A(b) ^ "x" -> a.id = b.id`,    // stray literal
		`r: A(a) ^ m(a.x) -> a.id = a.id`,        // unary ML atom
		`r: A(a ^ A(b) ^ a.x=b.x -> a.id = b.id`, // unbalanced paren
		`r: A(a) ^ A(b) ^ a.x = b.x -> a.id $ b`, // junk
		"r: A(a) ^ A(b) ^ a.x = b.x -> a.id = b.id trailing",
	}
	for _, src := range bad {
		if _, err := rule.Parse(src); err == nil {
			t.Errorf("accepted bad rule %q", src)
		}
	}
}

func TestParseMultipleRules(t *testing.T) {
	rules, err := rule.Parse(`
r1: A(a) ^ A(b) ^ a.x = b.x -> a.id = b.id
r2: B(c) ^ B(d) ^ c.y = d.y -> c.id = d.id

r3: C(e) ^ C(f) ^
    e.z = f.z
    -> e.id = f.id
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("got %d rules, want 3", len(rules))
	}
	for i, want := range []string{"r1", "r2", "r3"} {
		if rules[i].Name != want {
			t.Errorf("rule %d name = %q", i, rules[i].Name)
		}
	}
}

func TestResolveErrors(t *testing.T) {
	db := paperDB()
	bad := map[string]string{
		"unknown relation":  `r: Nope(a) ^ Nope(b) ^ a.x = b.x -> a.id = b.id`,
		"unknown attribute": `r: Customers(a) ^ Customers(b) ^ a.bogus = b.name -> a.id = b.id`,
		"unbound variable":  `r: Customers(a) ^ Customers(b) ^ a.name = c.name -> a.id = b.id`,
		"type mismatch":     `r: Customers(a) ^ Customers(b) ^ jaccard05(a[name,phone], b.name) -> a.id = b.id`,
		"eq head":           `r: Customers(a) ^ Customers(b) ^ a.name = b.name -> a.phone = b.phone`,
	}
	for what, src := range bad {
		rules, err := rule.Parse(src)
		if err != nil {
			// "eq head" is fine to reject at parse time too.
			continue
		}
		if err := rules[0].Resolve(db); err == nil {
			t.Errorf("%s: resolved without error", what)
		}
	}
}

// TestCrossRelationID checks that id predicates may relate tuples of
// different relations (the paper's Example 4 matches R- and S-entities),
// as long as the id attributes are type-compatible.
func TestCrossRelationID(t *testing.T) {
	db := paperDB()
	if _, err := rule.ParseResolved(
		`r: Customers(a) ^ Products(p) ^ a.name = p.pname -> a.id = p.id`, db); err != nil {
		t.Errorf("cross-relation id rejected: %v", err)
	}
}

func TestResolveIDKeyword(t *testing.T) {
	db := paperDB()
	rules, err := rule.ParseResolved(
		`r: Customers(a) ^ Customers(b) ^ a.name = b.name -> a.id = b.id`, db)
	if err != nil {
		t.Fatal(err)
	}
	// ".id" resolves to the designated id attribute (cno, position 0).
	if rules[0].Head.A1 != 0 || rules[0].Head.A2 != 0 {
		t.Errorf("id attr positions = %d, %d", rules[0].Head.A1, rules[0].Head.A2)
	}
}

func TestStringRoundTrip(t *testing.T) {
	db := paperDB()
	rules, err := datagen.PaperRules(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		text := r.String()
		re, err := rule.Parse(text)
		if err != nil {
			t.Errorf("%s: re-parse of %q: %v", r.Name, text, err)
			continue
		}
		if err := re[0].Resolve(db); err != nil {
			t.Errorf("%s: re-resolve: %v", r.Name, err)
			continue
		}
		if re[0].String() != text {
			t.Errorf("%s: round trip drifted:\n%s\n%s", r.Name, text, re[0].String())
		}
	}
}

func TestClassify(t *testing.T) {
	db := paperDB()
	rules, err := datagen.PaperRules(db)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*rule.Rule{}
	for _, r := range rules {
		byName[r.Name] = r
	}
	cases := map[string]rule.Class{
		"phi1": {Deep: false, Collective: false, NumVars: 2, NumRels: 1},
		"phi2": {Deep: true, Collective: false, NumVars: 2, NumRels: 1}, // ML body predicate
		"phi3": {Deep: true, Collective: true, NumVars: 4, NumRels: 2},
		"phi4": {Deep: true, Collective: true, NumVars: 8, NumRels: 4},
		"phi5": {Deep: false, Collective: true, NumVars: 4, NumRels: 2},
	}
	for name, want := range cases {
		got := rule.Classify(byName[name])
		if got != want {
			t.Errorf("%s: Classify = %+v, want %+v", name, got, want)
		}
	}
	if rule.MaxVars(rules) != 8 {
		t.Errorf("MaxVars = %d, want 8", rule.MaxVars(rules))
	}
}

func TestFilters(t *testing.T) {
	db := paperDB()
	rules, err := datagen.PaperRules(db)
	if err != nil {
		t.Fatal(err)
	}
	coll := rule.FilterCollectiveOnly(rules)
	for _, r := range coll {
		for i := range r.Body {
			if r.Body[i].Kind == rule.PredID {
				t.Errorf("FilterCollectiveOnly kept deep rule %s", r.Name)
			}
		}
	}
	deep := rule.FilterDeepOnly(rules, 4)
	for _, r := range deep {
		if len(r.Vars) > 4 {
			t.Errorf("FilterDeepOnly kept wide rule %s (%d vars)", r.Name, len(r.Vars))
		}
	}
	// φ4 (8 vars) must be excluded from the deep-only set.
	for _, r := range deep {
		if r.Name == "phi4" {
			t.Error("phi4 kept in deep-only set")
		}
	}
}

func TestDistinctVars(t *testing.T) {
	db := paperDB()
	rules, err := rule.ParseResolved(`
r: Customers(a) ^ Customers(b) ^ a.name = b.name ^ a.phone = b.phone -> a.id = b.id
`, db)
	if err != nil {
		t.Fatal(err)
	}
	dvs, err := rule.DistinctVars(rules[0])
	if err != nil {
		t.Fatal(err)
	}
	// name class, phone class, a.id, b.id = 4 distinct variables.
	if len(dvs) != 4 {
		t.Fatalf("got %d distinct vars: %+v", len(dvs), dvs)
	}
	// The name class must contain both sides.
	if len(dvs[0].Members) != 2 {
		t.Errorf("first class members = %v", dvs[0].Members)
	}
	nID := 0
	for _, dv := range dvs {
		if dv.ID {
			nID++
			if len(dv.Members) != 1 {
				t.Errorf("id class has %d members", len(dv.Members))
			}
		}
	}
	if nID != 2 {
		t.Errorf("got %d id classes, want 2", nID)
	}
}

func TestDistinctVarsConstAndML(t *testing.T) {
	db := paperDB()
	rules, err := rule.ParseResolved(`
r: Customers(a) ^ Customers(b) ^ a.pref = "sports" ^ jaccard05(a.name, b.name) -> a.id = b.id
`, db)
	if err != nil {
		t.Fatal(err)
	}
	dvs, err := rule.DistinctVars(rules[0])
	if err != nil {
		t.Fatal(err)
	}
	var nConst, nML int
	for _, dv := range dvs {
		if dv.Const {
			nConst++
		}
		if dv.MLVec != nil {
			nML++
		}
	}
	if nConst != 1 {
		t.Errorf("const classes = %d, want 1", nConst)
	}
	if nML != 2 {
		t.Errorf("ML classes = %d, want 2 (one per side)", nML)
	}
}

func TestIsAcyclicPaperRules(t *testing.T) {
	db := paperDB()
	rules, err := datagen.PaperRules(db)
	if err != nil {
		t.Fatal(err)
	}
	// φ1, φ2, φ5 are chain/star joins; φ3 and φ4 contain genuine join
	// cycles (e.g. φ3: c—x via owner, x—y via email, y—d via owner,
	// d—c via phone), so the tractable case of Theorem 3 does not apply
	// to them.
	want := map[string]bool{
		"phi1": true, "phi2": true, "phi3": false, "phi4": false, "phi5": true,
	}
	for _, r := range rules {
		ok, err := rule.IsAcyclic(r)
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if ok != want[r.Name] {
			t.Errorf("%s: IsAcyclic = %v, want %v", r.Name, ok, want[r.Name])
		}
	}
}

func TestNumPredicates(t *testing.T) {
	rules := rule.MustParse(`r: A(a) ^ A(b) ^ a.x = b.x ^ a.y = b.y -> a.id = b.id`)
	if got := rules[0].NumPredicates(); got != 4 {
		t.Errorf("NumPredicates = %d, want 4", got)
	}
}

func TestSortByName(t *testing.T) {
	rules := rule.MustParse(`
b: A(a) ^ A(c) ^ a.x = c.x -> a.id = c.id
a: A(a) ^ A(c) ^ a.x = c.x -> a.id = c.id
`)
	rule.SortByName(rules)
	if rules[0].Name != "a" {
		t.Error("SortByName did not sort")
	}
}

func TestParseRejectsGarbageGracefully(t *testing.T) {
	if _, err := rule.Parse(strings.Repeat("@", 10)); err == nil {
		t.Error("garbage accepted")
	}
	if rules, err := rule.Parse("   \n\n  # only comments\n"); err != nil || len(rules) != 0 {
		t.Errorf("comment-only input: %v, %d rules", err, len(rules))
	}
}

// TestRandomRuleRoundTrip generates random (valid) rules, renders them
// with String and re-parses — the printer and parser must be inverses.
func TestRandomRuleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rels := []string{"Customers", "Shops", "Products", "Orders"}
	attrs := map[string][]string{
		"Customers": {"cno", "name", "phone", "addr", "pref"},
		"Shops":     {"sno", "sname", "owner", "email", "loc"},
		"Products":  {"pno", "pname", "price", "desc"},
		"Orders":    {"ono", "buyer", "seller", "item", "IP"},
	}
	db := paperDB()
	for trial := 0; trial < 200; trial++ {
		nvars := 2 + rng.Intn(3)
		var vars []string
		var relOf []string
		var b strings.Builder
		fmt.Fprintf(&b, "t%d: ", trial)
		for v := 0; v < nvars; v++ {
			if v > 0 {
				b.WriteString(" ^ ")
			}
			rel := rels[rng.Intn(len(rels))]
			name := fmt.Sprintf("v%d", v)
			vars = append(vars, name)
			relOf = append(relOf, rel)
			fmt.Fprintf(&b, "%s(%s)", rel, name)
		}
		npreds := 1 + rng.Intn(3)
		for k := 0; k < npreds; k++ {
			i, j := rng.Intn(nvars), rng.Intn(nvars)
			ai := attrs[relOf[i]][rng.Intn(len(attrs[relOf[i]]))]
			switch rng.Intn(3) {
			case 0:
				fmt.Fprintf(&b, " ^ %s.%s = %q", vars[i], ai, "const value")
			case 1:
				aj := attrs[relOf[j]][rng.Intn(len(attrs[relOf[j]]))]
				fmt.Fprintf(&b, " ^ %s.%s = %s.%s", vars[i], ai, vars[j], aj)
			case 2:
				fmt.Fprintf(&b, " ^ jaccard05(%s.%s, %s.%s)", vars[i], ai,
					vars[j], attrs[relOf[j]][rng.Intn(len(attrs[relOf[j]]))])
			}
		}
		// Head: id pred over two same-relation vars if possible, else ML.
		hi, hj := -1, -1
		for i := 0; i < nvars && hi < 0; i++ {
			for j := i + 1; j < nvars; j++ {
				if relOf[i] == relOf[j] {
					hi, hj = i, j
					break
				}
			}
		}
		if hi >= 0 {
			fmt.Fprintf(&b, " -> %s.id = %s.id", vars[hi], vars[hj])
		} else {
			fmt.Fprintf(&b, " -> jaccard05(%s.%s, %s.%s)", vars[0], attrs[relOf[0]][1],
				vars[1], attrs[relOf[1]][1])
		}
		text := b.String()
		parsed, err := rule.Parse(text)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, text, err)
		}
		if err := parsed[0].Resolve(db); err != nil {
			// Random type combinations may be incompatible; that is a
			// legitimate resolution error, not a round-trip failure.
			continue
		}
		printed := parsed[0].String()
		again, err := rule.Parse(printed)
		if err != nil {
			t.Fatalf("trial %d: re-parse %q: %v", trial, printed, err)
		}
		if err := again[0].Resolve(db); err != nil {
			t.Fatalf("trial %d: re-resolve %q: %v", trial, printed, err)
		}
		if again[0].String() != printed {
			t.Fatalf("trial %d: print/parse not a fixpoint:\n%s\n%s", trial, printed, again[0].String())
		}
	}
}
