package rule

import "sort"

// IsAcyclic tests the hypergraph acyclicity of a resolved rule's
// precondition (Theorem 3 of the paper): attributes — more precisely, the
// distinct-variable classes — are the vertices, and each tuple variable is
// a hyperedge over the classes it touches. The test is the classical GYO
// reduction: repeatedly remove isolated vertices (appearing in a single
// hyperedge) and hyperedges contained in other hyperedges; the hypergraph
// is acyclic iff everything reduces away.
func IsAcyclic(r *Rule) (bool, error) {
	dvs, err := DistinctVars(r)
	if err != nil {
		return false, err
	}
	// For acyclicity — unlike for hypercube dimensioning — every
	// precondition predicate connects its operands: the two sides of a
	// body id or ML predicate are the same join vertex. Merge their
	// classes before the reduction.
	vertex := make([]int, len(dvs))
	for i := range vertex {
		vertex[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if vertex[x] != x {
			vertex[x] = find(vertex[x])
		}
		return vertex[x]
	}
	classOf := func(v, attr int, mlVec []int) int {
		for ci, dv := range dvs {
			if mlVec != nil {
				if dv.MLVec == nil || len(dv.MLVec) != len(mlVec) || dv.Members[0].Var != v {
					continue
				}
				same := true
				for k := range mlVec {
					if dv.MLVec[k] != mlVec[k] {
						same = false
						break
					}
				}
				if same {
					return ci
				}
				continue
			}
			if dv.MLVec != nil {
				continue
			}
			if dv.ID {
				if dv.Members[0].Var == v && dv.Members[0].Attr == attr {
					return ci
				}
				continue
			}
			for _, m := range dv.Members {
				if m.Var == v && m.Attr == attr {
					return ci
				}
			}
		}
		return -1
	}
	for i := range r.Body {
		p := &r.Body[i]
		var a, b int
		switch p.Kind {
		case PredID:
			a, b = classOf(p.V1, p.A1, nil), classOf(p.V2, p.A2, nil)
		case PredML:
			a, b = classOf(p.V1, 0, p.A1Vec), classOf(p.V2, 0, p.A2Vec)
		default:
			continue
		}
		if a >= 0 && b >= 0 {
			vertex[find(a)] = find(b)
		}
	}
	// edges[v] = set of merged vertices touched by tuple variable v.
	edges := make([]map[int]bool, len(r.Vars))
	for i := range edges {
		edges[i] = make(map[int]bool)
	}
	for ci, dv := range dvs {
		for _, m := range dv.Members {
			edges[m.Var][find(ci)] = true
		}
	}
	return gyoReduce(edges), nil
}

// gyoReduce runs the GYO algorithm on hyperedges given as vertex sets and
// reports whether the hypergraph is acyclic. Empty hyperedges are allowed.
func gyoReduce(edges []map[int]bool) bool {
	// Work on copies.
	es := make([]map[int]bool, 0, len(edges))
	for _, e := range edges {
		c := make(map[int]bool, len(e))
		for v := range e {
			c[v] = true
		}
		es = append(es, c)
	}
	for {
		changed := false
		// Count vertex occurrences.
		occ := make(map[int]int)
		for _, e := range es {
			for v := range e {
				occ[v]++
			}
		}
		// Rule 1: drop vertices occurring in exactly one hyperedge.
		for _, e := range es {
			for v := range e {
				if occ[v] == 1 {
					delete(e, v)
					changed = true
				}
			}
		}
		// Rule 2: drop hyperedges contained in another hyperedge.
		kept := es[:0]
		for i, e := range es {
			contained := false
			for j, f := range es {
				if i == j {
					continue
				}
				if subset(e, f) && (len(e) < len(f) || i > j) {
					contained = true
					break
				}
			}
			if contained {
				changed = true
				continue
			}
			kept = append(kept, e)
		}
		es = kept
		if len(es) <= 1 {
			return true
		}
		if !changed {
			return false
		}
	}
}

func subset(a, b map[int]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// SortByName orders rules by name for deterministic iteration.
func SortByName(rules []*Rule) {
	sort.Slice(rules, func(i, j int) bool { return rules[i].Name < rules[j].Name })
}
