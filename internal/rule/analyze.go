package rule

import (
	"fmt"
	"sort"
)

// VarAttr addresses one attribute occurrence var.attr within a rule, by
// resolved positions.
type VarAttr struct {
	Var  int
	Attr int
}

// DistinctVar is one "distinct variable" of a rule in the Hypercube sense
// (Section IV): an equivalence class of attribute occurrences x.A such
// that equality between members is implied by the rule's equality
// predicates. Id attributes and ML attribute vectors form their own
// classes (the paper's slight extension of Afrati–Ullman distinct
// variables), which is what guarantees all candidate pairs for id and ML
// predicates meet on some worker (Lemma 6).
type DistinctVar struct {
	// Members lists the attribute occurrences in the class. For ML
	// classes the Attr is the first attribute of the vector and MLVec
	// holds the full vector.
	Members []VarAttr
	// MLVec is non-nil when the class is an ML attribute vector.
	MLVec []int
	// ID is true when the class is an id-attribute class. Id classes get
	// one dimension per variable side (never merged), so every candidate
	// tuple pair for an id predicate meets on some worker even when the
	// literal id values differ — each side hashes its own dimension and
	// broadcasts over the other's.
	ID bool
	// Const is true when the class is pinned by a constant predicate.
	Const bool
}

// attrOf returns the attribute of the class belonging to tuple variable v,
// or -1 when the class has no member on v.
func (d *DistinctVar) attrOf(v int) int {
	for _, m := range d.Members {
		if m.Var == v {
			return m.Attr
		}
	}
	return -1
}

// HasVar reports whether the class has a member on tuple variable v.
func (d *DistinctVar) HasVar(v int) bool { return d.attrOf(v) >= 0 }

// AttrOf returns the attribute index of the class member on variable v and
// whether one exists.
func (d *DistinctVar) AttrOf(v int) (int, bool) {
	a := d.attrOf(v)
	return a, a >= 0
}

// DistinctVars computes the distinct variables of a resolved rule,
// deterministically ordered: equality classes first (by smallest member),
// then id classes, then ML classes.
func DistinctVars(r *Rule) ([]*DistinctVar, error) {
	if !r.Resolved() {
		return nil, fmt.Errorf("rule %s: DistinctVars requires a resolved rule", r.Name)
	}
	// Union-find over attribute occurrences mentioned in equality and
	// constant predicates.
	parent := make(map[VarAttr]VarAttr)
	var find func(VarAttr) VarAttr
	find = func(x VarAttr) VarAttr {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b VarAttr) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	constClasses := make(map[VarAttr]bool)
	for i := range r.Body {
		p := &r.Body[i]
		switch p.Kind {
		case PredEq:
			union(VarAttr{p.V1, p.A1}, VarAttr{p.V2, p.A2})
		case PredConst:
			find(VarAttr{p.V1, p.A1})
			constClasses[find(VarAttr{p.V1, p.A1})] = true
		}
	}
	groups := make(map[VarAttr][]VarAttr)
	for x := range parent {
		root := find(x)
		groups[root] = append(groups[root], x)
	}
	var out []*DistinctVar
	roots := make([]VarAttr, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Slice(roots, func(i, j int) bool {
		members := func(r VarAttr) VarAttr {
			ms := groups[r]
			min := ms[0]
			for _, m := range ms[1:] {
				if m.Var < min.Var || m.Var == min.Var && m.Attr < min.Attr {
					min = m
				}
			}
			return min
		}
		a, b := members(roots[i]), members(roots[j])
		return a.Var < b.Var || a.Var == b.Var && a.Attr < b.Attr
	})
	for _, root := range roots {
		ms := groups[root]
		sort.Slice(ms, func(i, j int) bool {
			return ms[i].Var < ms[j].Var || ms[i].Var == ms[j].Var && ms[i].Attr < ms[j].Attr
		})
		out = append(out, &DistinctVar{Members: ms, Const: constClasses[root]})
	}
	// Id classes: one per tuple variable mentioned in an id predicate
	// (body or head), keyed by the variable's resolved id attribute. Not
	// merged with equality classes: id equality can be *deduced*, so all
	// candidate pairs must meet regardless of literal attribute values.
	idVars := make(map[int]int) // var -> id attribute position
	collectID := func(p *Pred) {
		if p.Kind == PredID {
			idVars[p.V1] = p.A1
			idVars[p.V2] = p.A2
		}
	}
	for i := range r.Body {
		collectID(&r.Body[i])
	}
	collectID(&r.Head)
	idList := make([]int, 0, len(idVars))
	for v := range idVars {
		idList = append(idList, v)
	}
	sort.Ints(idList)
	for _, v := range idList {
		out = append(out, &DistinctVar{Members: []VarAttr{{Var: v, Attr: idVars[v]}}, ID: true})
	}
	// ML classes: one per ML-atom side.
	collectML := func(p *Pred) {
		if p.Kind == PredML {
			out = append(out,
				&DistinctVar{Members: []VarAttr{{Var: p.V1, Attr: p.A1Vec[0]}}, MLVec: append([]int(nil), p.A1Vec...)},
				&DistinctVar{Members: []VarAttr{{Var: p.V2, Attr: p.A2Vec[0]}}, MLVec: append([]int(nil), p.A2Vec...)})
		}
	}
	for i := range r.Body {
		collectML(&r.Body[i])
	}
	collectML(&r.Head)
	return out, nil
}

// Class describes the structural classification of an MRL per Section III:
// Deep means the precondition carries id (or validated-ML) predicates, so
// the rule can use matches deduced in earlier rounds; Collective means the
// rule spans more than two tuple variables (the MD limit).
type Class struct {
	Deep       bool
	Collective bool
	NumVars    int
	NumRels    int
}

// Classify inspects a rule's shape.
func Classify(r *Rule) Class {
	c := Class{NumVars: len(r.Vars)}
	rels := make(map[string]bool)
	for _, v := range r.Vars {
		rels[v.Rel] = true
	}
	c.NumRels = len(rels)
	for i := range r.Body {
		if r.Body[i].Kind == PredID || r.Body[i].Kind == PredML {
			c.Deep = true
		}
	}
	c.Collective = len(r.Vars) > 2
	return c
}

// MaxVars returns |Σ|: the maximum number of tuple variables over the
// rules (used in the paper's complexity bounds).
func MaxVars(rules []*Rule) int {
	max := 0
	for _, r := range rules {
		if len(r.Vars) > max {
			max = len(r.Vars)
		}
	}
	return max
}

// FilterCollectiveOnly returns the subset of rules without id predicates
// in their preconditions — the rule set DMatch_C runs (collective ER, not
// deep).
func FilterCollectiveOnly(rules []*Rule) []*Rule {
	var out []*Rule
	for _, r := range rules {
		deep := false
		for i := range r.Body {
			if r.Body[i].Kind == PredID {
				deep = true
				break
			}
		}
		if !deep {
			out = append(out, r)
		}
	}
	return out
}

// FilterDeepOnly returns the subset of rules with at most maxVars tuple
// variables — the rule set DMatch_D runs (deep ER with bounded arity; the
// paper uses 4).
func FilterDeepOnly(rules []*Rule, maxVars int) []*Rule {
	var out []*Rule
	for _, r := range rules {
		if len(r.Vars) <= maxVars {
			out = append(out, r)
		}
	}
	return out
}
