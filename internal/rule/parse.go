package rule

import (
	"fmt"
	"strings"
	"unicode"

	"dcer/internal/relation"
)

// Parse reads a set of MRLs in the rule DSL. One rule per logical
// statement; a rule may span lines until its head is complete. Syntax:
//
//	phi1: Customers(t) ^ Customers(s) ^ t.name = s.name ^
//	      t.phone = s.phone ^ t.addr = s.addr -> t.id = s.id
//	phi2: Products(p) ^ Products(q) ^ p.pname = q.pname ^
//	      M1(p.desc, q.desc) -> p.id = q.id
//
// Predicates are separated by '^' (or '&&' or ','). `.id` denotes the
// designated id attribute and makes the predicate an id predicate. ML
// predicates are Model(t.attr, s.attr) or Model(t[a,b], s[a,b]). Constants
// are double-quoted strings or bare numbers. '#' starts a comment.
//
// Parse only builds the AST; call Rule.Resolve (or ParseResolved) to bind
// rules to a database schema.
func Parse(input string) ([]*Rule, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var rules []*Rule
	for !p.atEOF() {
		p.skipNewlines()
		if p.atEOF() {
			break
		}
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// MustParse is Parse that panics on error; for tests and fixtures.
func MustParse(input string) []*Rule {
	rs, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return rs
}

// ParseResolved parses rules and resolves each against db.
func ParseResolved(input string, db *relation.Database) ([]*Rule, error) {
	rules, err := Parse(input)
	if err != nil {
		return nil, err
	}
	for _, r := range rules {
		if err := r.Resolve(db); err != nil {
			return nil, err
		}
	}
	return rules, nil
}

type tokKind uint8

const (
	tokIdent tokKind = iota
	tokString
	tokNumber
	tokPunct // one of ( ) [ ] , . ^ : = ->
	tokNewline
	tokEOF
)

type token struct {
	kind tokKind
	text string
	line int
}

func lex(input string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == '#': // comment to end of line
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '\n':
			toks = append(toks, token{tokNewline, "\n", line})
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < n && input[j] != '"' {
				if input[j] == '\\' && j+1 < n {
					j++
				}
				sb.WriteByte(input[j])
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("rule: line %d: unterminated string", line)
			}
			toks = append(toks, token{tokString, sb.String(), line})
			i = j + 1
		case c == '-' && i+1 < n && input[i+1] == '>':
			toks = append(toks, token{tokPunct, "->", line})
			i += 2
		case c == '&' && i+1 < n && input[i+1] == '&':
			toks = append(toks, token{tokPunct, "^", line})
			i += 2
		case strings.ContainsRune("()[],.^:=", rune(c)):
			toks = append(toks, token{tokPunct, string(c), line})
			i++
		case c == '-' || c >= '0' && c <= '9':
			j := i
			if input[j] == '-' {
				j++
			}
			for j < n && (input[j] >= '0' && input[j] <= '9' || input[j] == '.') {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], line})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("rule: line %d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) skipNewlines() {
	for p.cur().kind == tokNewline {
		p.pos++
	}
}

// peekNonNewline returns the next non-newline token without consuming.
func (p *parser) peekNonNewline() token {
	j := p.pos
	for p.toks[j].kind == tokNewline {
		j++
	}
	return p.toks[j]
}

func (p *parser) expectPunct(s string) error {
	p.skipNewlines()
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return fmt.Errorf("rule: line %d: expected %q, got %q", t.line, s, t.text)
	}
	return nil
}

func (p *parser) parseRule() (*Rule, error) {
	r := &Rule{}
	// Optional "name :" prefix.
	if p.cur().kind == tokIdent && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == ":" {
		r.Name = p.next().text
		p.next() // ":"
	}
	// Preconditions.
	for {
		p.skipNewlines()
		if _, err := p.parseAtom(r, false); err != nil {
			return nil, err
		}
		sep := p.peekNonNewline()
		if sep.kind == tokPunct && (sep.text == "^" || sep.text == ",") {
			p.skipNewlines()
			p.next()
			continue
		}
		if sep.kind == tokPunct && sep.text == "->" {
			p.skipNewlines()
			p.next()
			break
		}
		return nil, fmt.Errorf("rule: line %d: expected '^' or '->', got %q", sep.line, sep.text)
	}
	// Head.
	p.skipNewlines()
	if _, err := p.parseAtom(r, true); err != nil {
		return nil, err
	}
	// A rule ends at a newline or EOF after the head.
	t := p.cur()
	if t.kind != tokNewline && t.kind != tokEOF {
		return nil, fmt.Errorf("rule: line %d: trailing %q after rule head", t.line, t.text)
	}
	if len(r.Vars) == 0 {
		return nil, fmt.Errorf("rule %s: no relation atoms", r.Name)
	}
	return r, nil
}

// parseAtom parses one atom: a relation atom R(t), an equality/constant
// predicate, or an ML predicate. If head is true, it is stored in
// Rule.Head, otherwise appended to Vars/Body.
func (p *parser) parseAtom(r *Rule, head bool) (PredKind, error) {
	t := p.next()
	if t.kind != tokIdent {
		return 0, fmt.Errorf("rule: line %d: expected identifier, got %q", t.line, t.text)
	}
	nx := p.cur()
	if nx.kind == tokPunct && nx.text == "(" {
		// Relation atom or ML atom; disambiguate by the shape inside.
		return p.parseParenAtom(r, t.text, head)
	}
	if nx.kind == tokPunct && nx.text == "." {
		// var.attr = <rhs>
		p.next()
		attr := p.next()
		if attr.kind != tokIdent {
			return 0, fmt.Errorf("rule: line %d: expected attribute after '.', got %q", attr.line, attr.text)
		}
		if err := p.expectPunct("="); err != nil {
			return 0, err
		}
		p.skipNewlines()
		rhs := p.next()
		var pred Pred
		switch {
		case rhs.kind == tokString:
			pred = Pred{Kind: PredConst, V1Name: t.text, A1Name: attr.text, ConstText: rhs.text}
		case rhs.kind == tokNumber:
			pred = Pred{Kind: PredConst, V1Name: t.text, A1Name: attr.text, ConstText: rhs.text}
		case rhs.kind == tokIdent:
			if err := p.expectPunct("."); err != nil {
				return 0, err
			}
			attr2 := p.next()
			if attr2.kind != tokIdent {
				return 0, fmt.Errorf("rule: line %d: expected attribute after '.', got %q", attr2.line, attr2.text)
			}
			k := PredEq
			if attr.text == "id" && attr2.text == "id" {
				k = PredID
			}
			pred = Pred{Kind: k, V1Name: t.text, A1Name: attr.text, V2Name: rhs.text, A2Name: attr2.text}
		default:
			return 0, fmt.Errorf("rule: line %d: bad right-hand side %q", rhs.line, rhs.text)
		}
		if head {
			r.Head = pred
		} else {
			r.Body = append(r.Body, pred)
		}
		return pred.Kind, nil
	}
	return 0, fmt.Errorf("rule: line %d: unexpected token %q after %q", nx.line, nx.text, t.text)
}

func (p *parser) parseParenAtom(r *Rule, name string, head bool) (PredKind, error) {
	if err := p.expectPunct("("); err != nil {
		return 0, err
	}
	first := p.next()
	if first.kind != tokIdent {
		return 0, fmt.Errorf("rule: line %d: expected identifier inside %s(...)", first.line, name)
	}
	nx := p.cur()
	if nx.kind == tokPunct && nx.text == ")" {
		// Relation atom R(t).
		p.next()
		if head {
			return 0, fmt.Errorf("rule: line %d: relation atom %s(%s) cannot be a head", first.line, name, first.text)
		}
		r.Vars = append(r.Vars, Var{Name: first.text, Rel: name})
		return PredEq, nil
	}
	// ML atom: Model(v.attr, w.attr) or Model(v[a,b], w[a,b]).
	pred := Pred{Kind: PredML, Model: name, V1Name: first.text}
	var err error
	pred.A1VecNames, err = p.parseMLAttrs()
	if err != nil {
		return 0, err
	}
	if err := p.expectPunct(","); err != nil {
		return 0, err
	}
	p.skipNewlines()
	second := p.next()
	if second.kind != tokIdent {
		return 0, fmt.Errorf("rule: line %d: expected identifier in ML atom, got %q", second.line, second.text)
	}
	pred.V2Name = second.text
	pred.A2VecNames, err = p.parseMLAttrs()
	if err != nil {
		return 0, err
	}
	if err := p.expectPunct(")"); err != nil {
		return 0, err
	}
	if head {
		r.Head = pred
	} else {
		r.Body = append(r.Body, pred)
	}
	return PredML, nil
}

// parseMLAttrs parses ".attr" or "[a,b,c]" after an ML-atom variable, or
// nothing (whole-tuple semantics represented by an empty vector is not
// supported; at least one attribute is required).
func (p *parser) parseMLAttrs() ([]string, error) {
	t := p.cur()
	if t.kind == tokPunct && t.text == "." {
		p.next()
		a := p.next()
		if a.kind != tokIdent {
			return nil, fmt.Errorf("rule: line %d: expected attribute after '.', got %q", a.line, a.text)
		}
		return []string{a.text}, nil
	}
	if t.kind == tokPunct && t.text == "[" {
		p.next()
		var attrs []string
		for {
			a := p.next()
			if a.kind != tokIdent {
				return nil, fmt.Errorf("rule: line %d: expected attribute in [...], got %q", a.line, a.text)
			}
			attrs = append(attrs, a.text)
			sep := p.next()
			if sep.kind == tokPunct && sep.text == "," {
				continue
			}
			if sep.kind == tokPunct && sep.text == "]" {
				return attrs, nil
			}
			return nil, fmt.Errorf("rule: line %d: expected ',' or ']', got %q", sep.line, sep.text)
		}
	}
	return nil, fmt.Errorf("rule: line %d: expected '.attr' or '[attrs]' in ML atom, got %q", t.line, t.text)
}
