package benchdiff

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// writeReport drops a minimal BENCH_*.json into dir and loads it back.
func writeReport(t *testing.T, dir, name, body string) *Report {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

const oldJSON = `{
  "goos": "linux", "goarch": "amd64", "gomaxprocs": 1, "scale": 2,
  "benchmarks": [
    {"name": "Deduce/sequential", "ns_per_op": 100000000, "bytes_per_op": 4096, "allocs_per_op": 10},
    {"name": "Deduce/parallel", "ns_per_op": 50000000, "bytes_per_op": 2048, "allocs_per_op": 5},
    {"name": "Partition/w8", "ns_per_op": 1000000, "bytes_per_op": 512, "allocs_per_op": 2}
  ],
  "memory": [
    {"name": "columnar", "bytes_per_tuple": 64.5, "peak_rss_bytes": 104857600}
  ]
}`

const newJSON = `{
  "goos": "linux", "goarch": "amd64", "gomaxprocs": 1, "numcpu": 1, "scale": 2,
  "benchmarks": [
    {"name": "Deduce/sequential", "ns_per_op": 130000000, "bytes_per_op": 4096, "allocs_per_op": 10},
    {"name": "Deduce/parallel", "ns_per_op": 48000000, "bytes_per_op": 2048, "allocs_per_op": 5},
    {"name": "Partition/w8", "ns_per_op": 3000000, "bytes_per_op": 512, "allocs_per_op": 2},
    {"name": "IncDeduce/batch", "ns_per_op": 7000000, "bytes_per_op": 128, "allocs_per_op": 1}
  ],
  "memory": [
    {"name": "columnar", "bytes_per_tuple": 64.5, "peak_rss_bytes": 110100480}
  ]
}`

func TestLoadAndLabel(t *testing.T) {
	dir := t.TempDir()
	r := writeReport(t, dir, "BENCH_6.json", oldJSON)
	if r.Label() != "BENCH_6" {
		t.Errorf("Label = %q, want BENCH_6", r.Label())
	}
	if r.GOMAXPROCS != 1 || len(r.Benchmarks) != 3 || len(r.Memory) != 1 {
		t.Errorf("parsed report wrong: %+v", r)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("Load of a missing file must fail")
	}
}

func TestWriteTables(t *testing.T) {
	dir := t.TempDir()
	oldR := writeReport(t, dir, "BENCH_6.json", oldJSON)
	newR := writeReport(t, dir, "BENCH_7.json", newJSON)

	var sb strings.Builder
	WriteTables(&sb, []*Report{oldR, newR})
	out := sb.String()

	for _, want := range []string{
		"ns/op", "B/op", "allocs/op", "peak RSS",
		"BENCH_6", "BENCH_7",
		"Deduce/sequential", "100.0ms", "130.0ms", "+30.0%",
		"Deduce/parallel", "-4.0%",
		"IncDeduce/batch", // present only in the new report → "-" in the old column
		"columnar", "100.0MiB",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tables missing %q:\n%s", want, out)
		}
	}
	// The arm absent from the old report renders a "-" cell there.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "IncDeduce/batch") && !strings.Contains(line, "-") {
			t.Errorf("missing-arm cell not dashed: %q", line)
		}
	}
}

func TestHeaderWarnings(t *testing.T) {
	dir := t.TempDir()
	oldR := writeReport(t, dir, "BENCH_6.json", oldJSON)
	newR := writeReport(t, dir, "BENCH_7.json", newJSON)

	// Same gomaxprocs/goos/goarch/scale; numcpu is recorded on only one
	// side, which must NOT warn (older reports predate the field).
	if w := HeaderWarnings([]*Report{oldR, newR}); len(w) != 0 {
		t.Errorf("unexpected warnings: %v", w)
	}

	wide := writeReport(t, dir, "BENCH_8.json",
		`{"goos":"linux","goarch":"arm64","gomaxprocs":8,"numcpu":8,"scale":4,"benchmarks":[]}`)
	warns := HeaderWarnings([]*Report{newR, wide})
	joined := strings.Join(warns, "\n")
	for _, want := range []string{"gomaxprocs", "numcpu", "goos/goarch", "scale"} {
		if !strings.Contains(joined, want) {
			t.Errorf("warnings missing %q mismatch: %v", want, warns)
		}
	}
}

func TestGate(t *testing.T) {
	dir := t.TempDir()
	oldR := writeReport(t, dir, "BENCH_6.json", oldJSON)
	newR := writeReport(t, dir, "BENCH_7.json", newJSON)
	reports := []*Report{oldR, newR}
	tier := regexp.MustCompile(`^(Deduce|IncDeduce)/`)

	// Deduce/sequential regressed +30%, Deduce/parallel improved;
	// Partition is outside the tier; IncDeduce/batch has no old side.
	regs := Gate(reports, tier, 10)
	if len(regs) != 1 || regs[0].Arm != "Deduce/sequential" {
		t.Fatalf("Gate(10%%) = %v, want just Deduce/sequential", regs)
	}
	if regs[0].DeltaPct < 29.9 || regs[0].DeltaPct > 30.1 {
		t.Errorf("delta = %.2f%%, want ~30%%", regs[0].DeltaPct)
	}
	if s := regs[0].String(); !strings.Contains(s, "Deduce/sequential") || !strings.Contains(s, "+30.0%") {
		t.Errorf("Regression.String() = %q", s)
	}

	// A generous threshold passes the same pair.
	if regs := Gate(reports, tier, 50); len(regs) != 0 {
		t.Errorf("Gate(50%%) = %v, want none", regs)
	}

	// An artificially lowered threshold fails even the improved arm's
	// sibling — this is the nonzero-exit path cmd/benchdiff takes.
	if regs := Gate(reports, tier, 0); len(regs) != 1 {
		t.Errorf("Gate(0%%) = %v, want the regressed arm", regs)
	}
	all := regexp.MustCompile(`.`)
	regs = Gate(reports, all, -100)
	if len(regs) != 3 {
		t.Fatalf("Gate(all, -100%%) = %v, want every comparable arm", regs)
	}
	// Sorted worst-first.
	for i := 1; i < len(regs); i++ {
		if regs[i-1].DeltaPct < regs[i].DeltaPct {
			t.Errorf("regressions not sorted by delta: %v", regs)
		}
	}

	if regs := Gate(reports[:1], tier, 0); regs != nil {
		t.Errorf("Gate with one report = %v, want nil", regs)
	}
}

// TestGateRepoTrajectory runs the gate over the repo's real BENCH
// trajectory when the files are present — the same invocation ci.sh
// makes, proving the lowered-threshold exit path against real data.
func TestGateRepoTrajectory(t *testing.T) {
	var reports []*Report
	for _, name := range []string{"BENCH_6.json", "BENCH_7.json"} {
		path := filepath.Join("..", "..", name)
		if _, err := os.Stat(path); err != nil {
			t.Skipf("repo trajectory file %s not present", name)
		}
		r, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, r)
	}
	var sb strings.Builder
	WriteTables(&sb, reports)
	if !strings.Contains(sb.String(), "Deduce/sequential") {
		t.Errorf("repo trajectory tables missing Deduce/sequential:\n%s", sb.String())
	}
	// BENCH_6 → BENCH_7 improved Deduce; with threshold -100 every
	// comparable arm "regresses", so the gate must report a nonempty set.
	if regs := Gate(reports, regexp.MustCompile(`^Deduce/`), -100); len(regs) == 0 {
		t.Error("artificially lowered threshold produced no regressions on real reports")
	}
}
