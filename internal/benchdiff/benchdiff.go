// Package benchdiff reads the repo's BENCH_*.json trajectory and turns
// it into something a human — and CI — can act on: per-arm trend tables
// across any number of reports (ns/op, B/op, allocs/op, and peak RSS for
// the storage arms), header-mismatch warnings (comparing a gomaxprocs=1
// report against an 8-core one is noise, not signal), and a regression
// gate that fails when a named tier of arms slows down beyond a
// threshold between the first and last report.
package benchdiff

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Arm is one benchmark row of a report.
type Arm struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// MemArm is one storage-arm row of a report.
type MemArm struct {
	Name          string  `json:"name"`
	BytesPerTuple float64 `json:"bytes_per_tuple"`
	PeakRSSBytes  int64   `json:"peak_rss_bytes"`
}

// Report is the subset of a BENCH_*.json document benchdiff reads.
type Report struct {
	Path string `json:"-"` // where it was loaded from

	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"numcpu"` // 0 in reports older than BENCH_8
	Scale      float64 `json:"scale"`
	Repeat     int     `json:"repeat"`
	Tuples     int     `json:"tuples"`

	Benchmarks []Arm    `json:"benchmarks"`
	Memory     []MemArm `json:"memory"`
}

// Load reads one report from disk.
func Load(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := &Report{Path: path}
	if err := json.Unmarshal(b, r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Label is the short column header of a report: the file base name
// without extension (BENCH_7.json → BENCH_7).
func (r *Report) Label() string {
	base := filepath.Base(r.Path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

func (r *Report) arm(name string) *Arm {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			return &r.Benchmarks[i]
		}
	}
	return nil
}

// HeaderWarnings compares the environment headers of consecutive reports
// and returns one human-readable warning per mismatch that would make
// their timings incomparable: a different scheduler width (gomaxprocs),
// core count, OS/arch, or workload scale.
func HeaderWarnings(reports []*Report) []string {
	var out []string
	warn := func(a, b *Report, field string, av, bv any) {
		out = append(out, fmt.Sprintf("%s vs %s: %s differs (%v vs %v) — timings are not comparable",
			a.Label(), b.Label(), field, av, bv))
	}
	for i := 1; i < len(reports); i++ {
		a, b := reports[i-1], reports[i]
		if a.GOMAXPROCS != b.GOMAXPROCS {
			warn(a, b, "gomaxprocs", a.GOMAXPROCS, b.GOMAXPROCS)
		}
		// NumCPU is absent (0) in reports predating BENCH_8; only warn
		// when both sides recorded it.
		if a.NumCPU != 0 && b.NumCPU != 0 && a.NumCPU != b.NumCPU {
			warn(a, b, "numcpu", a.NumCPU, b.NumCPU)
		}
		if a.GOOS != b.GOOS || a.GOARCH != b.GOARCH {
			warn(a, b, "goos/goarch", a.GOOS+"/"+a.GOARCH, b.GOOS+"/"+b.GOARCH)
		}
		if a.Scale != b.Scale {
			warn(a, b, "scale", a.Scale, b.Scale)
		}
	}
	return out
}

// armNames returns the union of arm names across the reports, in the
// order of first appearance (the oldest report's ordering dominates).
func armNames(reports []*Report) []string {
	seen := map[string]bool{}
	var names []string
	for _, r := range reports {
		for _, a := range r.Benchmarks {
			if !seen[a.Name] {
				seen[a.Name] = true
				names = append(names, a.Name)
			}
		}
	}
	return names
}

func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// pctDelta returns (new-old)/old in percent; 0 when old is 0.
func pctDelta(old, new int64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * float64(new-old) / float64(old)
}

// writeTable renders one metric's trajectory: a row per arm, a column
// per report, and a trailing delta column (first → last).
func writeTable(w io.Writer, title string, reports []*Report, value func(*Arm) (int64, bool), format func(int64) string) {
	names := armNames(reports)
	rows := 0
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-34s", title)
	for _, r := range reports {
		fmt.Fprintf(&sb, " %12s", r.Label())
	}
	fmt.Fprintf(&sb, " %9s\n", "Δ%")
	for _, name := range names {
		var cells []string
		var first, last int64
		haveFirst, haveLast := false, false
		for _, r := range reports {
			a := r.arm(name)
			if a == nil {
				cells = append(cells, "-")
				continue
			}
			v, ok := value(a)
			if !ok {
				cells = append(cells, "-")
				continue
			}
			if !haveFirst {
				first, haveFirst = v, true
			}
			last, haveLast = v, true
			cells = append(cells, format(v))
		}
		if !haveLast {
			continue
		}
		rows++
		fmt.Fprintf(&sb, "%-34s", name)
		for _, c := range cells {
			fmt.Fprintf(&sb, " %12s", c)
		}
		if haveFirst && first != last {
			fmt.Fprintf(&sb, " %+8.1f%%", pctDelta(first, last))
		}
		sb.WriteByte('\n')
	}
	if rows > 0 {
		io.WriteString(w, sb.String())
		io.WriteString(w, "\n")
	}
}

// WriteTables prints the per-arm trajectory tables (ns/op, B/op,
// allocs/op, and peak RSS where the reports carry storage arms) for the
// given reports, oldest first.
func WriteTables(w io.Writer, reports []*Report) {
	writeTable(w, "ns/op", reports, func(a *Arm) (int64, bool) { return a.NsPerOp, a.NsPerOp != 0 }, fmtNs)
	writeTable(w, "B/op", reports, func(a *Arm) (int64, bool) { return a.BytesPerOp, a.BytesPerOp != 0 }, fmtBytes)
	writeTable(w, "allocs/op", reports,
		func(a *Arm) (int64, bool) { return a.AllocsPerOp, a.AllocsPerOp != 0 },
		func(v int64) string { return fmt.Sprintf("%d", v) })

	// Peak RSS rides the memory rows, which have their own name space.
	type memRow struct{ vals []string }
	names := map[string]bool{}
	var order []string
	for _, r := range reports {
		for _, m := range r.Memory {
			if !names[m.Name] {
				names[m.Name] = true
				order = append(order, m.Name)
			}
		}
	}
	if len(order) == 0 {
		return
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-34s", "peak RSS")
	for _, r := range reports {
		fmt.Fprintf(&sb, " %12s", r.Label())
	}
	sb.WriteByte('\n')
	rows := 0
	for _, name := range order {
		any := false
		var cells []string
		for _, r := range reports {
			cell := "-"
			for _, m := range r.Memory {
				if m.Name == name && m.PeakRSSBytes > 0 {
					cell = fmtBytes(m.PeakRSSBytes)
					any = true
				}
			}
			cells = append(cells, cell)
		}
		if !any {
			continue
		}
		rows++
		fmt.Fprintf(&sb, "%-34s", name)
		for _, c := range cells {
			fmt.Fprintf(&sb, " %12s", c)
		}
		sb.WriteByte('\n')
	}
	if rows > 0 {
		io.WriteString(w, sb.String())
		io.WriteString(w, "\n")
	}
}

// Regression is one gated arm that slowed down beyond the threshold.
type Regression struct {
	Arm      string
	OldNs    int64
	NewNs    int64
	DeltaPct float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s -> %s (%+.1f%%)", r.Arm, fmtNs(r.OldNs), fmtNs(r.NewNs), r.DeltaPct)
}

// Gate compares the first and last report's ns/op for every arm matching
// tier and returns the arms that regressed by more than thresholdPct.
// Arms present in only one of the two reports are skipped — the gate
// judges trajectories, not coverage.
func Gate(reports []*Report, tier *regexp.Regexp, thresholdPct float64) []Regression {
	if len(reports) < 2 {
		return nil
	}
	oldR, newR := reports[0], reports[len(reports)-1]
	var out []Regression
	for _, name := range armNames([]*Report{oldR}) {
		if !tier.MatchString(name) {
			continue
		}
		oa, na := oldR.arm(name), newR.arm(name)
		if oa == nil || na == nil || oa.NsPerOp == 0 || na.NsPerOp == 0 {
			continue
		}
		if d := pctDelta(oa.NsPerOp, na.NsPerOp); d > thresholdPct {
			out = append(out, Regression{Arm: name, OldNs: oa.NsPerOp, NewNs: na.NsPerOp, DeltaPct: d})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DeltaPct > out[j].DeltaPct })
	return out
}
