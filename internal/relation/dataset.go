package relation

import (
	"fmt"
)

// TID is a global tuple identifier, unique across an entire Dataset.
// The chase engine keys its id-equivalence relation on TIDs.
type TID int32

// Tuple is one row of a relation. It is a fixed-size handle into the
// owning relation's columnar storage: the attribute payloads live in
// per-attribute word columns (interned Syms for strings, bit-packed
// numerics), addressed by Row. GID is assigned by the owning Dataset
// when the tuple is appended and is unique dataset-wide. Tuples are
// slab-allocated by the dataset, so taking *Tuple pointers stays cheap
// and stable while the boxed per-tuple Values slice of the seed layout
// is gone entirely.
type Tuple struct {
	GID TID
	Rel int   // index of the relation within the dataset
	Row int32 // row within the owning relation's columns
	rel *Relation
}

// Arity returns the tuple's attribute count.
func (t *Tuple) Arity() int { return len(t.rel.cols) }

// Word returns the packed storage word of attribute i: the Sym for
// string attributes, PackNum(payload) for numerics. Words of the same
// attribute (or any equality-joined attribute of the same type) compare
// equal iff the boxed values do, except NaN (see PackNum).
func (t *Tuple) Word(i int) uint64 { return t.rel.cols[i][t.Row] }

// Col returns the packed storage column of attribute i of the tuple's
// owning root relation, indexed by Row. Fragments share root tuples, so
// every tuple of one (fragment or root) relation reaches the same slice —
// the chase's compiled predicate plans hoist it once per candidate batch
// and run their filter loops directly over the words.
func (t *Tuple) Col(i int) []uint64 { return t.rel.cols[i] }

// Val unboxes attribute i into a Value. String payloads are the interned
// arena-backed strings, so two equal Vals from the same dataset compare
// by pointer before falling back to byte comparison.
func (t *Tuple) Val(i int) Value {
	w := t.rel.cols[i][t.Row]
	switch t.rel.Schema.Attrs[i].Type {
	case TypeString:
		return Value{Kind: TypeString, Str: t.rel.syms.Str(Sym(w))}
	case TypeInt:
		return Value{Kind: TypeInt, Num: unpackNum(w)}
	default:
		return Value{Kind: TypeFloat, Num: unpackNum(w)}
	}
}

// Values materializes the full attribute vector. Compatibility shim for
// cold paths (CSV output, debug rendering, tests); it allocates, so hot
// paths use Val/Word instead.
func (t *Tuple) Values() []Value {
	out := make([]Value, t.Arity())
	for i := range out {
		out[i] = t.Val(i)
	}
	return out
}

// ID returns the tuple's designated id-attribute value under schema s.
func (t *Tuple) ID(s *Schema) Value { return t.Val(s.IDAttr) }

// IDWord returns the packed word of the tuple's designated id attribute.
func (t *Tuple) IDWord() uint64 { return t.Word(t.rel.Schema.IDAttr) }

// Relation is an instance D_i of a relation schema. Fragments share the
// parent's tuples (and therefore its columns, reached through each
// tuple's owner); only a root relation owns cols.
type Relation struct {
	Schema *Schema
	Tuples []*Tuple

	syms *SymTab
	cols [][]uint64 // one packed column per attribute; row = Tuple.Row
}

// Syms returns the symbol table backing this relation's string columns.
func (r *Relation) Syms() *SymTab { return r.syms }

// tupleSlab is how many Tuple handles one slab chunk holds (96KiB per
// chunk at 24 bytes per handle).
const tupleSlab = 4096

// fragSlotsMaxWaste gates the fragment lookup layout: a fragment whose
// id space is at most this many times its tuple count gets a flat
// []int32 slot array (O(1) array lookup, 4 bytes per id-space slot);
// sparser fragments fall back to a map. 16 is where the array's memory
// crosses a map's ~50 bytes/entry.
const fragSlotsMaxWaste = 16

// Dataset is an instance D = (D_1, ..., D_m) of a database schema.
type Dataset struct {
	DB        *Database
	Relations []*Relation

	// syms interns every string payload in the dataset. Fragments share
	// the parent's table so Syms (and packed words) stay globally
	// meaningful.
	syms *SymTab

	// tuples lists all tuples in insertion order. For a root dataset the
	// position of a tuple equals its GID; fragments share tuples with
	// their parent and use slots (dense) or byGID (sparse) for lookup.
	tuples []*Tuple
	byGID  map[TID]*Tuple
	slots  []int32 // GID -> index into tuples, -1 when absent

	// idSpace is the GID space fragments inherit (the parent's tuple
	// count at fragmentation time); 0 for root datasets.
	idSpace int

	slab []Tuple // current tuple slab chunk; full chunks are only
	// reachable through the *Tuple pointers handed out
}

// NewDataset creates an empty dataset over db.
func NewDataset(db *Database) *Dataset {
	d := &Dataset{
		DB:        db,
		Relations: make([]*Relation, len(db.Schemas)),
		syms:      NewSymTab(),
	}
	for i, s := range db.Schemas {
		d.Relations[i] = &Relation{Schema: s, syms: d.syms, cols: make([][]uint64, s.Arity())}
	}
	return d
}

// Syms returns the dataset's symbol table.
func (d *Dataset) Syms() *SymTab { return d.syms }

// Reserve pre-sizes the named relation's columns and tuple list for n
// additional rows, so bulk loaders avoid growth copies.
func (d *Dataset) Reserve(rel string, n int) {
	ri := d.DB.SchemaIndex(rel)
	if ri < 0 || n <= 0 {
		return
	}
	r := d.Relations[ri]
	for i := range r.cols {
		if free := cap(r.cols[i]) - len(r.cols[i]); free < n {
			grown := make([]uint64, len(r.cols[i]), len(r.cols[i])+n)
			copy(grown, r.cols[i])
			r.cols[i] = grown
		}
	}
	if free := cap(r.Tuples) - len(r.Tuples); free < n {
		grown := make([]*Tuple, len(r.Tuples), len(r.Tuples)+n)
		copy(grown, r.Tuples)
		r.Tuples = grown
	}
}

// Append adds a tuple with the given values to the named relation and
// returns it. The values must match the schema arity and every value's
// Kind must match its attribute type exactly — in particular int and
// float do not coerce, so an I(…) value cannot fill a float attribute
// (nor F(…) an int one); the error names the attribute, the offending
// value, and the constructor that would fix it. The values slice is not
// retained: payloads are packed into the relation's columns.
func (d *Dataset) Append(rel string, values ...Value) (*Tuple, error) {
	ri := d.DB.SchemaIndex(rel)
	if ri < 0 {
		return nil, fmt.Errorf("relation: no relation %q", rel)
	}
	s := d.DB.Schemas[ri]
	if len(values) != s.Arity() {
		return nil, fmt.Errorf("relation: %s expects %d values, got %d", rel, s.Arity(), len(values))
	}
	for i, v := range values {
		if v.Kind == s.Attrs[i].Type {
			continue
		}
		want, got := s.Attrs[i].Type, v.Kind
		if (want == TypeInt && got == TypeFloat) || (want == TypeFloat && got == TypeInt) {
			ctor := "I(…)"
			if want == TypeFloat {
				ctor = "F(…)"
			}
			return nil, fmt.Errorf("relation: %s.%s expects %s, got %s value %s (numeric kinds do not coerce; construct the value with %s)",
				rel, s.Attrs[i].Name, want, got, v, ctor)
		}
		return nil, fmt.Errorf("relation: %s.%s expects %s, got %s value %q",
			rel, s.Attrs[i].Name, want, got, v.String())
	}
	return d.appendPacked(ri, values), nil
}

// AppendUnchecked is the trusted bulk-load fast path: it skips the name
// resolution and per-value Kind checks of Append. ri is the relation's
// schema index (resolve once with d.DB.SchemaIndex) and the caller
// guarantees len(values) == arity with kinds matching the schema —
// values are packed by the schema's attribute types, so a kind mismatch
// silently stores the wrong payload rather than erroring. Used by the
// synthetic generators and CSV ingest, where the values were just
// constructed from the schema itself.
func (d *Dataset) AppendUnchecked(ri int, values ...Value) *Tuple {
	return d.appendPacked(ri, values)
}

// appendPacked packs values into relation ri's columns (by schema
// attribute type) and hands out a slab-allocated tuple handle.
func (d *Dataset) appendPacked(ri int, values []Value) *Tuple {
	r := d.Relations[ri]
	row := int32(len(r.Tuples))
	for i, v := range values {
		var w uint64
		if r.Schema.Attrs[i].Type == TypeString {
			w = uint64(d.syms.Intern(v.Str))
		} else {
			w = PackNum(v.Num)
		}
		r.cols[i] = append(r.cols[i], w)
	}
	if len(d.slab) == cap(d.slab) {
		d.slab = make([]Tuple, 0, tupleSlab)
	}
	d.slab = append(d.slab, Tuple{GID: TID(len(d.tuples)), Rel: ri, Row: row, rel: r})
	t := &d.slab[len(d.slab)-1]
	d.tuples = append(d.tuples, t)
	r.Tuples = append(r.Tuples, t)
	return t
}

// MustAppend is Append that panics on error; for tests and fixtures.
func (d *Dataset) MustAppend(rel string, values ...Value) *Tuple {
	t, err := d.Append(rel, values...)
	if err != nil {
		panic(err)
	}
	return t
}

// Tuple returns the tuple with the given global id, or nil. For fragments
// only tuples hosted by the fragment are found.
func (d *Dataset) Tuple(id TID) *Tuple {
	if d.slots != nil {
		if id < 0 || int(id) >= len(d.slots) {
			return nil
		}
		s := d.slots[id]
		if s < 0 {
			return nil
		}
		return d.tuples[s]
	}
	if d.byGID != nil {
		return d.byGID[id]
	}
	if id < 0 || int(id) >= len(d.tuples) {
		return nil
	}
	return d.tuples[id]
}

// Has reports whether the dataset hosts the tuple with the given GID.
func (d *Dataset) Has(id TID) bool { return d.Tuple(id) != nil }

// Size returns |D|, the total number of tuples.
func (d *Dataset) Size() int { return len(d.tuples) }

// Relation returns the instance of the named relation, or nil.
func (d *Dataset) Relation(name string) *Relation {
	i := d.DB.SchemaIndex(name)
	if i < 0 {
		return nil
	}
	return d.Relations[i]
}

// SchemaOf returns the schema of the given tuple.
func (d *Dataset) SchemaOf(t *Tuple) *Schema { return d.DB.Schemas[t.Rel] }

// Tuples iterates all tuples in GID order.
func (d *Dataset) Tuples() []*Tuple { return d.tuples }

// MemBytes estimates the dataset's storage footprint: packed columns,
// tuple slabs and handle slices, the symbol arena, and the fragment
// lookup structure. Fragments do not recount the shared columns/arena.
func (d *Dataset) MemBytes() int64 {
	var n int64
	if d.idSpace == 0 { // root: owns columns, slabs, and the symbol table
		for _, r := range d.Relations {
			for _, c := range r.cols {
				n += int64(cap(c)) * 8
			}
			n += int64(cap(r.Tuples)) * 8
		}
		n += int64(len(d.tuples)) * (8 + 24) // handle pointer + slab entry
		n += d.syms.Bytes()
	} else {
		for _, r := range d.Relations {
			n += int64(cap(r.Tuples)) * 8
		}
		n += int64(cap(d.tuples)) * 8
		n += int64(cap(d.slots)) * 4
		n += int64(len(d.byGID)) * 50 // map entry estimate
	}
	return n
}

// Fragment builds a sub-dataset over the same database schema containing
// exactly the tuples whose GIDs appear in ids. The tuples are shared (not
// copied) so their GIDs remain globally meaningful: the parallel engine
// relies on this to exchange matches between fragments by GID alone.
// Dense fragments (most of the parallel partitions) index by a flat slot
// array so the per-lookup cost is an array load; sparse ones fall back
// to a map.
func (d *Dataset) Fragment(ids []TID) *Dataset {
	space := d.idSpace
	if space == 0 {
		space = len(d.tuples)
	}
	f := &Dataset{
		DB:        d.DB,
		Relations: make([]*Relation, len(d.DB.Schemas)),
		syms:      d.syms,
		idSpace:   space,
	}
	for i, s := range d.DB.Schemas {
		f.Relations[i] = &Relation{Schema: s, syms: d.syms}
	}
	dense := space <= fragSlotsMaxWaste*len(ids)
	if dense {
		f.slots = make([]int32, space)
		for i := range f.slots {
			f.slots[i] = -1
		}
	} else {
		f.byGID = make(map[TID]*Tuple, len(ids))
	}
	for _, id := range ids {
		if f.Has(id) {
			continue
		}
		t := d.Tuple(id)
		if t == nil {
			continue
		}
		if dense {
			f.slots[id] = int32(len(f.tuples))
		} else {
			f.byGID[id] = t
		}
		f.Relations[t.Rel].Tuples = append(f.Relations[t.Rel].Tuples, t)
		f.tuples = append(f.tuples, t)
	}
	return f
}
