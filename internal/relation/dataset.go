package relation

import (
	"fmt"
)

// TID is a global tuple identifier, unique across an entire Dataset.
// The chase engine keys its id-equivalence relation on TIDs.
type TID int32

// Tuple is one row of a relation. Values is aligned with the schema's
// attributes. GID is assigned by the owning Dataset when the tuple is
// appended and is unique dataset-wide.
type Tuple struct {
	GID    TID
	Rel    int // index of the relation within the dataset
	Values []Value
}

// ID returns the tuple's designated id-attribute value under schema s.
func (t *Tuple) ID(s *Schema) Value { return t.Values[s.IDAttr] }

// Relation is an instance D_i of a relation schema.
type Relation struct {
	Schema *Schema
	Tuples []*Tuple
}

// Dataset is an instance D = (D_1, ..., D_m) of a database schema.
type Dataset struct {
	DB        *Database
	Relations []*Relation

	// tuples lists all tuples in insertion order. For a root dataset the
	// position of a tuple equals its GID; fragments share tuples with
	// their parent and use byGID for lookup instead.
	tuples []*Tuple
	byGID  map[TID]*Tuple
}

// NewDataset creates an empty dataset over db.
func NewDataset(db *Database) *Dataset {
	d := &Dataset{DB: db, Relations: make([]*Relation, len(db.Schemas))}
	for i, s := range db.Schemas {
		d.Relations[i] = &Relation{Schema: s}
	}
	return d
}

// Append adds a tuple with the given values to the named relation and
// returns it. The values must match the schema arity.
func (d *Dataset) Append(rel string, values ...Value) (*Tuple, error) {
	ri := d.DB.SchemaIndex(rel)
	if ri < 0 {
		return nil, fmt.Errorf("relation: no relation %q", rel)
	}
	s := d.DB.Schemas[ri]
	if len(values) != s.Arity() {
		return nil, fmt.Errorf("relation: %s expects %d values, got %d", rel, s.Arity(), len(values))
	}
	for i, v := range values {
		if v.Kind != s.Attrs[i].Type {
			return nil, fmt.Errorf("relation: %s.%s expects %s, got %s",
				rel, s.Attrs[i].Name, s.Attrs[i].Type, v.Kind)
		}
	}
	t := &Tuple{GID: TID(len(d.tuples)), Rel: ri, Values: values}
	d.tuples = append(d.tuples, t)
	d.Relations[ri].Tuples = append(d.Relations[ri].Tuples, t)
	return t, nil
}

// MustAppend is Append that panics on error; for tests and fixtures.
func (d *Dataset) MustAppend(rel string, values ...Value) *Tuple {
	t, err := d.Append(rel, values...)
	if err != nil {
		panic(err)
	}
	return t
}

// Tuple returns the tuple with the given global id, or nil. For fragments
// only tuples hosted by the fragment are found.
func (d *Dataset) Tuple(id TID) *Tuple {
	if d.byGID != nil {
		return d.byGID[id]
	}
	if id < 0 || int(id) >= len(d.tuples) {
		return nil
	}
	return d.tuples[id]
}

// Has reports whether the dataset hosts the tuple with the given GID.
func (d *Dataset) Has(id TID) bool { return d.Tuple(id) != nil }

// Size returns |D|, the total number of tuples.
func (d *Dataset) Size() int { return len(d.tuples) }

// Relation returns the instance of the named relation, or nil.
func (d *Dataset) Relation(name string) *Relation {
	i := d.DB.SchemaIndex(name)
	if i < 0 {
		return nil
	}
	return d.Relations[i]
}

// SchemaOf returns the schema of the given tuple.
func (d *Dataset) SchemaOf(t *Tuple) *Schema { return d.DB.Schemas[t.Rel] }

// Tuples iterates all tuples in GID order.
func (d *Dataset) Tuples() []*Tuple { return d.tuples }

// Fragment builds a sub-dataset over the same database schema containing
// exactly the tuples whose GIDs appear in ids. The tuples are shared (not
// copied) so their GIDs remain globally meaningful: the parallel engine
// relies on this to exchange matches between fragments by GID alone.
func (d *Dataset) Fragment(ids []TID) *Dataset {
	f := &Dataset{
		DB:        d.DB,
		Relations: make([]*Relation, len(d.DB.Schemas)),
		byGID:     make(map[TID]*Tuple, len(ids)),
	}
	for i, s := range d.DB.Schemas {
		f.Relations[i] = &Relation{Schema: s}
	}
	for _, id := range ids {
		if _, seen := f.byGID[id]; seen {
			continue
		}
		t := d.Tuple(id)
		if t == nil {
			continue
		}
		f.byGID[id] = t
		f.Relations[t.Rel].Tuples = append(f.Relations[t.Rel].Tuples, t)
		f.tuples = append(f.tuples, t)
	}
	return f
}
