package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// WriteCSV writes one relation as CSV with a typed header row of the form
// name:type (e.g. "cno:string,price:float"). The id attribute is marked
// with a trailing "!id".
func WriteCSV(w io.Writer, rel *Relation) error {
	cw := csv.NewWriter(w)
	header := make([]string, rel.Schema.Arity())
	for i, a := range rel.Schema.Attrs {
		h := a.Name + ":" + a.Type.String()
		if i == rel.Schema.IDAttr {
			h += "!id"
		}
		header[i] = h
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, rel.Schema.Arity())
	for _, t := range rel.Tuples {
		for i := range row {
			row[i] = t.Val(i).String()
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSVSchema parses the typed header row into a schema named name.
func ReadCSVSchema(name string, header []string) (*Schema, error) {
	attrs := make([]Attribute, len(header))
	idAttr := ""
	for i, h := range header {
		isID := strings.HasSuffix(h, "!id")
		h = strings.TrimSuffix(h, "!id")
		nm, ty, ok := strings.Cut(h, ":")
		if !ok {
			nm, ty = h, "string"
		}
		t, err := ParseType(ty)
		if err != nil {
			return nil, fmt.Errorf("relation: %s header %q: %w", name, header[i], err)
		}
		attrs[i] = Attribute{Name: nm, Type: t}
		if isID {
			idAttr = nm
		}
	}
	if idAttr == "" {
		idAttr = attrs[0].Name
	}
	return NewSchema(name, idAttr, attrs...)
}

// LoadCSVInto reads CSV rows (with typed header) into an existing dataset's
// relation named name. The header must match the relation's schema arity.
func LoadCSVInto(d *Dataset, name string, r io.Reader) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("relation: %s: empty CSV", name)
	}
	s := d.DB.Schema(name)
	if s == nil {
		return fmt.Errorf("relation: no relation %q in dataset", name)
	}
	if len(rows[0]) != s.Arity() {
		return fmt.Errorf("relation: %s: header has %d columns, schema %d", name, len(rows[0]), s.Arity())
	}
	// The rows were just parsed by the schema's own attribute types, so
	// they take the trusted bulk path: no per-value kind re-checks, and
	// the scratch vals buffer is reused (Append* never retains it).
	ri := d.DB.SchemaIndex(name)
	d.Reserve(name, len(rows)-1)
	vals := make([]Value, s.Arity())
	for rn, row := range rows[1:] {
		if len(row) != s.Arity() {
			return fmt.Errorf("relation: %s row %d: %d columns, want %d", name, rn+2, len(row), s.Arity())
		}
		for i, cell := range row {
			v, err := ParseValue(cell, s.Attrs[i].Type)
			if err != nil {
				return fmt.Errorf("relation: %s row %d: %w", name, rn+2, err)
			}
			vals[i] = v
		}
		d.AppendUnchecked(ri, vals...)
	}
	return nil
}

// LoadDir loads every *.csv file in dir as one relation (named after the
// file basename) and assembles them into a dataset. Each file must carry a
// typed header row.
func LoadDir(dir string) (*Dataset, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("relation: no *.csv files in %s", dir)
	}
	var schemas []*Schema
	type pending struct {
		name string
		path string
	}
	var order []pending
	for _, f := range files {
		name := strings.TrimSuffix(filepath.Base(f), ".csv")
		fh, err := os.Open(f)
		if err != nil {
			return nil, err
		}
		cr := csv.NewReader(fh)
		header, err := cr.Read()
		fh.Close()
		if err != nil {
			return nil, fmt.Errorf("relation: %s: %w", f, err)
		}
		s, err := ReadCSVSchema(name, header)
		if err != nil {
			return nil, err
		}
		schemas = append(schemas, s)
		order = append(order, pending{name, f})
	}
	db, err := NewDatabase(schemas...)
	if err != nil {
		return nil, err
	}
	d := NewDataset(db)
	for _, p := range order {
		fh, err := os.Open(p.path)
		if err != nil {
			return nil, err
		}
		err = LoadCSVInto(d, p.name, fh)
		fh.Close()
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// SaveDir writes each relation of d as dir/<name>.csv.
func SaveDir(d *Dataset, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, rel := range d.Relations {
		f, err := os.Create(filepath.Join(dir, rel.Schema.Name+".csv"))
		if err != nil {
			return err
		}
		err = WriteCSV(f, rel)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}
