package relation_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"dcer/internal/relation"
)

func TestValueEqualAndKey(t *testing.T) {
	cases := []struct {
		a, b  relation.Value
		equal bool
	}{
		{relation.S("x"), relation.S("x"), true},
		{relation.S("x"), relation.S("y"), false},
		{relation.I(3), relation.I(3), true},
		{relation.I(3), relation.I(4), false},
		{relation.F(1.5), relation.F(1.5), true},
		{relation.S("1"), relation.I(1), false}, // different kinds never equal
		{relation.I(1), relation.F(1), false},
		{relation.S(""), relation.S(""), true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.equal {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.equal)
		}
		if c.equal && c.a.Key() != c.b.Key() {
			t.Errorf("equal values %v, %v have different keys", c.a, c.b)
		}
		if !c.equal && c.a.Key() == c.b.Key() {
			t.Errorf("unequal values %v, %v share key %q", c.a, c.b, c.a.Key())
		}
	}
}

func TestValueKeyInjectiveProperty(t *testing.T) {
	// Key must be injective w.r.t. Equal for string/int pairs.
	f := func(a, b string, x, y int64) bool {
		sa, sb := relation.S(a), relation.S(b)
		ia, ib := relation.I(x), relation.I(y)
		if sa.Equal(sb) != (sa.Key() == sb.Key()) {
			return false
		}
		if ia.Equal(ib) != (ia.Key() == ib.Key()) {
			return false
		}
		// Cross-kind collisions are forbidden.
		return sa.Key() != ia.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseValue(t *testing.T) {
	v, err := relation.ParseValue("42", relation.TypeInt)
	if err != nil || v.Int() != 42 {
		t.Errorf("ParseValue int: %v %v", v, err)
	}
	v, err = relation.ParseValue("2.5", relation.TypeFloat)
	if err != nil || v.Float() != 2.5 {
		t.Errorf("ParseValue float: %v %v", v, err)
	}
	if _, err := relation.ParseValue("abc", relation.TypeInt); err == nil {
		t.Error("ParseValue accepted a non-int")
	}
	v, err = relation.ParseValue("", relation.TypeInt)
	if err != nil || v.Int() != 0 {
		t.Errorf("empty int cell should parse to 0, got %v %v", v, err)
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := relation.NewSchema("R", "id",
		relation.Attribute{Name: "id", Type: relation.TypeString},
		relation.Attribute{Name: "id", Type: relation.TypeString}); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := relation.NewSchema("R", "nope",
		relation.Attribute{Name: "id", Type: relation.TypeString}); err == nil {
		t.Error("missing id attribute accepted")
	}
	if _, err := relation.NewSchema("", "id",
		relation.Attribute{Name: "id", Type: relation.TypeString}); err == nil {
		t.Error("empty schema name accepted")
	}
	s := relation.MustSchema("R", "b",
		relation.Attribute{Name: "a", Type: relation.TypeString},
		relation.Attribute{Name: "b", Type: relation.TypeInt})
	if s.IDAttr != 1 {
		t.Errorf("IDAttr = %d, want 1", s.IDAttr)
	}
	if s.AttrIndex("a") != 0 || s.AttrIndex("zzz") != -1 {
		t.Error("AttrIndex wrong")
	}
	if ty, ok := s.AttrType("b"); !ok || ty != relation.TypeInt {
		t.Error("AttrType wrong")
	}
	if !strings.Contains(s.String(), "b:int!id") {
		t.Errorf("String() = %q lacks id marker", s)
	}
}

func TestDatabaseLookup(t *testing.T) {
	db := relation.MustDatabase(
		relation.MustSchema("A", "x", relation.Attribute{Name: "x", Type: relation.TypeString}),
		relation.MustSchema("B", "y", relation.Attribute{Name: "y", Type: relation.TypeString}),
	)
	if db.SchemaIndex("B") != 1 || db.SchemaIndex("C") != -1 {
		t.Error("SchemaIndex wrong")
	}
	if db.Schema("A") == nil || db.Schema("C") != nil {
		t.Error("Schema lookup wrong")
	}
	if _, err := relation.NewDatabase(db.Schemas[0], db.Schemas[0]); err == nil {
		t.Error("duplicate schema accepted")
	}
}

func testDataset(t *testing.T) *relation.Dataset {
	t.Helper()
	db := relation.MustDatabase(relation.MustSchema("R", "k",
		relation.Attribute{Name: "k", Type: relation.TypeString},
		relation.Attribute{Name: "v", Type: relation.TypeInt}))
	d := relation.NewDataset(db)
	for i := 0; i < 5; i++ {
		d.MustAppend("R", relation.S(string(rune('a'+i))), relation.I(int64(i%2)))
	}
	return d
}

func TestDatasetAppendErrors(t *testing.T) {
	d := testDataset(t)
	if _, err := d.Append("nope", relation.S("x")); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := d.Append("R", relation.S("x")); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := d.Append("R", relation.S("x"), relation.S("notint")); err == nil {
		t.Error("wrong type accepted")
	}
	if d.Size() != 5 {
		t.Errorf("Size = %d after failed appends, want 5", d.Size())
	}
}

func TestDatasetFragment(t *testing.T) {
	d := testDataset(t)
	f := d.Fragment([]relation.TID{0, 2, 4, 2}) // duplicate id is deduped
	if f.Size() != 3 {
		t.Fatalf("fragment size = %d, want 3", f.Size())
	}
	if f.Tuple(2) == nil || f.Tuple(1) != nil {
		t.Error("fragment membership wrong")
	}
	if !f.Has(0) || f.Has(3) {
		t.Error("Has wrong")
	}
	// Shared tuples: same pointers, same GIDs.
	if f.Tuple(2) != d.Tuple(2) {
		t.Error("fragment copied tuples instead of sharing")
	}
	// Missing ids are skipped.
	g := d.Fragment([]relation.TID{99})
	if g.Size() != 0 {
		t.Error("fragment invented tuples")
	}
}

func TestIndexLookup(t *testing.T) {
	d := testDataset(t)
	ix := relation.BuildIndex(0, d.Relations[0], 1)
	if got := len(ix.Lookup(relation.I(0))); got != 3 {
		t.Errorf("Lookup(0) = %d tuples, want 3", got)
	}
	if got := len(ix.Lookup(relation.I(7))); got != 0 {
		t.Errorf("Lookup(7) = %d tuples, want 0", got)
	}
	if ix.Distinct() != 2 {
		t.Errorf("Distinct = %d, want 2", ix.Distinct())
	}
	if ix.MaxBucket() != 3 {
		t.Errorf("MaxBucket = %d, want 3", ix.MaxBucket())
	}
	set := relation.NewIndexSet(d)
	a := set.For(0, 1)
	b := set.For(0, 1)
	if a != b {
		t.Error("IndexSet rebuilt an existing index")
	}
	if set.Built() != 1 {
		t.Errorf("Built = %d, want 1", set.Built())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := testDataset(t)
	var buf bytes.Buffer
	if err := relation.WriteCSV(&buf, d.Relations[0]); err != nil {
		t.Fatal(err)
	}
	// Reload via schema + rows.
	db2 := relation.MustDatabase(relation.MustSchema("R", "k",
		relation.Attribute{Name: "k", Type: relation.TypeString},
		relation.Attribute{Name: "v", Type: relation.TypeInt}))
	d2 := relation.NewDataset(db2)
	if err := relation.LoadCSVInto(d2, "R", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if d2.Size() != d.Size() {
		t.Fatalf("round trip lost tuples: %d vs %d", d2.Size(), d.Size())
	}
	for i := range d.Tuples() {
		a, b := d.Tuples()[i], d2.Tuples()[i]
		for j := 0; j < a.Arity(); j++ {
			if !a.Val(j).Equal(b.Val(j)) {
				t.Errorf("tuple %d attr %d: %v vs %v", i, j, a.Val(j), b.Val(j))
			}
		}
	}
}

func TestSaveLoadDir(t *testing.T) {
	d := testDataset(t)
	dir := t.TempDir()
	if err := relation.SaveDir(d, dir); err != nil {
		t.Fatal(err)
	}
	d2, err := relation.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Size() != d.Size() {
		t.Errorf("LoadDir size %d, want %d", d2.Size(), d.Size())
	}
	if d2.DB.Schema("R") == nil {
		t.Fatal("schema lost")
	}
	if d2.DB.Schema("R").IDAttr != 0 {
		t.Error("id attribute lost in round trip")
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := relation.LoadDir(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.csv"), []byte("a:string!id\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := relation.LoadDir(dir); err == nil {
		t.Error("ragged CSV accepted")
	}
}

func TestReadCSVSchemaDefaults(t *testing.T) {
	s, err := relation.ReadCSVSchema("R", []string{"a", "b:int"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Attrs[0].Type != relation.TypeString {
		t.Error("untyped header should default to string")
	}
	if s.IDAttr != 0 {
		t.Error("first attribute should be the default id")
	}
	if _, err := relation.ReadCSVSchema("R", []string{"a:bogus"}); err == nil {
		t.Error("bogus type accepted")
	}
}

// TestCSVRoundTripQuick round-trips random values (including commas,
// quotes, newlines and unicode) through the CSV writer/loader.
func TestCSVRoundTripQuick(t *testing.T) {
	f := func(a, b string, n int64, x float64) bool {
		db := relation.MustDatabase(relation.MustSchema("R", "k",
			relation.Attribute{Name: "k", Type: relation.TypeString},
			relation.Attribute{Name: "s", Type: relation.TypeString},
			relation.Attribute{Name: "n", Type: relation.TypeInt},
			relation.Attribute{Name: "x", Type: relation.TypeFloat}))
		d := relation.NewDataset(db)
		d.MustAppend("R", relation.S(a), relation.S(b), relation.I(n), relation.F(x))
		var buf bytes.Buffer
		if err := relation.WriteCSV(&buf, d.Relations[0]); err != nil {
			return false
		}
		d2 := relation.NewDataset(db)
		if err := relation.LoadCSVInto(d2, "R", bytes.NewReader(buf.Bytes())); err != nil {
			return false
		}
		if d2.Size() != 1 {
			return false
		}
		got := d2.Tuples()[0]
		want := d.Tuples()[0]
		for i := 0; i < want.Arity(); i++ {
			// CSV cannot distinguish "\r\n" from "\n" inside quoted
			// fields (the reader normalizes line endings); accept that.
			g, w := got.Val(i), want.Val(i)
			if g.Kind == relation.TypeString {
				gs := strings.ReplaceAll(g.Str, "\r\n", "\n")
				ws := strings.ReplaceAll(w.Str, "\r\n", "\n")
				if gs != ws {
					return false
				}
			} else if !g.Equal(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
