package relation

import "sync/atomic"

// Index is an inverted index over one attribute of one relation: it maps
// each value to the tuples carrying that value. The chase engine builds
// one Index per attribute participating in an equality predicate
// (Section V-A, data structure (1)).
//
// Postings are keyed by the packed storage word (interned Sym for
// strings, PackNum bits for numerics), so the hot path — LookupWord fed
// straight from a bound tuple's Word — is one integer-keyed map probe
// with no Value boxing. Within one index every stored word comes from a
// single typed column, so words cannot collide across kinds; boxed-Value
// probes go through the symbol table (Lookup) and miss cleanly on
// strings the dataset never interned. The posting lists are views into
// one shared arena built in two passes, so an index allocates O(distinct
// values) map cells instead of O(tuples) slice growth steps.
type Index struct {
	Rel  int // relation position within the dataset
	Attr int // attribute position within the schema

	typ     Type
	syms    *SymTab
	entries map[uint64][]*Tuple
}

// BuildIndex scans rel and indexes attribute attr.
func BuildIndex(relIdx int, rel *Relation, attr int) *Index {
	ix := &Index{
		Rel:  relIdx,
		Attr: attr,
		typ:  rel.Schema.Attrs[attr].Type,
		syms: rel.syms,
	}
	n := len(rel.Tuples)
	counts := make(map[uint64]int32, n/4+1)
	for _, t := range rel.Tuples {
		counts[t.Word(attr)]++
	}
	// Lay every posting list out in one arena: ends[w] walks from the
	// list's start to one past its end while filling, so afterwards the
	// view for w is arena[ends[w]-counts[w] : ends[w]]. The views are
	// capacity-clipped so an incremental Add reallocates instead of
	// clobbering its neighbor.
	arena := make([]*Tuple, n)
	ends := make(map[uint64]int32, len(counts))
	off := int32(0)
	for w, c := range counts {
		ends[w] = off
		off += c
	}
	for _, t := range rel.Tuples {
		w := t.Word(attr)
		o := ends[w]
		arena[o] = t
		ends[w] = o + 1
	}
	ix.entries = make(map[uint64][]*Tuple, len(counts))
	for w, end := range ends {
		c := counts[w]
		ix.entries[w] = arena[end-c : end : end]
	}
	return ix
}

// LookupWord returns all tuples whose indexed attribute packs to w. This
// is the enumeration hot path: w comes from a bound tuple's Word (same
// type by rule well-formedness), so no boxing or symbol probe happens.
func (ix *Index) LookupWord(w uint64) []*Tuple { return ix.entries[w] }

// LookupTuple probes the index with the packed word of t's attribute
// attr — the enumeration fast path for t.A = s.B predicates, no boxing.
// If the probing attribute's type differs from the indexed column's, the
// probe misses, mirroring Value.Equal cross-kind semantics.
func (ix *Index) LookupTuple(t *Tuple, attr int) []*Tuple {
	if t.rel.Schema.Attrs[attr].Type != ix.typ {
		return nil
	}
	return ix.entries[t.Word(attr)]
}

// Lookup returns all tuples whose indexed attribute equals v. Boxed
// compatibility probe: kind mismatches, never-interned strings, and NaN
// all miss, matching Value.Equal semantics.
func (ix *Index) Lookup(v Value) []*Tuple {
	w, ok := ix.WordFor(v)
	if !ok {
		return nil
	}
	return ix.entries[w]
}

// WordFor packs a probe value for this index: ok=false means v cannot
// match any stored tuple (wrong kind, unknown string, or NaN).
func (ix *Index) WordFor(v Value) (uint64, bool) {
	if v.Kind != ix.typ {
		return 0, false
	}
	if ix.typ == TypeString {
		s, ok := ix.syms.Find(v.Str)
		return uint64(s), ok
	}
	if v.Num != v.Num {
		return 0, false
	}
	return PackNum(v.Num), true
}

// Add registers a newly appended tuple (incremental ΔD maintenance).
func (ix *Index) Add(t *Tuple) {
	w := t.Word(ix.Attr)
	ix.entries[w] = append(ix.entries[w], t)
}

// Distinct returns the number of distinct values in the index.
func (ix *Index) Distinct() int { return len(ix.entries) }

// MaxBucket returns the size of the largest posting list (a skew measure).
func (ix *Index) MaxBucket() int {
	max := 0
	for _, ts := range ix.entries {
		if len(ts) > max {
			max = len(ts)
		}
	}
	return max
}

// MemBytes estimates the index's footprint: the posting arena plus map
// overhead per distinct value.
func (ix *Index) MemBytes() int64 {
	var posted int64
	for _, ts := range ix.entries {
		posted += int64(cap(ts))
	}
	return posted*8 + int64(len(ix.entries))*40
}

// IndexSet caches the indexes of a dataset, built lazily per
// (relation, attribute). It is not safe for concurrent mutation; the
// parallel engine gives each worker its own IndexSet over its fragment.
// Built alone is safe to read concurrently (it backs the engine's
// mid-run stats snapshots), so the build count lives in an atomic.
type IndexSet struct {
	d       *Dataset
	indexes map[[2]int]*Index
	built   atomic.Int64
}

// NewIndexSet creates an empty index cache over d.
func NewIndexSet(d *Dataset) *IndexSet {
	return &IndexSet{d: d, indexes: make(map[[2]int]*Index)}
}

// For returns the index for (relation, attribute), building it on first use.
func (s *IndexSet) For(rel, attr int) *Index {
	key := [2]int{rel, attr}
	if ix, ok := s.indexes[key]; ok {
		return ix
	}
	ix := BuildIndex(rel, s.d.Relations[rel], attr)
	s.indexes[key] = ix
	s.built.Add(1)
	return ix
}

// Built returns how many indexes have been materialized. Safe to call
// while another goroutine is lazily building (it reads only the atomic
// count, never the cache map).
func (s *IndexSet) Built() int { return int(s.built.Load()) }

// MemBytes estimates the combined footprint of the materialized indexes.
// Like For, it is only safe against concurrent mutation from the owning
// goroutine.
func (s *IndexSet) MemBytes() int64 {
	var n int64
	for _, ix := range s.indexes {
		n += ix.MemBytes()
	}
	return n
}

// Add registers a newly appended tuple in every materialized index of its
// relation (incremental ΔD maintenance). The tuple must already be part
// of the underlying dataset.
func (s *IndexSet) Add(t *Tuple) {
	for key, ix := range s.indexes {
		if key[0] == t.Rel {
			ix.Add(t)
		}
	}
}
