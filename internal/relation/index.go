package relation

import (
	"math/bits"
	"sync/atomic"
)

// Index is an inverted index over one attribute of one relation: it maps
// each value to the tuples carrying that value. The chase engine builds
// one Index per attribute participating in an equality predicate
// (Section V-A, data structure (1)).
//
// Postings are keyed by the packed storage word (interned Sym for
// strings, PackNum bits for numerics), so the hot path — LookupWord fed
// straight from a bound tuple's Word — is one integer-keyed probe with no
// Value boxing. Within one index every stored word comes from a single
// typed column, so words cannot collide across kinds; boxed-Value probes
// go through the symbol table (Lookup) and miss cleanly on strings the
// dataset never interned. The posting lists are views into one shared
// arena built in two passes, so an index allocates O(distinct values)
// table slots instead of O(tuples) slice growth steps.
//
// The word → postings step is a postMap — an open-addressed table with a
// multiplicative hash — rather than a Go map: enumeration fires millions
// of probes per chase, and the runtime map's hashing and bucket protocol
// was the single largest line item in the Deduce profile.
type Index struct {
	Rel  int // relation position within the dataset
	Attr int // attribute position within the schema

	typ  Type
	syms *SymTab
	pm   postMap
}

// postMap is a linear-probed open-addressed hash table from packed words
// to posting lists. Capacity is a power of two; the probe sequence starts
// at a Fibonacci multiplicative hash of the word (one multiply and shift
// — words are already high-entropy Sym or PackNum bits, they only need
// spreading). An occupied slot always holds a non-empty posting list, so
// vals[i] == nil marks an empty slot; the key-0 collision with that
// sentinel is benign because a present key is always found along the
// probe chain before any empty slot.
type postMap struct {
	keys  []uint64
	vals  [][]*Tuple
	mask  uint64
	shift uint
	n     int
}

// fibMul spreads a word over the table's power-of-two capacity
// (Fibonacci hashing: 2^64 / φ).
const fibMul = 0x9E3779B97F4A7C15

func newPostMap(capacity int) postMap {
	if capacity < 8 {
		capacity = 8
	}
	b := bits.Len(uint(capacity - 1))
	size := 1 << b
	return postMap{
		keys:  make([]uint64, size),
		vals:  make([][]*Tuple, size),
		mask:  uint64(size - 1),
		shift: uint(64 - b),
	}
}

// get returns the posting list for w, or nil.
func (pm *postMap) get(w uint64) []*Tuple {
	i := (w * fibMul) >> pm.shift
	for {
		if pm.keys[i] == w {
			return pm.vals[i] // nil when the slot is empty and w == 0
		}
		if pm.vals[i] == nil {
			return nil
		}
		i = (i + 1) & pm.mask
	}
}

// put inserts or replaces the posting list for w. lst must be non-empty
// (empty slots are recognized by a nil list).
func (pm *postMap) put(w uint64, lst []*Tuple) {
	if pm.n+1 > len(pm.keys)-len(pm.keys)>>2 {
		pm.grow()
	}
	i := (w * fibMul) >> pm.shift
	for {
		if pm.vals[i] == nil {
			pm.keys[i] = w
			pm.vals[i] = lst
			pm.n++
			return
		}
		if pm.keys[i] == w {
			pm.vals[i] = lst
			return
		}
		i = (i + 1) & pm.mask
	}
}

// grow doubles the table and reinserts every occupied slot.
func (pm *postMap) grow() {
	old := *pm
	next := newPostMap(len(old.keys) * 2)
	for i, lst := range old.vals {
		if lst != nil {
			next.put(old.keys[i], lst)
		}
	}
	*pm = next
}

// BuildIndex scans rel and indexes attribute attr.
func BuildIndex(relIdx int, rel *Relation, attr int) *Index {
	ix := &Index{
		Rel:  relIdx,
		Attr: attr,
		typ:  rel.Schema.Attrs[attr].Type,
		syms: rel.syms,
	}
	n := len(rel.Tuples)
	// Count into a transient key table sized at 2n so it never grows
	// (distinct ≤ n keeps its load factor under one half and slot indexes
	// stable across the passes). Only keys and counts live here — the
	// resident table is sized by the distinct count afterwards, so an
	// index over a low-cardinality column costs O(distinct) slots, like
	// the runtime map it replaced, not O(tuples).
	tmpCap := 2 * n
	if tmpCap < 8 {
		tmpCap = 8
	}
	tb := bits.Len(uint(tmpCap - 1))
	tmpMask := uint64(1<<tb - 1)
	tmpShift := uint(64 - tb)
	keys := make([]uint64, 1<<tb)
	counts := make([]int32, len(keys))
	distinct := 0
	slotOf := func(w uint64) uint64 {
		i := (w * fibMul) >> tmpShift
		for {
			if counts[i] == 0 {
				keys[i] = w // claim
				return i
			}
			if keys[i] == w {
				return i
			}
			i = (i + 1) & tmpMask
		}
	}
	for _, t := range rel.Tuples {
		s := slotOf(t.Word(attr))
		if counts[s] == 0 {
			distinct++
		}
		counts[s]++
	}
	// Lay every posting list out in one arena: ends[s] walks from the
	// list's start to one past its end while filling, so afterwards the
	// view for slot s is arena[ends[s]-counts[s] : ends[s]]. The views are
	// capacity-clipped so an incremental Add reallocates instead of
	// clobbering its neighbor.
	arena := make([]*Tuple, n)
	ends := make([]int32, len(keys))
	off := int32(0)
	for s, c := range counts {
		if c > 0 {
			ends[s] = off
			off += c
		}
	}
	for _, t := range rel.Tuples {
		s := slotOf(t.Word(attr))
		o := ends[s]
		arena[o] = t
		ends[s] = o + 1
	}
	// Sized at twice the distinct count the resident table never grows
	// during these inserts (load factor one half).
	pm := newPostMap(2 * distinct)
	for s, c := range counts {
		if c > 0 {
			end := ends[s]
			pm.put(keys[s], arena[end-c:end:end])
		}
	}
	ix.pm = pm
	return ix
}

// LookupWord returns all tuples whose indexed attribute packs to w. This
// is the enumeration hot path: w comes from a bound tuple's Word (same
// type by rule well-formedness), so no boxing or symbol probe happens.
func (ix *Index) LookupWord(w uint64) []*Tuple { return ix.pm.get(w) }

// LookupTuple probes the index with the packed word of t's attribute
// attr — the enumeration fast path for t.A = s.B predicates, no boxing.
// If the probing attribute's type differs from the indexed column's, the
// probe misses, mirroring Value.Equal cross-kind semantics.
func (ix *Index) LookupTuple(t *Tuple, attr int) []*Tuple {
	if t.rel.Schema.Attrs[attr].Type != ix.typ {
		return nil
	}
	return ix.pm.get(t.Word(attr))
}

// Lookup returns all tuples whose indexed attribute equals v. Boxed
// compatibility probe: kind mismatches, never-interned strings, and NaN
// all miss, matching Value.Equal semantics.
func (ix *Index) Lookup(v Value) []*Tuple {
	w, ok := ix.WordFor(v)
	if !ok {
		return nil
	}
	return ix.pm.get(w)
}

// WordFor packs a probe value for this index: ok=false means v cannot
// match any stored tuple (wrong kind, unknown string, or NaN).
func (ix *Index) WordFor(v Value) (uint64, bool) {
	if v.Kind != ix.typ {
		return 0, false
	}
	if ix.typ == TypeString {
		s, ok := ix.syms.Find(v.Str)
		return uint64(s), ok
	}
	if v.Num != v.Num {
		return 0, false
	}
	return PackNum(v.Num), true
}

// Add registers a newly appended tuple (incremental ΔD maintenance).
func (ix *Index) Add(t *Tuple) {
	w := t.Word(ix.Attr)
	ix.pm.put(w, append(ix.pm.get(w), t))
}

// Distinct returns the number of distinct values in the index.
func (ix *Index) Distinct() int { return ix.pm.n }

// MaxBucket returns the size of the largest posting list (a skew measure).
func (ix *Index) MaxBucket() int {
	max := 0
	for _, ts := range ix.pm.vals {
		if len(ts) > max {
			max = len(ts)
		}
	}
	return max
}

// MemBytes estimates the index's footprint: the posting arena plus table
// overhead per slot (key word + posting-list header).
func (ix *Index) MemBytes() int64 {
	var posted int64
	for _, ts := range ix.pm.vals {
		if ts != nil {
			posted += int64(cap(ts))
		}
	}
	return posted*8 + int64(len(ix.pm.keys))*32
}

// IndexSet caches the indexes of a dataset, built lazily per
// (relation, attribute). It is not safe for concurrent mutation; the
// parallel engine gives each worker its own IndexSet over its fragment.
// Built alone is safe to read concurrently (it backs the engine's
// mid-run stats snapshots), so the build count lives in an atomic.
type IndexSet struct {
	d       *Dataset
	indexes map[[2]int]*Index
	built   atomic.Int64
}

// NewIndexSet creates an empty index cache over d.
func NewIndexSet(d *Dataset) *IndexSet {
	return &IndexSet{d: d, indexes: make(map[[2]int]*Index)}
}

// For returns the index for (relation, attribute), building it on first use.
func (s *IndexSet) For(rel, attr int) *Index {
	key := [2]int{rel, attr}
	if ix, ok := s.indexes[key]; ok {
		return ix
	}
	ix := BuildIndex(rel, s.d.Relations[rel], attr)
	s.indexes[key] = ix
	s.built.Add(1)
	return ix
}

// Built returns how many indexes have been materialized. Safe to call
// while another goroutine is lazily building (it reads only the atomic
// count, never the cache map).
func (s *IndexSet) Built() int { return int(s.built.Load()) }

// MemBytes estimates the combined footprint of the materialized indexes.
// Like For, it is only safe against concurrent mutation from the owning
// goroutine.
func (s *IndexSet) MemBytes() int64 {
	var n int64
	for _, ix := range s.indexes {
		n += ix.MemBytes()
	}
	return n
}

// Add registers a newly appended tuple in every materialized index of its
// relation (incremental ΔD maintenance). The tuple must already be part
// of the underlying dataset.
func (s *IndexSet) Add(t *Tuple) {
	for key, ix := range s.indexes {
		if key[0] == t.Rel {
			ix.Add(t)
		}
	}
}
