package relation

import "sync/atomic"

// Index is an inverted index over one attribute of one relation: it maps
// each value (by canonical key) to the tuples carrying that value. The
// chase engine builds one Index per attribute participating in an equality
// predicate (Section V-A, data structure (1)).
// Values are comparable structs whose equality coincides with Value.Equal
// (kinds are part of the key, so I(1) and S("1") do not collide), so they
// key the posting map directly — no canonical string is built on the
// Lookup hot path.
type Index struct {
	Rel     int // relation position within the dataset
	Attr    int // attribute position within the schema
	entries map[Value][]*Tuple
}

// BuildIndex scans rel and indexes attribute attr.
func BuildIndex(relIdx int, rel *Relation, attr int) *Index {
	ix := &Index{Rel: relIdx, Attr: attr, entries: make(map[Value][]*Tuple, len(rel.Tuples))}
	for _, t := range rel.Tuples {
		ix.entries[t.Values[attr]] = append(ix.entries[t.Values[attr]], t)
	}
	return ix
}

// Lookup returns all tuples whose indexed attribute equals v.
func (ix *Index) Lookup(v Value) []*Tuple { return ix.entries[v] }

// Add registers a newly appended tuple (incremental ΔD maintenance).
func (ix *Index) Add(t *Tuple) {
	k := t.Values[ix.Attr]
	ix.entries[k] = append(ix.entries[k], t)
}

// Distinct returns the number of distinct values in the index.
func (ix *Index) Distinct() int { return len(ix.entries) }

// MaxBucket returns the size of the largest posting list (a skew measure).
func (ix *Index) MaxBucket() int {
	max := 0
	for _, ts := range ix.entries {
		if len(ts) > max {
			max = len(ts)
		}
	}
	return max
}

// IndexSet caches the indexes of a dataset, built lazily per
// (relation, attribute). It is not safe for concurrent mutation; the
// parallel engine gives each worker its own IndexSet over its fragment.
// Built alone is safe to read concurrently (it backs the engine's
// mid-run stats snapshots), so the build count lives in an atomic.
type IndexSet struct {
	d       *Dataset
	indexes map[[2]int]*Index
	built   atomic.Int64
}

// NewIndexSet creates an empty index cache over d.
func NewIndexSet(d *Dataset) *IndexSet {
	return &IndexSet{d: d, indexes: make(map[[2]int]*Index)}
}

// For returns the index for (relation, attribute), building it on first use.
func (s *IndexSet) For(rel, attr int) *Index {
	key := [2]int{rel, attr}
	if ix, ok := s.indexes[key]; ok {
		return ix
	}
	ix := BuildIndex(rel, s.d.Relations[rel], attr)
	s.indexes[key] = ix
	s.built.Add(1)
	return ix
}

// Built returns how many indexes have been materialized. Safe to call
// while another goroutine is lazily building (it reads only the atomic
// count, never the cache map).
func (s *IndexSet) Built() int { return int(s.built.Load()) }

// Add registers a newly appended tuple in every materialized index of its
// relation (incremental ΔD maintenance). The tuple must already be part
// of the underlying dataset.
func (s *IndexSet) Add(t *Tuple) {
	for key, ix := range s.indexes {
		if key[0] == t.Rel {
			ix.Add(t)
		}
	}
}
