package relation

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// Sym is a dense interned-string identifier. Every distinct string value
// in a dataset maps to exactly one Sym, so string equality on the chase
// hot path degenerates to integer equality and columnar storage packs a
// string attribute as one uint32-wide word per row.
type Sym uint32

// symChunk is the byte-arena chunk size. Strings longer than a quarter
// chunk get a private allocation so a single outlier cannot strand most
// of a chunk.
const symChunk = 1 << 16

// SymTab interns strings into dense Syms backed by a chunked byte arena:
// all interned bytes live in a handful of large []byte blocks instead of
// one heap object per string. Interning is safe for concurrent use; the
// read paths (Str, Find) stay lock-free and read-locked respectively, so
// parallel drains and index probes never serialize on the writer lock.
type SymTab struct {
	mu    sync.RWMutex
	ids   map[string]Sym // keys are the arena-backed copies
	strs  atomic.Pointer[[]string]
	arena []byte
	bytes atomic.Int64 // arena bytes reserved (chunks + oversized strings)
}

// NewSymTab creates an empty symbol table.
func NewSymTab() *SymTab {
	st := &SymTab{ids: make(map[string]Sym)}
	empty := []string(nil)
	st.strs.Store(&empty)
	return st
}

// Intern returns the Sym for s, assigning the next dense id on first
// sight. The bytes of s are copied into the table's arena; the caller's
// string is not retained.
func (st *SymTab) Intern(s string) Sym {
	st.mu.RLock()
	id, ok := st.ids[s]
	st.mu.RUnlock()
	if ok {
		return id
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if id, ok := st.ids[s]; ok {
		return id
	}
	interned := st.copyIn(s)
	strs := append(*st.strs.Load(), interned)
	id = Sym(len(strs) - 1)
	st.strs.Store(&strs)
	st.ids[interned] = id
	return id
}

// copyIn copies s into the arena and returns a string header over the
// arena bytes. Must hold st.mu.
func (st *SymTab) copyIn(s string) string {
	if len(s) == 0 {
		return ""
	}
	if len(s) > symChunk/4 {
		b := append([]byte(nil), s...)
		st.bytes.Add(int64(len(b)))
		return unsafe.String(&b[0], len(b))
	}
	if len(st.arena)+len(s) > cap(st.arena) {
		st.arena = make([]byte, 0, symChunk)
		st.bytes.Add(symChunk)
	}
	off := len(st.arena)
	st.arena = append(st.arena, s...)
	return unsafe.String(&st.arena[off], len(s))
}

// Find returns the Sym for s without interning it, and whether it is
// known. Safe for concurrent use with Intern.
func (st *SymTab) Find(s string) (Sym, bool) {
	st.mu.RLock()
	id, ok := st.ids[s]
	st.mu.RUnlock()
	return id, ok
}

// Str returns the string for a Sym. Lock-free: the string slice only
// ever grows, and every published header covers all Syms issued before
// it was stored.
func (st *SymTab) Str(id Sym) string {
	return (*st.strs.Load())[id]
}

// Len returns the number of distinct interned strings.
func (st *SymTab) Len() int {
	return len(*st.strs.Load())
}

// Since returns the strings interned at ids from..Len()-1, in id order:
// the dictionary delta a peer that has already seen the first `from`
// symbols is missing. The returned slice aliases the table (interned
// strings are immutable) and is empty when from >= Len(). Safe for
// concurrent use with Intern; the watermark discipline of wire encoders
// relies on ids being dense and append-only.
func (st *SymTab) Since(from int) []string {
	strs := *st.strs.Load()
	if from < 0 {
		from = 0
	}
	if from >= len(strs) {
		return nil
	}
	return strs[from:]
}

// Bytes estimates the table's memory footprint: arena bytes plus the
// id map and header slice overhead (one string header and one map entry
// per symbol).
func (st *SymTab) Bytes() int64 {
	n := int64(st.Len())
	const perSym = 16 /* string header */ + 32 /* map entry estimate */
	return st.bytes.Load() + n*perSym
}
