package relation_test

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"dcer/internal/relation"
)

// TestValueEqualNumericEdges pins the numeric edge semantics the packed
// storage layer must preserve: exactness up to ±2^53, strict kind
// separation, NaN inequality, and the zero Value being the empty string.
func TestValueEqualNumericEdges(t *testing.T) {
	const big = int64(1) << 53
	cases := []struct {
		name  string
		a, b  relation.Value
		equal bool
	}{
		{"int 2^53 exact", relation.I(big), relation.I(big), true},
		{"int -2^53 exact", relation.I(-big), relation.I(-big), true},
		{"int 2^53 vs 2^53-1", relation.I(big), relation.I(big - 1), false},
		{"int vs float same magnitude", relation.I(7), relation.F(7), false},
		{"float vs int same magnitude", relation.F(big_f()), relation.I(big), false},
		{"string digit vs int", relation.S("7"), relation.I(7), false},
		{"float -0 equals +0", relation.F(math.Copysign(0, -1)), relation.F(0), true},
		{"NaN never equals NaN", relation.F(math.NaN()), relation.F(math.NaN()), false},
		{"zero Value is empty string", relation.Value{}, relation.S(""), true},
		{"zero Value is not int 0", relation.Value{}, relation.I(0), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.equal {
			t.Errorf("%s: Equal(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.equal)
		}
	}
	if !(relation.Value{}).IsZero() {
		t.Error("zero Value should be IsZero")
	}
}

func big_f() float64 { return float64(int64(1) << 53) }

// TestPackNumCanonicalization pins the word-packing normalizations: -0
// packs like +0 (matching Value.Equal and the old map[Value] index
// behavior) and every NaN payload packs to one canonical word.
func TestPackNumCanonicalization(t *testing.T) {
	if relation.PackNum(math.Copysign(0, -1)) != relation.PackNum(0) {
		t.Error("PackNum(-0) != PackNum(+0)")
	}
	weirdNaN := math.Float64frombits(0x7FF0000000000001)
	if !math.IsNaN(weirdNaN) {
		t.Fatal("test payload is not a NaN")
	}
	if relation.PackNum(weirdNaN) != relation.PackNum(math.NaN()) {
		t.Error("distinct NaN payloads should pack to one canonical word")
	}
	for _, f := range []float64{1, -1, 2.5, big_f(), -big_f()} {
		if relation.PackNum(f) != math.Float64bits(f) {
			t.Errorf("PackNum(%g) should be the plain bit pattern", f)
		}
	}
}

// TestSymTabConcurrentIntern hammers one symbol table from several
// goroutines over overlapping string sets (run under -race). Afterwards
// every symbol must round-trip through Str and Find, and the table must
// hold exactly the distinct strings.
func TestSymTabConcurrentIntern(t *testing.T) {
	st := relation.NewSymTab()
	const workers = 8
	const perWorker = 2000
	const distinct = 500
	var wg sync.WaitGroup
	syms := make([][]relation.Sym, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			out := make([]relation.Sym, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				s := fmt.Sprintf("sym-%d", rng.Intn(distinct))
				out = append(out, st.Intern(s))
			}
			syms[w] = out
		}(w)
	}
	wg.Wait()
	if st.Len() != distinct {
		t.Fatalf("Len = %d, want %d distinct symbols", st.Len(), distinct)
	}
	// Interning is idempotent across goroutines: every occurrence of a
	// string must have received the same Sym.
	canon := make(map[string]relation.Sym)
	for w := range syms {
		rng := rand.New(rand.NewSource(int64(w)))
		for i, sym := range syms[w] {
			s := fmt.Sprintf("sym-%d", rng.Intn(distinct))
			if prev, ok := canon[s]; ok && prev != sym {
				t.Fatalf("worker %d occurrence %d: %q interned as %d and %d", w, i, s, prev, sym)
			}
			canon[s] = sym
			if got := st.Str(sym); got != s {
				t.Fatalf("Str(%d) = %q, want %q", sym, got, s)
			}
			if found, ok := st.Find(s); !ok || found != sym {
				t.Fatalf("Find(%q) = %d,%v, want %d,true", s, found, ok, sym)
			}
		}
	}
}

// TestStorageParity is the boxed-vs-packed parity property test: on a
// randomized dataset, the compat Value API (Val, Values, Index.Lookup)
// must agree exactly with the packed-word API (Word, IDWord,
// Index.LookupWord) the hot paths use.
func TestStorageParity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := relation.MustDatabase(
		relation.MustSchema("R", "id",
			relation.Attribute{Name: "id", Type: relation.TypeString},
			relation.Attribute{Name: "cat", Type: relation.TypeString},
			relation.Attribute{Name: "n", Type: relation.TypeInt},
			relation.Attribute{Name: "x", Type: relation.TypeFloat},
		),
	)
	d := relation.NewDataset(db)
	const rows = 500
	want := make([][]relation.Value, rows)
	for i := 0; i < rows; i++ {
		vals := []relation.Value{
			relation.S(fmt.Sprintf("id%d", i)),
			relation.S(fmt.Sprintf("cat%d", rng.Intn(20))),
			relation.I(int64(rng.Intn(50) - 25)),
			relation.F(float64(rng.Intn(40)) / 4),
		}
		d.MustAppend("R", vals...)
		want[i] = vals
	}
	rel := d.Relations[0]
	// Per-tuple: Val and Values must reproduce the appended values, and
	// Word must pack consistently with the symbol table.
	for i, tt := range rel.Tuples {
		if got := tt.Values(); len(got) != len(want[i]) {
			t.Fatalf("tuple %d: arity %d, want %d", i, len(got), len(want[i]))
		}
		for a := range want[i] {
			if !tt.Val(a).Equal(want[i][a]) {
				t.Fatalf("tuple %d attr %d: Val = %v, want %v", i, a, tt.Val(a), want[i][a])
			}
			if !tt.Values()[a].Equal(want[i][a]) {
				t.Fatalf("tuple %d attr %d: Values = %v, want %v", i, a, tt.Values()[a], want[i][a])
			}
			w, ok := d.Syms().PackValue(want[i][a])
			if !ok || w != tt.Word(a) {
				t.Fatalf("tuple %d attr %d: PackValue = %d,%v, Word = %d", i, a, w, ok, tt.Word(a))
			}
		}
		if tt.IDWord() != tt.Word(0) {
			t.Fatalf("tuple %d: IDWord %d != Word(id) %d", i, tt.IDWord(), tt.Word(0))
		}
	}
	// Per-index: boxed Lookup and packed LookupWord/LookupTuple must
	// return the same posting lists, and both must equal a brute-force
	// Equal scan.
	for attr := 0; attr < 4; attr++ {
		ix := relation.BuildIndex(0, rel, attr)
		for i, tt := range rel.Tuples {
			v := want[i][attr]
			byValue := ix.Lookup(v)
			byWord := ix.LookupWord(tt.Word(attr))
			byTuple := ix.LookupTuple(tt, attr)
			if len(byValue) != len(byWord) || len(byValue) != len(byTuple) {
				t.Fatalf("attr %d value %v: Lookup %d, LookupWord %d, LookupTuple %d entries",
					attr, v, len(byValue), len(byWord), len(byTuple))
			}
			for j := range byValue {
				if byValue[j] != byWord[j] || byValue[j] != byTuple[j] {
					t.Fatalf("attr %d value %v: posting %d disagrees across probe APIs", attr, v, j)
				}
			}
			n := 0
			for _, u := range rel.Tuples {
				if u.Val(attr).Equal(v) {
					n++
				}
			}
			if n != len(byValue) {
				t.Fatalf("attr %d value %v: index has %d postings, scan found %d", attr, v, len(byValue), n)
			}
		}
	}
	// Miss semantics: unknown strings, NaN, and wrong kinds probe empty.
	ix := relation.BuildIndex(0, rel, 1)
	if got := ix.Lookup(relation.S("never-interned")); got != nil {
		t.Errorf("unknown string should miss, got %d entries", len(got))
	}
	if got := ix.Lookup(relation.I(3)); got != nil {
		t.Errorf("kind mismatch should miss, got %d entries", len(got))
	}
	fx := relation.BuildIndex(0, rel, 3)
	if got := fx.Lookup(relation.F(math.NaN())); got != nil {
		t.Errorf("NaN probe should miss, got %d entries", len(got))
	}
}

// TestAppendKindMismatch pins the Append validation contract: int/float
// mismatches get the coercion hint, other mismatches a plain error, and
// AppendUnchecked skips validation entirely.
func TestAppendKindMismatch(t *testing.T) {
	db := relation.MustDatabase(
		relation.MustSchema("R", "id",
			relation.Attribute{Name: "id", Type: relation.TypeString},
			relation.Attribute{Name: "x", Type: relation.TypeFloat},
			relation.Attribute{Name: "n", Type: relation.TypeInt},
		),
	)
	d := relation.NewDataset(db)
	if _, err := d.Append("R", relation.S("a"), relation.I(1), relation.I(2)); err == nil {
		t.Error("int into float attribute should error")
	} else if want := "I(…)/F(…)"; !containsAny(err.Error(), "F(…)") {
		t.Errorf("int/float mismatch error should suggest the constructor, got %q (want mention of %s)", err, want)
	}
	if _, err := d.Append("R", relation.S("a"), relation.F(1), relation.F(2)); err == nil {
		t.Error("float into int attribute should error")
	}
	if _, err := d.Append("R", relation.I(9), relation.F(1), relation.I(2)); err == nil {
		t.Error("int into string attribute should error")
	}
	if _, err := d.Append("R", relation.S("a"), relation.F(1)); err == nil {
		t.Error("arity mismatch should error")
	}
	if _, err := d.Append("R", relation.S("a"), relation.F(1.5), relation.I(2)); err != nil {
		t.Errorf("well-typed append should succeed: %v", err)
	}
	tt := d.AppendUnchecked(0, relation.S("b"), relation.F(2.5), relation.I(3))
	if tt == nil || !tt.Val(1).Equal(relation.F(2.5)) {
		t.Error("AppendUnchecked should append without validation")
	}
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if found {
			return true
		}
	}
	return false
}

// TestIndexProbeAllocs is the allocation-regression guard for the index
// probe hot paths: word probes and boxed probes of interned values must
// not allocate.
func TestIndexProbeAllocs(t *testing.T) {
	db := relation.MustDatabase(
		relation.MustSchema("R", "id",
			relation.Attribute{Name: "id", Type: relation.TypeString},
			relation.Attribute{Name: "cat", Type: relation.TypeString},
		),
	)
	d := relation.NewDataset(db)
	for i := 0; i < 1000; i++ {
		d.MustAppend("R", relation.S(fmt.Sprintf("id%d", i)), relation.S(fmt.Sprintf("cat%d", i%10)))
	}
	rel := d.Relations[0]
	ix := relation.BuildIndex(0, rel, 1)
	probe := relation.S("cat3")
	tt := rel.Tuples[3]
	var sink []*relation.Tuple
	if avg := testing.AllocsPerRun(200, func() { sink = ix.Lookup(probe) }); avg != 0 {
		t.Errorf("Index.Lookup allocates %.1f per probe, want 0", avg)
	}
	w := tt.Word(1)
	if avg := testing.AllocsPerRun(200, func() { sink = ix.LookupWord(w) }); avg != 0 {
		t.Errorf("Index.LookupWord allocates %.1f per probe, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { sink = ix.LookupTuple(tt, 1) }); avg != 0 {
		t.Errorf("Index.LookupTuple allocates %.1f per probe, want 0", avg)
	}
	_ = sink
}
