// Package relation provides the relational substrate for deep and
// collective entity resolution: typed values, relation schemas, tuples,
// datasets, inverted indexes and CSV input/output.
//
// A Dataset holds one Relation per schema, mirroring the paper's
// D = (D_1, ..., D_m) over R = (R_1, ..., R_m). Every tuple carries a
// designated id attribute so it can participate in id predicates.
package relation

import (
	"fmt"
	"strconv"
)

// Type is the domain of an attribute.
type Type uint8

// Supported attribute types.
const (
	TypeString Type = iota
	TypeInt
	TypeFloat
)

// String returns the lowercase name of the type.
func (t Type) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// ParseType converts a type name used in schema files to a Type.
func ParseType(s string) (Type, error) {
	switch s {
	case "string", "str", "text":
		return TypeString, nil
	case "int", "integer":
		return TypeInt, nil
	case "float", "double", "real":
		return TypeFloat, nil
	}
	return TypeString, fmt.Errorf("relation: unknown type %q", s)
}

// Value is a typed attribute value. The zero Value is the empty string.
//
// Values are compact tagged unions: strings live in Str, numerics in Num.
// Equality between two values of the same type is what the chase engine
// relies on for t.A = s.B predicates, so Equal is deliberately strict
// about types.
type Value struct {
	Kind Type
	Str  string
	Num  float64 // holds both ints (exact up to 2^53) and floats
}

// S makes a string value.
func S(s string) Value { return Value{Kind: TypeString, Str: s} }

// I makes an integer value.
func I(i int64) Value { return Value{Kind: TypeInt, Num: float64(i)} }

// F makes a float value.
func F(f float64) Value { return Value{Kind: TypeFloat, Num: f} }

// Int returns the value as an int64. Only meaningful for TypeInt.
func (v Value) Int() int64 { return int64(v.Num) }

// Float returns the value as a float64.
func (v Value) Float() float64 { return v.Num }

// IsZero reports whether v is the zero value of its type ("" or 0).
func (v Value) IsZero() bool {
	if v.Kind == TypeString {
		return v.Str == ""
	}
	return v.Num == 0
}

// Equal reports whether two values are equal. Values of different kinds
// are never equal.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	if v.Kind == TypeString {
		return v.Str == o.Str
	}
	return v.Num == o.Num
}

// Key returns a canonical string key for hashing/index purposes. The key
// embeds the kind so that I(1) and S("1") do not collide.
func (v Value) Key() string {
	switch v.Kind {
	case TypeString:
		return "s:" + v.Str
	case TypeInt:
		return "i:" + strconv.FormatInt(int64(v.Num), 10)
	default:
		return "f:" + strconv.FormatFloat(v.Num, 'g', -1, 64)
	}
}

// String renders the value the way it appears in CSV files.
func (v Value) String() string {
	switch v.Kind {
	case TypeString:
		return v.Str
	case TypeInt:
		return strconv.FormatInt(int64(v.Num), 10)
	default:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	}
}

// ParseValue parses the CSV text s as a value of type t.
func ParseValue(s string, t Type) (Value, error) {
	switch t {
	case TypeString:
		return S(s), nil
	case TypeInt:
		if s == "" {
			return I(0), nil
		}
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse int %q: %w", s, err)
		}
		return I(i), nil
	default:
		if s == "" {
			return F(0), nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse float %q: %w", s, err)
		}
		return F(f), nil
	}
}
