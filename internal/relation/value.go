// Package relation provides the relational substrate for deep and
// collective entity resolution: typed values, relation schemas, tuples,
// datasets, inverted indexes and CSV input/output.
//
// A Dataset holds one Relation per schema, mirroring the paper's
// D = (D_1, ..., D_m) over R = (R_1, ..., R_m). Every tuple carries a
// designated id attribute so it can participate in id predicates.
package relation

import (
	"fmt"
	"math"
	"strconv"
)

// Type is the domain of an attribute.
type Type uint8

// Supported attribute types.
const (
	TypeString Type = iota
	TypeInt
	TypeFloat
)

// String returns the lowercase name of the type.
func (t Type) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// ParseType converts a type name used in schema files to a Type.
func ParseType(s string) (Type, error) {
	switch s {
	case "string", "str", "text":
		return TypeString, nil
	case "int", "integer":
		return TypeInt, nil
	case "float", "double", "real":
		return TypeFloat, nil
	}
	return TypeString, fmt.Errorf("relation: unknown type %q", s)
}

// Value is a typed attribute value. The zero Value is the empty string.
//
// Values are compact tagged unions: strings live in Str, numerics in Num.
// Equality between two values of the same type is what the chase engine
// relies on for t.A = s.B predicates, so Equal is deliberately strict
// about types.
type Value struct {
	Kind Type
	Str  string
	Num  float64 // holds both ints (exact up to 2^53) and floats
}

// S makes a string value.
func S(s string) Value { return Value{Kind: TypeString, Str: s} }

// I makes an integer value.
func I(i int64) Value { return Value{Kind: TypeInt, Num: float64(i)} }

// F makes a float value.
func F(f float64) Value { return Value{Kind: TypeFloat, Num: f} }

// Int returns the value as an int64. Only meaningful for TypeInt.
func (v Value) Int() int64 { return int64(v.Num) }

// Float returns the value as a float64.
func (v Value) Float() float64 { return v.Num }

// IsZero reports whether v is the zero value of its type ("" or 0).
func (v Value) IsZero() bool {
	if v.Kind == TypeString {
		return v.Str == ""
	}
	return v.Num == 0
}

// Equal reports whether two values are equal. Values of different kinds
// are never equal.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	if v.Kind == TypeString {
		return v.Str == o.Str
	}
	return v.Num == o.Num
}

// Key returns a canonical string key for hashing/index purposes. The key
// embeds the kind so that I(1) and S("1") do not collide.
func (v Value) Key() string {
	switch v.Kind {
	case TypeString:
		return "s:" + v.Str
	case TypeInt:
		return "i:" + strconv.FormatInt(int64(v.Num), 10)
	default:
		return "f:" + strconv.FormatFloat(v.Num, 'g', -1, 64)
	}
}

// PackNum packs a numeric payload into a storage word. Negative zero is
// collapsed to positive zero and every NaN payload to one quiet NaN, so
// packed-word equality coincides with the canonical-key equality of the
// seed layout (-0 == +0, and all NaNs rendered alike). NaN words still
// never satisfy Value.Equal — the word is a candidate-pruning key, never
// the equality oracle, so callers that must respect NaN ≠ NaN re-verify
// with Equal.
func PackNum(f float64) uint64 {
	if f == 0 {
		f = 0
	}
	if f != f {
		return QNaNWord
	}
	return math.Float64bits(f)
}

// QNaNWord is the canonical quiet-NaN storage word PackNum collapses
// every NaN payload to. Word-equality fast paths over float columns must
// treat two QNaNWords as unequal to preserve NaN ≠ NaN (Value.Equal).
const QNaNWord = 0x7FF8000000000000

// unpackNum is the inverse of PackNum.
func unpackNum(w uint64) float64 { return math.Float64frombits(w) }

// InternValue packs v into a storage word under the symbol table,
// interning string payloads. The word is comparable with any other word
// packed for the same attribute type (within one typed column sym and
// numeric words cannot collide — the schema fixes the kind).
func (st *SymTab) InternValue(v Value) uint64 {
	if v.Kind == TypeString {
		return uint64(st.Intern(v.Str))
	}
	return PackNum(v.Num)
}

// PackValue packs v into a probe word without interning: an unknown
// string payload reports ok=false (it cannot equal any stored value).
// NaN probes also report false, preserving NaN ≠ NaN on probe paths.
func (st *SymTab) PackValue(v Value) (uint64, bool) {
	if v.Kind == TypeString {
		s, ok := st.Find(v.Str)
		return uint64(s), ok
	}
	if v.Num != v.Num {
		return 0, false
	}
	return PackNum(v.Num), true
}

// String renders the value the way it appears in CSV files.
func (v Value) String() string {
	switch v.Kind {
	case TypeString:
		return v.Str
	case TypeInt:
		return strconv.FormatInt(int64(v.Num), 10)
	default:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	}
}

// ParseValue parses the CSV text s as a value of type t.
func ParseValue(s string, t Type) (Value, error) {
	switch t {
	case TypeString:
		return S(s), nil
	case TypeInt:
		if s == "" {
			return I(0), nil
		}
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse int %q: %w", s, err)
		}
		return I(i), nil
	default:
		if s == "" {
			return F(0), nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse float %q: %w", s, err)
		}
		return F(f), nil
	}
}
