package relation

import (
	"fmt"
	"strings"
)

// Attribute is a named, typed column of a relation schema.
type Attribute struct {
	Name string
	Type Type
}

// Schema is a relation schema (A_1:τ_1, ..., A_n:τ_n) with a designated
// id attribute (the paper assumes one w.l.o.g. for every R_i).
type Schema struct {
	Name  string
	Attrs []Attribute

	// IDAttr is the index of the designated id attribute within Attrs.
	IDAttr int

	byName map[string]int
}

// NewSchema builds a schema. idAttr names the designated id attribute and
// must be one of the given attributes.
func NewSchema(name string, idAttr string, attrs ...Attribute) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: schema needs a name")
	}
	s := &Schema{Name: name, Attrs: attrs, byName: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if _, dup := s.byName[a.Name]; dup {
			return nil, fmt.Errorf("relation: schema %s: duplicate attribute %q", name, a.Name)
		}
		s.byName[a.Name] = i
	}
	id, ok := s.byName[idAttr]
	if !ok {
		return nil, fmt.Errorf("relation: schema %s: id attribute %q not declared", name, idAttr)
	}
	s.IDAttr = id
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and fixtures.
func MustSchema(name string, idAttr string, attrs ...Attribute) *Schema {
	s, err := NewSchema(name, idAttr, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// AttrIndex returns the position of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	i, ok := s.byName[name]
	if !ok {
		return -1
	}
	return i
}

// AttrType returns the type of the named attribute.
func (s *Schema) AttrType(name string) (Type, bool) {
	i, ok := s.byName[name]
	if !ok {
		return TypeString, false
	}
	return s.Attrs[i].Type, true
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.Attrs) }

// String renders the schema as Name(a:t, b:t, ...).
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, a := range s.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		b.WriteByte(':')
		b.WriteString(a.Type.String())
		if i == s.IDAttr {
			b.WriteString("!id")
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Database is a database schema R = (R_1, ..., R_m).
type Database struct {
	Schemas []*Schema
	byName  map[string]int
}

// NewDatabase assembles a database schema from relation schemas.
func NewDatabase(schemas ...*Schema) (*Database, error) {
	db := &Database{Schemas: schemas, byName: make(map[string]int, len(schemas))}
	for i, s := range schemas {
		if _, dup := db.byName[s.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate schema %q", s.Name)
		}
		db.byName[s.Name] = i
	}
	return db, nil
}

// MustDatabase is NewDatabase that panics on error.
func MustDatabase(schemas ...*Schema) *Database {
	db, err := NewDatabase(schemas...)
	if err != nil {
		panic(err)
	}
	return db
}

// Schema returns the schema with the given name, or nil.
func (db *Database) Schema(name string) *Schema {
	i, ok := db.byName[name]
	if !ok {
		return nil
	}
	return db.Schemas[i]
}

// SchemaIndex returns the position of the named schema, or -1.
func (db *Database) SchemaIndex(name string) int {
	i, ok := db.byName[name]
	if !ok {
		return -1
	}
	return i
}
