package datagen_test

import (
	"testing"

	"dcer/internal/baselines"
	"dcer/internal/datagen"
	"dcer/internal/eval"
)

// TestDenormalizeTPCH checks the universal-relation join: row counts,
// truth mapping, and that a single-table matcher on TPCH_d underperforms
// the deep engine's order accuracy (the Exp-1(5) story).
func TestDenormalizeTPCH(t *testing.T) {
	g := datagen.TPCH(datagen.TPCHOptions{Scale: 0.08, Dup: 0.4, Seed: 9})
	d, truth, err := datagen.DenormalizeTPCH(g)
	if err != nil {
		t.Fatal(err)
	}
	// One row per (order, lineitem) incl. duplicates: at least as many
	// rows as line items that belong to resolvable orders.
	if d.Size() == 0 {
		t.Fatal("empty join")
	}
	lineCount := len(g.D.Relation("lineitem").Tuples)
	if d.Size() < lineCount/2 {
		t.Errorf("join produced %d rows for %d line items", d.Size(), lineCount)
	}
	if len(truth) == 0 {
		t.Fatal("no truth pairs mapped onto the join")
	}
	// Every mapped pair references rows of the joined dataset.
	for _, p := range truth {
		if d.Tuple(p[0]) == nil || d.Tuple(p[1]) == nil {
			t.Fatalf("truth pair (%d,%d) references missing rows", p[0], p[1])
		}
	}
	// A single-table matcher on the universal relation stays well below
	// the deep engine's ~0.9 order accuracy.
	m := eval.EvaluatePairs((&baselines.DisDedupLike{}).Match(d), eval.NewTruth(truth))
	t.Logf("DisDedup on TPCH_d: %s", m)
	if m.F1 > 0.8 {
		t.Errorf("universal-relation matcher F=%.3f suspiciously high", m.F1)
	}
}
