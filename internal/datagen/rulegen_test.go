package datagen_test

import (
	"testing"

	"dcer/internal/datagen"
	"dcer/internal/rule"
)

func TestTPCHWidthRulesParse(t *testing.T) {
	db := datagen.TPCHSchemas()
	for width := 2; width <= 10; width++ {
		rules, err := rule.ParseResolved(datagen.TPCHWidthRules(width, 10), db)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if len(rules) != 10 {
			t.Fatalf("width %d: got %d rules, want 10", width, len(rules))
		}
		for _, r := range rules {
			// 2 relation atoms + width body predicates + 1 segment selector.
			if got := r.NumPredicates(); got != 2+width+1 {
				t.Errorf("width %d rule %s: NumPredicates = %d, want %d", width, r.Name, got, 2+width+1)
			}
		}
	}
}

func TestTPCHManyRulesParse(t *testing.T) {
	db := datagen.TPCHSchemas()
	for _, m := range []int{6, 30, 50, 75} {
		rules, err := rule.ParseResolved(datagen.TPCHManyRules(m), db)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if len(rules) != m {
			t.Errorf("m=%d: got %d rules", m, len(rules))
		}
	}
}

func TestTFACCSweepRulesParse(t *testing.T) {
	db := datagen.TFACCSchemas()
	for width := 4; width <= 8; width++ {
		if _, err := rule.ParseResolved(datagen.TFACCWidthRules(width, 10), db); err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
	}
	for _, m := range []int{5, 10, 20, 30} {
		rules, err := rule.ParseResolved(datagen.TFACCManyRules(m), db)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if len(rules) != m {
			t.Errorf("m=%d: got %d rules", m, len(rules))
		}
	}
}

// TestLabeledGeneratorsParse checks the four Table V dataset generators
// produce resolvable rules and consistent labels.
func TestLabeledGeneratorsParse(t *testing.T) {
	gens := map[string]*datagen.Labeled{
		"imdb":  datagen.IMDBLike(300, 0.3, 1),
		"dblp":  datagen.DBLPLike(300, 0.3, 1),
		"movie": datagen.MovieLike(300, 0.3, 1),
		"songs": datagen.SongsLike(300, 0.3, 1),
	}
	for name, g := range gens {
		if _, err := g.Rules(); err != nil {
			t.Errorf("%s: rules: %v", name, err)
		}
		if len(g.Truth) == 0 {
			t.Errorf("%s: no planted duplicates", name)
		}
		pos, neg := 0, 0
		for _, p := range g.LabeledPairs {
			if p.Match {
				pos++
			} else {
				neg++
			}
		}
		if pos != len(g.Truth) {
			t.Errorf("%s: %d positive labels, want %d", name, pos, len(g.Truth))
		}
		if neg < pos {
			t.Errorf("%s: only %d negatives for %d positives", name, neg, pos)
		}
	}
}
