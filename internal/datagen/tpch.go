package datagen

import (
	"fmt"

	"dcer/internal/relation"
	"dcer/internal/rule"
)

// Generated is a synthetic dataset with its planted ground truth and the
// MRL set used against it in the experiments.
type Generated struct {
	D *relation.Dataset
	// Truth lists the planted duplicate pairs (original, duplicate) by
	// global tuple id.
	Truth [][2]relation.TID
	// RulesText is the MRL set in the rule DSL.
	RulesText string
}

// Rules parses and resolves the generated rule set.
func (g *Generated) Rules() ([]*rule.Rule, error) {
	rules, err := rule.Parse(g.RulesText)
	if err != nil {
		return nil, err
	}
	for _, r := range rules {
		if err := r.Resolve(g.D.DB); err != nil {
			return nil, err
		}
	}
	return rules, nil
}

// TPCHOptions configures the TPC-H-shaped generator.
type TPCHOptions struct {
	// Scale is the scale factor; 1.0 yields roughly 25k tuples (the
	// laptop-scale stand-in for the paper's 30M-tuple TPC-H).
	Scale float64
	// Dup is the duplication rate: the fraction of orders whose full
	// deep chain (nation -> customer -> order -> lineitems) is
	// duplicated with noise, plus the same fraction of parts and
	// suppliers. Matches the paper's Dup knob (0.1 .. 0.5).
	Dup  float64
	Seed int64
}

// TPCHSchemas returns the 8-relation TPC-H database schema (58 attributes;
// a synthetic partsupp key is added because every relation needs a
// designated id).
func TPCHSchemas() *relation.Database {
	str := relation.TypeString
	intT := relation.TypeInt
	fl := relation.TypeFloat
	a := func(n string, t relation.Type) relation.Attribute { return relation.Attribute{Name: n, Type: t} }
	return relation.MustDatabase(
		relation.MustSchema("region", "regionkey",
			a("regionkey", str), a("rname", str), a("rcomment", str)),
		relation.MustSchema("nation", "nationkey",
			a("nationkey", str), a("nname", str), a("regionkey", str), a("ncomment", str)),
		relation.MustSchema("supplier", "suppkey",
			a("suppkey", str), a("sname", str), a("saddress", str), a("nationkey", str),
			a("sphone", str), a("acctbal", fl), a("scomment", str)),
		relation.MustSchema("customer", "custkey",
			a("custkey", str), a("cname", str), a("caddress", str), a("nationkey", str),
			a("cphone", str), a("cacctbal", fl), a("mktsegment", str), a("ccomment", str)),
		relation.MustSchema("part", "partkey",
			a("partkey", str), a("pname", str), a("mfgr", str), a("brand", str),
			a("ptype", str), a("psize", intT), a("container", str), a("retailprice", fl),
			a("pcomment", str)),
		relation.MustSchema("partsupp", "pskey",
			a("pskey", str), a("partkey", str), a("suppkey", str), a("availqty", intT),
			a("supplycost", fl), a("pscomment", str)),
		relation.MustSchema("orders", "orderkey",
			a("orderkey", str), a("custkey", str), a("orderstatus", str), a("totalprice", fl),
			a("orderdate", str), a("orderpriority", str), a("clerk", str), a("shippriority", intT),
			a("ocomment", str)),
		relation.MustSchema("lineitem", "lineid",
			a("lineid", str), a("orderkey", str), a("partkey", str), a("suppkey", str),
			a("linenumber", intT), a("quantity", intT), a("extendedprice", fl), a("discount", fl),
			a("tax", fl), a("returnflag", str), a("shipdate", str), a("lcomment", str)),
	)
}

// TPCHRulesText is the MRL set Σ for the TPC-H experiments: a six-rule
// chain whose deepest deduction needs four rounds of recursion
// (nation → customer → orders → lineitem), mirroring the φ_a / φ_b rules
// of the paper's case study (Exp-4) and the 3-level "Argenztina" example.
const TPCHRulesText = `
# Nations: same region, typo-similar names.
tn: nation(n) ^ nation(m) ^ n.regionkey = m.regionkey ^ lev075(n.nname, m.nname) -> n.id = m.id

# Suppliers: same nation and phone, ML-similar names.
ts: supplier(s) ^ supplier(u) ^ s.nationkey = u.nationkey ^ s.sphone = u.sphone ^ jaro085(s.sname, u.sname) -> s.id = u.id

# Customers (deep+collective): matched nations, same phone, ML-similar names.
tc: customer(c) ^ customer(d) ^ nation(n) ^ nation(m) ^ c.nationkey = n.nationkey ^
    d.nationkey = m.nationkey ^ n.id = m.id ^ c.cphone = d.cphone ^ jaro085(c.cname, d.cname) -> c.id = d.id

# Parts (deep+collective, the paper's φ_a): same supplier entity and supply
# cost, ML-similar names.
tp: part(p) ^ part(q) ^ partsupp(ps) ^ partsupp(qs) ^ supplier(s) ^ supplier(u) ^
    ps.partkey = p.partkey ^ qs.partkey = q.partkey ^ ps.suppkey = s.suppkey ^
    qs.suppkey = u.suppkey ^ s.id = u.id ^ ps.supplycost = qs.supplycost ^
    jaro085(p.pname, q.pname) -> p.id = q.id

# Orders (deep+collective, the paper's φ_b): matched customers, same total
# price, date and an item with the same part, ML-similar clerk names.
to: orders(o) ^ orders(w) ^ customer(c) ^ customer(d) ^ lineitem(l) ^ lineitem(k) ^
    o.custkey = c.custkey ^ w.custkey = d.custkey ^ l.orderkey = o.orderkey ^
    k.orderkey = w.orderkey ^ o.totalprice = w.totalprice ^ o.orderdate = w.orderdate ^
    c.id = d.id ^ l.partkey = k.partkey ^ jaro085(o.clerk, w.clerk) -> o.id = w.id

# Line items (deep): items of matched orders with the same line number and part.
tl: lineitem(l) ^ lineitem(k) ^ orders(o) ^ orders(w) ^ l.orderkey = o.orderkey ^
    k.orderkey = w.orderkey ^ o.id = w.id ^ l.linenumber = k.linenumber ^
    l.partkey = k.partkey -> l.id = k.id
`

var (
	tpchRegions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	tpchNations = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
		"GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
		"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
		"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
	}
	tpchSegments  = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	tpchTypes     = []string{"STANDARD ANODIZED TIN", "SMALL PLATED COPPER", "MEDIUM BURNISHED NICKEL", "LARGE BRUSHED STEEL", "ECONOMY POLISHED BRASS"}
	tpchContainer = []string{"SM CASE", "LG BOX", "MED BAG", "JUMBO JAR", "WRAP PACK"}
	tpchAdjies    = []string{"antique", "burnished", "chartreuse", "dim", "floral", "gainsboro", "honeydew", "ivory", "khaki", "lavender", "maroon", "navajo", "olive", "peru", "rosy", "sandy", "thistle", "wheat"}
	tpchNouns     = []string{"almond", "brass", "copper", "drab", "ebony", "firebrick", "ghost", "hot", "indian", "lace", "metallic", "nickel", "orchid", "pale", "quartz", "rose", "steel", "tomato"}
	tpchPriority  = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
)

// TPCH generates the TPC-H-shaped dataset with planted deep duplicate
// chains.
func TPCH(opts TPCHOptions) *Generated {
	if opts.Scale <= 0 {
		opts.Scale = 0.1
	}
	n := NewNoiser(opts.Seed + 17)
	d := relation.NewDataset(TPCHSchemas())
	g := &Generated{D: d, RulesText: TPCHRulesText}
	s, i, f := relation.S, relation.I, relation.F

	scale := func(base int) int {
		v := int(float64(base) * opts.Scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	numSupp := scale(200)
	numCust := scale(2000)
	numPart := scale(1500)
	numOrders := scale(5000)

	// The generator constructs every value with the schema's own kind, so
	// the bulk loops take the trusted AppendUnchecked path with the
	// relation indexes resolved once and the columns pre-sized.
	riNation := d.DB.SchemaIndex("nation")
	riSupp := d.DB.SchemaIndex("supplier")
	riCust := d.DB.SchemaIndex("customer")
	riPart := d.DB.SchemaIndex("part")
	riPS := d.DB.SchemaIndex("partsupp")
	riOrd := d.DB.SchemaIndex("orders")
	riLine := d.DB.SchemaIndex("lineitem")
	d.Reserve("supplier", numSupp)
	d.Reserve("customer", numCust)
	d.Reserve("part", numPart)
	d.Reserve("partsupp", 2*numPart)
	d.Reserve("orders", numOrders)
	d.Reserve("lineitem", 2*numOrders)

	// Static relations.
	for ri, rn := range tpchRegions {
		d.MustAppend("region", s(fmt.Sprintf("R%d", ri)), s(rn), s("region comment"))
	}
	nations := make([]*relation.Tuple, len(tpchNations))
	for ni, nn := range tpchNations {
		nations[ni] = d.AppendUnchecked(riNation,
			s(fmt.Sprintf("N%d", ni)), s(nn), s(fmt.Sprintf("R%d", ni%len(tpchRegions))), s("nation comment"))
	}

	// Suppliers.
	supps := make([]*relation.Tuple, numSupp)
	for si := 0; si < numSupp; si++ {
		supps[si] = d.AppendUnchecked(riSupp,
			s(fmt.Sprintf("S%d", si)),
			s(fmt.Sprintf("Supplier %s %s %d", n.Pick(tpchAdjies), n.Pick(tpchNouns), si)),
			s(fmt.Sprintf("%d Main Street", 100+si)),
			s(fmt.Sprintf("N%d", si%len(tpchNations))),
			s(fmt.Sprintf("27-%03d-%04d", si%999, 1000+si)),
			f(float64(1000+si)+0.5),
			s("supplier comment"))
	}

	// Customers.
	custs := make([]*relation.Tuple, numCust)
	for ci := 0; ci < numCust; ci++ {
		custs[ci] = d.AppendUnchecked(riCust,
			s(fmt.Sprintf("C%d", ci)),
			s(fmt.Sprintf("Customer %s %s %d", n.Pick(tpchNouns), n.Pick(tpchAdjies), ci)),
			s(fmt.Sprintf("%d Oak Avenue", 10+ci)),
			s(fmt.Sprintf("N%d", ci%len(tpchNations))),
			s(fmt.Sprintf("13-%04d-%04d", ci%9999, 2000+ci)),
			f(float64(ci)*1.25),
			s(tpchSegments[ci%len(tpchSegments)]),
			s("customer comment"))
	}

	// Parts and partsupp (two suppliers per part, unique supply costs).
	parts := make([]*relation.Tuple, numPart)
	partSupps := make(map[int][]*relation.Tuple, numPart)
	psCount := 0
	for pi := 0; pi < numPart; pi++ {
		parts[pi] = d.AppendUnchecked(riPart,
			s(fmt.Sprintf("P%d", pi)),
			s(fmt.Sprintf("%s %s part %d", n.Pick(tpchAdjies), n.Pick(tpchNouns), pi)),
			s(fmt.Sprintf("Manufacturer#%d", pi%5+1)),
			s(fmt.Sprintf("Brand#%d%d", pi%5+1, pi%4+1)),
			s(tpchTypes[pi%len(tpchTypes)]),
			i(int64(pi%50+1)),
			s(tpchContainer[pi%len(tpchContainer)]),
			f(900+float64(pi)*0.1),
			s("part comment"))
		for k := 0; k < 2; k++ {
			ps := d.AppendUnchecked(riPS,
				s(fmt.Sprintf("PS%d", psCount)),
				s(fmt.Sprintf("P%d", pi)),
				s(fmt.Sprintf("S%d", (pi+k*7)%numSupp)),
				i(int64(100+pi)),
				f(10+float64(psCount)*0.01),
				s("partsupp comment"))
			partSupps[pi] = append(partSupps[pi], ps)
			psCount++
		}
	}

	// Orders and line items. Dates, prices and clerks come from small
	// pools so that single-table matching on (price, date, clerk) alone
	// is ambiguous — the discriminating signal is the customer entity
	// and shared parts, which is what makes deep+collective ER win.
	dates := make([]string, 30)
	for di := range dates {
		dates[di] = fmt.Sprintf("1996-%02d-%02d", di%12+1, di%28+1)
	}
	clerks := make([]string, 25)
	for ci := range clerks {
		clerks[ci] = fmt.Sprintf("Clerk#%09d", ci+1)
	}
	prices := make([]float64, 40)
	for pi := range prices {
		prices[pi] = float64(1000 + pi*250)
	}
	type orderChain struct {
		order *relation.Tuple
		cust  int
		lines []*relation.Tuple
	}
	chains := make([]orderChain, numOrders)
	usedCombo := make(map[string]bool) // customer+date+price uniqueness guard
	lineCount := 0
	for oi := 0; oi < numOrders; oi++ {
		cust := n.Intn(numCust)
		var date string
		var price float64
		for {
			date = dates[n.Intn(len(dates))]
			price = prices[n.Intn(len(prices))]
			key := fmt.Sprintf("%d|%s|%g", cust, date, price)
			if !usedCombo[key] {
				usedCombo[key] = true
				break
			}
		}
		o := d.AppendUnchecked(riOrd,
			s(fmt.Sprintf("O%d", oi)),
			s(fmt.Sprintf("C%d", cust)),
			s("F"),
			f(price),
			s(date),
			s(tpchPriority[oi%len(tpchPriority)]),
			s(clerks[n.Intn(len(clerks))]),
			i(0),
			s("order comment"))
		nl := 1 + n.Intn(3)
		var lines []*relation.Tuple
		for li := 0; li < nl; li++ {
			part := n.Intn(numPart)
			l := d.AppendUnchecked(riLine,
				s(fmt.Sprintf("L%d", lineCount)),
				s(fmt.Sprintf("O%d", oi)),
				s(fmt.Sprintf("P%d", part)),
				s(fmt.Sprintf("S%d", part%numSupp)),
				i(int64(li+1)),
				i(int64(1+n.Intn(50))),
				f(price/float64(nl)),
				f(0.05),
				f(0.08),
				s("N"),
				s(date),
				s("lineitem comment"))
			lines = append(lines, l)
			lineCount++
		}
		chains[oi] = orderChain{order: o, cust: cust, lines: lines}
	}

	// Duplicate injection. Dup fraction of order chains are duplicated
	// deeply: the order's customer gets a noisy duplicate (and the
	// customer's nation, once), the order itself is duplicated against
	// the duplicate customer, and its line items against the duplicate
	// order. Identifying the duplicate line items therefore needs four
	// rounds of recursion. Additionally Dup fractions of parts and
	// suppliers are duplicated.
	truth := func(orig, dup *relation.Tuple) { g.Truth = append(g.Truth, [2]relation.TID{orig.GID, dup.GID}) }

	dupCounter := 0
	freshKey := func() string {
		dupCounter++
		return fmt.Sprintf("X%d", 1000+dupCounter*7)
	}
	dupNationOf := make(map[string]string) // nationkey -> duplicate nationkey
	dupNationFor := func(nkey string) string {
		if dk, ok := dupNationOf[nkey]; ok {
			return dk
		}
		var orig *relation.Tuple
		for _, nt := range nations {
			if nt.Val(0).Str == nkey {
				orig = nt
				break
			}
		}
		dk := freshKey()
		dup := d.AppendUnchecked(riNation,
			s(dk), s(n.Sub(orig.Val(1).Str)), orig.Val(2), s("dup nation"))
		truth(orig, dup)
		dupNationOf[nkey] = dk
		return dk
	}

	dupCustOf := make(map[int]string) // customer index -> duplicate custkey
	dupCustFor := func(ci int) string {
		if ck, ok := dupCustOf[ci]; ok {
			return ck
		}
		orig := custs[ci]
		ck := freshKey()
		phone := orig.Val(4)
		if n.Float64() < 0.08 {
			// Hard case: the duplicate lost its phone digits; this chain
			// becomes unrecoverable and costs recall, like the residual
			// errors in the paper's Table VI.
			phone = relation.S("unknown")
		}
		dup := d.AppendUnchecked(riCust,
			s(ck),
			s(n.Typo(orig.Val(1).Str, 1)),
			s(n.Drift(orig.Val(2).Str)),
			s(dupNationFor(orig.Val(3).Str)),
			phone,
			orig.Val(5),
			orig.Val(6),
			s("dup customer"))
		truth(orig, dup)
		dupCustOf[ci] = ck
		return ck
	}

	numDupOrders := int(opts.Dup * float64(numOrders))
	perm := n.Perm(numOrders)
	for _, oi := range perm[:numDupOrders] {
		ch := chains[oi]
		dupCust := dupCustFor(ch.cust)
		ok := freshKey()
		date := ch.order.Val(4)
		if n.Float64() < 0.08 {
			// Hard case: the duplicate order was re-entered on a later
			// date and cannot be recovered by the rules.
			date = relation.S("1997-01-01")
		}
		dupOrder := d.AppendUnchecked(riOrd,
			s(ok),
			s(dupCust),
			ch.order.Val(2),
			ch.order.Val(3), // same totalprice
			date,
			ch.order.Val(5),
			s(n.Typo(ch.order.Val(6).Str, 1)), // noisy clerk
			ch.order.Val(7),
			s("dup order"))
		truth(ch.order, dupOrder)
		for _, l := range ch.lines {
			dupLine := d.AppendUnchecked(riLine,
				s(freshKey()),
				s(ok),
				l.Val(2), l.Val(3), l.Val(4), l.Val(5),
				l.Val(6), l.Val(7), l.Val(8), l.Val(9), l.Val(10),
				s("dup lineitem"))
			truth(l, dupLine)
		}
	}

	numDupParts := int(opts.Dup * float64(numPart))
	for _, pi := range n.Perm(numPart)[:numDupParts] {
		orig := parts[pi]
		pk := freshKey()
		dup := d.AppendUnchecked(riPart,
			s(pk),
			s(n.Typo(orig.Val(1).Str, 1)),
			orig.Val(2), orig.Val(3), orig.Val(4), orig.Val(5),
			orig.Val(6), orig.Val(7),
			s("dup part"))
		truth(orig, dup)
		for _, ps := range partSupps[pi] {
			d.AppendUnchecked(riPS,
				s(freshKey()),
				s(pk),
				ps.Val(2), // same supplier
				ps.Val(3),
				ps.Val(4), // same supply cost
				s("dup partsupp"))
		}
	}

	numDupSupp := int(opts.Dup * float64(numSupp))
	for _, si := range n.Perm(numSupp)[:numDupSupp] {
		orig := supps[si]
		dup := d.AppendUnchecked(riSupp,
			s(freshKey()),
			s(n.Typo(orig.Val(1).Str, 1)),
			s(n.Drift(orig.Val(2).Str)),
			orig.Val(3),
			orig.Val(4), // same phone
			orig.Val(5),
			s("dup supplier"))
		truth(orig, dup)
	}

	return g
}
