package datagen

import (
	"math/rand"
	"strings"
)

// Noiser produces the realistic corruptions applied to planted duplicates:
// typos (substitution, transposition, deletion, insertion), token
// abbreviation, case drift and format drift. Deterministic for a fixed
// seed.
type Noiser struct {
	rng *rand.Rand
}

// NewNoiser creates a noiser with the given seed.
func NewNoiser(seed int64) *Noiser {
	return &Noiser{rng: rand.New(rand.NewSource(seed))}
}

const noiseLetters = "abcdefghijklmnopqrstuvwxyz"

// Typo applies k random single-character edits to s. Edits avoid the first
// character so prefix-sensitive metrics (Jaro-Winkler) stay high.
func (n *Noiser) Typo(s string, k int) string {
	r := []rune(s)
	for e := 0; e < k && len(r) > 2; e++ {
		i := 1 + n.rng.Intn(len(r)-1)
		switch n.rng.Intn(4) {
		case 0: // substitute
			r[i] = rune(noiseLetters[n.rng.Intn(len(noiseLetters))])
		case 1: // transpose
			if i+1 < len(r) {
				r[i], r[i+1] = r[i+1], r[i]
			}
		case 2: // delete
			r = append(r[:i], r[i+1:]...)
		default: // insert
			c := rune(noiseLetters[n.rng.Intn(len(noiseLetters))])
			r = append(r[:i], append([]rune{c}, r[i:]...)...)
		}
	}
	return string(r)
}

// Sub applies exactly one character substitution at a position ≥ 1 —
// gentler than Typo (a transposition counts as two Levenshtein edits),
// used for short strings like country names.
func (n *Noiser) Sub(s string) string {
	r := []rune(s)
	if len(r) < 2 {
		return s
	}
	i := 1 + n.rng.Intn(len(r)-1)
	c := rune(noiseLetters[n.rng.Intn(len(noiseLetters))])
	if r[i] >= 'A' && r[i] <= 'Z' {
		c = c - 'a' + 'A'
	}
	for c == r[i] {
		c++
		if c > 'z' {
			c = 'a'
		}
	}
	r[i] = c
	return string(r)
}

// Abbrev abbreviates the first token of a multi-token name to its initial
// with a period: "Ford Smith" -> "F. Smith".
func (n *Noiser) Abbrev(s string) string {
	toks := strings.Fields(s)
	if len(toks) < 2 {
		return s
	}
	toks[0] = strings.ToUpper(toks[0][:1]) + "."
	return strings.Join(toks, " ")
}

// Drift rewrites separators and casing: a cheap stand-in for format drift
// between data sources ("14-Inch" vs "14 inch").
func (n *Noiser) Drift(s string) string {
	switch n.rng.Intn(3) {
	case 0:
		return strings.ToLower(s)
	case 1:
		return strings.ReplaceAll(s, "-", " ")
	default:
		return strings.ReplaceAll(s, ", ", " , ")
	}
}

// MaybeTypo applies one typo with probability p.
func (n *Noiser) MaybeTypo(s string, p float64) string {
	if n.rng.Float64() < p {
		return n.Typo(s, 1)
	}
	return s
}

// Pick returns a uniformly random element of choices.
func (n *Noiser) Pick(choices []string) string {
	return choices[n.rng.Intn(len(choices))]
}

// Intn exposes the underlying generator for count draws.
func (n *Noiser) Intn(m int) int { return n.rng.Intn(m) }

// Float64 exposes the underlying generator for probability draws.
func (n *Noiser) Float64() float64 { return n.rng.Float64() }

// Shuffle shuffles indexes deterministically.
func (n *Noiser) Shuffle(length int, swap func(i, j int)) { n.rng.Shuffle(length, swap) }

// Perm returns a deterministic permutation of [0,m).
func (n *Noiser) Perm(m int) []int { return n.rng.Perm(m) }
