package datagen_test

import (
	"testing"

	"dcer/internal/chase"
	"dcer/internal/datagen"
	"dcer/internal/eval"
	"dcer/internal/mlpred"
)

// TestTPCHEndToEnd generates the TPC-H-shaped dataset, chases it with the
// six-rule deep chain, and checks the accuracy is high (the planted
// duplicates are recoverable) with few false positives.
func TestTPCHEndToEnd(t *testing.T) {
	g := datagen.TPCH(datagen.TPCHOptions{Scale: 0.1, Dup: 0.3, Seed: 1})
	rules, err := g.Rules()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chase.New(g.D, rules, mlpred.DefaultRegistry(), chase.Options{ShareIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	m := eval.EvaluateClasses(eng.Classes(), eval.NewTruth(g.Truth))
	t.Logf("TPCH scale=0.1 dup=0.3: %s (|D|=%d, truth=%d)", m, g.D.Size(), len(g.Truth))
	if m.F1 < 0.8 {
		t.Errorf("TPCH F1 = %.3f, want >= 0.8", m.F1)
	}
	if m.Precision < 0.95 {
		t.Errorf("TPCH precision = %.3f, want >= 0.95", m.Precision)
	}
}

// TestTFACCEndToEnd does the same for the TFACC-shaped dataset.
func TestTFACCEndToEnd(t *testing.T) {
	g := datagen.TFACC(datagen.TFACCOptions{Scale: 0.1, Dup: 0.3, Seed: 1})
	rules, err := g.Rules()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chase.New(g.D, rules, mlpred.DefaultRegistry(), chase.Options{ShareIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	m := eval.EvaluateClasses(eng.Classes(), eval.NewTruth(g.Truth))
	t.Logf("TFACC scale=0.1 dup=0.3: %s (|D|=%d, truth=%d)", m, g.D.Size(), len(g.Truth))
	if m.F1 < 0.8 {
		t.Errorf("TFACC F1 = %.3f, want >= 0.8", m.F1)
	}
}
