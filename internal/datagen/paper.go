// Package datagen builds the datasets of the experimental study: the
// paper's running example (Tables I-IV), a scaled-down TPC-H generator
// with duplicate injection, a wide TFACC-like multi-table generator, and
// labeled single/multi-table datasets shaped like IMDB / ACM-DBLP / Movie
// / Songs. All generators are deterministic for a fixed seed and track the
// ground-truth duplicate pairs they plant.
package datagen

import (
	"dcer/internal/relation"
	"dcer/internal/rule"
)

// PaperSchemas returns the database schema of Example 1:
// Customers(cno, name, phone, addr, pref), Shops(sno, sname, owner, email,
// loc), Products(pno, pname, price, desc) and Orders(ono, buyer, seller,
// item, IP).
func PaperSchemas() *relation.Database {
	str := relation.TypeString
	return relation.MustDatabase(
		relation.MustSchema("Customers", "cno",
			relation.Attribute{Name: "cno", Type: str},
			relation.Attribute{Name: "name", Type: str},
			relation.Attribute{Name: "phone", Type: str},
			relation.Attribute{Name: "addr", Type: str},
			relation.Attribute{Name: "pref", Type: str},
		),
		relation.MustSchema("Shops", "sno",
			relation.Attribute{Name: "sno", Type: str},
			relation.Attribute{Name: "sname", Type: str},
			relation.Attribute{Name: "owner", Type: str},
			relation.Attribute{Name: "email", Type: str},
			relation.Attribute{Name: "loc", Type: str},
		),
		relation.MustSchema("Products", "pno",
			relation.Attribute{Name: "pno", Type: str},
			relation.Attribute{Name: "pname", Type: str},
			relation.Attribute{Name: "price", Type: str},
			relation.Attribute{Name: "desc", Type: str},
		),
		relation.MustSchema("Orders", "ono",
			relation.Attribute{Name: "ono", Type: str},
			relation.Attribute{Name: "buyer", Type: str},
			relation.Attribute{Name: "seller", Type: str},
			relation.Attribute{Name: "item", Type: str},
			relation.Attribute{Name: "IP", Type: str},
		),
	)
}

// PaperExample builds the instance of Tables I-IV (tuples t1..t18). The
// returned map gives each paper tuple label ("t1".."t18") its tuple.
func PaperExample() (*relation.Dataset, map[string]*relation.Tuple) {
	d := relation.NewDataset(PaperSchemas())
	s := relation.S
	t := map[string]*relation.Tuple{}
	t["t1"] = d.MustAppend("Customers", s("c1"), s("Ford Smith"), s("(213) 243-9856"), s("1st Ave, LA"), s("clothing, makeup"))
	t["t2"] = d.MustAppend("Customers", s("c2"), s("F. Smith"), s("(213) 333-0001"), s("1st Ave, LA"), s("clothing"))
	t["t3"] = d.MustAppend("Customers", s("c3"), s("F. Smith"), s("(213) 333-0001"), s("1st Ave, LA"), s("dress"))
	t["t4"] = d.MustAppend("Customers", s("c4"), s("Tony Brown"), s("(347) 981-3452"), s("9 Ave, NY"), s("sports"))
	t["t5"] = d.MustAppend("Customers", s("c5"), s("T. Brown"), s("(347) 981-3452"), s("-"), s("sports"))
	t["t6"] = d.MustAppend("Shops", s("s1"), s("Comp. World"), s("c1"), s("FSm@g.com"), s("1st Ave, LA"))
	t["t7"] = d.MustAppend("Shops", s("s2"), s("Smith's Tech shop"), s("c2"), s("F_Sm@g.com"), s("1st Ave, LA"))
	t["t8"] = d.MustAppend("Shops", s("s3"), s("Lap. store"), s("c3"), s("jp@youp.com"), s("1st Ave, LA"))
	t["t9"] = d.MustAppend("Shops", s("s4"), s("T's Store"), s("c4"), s("T.Brown@ga.com"), s("9 Ave, NY"))
	t["t10"] = d.MustAppend("Shops", s("s5"), s("Tony's Store"), s("c5"), s("T.Brown@ga.com"), s("-"))
	t["t11"] = d.MustAppend("Products", s("p1"), s("Apple MacBook"), s("$1000"), s("Apple MacBook Air (13-inch, 8GB RAM, 256GB SSD)"))
	t["t12"] = d.MustAppend("Products", s("p2"), s("ThinkPad"), s("$2000"), s("ThinkPad X1 Carbon 7th Gen : 14-Inch, 16GB RAM, 512GB Nvme SSD"))
	t["t13"] = d.MustAppend("Products", s("p3"), s("ThinkPad"), s("$1800"), s("ThinkPad X1 Carbon 7th Gen 14\" - 16 GB RAM - 512 GB SSD"))
	t["t14"] = d.MustAppend("Products", s("p4"), s("Acer Laptop"), s("$500"), s("Acer Aspire 5 Slim Laptop, 15.6 inches, 4GB DDR4, 128GB SSD, Backlit Keyboard"))
	t["t15"] = d.MustAppend("Orders", s("o1"), s("c4"), s("s2"), s("p2"), s("156.33.14.7"))
	t["t16"] = d.MustAppend("Orders", s("o2"), s("c3"), s("s4"), s("p2"), s("113.55.126.9"))
	t["t17"] = d.MustAppend("Orders", s("o3"), s("c1"), s("s5"), s("p3"), s("113.55.126.9"))
	t["t18"] = d.MustAppend("Orders", s("o4"), s("c1"), s("s4"), s("p2"), s("143.32.11.2"))
	return d, t
}

// PaperRulesText is the MRL set Σ = {φ1..φ5} of Example 2 in the rule DSL.
// M1 (long-description similarity) is jaccard05, M2 (shop-name similarity)
// is jaccard05, M3 (abbreviated customer names) is nameabbrev and M4
// (preference similarity, validated by φ5's head) is jaccard05 — all from
// mlpred.DefaultRegistry.
const PaperRulesText = `
# φ1: same name, phone and address -> same customer.
phi1: Customers(t) ^ Customers(s) ^ t.name = s.name ^ t.phone = s.phone ^ t.addr = s.addr -> t.id = s.id

# φ2: same product name and ML-similar descriptions -> same product.
phi2: Products(p) ^ Products(q) ^ p.pname = q.pname ^ jaccard05(p.desc, q.desc) -> p.id = q.id

# φ3 (collective): same email, ML-similar shop names, owners share a phone -> same shop.
phi3: Customers(c) ^ Customers(d) ^ Shops(x) ^ Shops(y) ^ jaccard05(x.sname, y.sname) ^
      x.email = y.email ^ x.owner = c.cno ^ y.owner = d.cno ^ c.phone = d.phone -> x.id = y.id

# φ4 (deep + collective): same address, ML-similar names, and both bought the
# same product in the same shop from the same IP -> same customer.
phi4: Customers(c) ^ Customers(d) ^ Orders(o) ^ Orders(u) ^ Products(p) ^ Products(q) ^
      Shops(x) ^ Shops(y) ^ c.cno = o.buyer ^ d.cno = u.buyer ^ o.item = p.pno ^
      u.item = q.pno ^ o.seller = x.sno ^ u.seller = y.sno ^ nameabbrev(c.name, d.name) ^
      c.addr = d.addr ^ o.IP = u.IP ^ p.id = q.id ^ x.id = y.id -> c.id = d.id

# φ5: buying the same item explains an ML similar-preference prediction.
phi5: Customers(c) ^ Customers(d) ^ Orders(o) ^ Orders(u) ^ c.cno = o.buyer ^
      d.cno = u.buyer ^ o.item = u.item -> jaccard05(c.pref, d.pref)
`

// PaperRules parses and resolves Σ = {φ1..φ5} against the example schema.
func PaperRules(db *relation.Database) ([]*rule.Rule, error) {
	rules, err := rule.Parse(PaperRulesText)
	if err != nil {
		return nil, err
	}
	for _, r := range rules {
		if err := r.Resolve(db); err != nil {
			return nil, err
		}
	}
	return rules, nil
}
