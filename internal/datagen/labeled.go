package datagen

import (
	"fmt"

	"dcer/internal/relation"
)

// LabeledPair is one labeled tuple pair for ML training and evaluation.
type LabeledPair struct {
	A, B  relation.TID
	Match bool
}

// Labeled is a generated dataset with labeled pairs (positives = the
// planted duplicates, negatives = sampled non-matching pairs, including
// hard negatives sharing blocking attributes). These are the stand-ins for
// the paper's labeled benchmarks (IMDB, ACM-DBLP, Movie, Songs).
type Labeled struct {
	Generated
	LabeledPairs []LabeledPair
}

var (
	titleAdjs  = []string{"Silent", "Golden", "Broken", "Hidden", "Crimson", "Midnight", "Eternal", "Savage", "Gentle", "Burning", "Frozen", "Distant", "Electric", "Wicked", "Velvet", "Hollow"}
	titleNouns = []string{"River", "Empire", "Garden", "Shadow", "Horizon", "Kingdom", "Voyage", "Summer", "Letter", "Promise", "Station", "Harvest", "Mirror", "Island", "Thunder", "Memory"}
	firstNames = []string{"James", "Mary", "Robert", "Linda", "Michael", "Patricia", "David", "Jennifer", "William", "Elizabeth", "Richard", "Susan", "Thomas", "Jessica", "Charles", "Sarah", "Anil", "Wei", "Yuki", "Carlos"}
	lastNames  = []string{"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis", "Rodriguez", "Martinez", "Wilson", "Anderson", "Taylor", "Thomas", "Moore", "Jackson", "Kumar", "Chen", "Tanaka", "Lopez"}
	venues     = []string{"SIGMOD", "VLDB", "ICDE", "KDD", "WWW", "CIKM", "EDBT", "ICDM"}
	genres     = []string{"drama", "comedy", "thriller", "romance", "action", "horror", "sci-fi", "documentary"}
)

func (n *Noiser) title() string {
	return fmt.Sprintf("The %s %s", n.Pick(titleAdjs), n.Pick(titleNouns))
}

func (n *Noiser) person() string {
	return n.Pick(firstNames) + " " + n.Pick(lastNames)
}

// sampleNegatives appends, for each planted positive, negRatio random
// same-relation non-matching pairs.
func sampleNegatives(n *Noiser, lab *Labeled, pool []*relation.Tuple, negRatio int) {
	isDup := make(map[[2]relation.TID]bool)
	for _, p := range lab.Truth {
		a, b := p[0], p[1]
		if b < a {
			a, b = b, a
		}
		isDup[[2]relation.TID{a, b}] = true
	}
	want := len(lab.Truth) * negRatio
	for tries := 0; tries < want*20 && want > 0; tries++ {
		x := pool[n.Intn(len(pool))]
		y := pool[n.Intn(len(pool))]
		if x.GID == y.GID {
			continue
		}
		a, b := x.GID, y.GID
		if b < a {
			a, b = b, a
		}
		if isDup[[2]relation.TID{a, b}] {
			continue
		}
		lab.LabeledPairs = append(lab.LabeledPairs, LabeledPair{A: a, B: b, Match: false})
		want--
	}
	for _, p := range lab.Truth {
		lab.LabeledPairs = append(lab.LabeledPairs, LabeledPair{A: p[0], B: p[1], Match: true})
	}
}

// IMDBLike generates a single-table movie dataset (the IMDB stand-in):
// movies with typo-noised duplicate records.
func IMDBLike(numMovies int, dup float64, seed int64) *Labeled {
	str, intT := relation.TypeString, relation.TypeInt
	db := relation.MustDatabase(relation.MustSchema("movie", "mid",
		relation.Attribute{Name: "mid", Type: str},
		relation.Attribute{Name: "title", Type: str},
		relation.Attribute{Name: "year", Type: intT},
		relation.Attribute{Name: "director", Type: str},
		relation.Attribute{Name: "genre", Type: str},
	))
	d := relation.NewDataset(db)
	n := NewNoiser(seed + 3)
	lab := &Labeled{Generated: Generated{D: d, RulesText: `
im: movie(a) ^ movie(b) ^ a.year = b.year ^ jaro085(a.title, b.title) ^ lev080(a.director, b.director) -> a.id = b.id
`}}
	s, i := relation.S, relation.I
	movies := make([]*relation.Tuple, numMovies)
	for mi := 0; mi < numMovies; mi++ {
		movies[mi] = d.MustAppend("movie",
			s(fmt.Sprintf("m%d", mi)),
			s(fmt.Sprintf("%s %d", n.title(), mi)),
			i(int64(1960+mi%60)),
			s(n.person()),
			s(n.Pick(genres)))
	}
	for _, mi := range n.Perm(numMovies)[:int(dup*float64(numMovies))] {
		orig := movies[mi]
		dupT := d.MustAppend("movie",
			s(orig.Val(0).Str+"d"),
			s(n.Typo(orig.Val(1).Str, 1)),
			orig.Val(2),
			s(n.MaybeTypo(orig.Val(3).Str, 0.5)),
			orig.Val(4))
		lab.Truth = append(lab.Truth, [2]relation.TID{orig.GID, dupT.GID})
	}
	sampleNegatives(n, lab, d.Relation("movie").Tuples, 3)
	return lab
}

// DBLPLike generates a two-source bibliography (the ACM-DBLP stand-in):
// publications whose cross-source duplicates drift in venue naming, title
// typos and author abbreviation.
func DBLPLike(numPubs int, dup float64, seed int64) *Labeled {
	str, intT := relation.TypeString, relation.TypeInt
	db := relation.MustDatabase(relation.MustSchema("pub", "pid",
		relation.Attribute{Name: "pid", Type: str},
		relation.Attribute{Name: "title", Type: str},
		relation.Attribute{Name: "authors", Type: str},
		relation.Attribute{Name: "venue", Type: str},
		relation.Attribute{Name: "year", Type: intT},
	))
	d := relation.NewDataset(db)
	n := NewNoiser(seed + 7)
	lab := &Labeled{Generated: Generated{D: d, RulesText: `
db: pub(a) ^ pub(b) ^ a.year = b.year ^ jaccard05(a.title, b.title) ^ surnames06(a.authors, b.authors) -> a.id = b.id
`}}
	s, i := relation.S, relation.I
	pubs := make([]*relation.Tuple, numPubs)
	for pi := 0; pi < numPubs; pi++ {
		authors := n.person() + ", " + n.person()
		pubs[pi] = d.MustAppend("pub",
			s(fmt.Sprintf("acm%d", pi)),
			s(fmt.Sprintf("%s of %s systems %d", n.Pick(titleAdjs), n.Pick(titleNouns), pi)),
			s(authors),
			s(n.Pick(venues)),
			i(int64(1995+pi%28)))
	}
	for _, pi := range n.Perm(numPubs)[:int(dup*float64(numPubs))] {
		orig := pubs[pi]
		// Abbreviate the first author and drift the venue name.
		var abbrev string
		for k, name := range splitComma(orig.Val(2).Str) {
			if k > 0 {
				abbrev += ", "
			} else {
				name = n.Abbrev(name)
			}
			abbrev += name
		}
		dupT := d.MustAppend("pub",
			s("dblp"+orig.Val(0).Str[3:]),
			s(n.Typo(orig.Val(1).Str, 1)),
			s(abbrev),
			s(orig.Val(3).Str+" Conf."),
			orig.Val(4))
		lab.Truth = append(lab.Truth, [2]relation.TID{orig.GID, dupT.GID})
	}
	sampleNegatives(n, lab, d.Relation("pub").Tuples, 3)
	return lab
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			part := s[start:i]
			for len(part) > 0 && part[0] == ' ' {
				part = part[1:]
			}
			if part != "" {
				out = append(out, part)
			}
			start = i + 1
		}
	}
	return out
}

// MovieLike generates the 5-table, 22-attribute Movie stand-in: movies
// referencing directors and studios, with castings of actors. Duplicate
// movies reference duplicate directors, so matching them is collective and
// deep (the director entity must be resolved first).
func MovieLike(numMovies int, dup float64, seed int64) *Labeled {
	str, intT := relation.TypeString, relation.TypeInt
	a := func(nm string, t relation.Type) relation.Attribute { return relation.Attribute{Name: nm, Type: t} }
	db := relation.MustDatabase(
		relation.MustSchema("movie", "mid",
			a("mid", str), a("title", str), a("year", intT), a("runtime", intT),
			a("directorkey", str), a("studiokey", str)),
		relation.MustSchema("director", "dkey",
			a("dkey", str), a("dname", str), a("dcountry", str), a("born", intT)),
		relation.MustSchema("studio", "skey",
			a("skey", str), a("stname", str), a("city", str), a("founded", intT)),
		relation.MustSchema("actor", "akey",
			a("akey", str), a("aname", str), a("acountry", str)),
		relation.MustSchema("casting", "castkey",
			a("castkey", str), a("movkey", str), a("actkey", str), a("role", str), a("billing", intT)),
	)
	d := relation.NewDataset(db)
	n := NewNoiser(seed + 11)
	lab := &Labeled{Generated: Generated{D: d, RulesText: `
mvd: director(x) ^ director(y) ^ x.dcountry = y.dcountry ^ x.born = y.born ^ lev080(x.dname, y.dname) -> x.id = y.id
mvm: movie(a) ^ movie(b) ^ director(x) ^ director(y) ^ a.directorkey = x.dkey ^
     b.directorkey = y.dkey ^ x.id = y.id ^ a.year = b.year ^ jaro085(a.title, b.title) -> a.id = b.id
`}}
	s, i := relation.S, relation.I
	countries := []string{"USA", "UK", "France", "Japan", "India", "Italy", "Korea", "Mexico"}
	numDirectors := numMovies/4 + 1
	directors := make([]*relation.Tuple, numDirectors)
	for di := 0; di < numDirectors; di++ {
		directors[di] = d.MustAppend("director",
			s(fmt.Sprintf("d%d", di)), s(fmt.Sprintf("%s %d", n.person(), di)),
			s(countries[di%len(countries)]), i(int64(1920+di%70)))
	}
	numStudios := 20
	for si := 0; si < numStudios; si++ {
		d.MustAppend("studio",
			s(fmt.Sprintf("s%d", si)), s(fmt.Sprintf("Studio %s", n.Pick(titleNouns))),
			s("Hollywood"), i(int64(1910+si*5)))
	}
	numActors := numMovies / 2
	for ai := 0; ai < numActors; ai++ {
		d.MustAppend("actor", s(fmt.Sprintf("a%d", ai)), s(n.person()), s(countries[ai%len(countries)]))
	}
	movies := make([]*relation.Tuple, numMovies)
	castCount := 0
	for mi := 0; mi < numMovies; mi++ {
		di := mi % numDirectors
		movies[mi] = d.MustAppend("movie",
			s(fmt.Sprintf("m%d", mi)),
			s(fmt.Sprintf("%s %d", n.title(), mi)),
			i(int64(1960+mi%60)),
			i(int64(80+mi%80)),
			s(fmt.Sprintf("d%d", di)),
			s(fmt.Sprintf("s%d", mi%numStudios)))
		for k := 0; k < 2 && numActors > 0; k++ {
			d.MustAppend("casting",
				s(fmt.Sprintf("c%d", castCount)),
				s(fmt.Sprintf("m%d", mi)),
				s(fmt.Sprintf("a%d", n.Intn(numActors))),
				s([]string{"lead", "support"}[k%2]),
				i(int64(k+1)))
			castCount++
		}
	}
	dupDirOf := make(map[int]string)
	dupDirFor := func(di int) string {
		if dk, ok := dupDirOf[di]; ok {
			return dk
		}
		orig := directors[di]
		dk := orig.Val(0).Str + "d"
		dupT := d.MustAppend("director",
			s(dk), s(n.Typo(orig.Val(1).Str, 1)), orig.Val(2), orig.Val(3))
		lab.Truth = append(lab.Truth, [2]relation.TID{orig.GID, dupT.GID})
		dupDirOf[di] = dk
		return dk
	}
	for _, mi := range n.Perm(numMovies)[:int(dup*float64(numMovies))] {
		orig := movies[mi]
		dupT := d.MustAppend("movie",
			s(orig.Val(0).Str+"d"),
			s(n.Typo(orig.Val(1).Str, 1)),
			orig.Val(2),
			orig.Val(3),
			s(dupDirFor(mi%numDirectors)),
			orig.Val(5))
		lab.Truth = append(lab.Truth, [2]relation.TID{orig.GID, dupT.GID})
	}
	sampleNegatives(n, lab, d.Relation("movie").Tuples, 3)
	return lab
}

// SongsLike generates the single-table Songs stand-in (8 attributes).
func SongsLike(numSongs int, dup float64, seed int64) *Labeled {
	str, intT := relation.TypeString, relation.TypeInt
	a := func(nm string, t relation.Type) relation.Attribute { return relation.Attribute{Name: nm, Type: t} }
	db := relation.MustDatabase(relation.MustSchema("song", "sid",
		a("sid", str), a("title", str), a("artist", str), a("album", str),
		a("year", intT), a("duration", intT), a("genre", str), a("label", str)))
	d := relation.NewDataset(db)
	n := NewNoiser(seed + 13)
	lab := &Labeled{Generated: Generated{D: d, RulesText: `
sg: song(a) ^ song(b) ^ a.year = b.year ^ a.duration = b.duration ^ jaro085(a.title, b.title) ^ lev080(a.artist, b.artist) -> a.id = b.id
`}}
	s, i := relation.S, relation.I
	songs := make([]*relation.Tuple, numSongs)
	for si := 0; si < numSongs; si++ {
		songs[si] = d.MustAppend("song",
			s(fmt.Sprintf("s%d", si)),
			s(fmt.Sprintf("%s %s song %d", n.Pick(titleAdjs), n.Pick(titleNouns), si)),
			s(n.person()),
			s(fmt.Sprintf("Album %s", n.Pick(titleNouns))),
			i(int64(1970+si%54)),
			i(int64(120+n.Intn(300))),
			s(n.Pick(genres)),
			s(fmt.Sprintf("Label%d", si%12)))
	}
	for _, si := range n.Perm(numSongs)[:int(dup*float64(numSongs))] {
		orig := songs[si]
		dupT := d.MustAppend("song",
			s(orig.Val(0).Str+"d"),
			s(n.Typo(orig.Val(1).Str, 1)),
			s(n.MaybeTypo(orig.Val(2).Str, 0.5)),
			s(n.Drift(orig.Val(3).Str)),
			orig.Val(4),
			orig.Val(5),
			orig.Val(6),
			orig.Val(7))
		lab.Truth = append(lab.Truth, [2]relation.TID{orig.GID, dupT.GID})
	}
	sampleNegatives(n, lab, d.Relation("song").Tuples, 3)
	return lab
}
