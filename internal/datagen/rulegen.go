package datagen

import (
	"fmt"
	"strings"
)

// tpchCustomerPreds is the predicate pool for the |φ|-sweep rules over
// TPC-H customers, ordered so that the first predicate is selective (the
// join stays cheap) and later ones add checking work — in particular ML
// predicates, which dominate cost exactly as larger MRLs do in Fig 6(e).
var tpchCustomerPreds = []string{
	"c.cphone = d.cphone",
	"c.nationkey = d.nationkey",
	"c.mktsegment = d.mktsegment",
	"jaro085(c.cname, d.cname)",
	"embed080(c.caddress, d.caddress)",
	"jaccard05(c.ccomment, d.ccomment)",
	"lev080(c.caddress, d.caddress)",
	"embed090(c.cname, d.cname)",
	"cosine07(c.ccomment, d.ccomment)",
	"c.cacctbal = d.cacctbal",
}

// TPCHWidthRules builds `count` MRLs over TPC-H customers, each with
// `width` body predicates (2 ≤ width ≤ 10), for the Fig 6(e) sweep of the
// average number of predicates per rule. Rules differ in a constant
// mktsegment selector so the set is not degenerate.
func TPCHWidthRules(width, count int) string {
	if width < 1 {
		width = 1
	}
	if width > len(tpchCustomerPreds) {
		width = len(tpchCustomerPreds)
	}
	var b strings.Builder
	for i := 0; i < count; i++ {
		preds := append([]string(nil), tpchCustomerPreds[:width]...)
		// Rotate the tail predicates so rules share a selective prefix but
		// are not identical.
		if width > 2 {
			rot := i % (width - 1)
			tail := append(append([]string(nil), preds[1+rot:]...), preds[1:1+rot]...)
			preds = append(preds[:1], tail...)
		}
		fmt.Fprintf(&b, "w%d_%d: customer(c) ^ customer(d) ^ %s ^ c.mktsegment = %q -> c.id = d.id\n",
			width, i, strings.Join(preds, " ^ "), tpchSegments[i%len(tpchSegments)])
	}
	return b.String()
}

// TPCHManyRules returns the first m rules of a deterministic ~80-rule set:
// the six base TPC-H rules followed by constant-specialized variants
// (per market segment, order priority, container, ...), for the Fig 6(g)
// sweep of ‖Σ‖. The variants share most predicates with their base rule,
// which is exactly the sharing MQO exploits.
func TPCHManyRules(m int) string {
	var rules []string
	base := strings.Split(strings.TrimSpace(TPCHRulesText), "\n")
	var current []string
	for _, line := range base {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		current = append(current, line)
		if strings.Contains(line, "->") {
			rules = append(rules, strings.Join(current, " "))
			current = nil
		}
	}
	variant := func(baseRule, name, extra string) string {
		r := rules[0]
		for _, br := range rules {
			if strings.HasPrefix(br, baseRule+":") {
				r = br
				break
			}
		}
		body, head, _ := strings.Cut(r, "->")
		_, body, _ = strings.Cut(body, ":")
		return fmt.Sprintf("%s: %s ^ %s -> %s", name, strings.TrimSpace(body), extra, strings.TrimSpace(head))
	}
	for i, seg := range tpchSegments {
		rules = append(rules, variant("tc", fmt.Sprintf("tcv%d", i), fmt.Sprintf("c.mktsegment = %q", seg)))
	}
	for i, pr := range tpchPriority {
		rules = append(rules, variant("to", fmt.Sprintf("tov%d", i), fmt.Sprintf("o.orderpriority = %q", pr)))
	}
	for i, cont := range tpchContainer {
		rules = append(rules, variant("tp", fmt.Sprintf("tpv%d", i), fmt.Sprintf("p.container = %q", cont)))
	}
	for i, ty := range tpchTypes {
		rules = append(rules, variant("tp", fmt.Sprintf("tpt%d", i), fmt.Sprintf("p.ptype = %q", ty)))
	}
	for i := 0; i < 25; i++ {
		rules = append(rules, variant("ts", fmt.Sprintf("tsv%d", i), fmt.Sprintf("s.nationkey = \"N%d\"", i)))
	}
	for i := 0; i < 5; i++ {
		rules = append(rules, variant("tn", fmt.Sprintf("tnv%d", i), fmt.Sprintf("n.regionkey = \"R%d\"", i)))
	}
	for i := 0; i < 5; i++ {
		rules = append(rules, variant("tl", fmt.Sprintf("tlv%d", i), fmt.Sprintf("l.linenumber = %d", i+1)))
	}
	for i := 0; i < 25; i++ {
		rules = append(rules, variant("tc", fmt.Sprintf("tcn%d", i), fmt.Sprintf("c.nationkey = \"N%d\"", i)))
	}
	if m > len(rules) {
		m = len(rules)
	}
	return strings.Join(rules[:m], "\n") + "\n"
}

// TFACCWidthRules is the TFACC analogue of TPCHWidthRules (Fig 6(f)).
func TFACCWidthRules(width, count int) string {
	pool := []string{
		"v.vin = w.vin",
		"v.modelkey = w.modelkey",
		"v.year = w.year",
		"v.colorkey = w.colorkey",
		"lev080(v.reg, w.reg)",
		"embed080(v.vin, w.vin)",
		"v.fuelkey = w.fuelkey",
		"v.engsize = w.engsize",
	}
	if width < 1 {
		width = 1
	}
	if width > len(pool) {
		width = len(pool)
	}
	var b strings.Builder
	for i := 0; i < count; i++ {
		preds := append([]string(nil), pool[:width]...)
		if width > 2 {
			rot := i % (width - 1)
			tail := append(append([]string(nil), preds[1+rot:]...), preds[1:1+rot]...)
			preds = append(preds[:1], tail...)
		}
		fmt.Fprintf(&b, "vw%d_%d: vehicle(v) ^ vehicle(w) ^ %s ^ v.fuelkey = \"FU%d\" -> v.id = w.id\n",
			width, i, strings.Join(preds, " ^ "), i%5)
	}
	return b.String()
}

// TFACCManyRules returns the first m of ~35 TFACC rules: the five base
// rules plus constant-specialized variants (Fig 6(h)).
func TFACCManyRules(m int) string {
	var rules []string
	for _, line := range strings.Split(strings.TrimSpace(TFACCRulesText), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rules = append(rules, line)
	}
	// The base TFACC rules span multiple lines; re-join them.
	var joined []string
	var cur []string
	for _, line := range rules {
		cur = append(cur, line)
		if strings.Contains(line, "->") {
			joined = append(joined, strings.Join(cur, " "))
			cur = nil
		}
	}
	rules = joined
	variant := func(baseRule, name, extra string) string {
		r := rules[0]
		for _, br := range rules {
			if strings.HasPrefix(br, baseRule+":") {
				r = br
				break
			}
		}
		body, head, _ := strings.Cut(r, "->")
		_, body, _ = strings.Cut(body, ":")
		return fmt.Sprintf("%s: %s ^ %s -> %s", name, strings.TrimSpace(body), extra, strings.TrimSpace(head))
	}
	for i := 0; i < 12; i++ {
		rules = append(rules, variant("fs", fmt.Sprintf("fsv%d", i), fmt.Sprintf("s.regionkey = \"RG%d\"", i)))
	}
	for i := 0; i < 5; i++ {
		rules = append(rules, variant("fv", fmt.Sprintf("fvv%d", i), fmt.Sprintf("v.fuelkey = \"FU%d\"", i)))
	}
	for i := 0; i < 15; i++ {
		rules = append(rules, variant("fv", fmt.Sprintf("fvc%d", i), fmt.Sprintf("v.colorkey = \"CL%d\"", i)))
	}
	if m > len(rules) {
		m = len(rules)
	}
	return strings.Join(rules[:m], "\n") + "\n"
}
