package datagen

import (
	"fmt"

	"dcer/internal/relation"
)

// TFACCOptions configures the TFACC-shaped generator: a vehicle-inspection
// database modeled on the UK MOT open data the paper uses. Like the real
// TFACC it has 19 tables and 113 attributes (the real one holds 480M+
// tuples; this stand-in keeps the full multi-table reference structure —
// dimension tables, owners, vehicles, tests, per-test items, advisories,
// policies — at laptop scale).
type TFACCOptions struct {
	Scale float64
	Dup   float64
	Seed  int64
}

// TFACCSchemas returns the 19-relation, 113-attribute vehicle-inspection
// schema.
func TFACCSchemas() *relation.Database {
	str := relation.TypeString
	intT := relation.TypeInt
	fl := relation.TypeFloat
	a := func(n string, t relation.Type) relation.Attribute { return relation.Attribute{Name: n, Type: t} }
	return relation.MustDatabase(
		relation.MustSchema("region", "regionkey",
			a("regionkey", str), a("rname", str), a("population", intT)), // 3
		relation.MustSchema("postcodearea", "pakey",
			a("pakey", str), a("district", str), a("town", str), a("county", str)), // 4
		relation.MustSchema("make", "makekey",
			a("makekey", str), a("makename", str), a("country", str), a("founded", intT)), // 4
		relation.MustSchema("model", "modelkey",
			a("modelkey", str), a("modelname", str), a("makekey", str), a("bodytype", str),
			a("engcc", intT), a("trim", str)), // 6
		relation.MustSchema("color", "colorkey",
			a("colorkey", str), a("cname", str), a("code", str)), // 3
		relation.MustSchema("fueltype", "fuelkey",
			a("fuelkey", str), a("fname", str), a("co2class", str)), // 3
		relation.MustSchema("defect", "defectkey",
			a("defectkey", str), a("dname", str), a("category", str), a("rectifiable", str)), // 4
		relation.MustSchema("testtype", "ttkey",
			a("ttkey", str), a("ttname", str), a("fee", fl), a("duration", intT)), // 4
		relation.MustSchema("insurer", "inskey",
			a("inskey", str), a("iname", str), a("rating", str), a("insphone", str)), // 4
		relation.MustSchema("station", "stationkey",
			a("stationkey", str), a("sname", str), a("regionkey", str), a("sphone", str),
			a("capacity", intT), a("saddr", str), a("opened", intT), a("pakey", str)), // 8
		relation.MustSchema("tester", "testerkey",
			a("testerkey", str), a("tname", str), a("tstation", str), a("cert", str),
			a("since", intT), a("grade", str)), // 6
		relation.MustSchema("equipment", "eqkey",
			a("eqkey", str), a("eqname", str), a("eqstation", str), a("installed", intT),
			a("calibrated", str), a("serial", str)), // 6
		relation.MustSchema("owner", "ownerkey",
			a("ownerkey", str), a("oname", str), a("postcode", str), a("ophone", str),
			a("email", str), a("dob", str), a("title", str)), // 7
		relation.MustSchema("vehicle", "vehid",
			a("vehid", str), a("reg", str), a("vin", str), a("modelkey", str),
			a("colorkey", str), a("fuelkey", str), a("year", intT), a("engsize", intT),
			a("ownerkey", str), a("weight", intT), a("doors", intT), a("seats", intT),
			a("imported", str), a("firstreg", str)), // 14
		relation.MustSchema("policy", "polkey",
			a("polkey", str), a("pvehid", str), a("pinskey", str), a("pstart", str),
			a("expiry", str), a("premium", fl), a("excess", fl)), // 7
		relation.MustSchema("mottest", "testid",
			a("testid", str), a("vehid", str), a("stationkey", str), a("testdate", str),
			a("result", str), a("mileage", intT), a("testclass", str), a("certno", str),
			a("retest", str), a("odounit", str), a("testerkey", str)), // 11
		relation.MustSchema("testitem", "itemid",
			a("itemid", str), a("testid", str), a("defectkey", str), a("severity", str),
			a("notes", str), a("location", str), a("dangerous", str)), // 7
		relation.MustSchema("advisory", "advkey",
			a("advkey", str), a("atestid", str), a("advtext", str), a("aseverity", str),
			a("noted", str)), // 5
		relation.MustSchema("repair", "repkey",
			a("repkey", str), a("rvehid", str), a("rdefect", str), a("repairdate", str),
			a("cost", fl), a("garage", str), a("mechanic", str)), // 7
	) // 3+4+4+6+3+3+4+4+4+8+6+6+7+14+7+11+7+5+7 = 113 attributes, 19 tables
}

// TFACCRulesText is the MRL set for the TFACC experiments: deep chains
// model → vehicle → {owner, policy, mottest → {testitem, advisory}}, plus
// a station rule. The deepest facts need four rounds of recursion.
const TFACCRulesText = `
# Models of the same make with typo-similar names.
fm: model(m) ^ model(n) ^ m.makekey = n.makekey ^ lev080(m.modelname, n.modelname) -> m.id = n.id

# Stations in the same region sharing a phone number, ML-similar names.
fs: station(s) ^ station(u) ^ s.regionkey = u.regionkey ^ s.sphone = u.sphone ^ jaro085(s.sname, u.sname) -> s.id = u.id

# Vehicles (deep+collective): matched models, same year, similar VINs.
fv: vehicle(v) ^ vehicle(w) ^ model(m) ^ model(n) ^ v.modelkey = m.modelkey ^
    w.modelkey = n.modelkey ^ m.id = n.id ^ v.year = w.year ^ lev080(v.vin, w.vin) -> v.id = w.id

# Owners (deep+collective): same postcode, abbreviation-similar names, and
# they own the same (resolved) vehicle.
fo: owner(o) ^ owner(p) ^ vehicle(v) ^ vehicle(w) ^ v.ownerkey = o.ownerkey ^
    w.ownerkey = p.ownerkey ^ v.id = w.id ^ o.postcode = p.postcode ^
    nameabbrev(o.oname, p.oname) -> o.id = p.id

# Policies (deep+collective): same insurer and expiry on a matched vehicle.
fp: policy(a) ^ policy(b) ^ vehicle(v) ^ vehicle(w) ^ a.pvehid = v.vehid ^
    b.pvehid = w.vehid ^ v.id = w.id ^ a.pinskey = b.pinskey ^ a.expiry = b.expiry -> a.id = b.id

# MOT tests (deep+collective, 6 tuple variables like the paper's φ_b):
# tests of matched vehicles at matched stations on the same date and mileage.
ft: mottest(t) ^ mottest(u) ^ vehicle(v) ^ vehicle(w) ^ station(x) ^ station(y) ^
    t.vehid = v.vehid ^ u.vehid = w.vehid ^ v.id = w.id ^ t.stationkey = x.stationkey ^
    u.stationkey = y.stationkey ^ x.id = y.id ^ t.testdate = u.testdate ^ t.mileage = u.mileage -> t.id = u.id

# Test items (deep): items of matched tests with the same defect.
fi: testitem(i) ^ testitem(j) ^ mottest(t) ^ mottest(u) ^ i.testid = t.testid ^
    j.testid = u.testid ^ t.id = u.id ^ i.defectkey = j.defectkey -> i.id = j.id

# Advisories (deep): advisories of matched tests with similar texts.
fa: advisory(x) ^ advisory(y) ^ mottest(t) ^ mottest(u) ^ x.atestid = t.testid ^
    y.atestid = u.testid ^ t.id = u.id ^ jaccard05(x.advtext, y.advtext) -> x.id = y.id
`

var (
	tfaccMakes  = []string{"FORD", "VAUXHALL", "VOLKSWAGEN", "BMW", "TOYOTA", "HONDA", "NISSAN", "PEUGEOT", "RENAULT", "MERCEDES", "AUDI", "SKODA", "KIA", "HYUNDAI", "FIAT", "MAZDA", "VOLVO", "CITROEN", "SEAT", "MINI"}
	tfaccModels = []string{"FIESTA", "FOCUS", "CORSA", "ASTRA", "GOLF", "POLO", "CIVIC", "COROLLA", "QASHQAI", "CLIO", "MEGANE", "OCTAVIA", "FABIA", "SPORTAGE", "TUCSON", "PANDA", "PUNTO", "TRANSIT", "DISCOVERY", "DEFENDER"}
	tfaccColors = []string{"BLACK", "WHITE", "SILVER", "BLUE", "RED", "GREY", "GREEN", "YELLOW", "ORANGE", "BROWN", "PURPLE", "GOLD", "BEIGE", "MAROON", "TURQUOISE"}
	tfaccFuels  = []string{"PETROL", "DIESEL", "ELECTRIC", "HYBRID", "LPG"}
	tfaccDefect = []string{"brake pad worn", "headlamp aim", "tyre tread depth", "exhaust leak", "suspension arm", "windscreen chip", "seat belt anchor", "steering play", "horn inoperative", "corrosion sill"}
	tfaccAdvice = []string{"tyre wearing close to legal limit", "slight oil leak at sump", "brake disc slightly pitted", "wiper blade smearing", "minor exhaust corrosion", "bulb holder loose", "play in track rod end", "undertray insecure"}
)

// TFACC generates the vehicle-inspection dataset with planted deep
// duplicate chains (model → vehicle → {owner, policy, mottest →
// {testitem, advisory}}) plus station duplicates.
func TFACC(opts TFACCOptions) *Generated {
	if opts.Scale <= 0 {
		opts.Scale = 0.1
	}
	n := NewNoiser(opts.Seed + 41)
	d := relation.NewDataset(TFACCSchemas())
	g := &Generated{D: d, RulesText: TFACCRulesText}
	s, i, f := relation.S, relation.I, relation.F
	scale := func(base int) int {
		v := int(float64(base) * opts.Scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	numStation := scale(150)
	numVehicle := scale(2500)
	numTest := scale(5000)
	numOwner := numVehicle/2 + 1

	// Dimension tables.
	for ri := 0; ri < 12; ri++ {
		d.MustAppend("region", s(fmt.Sprintf("RG%d", ri)), s(fmt.Sprintf("Region %d", ri)), i(int64(100000*(ri+1))))
	}
	for pi := 0; pi < 40; pi++ {
		d.MustAppend("postcodearea",
			s(fmt.Sprintf("PA%d", pi)), s(fmt.Sprintf("District %d", pi)),
			s(fmt.Sprintf("Town %s", n.Pick(tpchNouns))), s(fmt.Sprintf("County %d", pi%8)))
	}
	for mi, mn := range tfaccMakes {
		d.MustAppend("make", s(fmt.Sprintf("MK%d", mi)), s(mn), s("UK"), i(int64(1900+mi*3)))
	}
	numModel := 150
	variants := []string{"Sportline", "Estate", "Cabriolet", "Touring", "Signature", "Hybrid", "Classic", "Urbanline"}
	models := make([]*relation.Tuple, numModel)
	for mi := 0; mi < numModel; mi++ {
		models[mi] = d.MustAppend("model",
			s(fmt.Sprintf("MD%d", mi)),
			s(fmt.Sprintf("%s %s", tfaccModels[mi%len(tfaccModels)], variants[mi/len(tfaccModels)%len(variants)])),
			s(fmt.Sprintf("MK%d", mi%len(tfaccMakes))),
			s([]string{"HATCHBACK", "SALOON", "ESTATE", "SUV", "VAN"}[mi%5]),
			i(int64(1000+(mi%15)*200)),
			s([]string{"Base", "SE", "Sport", "Luxury"}[mi%4]))
	}
	for ci, cn := range tfaccColors {
		d.MustAppend("color", s(fmt.Sprintf("CL%d", ci)), s(cn), s(fmt.Sprintf("#%06x", ci*111111)))
	}
	for fi, fn := range tfaccFuels {
		d.MustAppend("fueltype", s(fmt.Sprintf("FU%d", fi)), s(fn), s([]string{"A", "B", "C"}[fi%3]))
	}
	numDefect := 50
	for di := 0; di < numDefect; di++ {
		d.MustAppend("defect",
			s(fmt.Sprintf("DF%d", di)),
			s(fmt.Sprintf("%s grade %d", tfaccDefect[di%len(tfaccDefect)], di/len(tfaccDefect)+1)),
			s([]string{"BRAKES", "LIGHTS", "TYRES", "BODY", "STEERING"}[di%5]),
			s([]string{"yes", "no"}[di%2]))
	}
	for ti := 0; ti < 4; ti++ {
		d.MustAppend("testtype",
			s(fmt.Sprintf("TT%d", ti)), s([]string{"Class 4", "Class 5", "Class 7", "Retest"}[ti]),
			f(54.85-float64(ti)*5), i(int64(45+ti*10)))
	}
	numInsurer := 8
	for ii := 0; ii < numInsurer; ii++ {
		d.MustAppend("insurer",
			s(fmt.Sprintf("INS%d", ii)), s(fmt.Sprintf("Insurer %s", n.Pick(tpchAdjies))),
			s([]string{"A", "A-", "B+", "B"}[ii%4]), s(fmt.Sprintf("0800 %06d", 100000+ii)))
	}
	stations := make([]*relation.Tuple, numStation)
	for si := 0; si < numStation; si++ {
		stations[si] = d.MustAppend("station",
			s(fmt.Sprintf("ST%d", si)),
			s(fmt.Sprintf("Garage %s %s %d", n.Pick(tpchAdjies), n.Pick(tpchNouns), si)),
			s(fmt.Sprintf("RG%d", si%12)),
			s(fmt.Sprintf("01%03d %06d", si%999, 100000+si)),
			i(int64(2+si%8)),
			s(fmt.Sprintf("%d Station Road", si)),
			i(int64(1970+si%50)),
			s(fmt.Sprintf("PA%d", si%40)))
	}
	for ti := 0; ti < numStation*2; ti++ {
		d.MustAppend("tester",
			s(fmt.Sprintf("TS%d", ti)), s(fmt.Sprintf("%s %s", n.Pick(firstNames), n.Pick(lastNames))),
			s(fmt.Sprintf("ST%d", ti%numStation)), s(fmt.Sprintf("CERT%05d", ti)),
			i(int64(2005+ti%18)), s([]string{"I", "II", "III"}[ti%3]))
	}
	for ei := 0; ei < numStation; ei++ {
		d.MustAppend("equipment",
			s(fmt.Sprintf("EQ%d", ei)), s([]string{"brake roller", "emissions analyser", "headlamp aligner", "play detector"}[ei%4]),
			s(fmt.Sprintf("ST%d", ei%numStation)), i(int64(2010+ei%12)),
			s(fmt.Sprintf("2023-%02d-01", ei%12+1)), s(fmt.Sprintf("SER%07d", ei)))
	}

	// Owners and vehicles.
	owners := make([]*relation.Tuple, numOwner)
	for oi := 0; oi < numOwner; oi++ {
		owners[oi] = d.MustAppend("owner",
			s(fmt.Sprintf("OW%d", oi)),
			s(fmt.Sprintf("%s %s %d", n.Pick(firstNames), n.Pick(lastNames), oi)),
			s(fmt.Sprintf("PC%d %dXY", oi%400, oi%9+1)),
			s(fmt.Sprintf("07%09d", 100000000+oi)),
			s(fmt.Sprintf("owner%d@mail.uk", oi)),
			s(fmt.Sprintf("19%02d-0%d-1%d", 50+oi%45, oi%9+1, oi%9)),
			s([]string{"Mr", "Ms", "Dr", "Mx"}[oi%4]))
	}
	vehicles := make([]*relation.Tuple, numVehicle)
	for vi := 0; vi < numVehicle; vi++ {
		vehicles[vi] = d.MustAppend("vehicle",
			s(fmt.Sprintf("V%d", vi)),
			s(fmt.Sprintf("AB%02d XYZ", vi%100)),
			s(fmt.Sprintf("VIN%06dKLMNOPQ%03d", vi, vi%997)),
			s(fmt.Sprintf("MD%d", vi%numModel)),
			s(fmt.Sprintf("CL%d", vi%len(tfaccColors))),
			s(fmt.Sprintf("FU%d", vi%len(tfaccFuels))),
			i(int64(2000+vi%22)),
			i(int64(1000+(vi%30)*100)),
			s(fmt.Sprintf("OW%d", vi%numOwner)),
			i(int64(900+(vi%40)*25)),
			i(int64(3+vi%3)),
			i(int64(2+vi%6)),
			s([]string{"no", "yes"}[vi%10/9]),
			s(fmt.Sprintf("%d-03-01", 2000+vi%22)))
	}
	policies := make([]*relation.Tuple, numVehicle)
	for vi := 0; vi < numVehicle; vi++ {
		policies[vi] = d.MustAppend("policy",
			s(fmt.Sprintf("PL%d", vi)),
			s(fmt.Sprintf("V%d", vi)),
			s(fmt.Sprintf("INS%d", vi%numInsurer)),
			s(fmt.Sprintf("2023-%02d-01", vi%12+1)),
			s(fmt.Sprintf("2024-%02d-%02d", vi%12+1, vi%28+1)),
			f(300+float64(vi%700)),
			f(float64(100+(vi%5)*50)))
	}

	// Tests, items and advisories.
	type testChain struct {
		test     *relation.Tuple
		veh      int
		items    []*relation.Tuple
		advisory *relation.Tuple
	}
	dates := make([]string, 60)
	for di := range dates {
		dates[di] = fmt.Sprintf("2019-%02d-%02d", di%12+1, di%28+1)
	}
	chains := make([]testChain, numTest)
	usedCombo := make(map[string]bool)
	itemCount, advCount := 0, 0
	for ti := 0; ti < numTest; ti++ {
		veh := n.Intn(numVehicle)
		var date string
		var mileage int64
		for {
			date = dates[n.Intn(len(dates))]
			mileage = int64(10000 + n.Intn(150)*371)
			key := fmt.Sprintf("%d|%s|%d", veh, date, mileage)
			if !usedCombo[key] {
				usedCombo[key] = true
				break
			}
		}
		t := d.MustAppend("mottest",
			s(fmt.Sprintf("T%d", ti)),
			s(fmt.Sprintf("V%d", veh)),
			s(fmt.Sprintf("ST%d", n.Intn(numStation))),
			s(date),
			s([]string{"PASS", "FAIL", "PRS"}[n.Intn(3)]),
			i(mileage),
			s("4"),
			s(fmt.Sprintf("CRT%08d", ti)),
			s([]string{"no", "yes"}[n.Intn(10)/9]),
			s("mi"),
			s(fmt.Sprintf("TS%d", n.Intn(numStation*2))))
		ni := n.Intn(3)
		var items []*relation.Tuple
		usedDefect := make(map[int]bool)
		for k := 0; k < ni; k++ {
			df := n.Intn(numDefect)
			for usedDefect[df] {
				df = (df + 1) % numDefect
			}
			usedDefect[df] = true
			it := d.MustAppend("testitem",
				s(fmt.Sprintf("I%d", itemCount)),
				s(fmt.Sprintf("T%d", ti)),
				s(fmt.Sprintf("DF%d", df)),
				s([]string{"MINOR", "MAJOR", "DANGEROUS"}[n.Intn(3)]),
				s("item notes"),
				s([]string{"nearside front", "offside rear", "centre"}[n.Intn(3)]),
				s([]string{"no", "yes"}[n.Intn(10)/9]))
			items = append(items, it)
			itemCount++
		}
		var adv *relation.Tuple
		if n.Intn(2) == 0 {
			adv = d.MustAppend("advisory",
				s(fmt.Sprintf("AD%d", advCount)),
				s(fmt.Sprintf("T%d", ti)),
				s(n.Pick(tfaccAdvice)),
				s([]string{"advisory", "minor"}[n.Intn(2)]),
				s(date))
			advCount++
		}
		chains[ti] = testChain{test: t, veh: veh, items: items, advisory: adv}
	}
	// Repairs reference vehicles and defects (dimension-style facts).
	for ri := 0; ri < numTest/4; ri++ {
		d.MustAppend("repair",
			s(fmt.Sprintf("RP%d", ri)),
			s(fmt.Sprintf("V%d", n.Intn(numVehicle))),
			s(fmt.Sprintf("DF%d", n.Intn(numDefect))),
			s(dates[n.Intn(len(dates))]),
			f(50+float64(n.Intn(500))),
			s(fmt.Sprintf("Garage %d", n.Intn(numStation))),
			s(fmt.Sprintf("%s %s", n.Pick(firstNames), n.Pick(lastNames))))
	}

	// Duplicate injection: deep chains.
	truth := func(orig, dup *relation.Tuple) { g.Truth = append(g.Truth, [2]relation.TID{orig.GID, dup.GID}) }
	dupCounter := 0
	freshKey := func() string {
		dupCounter++
		return fmt.Sprintf("X%d", 1000+dupCounter*3)
	}

	dupModelOf := make(map[string]string)
	dupModelFor := func(mk string) string {
		if dk, ok := dupModelOf[mk]; ok {
			return dk
		}
		var orig *relation.Tuple
		for _, mt := range models {
			if mt.Val(0).Str == mk {
				orig = mt
				break
			}
		}
		dk := freshKey()
		dup := d.MustAppend("model",
			s(dk), s(n.Typo(orig.Val(1).Str, 1)), orig.Val(2), orig.Val(3),
			orig.Val(4), orig.Val(5))
		truth(orig, dup)
		dupModelOf[mk] = dk
		return dk
	}
	dupOwnerOf := make(map[string]string)
	dupOwnerFor := func(ok string) string {
		if dk, exists := dupOwnerOf[ok]; exists {
			return dk
		}
		var orig *relation.Tuple
		for _, ot := range owners {
			if ot.Val(0).Str == ok {
				orig = ot
				break
			}
		}
		dk := freshKey()
		dup := d.MustAppend("owner",
			s(dk), s(n.Abbrev(orig.Val(1).Str)), orig.Val(2),
			s(fmt.Sprintf("07%09d", 900000000+dupCounter)),
			s(n.Drift(orig.Val(4).Str)), orig.Val(5), orig.Val(6))
		truth(orig, dup)
		dupOwnerOf[ok] = dk
		return dk
	}
	dupVehOf := make(map[int]string)
	dupVehFor := func(vi int) string {
		if vk, ok := dupVehOf[vi]; ok {
			return vk
		}
		orig := vehicles[vi]
		vk := freshKey()
		year := orig.Val(6)
		if n.Float64() < 0.08 {
			// Hard case: wrong first-registration year; the chain costs
			// recall like the residual errors in the paper's Table VI.
			year = relation.I(year.Int() + 1)
		}
		dup := d.MustAppend("vehicle",
			s(vk),
			s(n.Drift(orig.Val(1).Str)),
			s(n.Typo(orig.Val(2).Str, 1)),
			s(dupModelFor(orig.Val(3).Str)),
			orig.Val(4), orig.Val(5), year, orig.Val(7),
			s(dupOwnerFor(orig.Val(8).Str)),
			orig.Val(9), orig.Val(10), orig.Val(11), orig.Val(12), orig.Val(13))
		truth(orig, dup)
		// The duplicate registration carries its own policy record with
		// the same insurer and expiry.
		origPol := policies[vi]
		dupPol := d.MustAppend("policy",
			s(freshKey()), s(vk), origPol.Val(2), origPol.Val(3),
			origPol.Val(4), origPol.Val(5), origPol.Val(6))
		truth(origPol, dupPol)
		dupVehOf[vi] = vk
		return vk
	}

	numDupTests := int(opts.Dup * float64(numTest))
	for _, ti := range n.Perm(numTest)[:numDupTests] {
		ch := chains[ti]
		dv := dupVehFor(ch.veh)
		tk := freshKey()
		mileage := ch.test.Val(5)
		if n.Float64() < 0.08 {
			// Hard case: mis-keyed odometer reading.
			mileage = relation.I(mileage.Int() + 3)
		}
		dupTest := d.MustAppend("mottest",
			s(tk), s(dv), ch.test.Val(2), ch.test.Val(3), ch.test.Val(4),
			mileage, ch.test.Val(6), s(fmt.Sprintf("CRT9%07d", dupCounter)),
			ch.test.Val(8), ch.test.Val(9), ch.test.Val(10))
		truth(ch.test, dupTest)
		for _, it := range ch.items {
			dupItem := d.MustAppend("testitem",
				s(freshKey()), s(tk), it.Val(2), it.Val(3), s("dup item"),
				it.Val(5), it.Val(6))
			truth(it, dupItem)
		}
		if ch.advisory != nil {
			dupAdv := d.MustAppend("advisory",
				s(freshKey()), s(tk), s(n.Drift(ch.advisory.Val(2).Str)),
				ch.advisory.Val(3), ch.advisory.Val(4))
			truth(ch.advisory, dupAdv)
		}
	}
	numDupStations := int(opts.Dup * float64(numStation))
	for _, si := range n.Perm(numStation)[:numDupStations] {
		orig := stations[si]
		dup := d.MustAppend("station",
			s(freshKey()),
			s(n.Typo(orig.Val(1).Str, 1)),
			orig.Val(2), orig.Val(3), orig.Val(4), orig.Val(5),
			orig.Val(6), orig.Val(7))
		truth(orig, dup)
	}
	return g
}
