package datagen

import (
	"fmt"

	"dcer/internal/relation"
)

// DenormalizeTPCH reproduces the universal-relation setup of the paper's
// Exp-1(5): it joins orders ⋈ customer ⋈ nation and the order's line items
// ⋈ part through their foreign keys into one wide relation TPCH_d, so that
// single-table matchers can be run "collectively" without collective
// rules. The returned truth contains the order-duplicate pairs mapped to
// the joined rows (one row per line item; an order pair counts as
// recovered if any of its row pairs is found).
//
// The join preserves the paper's observations: denormalizing is expensive
// (row count multiplies), and it is impossible to know statically how many
// joins deep ER would have needed — the deep chains in this generator need
// four, one more than TPCH_d materializes.
func DenormalizeTPCH(g *Generated) (*relation.Dataset, [][2]relation.TID, error) {
	src := g.D
	str := relation.TypeString
	fl := relation.TypeFloat
	a := func(n string, t relation.Type) relation.Attribute { return relation.Attribute{Name: n, Type: t} }
	db, err := relation.NewDatabase(relation.MustSchema("tpchd", "rowid",
		a("rowid", str),
		a("orderkey", str), a("totalprice", fl), a("orderdate", str), a("clerk", str),
		a("custname", str), a("custphone", str), a("custaddr", str),
		a("nationname", str),
		a("partname", str), a("linenumber", str), a("quantity", str),
	))
	if err != nil {
		return nil, nil, err
	}
	d := relation.NewDataset(db)

	// Hash joins over the foreign keys.
	custByKey := map[string]*relation.Tuple{}
	for _, c := range src.Relation("customer").Tuples {
		custByKey[c.Val(0).Str] = c
	}
	nationByKey := map[string]*relation.Tuple{}
	for _, n := range src.Relation("nation").Tuples {
		nationByKey[n.Val(0).Str] = n
	}
	partByKey := map[string]*relation.Tuple{}
	for _, p := range src.Relation("part").Tuples {
		partByKey[p.Val(0).Str] = p
	}
	linesByOrder := map[string][]*relation.Tuple{}
	for _, l := range src.Relation("lineitem").Tuples {
		linesByOrder[l.Val(1).Str] = append(linesByOrder[l.Val(1).Str], l)
	}

	// One joined row per (order, lineitem); remember which source order
	// each row came from so the truth pairs can be mapped.
	rowsOfOrder := map[relation.TID][]relation.TID{}
	rowCount := 0
	for _, o := range src.Relation("orders").Tuples {
		c := custByKey[o.Val(1).Str]
		if c == nil {
			continue
		}
		n := nationByKey[c.Val(3).Str]
		if n == nil {
			continue
		}
		for _, l := range linesByOrder[o.Val(0).Str] {
			p := partByKey[l.Val(2).Str]
			if p == nil {
				continue
			}
			row, err := d.Append("tpchd",
				relation.S(fmt.Sprintf("r%d", rowCount)),
				o.Val(0), o.Val(3), o.Val(4), o.Val(6),
				c.Val(1), c.Val(4), c.Val(2),
				n.Val(1),
				p.Val(1), relation.S(l.Val(4).String()), relation.S(l.Val(5).String()),
			)
			if err != nil {
				return nil, nil, err
			}
			rowCount++
			rowsOfOrder[o.GID] = append(rowsOfOrder[o.GID], row.GID)
		}
	}

	// Map the order-duplicate ground truth onto joined-row pairs: for a
	// true order pair, pair up their rows positionally (same line number
	// ordering by construction).
	var truth [][2]relation.TID
	orderRel := src.DB.SchemaIndex("orders")
	for _, pr := range g.Truth {
		t := src.Tuple(pr[0])
		if t == nil || t.Rel != orderRel {
			continue
		}
		ra, rb := rowsOfOrder[pr[0]], rowsOfOrder[pr[1]]
		for i := 0; i < len(ra) && i < len(rb); i++ {
			truth = append(truth, [2]relation.TID{ra[i], rb[i]})
		}
	}
	return d, truth, nil
}
