package discovery_test

import (
	"strings"
	"testing"

	"dcer/internal/chase"
	"dcer/internal/datagen"
	"dcer/internal/discovery"
	"dcer/internal/eval"
	"dcer/internal/mlpred"
	"dcer/internal/rule"
)

func toMinerPairs(ps []datagen.LabeledPair) []discovery.LabeledPair {
	out := make([]discovery.LabeledPair, len(ps))
	for i, p := range ps {
		out[i] = discovery.LabeledPair{A: p.A, B: p.B, Match: p.Match}
	}
	return out
}

// TestMineIMDBRules mines rules from the IMDB-shaped labeled pairs and
// checks that (a) the planted pattern is discovered and (b) chasing with
// the mined rules alone reaches high accuracy — the paper's rule
// acquisition loop end to end.
func TestMineIMDBRules(t *testing.T) {
	g := datagen.IMDBLike(400, 0.3, 21)
	mined, err := discovery.Mine(g.D, toMinerPairs(g.LabeledPairs), mlpred.DefaultRegistry(),
		discovery.Options{Relation: "movie"})
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) == 0 {
		t.Fatal("no rules mined")
	}
	for _, m := range mined {
		t.Logf("support=%3d conf=%.3f  %s", m.Support, m.Confidence, m.Text)
		if m.Confidence < 0.95 {
			t.Errorf("rule below confidence threshold: %s", m.Text)
		}
		if m.Support < 3 {
			t.Errorf("rule below support threshold: %s", m.Text)
		}
	}
	// The planted signal is title similarity (plus year); some mined rule
	// must use a title predicate.
	foundTitle := false
	for _, m := range mined {
		if strings.Contains(m.Text, "title") {
			foundTitle = true
		}
	}
	if !foundTitle {
		t.Error("no mined rule uses the title attribute")
	}
	// Chase with the mined rules only.
	eng, err := chase.New(g.D, minedRules(mined), mlpred.DefaultRegistry(), chase.Options{ShareIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	m := eval.EvaluateClasses(eng.Classes(), eval.NewTruth(g.Truth))
	t.Logf("mined-rule chase: %s", m)
	if m.F1 < 0.85 {
		t.Errorf("mined rules achieve F=%.3f, want ≥ 0.85", m.F1)
	}
}

func minedRules(ms []discovery.Mined) []*rule.Rule {
	out := make([]*rule.Rule, 0, len(ms))
	for _, m := range ms {
		out = append(out, m.Rule)
	}
	return out
}

// TestMineMinimality checks no mined rule is a superset of another.
func TestMineMinimality(t *testing.T) {
	g := datagen.SongsLike(400, 0.3, 22)
	mined, err := discovery.Mine(g.D, toMinerPairs(g.LabeledPairs), mlpred.DefaultRegistry(),
		discovery.Options{Relation: "song", MaxRules: 20})
	if err != nil {
		t.Fatal(err)
	}
	preds := func(m discovery.Mined) map[string]bool {
		out := map[string]bool{}
		body, _, _ := strings.Cut(m.Text, "->")
		for _, p := range strings.Split(body, "^") {
			p = strings.TrimSpace(p)
			if p != "" && !strings.Contains(p, "(a)") && !strings.Contains(p, "(b)") {
				out[p] = true
			}
		}
		return out
	}
	for i := range mined {
		for j := range mined {
			if i == j {
				continue
			}
			pi, pj := preds(mined[i]), preds(mined[j])
			if len(pi) >= len(pj) {
				continue
			}
			subset := true
			for p := range pi {
				if !pj[p] {
					subset = false
					break
				}
			}
			if subset {
				t.Errorf("rule %d is a refinement of rule %d:\n%s\n%s", j, i, mined[j].Text, mined[i].Text)
			}
		}
	}
}

// TestMineErrors checks the guards.
func TestMineErrors(t *testing.T) {
	g := datagen.IMDBLike(50, 0.3, 23)
	if _, err := discovery.Mine(g.D, nil, mlpred.DefaultRegistry(),
		discovery.Options{Relation: "movie"}); err == nil {
		t.Error("no pairs accepted")
	}
	if _, err := discovery.Mine(g.D, toMinerPairs(g.LabeledPairs), mlpred.DefaultRegistry(),
		discovery.Options{Relation: "nope"}); err == nil {
		t.Error("unknown relation accepted")
	}
}
