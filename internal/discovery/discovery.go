// Package discovery mines MRLs from labeled data, reproducing the rule
// acquisition of the paper's experimental setup (Section VI): the denial-
// constraint discovery of Chu et al. [23] adapted to matching rules — a
// predicate space over attribute equalities and candidate ML predicates,
// evidence sets over labeled tuple pairs, and a lattice search for minimal
// preconditions with enough support and confidence.
//
// Scope note: like [23], the miner discovers bi-variable rules (two tuple
// variables over one relation); the paper extends it with a tuple-variable
// lattice for collective rules, which is out of scope here — the
// experiments use hand-written collective rules and mined single-relation
// rules side by side.
package discovery

import (
	"fmt"
	"sort"
	"strings"

	"dcer/internal/mlpred"
	"dcer/internal/relation"
	"dcer/internal/rule"
)

// LabeledPair is a labeled example for mining.
type LabeledPair struct {
	A, B  relation.TID
	Match bool
}

// Options tunes the miner.
type Options struct {
	// Relation is the target relation name.
	Relation string
	// MaxPredicates bounds the precondition size (lattice depth); 0 = 3.
	MaxPredicates int
	// MinSupport is the minimum number of positive pairs a rule must
	// cover; 0 = 3.
	MinSupport int
	// MinConfidence is the minimum precision of a rule on the labeled
	// pairs; 0 = 0.95.
	MinConfidence float64
	// Classifiers lists candidate ML predicate names (resolved against
	// the registry) to try on string attributes; nil = jaro085 and
	// jaccard05.
	Classifiers []string
	// MaxRules bounds the output; 0 = 10 (the paper discovers 10 rules
	// per labeled dataset).
	MaxRules int
	// SparseEvidence restricts the evidence set to the provided labeled
	// pairs only. By default the miner follows Chu et al. and builds
	// evidence over the full pair space of the relation (every pair not
	// labeled a match counts as a non-match), which is what keeps
	// coincidental predicates (e.g. equal year + equal genre) from
	// looking confident on a thin negative sample.
	SparseEvidence bool
	// MaxEvidencePairs caps the dense evidence set; pairs beyond the cap
	// are subsampled deterministically. 0 = 400000.
	MaxEvidencePairs int
}

// Mined is one discovered rule with its quality measures.
type Mined struct {
	Rule       *rule.Rule
	Text       string
	Support    int     // positive pairs covered
	Confidence float64 // precision over the labeled pairs
}

// predicate is one element of the predicate space.
type predicate struct {
	text string // DSL form over variables a/b
	eval func(x, y *relation.Tuple) bool
}

// Mine discovers MRLs for the target relation from the labeled pairs.
func Mine(d *relation.Dataset, pairs []LabeledPair, reg *mlpred.Registry, opts Options) ([]Mined, error) {
	relIdx := d.DB.SchemaIndex(opts.Relation)
	if relIdx < 0 {
		return nil, fmt.Errorf("discovery: unknown relation %q", opts.Relation)
	}
	schema := d.DB.Schemas[relIdx]
	if opts.MaxPredicates <= 0 {
		opts.MaxPredicates = 3
	}
	if opts.MinSupport <= 0 {
		opts.MinSupport = 3
	}
	if opts.MinConfidence <= 0 {
		opts.MinConfidence = 0.95
	}
	if opts.MaxRules <= 0 {
		opts.MaxRules = 10
	}
	classifiers := opts.Classifiers
	if classifiers == nil {
		classifiers = []string{"jaro085", "jaccard05"}
	}

	// Build the predicate space P.
	cache := mlpred.NewCache()
	var space []predicate
	for ai, attr := range schema.Attrs {
		if ai == schema.IDAttr {
			continue
		}
		space = append(space, predicate{
			text: fmt.Sprintf("a.%s = b.%s", attr.Name, attr.Name),
			eval: func(x, y *relation.Tuple) bool { return x.Val(ai).Equal(y.Val(ai)) },
		})
		if attr.Type != relation.TypeString {
			continue
		}
		for _, cn := range classifiers {
			cl, err := reg.Get(cn)
			if err != nil {
				return nil, err
			}
			space = append(space, predicate{
				text: fmt.Sprintf("%s(a.%s, b.%s)", cn, attr.Name, attr.Name),
				eval: func(x, y *relation.Tuple) bool {
					return cache.Predict(cl,
						[]relation.Value{x.Val(ai)}, []relation.Value{y.Val(ai)})
				},
			})
		}
	}

	// Evidence sets: per tuple pair, the bitset of satisfied predicates.
	type evidence struct {
		bits  []bool
		match bool
	}
	addEvidence := func(evs []evidence, x, y *relation.Tuple, match bool) []evidence {
		bits := make([]bool, len(space))
		for pi := range space {
			bits[pi] = space[pi].eval(x, y)
		}
		return append(evs, evidence{bits: bits, match: match})
	}
	var evs []evidence
	if opts.SparseEvidence {
		for _, p := range pairs {
			x, y := d.Tuple(p.A), d.Tuple(p.B)
			if x == nil || y == nil || x.Rel != relIdx || y.Rel != relIdx {
				continue
			}
			evs = addEvidence(evs, x, y, p.Match)
		}
	} else {
		// Dense evidence over the full pair space (Chu et al.): the
		// labeled positives are matches, everything else is not.
		posSet := make(map[[2]relation.TID]bool)
		for _, p := range pairs {
			if !p.Match {
				continue
			}
			a, b := p.A, p.B
			if b < a {
				a, b = b, a
			}
			posSet[[2]relation.TID{a, b}] = true
		}
		if len(posSet) == 0 {
			return nil, fmt.Errorf("discovery: no positive pairs over relation %q", opts.Relation)
		}
		tuples := d.Relations[relIdx].Tuples
		maxPairs := opts.MaxEvidencePairs
		if maxPairs <= 0 {
			maxPairs = 400000
		}
		total := len(tuples) * (len(tuples) - 1) / 2
		stride := 1
		if total > maxPairs {
			stride = total/maxPairs + 1
		}
		count := 0
		for i := 0; i < len(tuples); i++ {
			for j := i + 1; j < len(tuples); j++ {
				a, b := tuples[i].GID, tuples[j].GID
				if b < a {
					a, b = b, a
				}
				isPos := posSet[[2]relation.TID{a, b}]
				count++
				// Keep every positive; subsample the negatives.
				if !isPos && stride > 1 && count%stride != 0 {
					continue
				}
				evs = addEvidence(evs, tuples[i], tuples[j], isPos)
			}
		}
	}
	if len(evs) == 0 {
		return nil, fmt.Errorf("discovery: no labeled pairs over relation %q", opts.Relation)
	}

	// Lattice search over predicate combinations, smallest first; keep
	// combinations meeting support+confidence whose strict subsets do not
	// (minimality, as in the minimal set covers of [23]).
	measure := func(combo []int) (support int, conf float64) {
		pos, neg := 0, 0
		for _, ev := range evs {
			all := true
			for _, pi := range combo {
				if !ev.bits[pi] {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			if ev.match {
				pos++
			} else {
				neg++
			}
		}
		if pos+neg == 0 {
			return 0, 0
		}
		return pos, float64(pos) / float64(pos+neg)
	}
	var accepted [][]int
	isSupersetOfAccepted := func(combo []int) bool {
		in := make(map[int]bool, len(combo))
		for _, pi := range combo {
			in[pi] = true
		}
		for _, acc := range accepted {
			all := true
			for _, pi := range acc {
				if !in[pi] {
					all = false
					break
				}
			}
			if all {
				return true
			}
		}
		return false
	}
	var results []Mined
	var combo []int
	// Breadth-first over sizes so smaller (more general) rules win first.
	for size := 1; size <= opts.MaxPredicates && len(results) < opts.MaxRules; size++ {
		var bfs func(start int, need int)
		bfs = func(start, need int) {
			if len(results) >= opts.MaxRules {
				return
			}
			if need == 0 {
				if isSupersetOfAccepted(combo) {
					return
				}
				support, conf := measure(combo)
				if support >= opts.MinSupport && conf >= opts.MinConfidence {
					acc := append([]int(nil), combo...)
					accepted = append(accepted, acc)
					results = append(results, buildMined(d.DB, opts.Relation, space, acc, len(results), support, conf))
				}
				return
			}
			for pi := start; pi <= len(space)-need; pi++ {
				combo = append(combo, pi)
				bfs(pi+1, need-1)
				combo = combo[:len(combo)-1]
			}
		}
		bfs(0, size)
	}
	sort.SliceStable(results, func(i, j int) bool {
		if results[i].Support != results[j].Support {
			return results[i].Support > results[j].Support
		}
		return results[i].Confidence > results[j].Confidence
	})
	if len(results) > opts.MaxRules {
		results = results[:opts.MaxRules]
	}
	return results, nil
}

func buildMined(db *relation.Database, relName string, space []predicate, combo []int, seq, support int, conf float64) Mined {
	var preds []string
	for _, pi := range combo {
		preds = append(preds, space[pi].text)
	}
	name := fmt.Sprintf("mined_%s_%d", strings.ToLower(relName), seq)
	text := fmt.Sprintf("%s: %s(a) ^ %s(b) ^ %s -> a.id = b.id",
		name, relName, relName, strings.Join(preds, " ^ "))
	rules, err := rule.Parse(text)
	if err != nil {
		panic(fmt.Sprintf("discovery: generated unparseable rule %q: %v", text, err))
	}
	if err := rules[0].Resolve(db); err != nil {
		panic(fmt.Sprintf("discovery: generated unresolvable rule %q: %v", text, err))
	}
	return Mined{Rule: rules[0], Text: text, Support: support, Confidence: conf}
}
