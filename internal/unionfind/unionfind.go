// Package unionfind implements the id-equivalence relation E_id of the
// paper (Section V-A, data structure (3)): a disjoint-set forest with path
// compression and union by rank, keyed by dense integer ids.
//
// The chase engine uses one UnionFind over global tuple ids; two tuples
// match (t.id = s.id holds in Γ) iff they share a root. Transitivity of id
// predicates is therefore free.
package unionfind

// UnionFind is a disjoint-set forest over ids 0..n-1. The zero value is
// unusable; create with New. Grow extends the id space.
type UnionFind struct {
	parent []int32
	rank   []int8
	sets   int
}

// New creates a union-find over n singleton sets.
func New(n int) *UnionFind {
	u := &UnionFind{parent: make([]int32, n), rank: make([]int8, n), sets: n}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Len returns the size of the id space.
func (u *UnionFind) Len() int { return len(u.parent) }

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }

// Grow extends the id space to at least n ids, adding singletons.
func (u *UnionFind) Grow(n int) {
	for len(u.parent) < n {
		u.parent = append(u.parent, int32(len(u.parent)))
		u.rank = append(u.rank, 0)
		u.sets++
	}
}

// Parent returns the raw parent link of x without path compression. Unlike
// Find it never mutates the forest, so the health auditors can walk
// sampled parent chains on a quiesced structure without perturbing it.
func (u *UnionFind) Parent(x int) int { return int(u.parent[x]) }

// SetParent overwrites the raw parent link of x, bypassing union-by-rank
// and the set count. It exists for corruption drills: tests plant a cycle
// or an out-of-range link and assert the invariant auditors catch it. Any
// other use leaves the structure inconsistent.
func (u *UnionFind) SetParent(x, p int) { u.parent[x] = int32(p) }

// Find returns the canonical representative of x's set.
func (u *UnionFind) Find(x int) int {
	root := x
	for int(u.parent[root]) != root {
		root = int(u.parent[root])
	}
	// Path compression.
	for int(u.parent[x]) != root {
		x, u.parent[x] = int(u.parent[x]), int32(root)
	}
	return root
}

// Union merges the sets of a and b and reports whether a merge happened
// (false if they were already in the same set).
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = int32(ra)
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.sets--
	return true
}

// Same reports whether a and b are in the same set.
func (u *UnionFind) Same(a, b int) bool { return u.Find(a) == u.Find(b) }

// Classes materializes all non-singleton equivalence classes, each sorted
// by insertion order of ids. Singletons are omitted.
func (u *UnionFind) Classes() [][]int {
	groups := make(map[int][]int)
	for i := range u.parent {
		r := u.Find(i)
		groups[r] = append(groups[r], i)
	}
	var out [][]int
	for _, g := range groups {
		if len(g) > 1 {
			out = append(out, g)
		}
	}
	return out
}

// Clone returns a deep copy of the structure.
func (u *UnionFind) Clone() *UnionFind {
	c := &UnionFind{
		parent: append([]int32(nil), u.parent...),
		rank:   append([]int8(nil), u.rank...),
		sets:   u.sets,
	}
	return c
}
