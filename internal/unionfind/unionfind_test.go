package unionfind_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dcer/internal/unionfind"
)

func TestBasics(t *testing.T) {
	u := unionfind.New(5)
	if u.Len() != 5 || u.Sets() != 5 {
		t.Fatalf("fresh: Len=%d Sets=%d", u.Len(), u.Sets())
	}
	if !u.Union(0, 1) {
		t.Error("first union reported no-op")
	}
	if u.Union(1, 0) {
		t.Error("repeat union reported merge")
	}
	if !u.Same(0, 1) || u.Same(0, 2) {
		t.Error("Same wrong")
	}
	u.Union(2, 3)
	u.Union(1, 3) // transitivity 0-1-3-2
	if !u.Same(0, 2) {
		t.Error("transitivity broken")
	}
	if u.Sets() != 2 { // {0,1,2,3}, {4}
		t.Errorf("Sets = %d, want 2", u.Sets())
	}
	classes := u.Classes()
	if len(classes) != 1 || len(classes[0]) != 4 {
		t.Errorf("Classes = %v", classes)
	}
}

func TestGrow(t *testing.T) {
	u := unionfind.New(2)
	u.Grow(5)
	if u.Len() != 5 || u.Sets() != 5 {
		t.Errorf("after Grow: Len=%d Sets=%d", u.Len(), u.Sets())
	}
	u.Union(0, 4)
	if !u.Same(0, 4) {
		t.Error("grown ids not usable")
	}
	u.Grow(3) // shrink is a no-op
	if u.Len() != 5 {
		t.Error("Grow shrank")
	}
}

func TestClone(t *testing.T) {
	u := unionfind.New(4)
	u.Union(0, 1)
	c := u.Clone()
	c.Union(2, 3)
	if u.Same(2, 3) {
		t.Error("clone mutated the original")
	}
	if !c.Same(0, 1) {
		t.Error("clone lost state")
	}
}

// TestEquivalenceProperties checks that a random sequence of unions yields
// an equivalence relation identical to a naive set-merging reference.
func TestEquivalenceProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 40
		u := unionfind.New(n)
		ref := make([]int, n) // ref[i] = naive set label
		for i := range ref {
			ref[i] = i
		}
		relabel := func(from, to int) {
			for i := range ref {
				if ref[i] == from {
					ref[i] = to
				}
			}
		}
		for k := 0; k < 60; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			merged := u.Union(a, b)
			if merged == (ref[a] == ref[b]) {
				return false // Union's report must match the reference
			}
			relabel(ref[a], ref[b])
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if u.Same(i, j) != (ref[i] == ref[j]) {
					return false
				}
			}
		}
		// Sets() must equal the number of distinct labels.
		labels := map[int]bool{}
		for _, l := range ref {
			labels[l] = true
		}
		return u.Sets() == len(labels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
