package unionfind_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dcer/internal/unionfind"
)

func TestBasics(t *testing.T) {
	u := unionfind.New(5)
	if u.Len() != 5 || u.Sets() != 5 {
		t.Fatalf("fresh: Len=%d Sets=%d", u.Len(), u.Sets())
	}
	if !u.Union(0, 1) {
		t.Error("first union reported no-op")
	}
	if u.Union(1, 0) {
		t.Error("repeat union reported merge")
	}
	if !u.Same(0, 1) || u.Same(0, 2) {
		t.Error("Same wrong")
	}
	u.Union(2, 3)
	u.Union(1, 3) // transitivity 0-1-3-2
	if !u.Same(0, 2) {
		t.Error("transitivity broken")
	}
	if u.Sets() != 2 { // {0,1,2,3}, {4}
		t.Errorf("Sets = %d, want 2", u.Sets())
	}
	classes := u.Classes()
	if len(classes) != 1 || len(classes[0]) != 4 {
		t.Errorf("Classes = %v", classes)
	}
}

func TestGrow(t *testing.T) {
	u := unionfind.New(2)
	u.Grow(5)
	if u.Len() != 5 || u.Sets() != 5 {
		t.Errorf("after Grow: Len=%d Sets=%d", u.Len(), u.Sets())
	}
	u.Union(0, 4)
	if !u.Same(0, 4) {
		t.Error("grown ids not usable")
	}
	u.Grow(3) // shrink is a no-op
	if u.Len() != 5 {
		t.Error("Grow shrank")
	}
}

func TestClone(t *testing.T) {
	u := unionfind.New(4)
	u.Union(0, 1)
	c := u.Clone()
	c.Union(2, 3)
	if u.Same(2, 3) {
		t.Error("clone mutated the original")
	}
	if !c.Same(0, 1) {
		t.Error("clone lost state")
	}
}

// TestParentSetParent covers the raw-link accessors the health auditors
// walk: Parent never compresses paths, and SetParent plants arbitrary
// links (the corruption-drill hook) without touching the set count.
func TestParentSetParent(t *testing.T) {
	u := unionfind.New(6)
	for i := 0; i < 6; i++ {
		if u.Parent(i) != i {
			t.Fatalf("fresh Parent(%d) = %d, want self", i, u.Parent(i))
		}
	}

	// Build a two-level chain 0 -> 1 -> 2 via rank: after Union(0,1) one
	// of the two roots the other; union that root with 2's set.
	u.Union(0, 1)
	root01 := u.Parent(0)
	if u.Parent(1) != root01 && u.Parent(root01) != root01 {
		t.Fatalf("Union(0,1) left no common root: parents %d, %d", u.Parent(0), u.Parent(1))
	}
	child := 0
	if root01 == 0 {
		child = 1
	}
	u.Union(root01, 2)
	deepRoot := u.Parent(root01)
	// Parent on the chain's leaf must not compress: the leaf still points
	// at the intermediate node, and repeated calls see the same link.
	if deepRoot != root01 {
		if u.Parent(child) != root01 {
			t.Fatalf("Parent compressed the chain: Parent(%d) = %d, want %d", child, u.Parent(child), root01)
		}
		if u.Find(child) != deepRoot {
			t.Fatalf("Find(%d) = %d, want root %d", child, u.Find(child), deepRoot)
		}
	}

	// SetParent bypasses union bookkeeping entirely.
	sets := u.Sets()
	u.SetParent(4, 5)
	if u.Parent(4) != 5 {
		t.Fatalf("SetParent(4,5) then Parent(4) = %d", u.Parent(4))
	}
	if u.Sets() != sets {
		t.Errorf("SetParent changed Sets: %d -> %d", sets, u.Sets())
	}
	// An out-of-range plant is stored verbatim for the auditors to find.
	u.SetParent(3, 17)
	if u.Parent(3) != 17 {
		t.Errorf("out-of-range SetParent(3,17) then Parent(3) = %d", u.Parent(3))
	}
}

// TestEquivalenceProperties checks that a random sequence of unions yields
// an equivalence relation identical to a naive set-merging reference.
func TestEquivalenceProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 40
		u := unionfind.New(n)
		ref := make([]int, n) // ref[i] = naive set label
		for i := range ref {
			ref[i] = i
		}
		relabel := func(from, to int) {
			for i := range ref {
				if ref[i] == from {
					ref[i] = to
				}
			}
		}
		for k := 0; k < 60; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			merged := u.Union(a, b)
			if merged == (ref[a] == ref[b]) {
				return false // Union's report must match the reference
			}
			relabel(ref[a], ref[b])
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if u.Same(i, j) != (ref[i] == ref[j]) {
					return false
				}
			}
		}
		// Sets() must equal the number of distinct labels.
		labels := map[int]bool{}
		for _, l := range ref {
			labels[l] = true
		}
		return u.Sets() == len(labels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
