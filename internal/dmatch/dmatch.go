// Package dmatch implements the parallel algorithm DMatch of Section V-B:
// the BSP fixpoint model of Section III-B over fragments produced by
// HyPart. Each worker runs the sequential chase engine on its fragment —
// partial evaluation A (Deduce) in the first superstep, incremental A_Δ
// (IncDeduce) afterwards — and a master routes newly deduced matches and
// validated ML predictions to the workers hosting either tuple. No raw
// tuples are ever exchanged after partitioning, only facts.
//
// DMatch is parallelly scalable relative to Match (Theorem 7): work is
// evenly spread by HyPart's virtual blocks + LPT balancing, and the total
// incremental work is bounded by the number of facts, so runtime shrinks
// proportionally as workers are added.
//
// The master's routing is batched: a sequential pass folds each new fact's
// recipient set into a worker bitset (classes carry their host bitsets in
// the union-find, so recipients are two bitword ORs, not a member-list
// walk), then per-destination builders — one goroutine per worker — scan
// the route list and assemble each inbox, suppressing any fact the
// destination already received or itself produced (Result.MessagesDeduped).
// When a superstep's skew ratio exceeds Options.RebalanceSkew, the
// scheduler re-runs the LPT assignment over the virtual blocks' observed
// costs and migrates blocks between workers before the next superstep
// (see rebalance.go).
package dmatch

import (
	"runtime"
	"strconv"
	"sync"
	"time"

	"dcer/internal/chase"
	"dcer/internal/fnv"
	"dcer/internal/health"
	"dcer/internal/hypart"
	"dcer/internal/mlpred"
	"dcer/internal/provenance"
	"dcer/internal/relation"
	"dcer/internal/rule"
	"dcer/internal/telemetry"
	"dcer/internal/unionfind"
	"dcer/internal/wire"
)

// Options configures a DMatch run.
type Options struct {
	// Workers is the number n of workers; 0 means GOMAXPROCS.
	Workers int
	// NoMQO disables hash-function sharing in HyPart and index/ML-cache
	// sharing in the per-worker engines (the DMatch_noMQO ablation).
	NoMQO bool
	// MaxDeps is the per-worker dependency-store capacity K (see chase).
	MaxDeps int
	// ReplicationCap bounds HyPart's per-tuple copy factor (see hypart).
	ReplicationCap int
	// PartitionShards is the goroutine fan-out of the HyPart pass (see
	// hypart.Options.Shards); 0 means GOMAXPROCS.
	PartitionShards int
	// MaxSupersteps bounds the BSP loop as a safety net; 0 means 1 << 20.
	MaxSupersteps int
	// Sequential forces the supersteps to run workers one at a time (and
	// each worker's Deduce to enumerate rules sequentially); useful for
	// deterministic debugging and undistorted per-worker timings.
	Sequential bool
	// SequentialDeduce keeps the supersteps parallel across workers but
	// disables the concurrent per-rule first pass inside each worker's
	// Deduce (the pre-intra-parallelism behavior, kept for comparison).
	SequentialDeduce bool
	// SequentialDrain disables the batched parallel drain inside each
	// worker's Deduce/IncDeduce (see chase.Options.SequentialDrain), so
	// every superstep's incremental pass runs single-threaded per worker.
	SequentialDrain bool
	// DrainParallelMin overrides the per-worker parallel-drain batch
	// threshold (see chase.Options.DrainParallelMin); 0 keeps the default.
	DrainParallelMin int
	// InterpretRules disables the compiled predicate plans inside every
	// worker engine (see chase.Options.InterpretRules); the A/B oracle
	// for plan-equivalence runs.
	InterpretRules bool
	// PlanResortMinEvals overrides the per-worker adaptive plan-reorder
	// threshold (see chase.Options.PlanResortMinEvals).
	PlanResortMinEvals int
	// SequentialRoute disables the concurrent per-destination inbox build
	// in the master after each barrier (the routing A/B knob for the
	// benchmarks; the built inboxes are identical either way).
	SequentialRoute bool
	// RebalanceSkew is the per-superstep skew-ratio threshold above which
	// the scheduler re-runs the LPT assignment over the virtual blocks'
	// observed costs and migrates blocks between workers before the next
	// superstep. 0 means the default (1.5); negative disables adaptive
	// rebalancing.
	RebalanceSkew float64
	// MaxRebalances bounds the number of migrations per run (0 means the
	// default of 2; negative disables).
	MaxRebalances int
	// RebalanceMinStepNs is the makespan floor a superstep must reach
	// before its skew can trigger a migration — microsecond-scale steps
	// show large skew ratios that are pure timing noise. 0 means the
	// default (2ms); negative removes the floor (used by tests).
	RebalanceMinStepNs int64
	// Metrics, when non-nil, receives live instrumentation: per-superstep
	// makespan/skew gauges, routing counters, per-worker busy histograms,
	// the partition-size histograms of HyPart, and every worker engine's
	// chase series (labeled worker=i). The in-progress superstep timeline
	// is exposed as the "dmatch_timeline" debug provider and the adaptive
	// migrations as "dmatch_rebalance" (/debug/dcer).
	Metrics *telemetry.Registry
	// Trace parents the run's causal spans: a dmatch.Run root, one
	// dmatch.superstep span per BSP step with each worker's
	// Deduce/IncDeduce as children on the worker's lane, the master's
	// route span with per-destination inbox builds, and rebalance
	// migrations with per-worker rebuild child spans. The zero value
	// disables capture; when Metrics is set and Trace is not, a root is
	// derived from the registry's tracer so a -telemetry run always
	// yields a causal trace (/debug/trace).
	Trace telemetry.TraceContext
	// Log, when non-nil and at debug level, receives wide events: one
	// JSON line per superstep (makespan, skew, routed/deduped counts,
	// rebalance and knob state) plus the per-round lines of every worker
	// engine.
	Log *telemetry.Logger
	// Health attaches the run to a health monitor: a superstep heartbeat
	// for the stall watchdog, a sampled auditor over the master's global
	// union-find (run in the sequential route phase, where it is
	// quiescent), and the same monitor threaded into every worker engine
	// (see chase.Options.Health). When the monitor carries ground truth,
	// the master feeds the accuracy observatory from the globally folded
	// matches — the authoritative estimate, since workers only see their
	// fragments. nil disables the layer.
	Health *health.Monitor
	// Provenance enables justification capture: every worker engine
	// records its derivations into a per-worker log stamped with the
	// worker id and the current superstep, and the logs are stitched into
	// one global log after the fixpoint (Result.Provenance / Result.Proof).
	// Off by default; the disabled cost is one branch per applied fact.
	Provenance bool
	// ProvenanceLimit bounds each worker's log (0 means
	// provenance.DefaultLimit, negative means unbounded).
	ProvenanceLimit int
}

// Result is the outcome of a parallel run.
type Result struct {
	// Matches is the deduplicated set of deduced match facts.
	Matches []chase.Fact
	// Validated is the deduplicated set of validated ML predictions.
	Validated []chase.Fact
	// Eq is the global id-equivalence relation E_id over the dataset.
	Eq *unionfind.UnionFind

	Supersteps     int
	MessagesRouted int64 // facts delivered worker->worker via the master
	// MessagesDeduped counts the deliveries the routing seen-sets
	// suppressed: a fact bound for a worker that already received it in
	// an earlier superstep or produced it itself in this one.
	MessagesDeduped int64
	FactsProduced   int64 // facts reported by workers incl. duplicates
	PartitionStats  hypart.Stats
	PartitionTime   time.Duration
	ERTime          time.Duration
	// SimulatedTime is the BSP makespan: per superstep, the maximum
	// compute time over the workers, summed over supersteps. On a
	// machine with fewer cores than workers this — not wall-clock ERTime
	// — is the faithful stand-in for the runtime on a real n-machine
	// cluster (use Options.Sequential for undistorted per-worker
	// timings). The parallel-scalability experiments report it. It is a
	// simulation-only model even under RunDistributed: real measured
	// time lives in the timeline's per-superstep WallNs (and BytesOnWire
	// for the wire), not here.
	SimulatedTime time.Duration
	WorkerStats   []chase.Stats
	// Rebalances lists the skew-adaptive block migrations the scheduler
	// performed (empty when none triggered).
	Rebalances []RebalanceEvent
	// Recoveries lists the worker-failure recoveries of a distributed run
	// (always empty in-process).
	Recoveries []RecoveryEvent
	// Wire is the wire-protocol measurement of a distributed run — bytes,
	// frames, codec time, and dictionary economics over every worker
	// connection. Zero in-process, where no bytes move.
	Wire wire.Snapshot

	timeline Timeline
	prov     *provenance.Log
	d        *relation.Dataset
}

// Provenance returns the merged cross-worker justification log of the run
// (nil when Options.Provenance was off): the per-worker logs stitched in
// (superstep, worker, sequence) order, with each routed fact's arrival
// record displaced by the originating worker's derivation.
func (r *Result) Provenance() *provenance.Log { return r.prov }

// Proof extracts a justification of the pair (a, b) from the merged log —
// including proofs whose derivation chain crosses workers. It returns
// provenance.ErrNotEntailed for unmatched pairs and
// provenance.ErrIncomplete when capture was off or a log overflowed.
func (r *Result) Proof(a, b relation.TID) ([]provenance.Entry, error) {
	return r.prov.Proof([2]relation.TID{a, b}, chase.BuildEquivalence(r.d, nil))
}

// Timeline returns the BSP superstep profile of the run: per-worker
// busy/idle time, routed message counts, and skew, one entry per
// superstep. Always recorded (the cost is bounded by supersteps×workers).
func (r *Result) Timeline() *Timeline { return &r.timeline }

// Same reports whether two tuples are matched in the global Γ.
func (r *Result) Same(a, b relation.TID) bool {
	return a == b || r.Eq.Same(int(a), int(b))
}

// Classes returns the non-singleton global equivalence classes.
func (r *Result) Classes() [][]relation.TID {
	groups := make(map[int][]relation.TID)
	for _, t := range r.d.Tuples() {
		root := r.Eq.Find(int(t.GID))
		groups[root] = append(groups[root], t.GID)
	}
	var out [][]relation.TID
	for _, g := range groups {
		if len(g) > 1 {
			out = append(out, g)
		}
	}
	return out
}

// scopeKey fingerprints a sorted id list for scope deduplication with
// 64-bit FNV-1a — no per-id string building. Callers confirm candidate
// hits with sameIDs, so a hash collision costs a duplicate scope dataset,
// never a wrong one.
func scopeKey(ids []relation.TID) uint64 {
	h := uint64(fnv.Offset64)
	h = fnv.Uint64(h, uint64(len(ids)))
	for _, id := range ids {
		h = fnv.Uint64(h, uint64(id))
	}
	return h
}

// sameIDs reports whether two sorted id lists are identical.
func sameIDs(a, b []relation.TID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// factRoute is one routable fact of a superstep with its recipient bitset
// (an offset into the route arena, so arena growth never invalidates it).
type factRoute struct {
	f    chase.Fact
	from int
	off  int
}

// hasHost reports whether worker w appears in a host list.
func hasHost(hosts []int, w int) bool {
	for _, h := range hosts {
		if h == w {
			return true
		}
	}
	return false
}

// Run partitions d with HyPart and executes the BSP fixpoint with n
// workers.
func Run(d *relation.Dataset, rules []*rule.Rule, reg *mlpred.Registry, opts Options) (*Result, error) {
	n := opts.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	maxSteps := opts.MaxSupersteps
	if maxSteps <= 0 {
		maxSteps = 1 << 20
	}

	tc := opts.Trace
	if !tc.Enabled() && opts.Metrics != nil {
		tc = opts.Metrics.Tracer().NewTrace(telemetry.PIDDMatch, 0)
	}
	runSpan := tc.Start("dmatch.Run", telemetry.L("workers", strconv.Itoa(n)))
	defer runSpan.End()
	rtc := runSpan.Context()

	t0 := time.Now()
	part, err := hypart.Partition(d, rules, n, hypart.Options{
		Share:          !opts.NoMQO,
		ReplicationCap: opts.ReplicationCap,
		Shards:         opts.PartitionShards,
		Metrics:        opts.Metrics,
		Trace:          rtc,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{PartitionStats: part.Stats, d: d}
	res.PartitionTime = time.Since(t0)
	ms := newMasterState(d, n)

	// buildWorker constructs one chase engine over a fragment via the
	// shared builder (see master.go), layering this run's observability
	// hooks on top. The adaptive rebalancer re-invokes it when a
	// migration changes a worker's block set.
	var provLogs []*provenance.Log
	if opts.Provenance {
		provLogs = make([]*provenance.Log, n)
		for i := range provLogs {
			provLogs[i] = provenance.NewLog(opts.ProvenanceLimit)
			provLogs[i].SetWorker(i)
		}
	}
	buildWorker := func(i int, frag []relation.TID, ruleFrags [][]relation.TID) (*chase.Engine, error) {
		copts := workerChaseOptions(opts, ms.idSpace)
		copts.Metrics = opts.Metrics
		copts.MetricsLabels = []telemetry.Label{telemetry.L("worker", strconv.Itoa(i))}
		copts.Trace = rtc.Lane(telemetry.PIDDMatch, int32(i+1))
		copts.Log = opts.Log
		copts.Health = opts.Health
		if provLogs != nil {
			copts.Provenance = provLogs[i]
		}
		return buildWorkerEngine(d, rules, reg, i, frag, ruleFrags, copts)
	}

	workers := make([]*chase.Engine, n)
	ms.setHosts(part.Fragments)
	for i, frag := range part.Fragments {
		eng, err := buildWorker(i, frag, part.RuleFragments[i])
		if err != nil {
			return nil, err
		}
		workers[i] = eng
	}

	t1 := time.Now()
	// The global E_id with per-class-root host bitsets, the delivery
	// seen-sets, and the route scratch all live in ms (master.go) — the
	// same state machine RunDistributed drives over the wire.
	ms.rebuildHostBits()
	inboxes := make([][]chase.Fact, n)
	deltas := make([][]chase.Fact, n)
	freshW := make([]bool, n) // rebuilt by a migration; must re-Deduce

	// BSP instruments. Every instrument is a no-op when opts.Metrics is
	// nil (nil-safe telemetry handles), so the loop below reads the same
	// either way; the superstep timeline itself is recorded
	// unconditionally (its cost is bounded by supersteps × workers).
	tl := &res.timeline
	tl.Workers = n
	var tlMu sync.Mutex
	mreg := opts.Metrics
	stepGauge := mreg.Gauge("dcer_dmatch_superstep")
	makespanGauge := mreg.Gauge("dcer_dmatch_step_makespan_ns")
	skewGauge := mreg.Gauge("dcer_dmatch_step_skew")
	routedCtr := mreg.Counter("dcer_dmatch_messages_routed")
	dedupCtr := mreg.Counter("dcer_dmatch_messages_deduped")
	factsCtr := mreg.Counter("dcer_dmatch_facts_produced")
	rebalCtr := mreg.Counter("dcer_dmatch_rebalances")
	movedCtr := mreg.Counter("dcer_dmatch_blocks_moved")
	routeHist := mreg.Histogram("dcer_dmatch_route_ns")
	busyHists := make([]*telemetry.Histogram, n)
	for i := range busyHists {
		busyHists[i] = mreg.Histogram("dcer_dmatch_worker_busy_ns", telemetry.L("worker", strconv.Itoa(i)))
	}
	mreg.SetDebug("dmatch_timeline", func() any {
		tlMu.Lock()
		defer tlMu.Unlock()
		return Timeline{Workers: tl.Workers, Steps: append([]Superstep(nil), tl.Steps...)}
	})
	mreg.SetDebug("dmatch_rebalance", func() any {
		tlMu.Lock()
		defer tlMu.Unlock()
		return append([]RebalanceEvent(nil), res.Rebalances...)
	})
	if provLogs != nil {
		// Replace the per-engine providers registered by the worker
		// engines with the aggregate view over all worker logs.
		mreg.SetDebug("provenance", func() any { return provenance.Summarize(provLogs...) })
	}

	elapsed := make([]time.Duration, n)
	runStep := func(step int, stc telemetry.TraceContext) {
		runOne := func(i int) {
			if stc.Enabled() {
				// Re-parent the worker's engine under this superstep, on
				// the worker's lane, so its Deduce/IncDeduce roots (and
				// their drain rounds) render as this step's children. The
				// engine is quiescent here — only this goroutine drives it.
				workers[i].SetTraceContext(stc.Lane(telemetry.PIDDMatch, int32(i+1)))
			}
			start := time.Now()
			if step == 0 || freshW[i] {
				// First superstep, or a worker the rebalancer rebuilt:
				// full partial evaluation over the (new) fragment, then
				// the replayed/pending inbox through A_Δ.
				delta := workers[i].Deduce()
				if len(inboxes[i]) > 0 {
					delta = append(delta, workers[i].IncDeduce(inboxes[i])...)
				}
				deltas[i] = delta
				freshW[i] = false
			} else {
				deltas[i] = workers[i].IncDeduce(inboxes[i])
			}
			elapsed[i] = time.Since(start)
		}
		skip := func(i int) bool {
			return step > 0 && len(inboxes[i]) == 0 && !freshW[i]
		}
		if opts.Sequential {
			for i := range workers {
				if skip(i) {
					deltas[i] = nil
					elapsed[i] = 0
					continue
				}
				runOne(i)
			}
			return
		}
		var wg sync.WaitGroup
		for i := range workers {
			if skip(i) {
				deltas[i] = nil
				elapsed[i] = 0
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				runOne(i)
			}(i)
		}
		wg.Wait()
	}

	rb := newRebalancer(opts, n, len(part.Blocks))
	curAssign := make([]int, len(part.Blocks))
	for i := range part.Blocks {
		curAssign[i] = part.Blocks[i].Worker
	}

	msgsIn := make([]int, n)
	factsOut := make([]int, n)
	// Health wiring: the superstep heartbeat brackets the whole BSP loop,
	// and the master's sequential route phase audits the global
	// union-find and feeds the accuracy observatory (nil-safe no-ops when
	// no monitor is attached).
	var dhb *health.Heartbeat
	var gufCheck *health.Check
	if opts.Health != nil {
		dhb = opts.Health.Heartbeat("dmatch_superstep")
		gufCheck = opts.Health.Check("global_unionfind")
		dhb.Enter()
		defer dhb.Exit()
	}
	accSeen := 0
	for step := 0; step < maxSteps; step++ {
		dhb.Beat()
		stepWall := time.Now()
		var ssp telemetry.Span
		stc := rtc
		if rtc.Enabled() {
			ssp = rtc.Start("dmatch.superstep", telemetry.L("step", strconv.Itoa(step)))
			stc = ssp.Context()
		}
		for i := range inboxes {
			msgsIn[i] = len(inboxes[i])
		}
		for _, l := range provLogs {
			l.SetStep(step)
		}
		runStep(step, stc)
		res.Supersteps++
		var stepMax time.Duration
		for _, e := range elapsed {
			if e > stepMax {
				stepMax = e
			}
		}
		res.SimulatedTime += stepMax
		stepGauge.Set(float64(step))
		makespanGauge.Set(float64(stepMax))
		for i, e := range elapsed {
			busyHists[i].Observe(uint64(e))
		}
		routeStart := time.Now()
		var rsp telemetry.Span
		routeTC := stc
		if stc.Enabled() {
			rsp = stc.Start("dmatch.route")
			routeTC = rsp.Context()
		}
		// Master, phase 1 (sequential): fold the union of the workers'
		// new facts into the global Γ and compute each fact's recipient
		// bitset — the workers hosting any member of the classes the fact
		// touches (the ΔΓ_i of the fixpoint equations). Fold order is
		// worker-index order; the deterministic Γ depends on it.
		ms.beginFold()
		var stepFacts int64
		for w, delta := range deltas {
			stepFacts += int64(len(delta))
			res.FactsProduced += int64(len(delta))
			ms.foldDelta(w, delta, res)
		}
		if opts.Health != nil {
			// Still in the sequential master phase: guf is quiescent, so
			// the sampled chain audit needs no locks; Find's path
			// compression is the master's own mutation, as in the fold.
			sample := health.SampleIDs(ms.guf.Len(), opts.Health.SampleSize(), opts.Health.Seed()+int64(step))
			if err := health.AuditUnionFind(ms.guf, sample); err != nil {
				gufCheck.Fail(len(sample), "superstep %d: %v", step, err)
			} else {
				gufCheck.Pass(len(sample))
			}
			if acc := opts.Health.Accuracy(); acc != nil {
				accSeen = observeMasterAccuracy(acc, res.Matches, accSeen, provLogs, ms.guf)
			}
		}
		// Master, phase 2 (parallel): per-destination inbox builders.
		// Each builder owns its destination's inbox, seen-set, and
		// counters, so the fan-out is race-free and the built batches
		// are identical to a sequential build.
		next := make([][]chase.Fact, n)
		stepRouted := make([]int64, n)
		stepDeduped := make([]int64, n)
		buildDest := func(h int) {
			var isp telemetry.Span
			if routeTC.Enabled() {
				isp = routeTC.Lane(telemetry.PIDDMatch, int32(h+1)).Start("dmatch.inbox")
				defer isp.End()
			}
			next[h], stepRouted[h], stepDeduped[h] = ms.buildDest(h, deltas[h])
		}
		if opts.Sequential || opts.SequentialRoute || len(ms.routes) == 0 {
			for h := 0; h < n; h++ {
				buildDest(h)
			}
		} else {
			var wg sync.WaitGroup
			for h := 0; h < n; h++ {
				wg.Add(1)
				go func(h int) {
					defer wg.Done()
					buildDest(h)
				}(h)
			}
			wg.Wait()
		}
		var routedStep, dedupedStep int64
		for h := 0; h < n; h++ {
			routedStep += stepRouted[h]
			dedupedStep += stepDeduped[h]
		}
		res.MessagesRouted += routedStep
		res.MessagesDeduped += dedupedStep
		inboxes = next
		rsp.End()
		routeNs := int64(time.Since(routeStart))
		routeHist.Observe(uint64(routeNs))
		routedCtr.Add(routedStep)
		dedupCtr.Add(dedupedStep)
		factsCtr.Add(stepFacts)
		for i, dl := range deltas {
			factsOut[i] = len(dl)
		}
		tlMu.Lock()
		tl.record(step, elapsed, factsOut, msgsIn, routeNs, int64(time.Since(stepWall)), 0, routedStep, dedupedStep)
		ss := &tl.Steps[len(tl.Steps)-1]
		skew := ss.SkewRatio
		if len(res.Rebalances) > 0 {
			last := &res.Rebalances[len(res.Rebalances)-1]
			if last.Step == step-1 && last.SkewAfter == 0 {
				last.SkewAfter = skew
			}
		}
		tlMu.Unlock()
		skewGauge.Set(skew)
		if opts.Log.Level() <= telemetry.LogDebug {
			opts.Log.Wide(telemetry.LogDebug, "dmatch_superstep",
				telemetry.F{K: "step", V: step},
				telemetry.F{K: "workers", V: n},
				telemetry.F{K: "makespan_ns", V: int64(stepMax)},
				telemetry.F{K: "skew", V: skew},
				telemetry.F{K: "facts", V: stepFacts},
				telemetry.F{K: "routed", V: routedStep},
				telemetry.F{K: "deduped", V: dedupedStep},
				telemetry.F{K: "route_ns", V: routeNs},
				telemetry.F{K: "rebalances", V: len(res.Rebalances)},
				telemetry.F{K: "plan_on", V: !opts.InterpretRules},
				telemetry.F{K: "sequential", V: opts.Sequential},
			)
		}
		ssp.End()
		empty := true
		for _, in := range inboxes {
			if len(in) > 0 {
				empty = false
				break
			}
		}
		if empty {
			break
		}
		// Skew-adaptive scheduling: with work still pending and this
		// superstep over the skew threshold, re-run LPT over the blocks'
		// observed costs and migrate blocks before the next superstep.
		if rb.shouldRebalance(skew, stepMax) {
			t0 := time.Now()
			var rbsp telemetry.Span
			rbtc := rtc
			if rtc.Enabled() {
				rbsp = rtc.Start("dmatch.rebalance", telemetry.L("step", strconv.Itoa(step)))
				rbtc = rbsp.Context()
			}
			newAssign, moved := rb.reassign(part.Blocks, curAssign, elapsed)
			if moved > 0 {
				changed := make([]bool, n)
				for b := range newAssign {
					if newAssign[b] != curAssign[b] {
						changed[newAssign[b]] = true
						changed[curAssign[b]] = true
					}
				}
				frags, ruleFrags := hypart.BuildFragments(part.Blocks, newAssign, n, len(rules))
				rebuilt := 0
				for w := range workers {
					if !changed[w] {
						continue
					}
					var wsp telemetry.Span
					if rbtc.Enabled() {
						// One migration child span per rebuilt worker, on
						// the worker's lane.
						wsp = rbtc.Lane(telemetry.PIDDMatch, int32(w+1)).Start("dmatch.rebuild.worker")
					}
					eng, err := buildWorker(w, frags[w], ruleFrags[w])
					if err != nil {
						return nil, err
					}
					workers[w] = eng
					freshW[w] = true
					rebuilt++
					wsp.End()
				}
				ms.setHosts(frags)
				ms.rebuildHostBits()
				curAssign = newAssign
				// A rebuilt worker re-runs Deduce over its new fragment
				// and replays the global fact history (see replayFor).
				for w := range workers {
					if !changed[w] {
						continue
					}
					replay := ms.replayFor(w, res)
					ms.resetWorker(w, replay)
					inboxes[w] = replay
				}
				ev := RebalanceEvent{
					Step:           step,
					BlocksMoved:    moved,
					WorkersRebuilt: rebuilt,
					SkewBefore:     skew,
					RebuildNs:      int64(time.Since(t0)),
				}
				tlMu.Lock()
				res.Rebalances = append(res.Rebalances, ev)
				tlMu.Unlock()
				rebalCtr.Add(1)
				movedCtr.Add(int64(moved))
			}
			rbsp.End()
		}
	}
	res.ERTime = time.Since(t1)
	res.Eq = ms.guf
	for _, w := range workers {
		res.WorkerStats = append(res.WorkerStats, w.Stats())
	}
	if provLogs != nil {
		res.prov = provenance.Merge(provLogs...)
	}
	return res, nil
}
