// Package dmatch implements the parallel algorithm DMatch of Section V-B:
// the BSP fixpoint model of Section III-B over fragments produced by
// HyPart. Each worker runs the sequential chase engine on its fragment —
// partial evaluation A (Deduce) in the first superstep, incremental A_Δ
// (IncDeduce) afterwards — and a master routes newly deduced matches and
// validated ML predictions to the workers hosting either tuple. No raw
// tuples are ever exchanged after partitioning, only facts.
//
// DMatch is parallelly scalable relative to Match (Theorem 7): work is
// evenly spread by HyPart's virtual blocks + LPT balancing, and the total
// incremental work is bounded by the number of facts, so runtime shrinks
// proportionally as workers are added.
package dmatch

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"dcer/internal/chase"
	"dcer/internal/hypart"
	"dcer/internal/mlpred"
	"dcer/internal/relation"
	"dcer/internal/rule"
	"dcer/internal/unionfind"
)

// Options configures a DMatch run.
type Options struct {
	// Workers is the number n of workers; 0 means GOMAXPROCS.
	Workers int
	// NoMQO disables hash-function sharing in HyPart and index/ML-cache
	// sharing in the per-worker engines (the DMatch_noMQO ablation).
	NoMQO bool
	// MaxDeps is the per-worker dependency-store capacity K (see chase).
	MaxDeps int
	// ReplicationCap bounds HyPart's per-tuple copy factor (see hypart).
	ReplicationCap int
	// MaxSupersteps bounds the BSP loop as a safety net; 0 means 1 << 20.
	MaxSupersteps int
	// Sequential forces the supersteps to run workers one at a time;
	// useful for deterministic debugging.
	Sequential bool
}

// Result is the outcome of a parallel run.
type Result struct {
	// Matches is the deduplicated set of deduced match facts.
	Matches []chase.Fact
	// Validated is the deduplicated set of validated ML predictions.
	Validated []chase.Fact
	// Eq is the global id-equivalence relation E_id over the dataset.
	Eq *unionfind.UnionFind

	Supersteps     int
	MessagesRouted int64 // facts delivered worker->worker via the master
	FactsProduced  int64 // facts reported by workers incl. duplicates
	PartitionStats hypart.Stats
	PartitionTime  time.Duration
	ERTime         time.Duration
	// SimulatedTime is the BSP makespan: per superstep, the maximum
	// compute time over the workers, summed over supersteps. On a
	// machine with fewer cores than workers this — not wall-clock ERTime
	// — is the faithful stand-in for the runtime on a real n-machine
	// cluster (use Options.Sequential for undistorted per-worker
	// timings). The parallel-scalability experiments report it.
	SimulatedTime time.Duration
	WorkerStats   []chase.Stats

	d *relation.Dataset
}

// Same reports whether two tuples are matched in the global Γ.
func (r *Result) Same(a, b relation.TID) bool {
	return a == b || r.Eq.Same(int(a), int(b))
}

// Classes returns the non-singleton global equivalence classes.
func (r *Result) Classes() [][]relation.TID {
	groups := make(map[int][]relation.TID)
	for _, t := range r.d.Tuples() {
		root := r.Eq.Find(int(t.GID))
		groups[root] = append(groups[root], t.GID)
	}
	var out [][]relation.TID
	for _, g := range groups {
		if len(g) > 1 {
			out = append(out, g)
		}
	}
	return out
}

// scopeKey fingerprints a sorted id list for scope deduplication.
func scopeKey(ids []relation.TID) string {
	var b strings.Builder
	b.Grow(len(ids) * 4)
	for _, id := range ids {
		b.WriteString(strconv.Itoa(int(id)))
		b.WriteByte(',')
	}
	return b.String()
}

// Run partitions d with HyPart and executes the BSP fixpoint with n
// workers.
func Run(d *relation.Dataset, rules []*rule.Rule, reg *mlpred.Registry, opts Options) (*Result, error) {
	n := opts.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	maxSteps := opts.MaxSupersteps
	if maxSteps <= 0 {
		maxSteps = 1 << 20
	}

	t0 := time.Now()
	part, err := hypart.Partition(d, rules, n, hypart.Options{
		Share:          !opts.NoMQO,
		ReplicationCap: opts.ReplicationCap,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{PartitionStats: part.Stats, d: d}
	res.PartitionTime = time.Since(t0)

	idSpace := 0
	for _, t := range d.Tuples() {
		if int(t.GID)+1 > idSpace {
			idSpace = int(t.GID) + 1
		}
	}

	// Build one chase engine per worker over its fragment, with each rule
	// scoped to the union of the worker's blocks generated for that rule
	// (hypercube semantics: a rule is checked within its own blocks).
	// Identical rule scopes are deduplicated so MQO index sharing applies.
	workers := make([]*chase.Engine, n)
	hosts := make(map[relation.TID][]int)
	for i, frag := range part.Fragments {
		fd := d.Fragment(frag)
		scopes := make([]*relation.Dataset, len(rules))
		byContent := map[string]*relation.Dataset{}
		for ri, ids := range part.RuleFragments[i] {
			if len(ids) == len(frag) {
				scopes[ri] = fd
				continue
			}
			key := scopeKey(ids)
			if sc, ok := byContent[key]; ok {
				scopes[ri] = sc
				continue
			}
			sc := d.Fragment(ids)
			byContent[key] = sc
			scopes[ri] = sc
		}
		eng, err := chase.NewScoped(fd, rules, scopes, reg, chase.Options{
			MaxDeps:      opts.MaxDeps,
			ShareIndexes: !opts.NoMQO,
			IDSpace:      idSpace,
		})
		if err != nil {
			return nil, fmt.Errorf("dmatch: worker %d: %w", i, err)
		}
		workers[i] = eng
		for _, gid := range frag {
			hosts[gid] = append(hosts[gid], i)
		}
	}

	t1 := time.Now()
	// The master tracks the global E_id (with class member lists) so that
	// a match merging classes Ca and Cb can be routed to every worker
	// hosting *any* member of either class: a worker hosting x and y
	// needs the bridging fact (a,b) even when it hosts neither a nor b,
	// otherwise transitive chains through remote tuples would be lost.
	guf := chase.BuildEquivalence(d, nil)
	members := make(map[int][]relation.TID, d.Size())
	for _, t := range d.Tuples() {
		root := guf.Find(int(t.GID))
		members[root] = append(members[root], t.GID)
	}
	seenML := make(map[chase.Fact]bool)
	inboxes := make([][]chase.Fact, n)
	deltas := make([][]chase.Fact, n)

	elapsed := make([]time.Duration, n)
	runStep := func(step int) {
		if opts.Sequential {
			for i := range workers {
				start := time.Now()
				if step == 0 {
					deltas[i] = workers[i].Deduce()
				} else if len(inboxes[i]) > 0 {
					deltas[i] = workers[i].IncDeduce(inboxes[i])
				} else {
					deltas[i] = nil
				}
				elapsed[i] = time.Since(start)
			}
			return
		}
		var wg sync.WaitGroup
		for i := range workers {
			if step > 0 && len(inboxes[i]) == 0 {
				deltas[i] = nil
				elapsed[i] = 0
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				start := time.Now()
				if step == 0 {
					deltas[i] = workers[i].Deduce()
				} else {
					deltas[i] = workers[i].IncDeduce(inboxes[i])
				}
				elapsed[i] = time.Since(start)
			}(i)
		}
		wg.Wait()
	}

	for step := 0; step < maxSteps; step++ {
		runStep(step)
		res.Supersteps++
		var stepMax time.Duration
		for _, e := range elapsed {
			if e > stepMax {
				stepMax = e
			}
		}
		res.SimulatedTime += stepMax
		// Master: take the union of the workers' new facts, record them
		// in the global Γ, and route each to the other hosts of its
		// tuples (the ΔΓ_i of the fixpoint equations).
		next := make([][]chase.Fact, n)
		route := func(f chase.Fact, from int, recipients map[int]bool) {
			for host := range recipients {
				if host == from {
					continue
				}
				next[host] = append(next[host], f)
				res.MessagesRouted++
			}
		}
		for w, delta := range deltas {
			res.FactsProduced += int64(len(delta))
			for _, f := range delta {
				if f.Kind == chase.FactMatch {
					ra, rb := guf.Find(int(f.A)), guf.Find(int(f.B))
					if ra == rb {
						continue // globally redundant
					}
					recipients := make(map[int]bool)
					for _, gid := range members[ra] {
						for _, h := range hosts[gid] {
							recipients[h] = true
						}
					}
					for _, gid := range members[rb] {
						for _, h := range hosts[gid] {
							recipients[h] = true
						}
					}
					merged := append(members[ra], members[rb]...)
					guf.Union(ra, rb)
					root := guf.Find(ra)
					delete(members, ra)
					delete(members, rb)
					members[root] = merged
					res.Matches = append(res.Matches, f)
					route(f, w, recipients)
				} else {
					if seenML[f] {
						continue
					}
					seenML[f] = true
					res.Validated = append(res.Validated, f)
					recipients := make(map[int]bool)
					for _, h := range hosts[f.A] {
						recipients[h] = true
					}
					for _, h := range hosts[f.B] {
						recipients[h] = true
					}
					route(f, w, recipients)
				}
			}
		}
		inboxes = next
		empty := true
		for _, in := range inboxes {
			if len(in) > 0 {
				empty = false
				break
			}
		}
		if empty {
			break
		}
	}
	res.ERTime = time.Since(t1)
	res.Eq = guf
	for _, w := range workers {
		res.WorkerStats = append(res.WorkerStats, w.Stats())
	}
	return res, nil
}
