// Package dmatch implements the parallel algorithm DMatch of Section V-B:
// the BSP fixpoint model of Section III-B over fragments produced by
// HyPart. Each worker runs the sequential chase engine on its fragment —
// partial evaluation A (Deduce) in the first superstep, incremental A_Δ
// (IncDeduce) afterwards — and a master routes newly deduced matches and
// validated ML predictions to the workers hosting either tuple. No raw
// tuples are ever exchanged after partitioning, only facts.
//
// DMatch is parallelly scalable relative to Match (Theorem 7): work is
// evenly spread by HyPart's virtual blocks + LPT balancing, and the total
// incremental work is bounded by the number of facts, so runtime shrinks
// proportionally as workers are added.
package dmatch

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"dcer/internal/chase"
	"dcer/internal/fnv"
	"dcer/internal/hypart"
	"dcer/internal/mlpred"
	"dcer/internal/provenance"
	"dcer/internal/relation"
	"dcer/internal/rule"
	"dcer/internal/telemetry"
	"dcer/internal/unionfind"
)

// Options configures a DMatch run.
type Options struct {
	// Workers is the number n of workers; 0 means GOMAXPROCS.
	Workers int
	// NoMQO disables hash-function sharing in HyPart and index/ML-cache
	// sharing in the per-worker engines (the DMatch_noMQO ablation).
	NoMQO bool
	// MaxDeps is the per-worker dependency-store capacity K (see chase).
	MaxDeps int
	// ReplicationCap bounds HyPart's per-tuple copy factor (see hypart).
	ReplicationCap int
	// MaxSupersteps bounds the BSP loop as a safety net; 0 means 1 << 20.
	MaxSupersteps int
	// Sequential forces the supersteps to run workers one at a time (and
	// each worker's Deduce to enumerate rules sequentially); useful for
	// deterministic debugging and undistorted per-worker timings.
	Sequential bool
	// SequentialDeduce keeps the supersteps parallel across workers but
	// disables the concurrent per-rule first pass inside each worker's
	// Deduce (the pre-intra-parallelism behavior, kept for comparison).
	SequentialDeduce bool
	// SequentialDrain disables the batched parallel drain inside each
	// worker's Deduce/IncDeduce (see chase.Options.SequentialDrain), so
	// every superstep's incremental pass runs single-threaded per worker.
	SequentialDrain bool
	// DrainParallelMin overrides the per-worker parallel-drain batch
	// threshold (see chase.Options.DrainParallelMin); 0 keeps the default.
	DrainParallelMin int
	// Metrics, when non-nil, receives live instrumentation: per-superstep
	// makespan/skew gauges, routing counters, per-worker busy histograms,
	// the partition-size histograms of HyPart, and every worker engine's
	// chase series (labeled worker=i). The in-progress superstep timeline
	// is exposed as the "dmatch_timeline" debug provider (/debug/dcer).
	Metrics *telemetry.Registry
	// Provenance enables justification capture: every worker engine
	// records its derivations into a per-worker log stamped with the
	// worker id and the current superstep, and the logs are stitched into
	// one global log after the fixpoint (Result.Provenance / Result.Proof).
	// Off by default; the disabled cost is one branch per applied fact.
	Provenance bool
	// ProvenanceLimit bounds each worker's log (0 means
	// provenance.DefaultLimit, negative means unbounded).
	ProvenanceLimit int
}

// Result is the outcome of a parallel run.
type Result struct {
	// Matches is the deduplicated set of deduced match facts.
	Matches []chase.Fact
	// Validated is the deduplicated set of validated ML predictions.
	Validated []chase.Fact
	// Eq is the global id-equivalence relation E_id over the dataset.
	Eq *unionfind.UnionFind

	Supersteps     int
	MessagesRouted int64 // facts delivered worker->worker via the master
	FactsProduced  int64 // facts reported by workers incl. duplicates
	PartitionStats hypart.Stats
	PartitionTime  time.Duration
	ERTime         time.Duration
	// SimulatedTime is the BSP makespan: per superstep, the maximum
	// compute time over the workers, summed over supersteps. On a
	// machine with fewer cores than workers this — not wall-clock ERTime
	// — is the faithful stand-in for the runtime on a real n-machine
	// cluster (use Options.Sequential for undistorted per-worker
	// timings). The parallel-scalability experiments report it.
	SimulatedTime time.Duration
	WorkerStats   []chase.Stats

	timeline Timeline
	prov     *provenance.Log
	d        *relation.Dataset
}

// Provenance returns the merged cross-worker justification log of the run
// (nil when Options.Provenance was off): the per-worker logs stitched in
// (superstep, worker, sequence) order, with each routed fact's arrival
// record displaced by the originating worker's derivation.
func (r *Result) Provenance() *provenance.Log { return r.prov }

// Proof extracts a justification of the pair (a, b) from the merged log —
// including proofs whose derivation chain crosses workers. It returns
// provenance.ErrNotEntailed for unmatched pairs and
// provenance.ErrIncomplete when capture was off or a log overflowed.
func (r *Result) Proof(a, b relation.TID) ([]provenance.Entry, error) {
	return r.prov.Proof([2]relation.TID{a, b}, chase.BuildEquivalence(r.d, nil))
}

// Timeline returns the BSP superstep profile of the run: per-worker
// busy/idle time, routed message counts, and skew, one entry per
// superstep. Always recorded (the cost is bounded by supersteps×workers).
func (r *Result) Timeline() *Timeline { return &r.timeline }

// Same reports whether two tuples are matched in the global Γ.
func (r *Result) Same(a, b relation.TID) bool {
	return a == b || r.Eq.Same(int(a), int(b))
}

// Classes returns the non-singleton global equivalence classes.
func (r *Result) Classes() [][]relation.TID {
	groups := make(map[int][]relation.TID)
	for _, t := range r.d.Tuples() {
		root := r.Eq.Find(int(t.GID))
		groups[root] = append(groups[root], t.GID)
	}
	var out [][]relation.TID
	for _, g := range groups {
		if len(g) > 1 {
			out = append(out, g)
		}
	}
	return out
}

// scopeKey fingerprints a sorted id list for scope deduplication with
// 64-bit FNV-1a — no per-id string building. Callers confirm candidate
// hits with sameIDs, so a hash collision costs a duplicate scope dataset,
// never a wrong one.
func scopeKey(ids []relation.TID) uint64 {
	h := uint64(fnv.Offset64)
	h = fnv.Uint64(h, uint64(len(ids)))
	for _, id := range ids {
		h = fnv.Uint64(h, uint64(id))
	}
	return h
}

// sameIDs reports whether two sorted id lists are identical.
func sameIDs(a, b []relation.TID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// recipientSet accumulates the distinct workers a fact must be routed to,
// using a generation-stamped membership array and a reusable list instead
// of a fresh map per fact.
type recipientSet struct {
	stamp []int
	gen   int
	list  []int
}

func newRecipientSet(n int) *recipientSet {
	return &recipientSet{stamp: make([]int, n)}
}

func (r *recipientSet) reset() {
	r.gen++
	r.list = r.list[:0]
}

func (r *recipientSet) add(hosts []int) {
	for _, h := range hosts {
		if r.stamp[h] != r.gen {
			r.stamp[h] = r.gen
			r.list = append(r.list, h)
		}
	}
}

// Run partitions d with HyPart and executes the BSP fixpoint with n
// workers.
func Run(d *relation.Dataset, rules []*rule.Rule, reg *mlpred.Registry, opts Options) (*Result, error) {
	n := opts.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	maxSteps := opts.MaxSupersteps
	if maxSteps <= 0 {
		maxSteps = 1 << 20
	}

	t0 := time.Now()
	part, err := hypart.Partition(d, rules, n, hypart.Options{
		Share:          !opts.NoMQO,
		ReplicationCap: opts.ReplicationCap,
		Metrics:        opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{PartitionStats: part.Stats, d: d}
	res.PartitionTime = time.Since(t0)

	idSpace := 0
	for _, t := range d.Tuples() {
		if int(t.GID)+1 > idSpace {
			idSpace = int(t.GID) + 1
		}
	}

	// Build one chase engine per worker over its fragment, with each rule
	// scoped to the union of the worker's blocks generated for that rule
	// (hypercube semantics: a rule is checked within its own blocks).
	// Identical rule scopes are deduplicated so MQO index sharing applies.
	workers := make([]*chase.Engine, n)
	var provLogs []*provenance.Log
	if opts.Provenance {
		provLogs = make([]*provenance.Log, n)
		for i := range provLogs {
			provLogs[i] = provenance.NewLog(opts.ProvenanceLimit)
			provLogs[i].SetWorker(i)
		}
	}
	hosts := make([][]int, idSpace)
	type scopeEntry struct {
		ids []relation.TID
		sc  *relation.Dataset
	}
	for i, frag := range part.Fragments {
		fd := d.Fragment(frag)
		scopes := make([]*relation.Dataset, len(rules))
		byContent := map[uint64][]scopeEntry{}
		for ri, ids := range part.RuleFragments[i] {
			if len(ids) == len(frag) {
				scopes[ri] = fd
				continue
			}
			key := scopeKey(ids)
			found := false
			for _, ent := range byContent[key] {
				if sameIDs(ent.ids, ids) {
					scopes[ri] = ent.sc
					found = true
					break
				}
			}
			if found {
				continue
			}
			sc := d.Fragment(ids)
			byContent[key] = append(byContent[key], scopeEntry{ids, sc})
			scopes[ri] = sc
		}
		copts := chase.Options{
			MaxDeps:          opts.MaxDeps,
			ShareIndexes:     !opts.NoMQO,
			IDSpace:          idSpace,
			SequentialDeduce: opts.Sequential || opts.SequentialDeduce,
			SequentialDrain:  opts.Sequential || opts.SequentialDrain,
			DrainParallelMin: opts.DrainParallelMin,
			Metrics:          opts.Metrics,
			MetricsLabels:    []telemetry.Label{telemetry.L("worker", strconv.Itoa(i))},
		}
		if provLogs != nil {
			copts.Provenance = provLogs[i]
		}
		eng, err := chase.NewScoped(fd, rules, scopes, reg, copts)
		if err != nil {
			return nil, fmt.Errorf("dmatch: worker %d: %w", i, err)
		}
		workers[i] = eng
		for _, gid := range frag {
			hosts[gid] = append(hosts[gid], i)
		}
	}

	t1 := time.Now()
	// The master tracks the global E_id (with class member lists) so that
	// a match merging classes Ca and Cb can be routed to every worker
	// hosting *any* member of either class: a worker hosting x and y
	// needs the bridging fact (a,b) even when it hosts neither a nor b,
	// otherwise transitive chains through remote tuples would be lost.
	guf := chase.BuildEquivalence(d, nil)
	members := make(map[int][]relation.TID, d.Size())
	for _, t := range d.Tuples() {
		root := guf.Find(int(t.GID))
		members[root] = append(members[root], t.GID)
	}
	seenML := make(map[chase.Fact]bool)
	inboxes := make([][]chase.Fact, n)
	deltas := make([][]chase.Fact, n)

	// BSP instruments. Every instrument is a no-op when opts.Metrics is
	// nil (nil-safe telemetry handles), so the loop below reads the same
	// either way; the superstep timeline itself is recorded
	// unconditionally (its cost is bounded by supersteps × workers).
	tl := &res.timeline
	tl.Workers = n
	var tlMu sync.Mutex
	mreg := opts.Metrics
	stepGauge := mreg.Gauge("dcer_dmatch_superstep")
	makespanGauge := mreg.Gauge("dcer_dmatch_step_makespan_ns")
	skewGauge := mreg.Gauge("dcer_dmatch_step_skew")
	routedCtr := mreg.Counter("dcer_dmatch_messages_routed")
	factsCtr := mreg.Counter("dcer_dmatch_facts_produced")
	routeHist := mreg.Histogram("dcer_dmatch_route_ns")
	busyHists := make([]*telemetry.Histogram, n)
	for i := range busyHists {
		busyHists[i] = mreg.Histogram("dcer_dmatch_worker_busy_ns", telemetry.L("worker", strconv.Itoa(i)))
	}
	mreg.SetDebug("dmatch_timeline", func() any {
		tlMu.Lock()
		defer tlMu.Unlock()
		return Timeline{Workers: tl.Workers, Steps: append([]Superstep(nil), tl.Steps...)}
	})
	if provLogs != nil {
		// Replace the per-engine providers registered by the worker
		// engines with the aggregate view over all worker logs.
		mreg.SetDebug("provenance", func() any { return provenance.Summarize(provLogs...) })
	}

	elapsed := make([]time.Duration, n)
	runStep := func(step int) {
		if opts.Sequential {
			for i := range workers {
				start := time.Now()
				if step == 0 {
					deltas[i] = workers[i].Deduce()
				} else if len(inboxes[i]) > 0 {
					deltas[i] = workers[i].IncDeduce(inboxes[i])
				} else {
					deltas[i] = nil
				}
				elapsed[i] = time.Since(start)
			}
			return
		}
		var wg sync.WaitGroup
		for i := range workers {
			if step > 0 && len(inboxes[i]) == 0 {
				deltas[i] = nil
				elapsed[i] = 0
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				start := time.Now()
				if step == 0 {
					deltas[i] = workers[i].Deduce()
				} else {
					deltas[i] = workers[i].IncDeduce(inboxes[i])
				}
				elapsed[i] = time.Since(start)
			}(i)
		}
		wg.Wait()
	}

	msgsIn := make([]int, n)
	factsOut := make([]int, n)
	for step := 0; step < maxSteps; step++ {
		for i := range inboxes {
			msgsIn[i] = len(inboxes[i])
		}
		for _, l := range provLogs {
			l.SetStep(step)
		}
		runStep(step)
		res.Supersteps++
		var stepMax time.Duration
		for _, e := range elapsed {
			if e > stepMax {
				stepMax = e
			}
		}
		res.SimulatedTime += stepMax
		stepGauge.Set(float64(step))
		makespanGauge.Set(float64(stepMax))
		for i, e := range elapsed {
			busyHists[i].Observe(uint64(e))
		}
		routedBefore, factsBefore := res.MessagesRouted, res.FactsProduced
		routeStart := time.Now()
		// Master: take the union of the workers' new facts, record them
		// in the global Γ, and route each to the other hosts of its
		// tuples (the ΔΓ_i of the fixpoint equations). The recipient set
		// is rebuilt per fact in reusable scratch (generation stamps)
		// instead of a fresh map allocation.
		next := make([][]chase.Fact, n)
		rec := newRecipientSet(n)
		route := func(f chase.Fact, from int) {
			for _, host := range rec.list {
				if host == from {
					continue
				}
				next[host] = append(next[host], f)
				res.MessagesRouted++
			}
		}
		for w, delta := range deltas {
			res.FactsProduced += int64(len(delta))
			for _, f := range delta {
				if f.Kind == chase.FactMatch {
					ra, rb := guf.Find(int(f.A)), guf.Find(int(f.B))
					if ra == rb {
						continue // globally redundant
					}
					rec.reset()
					for _, gid := range members[ra] {
						rec.add(hosts[gid])
					}
					for _, gid := range members[rb] {
						rec.add(hosts[gid])
					}
					merged := append(members[ra], members[rb]...)
					guf.Union(ra, rb)
					root := guf.Find(ra)
					delete(members, ra)
					delete(members, rb)
					members[root] = merged
					res.Matches = append(res.Matches, f)
					route(f, w)
				} else {
					if seenML[f] {
						continue
					}
					seenML[f] = true
					res.Validated = append(res.Validated, f)
					rec.reset()
					rec.add(hosts[f.A])
					rec.add(hosts[f.B])
					route(f, w)
				}
			}
		}
		inboxes = next
		routeNs := int64(time.Since(routeStart))
		stepRouted := res.MessagesRouted - routedBefore
		routeHist.Observe(uint64(routeNs))
		routedCtr.Add(stepRouted)
		factsCtr.Add(res.FactsProduced - factsBefore)
		for i, dl := range deltas {
			factsOut[i] = len(dl)
		}
		tlMu.Lock()
		tl.record(step, elapsed, factsOut, msgsIn, routeNs, stepRouted)
		ss := &tl.Steps[len(tl.Steps)-1]
		skew := ss.SkewRatio
		tlMu.Unlock()
		skewGauge.Set(skew)
		empty := true
		for _, in := range inboxes {
			if len(in) > 0 {
				empty = false
				break
			}
		}
		if empty {
			break
		}
	}
	res.ERTime = time.Since(t1)
	res.Eq = guf
	for _, w := range workers {
		res.WorkerStats = append(res.WorkerStats, w.Stats())
	}
	if provLogs != nil {
		res.prov = provenance.Merge(provLogs...)
	}
	return res, nil
}
