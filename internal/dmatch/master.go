package dmatch

import (
	"fmt"

	"dcer/internal/chase"
	"dcer/internal/mlpred"
	"dcer/internal/relation"
	"dcer/internal/rule"
	"dcer/internal/unionfind"
)

// masterState is the master's global view of a DMatch run, shared by the
// in-process BSP loop (Run) and the distributed one (RunDistributed): the
// global id-equivalence relation E_id with per-class host bitsets, the
// tuple→worker host lists, the per-destination delivery records
// (seen-sets), and the route scratch the per-superstep fold reuses. The
// routing discipline is PR-5's: phase 1 folds every new fact into Γ
// sequentially and computes its recipient bitset (two bitword ORs off the
// class roots); phase 2 builds each destination's inbox independently,
// suppressing re-deliveries. Extracting it here keeps the two masters
// byte-identical — the in-process mode is the distributed mode's
// equivalence oracle.
type masterState struct {
	n       int // worker count (fixed; dead workers keep their slot)
	words   int // host-bitset words, (n+63)/64
	idSpace int
	d       *relation.Dataset

	guf      *unionfind.UnionFind
	hosts    [][]int          // hosts[gid] = workers hosting the tuple
	hostBits map[int][]uint64 // class root -> bitset of hosting workers
	seenML   map[chase.Fact]bool
	// seen[w] is worker w's delivery record: every fact routed to w plus
	// every fact w produced itself. The per-destination builders consult
	// it so a fact is never re-sent (Result.MessagesDeduped counts the
	// suppressions); rebuilds (migration or recovery) reset it.
	seen []map[chase.Fact]struct{}

	// Route scratch, reused across supersteps: the fact list and the
	// recipient-bitset arena the per-destination builders read.
	routes []factRoute
	arena  []uint64
}

// datasetIDSpace is the dense id-space bound of a dataset (max GID + 1).
// The master and the worker processes must derive the same value from the
// same dataset — it sizes every union-find and scoping structure.
func datasetIDSpace(d *relation.Dataset) int {
	idSpace := 0
	for _, t := range d.Tuples() {
		if int(t.GID)+1 > idSpace {
			idSpace = int(t.GID) + 1
		}
	}
	return idSpace
}

// newMasterState builds the master view over dataset d for n workers.
func newMasterState(d *relation.Dataset, n int) *masterState {
	idSpace := datasetIDSpace(d)
	ms := &masterState{
		n:       n,
		words:   (n + 63) / 64,
		idSpace: idSpace,
		d:       d,
		guf:     chase.BuildEquivalence(d, nil),
		seenML:  make(map[chase.Fact]bool),
		seen:    make([]map[chase.Fact]struct{}, n),
	}
	for i := range ms.seen {
		ms.seen[i] = make(map[chase.Fact]struct{})
	}
	return ms
}

// setHosts rebuilds the tuple→worker host lists from the fragments.
func (ms *masterState) setHosts(frags [][]relation.TID) {
	ms.hosts = make([][]int, ms.idSpace)
	for i, frag := range frags {
		for _, gid := range frag {
			ms.hosts[gid] = append(ms.hosts[gid], i)
		}
	}
}

// rebuildHostBits recomputes the per-class-root host bitsets. The master
// tracks, per class root, the bitset of workers hosting *any* member of
// the class: a match merging classes Ca and Cb must reach every worker
// hosting any member of either class — a worker hosting x and y needs the
// bridging fact (a,b) even when it hosts neither a nor b, otherwise
// transitive chains through remote tuples would be lost. Keeping host
// bitsets at the roots makes a recipient set two bitword ORs instead of a
// member-list walk, and class union a bitset merge.
func (ms *masterState) rebuildHostBits() {
	ms.hostBits = make(map[int][]uint64, ms.d.Size())
	for _, t := range ms.d.Tuples() {
		root := ms.guf.Find(int(t.GID))
		bs := ms.hostBits[root]
		if bs == nil {
			bs = make([]uint64, ms.words)
			ms.hostBits[root] = bs
		}
		for _, h := range ms.hosts[t.GID] {
			bs[h>>6] |= 1 << (uint(h) & 63)
		}
	}
}

// beginFold resets the route scratch for a new superstep.
func (ms *masterState) beginFold() {
	ms.routes = ms.routes[:0]
	ms.arena = ms.arena[:0]
}

// foldDelta folds one worker's superstep delta into the global Γ
// (phase 1, sequential): globally redundant matches are dropped, class
// merges fold the host bitsets, and every surviving fact is appended to
// the route list with its recipient bitset (the ΔΓ_i of the fixpoint
// equations). Matches/Validated accumulate into res in fold order, so
// callers must fold deltas in worker-index order for the deterministic
// Γ both masters share.
func (ms *masterState) foldDelta(w int, delta []chase.Fact, res *Result) {
	words := ms.words
	for _, f := range delta {
		if f.Kind == chase.FactMatch {
			ra, rb := ms.guf.Find(int(f.A)), ms.guf.Find(int(f.B))
			if ra == rb {
				continue // globally redundant
			}
			ba, bb := ms.hostBits[ra], ms.hostBits[rb]
			off := len(ms.arena)
			for i := 0; i < words; i++ {
				var x uint64
				if ba != nil {
					x = ba[i]
				}
				if bb != nil {
					x |= bb[i]
				}
				ms.arena = append(ms.arena, x)
			}
			ms.guf.Union(ra, rb)
			root := ms.guf.Find(ra)
			delete(ms.hostBits, ra)
			delete(ms.hostBits, rb)
			if ba == nil {
				ba = make([]uint64, words)
			}
			copy(ba, ms.arena[off:off+words])
			ms.hostBits[root] = ba
			res.Matches = append(res.Matches, f)
			ms.routes = append(ms.routes, factRoute{f: f, from: w, off: off})
		} else {
			if ms.seenML[f] {
				continue
			}
			ms.seenML[f] = true
			res.Validated = append(res.Validated, f)
			off := len(ms.arena)
			for i := 0; i < words; i++ {
				ms.arena = append(ms.arena, 0)
			}
			for _, h := range ms.hosts[f.A] {
				ms.arena[off+h>>6] |= 1 << (uint(h) & 63)
			}
			for _, h := range ms.hosts[f.B] {
				ms.arena[off+h>>6] |= 1 << (uint(h) & 63)
			}
			ms.routes = append(ms.routes, factRoute{f: f, from: w, off: off})
		}
	}
}

// buildDest assembles destination h's inbox from the folded routes
// (phase 2). selfDelta is the delta h itself produced this superstep; it
// joins h's delivery record first so self-produced facts are suppressed.
// Each destination owns its inbox, seen-set, and counters, so the fan-out
// is race-free and the built batches are identical to a sequential build.
func (ms *masterState) buildDest(h int, selfDelta []chase.Fact) (out []chase.Fact, routed, deduped int64) {
	sh := ms.seen[h]
	for _, f := range selfDelta {
		sh[f] = struct{}{}
	}
	for _, r := range ms.routes {
		if r.from == h || ms.arena[r.off+(h>>6)]&(1<<(uint(h)&63)) == 0 {
			continue
		}
		if _, dup := sh[r.f]; dup {
			deduped++
			continue
		}
		sh[r.f] = struct{}{}
		out = append(out, r.f)
		routed++
	}
	return out, routed, deduped
}

// replayFor builds the fact history a rebuilt worker w must replay: every
// match fact (bridging facts may concern tuples it doesn't host) and the
// validated predictions over tuples it now hosts.
func (ms *masterState) replayFor(w int, res *Result) []chase.Fact {
	replay := append([]chase.Fact(nil), res.Matches...)
	for _, f := range res.Validated {
		if hasHost(ms.hosts[f.A], w) || hasHost(ms.hosts[f.B], w) {
			replay = append(replay, f)
		}
	}
	return replay
}

// resetWorker replaces w's delivery record with the replay set (a rebuilt
// worker starts from the replayed history, nothing else).
func (ms *masterState) resetWorker(w int, replay []chase.Fact) {
	sh := make(map[chase.Fact]struct{}, len(replay))
	for _, f := range replay {
		sh[f] = struct{}{}
	}
	ms.seen[w] = sh
}

// workerChaseOptions maps run options to the chase.Options every worker
// engine is built with. It is defined as the round-trip through the wire
// form (see distributed.go), so the in-process engines and the worker-
// process engines are constructed from identical chase.Options by
// construction — engine construction is part of the Γ byte-identity
// contract between the two modes (observability hooks are layered on by
// the caller; they never change Γ).
func workerChaseOptions(opts Options, idSpace int) chase.Options {
	return chaseOptsFromWire(wireEngineOpts(opts), idSpace)
}

// buildWorkerEngine constructs one chase engine over a fragment, with
// each rule scoped to the union of the worker's blocks generated for that
// rule (hypercube semantics: a rule is checked within its own blocks).
// Identical rule scopes are deduplicated so MQO index sharing applies.
// Shared by Run, the adaptive rebalancer, and RunWorker (worker
// processes), which is what keeps the engines — and therefore Γ —
// identical across execution modes.
func buildWorkerEngine(d *relation.Dataset, rules []*rule.Rule, reg *mlpred.Registry,
	i int, frag []relation.TID, ruleFrags [][]relation.TID, copts chase.Options) (*chase.Engine, error) {
	fd := d.Fragment(frag)
	scopes := make([]*relation.Dataset, len(rules))
	type scopeEntry struct {
		ids []relation.TID
		sc  *relation.Dataset
	}
	byContent := map[uint64][]scopeEntry{}
	for ri, ids := range ruleFrags {
		if len(ids) == len(frag) {
			scopes[ri] = fd
			continue
		}
		key := scopeKey(ids)
		found := false
		for _, ent := range byContent[key] {
			if sameIDs(ent.ids, ids) {
				scopes[ri] = ent.sc
				found = true
				break
			}
		}
		if found {
			continue
		}
		sc := d.Fragment(ids)
		byContent[key] = append(byContent[key], scopeEntry{ids, sc})
		scopes[ri] = sc
	}
	eng, err := chase.NewScoped(fd, rules, scopes, reg, copts)
	if err != nil {
		return nil, fmt.Errorf("dmatch: worker %d: %w", i, err)
	}
	return eng, nil
}
