package dmatch_test

import (
	"testing"

	"dcer/internal/datagen"
	"dcer/internal/dmatch"
	"dcer/internal/mlpred"
	"dcer/internal/telemetry"
)

// TestParallelTraceCausality is the causal-trace property test: a DMatch
// run with four workers and a registry attached must leave a span ring
// in which every non-root span's parent ID resolves to a recorded span
// of the same trace, and in which at least two distinct worker lanes
// appear — i.e. the trace really is a tree spread over the workers, not
// a flat list on one lane.
func TestParallelTraceCausality(t *testing.T) {
	d, _ := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	if _, err := dmatch.Run(d, rules, mlpred.DefaultRegistry(), dmatch.Options{
		Workers: 4,
		Metrics: reg,
	}); err != nil {
		t.Fatal(err)
	}

	spans := reg.Tracer().Snapshot()
	if len(spans) == 0 {
		t.Fatal("a traced run recorded no spans")
	}

	// Index span IDs per trace, then check parent resolution. The ring
	// is bounded, so a parent could in principle be evicted — but the
	// paper example is far below DefaultTraceCap, so here every parent
	// must be present.
	ids := map[uint64]map[uint64]bool{} // trace ID → span IDs
	for _, sp := range spans {
		if sp.TraceID == 0 {
			continue
		}
		if sp.SpanID == 0 {
			t.Errorf("span %q has a trace ID but no span ID", sp.Name)
			continue
		}
		if ids[sp.TraceID] == nil {
			ids[sp.TraceID] = map[uint64]bool{}
		}
		if ids[sp.TraceID][sp.SpanID] {
			t.Errorf("duplicate span ID %d in trace %d", sp.SpanID, sp.TraceID)
		}
		ids[sp.TraceID][sp.SpanID] = true
	}
	if len(ids) == 0 {
		t.Fatal("no causal spans recorded")
	}
	var roots, workerLanes int
	lanes := map[int32]bool{}
	for _, sp := range spans {
		if sp.TraceID == 0 {
			continue
		}
		if sp.ParentID == 0 {
			roots++
		} else if !ids[sp.TraceID][sp.ParentID] {
			t.Errorf("span %q (trace %d): parent %d not recorded in the same trace",
				sp.Name, sp.TraceID, sp.ParentID)
		}
		if sp.PID == telemetry.PIDDMatch && sp.TID > 0 && !lanes[sp.TID] {
			lanes[sp.TID] = true
			workerLanes++
		}
	}
	if roots == 0 {
		t.Error("no root span (dmatch.Run) recorded")
	}
	if workerLanes < 2 {
		t.Errorf("got %d distinct dmatch worker lanes, want >= 2", workerLanes)
	}

	// The expected structural spans of a parallel run must all appear.
	names := map[string]bool{}
	for _, sp := range spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"dmatch.Run", "dmatch.superstep", "dmatch.route", "hypart.Partition", "chase.Deduce"} {
		if !names[want] {
			t.Errorf("missing expected span %q in trace", want)
		}
	}
}
