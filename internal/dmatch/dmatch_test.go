package dmatch_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"dcer/internal/chase"
	"dcer/internal/datagen"
	"dcer/internal/dmatch"
	"dcer/internal/mlpred"
	"dcer/internal/relation"
)

// classSignature canonicalizes equivalence classes for comparison.
func classSignature(classes [][]relation.TID) string {
	var strsOut []string
	for _, c := range classes {
		ids := make([]int, len(c))
		for i, x := range c {
			ids[i] = int(x)
		}
		sort.Ints(ids)
		strsOut = append(strsOut, fmt.Sprint(ids))
	}
	sort.Strings(strsOut)
	return strings.Join(strsOut, ";")
}

// TestParallelEqualsSequential checks Proposition 8 on the running
// example: DMatch with any worker count converges to the same Γ as the
// sequential Match.
func TestParallelEqualsSequential(t *testing.T) {
	d, _ := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := chase.New(d, rules, mlpred.DefaultRegistry(), chase.Options{ShareIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	seq.Run()
	want := classSignature(seq.Classes())

	for _, n := range []int{1, 2, 3, 4, 8} {
		d2, _ := datagen.PaperExample()
		rules2, err := datagen.PaperRules(d2.DB)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dmatch.Run(d2, rules2, mlpred.DefaultRegistry(), dmatch.Options{Workers: n})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := classSignature(res.Classes()); got != want {
			t.Errorf("n=%d: classes %s, want %s", n, got, want)
		}
	}
}

// TestParallelNoMQO checks the noMQO ablation reaches the same fixpoint.
func TestParallelNoMQO(t *testing.T) {
	d, _ := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	base, err := dmatch.Run(d, rules, mlpred.DefaultRegistry(), dmatch.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	noMQO, err := dmatch.Run(d, rules, mlpred.DefaultRegistry(), dmatch.Options{Workers: 4, NoMQO: true})
	if err != nil {
		t.Fatal(err)
	}
	if classSignature(base.Classes()) != classSignature(noMQO.Classes()) {
		t.Error("MQO and noMQO parallel runs disagree")
	}
	// Sharing must not use more hash functions than the baseline.
	if base.PartitionStats.HashFns > noMQO.PartitionStats.HashFns {
		t.Errorf("shared plan uses %d hash fns, noMQO %d",
			base.PartitionStats.HashFns, noMQO.PartitionStats.HashFns)
	}
}

// TestParallelDeterministicSequentialMode checks the Sequential debugging
// mode agrees with the concurrent mode.
func TestParallelDeterministicSequentialMode(t *testing.T) {
	d, _ := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := dmatch.Run(d, rules, mlpred.DefaultRegistry(), dmatch.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := dmatch.Run(d, rules, mlpred.DefaultRegistry(), dmatch.Options{Workers: 3, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if classSignature(conc.Classes()) != classSignature(seq.Classes()) {
		t.Error("sequential-mode and concurrent-mode runs disagree")
	}
}

// TestParallelEqualsSequentialTPCH checks Proposition 8 on a synthetic
// multi-relation workload with deep duplicate chains: the global fixpoint
// is independent of the worker count, including the MQO ablation.
func TestParallelEqualsSequentialTPCH(t *testing.T) {
	g := datagen.TPCH(datagen.TPCHOptions{Scale: 0.04, Dup: 0.4, Seed: 7})
	rules, err := g.Rules()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := chase.New(g.D, rules, mlpred.DefaultRegistry(), chase.Options{ShareIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	seq.Run()
	want := classSignature(seq.Classes())
	for _, n := range []int{2, 4, 7} {
		for _, noMQO := range []bool{false, true} {
			res, err := dmatch.Run(g.D, rules, mlpred.DefaultRegistry(),
				dmatch.Options{Workers: n, NoMQO: noMQO})
			if err != nil {
				t.Fatalf("n=%d noMQO=%v: %v", n, noMQO, err)
			}
			if got := classSignature(res.Classes()); got != want {
				t.Errorf("n=%d noMQO=%v: parallel fixpoint differs from sequential", n, noMQO)
			}
		}
	}
}

// TestParallelEqualsSequentialTFACC repeats the check on the TFACC shape.
func TestParallelEqualsSequentialTFACC(t *testing.T) {
	g := datagen.TFACC(datagen.TFACCOptions{Scale: 0.04, Dup: 0.4, Seed: 9})
	rules, err := g.Rules()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := chase.New(g.D, rules, mlpred.DefaultRegistry(), chase.Options{ShareIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	seq.Run()
	want := classSignature(seq.Classes())
	for _, n := range []int{3, 6} {
		res, err := dmatch.Run(g.D, rules, mlpred.DefaultRegistry(), dmatch.Options{Workers: n})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := classSignature(res.Classes()); got != want {
			t.Errorf("n=%d: parallel fixpoint differs from sequential", n)
		}
	}
}

// TestMessagesOnlyFacts sanity-checks the BSP accounting: a run with one
// worker routes no messages and needs one superstep.
func TestMessagesOnlyFacts(t *testing.T) {
	d, _ := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dmatch.Run(d, rules, mlpred.DefaultRegistry(), dmatch.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesRouted != 0 {
		t.Errorf("single worker routed %d messages, want 0", res.MessagesRouted)
	}
	if res.Supersteps != 1 {
		t.Errorf("single worker took %d supersteps, want 1", res.Supersteps)
	}
	if len(res.Matches) == 0 {
		t.Error("no matches deduced")
	}
}
