package dmatch

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// WorkerStep is one worker's share of one BSP superstep.
type WorkerStep struct {
	Worker   int   `json:"worker"`
	BusyNs   int64 `json:"busy_ns"`   // compute time inside Deduce/IncDeduce
	IdleNs   int64 `json:"idle_ns"`   // barrier wait: step makespan - busy
	FactsOut int   `json:"facts_out"` // delta facts the worker reported
	MsgsIn   int   `json:"msgs_in"`   // facts delivered to it for this step
}

// Superstep is the timeline entry for one BSP round: the per-worker
// compute profile, the master's routing time, and the step's skew.
type Superstep struct {
	Step       int   `json:"step"`
	MakespanNs int64 `json:"makespan_ns"` // max busy over workers
	RouteNs    int64 `json:"route_ns"`    // master routing after the barrier
	// WallNs is the real elapsed time of the whole superstep as the master
	// observed it: dispatch, worker compute, barrier, and routing. Unlike
	// SimulatedTime (a what-if model of an n-machine cluster), this is a
	// measurement.
	WallNs int64 `json:"wall_ns"`
	// BytesOnWire is the wire traffic of this superstep (both directions,
	// master side); 0 in in-process mode, where no bytes move.
	BytesOnWire    int64   `json:"bytes_on_wire"`
	SkewRatio      float64 `json:"skew_ratio"` // makespan / mean busy of active workers
	MessagesRouted int64   `json:"messages_routed"`
	// MessagesDeduped counts deliveries the per-destination seen-sets
	// suppressed this step (already delivered or locally produced).
	MessagesDeduped int64        `json:"messages_deduped"`
	Workers         []WorkerStep `json:"workers"`
}

// Timeline is the full BSP execution profile of a DMatch run, one entry
// per superstep. It marshals to JSON for /debug/dcer and bench reports,
// and renders as an ASCII Gantt chart for terminals.
type Timeline struct {
	Workers int         `json:"workers"`
	Steps   []Superstep `json:"steps"`
}

// record appends one superstep from the master's raw measurements.
func (tl *Timeline) record(step int, elapsed []time.Duration, factsOut, msgsIn []int, routeNs, wallNs, wireBytes int64, routed, deduped int64) {
	ss := Superstep{
		Step:            step,
		RouteNs:         routeNs,
		WallNs:          wallNs,
		BytesOnWire:     wireBytes,
		MessagesRouted:  routed,
		MessagesDeduped: deduped,
		Workers:         make([]WorkerStep, len(elapsed)),
	}
	var max, sum time.Duration
	active := 0
	for _, e := range elapsed {
		if e > max {
			max = e
		}
		if e > 0 {
			sum += e
			active++
		}
	}
	ss.MakespanNs = int64(max)
	if active > 0 && sum > 0 {
		ss.SkewRatio = float64(max) * float64(active) / float64(sum)
	}
	for i, e := range elapsed {
		ss.Workers[i] = WorkerStep{
			Worker:   i,
			BusyNs:   int64(e),
			IdleNs:   int64(max - e),
			FactsOut: factsOut[i],
			MsgsIn:   msgsIn[i],
		}
	}
	tl.Steps = append(tl.Steps, ss)
}

// JSON marshals the timeline (indented, stable field order).
func (tl *Timeline) JSON() ([]byte, error) {
	return json.MarshalIndent(tl, "", "  ")
}

// ParseTimeline is the inverse of JSON.
func ParseTimeline(data []byte) (*Timeline, error) {
	var tl Timeline
	if err := json.Unmarshal(data, &tl); err != nil {
		return nil, fmt.Errorf("dmatch: parse timeline: %w", err)
	}
	return &tl, nil
}

// ganttWidth is the character budget for the longest bar in Gantt output.
const ganttWidth = 40

// Gantt renders the timeline as an ASCII chart: one block per superstep,
// one bar per worker, '#' for busy time and '.' for barrier idle, scaled
// so the slowest worker of the slowest step spans ganttWidth characters.
func (tl *Timeline) Gantt() string {
	if tl == nil || len(tl.Steps) == 0 {
		return "(empty timeline)\n"
	}
	var maxNs int64
	for _, ss := range tl.Steps {
		if ss.MakespanNs > maxNs {
			maxNs = ss.MakespanNs
		}
	}
	if maxNs == 0 {
		maxNs = 1
	}
	var b strings.Builder
	for _, ss := range tl.Steps {
		wire := ""
		if ss.BytesOnWire > 0 {
			wire = fmt.Sprintf("  wire %dB", ss.BytesOnWire)
		}
		fmt.Fprintf(&b, "superstep %d  makespan %v  route %v  skew %.2f  msgs %d  deduped %d%s\n",
			ss.Step, time.Duration(ss.MakespanNs), time.Duration(ss.RouteNs),
			ss.SkewRatio, ss.MessagesRouted, ss.MessagesDeduped, wire)
		for _, w := range ss.Workers {
			busy := int(w.BusyNs * ganttWidth / maxNs)
			idle := int((w.BusyNs + w.IdleNs) * ganttWidth / maxNs)
			if w.BusyNs > 0 && busy == 0 {
				busy = 1
			}
			if idle < busy {
				idle = busy
			}
			fmt.Fprintf(&b, "  w%-3d |%s%s| busy %-12v out %-6d in %d\n",
				w.Worker,
				strings.Repeat("#", busy),
				strings.Repeat(".", idle-busy),
				time.Duration(w.BusyNs), w.FactsOut, w.MsgsIn)
		}
	}
	return b.String()
}
