package dmatch

import (
	"dcer/internal/chase"
	"dcer/internal/health"
	"dcer/internal/provenance"
	"dcer/internal/relation"
	"dcer/internal/unionfind"
)

// observeMasterAccuracy feeds the accuracy observatory from the globally
// folded matches — the authoritative stream, since workers only see their
// fragments. The new suffix since the previous superstep is
// stride-sampled (each fact scored at most once), false positives are
// attributed by looking the pair up across the per-worker provenance
// logs, and recall is probed against the global equivalence. Returns the
// new high-water mark into matches.
func observeMasterAccuracy(acc *health.Accuracy, matches []chase.Fact, seen int,
	provLogs []*provenance.Log, guf *unionfind.UnionFind) int {
	if n := len(matches); n > seen {
		fresh := matches[seen:]
		seen = n
		limit := acc.SampleSize()
		step := (len(fresh) + limit - 1) / limit
		if step < 1 {
			step = 1
		}
		pairs := make([][2]relation.TID, 0, (len(fresh)+step-1)/step)
		for i := 0; i < len(fresh); i += step {
			pairs = append(pairs, [2]relation.TID{fresh[i].A, fresh[i].B})
		}
		var attribute func(p [2]relation.TID) string
		if len(provLogs) > 0 {
			attribute = func(p [2]relation.TID) string {
				id := provenance.MatchID(p[0], p[1])
				for _, l := range provLogs {
					ent, ok := l.Lookup(id)
					if !ok {
						continue
					}
					if ent.Rule != "" {
						return ent.Rule
					}
					if ent.Origin != provenance.OriginExternal {
						return ent.Origin.String()
					}
					// An arrival record; keep looking for the
					// originating worker's derivation.
				}
				return ""
			}
		}
		acc.ObserveMatches(pairs, attribute)
	}
	acc.ObserveRecall(func(a, b relation.TID) bool { return guf.Same(int(a), int(b)) })
	return seen
}
