package dmatch_test

import (
	"testing"

	"dcer/internal/datagen"
	"dcer/internal/dmatch"
	"dcer/internal/mlpred"
	"dcer/internal/relation"
	"dcer/internal/rule"
)

// TestMoreWorkersThanBlocks runs with far more workers than the tiny
// dataset can fill: some workers get empty fragments and must not wedge
// the BSP loop.
func TestMoreWorkersThanBlocks(t *testing.T) {
	d, l := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dmatch.Run(d, rules, mlpred.DefaultRegistry(), dmatch.Options{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Same(l["t1"].GID, l["t3"].GID) {
		t.Error("deep match lost with 64 workers on 18 tuples")
	}
}

// TestNoValuations runs rules that match nothing.
func TestNoValuations(t *testing.T) {
	d, _ := datagen.PaperExample()
	rules, err := rule.ParseResolved(`
never: Customers(a) ^ Customers(b) ^ a.name = b.phone -> a.id = b.id
`, d.DB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dmatch.Run(d, rules, mlpred.DefaultRegistry(), dmatch.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 || len(res.Classes()) != 0 {
		t.Errorf("no-op rules produced %d matches", len(res.Matches))
	}
}

// TestEmptyDataset runs against an empty database.
func TestEmptyDataset(t *testing.T) {
	db := datagen.PaperSchemas()
	d := relation.NewDataset(db)
	rules, err := datagen.PaperRules(db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dmatch.Run(d, rules, mlpred.DefaultRegistry(), dmatch.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Error("matches on empty data")
	}
}

// TestSkewedData plants a pathological hot value (every tuple shares one
// attribute) and checks the engine still terminates with the right answer
// and the partitioner keeps some balance.
func TestSkewedData(t *testing.T) {
	str := relation.TypeString
	db := relation.MustDatabase(relation.MustSchema("R", "k",
		relation.Attribute{Name: "k", Type: str},
		relation.Attribute{Name: "hot", Type: str},
		relation.Attribute{Name: "v", Type: str}))
	d := relation.NewDataset(db)
	var truth [][2]relation.TID
	for i := 0; i < 120; i++ {
		a := d.MustAppend("R", relation.S(key("a", i)), relation.S("HOT"), relation.S(key("val", i)))
		b := d.MustAppend("R", relation.S(key("b", i)), relation.S("HOT"), relation.S(key("val", i)))
		truth = append(truth, [2]relation.TID{a.GID, b.GID})
	}
	rules, err := rule.ParseResolved(`
r: R(a) ^ R(b) ^ a.hot = b.hot ^ a.v = b.v -> a.id = b.id
`, db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dmatch.Run(d, rules, mlpred.DefaultRegistry(), dmatch.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range truth {
		if !res.Same(p[0], p[1]) {
			t.Fatalf("skewed pair (%d,%d) lost", p[0], p[1])
		}
	}
	if got := len(res.Classes()); got != len(truth) {
		t.Errorf("classes = %d, want %d", got, len(truth))
	}
}

func key(prefix string, i int) string {
	return prefix + string(rune('A'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('0'+i%10))
}
