package dmatch

import (
	"time"

	"dcer/internal/hypart"
)

// Skew-adaptive superstep scheduling (tentpole part 3): HyPart's LPT
// assignment balances workers by *predicted* block cost (block size), but
// the chase's actual cost per tuple varies with rule selectivity and ML
// hit rates, so a superstep can come out skewed even under a perfectly
// size-balanced assignment. When the observed skew ratio
// (makespan / mean busy time) of a superstep exceeds a threshold and more
// work is pending, the scheduler re-runs LPT over the virtual blocks'
// observed costs — each block's size scaled by its current worker's
// per-tuple rate this superstep — and migrates blocks between workers
// before the next superstep. Rebuilt workers re-run partial evaluation
// over their new fragments and replay the global fact history, so the
// fixpoint Γ is unchanged (facts are idempotent and the fixpoint is
// unique); only the schedule moves.

// RebalanceEvent describes one adaptive block migration.
type RebalanceEvent struct {
	// Step is the superstep after which the migration ran.
	Step int
	// BlocksMoved is how many virtual blocks changed workers.
	BlocksMoved int
	// WorkersRebuilt is how many workers got new fragments (≤ 2×moved).
	WorkersRebuilt int
	// SkewBefore is the skew ratio that triggered the migration;
	// SkewAfter is the ratio observed on the following superstep (0 until
	// that superstep completes).
	SkewBefore float64
	SkewAfter  float64
	// RebuildNs is the master-side cost of the migration: fragment
	// rebuild, engine construction, and fact replay preparation.
	RebuildNs int64
}

const (
	defaultRebalanceSkew    = 1.5
	defaultMaxRebalances    = 2
	defaultRebalanceMinStep = 2 * time.Millisecond
)

// rebalancer holds the adaptive-scheduling policy knobs resolved from
// Options and the remaining migration budget.
type rebalancer struct {
	enabled bool
	skewMin float64
	left    int
	minStep time.Duration
}

func newRebalancer(opts Options, n, blocks int) *rebalancer {
	rb := &rebalancer{
		enabled: opts.RebalanceSkew >= 0 && opts.MaxRebalances >= 0,
		skewMin: opts.RebalanceSkew,
		left:    opts.MaxRebalances,
		minStep: defaultRebalanceMinStep,
	}
	if rb.skewMin == 0 {
		rb.skewMin = defaultRebalanceSkew
	}
	if rb.left == 0 {
		rb.left = defaultMaxRebalances
	}
	switch {
	case opts.RebalanceMinStepNs < 0:
		rb.minStep = 0
	case opts.RebalanceMinStepNs > 0:
		rb.minStep = time.Duration(opts.RebalanceMinStepNs)
	}
	// With n workers and ≤ n blocks every worker holds at most one block,
	// so no migration can improve the makespan.
	if n < 2 || blocks <= n {
		rb.enabled = false
	}
	return rb
}

// shouldRebalance reports whether the just-finished superstep's skew and
// makespan warrant a migration, consuming one unit of budget when so.
func (rb *rebalancer) shouldRebalance(skew float64, makespan time.Duration) bool {
	if !rb.enabled || rb.left <= 0 || skew < rb.skewMin || makespan < rb.minStep {
		return false
	}
	rb.left--
	return true
}

// reassign re-runs LPT over the blocks' observed costs and returns the new
// assignment plus the number of blocks that moved. The observed cost of a
// block is its size scaled by its current worker's busy time per hosted
// tuple this superstep — the best per-block signal available without
// per-block timers inside the engines. Workers that were idle this step
// contribute their blocks at predicted (size-only) cost.
func (rb *rebalancer) reassign(blocks []hypart.Block, assign []int, busy []time.Duration) ([]int, int) {
	n := len(busy)
	sizeTotal := make([]float64, n)
	for b := range blocks {
		sizeTotal[assign[b]] += float64(len(blocks[b].GIDs))
	}
	rate := make([]float64, n)
	for w := 0; w < n; w++ {
		if sizeTotal[w] > 0 && busy[w] > 0 {
			rate[w] = float64(busy[w]) / sizeTotal[w]
		} else {
			rate[w] = 1 // predicted cost: size alone
		}
	}
	costs := make([]float64, len(blocks))
	for b := range blocks {
		costs[b] = float64(len(blocks[b].GIDs)) * rate[assign[b]]
	}
	newAssign := hypart.AssignLPT(costs, n)
	moved := 0
	for b := range newAssign {
		if newAssign[b] != assign[b] {
			moved++
		}
	}
	return newAssign, moved
}
