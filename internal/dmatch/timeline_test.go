package dmatch_test

import (
	"reflect"
	"strings"
	"testing"

	"dcer/internal/datagen"
	"dcer/internal/dmatch"
	"dcer/internal/mlpred"
	"dcer/internal/telemetry"
)

// TestTimelineJSONRoundTrip runs DMatch on the paper example, dumps the
// superstep timeline as JSON, parses it back, and checks the round trip
// is lossless and consistent with the Result counters.
func TestTimelineJSONRoundTrip(t *testing.T) {
	d, _ := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dmatch.Run(d, rules, mlpred.DefaultRegistry(), dmatch.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline()
	if tl.Workers != 3 {
		t.Fatalf("timeline workers = %d, want 3", tl.Workers)
	}
	if len(tl.Steps) != res.Supersteps {
		t.Fatalf("timeline has %d steps, result reports %d supersteps", len(tl.Steps), res.Supersteps)
	}
	var routed int64
	for _, ss := range tl.Steps {
		routed += ss.MessagesRouted
		if len(ss.Workers) != 3 {
			t.Fatalf("step %d has %d worker rows, want 3", ss.Step, len(ss.Workers))
		}
		for _, w := range ss.Workers {
			if w.BusyNs+w.IdleNs != ss.MakespanNs {
				t.Errorf("step %d worker %d: busy %d + idle %d != makespan %d",
					ss.Step, w.Worker, w.BusyNs, w.IdleNs, ss.MakespanNs)
			}
		}
	}
	if routed != res.MessagesRouted {
		t.Errorf("timeline routed %d messages, result reports %d", routed, res.MessagesRouted)
	}

	data, err := tl.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := dmatch.ParseTimeline(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tl, back) {
		t.Error("timeline JSON round trip is lossy")
	}

	g := tl.Gantt()
	if !strings.Contains(g, "superstep 0") || !strings.Contains(g, "w0") {
		t.Errorf("Gantt output missing expected rows:\n%s", g)
	}
}

// TestDMatchMetrics attaches a registry to a run and checks the BSP
// series and the dmatch_timeline debug provider are live.
func TestDMatchMetrics(t *testing.T) {
	d, _ := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	res, err := dmatch.Run(d, rules, mlpred.DefaultRegistry(), dmatch.Options{
		Workers: 2,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	hists := map[string]uint64{}
	for _, s := range reg.Snapshot() {
		if s.Histogram != nil {
			hists[s.Name] += s.Histogram.Count
		} else {
			vals[s.Name] += s.Value
		}
	}
	if got := vals["dcer_dmatch_messages_routed"]; int64(got) != res.MessagesRouted {
		t.Errorf("messages_routed series = %v, result %d", got, res.MessagesRouted)
	}
	if got := vals["dcer_dmatch_facts_produced"]; int64(got) != res.FactsProduced {
		t.Errorf("facts_produced series = %v, result %d", got, res.FactsProduced)
	}
	if _, ok := vals["dcer_dmatch_step_skew"]; !ok {
		t.Error("no worker-skew series")
	}
	if hists["dcer_dmatch_worker_busy_ns"] == 0 {
		t.Error("no per-worker busy observations")
	}
	if hists["dcer_hypart_fragment_size"] == 0 {
		t.Error("no hypart fragment-size observations")
	}
	if hists["dcer_chase_rule_enumerate_ns"] == 0 {
		t.Error("worker engines recorded no rule timings")
	}

	var doc strings.Builder
	if err := reg.WriteProm(&doc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc.String(), `dcer_chase_valuations{worker="0"}`) {
		t.Errorf("prom text lacks per-worker chase series:\n%s", doc.String())
	}
}
