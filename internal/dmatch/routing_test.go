package dmatch_test

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"testing"

	"dcer/internal/chase"
	"dcer/internal/datagen"
	"dcer/internal/dmatch"
	"dcer/internal/mlpred"
	"dcer/internal/relation"
	"dcer/internal/rule"
	"dcer/internal/telemetry"
)

// TestRoutingDedupGammaEquality is the tentpole's routing acceptance
// check: batched + deduped routing leaves Γ and the class partition
// byte-identical to the sequential chase at w ∈ {2, 4, 8}, and the
// sequential-route knob changes nothing observable (same Γ, same routing
// and dedup counts) — only how the inbox batches are built.
func TestRoutingDedupGammaEquality(t *testing.T) {
	g := datagen.TPCH(datagen.TPCHOptions{Scale: 0.04, Dup: 0.4, Seed: 11})
	rules, err := g.Rules()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := chase.New(g.D, rules, mlpred.DefaultRegistry(), chase.Options{ShareIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	seq.Run()
	want := classSignature(seq.Classes())

	for _, n := range []int{2, 4, 8} {
		conc, err := dmatch.Run(g.D, rules, mlpred.DefaultRegistry(), dmatch.Options{Workers: n})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := classSignature(conc.Classes()); got != want {
			t.Errorf("n=%d: concurrent routing classes diverge from sequential chase", n)
		}
		// The sequential-route knob must reach the same fixpoint; the
		// per-superstep message counts are not comparable across two
		// runs (the chase's delta order is map-iteration dependent, so
		// which representative of a merge chain gets routed varies).
		seqRoute, err := dmatch.Run(g.D, rules, mlpred.DefaultRegistry(), dmatch.Options{
			Workers:         n,
			SequentialRoute: true,
		})
		if err != nil {
			t.Fatalf("n=%d sequential route: %v", n, err)
		}
		if got := classSignature(seqRoute.Classes()); got != want {
			t.Errorf("n=%d: sequential routing classes diverge from sequential chase", n)
		}
		// Every routed or suppressed delivery must appear in the
		// timeline, in both build modes.
		for _, res := range []*dmatch.Result{conc, seqRoute} {
			var routed, deduped int64
			for _, ss := range res.Timeline().Steps {
				routed += ss.MessagesRouted
				deduped += ss.MessagesDeduped
			}
			if routed != res.MessagesRouted || deduped != res.MessagesDeduped {
				t.Errorf("n=%d: timeline sums %d/%d, result %d/%d",
					n, routed, deduped, res.MessagesRouted, res.MessagesDeduped)
			}
			if res.MessagesDeduped < 0 {
				t.Errorf("n=%d: negative dedup count %d", n, res.MessagesDeduped)
			}
		}
	}
}

// TestWorkersExceedVirtualBlocks covers the degenerate end of the worker
// range: more workers than non-empty virtual blocks leaves some fragments
// empty, and the run must still converge to the sequential Γ with finite
// skew ratios (the zero-busy guard in the timeline).
func TestWorkersExceedVirtualBlocks(t *testing.T) {
	str := relation.TypeString
	a := func(n string) relation.Attribute { return relation.Attribute{Name: n, Type: str} }
	db := relation.MustDatabase(relation.MustSchema("R", "rk", a("rk"), a("x")))
	build := func() *relation.Dataset {
		d := relation.NewDataset(db)
		d.MustAppend("R", relation.S("r0"), relation.S("u"))
		d.MustAppend("R", relation.S("r1"), relation.S("u"))
		d.MustAppend("R", relation.S("r2"), relation.S("v"))
		return d
	}
	rules, err := rule.ParseResolved("same: R(a) ^ R(b) ^ a.x = b.x -> a.id = b.id\n", db)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := chase.New(build(), rules, mlpred.DefaultRegistry(), chase.Options{ShareIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	seq.Run()
	want := classSignature(seq.Classes())

	res, err := dmatch.Run(build(), rules, mlpred.DefaultRegistry(), dmatch.Options{Workers: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.PartitionStats.Blocks >= 32 {
		t.Fatalf("instance grew: %d blocks no longer below the worker count", res.PartitionStats.Blocks)
	}
	empty := 0
	for _, st := range res.WorkerStats {
		if st.Valuations == 0 {
			empty++
		}
	}
	if empty == 0 {
		t.Error("expected at least one idle worker with an empty fragment")
	}
	if got := classSignature(res.Classes()); got != want {
		t.Errorf("classes diverge with empty fragments present")
	}
	for _, ss := range res.Timeline().Steps {
		if math.IsNaN(ss.SkewRatio) || math.IsInf(ss.SkewRatio, 0) {
			t.Fatalf("superstep %d: skew ratio %v not finite", ss.Step, ss.SkewRatio)
		}
	}
}

// TestAdaptiveRebalance forces the skew-adaptive scheduler on (threshold
// below the minimum possible skew, no makespan floor) and checks a
// migration leaves Γ identical to the sequential chase and records
// well-formed events.
func TestAdaptiveRebalance(t *testing.T) {
	g := datagen.TPCH(datagen.TPCHOptions{Scale: 0.04, Dup: 0.4, Seed: 7})
	rules, err := g.Rules()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := chase.New(g.D, rules, mlpred.DefaultRegistry(), chase.Options{ShareIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	seq.Run()
	want := classSignature(seq.Classes())

	res, err := dmatch.Run(g.D, rules, mlpred.DefaultRegistry(), dmatch.Options{
		Workers:            4,
		RebalanceSkew:      0.5, // below 1.0: every eligible superstep triggers
		RebalanceMinStepNs: -1,  // no makespan floor
		MaxRebalances:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := classSignature(res.Classes()); got != want {
		t.Errorf("classes diverge after adaptive rebalancing")
	}
	if res.Supersteps > 1 && len(res.Rebalances) == 0 {
		t.Skip("no migration triggered (observed costs already balanced)")
	}
	if len(res.Rebalances) > 2 {
		t.Errorf("%d migrations exceed MaxRebalances=2", len(res.Rebalances))
	}
	for i, ev := range res.Rebalances {
		if ev.BlocksMoved <= 0 || ev.WorkersRebuilt <= 0 {
			t.Errorf("event %d: moved %d blocks, rebuilt %d workers", i, ev.BlocksMoved, ev.WorkersRebuilt)
		}
		if ev.SkewBefore < 0.5 {
			t.Errorf("event %d: skew %v below the trigger threshold", i, ev.SkewBefore)
		}
		if ev.Step < 0 || ev.Step >= res.Supersteps {
			t.Errorf("event %d: step %d outside run of %d supersteps", i, ev.Step, res.Supersteps)
		}
		if ev.RebuildNs <= 0 {
			t.Errorf("event %d: non-positive rebuild time %d", i, ev.RebuildNs)
		}
	}
}

// TestRebalanceDisabled checks the negative-threshold escape hatch.
func TestRebalanceDisabled(t *testing.T) {
	g := datagen.TPCH(datagen.TPCHOptions{Scale: 0.03, Dup: 0.4, Seed: 7})
	rules, err := g.Rules()
	if err != nil {
		t.Fatal(err)
	}
	res, err := dmatch.Run(g.D, rules, mlpred.DefaultRegistry(), dmatch.Options{
		Workers:            4,
		RebalanceSkew:      -1,
		RebalanceMinStepNs: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rebalances) != 0 {
		t.Errorf("rebalancing ran despite RebalanceSkew=-1: %d events", len(res.Rebalances))
	}
}

// TestRebalanceDebugProvider checks the dmatch_rebalance provider is
// registered on the metrics registry and exposed via /debug/dcer.
func TestRebalanceDebugProvider(t *testing.T) {
	g := datagen.TPCH(datagen.TPCHOptions{Scale: 0.03, Dup: 0.4, Seed: 9})
	rules, err := g.Rules()
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	if _, err := dmatch.Run(g.D, rules, mlpred.DefaultRegistry(), dmatch.Options{
		Workers:            4,
		Metrics:            reg,
		RebalanceSkew:      0.5,
		RebalanceMinStepNs: -1,
	}); err != nil {
		t.Fatal(err)
	}
	srv, err := telemetry.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/debug/dcer")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Debug map[string]json.RawMessage `json:"debug"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("debug/dcer is not JSON: %v", err)
	}
	raw, ok := doc.Debug["dmatch_rebalance"]
	if !ok {
		t.Fatal("no dmatch_rebalance debug provider on /debug/dcer")
	}
	var events []dmatch.RebalanceEvent
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("dmatch_rebalance payload does not decode as []RebalanceEvent: %v", err)
	}
	if _, ok := doc.Debug["dmatch_timeline"]; !ok {
		t.Fatal("dmatch_timeline provider missing alongside dmatch_rebalance")
	}
}
