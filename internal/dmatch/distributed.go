package dmatch

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync/atomic"
	"time"

	"dcer/internal/chase"
	"dcer/internal/health"
	"dcer/internal/hypart"
	"dcer/internal/mlpred"
	"dcer/internal/relation"
	"dcer/internal/rule"
	"dcer/internal/telemetry"
	"dcer/internal/wire"
)

// True multi-process DMatch (ROADMAP item 2): the master and the workers
// are separate OS processes, and the PR-5 outbox layer — per-destination
// batches, recipient bitsets, per-worker dedup seen-sets — feeds the
// compact binary encoding of internal/wire over TCP instead of handing
// slices across goroutines. The BSP state machine is the same masterState
// Run drives (master.go), so the in-process mode stays the equivalence
// oracle: both modes fold worker deltas in worker-index order into the
// same global Γ.
//
// Pipelining: each worker connection gets a dedicated sender goroutine
// owning the connection's Encoder (and its reused frame buffer), so the
// master enqueues all n superstep inboxes and the first workers start
// computing while later inboxes are still being encoded and flushed.
//
// Recovery: worker death is detected by connection error (the reader
// goroutine sees EOF/reset) or by heartbeat timeout (workers Pong on an
// interval; a silent-but-connected worker gets its connection closed,
// which surfaces as a reader error). The dead worker's virtual blocks are
// reassigned to the least-loaded survivors (LPT over block sizes), the
// recipients are rebuilt over the wire — MsgAssign with the new fragment
// and the routed fact history to replay — and the fixpoint continues.
// Because facts are idempotent and the fixpoint is unique, Γ is unchanged
// by a recovery, exactly as with the skew-adaptive migrations.

// DistOptions configures the process-level side of a distributed run;
// everything Γ-relevant stays in Options.
type DistOptions struct {
	// Listen is the TCP address the master binds; "" means 127.0.0.1:0
	// (an ephemeral local port).
	Listen string
	// Spawn starts worker i pointed at the master's address. The CLI
	// re-executes its own binary with -worker; tests dial in-process
	// goroutines. Spawn must not block on the worker's lifetime.
	Spawn func(worker int, addr string) error
	// HeartbeatTimeout is how long a worker may stay silent (no frame, no
	// Pong) before the master declares it dead; 0 means 10s.
	HeartbeatTimeout time.Duration
	// AcceptTimeout bounds the handshake phase; 0 means 30s.
	AcceptTimeout time.Duration
}

// RecoveryEvent describes one worker-failure recovery.
type RecoveryEvent struct {
	// Step is the superstep after which the recovery ran.
	Step int
	// Worker is the dead worker's slot (retired; slots are never reused).
	Worker int
	// BlocksMoved is how many of the dead worker's virtual blocks were
	// reassigned; WorkersRebuilt is how many survivors got new fragments.
	BlocksMoved    int
	WorkersRebuilt int
	// RebuildNs is the master-side cost: reassignment, host-bitset
	// rebuild, and replay preparation (the rebuilt engines are remote).
	RebuildNs int64
}

const (
	defaultHeartbeatTimeout = 10 * time.Second
	defaultAcceptTimeout    = 30 * time.Second
)

// ErrInjectedCrash is returned by RunWorker when WorkerOptions.CrashAfter
// triggers — the fault-injection hook the recovery tests and the CI smoke
// use. The CLI maps it to a distinct exit code.
var ErrInjectedCrash = errors.New("dmatch: injected worker crash")

// wireEngineOpts projects the Γ-relevant engine knobs onto the wire form.
// Sequential folds into the per-engine flags here, exactly as
// workerChaseOptions does for the in-process path.
func wireEngineOpts(opts Options) wire.EngineOpts {
	return wire.EngineOpts{
		NoMQO:              opts.NoMQO,
		SequentialDeduce:   opts.Sequential || opts.SequentialDeduce,
		SequentialDrain:    opts.Sequential || opts.SequentialDrain,
		InterpretRules:     opts.InterpretRules,
		MaxDeps:            opts.MaxDeps,
		DrainParallelMin:   opts.DrainParallelMin,
		PlanResortMinEvals: opts.PlanResortMinEvals,
	}
}

// chaseOptsFromWire is the worker-side inverse. workerChaseOptions
// (master.go) is defined as the composition of these two functions, so
// the in-process engines and the worker-process engines are constructed
// from identical chase.Options by construction — the heart of the Γ
// byte-identity contract.
func chaseOptsFromWire(o wire.EngineOpts, idSpace int) chase.Options {
	return chase.Options{
		MaxDeps:            o.MaxDeps,
		ShareIndexes:       !o.NoMQO,
		IDSpace:            idSpace,
		SequentialDeduce:   o.SequentialDeduce,
		SequentialDrain:    o.SequentialDrain,
		DrainParallelMin:   o.DrainParallelMin,
		InterpretRules:     o.InterpretRules,
		PlanResortMinEvals: o.PlanResortMinEvals,
	}
}

// distEvent is one inbound occurrence on a worker connection: a decoded
// delta, the final stats blob, or a terminal error (death).
type distEvent struct {
	w     int
	delta *wire.Delta
	stats []byte
	err   error
}

// remoteWorker is the master's handle on one worker process: the
// connection, the outbound pipeline (a sender goroutine owning the
// Encoder), and liveness state. alive is owned by the master loop.
type remoteWorker struct {
	id       int
	conn     net.Conn
	sendCh   chan func(*wire.Encoder) error
	closed   atomic.Bool
	lastBeat atomic.Int64 // UnixNano of the last inbound frame
	alive    bool
}

func (rw *remoteWorker) close() {
	if rw.closed.CompareAndSwap(false, true) {
		rw.conn.Close()
	}
}

// sender drains the outbound pipeline, encoding and flushing each message
// on this connection's Encoder (and its reused frame buffer). On a write
// error it reports death once and keeps draining so the master never
// blocks enqueueing to a dead worker.
func (rw *remoteWorker) sender(enc *wire.Encoder, events chan<- distEvent) {
	for f := range rw.sendCh {
		if f == nil {
			continue
		}
		if err := f(enc); err != nil {
			events <- distEvent{w: rw.id, err: fmt.Errorf("send: %w", err)}
			for range rw.sendCh {
			}
			return
		}
	}
}

// reader decodes inbound frames until the connection dies, forwarding
// deltas and stats to the master loop and stamping liveness.
func (rw *remoteWorker) reader(dec *wire.Decoder, events chan<- distEvent) {
	for {
		msg, err := dec.Next()
		if err != nil {
			events <- distEvent{w: rw.id, err: err}
			return
		}
		rw.lastBeat.Store(time.Now().UnixNano())
		switch msg.Type {
		case wire.MsgPong:
			// liveness only
		case wire.MsgDelta:
			d := msg.Delta
			events <- distEvent{w: rw.id, delta: &d}
		case wire.MsgStats:
			events <- distEvent{w: rw.id, stats: msg.StatsJSON}
		default:
			events <- distEvent{w: rw.id, err: fmt.Errorf("dmatch: unexpected %d frame from worker", msg.Type)}
			return
		}
	}
}

// recoverAssign moves every block of the dead workers to the least-loaded
// survivor (LPT greedy over block sizes, largest orphan first), leaving
// all other assignments untouched — an incremental reassignment rather
// than a global re-run, so surviving workers that host none of the
// orphaned blocks keep their engines.
func recoverAssign(blocks []hypart.Block, assign []int, dead map[int]bool, alive []bool) ([]int, int) {
	next := append([]int(nil), assign...)
	load := make([]float64, len(alive))
	var orphans []int
	for b := range blocks {
		if dead[assign[b]] {
			orphans = append(orphans, b)
		} else {
			load[assign[b]] += float64(len(blocks[b].GIDs))
		}
	}
	sort.Slice(orphans, func(i, j int) bool {
		bi, bj := orphans[i], orphans[j]
		if len(blocks[bi].GIDs) != len(blocks[bj].GIDs) {
			return len(blocks[bi].GIDs) > len(blocks[bj].GIDs)
		}
		return bi < bj
	})
	for _, b := range orphans {
		best := -1
		for w := range alive {
			if alive[w] && (best < 0 || load[w] < load[best]) {
				best = w
			}
		}
		next[b] = best
		load[best] += float64(len(blocks[b].GIDs))
	}
	return next, len(orphans)
}

// RunDistributed partitions d with HyPart and executes the BSP fixpoint
// with n worker processes over TCP. Every worker loads the same dataset
// and rules from disk (loading is deterministic) and proves it via the
// Hello fingerprint; the master aborts on mismatch rather than computing
// a wrong Γ over divergent inputs. The returned Result is byte-identical
// in Γ (Matches, Validated, Eq) to Run with the same Options.
func RunDistributed(d *relation.Dataset, rules []*rule.Rule, reg *mlpred.Registry, opts Options, dopts DistOptions) (*Result, error) {
	n := opts.Workers
	if n < 1 {
		return nil, errors.New("dmatch: distributed mode needs an explicit worker count")
	}
	if opts.Provenance {
		return nil, errors.New("dmatch: provenance capture is not supported in distributed mode")
	}
	if dopts.Spawn == nil {
		return nil, errors.New("dmatch: DistOptions.Spawn is required")
	}
	maxSteps := opts.MaxSupersteps
	if maxSteps <= 0 {
		maxSteps = 1 << 20
	}
	hbTimeout := dopts.HeartbeatTimeout
	if hbTimeout <= 0 {
		hbTimeout = defaultHeartbeatTimeout
	}
	acceptTO := dopts.AcceptTimeout
	if acceptTO <= 0 {
		acceptTO = defaultAcceptTimeout
	}
	listen := dopts.Listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	stats := &wire.Stats{}

	t0 := time.Now()
	part, err := hypart.Partition(d, rules, n, hypart.Options{
		Share:          !opts.NoMQO,
		ReplicationCap: opts.ReplicationCap,
		Shards:         opts.PartitionShards,
		Metrics:        opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{PartitionStats: part.Stats, d: d}
	res.PartitionTime = time.Since(t0)
	ms := newMasterState(d, n)
	ms.setHosts(part.Fragments)

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("dmatch: listen: %w", err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	remotes := make([]*remoteWorker, n)
	events := make(chan distEvent, 4*n+8)
	closeAll := func() {
		for _, rw := range remotes {
			if rw != nil {
				rw.close()
				close(rw.sendCh)
			}
		}
	}
	for i := 0; i < n; i++ {
		if err := dopts.Spawn(i, addr); err != nil {
			closeAll()
			return nil, fmt.Errorf("dmatch: spawn worker %d: %w", i, err)
		}
	}

	// Handshake: accept n connections and validate each Hello against the
	// master's own view of the inputs.
	ln.(*net.TCPListener).SetDeadline(time.Now().Add(acceptTO))
	for got := 0; got < n; got++ {
		conn, err := ln.Accept()
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("dmatch: accepting workers (%d/%d connected): %w", got, n, err)
		}
		conn.SetReadDeadline(time.Now().Add(acceptTO))
		dec := wire.NewDecoder(conn, stats)
		msg, err := dec.Next()
		if err != nil || msg.Type != wire.MsgHello {
			conn.Close()
			closeAll()
			return nil, fmt.Errorf("dmatch: bad handshake: %v", err)
		}
		h := msg.Hello
		switch {
		case h.Version != wire.Version:
			err = fmt.Errorf("protocol version %d, want %d", h.Version, wire.Version)
		case h.Worker < 0 || h.Worker >= n:
			err = fmt.Errorf("worker id %d out of range [0,%d)", h.Worker, n)
		case remotes[h.Worker] != nil:
			err = fmt.Errorf("duplicate worker id %d", h.Worker)
		case h.DatasetSize != d.Size() || h.IDSpace != ms.idSpace || h.Rules != len(rules):
			err = fmt.Errorf("dataset fingerprint mismatch: worker has (size=%d idspace=%d rules=%d), master has (%d %d %d)",
				h.DatasetSize, h.IDSpace, h.Rules, d.Size(), ms.idSpace, len(rules))
		}
		if err != nil {
			conn.Close()
			closeAll()
			return nil, fmt.Errorf("dmatch: worker handshake: %w", err)
		}
		conn.SetReadDeadline(time.Time{})
		rw := &remoteWorker{id: h.Worker, conn: conn, sendCh: make(chan func(*wire.Encoder) error, 4), alive: true}
		rw.lastBeat.Store(time.Now().UnixNano())
		remotes[h.Worker] = rw
		go rw.sender(wire.NewEncoder(conn, stats), events)
		go rw.reader(dec, events)
	}
	defer closeAll()

	eopts := wireEngineOpts(opts)
	for i, rw := range remotes {
		a := wire.Assign{Worker: i, Workers: n, Opts: eopts,
			Frag: part.Fragments[i], RuleFrags: part.RuleFragments[i]}
		rw.sendCh <- func(e *wire.Encoder) error { return e.Assign(a) }
	}

	t1 := time.Now()
	ms.rebuildHostBits()
	curAssign := make([]int, len(part.Blocks))
	for i := range part.Blocks {
		curAssign[i] = part.Blocks[i].Worker
	}

	tl := &res.timeline
	tl.Workers = n
	inboxes := make([][]chase.Fact, n)
	deltas := make([][]chase.Fact, n)
	elapsed := make([]time.Duration, n)
	// fresh[w]: an Assign is in flight and w must re-Deduce on its next
	// Step; the termination check waits for fresh workers even with every
	// inbox empty (their full pass may still produce facts).
	fresh := make([]bool, n)
	for i := range fresh {
		fresh[i] = true
	}
	aliveCount := n
	msgsIn := make([]int, n)
	factsOut := make([]int, n)

	var dhb *health.Heartbeat
	var aliveCheck *health.Check
	if opts.Health != nil {
		dhb = opts.Health.Heartbeat("dmatch_superstep")
		aliveCheck = opts.Health.Check("dist_workers")
		dhb.Enter()
		defer dhb.Exit()
	}

	hbTick := time.NewTicker(hbTimeout / 4)
	defer hbTick.Stop()

	markDead := func(w int, cause error) error {
		rw := remotes[w]
		if !rw.alive {
			return nil
		}
		rw.alive = false
		rw.close()
		aliveCount--
		aliveCheck.Fail(1, "worker %d died: %v", w, cause)
		if aliveCount == 0 {
			return fmt.Errorf("dmatch: all %d workers died (last: worker %d: %v)", n, w, cause)
		}
		return nil
	}

	var deadPending []int
	for step := 0; step < maxSteps; step++ {
		dhb.Beat()
		stepWall := time.Now()
		wireBase := stats.BytesOut.Load() + stats.BytesIn.Load()
		// Dispatch: enqueue every alive worker's inbox. The senders encode
		// and flush concurrently, so worker i can be deep in Deduce while
		// the master is still flushing worker j's (larger) inbox.
		expected := make(map[int]bool, aliveCount)
		for i, rw := range remotes {
			if !rw.alive {
				msgsIn[i] = 0
				continue
			}
			msgsIn[i] = len(inboxes[i])
			st := wire.Step{Step: step, Facts: inboxes[i]}
			rw.sendCh <- func(e *wire.Encoder) error { return e.Step(st) }
			expected[i] = true
			fresh[i] = false
		}
		for i := range deltas {
			deltas[i], elapsed[i] = nil, 0
		}
		// Collect: one Delta per expected worker, or its death. A silent
		// worker past the heartbeat timeout has its connection closed,
		// which surfaces as a reader error on the next tick.
		for len(expected) > 0 {
			select {
			case ev := <-events:
				switch {
				case ev.err != nil:
					// A dead worker always enters deadPending — even when
					// its delta for this step already arrived (a crash just
					// after sending) — so its blocks are reassigned before
					// any future routing would silently drop facts.
					if remotes[ev.w].alive {
						if err := markDead(ev.w, ev.err); err != nil {
							return nil, err
						}
						deadPending = append(deadPending, ev.w)
					}
					delete(expected, ev.w)
				case ev.delta != nil && expected[ev.w]:
					if ev.delta.Step != step {
						if err := markDead(ev.w, fmt.Errorf("delta for step %d during step %d", ev.delta.Step, step)); err != nil {
							return nil, err
						}
						deadPending = append(deadPending, ev.w)
						delete(expected, ev.w)
						continue
					}
					deltas[ev.w] = ev.delta.Facts
					elapsed[ev.w] = time.Duration(ev.delta.BusyNs)
					delete(expected, ev.w)
				}
			case <-hbTick.C:
				now := time.Now().UnixNano()
				for w := range expected {
					if now-remotes[w].lastBeat.Load() > int64(hbTimeout) {
						remotes[w].close() // reader unblocks with an error
					}
				}
			}
		}
		res.Supersteps++
		var stepMax time.Duration
		for _, e := range elapsed {
			if e > stepMax {
				stepMax = e
			}
		}
		res.SimulatedTime += stepMax

		// Master phase 1+2: identical fold and routing to Run, on the same
		// masterState. Dead workers contribute nil deltas and get no inbox.
		routeStart := time.Now()
		ms.beginFold()
		var stepFacts int64
		for w, delta := range deltas {
			stepFacts += int64(len(delta))
			res.FactsProduced += int64(len(delta))
			ms.foldDelta(w, delta, res)
		}
		next := make([][]chase.Fact, n)
		var routedStep, dedupedStep int64
		for h := 0; h < n; h++ {
			if !remotes[h].alive {
				continue
			}
			out, routed, deduped := ms.buildDest(h, deltas[h])
			next[h] = out
			routedStep += routed
			dedupedStep += deduped
		}
		res.MessagesRouted += routedStep
		res.MessagesDeduped += dedupedStep
		inboxes = next
		routeNs := int64(time.Since(routeStart))
		for i, dl := range deltas {
			factsOut[i] = len(dl)
		}
		wireStep := stats.BytesOut.Load() + stats.BytesIn.Load() - wireBase
		tl.record(step, elapsed, factsOut, msgsIn, routeNs, int64(time.Since(stepWall)), wireStep, routedStep, dedupedStep)

		// Recovery: reassign every dead worker's blocks to the least-
		// loaded survivors and rebuild the recipients over the wire. The
		// replay (every match plus the validated facts a recipient hosts)
		// supersedes any inbox already built for a recipient.
		if len(deadPending) > 0 {
			rt0 := time.Now()
			dead := make(map[int]bool, len(deadPending))
			for _, w := range deadPending {
				dead[w] = true
			}
			orphansOf := make(map[int]int, len(deadPending))
			for b := range curAssign {
				if dead[curAssign[b]] {
					orphansOf[curAssign[b]]++
				}
			}
			alive := make([]bool, n)
			for w, rw := range remotes {
				alive[w] = rw.alive
			}
			newAssign, _ := recoverAssign(part.Blocks, curAssign, dead, alive)
			changed := make([]bool, n)
			for b := range newAssign {
				if newAssign[b] != curAssign[b] {
					changed[newAssign[b]] = true
				}
			}
			frags, ruleFrags := hypart.BuildFragments(part.Blocks, newAssign, n, len(rules))
			ms.setHosts(frags)
			ms.rebuildHostBits()
			curAssign = newAssign
			rebuilt := 0
			for w, rw := range remotes {
				if !rw.alive || !changed[w] {
					continue
				}
				replay := ms.replayFor(w, res)
				ms.resetWorker(w, replay)
				inboxes[w] = nil
				a := wire.Assign{Worker: w, Workers: n, Opts: eopts,
					Frag: frags[w], RuleFrags: ruleFrags[w], Replay: replay}
				rw.sendCh <- func(e *wire.Encoder) error { return e.Assign(a) }
				fresh[w] = true
				rebuilt++
			}
			rebuildNs := int64(time.Since(rt0))
			for _, w := range deadPending {
				inboxes[w] = nil
				res.Recoveries = append(res.Recoveries, RecoveryEvent{
					Step: step, Worker: w, BlocksMoved: orphansOf[w],
					WorkersRebuilt: rebuilt, RebuildNs: rebuildNs,
				})
			}
			deadPending = deadPending[:0]
		}

		if opts.Log.Level() <= telemetry.LogDebug {
			opts.Log.Wide(telemetry.LogDebug, "dmatch_superstep",
				telemetry.F{K: "step", V: step},
				telemetry.F{K: "workers", V: aliveCount},
				telemetry.F{K: "makespan_ns", V: int64(stepMax)},
				telemetry.F{K: "facts", V: stepFacts},
				telemetry.F{K: "routed", V: routedStep},
				telemetry.F{K: "deduped", V: dedupedStep},
				telemetry.F{K: "wire_bytes", V: wireStep},
				telemetry.F{K: "recoveries", V: len(res.Recoveries)},
				telemetry.F{K: "distributed", V: true},
			)
		}

		empty := true
		for i, rw := range remotes {
			if rw.alive && (len(inboxes[i]) > 0 || fresh[i]) {
				empty = false
				break
			}
		}
		if empty {
			break
		}
	}

	// Shutdown: Done to every survivor, collect each final stats blob
	// (workers reply MsgStats and exit; the subsequent EOF is expected).
	workerStats := make([]chase.Stats, n)
	pendingStats := 0
	for _, rw := range remotes {
		if !rw.alive {
			continue
		}
		rw.sendCh <- func(e *wire.Encoder) error { return e.Done() }
		pendingStats++
	}
	statsDone := make([]bool, n)
	statsDeadline := time.After(hbTimeout)
	for pendingStats > 0 {
		select {
		case ev := <-events:
			if statsDone[ev.w] || !remotes[ev.w].alive {
				continue
			}
			switch {
			case ev.stats != nil:
				statsDone[ev.w] = true
				pendingStats--
				json.Unmarshal(ev.stats, &workerStats[ev.w])
			case ev.err != nil:
				// died before delivering stats; not worth failing the run
				statsDone[ev.w] = true
				pendingStats--
				remotes[ev.w].alive = false
				remotes[ev.w].close()
			}
		case <-statsDeadline:
			pendingStats = 0
		}
	}
	res.WorkerStats = workerStats
	res.ERTime = time.Since(t1)
	res.Eq = ms.guf
	res.Wire = stats.Snapshot()
	if mreg := opts.Metrics; mreg != nil {
		snap := res.Wire
		mreg.Counter("dcer_wire_bytes_out").Add(snap.BytesOut)
		mreg.Counter("dcer_wire_bytes_in").Add(snap.BytesIn)
		mreg.Counter("dcer_wire_frames_out").Add(snap.FramesOut)
		mreg.Counter("dcer_wire_frames_in").Add(snap.FramesIn)
		mreg.Counter("dcer_wire_encode_ns").Add(snap.EncodeNs)
		mreg.Counter("dcer_wire_decode_ns").Add(snap.DecodeNs)
		mreg.Counter("dcer_wire_dict_strings").Add(snap.DictStrings)
	}
	return res, nil
}
