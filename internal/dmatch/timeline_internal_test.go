package dmatch

import (
	"math"
	"testing"
	"time"
)

// TestRecordZeroBusyGuard is the regression test for the skew-ratio
// division hazard: a superstep in which no worker reports busy time (all
// fragments empty, or every worker skipped on an empty inbox) must record
// a zero skew ratio, not NaN/Inf.
func TestRecordZeroBusyGuard(t *testing.T) {
	var tl Timeline
	tl.Workers = 3
	elapsed := make([]time.Duration, 3)
	facts := make([]int, 3)
	msgs := make([]int, 3)
	tl.record(0, elapsed, facts, msgs, 0, 0, 0, 0, 0)
	ss := tl.Steps[0]
	if ss.SkewRatio != 0 {
		t.Fatalf("zero-busy superstep has skew %v, want 0", ss.SkewRatio)
	}
	if math.IsNaN(ss.SkewRatio) || math.IsInf(ss.SkewRatio, 0) {
		t.Fatalf("skew ratio %v not finite", ss.SkewRatio)
	}
	if ss.MakespanNs != 0 {
		t.Fatalf("zero-busy superstep has makespan %d", ss.MakespanNs)
	}

	// One empty fragment among busy workers: skew stays finite and only
	// active workers enter the mean.
	elapsed = []time.Duration{2 * time.Millisecond, 0, 2 * time.Millisecond}
	tl.record(1, elapsed, facts, msgs, 0, 0, 0, 0, 0)
	ss = tl.Steps[1]
	if math.IsNaN(ss.SkewRatio) || math.IsInf(ss.SkewRatio, 0) {
		t.Fatalf("skew ratio %v not finite with one idle worker", ss.SkewRatio)
	}
	if ss.SkewRatio != 1 {
		t.Fatalf("two equally busy workers: skew %v, want 1 (idle worker excluded)", ss.SkewRatio)
	}
}
