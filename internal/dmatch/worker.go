package dmatch

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dcer/internal/chase"
	"dcer/internal/mlpred"
	"dcer/internal/relation"
	"dcer/internal/rule"
	"dcer/internal/wire"
)

// WorkerOptions configures one worker process (RunWorker).
type WorkerOptions struct {
	// Worker is this process's slot in [0, Workers).
	Worker int
	// Stats, when non-nil, receives this worker's wire tallies.
	Stats *wire.Stats
	// HeartbeatInterval is the Pong cadence; 0 means 1s. It must be well
	// under the master's HeartbeatTimeout.
	HeartbeatInterval time.Duration
	// CrashAfter, when > 0, makes the worker abruptly close its connection
	// and return ErrInjectedCrash after sending that many deltas — the
	// fault-injection hook for recovery tests and the CI smoke.
	CrashAfter int
}

// RunWorker dials the master and executes the worker half of the
// distributed BSP protocol until MsgDone: build the engine on MsgAssign
// (replaying any routed history), run Deduce/IncDeduce per MsgStep and
// answer with the delta, and Pong on an interval from a side goroutine so
// a long Deduce never looks like a dead process. The dataset and rules
// are this process's own load of the same inputs the master has; the
// Hello fingerprint proves it.
func RunWorker(addr string, d *relation.Dataset, rules []*rule.Rule, reg *mlpred.Registry, wopts WorkerOptions) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("dmatch: worker %d: dial %s: %w", wopts.Worker, addr, err)
	}
	defer conn.Close()
	enc := wire.NewEncoder(conn, wopts.Stats)
	dec := wire.NewDecoder(conn, wopts.Stats)
	// The encoder is shared between the main loop (Delta/Stats) and the
	// heartbeat goroutine (Pong); writes serialize on encMu.
	var encMu sync.Mutex

	idSpace := datasetIDSpace(d)
	encMu.Lock()
	err = enc.Hello(wire.Hello{
		Version: wire.Version, Worker: wopts.Worker,
		DatasetSize: d.Size(), IDSpace: idSpace, Rules: len(rules),
	})
	encMu.Unlock()
	if err != nil {
		return fmt.Errorf("dmatch: worker %d: hello: %w", wopts.Worker, err)
	}

	hb := wopts.HeartbeatInterval
	if hb <= 0 {
		hb = time.Second
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(hb)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				encMu.Lock()
				err := enc.Pong()
				encMu.Unlock()
				if err != nil {
					return // connection gone; the main loop will see it too
				}
			}
		}
	}()

	var eng *chase.Engine
	var pending []chase.Fact // replay history awaiting the next Step
	fresh := false
	sent := 0
	for {
		msg, err := dec.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				// Master gone without Done: abort quietly — the master (or
				// its successor) owns the run's outcome.
				return fmt.Errorf("dmatch: worker %d: master connection closed", wopts.Worker)
			}
			return fmt.Errorf("dmatch: worker %d: read: %w", wopts.Worker, err)
		}
		switch msg.Type {
		case wire.MsgAssign:
			a := msg.Assign
			copts := chaseOptsFromWire(a.Opts, idSpace)
			eng, err = buildWorkerEngine(d, rules, reg, a.Worker, a.Frag, a.RuleFrags, copts)
			if err != nil {
				return err
			}
			pending = a.Replay
			fresh = true
		case wire.MsgStep:
			if eng == nil {
				return fmt.Errorf("dmatch: worker %d: step before assign", wopts.Worker)
			}
			s := msg.Step
			start := time.Now()
			var delta []chase.Fact
			if fresh {
				// Fresh engine (initial assignment, or a rebuild after a
				// recovery elsewhere): full partial evaluation over the
				// fragment, then the replayed history plus this step's
				// inbox through A_Δ — the same order Run uses.
				delta = eng.Deduce()
				inbox := append(pending, s.Facts...)
				if len(inbox) > 0 {
					delta = append(delta, eng.IncDeduce(inbox)...)
				}
				pending = nil
				fresh = false
			} else if len(s.Facts) > 0 {
				delta = eng.IncDeduce(s.Facts)
			}
			busy := time.Since(start)
			encMu.Lock()
			err = enc.Delta(wire.Delta{Step: s.Step, BusyNs: int64(busy), Facts: delta})
			encMu.Unlock()
			if err != nil {
				return fmt.Errorf("dmatch: worker %d: delta: %w", wopts.Worker, err)
			}
			sent++
			if wopts.CrashAfter > 0 && sent >= wopts.CrashAfter {
				conn.Close()
				return ErrInjectedCrash
			}
		case wire.MsgDone:
			var st chase.Stats
			if eng != nil {
				st = eng.Stats()
			}
			js, jerr := json.Marshal(st)
			if jerr != nil {
				js = []byte("{}")
			}
			encMu.Lock()
			err = enc.StatsJSON(js)
			encMu.Unlock()
			return err
		case wire.MsgPong:
			// ignore (masters don't ping, but tolerate it)
		default:
			return fmt.Errorf("dmatch: worker %d: unexpected %d frame", wopts.Worker, msg.Type)
		}
	}
}
