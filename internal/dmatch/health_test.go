package dmatch_test

import (
	"testing"

	"dcer/internal/datagen"
	"dcer/internal/dmatch"
	"dcer/internal/eval"
	"dcer/internal/health"
	"dcer/internal/mlpred"
)

// TestDMatchHealthObservatory runs a parallel match over a TPC-H dataset
// with its planted truth threaded into the monitor and asserts the full
// observatory: the master's global union-find auditor and every
// worker-engine auditor pass, no stalls fire, the accuracy gauges see
// both matched pairs and recall probes, and the diagnosis is healthy.
func TestDMatchHealthObservatory(t *testing.T) {
	g := datagen.TPCH(datagen.TPCHOptions{Scale: 0.1, Dup: 0.3, Seed: 1})
	rules, err := g.Rules()
	if err != nil {
		t.Fatal(err)
	}
	mon := health.NewMonitor(health.Options{
		DiagnosisDir: t.TempDir(),
		Truth:        eval.NewTruth(g.Truth),
		SampleSize:   1 << 20,
		Seed:         1,
	})
	mon.Start()
	defer mon.Stop()

	res, err := dmatch.Run(g.D, rules, mlpred.DefaultRegistry(),
		dmatch.Options{Workers: 2, Provenance: true, Health: mon})
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps == 0 {
		t.Fatal("run did no supersteps")
	}

	rep := mon.Report()
	if !rep.Attached {
		t.Fatal("report not attached")
	}
	byName := make(map[string]health.CheckReport, len(rep.Checks))
	for _, c := range rep.Checks {
		byName[c.Name] = c
	}
	for _, name := range []string{"unionfind_roots", "gamma_provenance", "depstore_bytes", "plan_order", "global_unionfind"} {
		c, ok := byName[name]
		if !ok {
			t.Errorf("check %s not registered", name)
			continue
		}
		if c.Runs == 0 {
			t.Errorf("check %s never ran", name)
		}
		if c.Status != health.StatusPass.String() || c.Violations != 0 {
			t.Errorf("check %s: status %s, %d violation(s): %s", name, c.Status, c.Violations, c.Detail)
		}
	}
	if rep.Stalls != 0 {
		t.Errorf("healthy run recorded %d stall(s)", rep.Stalls)
	}

	a := rep.Accuracy
	if a == nil {
		t.Fatal("truth was threaded but the report has no accuracy section")
	}
	if a.SampledTP == 0 {
		t.Error("accuracy observatory sampled no true positives on a duplicated dataset")
	}
	if a.RecallSampled == 0 {
		t.Error("recall probe sampled no truth pairs")
	}
	if a.Precision <= 0 || a.Precision > 1 {
		t.Errorf("precision gauge = %v, want (0, 1]", a.Precision)
	}

	if d := health.Diagnose(rep); !d.Healthy() {
		t.Errorf("healthy DMatch run diagnosed unhealthy:\n%s", d)
	}
}
