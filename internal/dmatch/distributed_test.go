package dmatch_test

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"dcer/internal/chase"
	"dcer/internal/datagen"
	"dcer/internal/dmatch"
	"dcer/internal/mlpred"
	"dcer/internal/rule"
)

// factSetSignature canonicalizes a fact set (order-insensitive): the Γ
// byte-identity the distributed mode promises is over the *set* of
// matches and validated facts (and therefore over the -out class CSV),
// not over the master's fold order.
func factSetSignature(facts []chase.Fact) string {
	strsOut := make([]string, len(facts))
	for i, f := range facts {
		strsOut[i] = fmt.Sprintf("%d:%d:%d:%s", f.Kind, f.A, f.B, f.Model)
	}
	sort.Strings(strsOut)
	return strings.Join(strsOut, ";")
}

// tpchWorkload regenerates the test workload from its seed — the stand-in
// for each process loading the same dataset directory from disk.
func tpchWorkload(t *testing.T) (*datagen.Generated, []*rule.Rule) {
	t.Helper()
	g := datagen.TPCH(datagen.TPCHOptions{Scale: 0.04, Dup: 0.4, Seed: 7})
	rules, err := g.Rules()
	if err != nil {
		t.Fatal(err)
	}
	return g, rules
}

// spawnLocalWorkers returns a Spawn hook that runs each worker as a
// goroutine with its own regenerated dataset, rules, and registry — the
// separate-process data model without the process cost. crashAfter maps
// worker id to an injected CrashAfter value (0 = none).
func spawnLocalWorkers(t *testing.T, crashAfter map[int]int, errs chan error) func(int, string) error {
	t.Helper()
	return func(worker int, addr string) error {
		go func() {
			g := datagen.TPCH(datagen.TPCHOptions{Scale: 0.04, Dup: 0.4, Seed: 7})
			rules, err := g.Rules()
			if err != nil {
				errs <- err
				return
			}
			errs <- dmatch.RunWorker(addr, g.D, rules, mlpred.DefaultRegistry(), dmatch.WorkerOptions{
				Worker:            worker,
				HeartbeatInterval: 100 * time.Millisecond,
				CrashAfter:        crashAfter[worker],
			})
		}()
		return nil
	}
}

// TestDistributedEqualsInProcess is the tentpole oracle: at w ∈ {2,4,8},
// the distributed run over real TCP connections produces a Γ identical to
// the in-process run — same match set, same validated set, same classes.
func TestDistributedEqualsInProcess(t *testing.T) {
	g, rules := tpchWorkload(t)
	for _, n := range []int{2, 4, 8} {
		inproc, err := dmatch.Run(g.D, rules, mlpred.DefaultRegistry(), dmatch.Options{Workers: n})
		if err != nil {
			t.Fatalf("n=%d in-process: %v", n, err)
		}

		gm, rulesM := tpchWorkload(t)
		errs := make(chan error, n)
		dist, err := dmatch.RunDistributed(gm.D, rulesM, mlpred.DefaultRegistry(),
			dmatch.Options{Workers: n},
			dmatch.DistOptions{Spawn: spawnLocalWorkers(t, nil, errs)})
		if err != nil {
			t.Fatalf("n=%d distributed: %v", n, err)
		}
		for i := 0; i < n; i++ {
			if werr := <-errs; werr != nil {
				t.Fatalf("n=%d worker: %v", n, werr)
			}
		}

		if got, want := factSetSignature(dist.Matches), factSetSignature(inproc.Matches); got != want {
			t.Errorf("n=%d: distributed match set diverges from in-process", n)
		}
		if got, want := factSetSignature(dist.Validated), factSetSignature(inproc.Validated); got != want {
			t.Errorf("n=%d: distributed validated set diverges from in-process", n)
		}
		if got, want := classSignature(dist.Classes()), classSignature(inproc.Classes()); got != want {
			t.Errorf("n=%d: distributed classes diverge from in-process", n)
		}
		if dist.Wire.BytesOut == 0 || dist.Wire.BytesIn == 0 || dist.Wire.FramesOut == 0 {
			t.Errorf("n=%d: no wire traffic measured: %+v", n, dist.Wire)
		}
		var stepBytes int64
		for _, ss := range dist.Timeline().Steps {
			stepBytes += ss.BytesOnWire
		}
		if stepBytes == 0 {
			t.Errorf("n=%d: timeline recorded no per-superstep wire bytes", n)
		}
	}
}

// TestDistributedRecovery kills one worker after its first delta and
// checks the master recovers — reassigns the dead worker's blocks,
// rebuilds the survivors over the wire with replay — and still converges
// to the in-process Γ.
func TestDistributedRecovery(t *testing.T) {
	g, rules := tpchWorkload(t)
	want, err := dmatch.Run(g.D, rules, mlpred.DefaultRegistry(), dmatch.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}

	const n = 3
	gm, rulesM := tpchWorkload(t)
	errs := make(chan error, n)
	dist, err := dmatch.RunDistributed(gm.D, rulesM, mlpred.DefaultRegistry(),
		dmatch.Options{Workers: n},
		dmatch.DistOptions{
			Spawn:            spawnLocalWorkers(t, map[int]int{1: 1}, errs),
			HeartbeatTimeout: 5 * time.Second,
		})
	if err != nil {
		t.Fatalf("distributed with crash: %v", err)
	}
	sawCrash := false
	for i := 0; i < n; i++ {
		if werr := <-errs; errors.Is(werr, dmatch.ErrInjectedCrash) {
			sawCrash = true
		} else if werr != nil {
			t.Fatalf("worker: %v", werr)
		}
	}
	if !sawCrash {
		t.Fatal("injected crash never fired")
	}
	if len(dist.Recoveries) == 0 {
		t.Fatal("worker died but no recovery was recorded")
	}
	rec := dist.Recoveries[0]
	if rec.Worker != 1 || rec.BlocksMoved == 0 || rec.WorkersRebuilt == 0 {
		t.Fatalf("recovery event %+v: want worker 1 with moved blocks and rebuilt survivors", rec)
	}
	if got := factSetSignature(dist.Matches); got != factSetSignature(want.Matches) {
		t.Error("post-recovery match set diverges from in-process")
	}
	if got := factSetSignature(dist.Validated); got != factSetSignature(want.Validated) {
		t.Error("post-recovery validated set diverges from in-process")
	}
	if classSignature(dist.Classes()) != classSignature(want.Classes()) {
		t.Error("post-recovery classes diverge from in-process")
	}
}

// TestDistributedAllWorkersDead: when every worker dies the run must fail
// with an error, not hang.
func TestDistributedAllWorkersDead(t *testing.T) {
	g, rules := tpchWorkload(t)
	errs := make(chan error, 2)
	_, err := dmatch.RunDistributed(g.D, rules, mlpred.DefaultRegistry(),
		dmatch.Options{Workers: 2},
		dmatch.DistOptions{
			Spawn:            spawnLocalWorkers(t, map[int]int{0: 1, 1: 1}, errs),
			HeartbeatTimeout: 5 * time.Second,
		})
	if err == nil {
		t.Fatal("all workers dead but the run reported success")
	}
	if !strings.Contains(err.Error(), "workers died") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestDistributedFingerprintMismatch: a worker that loaded different data
// must be rejected at the handshake.
func TestDistributedFingerprintMismatch(t *testing.T) {
	g, rules := tpchWorkload(t)
	errs := make(chan error, 2)
	spawn := func(worker int, addr string) error {
		go func() {
			// Worker 1 loads a differently-sized dataset.
			scale := 0.04
			if worker == 1 {
				scale = 0.02
			}
			gw := datagen.TPCH(datagen.TPCHOptions{Scale: scale, Dup: 0.4, Seed: 7})
			rw, err := gw.Rules()
			if err != nil {
				errs <- err
				return
			}
			errs <- dmatch.RunWorker(addr, gw.D, rw, mlpred.DefaultRegistry(), dmatch.WorkerOptions{Worker: worker})
		}()
		return nil
	}
	_, err := dmatch.RunDistributed(g.D, rules, mlpred.DefaultRegistry(),
		dmatch.Options{Workers: 2},
		dmatch.DistOptions{Spawn: spawn, AcceptTimeout: 10 * time.Second})
	if err == nil {
		t.Fatal("fingerprint mismatch accepted")
	}
	if !strings.Contains(err.Error(), "fingerprint") && !strings.Contains(err.Error(), "handshake") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestDistributedOSProcesses re-executes the test binary as real worker
// processes (the full tentpole path: exec, TCP, separate address spaces)
// and checks Γ against the in-process run.
func TestDistributedOSProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("process spawning in -short mode")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Skip("cannot locate test binary")
	}
	g, rules := tpchWorkload(t)
	want, err := dmatch.Run(g.D, rules, mlpred.DefaultRegistry(), dmatch.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	gm, rulesM := tpchWorkload(t)
	var cmds []*exec.Cmd
	spawn := func(worker int, addr string) error {
		cmd := exec.Command(exe, "-test.run", "TestDistributedWorkerHelper")
		cmd.Env = append(os.Environ(),
			"DMATCH_WORKER_HELPER=1",
			"DMATCH_ADDR="+addr,
			"DMATCH_WORKER_ID="+strconv.Itoa(worker))
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return err
		}
		cmds = append(cmds, cmd)
		return nil
	}
	dist, err := dmatch.RunDistributed(gm.D, rulesM, mlpred.DefaultRegistry(),
		dmatch.Options{Workers: 2},
		dmatch.DistOptions{Spawn: spawn})
	for _, cmd := range cmds {
		cmd.Wait()
	}
	if err != nil {
		t.Fatalf("distributed over OS processes: %v", err)
	}
	if classSignature(dist.Classes()) != classSignature(want.Classes()) {
		t.Error("OS-process distributed classes diverge from in-process")
	}
	if factSetSignature(dist.Matches) != factSetSignature(want.Matches) {
		t.Error("OS-process distributed match set diverges from in-process")
	}
}

// TestDistributedWorkerHelper is not a test: it is the worker half of
// TestDistributedOSProcesses, entered only when re-executed with the
// helper environment set.
func TestDistributedWorkerHelper(t *testing.T) {
	if os.Getenv("DMATCH_WORKER_HELPER") != "1" {
		t.Skip("helper entry point")
	}
	addr := os.Getenv("DMATCH_ADDR")
	id, err := strconv.Atoi(os.Getenv("DMATCH_WORKER_ID"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad DMATCH_WORKER_ID:", err)
		os.Exit(2)
	}
	g := datagen.TPCH(datagen.TPCHOptions{Scale: 0.04, Dup: 0.4, Seed: 7})
	rules, err := g.Rules()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := dmatch.RunWorker(addr, g.D, rules, mlpred.DefaultRegistry(), dmatch.WorkerOptions{Worker: id}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}
