package mlpred

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"dcer/internal/fnv"
	"dcer/internal/relation"
)

// TokenCount is one distinct lowercase token of a text with its
// multiplicity, kept sorted by token inside Features so set and vector
// operations run as linear merges instead of map probes.
type TokenCount struct {
	Tok string
	N   float64
}

// Features is the precomputed feature bundle of one attribute-value vector
// (one tuple projected on one ML predicate's attribute list). Classifiers
// that implement FeatureClassifier score pairs of these by merges and dot
// products instead of re-tokenizing, re-embedding, and re-joining strings
// on every Predict call.
//
// Only the flattened text is materialized up front; the token multiset and
// the trigram embedding are each derived on first use and memoized, so a
// bundle scored only by an edit-distance classifier never tokenizes, and
// one scored only by token metrics never embeds.
type Features struct {
	// Text is the flattened attribute text (FlattenValues of the vector).
	Text string

	dim int

	tokOnce   sync.Once
	tokens    []TokenCount
	tokenNorm float64

	embOnce sync.Once
	embed   []float64
}

// ComputeFeatures builds the feature bundle of one attribute-value vector.
func ComputeFeatures(vals []relation.Value, dim int) *Features {
	return computeFeaturesText(FlattenValues(vals), dim)
}

func computeFeaturesText(text string, dim int) *Features {
	if dim <= 0 {
		dim = EmbeddingDim
	}
	return &Features{Text: text, dim: dim}
}

// Tokens returns the distinct lowercase tokens of the text with counts,
// sorted by token; computed on first call. Safe for concurrent use.
func (f *Features) Tokens() []TokenCount {
	f.tokOnce.Do(f.computeTokens)
	return f.tokens
}

// TokenNorm returns the L2 norm of the token-count vector.
func (f *Features) TokenNorm() float64 {
	f.tokOnce.Do(f.computeTokens)
	return f.tokenNorm
}

// Embedding returns the hashed character-trigram embedding, L2-normalized
// so the cosine of two bundles is a plain dot product; computed on first
// call. Safe for concurrent use.
func (f *Features) Embedding() []float64 {
	f.embOnce.Do(func() { f.embed = Embed(f.Text, f.dim) })
	return f.embed
}

func (f *Features) computeTokens() {
	toks := Tokenize(f.Text)
	if len(toks) == 0 {
		return
	}
	sort.Strings(toks)
	f.tokens = make([]TokenCount, 0, len(toks))
	for _, t := range toks {
		if n := len(f.tokens); n > 0 && f.tokens[n-1].Tok == t {
			f.tokens[n-1].N++
		} else {
			f.tokens = append(f.tokens, TokenCount{Tok: t, N: 1})
		}
	}
	var norm float64
	for _, tc := range f.tokens {
		norm += tc.N * tc.N
	}
	f.tokenNorm = math.Sqrt(norm)
}

// JaccardFeatures is token-set Jaccard over precomputed sorted token lists
// (a linear merge; no maps, no re-tokenization).
func JaccardFeatures(a, b *Features) float64 {
	ta, tb := a.Tokens(), b.Tokens()
	la, lb := len(ta), len(tb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	inter := 0
	for i, j := 0, 0; i < la && j < lb; {
		switch {
		case ta[i].Tok == tb[j].Tok:
			inter++
			i++
			j++
		case ta[i].Tok < tb[j].Tok:
			i++
		default:
			j++
		}
	}
	return float64(inter) / float64(la+lb-inter)
}

// CosineTokensFeatures is token-frequency cosine over precomputed sorted
// token lists.
func CosineTokensFeatures(a, b *Features) float64 {
	ta, tb := a.Tokens(), b.Tokens()
	if len(ta) == 0 || len(tb) == 0 {
		if len(ta) == 0 && len(tb) == 0 {
			return 1
		}
		return 0
	}
	var dot float64
	for i, j := 0, 0; i < len(ta) && j < len(tb); {
		switch {
		case ta[i].Tok == tb[j].Tok:
			dot += ta[i].N * tb[j].N
			i++
			j++
		case ta[i].Tok < tb[j].Tok:
			i++
		default:
			j++
		}
	}
	if a.TokenNorm() == 0 || b.TokenNorm() == 0 {
		return 0
	}
	return dot / (a.TokenNorm() * b.TokenNorm())
}

// EmbeddingSimFeatures is embedding cosine over the precomputed vectors —
// the expensive Embed pass runs once per bundle, only the dot product
// remains per pair.
func EmbeddingSimFeatures(a, b *Features) float64 {
	return CosineVec(a.Embedding(), b.Embedding())
}

// featStoreShards is the shard count of a FeatureStore (a power of two so
// shard selection is a mask).
const featStoreShards = 64

type featShard struct {
	mu sync.RWMutex
	m  map[featKey]*Features

	// hits and misses are incremented while the shard lock is held, so
	// Snapshot — which takes the write lock — observes each shard
	// quiesced: counters and map size mutually coherent. Atomics because
	// multiple readers hold the RLock at once.
	hits   atomic.Int64
	misses atomic.Int64
}

// featKey addresses one tuple's feature bundle for one attribute list.
type featKey struct {
	gid   relation.TID
	attrs uint32
}

// FeatureStore computes and retains the Features of each (tuple,
// attribute-list) pair exactly once, indexed by the tuple's global id.
// Attribute lists are interned to small ids (AttrsID) at rule-bind time so
// the hot path never hashes slices or builds strings. The store is sharded
// for concurrent access from parallel enumerations.
type FeatureStore struct {
	dim    int
	shards [featStoreShards]featShard

	mu      sync.Mutex // guards attrs interning (bind time only)
	attrIDs map[uint64][]attrsEntry
	nAttrs  uint32
}

type attrsEntry struct {
	attrs []int
	id    uint32
}

// NewFeatureStore creates an empty store producing embeddings of the given
// dimensionality (0 means EmbeddingDim).
func NewFeatureStore(dim int) *FeatureStore {
	if dim <= 0 {
		dim = EmbeddingDim
	}
	s := &FeatureStore{dim: dim, attrIDs: make(map[uint64][]attrsEntry)}
	for i := range s.shards {
		s.shards[i].m = make(map[featKey]*Features)
	}
	return s
}

// AttrsID interns an attribute-index list to a small id. Call once per
// bound predicate at setup, not on the scoring path.
func (s *FeatureStore) AttrsID(attrs []int) uint32 {
	h := uint64(fnv.Offset64)
	for _, a := range attrs {
		h = fnv.Uint64(h, uint64(a))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.attrIDs[h] {
		if equalInts(e.attrs, attrs) {
			return e.id
		}
	}
	id := s.nAttrs
	s.nAttrs++
	s.attrIDs[h] = append(s.attrIDs[h], attrsEntry{attrs: append([]int(nil), attrs...), id: id})
	return id
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (s *FeatureStore) shardFor(k featKey) *featShard {
	h := fnv.Uint64(fnv.Uint64(fnv.Offset64, uint64(k.gid)), uint64(k.attrs))
	return &s.shards[h&(featStoreShards-1)]
}

// Get returns the feature bundle of tuple gid projected on the interned
// attribute list, computing and caching it on first use. vals is the
// tuple's attribute-value vector for that list; it is only read on a miss.
func (s *FeatureStore) Get(gid relation.TID, attrsID uint32, vals []relation.Value) *Features {
	k := featKey{gid: gid, attrs: attrsID}
	sh := s.shardFor(k)
	sh.mu.RLock()
	f, ok := sh.m[k]
	if ok {
		sh.hits.Add(1)
	}
	sh.mu.RUnlock()
	if ok {
		return f
	}
	// Compute outside the lock; a concurrent duplicate costs one redundant
	// computation, never a wrong answer (features are deterministic).
	f = ComputeFeatures(vals, s.dim)
	sh.mu.Lock()
	sh.misses.Add(1)
	if prev, ok := sh.m[k]; ok {
		f = prev
	} else {
		sh.m[k] = f
	}
	sh.mu.Unlock()
	return f
}

// Cached returns the feature bundle of (gid, attrsID) only if it is
// already in the store, counting a hit when found. Callers use it to
// avoid gathering the boxed attribute vector on warm lookups: probe
// Cached first, and only on a miss gather the values and call Get (which
// then accounts the miss).
func (s *FeatureStore) Cached(gid relation.TID, attrsID uint32) (*Features, bool) {
	k := featKey{gid: gid, attrs: attrsID}
	sh := s.shardFor(k)
	sh.mu.RLock()
	f, ok := sh.m[k]
	if ok {
		sh.hits.Add(1)
	}
	sh.mu.RUnlock()
	return f, ok
}

// GetText is Get for callers that already hold the flattened text (the
// baselines' record view).
func (s *FeatureStore) GetText(gid relation.TID, attrsID uint32, text string) *Features {
	k := featKey{gid: gid, attrs: attrsID}
	sh := s.shardFor(k)
	sh.mu.RLock()
	f, ok := sh.m[k]
	if ok {
		sh.hits.Add(1)
	}
	sh.mu.RUnlock()
	if ok {
		return f
	}
	f = computeFeaturesText(text, s.dim)
	sh.mu.Lock()
	sh.misses.Add(1)
	if prev, ok := sh.m[k]; ok {
		f = prev
	} else {
		sh.m[k] = f
	}
	sh.mu.Unlock()
	return f
}

// Snapshot returns hits, misses, and retained bundle count in one pass.
// Each shard is read under its write lock, excluding in-flight Gets on
// that shard, so the per-shard triples are mutually coherent.
func (s *FeatureStore) Snapshot() CacheSnapshot {
	var out CacheSnapshot
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out.Hits += sh.hits.Load()
		out.Misses += sh.misses.Load()
		out.Entries += len(sh.m)
		sh.mu.Unlock()
	}
	return out
}

// Len returns the number of retained feature bundles.
func (s *FeatureStore) Len() int {
	return s.Snapshot().Entries
}

// Stats returns (hits, misses); a miss creates and retains one bundle
// (whose token and embedding parts are then derived lazily on first use).
// Callers needing hits, misses, and Len coherently should use Snapshot.
func (s *FeatureStore) Stats() (hits, misses int64) {
	snap := s.Snapshot()
	return snap.Hits, snap.Misses
}
