package mlpred_test

import (
	"math"
	"math/rand"
	"testing"

	"dcer/internal/mlpred"
	"dcer/internal/relation"
)

// randomTexts builds short random token sequences over a tiny vocabulary,
// so token overlaps (and empty texts) are frequent.
func randomTexts(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	vocab := []string{"alice", "smith", "bob", "jones", "acme", "corp", "12", "ltd"}
	out := make([]string, n)
	for i := range out {
		k := rng.Intn(5)
		s := ""
		for j := 0; j < k; j++ {
			if j > 0 {
				s += " "
			}
			s += vocab[rng.Intn(len(vocab))]
		}
		out[i] = s
	}
	return out
}

// TestFeatureMetricsParity checks that every feature-based metric computes
// the same value as its string-based original on random text pairs — the
// precomputation must be a pure optimization.
func TestFeatureMetricsParity(t *testing.T) {
	texts := randomTexts(40, 7)
	fs := mlpred.NewFeatureStore(0)
	aid := fs.AttrsID(nil)
	feats := make([]*mlpred.Features, len(texts))
	for i, s := range texts {
		feats[i] = fs.GetText(relation.TID(i), aid, s)
	}
	close := func(a, b float64) bool { return math.Abs(a-b) < 1e-12 }
	for i := range texts {
		for j := range texts {
			a, b := texts[i], texts[j]
			fa, fb := feats[i], feats[j]
			if got, want := mlpred.JaccardFeatures(fa, fb), mlpred.Jaccard(a, b); !close(got, want) {
				t.Fatalf("Jaccard(%q,%q): features %v, strings %v", a, b, got, want)
			}
			if got, want := mlpred.CosineTokensFeatures(fa, fb), mlpred.CosineTokens(a, b); !close(got, want) {
				t.Fatalf("CosineTokens(%q,%q): features %v, strings %v", a, b, got, want)
			}
			if got, want := mlpred.EmbeddingSimFeatures(fa, fb), mlpred.EmbeddingSim(a, b, mlpred.EmbeddingDim); !close(got, want) {
				t.Fatalf("EmbeddingSim(%q,%q): features %v, strings %v", a, b, got, want)
			}
		}
	}
}

// TestPairFeaturesOfParity checks the logistic feature battery over
// precomputed bundles against the string-based battery.
func TestPairFeaturesOfParity(t *testing.T) {
	texts := randomTexts(20, 11)
	fs := mlpred.NewFeatureStore(0)
	aid := fs.AttrsID(nil)
	for i := range texts {
		for j := range texts {
			fa := fs.GetText(relation.TID(i), aid, texts[i])
			fb := fs.GetText(relation.TID(j), aid, texts[j])
			want := mlpred.PairFeatures(texts[i], texts[j])
			got := mlpred.PairFeaturesOf(fa, fb)
			if len(got) != len(want) {
				t.Fatalf("feature count %d, want %d", len(got), len(want))
			}
			for k := range want {
				if math.Abs(got[k]-want[k]) > 1e-12 {
					t.Fatalf("feature %d of (%q,%q) = %v, want %v", k, texts[i], texts[j], got[k], want[k])
				}
			}
		}
	}
}

// TestFeatureClassifierParity checks PredictFeatures against Predict for
// every stock classifier of the default registry.
func TestFeatureClassifierParity(t *testing.T) {
	reg := mlpred.DefaultRegistry()
	texts := randomTexts(25, 13)
	fs := mlpred.NewFeatureStore(0)
	aid := fs.AttrsID(nil)
	for _, name := range reg.Names() {
		cl, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		fc, ok := cl.(mlpred.FeatureClassifier)
		if !ok {
			t.Fatalf("stock classifier %s does not score features", name)
		}
		for i := range texts {
			for j := range texts {
				l := []relation.Value{relation.S(texts[i])}
				r := []relation.Value{relation.S(texts[j])}
				fa := fs.GetText(relation.TID(i), aid, texts[i])
				fb := fs.GetText(relation.TID(j), aid, texts[j])
				if got, want := fc.PredictFeatures(fa, fb), cl.Predict(l, r); got != want {
					t.Fatalf("%s(%q,%q): features %v, strings %v", name, texts[i], texts[j], got, want)
				}
				if fc.Symmetric() {
					if fc.PredictFeatures(fa, fb) != fc.PredictFeatures(fb, fa) {
						t.Fatalf("%s claims symmetry but differs on (%q,%q)", name, texts[i], texts[j])
					}
				}
			}
		}
	}
}

// TestFeatureStoreMemoization checks that bundles are computed once per
// (tuple, attribute list) and that attribute lists intern stably.
func TestFeatureStoreMemoization(t *testing.T) {
	fs := mlpred.NewFeatureStore(0)
	a1 := fs.AttrsID([]int{1, 2})
	a2 := fs.AttrsID([]int{2, 1})
	if a1 == a2 {
		t.Fatal("distinct attribute lists interned to the same id")
	}
	if fs.AttrsID([]int{1, 2}) != a1 {
		t.Fatal("re-interning the same list changed its id")
	}
	vals := []relation.Value{relation.S("alice"), relation.S("smith")}
	f1 := fs.Get(7, a1, vals)
	f2 := fs.Get(7, a1, vals)
	if f1 != f2 {
		t.Fatal("second Get did not return the cached bundle")
	}
	if fs.Get(7, a2, vals) == f1 {
		t.Fatal("different attribute list shared a bundle")
	}
	if fs.Get(8, a1, vals) == f1 {
		t.Fatal("different tuple shared a bundle")
	}
	hits, misses := fs.Stats()
	if hits != 1 || misses != 3 {
		t.Errorf("stats = %d hits / %d misses, want 1/3", hits, misses)
	}
	if fs.Len() != 3 {
		t.Errorf("Len = %d, want 3", fs.Len())
	}
	if f1.Text != "alice smith" || len(f1.Tokens()) != 2 {
		t.Errorf("bundle content wrong: text %q, %d tokens", f1.Text, len(f1.Tokens()))
	}
}

// TestPairCache checks lookup/store/stats and that distinct classifier ids
// do not collide.
func TestPairCache(t *testing.T) {
	c := mlpred.NewPairCache()
	id1 := c.ClassifierID("lev080|1~1")
	id2 := c.ClassifierID("lev080|2~2")
	if id1 == id2 {
		t.Fatal("distinct signatures interned to the same id")
	}
	if c.ClassifierID("lev080|1~1") != id1 {
		t.Fatal("re-interning changed the id")
	}
	if _, ok := c.Lookup(id1, 3, 5); ok {
		t.Fatal("hit on empty cache")
	}
	c.Store(id1, 3, 5, true)
	if ans, ok := c.Lookup(id1, 3, 5); !ok || !ans {
		t.Fatal("stored answer not found")
	}
	if _, ok := c.Lookup(id2, 3, 5); ok {
		t.Fatal("answer leaked across classifier ids")
	}
	if _, ok := c.Lookup(id1, 5, 3); ok {
		t.Fatal("ordered key matched the swapped pair")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 3 {
		t.Errorf("stats = %d hits / %d misses, want 1/3", hits, misses)
	}
}

// TestPairCacheConcurrent hammers one cache from several goroutines under
// the race detector.
func TestPairCacheConcurrent(t *testing.T) {
	c := mlpred.NewPairCache()
	id := c.ClassifierID("x")
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				a := relation.TID((g*37 + i) % 50)
				b := relation.TID(i % 50)
				if ans, ok := c.Lookup(id, a, b); ok && !ans {
					t.Errorf("false answer for (%d,%d)", a, b)
				}
				c.Store(id, a, b, true)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

// TestCacheSymmetricCanonicalization checks that the string cache stores
// one entry per unordered pair for symmetric classifiers and keeps ordered
// keys for asymmetric ones.
func TestCacheSymmetricCanonicalization(t *testing.T) {
	sym := &mlpred.SimClassifier{ClassifierName: "sym", Threshold: 0.5,
		Metric: func(a, b string) float64 { return 1 }}
	cache := mlpred.NewCache()
	l := []relation.Value{relation.S("x")}
	r := []relation.Value{relation.S("y")}
	cache.Predict(sym, l, r)
	cache.Predict(sym, r, l)
	if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Errorf("symmetric: stats = %d hits / %d misses, want 1/1", hits, misses)
	}

	calls := 0
	asym := &mlpred.Func{ClassifierName: "asym", Fn: func(l, r []relation.Value) bool {
		calls++
		return l[0].Str < r[0].Str
	}}
	cache2 := mlpred.NewCache()
	if !cache2.Predict(asym, l, r) || cache2.Predict(asym, r, l) {
		t.Error("asymmetric answers wrong")
	}
	if calls != 2 {
		t.Errorf("asymmetric classifier called %d times, want 2 (no canonicalization)", calls)
	}
}

// TestFeatureStoreConcurrent hammers one store from several goroutines;
// all goroutines must converge on the same bundle pointers, and the lazily
// derived token/embedding parts must be safe to race on.
func TestFeatureStoreConcurrent(t *testing.T) {
	fs := mlpred.NewFeatureStore(0)
	aid := fs.AttrsID(nil)
	texts := randomTexts(30, 17)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			var prev *mlpred.Features
			for i, s := range texts {
				f := fs.GetText(relation.TID(i), aid, s)
				if f.Text != s {
					t.Errorf("bundle for %q carries text %q", s, f.Text)
				}
				if prev != nil {
					mlpred.JaccardFeatures(prev, f)
					mlpred.EmbeddingSimFeatures(prev, f)
				}
				prev = f
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if fs.Len() != len(texts) {
		t.Errorf("Len = %d, want %d", fs.Len(), len(texts))
	}
}

// BenchmarkPairCacheLookup measures the hot-path hit cost.
func BenchmarkPairCacheLookup(b *testing.B) {
	c := mlpred.NewPairCache()
	id := c.ClassifierID("bench")
	for i := 0; i < 1024; i++ {
		c.Store(id, relation.TID(i), relation.TID(i+1), i%2 == 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(id, relation.TID(i%1024), relation.TID(i%1024+1))
	}
}
