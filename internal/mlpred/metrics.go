// Package mlpred is the ML-predicate substrate of the reproduction.
//
// The paper embeds pretrained ML classifiers (DeepER, fasttext, ditto, ...)
// as predicates M(t[Ā], s[B̄]) inside MRLs. This environment has no ML
// libraries, so — per the reproduction's substitution rule — the package
// provides deterministic, pure-Go binary classifiers over attribute-value
// vectors that exercise exactly the same code path: the chase engine treats
// each one as an opaque boolean oracle and memoizes its answers.
//
// Provided classifier families:
//
//   - threshold classifiers over classical string metrics (Levenshtein,
//     Jaro-Winkler, Jaccard, TF-IDF cosine) — stand-ins for fasttext-style
//     semantic similarity checks;
//   - an embedding classifier using hashed character-n-gram vectors and
//     cosine similarity — a stand-in for DeepER's distributed tuple
//     representations;
//   - a trainable logistic-regression classifier over pair features, with
//     an SGD trainer — a stand-in for supervised ER models.
package mlpred

import (
	"math"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Stack-scratch bounds of the ASCII fast paths below: strings at most
// this long are scored without any heap allocation. Longer or non-ASCII
// inputs take the general rune paths, which produce identical results
// (for ASCII text, byte indexing and rune indexing coincide).
const (
	jaroStack = 64
	levStack  = 128
)

// isASCII reports whether s contains only single-byte runes.
func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// Tokenize splits s into lowercase word tokens on any non-alphanumeric rune.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// NGrams returns the character n-grams of s (lowercased, padded with '#').
func NGrams(s string, n int) []string {
	if n <= 0 {
		return nil
	}
	s = strings.ToLower(s)
	pad := strings.Repeat("#", n-1)
	s = pad + s + pad
	r := []rune(s)
	if len(r) < n {
		return []string{string(r)}
	}
	out := make([]string, 0, len(r)-n+1)
	for i := 0; i+n <= len(r); i++ {
		out = append(out, string(r[i:i+n]))
	}
	return out
}

// Levenshtein computes the edit distance between a and b.
func Levenshtein(a, b string) int {
	if len(b) < levStack && isASCII(a) && isASCII(b) {
		return levASCII(a, b)
	}
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// levASCII is the allocation-free byte-wise edit distance for ASCII
// inputs with len(b) < levStack; same recurrence as the rune path.
func levASCII(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	var prevBuf, curBuf [levStack]int
	prev, cur := prevBuf[:len(b)+1], curBuf[:len(b)+1]
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// LevenshteinSim normalizes edit distance into a [0,1] similarity.
func LevenshteinSim(a, b string) float64 {
	if a == "" && b == "" {
		return 1
	}
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	max := la
	if lb > max {
		max = lb
	}
	if max == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(max)
}

// Jaro computes the Jaro similarity of a and b.
func Jaro(a, b string) float64 {
	if len(a) <= jaroStack && len(b) <= jaroStack && isASCII(a) && isASCII(b) {
		return jaroASCII(a, b)
	}
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i, ca := range ra {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || rb[j] != ca {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := range ra {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// jaroASCII is the allocation-free byte-wise Jaro similarity for ASCII
// inputs up to jaroStack bytes; same algorithm as the rune path.
func jaroASCII(a, b string) float64 {
	la, lb := len(a), len(b)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	var matchA, matchB [jaroStack]bool
	matches := 0
	for i := 0; i < la; i++ {
		ca := a[i]
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || b[j] != ca {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if a[i] != b[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler boosts Jaro similarity for shared prefixes (standard p=0.1,
// prefix capped at 4).
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	for prefix < 4 && len(a) > 0 && len(b) > 0 {
		ca, na := utf8.DecodeRuneInString(a)
		cb, nb := utf8.DecodeRuneInString(b)
		if ca != cb {
			break
		}
		a, b = a[na:], b[nb:]
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// Jaccard computes token-set Jaccard similarity of a and b.
func Jaccard(a, b string) float64 {
	ta, tb := Tokenize(a), Tokenize(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	setA := make(map[string]bool, len(ta))
	for _, t := range ta {
		setA[t] = true
	}
	setB := make(map[string]bool, len(tb))
	for _, t := range tb {
		setB[t] = true
	}
	inter := 0
	for t := range setA {
		if setB[t] {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	return float64(inter) / float64(union)
}

// CosineTokens computes the cosine similarity of the token-frequency
// vectors of a and b (a cheap TF cosine; IDF weighting is provided by the
// Corpus type for callers that have a corpus).
func CosineTokens(a, b string) float64 {
	fa := termFreq(Tokenize(a))
	fb := termFreq(Tokenize(b))
	return cosineMaps(fa, fb)
}

func termFreq(tokens []string) map[string]float64 {
	m := make(map[string]float64, len(tokens))
	for _, t := range tokens {
		m[t]++
	}
	return m
}

func cosineMaps(a, b map[string]float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		if len(a) == 0 && len(b) == 0 {
			return 1
		}
		return 0
	}
	var dot, na, nb float64
	for t, w := range a {
		na += w * w
		if w2, ok := b[t]; ok {
			dot += w * w2
		}
	}
	for _, w := range b {
		nb += w * w
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// AbbrevNameSim recognizes abbreviated person names ("Ford Smith" vs
// "F. Smith"): it returns 1 when the last tokens agree and every leading
// token of one side is a prefix (e.g. an initial) of the corresponding
// token of the other, and 0 otherwise.
func AbbrevNameSim(a, b string) float64 {
	ta, tb := Tokenize(a), Tokenize(b)
	if len(ta) == 0 || len(tb) == 0 || len(ta) != len(tb) {
		return 0
	}
	if ta[len(ta)-1] != tb[len(tb)-1] {
		return 0
	}
	for i := 0; i < len(ta)-1; i++ {
		x, y := ta[i], tb[i]
		if !strings.HasPrefix(x, y) && !strings.HasPrefix(y, x) {
			return 0
		}
	}
	return 1
}

// SurnameSim compares comma-separated author/person lists by the Jaccard
// similarity of their surname sets (the last token of each name), so
// "J. Smith, A. Kumar" and "John Smith, Anil Kumar" score 1.
func SurnameSim(a, b string) float64 {
	last := func(s string) map[string]bool {
		out := make(map[string]bool)
		for _, name := range strings.Split(s, ",") {
			toks := Tokenize(name)
			if len(toks) > 0 {
				out[toks[len(toks)-1]] = true
			}
		}
		return out
	}
	sa, sb := last(a), last(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	return float64(inter) / float64(len(sa)+len(sb)-inter)
}

// Corpus accumulates document frequencies for IDF-weighted cosine.
type Corpus struct {
	docs int
	df   map[string]int
}

// NewCorpus creates an empty corpus.
func NewCorpus() *Corpus { return &Corpus{df: make(map[string]int)} }

// Add registers one document's text.
func (c *Corpus) Add(text string) {
	c.docs++
	seen := make(map[string]bool)
	for _, t := range Tokenize(text) {
		if !seen[t] {
			seen[t] = true
			c.df[t]++
		}
	}
}

// IDF returns the smoothed inverse document frequency of token t.
func (c *Corpus) IDF(t string) float64 {
	return math.Log(float64(c.docs+1)/float64(c.df[t]+1)) + 1
}

// TFIDFCosine computes the IDF-weighted cosine similarity of two texts.
func (c *Corpus) TFIDFCosine(a, b string) float64 {
	fa := termFreq(Tokenize(a))
	fb := termFreq(Tokenize(b))
	for t := range fa {
		fa[t] *= c.IDF(t)
	}
	for t := range fb {
		fb[t] *= c.IDF(t)
	}
	return cosineMaps(fa, fb)
}
