package mlpred

import (
	"hash/fnv"
	"math"
)

// EmbeddingDim is the default dimensionality of hashed n-gram embeddings.
const EmbeddingDim = 64

// Embed maps text to a dense vector by hashing its character trigrams and
// word tokens into dim buckets (the "hashing trick"), then L2-normalizing.
// It is the stand-in for DeepER's distributed tuple representations: texts
// that share many subword units land close in cosine space, which also
// captures abbreviation-style semantic similarity ("ThinkPad X1 Carbon 7th
// Gen 14-Inch" vs "ThinkPad X1 Carbon 7th Gen 14\"").
func Embed(text string, dim int) []float64 {
	if dim <= 0 {
		dim = EmbeddingDim
	}
	v := make([]float64, dim)
	add := func(feature string, w float64) {
		h := fnv.New32a()
		h.Write([]byte(feature))
		x := h.Sum32()
		idx := int(x % uint32(dim))
		sign := 1.0
		if (x>>16)&1 == 1 {
			sign = -1
		}
		v[idx] += sign * w
	}
	for _, g := range NGrams(text, 3) {
		add("g:"+g, 1)
	}
	for _, t := range Tokenize(text) {
		add("t:"+t, 2)
	}
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range v {
			v[i] /= norm
		}
	}
	return v
}

// CosineVec computes the cosine similarity of two equal-length vectors.
func CosineVec(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		if na == 0 && nb == 0 {
			return 1
		}
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// EmbeddingSim embeds both texts and returns their cosine similarity.
func EmbeddingSim(a, b string, dim int) float64 {
	return CosineVec(Embed(a, dim), Embed(b, dim))
}
