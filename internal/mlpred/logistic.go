package mlpred

import (
	"math"
	"math/rand"
)

// PairFeatures extracts a fixed feature vector from a pair of texts. The
// features are the classic ER similarity battery; a trained LogisticModel
// over them is the supervised-ER stand-in.
func PairFeatures(a, b string) []float64 {
	return []float64{
		1, // bias
		LevenshteinSim(a, b),
		JaroWinkler(a, b),
		Jaccard(a, b),
		CosineTokens(a, b),
		EmbeddingSim(a, b, EmbeddingDim),
		exactFeature(a, b),
		prefixFeature(a, b),
	}
}

// NumPairFeatures is the length of the vector returned by PairFeatures.
const NumPairFeatures = 8

// PairFeaturesOf is PairFeatures over precomputed feature bundles: the
// token- and embedding-based features become linear merges and dot
// products over per-bundle memoized parts, and the string-based ones reuse
// the cached flattened text. It computes the same values as PairFeatures
// on the underlying texts.
func PairFeaturesOf(a, b *Features) []float64 {
	return []float64{
		1, // bias
		LevenshteinSim(a.Text, b.Text),
		JaroWinkler(a.Text, b.Text),
		JaccardFeatures(a, b),
		CosineTokensFeatures(a, b),
		EmbeddingSimFeatures(a, b),
		exactFeature(a.Text, b.Text),
		prefixFeature(a.Text, b.Text),
	}
}

func exactFeature(a, b string) float64 {
	if a == b && a != "" {
		return 1
	}
	return 0
}

func prefixFeature(a, b string) float64 {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	max := len(a)
	if len(b) > max {
		max = len(b)
	}
	if max == 0 {
		return 1
	}
	return float64(n) / float64(max)
}

// LogisticModel is a binary logistic-regression classifier over pair
// features. The zero value predicts 0.5 everywhere; train with Fit.
type LogisticModel struct {
	Weights   []float64
	Threshold float64 // decision threshold on the probability; default 0.5
}

// Sigmoid is the logistic function.
func Sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// Prob returns the model's match probability for the feature vector x.
func (m *LogisticModel) Prob(x []float64) float64 {
	var z float64
	for i := range m.Weights {
		if i < len(x) {
			z += m.Weights[i] * x[i]
		}
	}
	return Sigmoid(z)
}

// PredictPair classifies a text pair.
func (m *LogisticModel) PredictPair(a, b string) bool {
	th := m.Threshold
	if th == 0 {
		th = 0.5
	}
	return m.Prob(PairFeatures(a, b)) >= th
}

// PredictPairFeatures classifies a pair of precomputed feature bundles.
func (m *LogisticModel) PredictPairFeatures(a, b *Features) bool {
	th := m.Threshold
	if th == 0 {
		th = 0.5
	}
	return m.Prob(PairFeaturesOf(a, b)) >= th
}

// Example is a labeled training pair.
type Example struct {
	A, B  string
	Match bool
}

// Fit trains the model by SGD with L2 regularization. Deterministic for a
// fixed seed. epochs full passes are made over the shuffled data.
func (m *LogisticModel) Fit(examples []Example, epochs int, lr, l2 float64, seed int64) {
	if len(examples) == 0 {
		return
	}
	if m.Weights == nil {
		m.Weights = make([]float64, NumPairFeatures)
	}
	feats := make([][]float64, len(examples))
	labels := make([]float64, len(examples))
	for i, e := range examples {
		feats[i] = PairFeatures(e.A, e.B)
		if e.Match {
			labels[i] = 1
		}
	}
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(len(examples))
	for ep := 0; ep < epochs; ep++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			p := m.Prob(feats[idx])
			g := p - labels[idx]
			for j := range m.Weights {
				grad := g * feats[idx][j]
				if j > 0 { // don't regularize the bias
					grad += l2 * m.Weights[j]
				}
				m.Weights[j] -= lr * grad
			}
		}
	}
}

// Accuracy evaluates the model's 0/1 accuracy on labeled pairs.
func (m *LogisticModel) Accuracy(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	for _, e := range examples {
		if m.PredictPair(e.A, e.B) == e.Match {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}
