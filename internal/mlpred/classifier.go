package mlpred

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dcer/internal/relation"
)

// Classifier is an embedded ML predicate M(t[Ā], s[B̄]): a binary
// classifier over two attribute-value vectors. The chase engine treats
// classifiers as opaque PTIME oracles and memoizes their answers, exactly
// as the paper assumes for pretrained models.
type Classifier interface {
	// Name identifies the classifier within a Registry and in rule text.
	Name() string
	// Predict reports whether the two attribute-value vectors match.
	Predict(left, right []relation.Value) bool
}

// FlattenValues joins an attribute-value vector into one text for
// text-similarity classifiers.
func FlattenValues(vs []relation.Value) string {
	if len(vs) == 1 {
		return vs[0].String()
	}
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return strings.Join(parts, " ")
}

// FeatureClassifier is a Classifier that can additionally score
// precomputed Features bundles directly, so engines holding a FeatureStore
// skip re-tokenizing, re-embedding and re-joining strings on every call.
type FeatureClassifier interface {
	Classifier
	// PredictFeatures reports whether two precomputed feature bundles
	// match. Must agree with Predict on the same underlying texts.
	PredictFeatures(a, b *Features) bool
	// Symmetric reports whether Predict(x, y) == Predict(y, x) always
	// holds, so caches may canonicalize the argument order.
	Symmetric() bool
}

// SimClassifier thresholds a string-similarity metric. It is the
// fasttext-style semantic-similarity stand-in.
type SimClassifier struct {
	ClassifierName string
	Metric         func(a, b string) float64
	// FeatureMetric, when set, scores precomputed feature bundles (e.g.
	// JaccardFeatures) instead of re-deriving tokens/embeddings from the
	// flattened text; it must agree with Metric on the same texts. When
	// nil, PredictFeatures falls back to Metric over the cached texts.
	FeatureMetric func(a, b *Features) float64
	Threshold     float64
	// Calib, when set, records every raw score this classifier produces
	// (see Calibration). Nil — the default — costs one branch per call.
	Calib *Calibration
}

// Name implements Classifier.
func (c *SimClassifier) Name() string { return c.ClassifierName }

// Predict implements Classifier.
func (c *SimClassifier) Predict(left, right []relation.Value) bool {
	score := c.Score(left, right)
	if c.Calib != nil {
		c.Calib.Observe(score, score >= c.Threshold)
	}
	return score >= c.Threshold
}

// Score exposes the raw metric value, for baselines that rank candidates.
func (c *SimClassifier) Score(left, right []relation.Value) float64 {
	return c.Metric(FlattenValues(left), FlattenValues(right))
}

// ScoreFeatures is Score over precomputed feature bundles.
func (c *SimClassifier) ScoreFeatures(a, b *Features) float64 {
	if c.FeatureMetric != nil {
		return c.FeatureMetric(a, b)
	}
	return c.Metric(a.Text, b.Text)
}

// PredictFeatures implements FeatureClassifier.
func (c *SimClassifier) PredictFeatures(a, b *Features) bool {
	score := c.ScoreFeatures(a, b)
	if c.Calib != nil {
		c.Calib.Observe(score, score >= c.Threshold)
	}
	return score >= c.Threshold
}

// Symmetric implements FeatureClassifier: similarity metrics are
// symmetric (the string Cache has always assumed this for SimClassifier).
func (c *SimClassifier) Symmetric() bool { return true }

// LogisticClassifier wraps a trained LogisticModel as a predicate. It is
// the supervised-ER (DeepER-style) stand-in.
type LogisticClassifier struct {
	ClassifierName string
	Model          *LogisticModel
	// Calib, when set, records the model's match probabilities (see
	// Calibration). Nil — the default — costs one branch per call.
	Calib *Calibration
}

// Name implements Classifier.
func (c *LogisticClassifier) Name() string { return c.ClassifierName }

// threshold resolves the model's decision threshold (0 means 0.5).
func (c *LogisticClassifier) threshold() float64 {
	if c.Model.Threshold == 0 {
		return 0.5
	}
	return c.Model.Threshold
}

// Score returns the model's match probability for the pair.
func (c *LogisticClassifier) Score(left, right []relation.Value) float64 {
	return c.Model.Prob(PairFeatures(FlattenValues(left), FlattenValues(right)))
}

// ScoreFeatures is Score over precomputed feature bundles.
func (c *LogisticClassifier) ScoreFeatures(a, b *Features) float64 {
	return c.Model.Prob(PairFeaturesOf(a, b))
}

// Predict implements Classifier.
func (c *LogisticClassifier) Predict(left, right []relation.Value) bool {
	score := c.Score(left, right)
	if c.Calib != nil {
		c.Calib.Observe(score, score >= c.threshold())
	}
	return score >= c.threshold()
}

// PredictFeatures implements FeatureClassifier: the similarity-feature
// battery is computed from the precomputed bundles (token merges and dot
// products) instead of re-deriving every feature from raw strings.
func (c *LogisticClassifier) PredictFeatures(a, b *Features) bool {
	score := c.ScoreFeatures(a, b)
	if c.Calib != nil {
		c.Calib.Observe(score, score >= c.threshold())
	}
	return score >= c.threshold()
}

// Symmetric implements FeatureClassifier: every pair feature is symmetric
// in its arguments, so the model's decision is too.
func (c *LogisticClassifier) Symmetric() bool { return true }

// Func adapts a plain function to a Classifier; handy in tests.
type Func struct {
	ClassifierName string
	Fn             func(left, right []relation.Value) bool
}

// Name implements Classifier.
func (c *Func) Name() string { return c.ClassifierName }

// Predict implements Classifier.
func (c *Func) Predict(left, right []relation.Value) bool { return c.Fn(left, right) }

// Registry resolves classifier names appearing in rule text to
// implementations. Safe for concurrent reads after setup.
type Registry struct {
	mu          sync.RWMutex
	classifiers map[string]Classifier
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{classifiers: make(map[string]Classifier)}
}

// Register adds (or replaces) a classifier under its own name.
func (r *Registry) Register(c Classifier) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.classifiers[c.Name()] = c
}

// Get resolves a classifier by name.
func (r *Registry) Get(name string) (Classifier, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.classifiers[name]
	if !ok {
		return nil, fmt.Errorf("mlpred: no classifier %q registered", name)
	}
	return c, nil
}

// Names lists registered classifier names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.classifiers))
	for n := range r.classifiers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DefaultRegistry builds a registry with the stock classifiers used
// throughout the examples and experiments:
//
//	jaccard07, jaccard05  — token Jaccard at 0.7 / 0.5
//	jaro085               — Jaro-Winkler at 0.85
//	lev080                — normalized Levenshtein at 0.80
//	embed080, embed090    — hashed-embedding cosine at 0.80 / 0.90
//	cosine07              — token cosine at 0.7
//	nameabbrev            — abbreviated-person-name matcher
//
// Classifiers whose metric decomposes over per-text features carry a
// FeatureMetric so engines with a FeatureStore score by token merges and
// dot products; the rest (edit-distance-style metrics) still skip the
// per-call value flattening by reading the cached Features.Text.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	r.Register(&SimClassifier{ClassifierName: "jaccard07", Metric: Jaccard, FeatureMetric: JaccardFeatures, Threshold: 0.7})
	r.Register(&SimClassifier{ClassifierName: "jaccard05", Metric: Jaccard, FeatureMetric: JaccardFeatures, Threshold: 0.5})
	r.Register(&SimClassifier{ClassifierName: "jaro085", Metric: JaroWinkler, Threshold: 0.85})
	r.Register(&SimClassifier{ClassifierName: "lev080", Metric: LevenshteinSim, Threshold: 0.8})
	r.Register(&SimClassifier{ClassifierName: "lev075", Metric: LevenshteinSim, Threshold: 0.75})
	r.Register(&SimClassifier{ClassifierName: "cosine07", Metric: CosineTokens, FeatureMetric: CosineTokensFeatures, Threshold: 0.7})
	r.Register(&SimClassifier{ClassifierName: "embed080",
		Metric:        func(a, b string) float64 { return EmbeddingSim(a, b, EmbeddingDim) },
		FeatureMetric: EmbeddingSimFeatures, Threshold: 0.8})
	r.Register(&SimClassifier{ClassifierName: "embed090",
		Metric:        func(a, b string) float64 { return EmbeddingSim(a, b, EmbeddingDim) },
		FeatureMetric: EmbeddingSimFeatures, Threshold: 0.9})
	r.Register(&SimClassifier{ClassifierName: "nameabbrev", Metric: AbbrevNameSim, Threshold: 0.5})
	r.Register(&SimClassifier{ClassifierName: "surnames06", Metric: SurnameSim, Threshold: 0.6})
	return r
}

// Cache memoizes classifier answers by (classifier, left text, right text).
// Keys include argument order; for known-symmetric classifiers the key is
// canonicalized (smaller text first) so each unordered pair is stored
// once. The chase engine's hot path uses the id-keyed sharded PairCache
// instead; this string-keyed cache serves callers without stable tuple
// ids (naive oracle, proofs, discovery, soft chase).
type Cache struct {
	mu      sync.RWMutex
	answers map[string]bool
	hits    atomic.Int64
	misses  atomic.Int64
}

// NewCache creates an empty cache.
func NewCache() *Cache { return &Cache{answers: make(map[string]bool)} }

func cacheKey(name, a, b string) string {
	return name + "\x00" + a + "\x00" + b
}

// symmetricClassifier reports whether cl's answer is argument-order
// independent, so the cache key may be canonicalized.
func symmetricClassifier(cl Classifier) bool {
	if fc, ok := cl.(FeatureClassifier); ok {
		return fc.Symmetric()
	}
	return false
}

// Predict answers via the cache, calling the classifier on a miss.
func (c *Cache) Predict(cl Classifier, left, right []relation.Value) bool {
	a, b := FlattenValues(left), FlattenValues(right)
	if b < a && symmetricClassifier(cl) {
		a, b = b, a
	}
	key := cacheKey(cl.Name(), a, b)
	c.mu.RLock()
	ans, ok := c.answers[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return ans
	}
	ans = cl.Predict(left, right)
	c.misses.Add(1)
	c.mu.Lock()
	c.answers[key] = ans
	c.mu.Unlock()
	return ans
}

// Stats returns (hits, misses).
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
