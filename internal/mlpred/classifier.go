package mlpred

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dcer/internal/relation"
)

// Classifier is an embedded ML predicate M(t[Ā], s[B̄]): a binary
// classifier over two attribute-value vectors. The chase engine treats
// classifiers as opaque PTIME oracles and memoizes their answers, exactly
// as the paper assumes for pretrained models.
type Classifier interface {
	// Name identifies the classifier within a Registry and in rule text.
	Name() string
	// Predict reports whether the two attribute-value vectors match.
	Predict(left, right []relation.Value) bool
}

// FlattenValues joins an attribute-value vector into one text for
// text-similarity classifiers.
func FlattenValues(vs []relation.Value) string {
	if len(vs) == 1 {
		return vs[0].String()
	}
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return strings.Join(parts, " ")
}

// SimClassifier thresholds a string-similarity metric. It is the
// fasttext-style semantic-similarity stand-in.
type SimClassifier struct {
	ClassifierName string
	Metric         func(a, b string) float64
	Threshold      float64
}

// Name implements Classifier.
func (c *SimClassifier) Name() string { return c.ClassifierName }

// Predict implements Classifier.
func (c *SimClassifier) Predict(left, right []relation.Value) bool {
	return c.Metric(FlattenValues(left), FlattenValues(right)) >= c.Threshold
}

// Score exposes the raw metric value, for baselines that rank candidates.
func (c *SimClassifier) Score(left, right []relation.Value) float64 {
	return c.Metric(FlattenValues(left), FlattenValues(right))
}

// LogisticClassifier wraps a trained LogisticModel as a predicate. It is
// the supervised-ER (DeepER-style) stand-in.
type LogisticClassifier struct {
	ClassifierName string
	Model          *LogisticModel
}

// Name implements Classifier.
func (c *LogisticClassifier) Name() string { return c.ClassifierName }

// Predict implements Classifier.
func (c *LogisticClassifier) Predict(left, right []relation.Value) bool {
	return c.Model.PredictPair(FlattenValues(left), FlattenValues(right))
}

// Func adapts a plain function to a Classifier; handy in tests.
type Func struct {
	ClassifierName string
	Fn             func(left, right []relation.Value) bool
}

// Name implements Classifier.
func (c *Func) Name() string { return c.ClassifierName }

// Predict implements Classifier.
func (c *Func) Predict(left, right []relation.Value) bool { return c.Fn(left, right) }

// Registry resolves classifier names appearing in rule text to
// implementations. Safe for concurrent reads after setup.
type Registry struct {
	mu          sync.RWMutex
	classifiers map[string]Classifier
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{classifiers: make(map[string]Classifier)}
}

// Register adds (or replaces) a classifier under its own name.
func (r *Registry) Register(c Classifier) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.classifiers[c.Name()] = c
}

// Get resolves a classifier by name.
func (r *Registry) Get(name string) (Classifier, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.classifiers[name]
	if !ok {
		return nil, fmt.Errorf("mlpred: no classifier %q registered", name)
	}
	return c, nil
}

// Names lists registered classifier names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.classifiers))
	for n := range r.classifiers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DefaultRegistry builds a registry with the stock classifiers used
// throughout the examples and experiments:
//
//	jaccard07, jaccard05  — token Jaccard at 0.7 / 0.5
//	jaro085               — Jaro-Winkler at 0.85
//	lev080                — normalized Levenshtein at 0.80
//	embed080, embed090    — hashed-embedding cosine at 0.80 / 0.90
//	cosine07              — token cosine at 0.7
//	nameabbrev            — abbreviated-person-name matcher
func DefaultRegistry() *Registry {
	r := NewRegistry()
	r.Register(&SimClassifier{ClassifierName: "jaccard07", Metric: Jaccard, Threshold: 0.7})
	r.Register(&SimClassifier{ClassifierName: "jaccard05", Metric: Jaccard, Threshold: 0.5})
	r.Register(&SimClassifier{ClassifierName: "jaro085", Metric: JaroWinkler, Threshold: 0.85})
	r.Register(&SimClassifier{ClassifierName: "lev080", Metric: LevenshteinSim, Threshold: 0.8})
	r.Register(&SimClassifier{ClassifierName: "lev075", Metric: LevenshteinSim, Threshold: 0.75})
	r.Register(&SimClassifier{ClassifierName: "cosine07", Metric: CosineTokens, Threshold: 0.7})
	r.Register(&SimClassifier{ClassifierName: "embed080",
		Metric: func(a, b string) float64 { return EmbeddingSim(a, b, EmbeddingDim) }, Threshold: 0.8})
	r.Register(&SimClassifier{ClassifierName: "embed090",
		Metric: func(a, b string) float64 { return EmbeddingSim(a, b, EmbeddingDim) }, Threshold: 0.9})
	r.Register(&SimClassifier{ClassifierName: "nameabbrev", Metric: AbbrevNameSim, Threshold: 0.5})
	r.Register(&SimClassifier{ClassifierName: "surnames06", Metric: SurnameSim, Threshold: 0.6})
	return r
}

// Cache memoizes classifier answers by (classifier, left text, right text).
// Keys include argument order; for known-symmetric classifiers the answer
// is stored under both orders.
type Cache struct {
	mu      sync.RWMutex
	answers map[string]bool
	hits    atomic.Int64
	misses  atomic.Int64
}

// NewCache creates an empty cache.
func NewCache() *Cache { return &Cache{answers: make(map[string]bool)} }

func cacheKey(name, a, b string) string {
	return name + "\x00" + a + "\x00" + b
}

// Predict answers via the cache, calling the classifier on a miss.
func (c *Cache) Predict(cl Classifier, left, right []relation.Value) bool {
	a, b := FlattenValues(left), FlattenValues(right)
	key := cacheKey(cl.Name(), a, b)
	c.mu.RLock()
	ans, ok := c.answers[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return ans
	}
	ans = cl.Predict(left, right)
	c.misses.Add(1)
	c.mu.Lock()
	c.answers[key] = ans
	if _, sym := cl.(*SimClassifier); sym {
		c.answers[cacheKey(cl.Name(), b, a)] = ans
	}
	c.mu.Unlock()
	return ans
}

// Stats returns (hits, misses).
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
