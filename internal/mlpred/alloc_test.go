package mlpred_test

import (
	"testing"
	"testing/quick"

	"dcer/internal/mlpred"
	"dcer/internal/relation"
)

// refJaro is the straightforward rune-slice Jaro implementation, kept
// here as the oracle for the allocation-free ASCII fast path.
func refJaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i, ca := range ra {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || rb[j] != ca {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := range ra {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// TestJaroASCIIFastPathEquivalence checks the byte-wise fast path against
// the rune-slice oracle on arbitrary ASCII inputs (quick.Check values are
// masked down to ASCII so the fast path is the one exercised).
func TestJaroASCIIFastPathEquivalence(t *testing.T) {
	toASCII := func(s string) string {
		b := []byte(s)
		for i := range b {
			b[i] = b[i] & 0x7F
			if b[i] == 0 {
				b[i] = 'a'
			}
		}
		if len(b) > 64 {
			b = b[:64]
		}
		return string(b)
	}
	f := func(x, y string) bool {
		a, b := toASCII(x), toASCII(y)
		return mlpred.Jaro(a, b) == refJaro(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Non-ASCII and oversized inputs fall back to the rune path and must
	// agree with the oracle too.
	for _, pair := range [][2]string{
		{"møller", "moller"},
		{"日本語テキスト", "日本語テキスト"},
		{string(make([]byte, 100)), "aaa"},
	} {
		if got, want := mlpred.Jaro(pair[0], pair[1]), refJaro(pair[0], pair[1]); got != want {
			t.Errorf("Jaro(%q, %q) = %v, want %v", pair[0], pair[1], got, want)
		}
	}
}

// TestMetricAllocs guards the string-metric hot paths: ASCII inputs
// within the stack-scratch bounds must not allocate.
func TestMetricAllocs(t *testing.T) {
	a, b := "Customer maroon steel 1234", "Custmoer maroon steel 1234"
	var sink float64
	if avg := testing.AllocsPerRun(200, func() { sink = mlpred.Jaro(a, b) }); avg != 0 {
		t.Errorf("Jaro allocates %.1f per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { sink = mlpred.JaroWinkler(a, b) }); avg != 0 {
		t.Errorf("JaroWinkler allocates %.1f per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { sink = mlpred.LevenshteinSim(a, b) }); avg != 0 {
		t.Errorf("LevenshteinSim allocates %.1f per call, want 0", avg)
	}
	_ = sink
}

// TestCacheProbeAllocs guards the warm probe paths the enumeration inner
// loop leans on: pair-cache lookups and feature-store hits must be
// allocation-free.
func TestCacheProbeAllocs(t *testing.T) {
	pc := mlpred.NewPairCache()
	cl := pc.ClassifierID("jaro085|1~1")
	pc.Store(cl, 3, 9, true)
	var ok bool
	if avg := testing.AllocsPerRun(200, func() { _, ok = pc.Lookup(cl, 3, 9) }); avg != 0 {
		t.Errorf("PairCache.Lookup allocates %.1f per probe, want 0", avg)
	}
	if !ok {
		t.Fatal("stored answer not found")
	}

	fs := mlpred.NewFeatureStore(0)
	aid := fs.AttrsID([]int{1, 2})
	vals := []relation.Value{relation.S("alpha beta"), relation.S("gamma")}
	fs.Get(7, aid, vals) // populate
	var feat *mlpred.Features
	if avg := testing.AllocsPerRun(200, func() { feat = fs.Get(7, aid, vals) }); avg != 0 {
		t.Errorf("FeatureStore.Get hit allocates %.1f per probe, want 0", avg)
	}
	if feat == nil {
		t.Fatal("feature bundle missing on hit")
	}
}
