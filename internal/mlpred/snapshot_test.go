package mlpred

import (
	"sync"
	"testing"

	"dcer/internal/relation"
)

// TestPairCacheSnapshotCoherent hammers one cache from several goroutines
// while snapshotting concurrently: every snapshot must be internally
// consistent (hits+misses never exceeds the work issued so far, entries
// never exceeds misses — every entry was created by exactly one miss).
func TestPairCacheSnapshotCoherent(t *testing.T) {
	c := NewPairCache()
	cl := c.ClassifierID("m")
	const goroutines, per = 4, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a, b := relation.TID(i%257), relation.TID((i*g)%263)
				if _, ok := c.Lookup(cl, a, b); !ok {
					c.Store(cl, a, b, true)
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := c.Snapshot()
			if s.Hits+s.Misses > goroutines*per {
				t.Errorf("snapshot counts %d lookups, more than the %d issued", s.Hits+s.Misses, goroutines*per)
				return
			}
			if int64(s.Entries) > s.Misses {
				t.Errorf("snapshot tore: %d entries but only %d misses", s.Entries, s.Misses)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done

	final := c.Snapshot()
	if final.Hits+final.Misses != goroutines*per {
		t.Fatalf("final lookups = %d, want %d", final.Hits+final.Misses, goroutines*per)
	}
	if final.Entries == 0 {
		t.Fatal("cache retained nothing")
	}
}

func TestFeatureStoreSnapshotCoherent(t *testing.T) {
	s := NewFeatureStore(0)
	attrs := s.AttrsID([]int{0})
	var wg sync.WaitGroup
	const goroutines, per = 4, 2000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.GetText(relation.TID(i%101), attrs, "some text")
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Hits+snap.Misses != goroutines*per {
		t.Fatalf("lookups = %d, want %d", snap.Hits+snap.Misses, goroutines*per)
	}
	if snap.Entries != 101 {
		t.Fatalf("entries = %d, want 101", snap.Entries)
	}
	if int64(snap.Entries) > snap.Misses {
		t.Fatalf("entries %d exceed misses %d", snap.Entries, snap.Misses)
	}
}
