package mlpred

import (
	"sync"
	"sync/atomic"

	"dcer/internal/relation"
)

// pairCacheShards is the per-classifier shard count of a PairCache (a
// power of two so shard selection is a mask). 16 shards keep lock
// contention negligible even with every GOMAXPROCS goroutine of the
// parallel drain predicting at once.
const pairCacheShards = 16

func packPair(a, b relation.TID) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

type pairCacheShard struct {
	mu sync.RWMutex
	m  map[uint64]bool // created on first Store

	// hits and misses are incremented while the shard lock is held (read
	// or write), so Snapshot — which takes the write lock — observes each
	// shard quiesced: its counters and map size are mutually coherent.
	// They are atomics because multiple readers hold the RLock at once.
	hits   atomic.Int64
	misses atomic.Int64
}

// pairCacheCl holds the shards of one interned classifier. Keying each
// classifier's maps by the packed pair alone (a plain uint64, the runtime's
// fast map path) instead of one (classifier, pair) struct key measurably
// beats the generic hasher on the prediction hot path.
type pairCacheCl struct {
	shards [pairCacheShards]pairCacheShard
}

// PairCache memoizes classifier answers by (classifier, tuple id, tuple
// id). It replaces the string-keyed Cache on the engine's hot path: tuple
// values are immutable once appended, so the pair of global ids fully
// determines the answer, and the packed integer key avoids the per-call
// string building and single-lock contention of the old cache. Symmetric
// classifiers store one canonical (min, max) entry.
type PairCache struct {
	// byCl is indexed by interned classifier id; the slice only grows, at
	// bind time, and is republished copy-on-write so the lookup path reads
	// it with one atomic load.
	byCl atomic.Pointer[[]*pairCacheCl]

	mu  sync.Mutex // guards classifier-id interning (bind time only)
	ids map[string]uint32
}

// NewPairCache creates an empty cache.
func NewPairCache() *PairCache {
	c := &PairCache{ids: make(map[string]uint32)}
	empty := []*pairCacheCl(nil)
	c.byCl.Store(&empty)
	return c
}

// ClassifierID interns a classifier name to a small id. Call at rule-bind
// time, not on the prediction path.
func (c *PairCache) ClassifierID(name string) uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id, ok := c.ids[name]; ok {
		return id
	}
	id := uint32(len(c.ids))
	c.ids[name] = id
	cur := *c.byCl.Load()
	next := make([]*pairCacheCl, len(cur)+1)
	copy(next, cur)
	next[id] = &pairCacheCl{}
	c.byCl.Store(&next)
	return id
}

func (pc *pairCacheCl) shardFor(ab uint64) *pairCacheShard {
	return &pc.shards[(ab^ab>>32)&(pairCacheShards-1)]
}

// Lookup reports a memoized answer for (cl, a, b). Callers canonicalize
// symmetric pairs (a ≤ b) before calling.
func (c *PairCache) Lookup(cl uint32, a, b relation.TID) (ans, ok bool) {
	ab := packPair(a, b)
	sh := (*c.byCl.Load())[cl].shardFor(ab)
	sh.mu.RLock()
	ans, ok = sh.m[ab]
	if ok {
		sh.hits.Add(1)
	} else {
		sh.misses.Add(1)
	}
	sh.mu.RUnlock()
	return ans, ok
}

// Store memoizes the answer for (cl, a, b). Callers canonicalize symmetric
// pairs (a ≤ b) before calling, so each unordered pair is stored once.
func (c *PairCache) Store(cl uint32, a, b relation.TID, ans bool) {
	ab := packPair(a, b)
	sh := (*c.byCl.Load())[cl].shardFor(ab)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[uint64]bool)
	}
	sh.m[ab] = ans
	sh.mu.Unlock()
}

// CacheSnapshot is one coherent reading of a cache's counters: hits,
// misses, and retained entries taken together, shard by shard, under the
// shard locks — not three independent reads that can tear mid-drain.
type CacheSnapshot struct {
	Hits    int64
	Misses  int64
	Entries int
}

// Snapshot returns hits, misses, and size in one pass. Each shard is read
// under its write lock, excluding in-flight Lookups on that shard, so the
// per-shard triples are mutually coherent (Engine.Stats builds its view
// from this single call instead of separate Stats and Len calls).
func (c *PairCache) Snapshot() CacheSnapshot {
	var out CacheSnapshot
	for _, pc := range *c.byCl.Load() {
		for i := range pc.shards {
			sh := &pc.shards[i]
			sh.mu.Lock()
			out.Hits += sh.hits.Load()
			out.Misses += sh.misses.Load()
			out.Entries += len(sh.m)
			sh.mu.Unlock()
		}
	}
	return out
}

// Len returns the number of memoized answers.
func (c *PairCache) Len() int {
	return c.Snapshot().Entries
}

// Stats returns (hits, misses). Lookups count; Store does not. Callers
// needing hits, misses, and Len coherently should use Snapshot.
func (c *PairCache) Stats() (hits, misses int64) {
	s := c.Snapshot()
	return s.Hits, s.Misses
}
