package mlpred_test

import (
	"testing"

	"dcer/internal/mlpred"
	"dcer/internal/relation"
)

// TestCalibrationObserve checks the histogram's binning contract: scores
// land in their equal-width bucket, exactly 1.0 folds into the last
// bucket, out-of-range scores are quarantined, and the positive count
// follows the decisions — the shape the health observatory reads to spot
// threshold drift.
func TestCalibrationObserve(t *testing.T) {
	c := mlpred.NewCalibration("unit", 0.5)
	c.Observe(0.0, false) // bin 0
	c.Observe(0.049, false)
	c.Observe(0.51, true) // bin 10
	c.Observe(1.0, true)  // folds into the last bin
	c.Observe(-0.1, false)
	c.Observe(1.5, true)

	s := c.Snapshot()
	if s.Classifier != "unit" || s.Threshold != 0.5 {
		t.Fatalf("snapshot identity: %+v", s)
	}
	if s.Count != 6 || s.Positives != 3 {
		t.Fatalf("count=%d positives=%d, want 6 and 3", s.Count, s.Positives)
	}
	if s.OutOfRange != 2 {
		t.Fatalf("out_of_range=%d, want 2", s.OutOfRange)
	}
	if len(s.Bins) != mlpred.CalibBins {
		t.Fatalf("%d bins, want %d", len(s.Bins), mlpred.CalibBins)
	}
	if s.Bins[0] != 2 {
		t.Errorf("bin 0 = %d, want 2", s.Bins[0])
	}
	if s.Bins[10] != 1 {
		t.Errorf("bin 10 = %d, want 1", s.Bins[10])
	}
	if s.Bins[mlpred.CalibBins-1] != 1 {
		t.Errorf("last bin = %d, want 1 (score 1.0 folds in)", s.Bins[mlpred.CalibBins-1])
	}
	var binned int64
	for _, b := range s.Bins {
		binned += b
	}
	if binned+s.OutOfRange != s.Count {
		t.Errorf("bins (%d) + out_of_range (%d) != count (%d)", binned, s.OutOfRange, s.Count)
	}

	// A nil calibration is inert, matching the disabled predict path.
	var nilCal *mlpred.Calibration
	nilCal.Observe(0.5, true)
}

// TestEnableCalibration: attaching instruments the scoring classifiers,
// re-attaching keeps the existing histograms (so counts survive), and a
// Predict through an instrumented classifier records its score.
func TestEnableCalibration(t *testing.T) {
	reg := mlpred.NewRegistry()
	reg.Register(&mlpred.SimClassifier{
		ClassifierName: "jacc",
		Metric:         mlpred.Jaccard,
		Threshold:      0.5,
	})

	cals := reg.EnableCalibration()
	cal, ok := cals["jacc"]
	if !ok || cal == nil {
		t.Fatalf("EnableCalibration did not instrument jacc: %v", cals)
	}
	if cal.Threshold != 0.5 {
		t.Errorf("calibration threshold = %v, want the classifier's 0.5", cal.Threshold)
	}

	// Idempotence: the same Calibration object survives a second call.
	again := reg.EnableCalibration()
	if again["jacc"] != cal {
		t.Fatal("re-enabling replaced the attached calibration")
	}

	cl, err := reg.Get("jacc")
	if err != nil {
		t.Fatal(err)
	}
	same := []relation.Value{relation.S("ibm corp")}
	other := []relation.Value{relation.S("xyz")}
	if !cl.Predict(same, same) {
		t.Fatal("identical texts did not match")
	}
	cl.Predict(same, other)

	s := cal.Snapshot()
	if s.Count != 2 || s.Positives != 1 {
		t.Fatalf("after 2 predicts: count=%d positives=%d, want 2 and 1", s.Count, s.Positives)
	}
	if s.Bins[mlpred.CalibBins-1] != 1 {
		t.Errorf("perfect-match score not in the last bin: %v", s.Bins)
	}
}
