package mlpred_test

import (
	"math"
	"testing"
	"testing/quick"

	"dcer/internal/mlpred"
	"dcer/internal/relation"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
		{"ab", "ba", 2}, // transposition = two edits
	}
	for _, c := range cases {
		if got := mlpred.Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	symmetric := func(a, b string) bool {
		return mlpred.Levenshtein(a, b) == mlpred.Levenshtein(b, a)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error("not symmetric:", err)
	}
	identity := func(a string) bool { return mlpred.Levenshtein(a, a) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Error("identity fails:", err)
	}
	triangle := func(a, b, c string) bool {
		ab, bc, ac := mlpred.Levenshtein(a, b), mlpred.Levenshtein(b, c), mlpred.Levenshtein(a, c)
		return ac <= ab+bc
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Error("triangle inequality fails:", err)
	}
}

func TestJaroWinkler(t *testing.T) {
	if got := mlpred.JaroWinkler("MARTHA", "MARHTA"); math.Abs(got-0.961) > 0.01 {
		t.Errorf("JaroWinkler(MARTHA, MARHTA) = %.3f, want ≈0.961", got)
	}
	if got := mlpred.JaroWinkler("", ""); got != 1 {
		t.Errorf("JW of empty strings = %v, want 1", got)
	}
	if got := mlpred.JaroWinkler("abc", ""); got != 0 {
		t.Errorf("JW vs empty = %v, want 0", got)
	}
	if got := mlpred.JaroWinkler("same", "same"); got != 1 {
		t.Errorf("JW of identical = %v", got)
	}
}

func TestSimilarityRanges(t *testing.T) {
	metrics := map[string]func(a, b string) float64{
		"LevenshteinSim": mlpred.LevenshteinSim,
		"Jaro":           mlpred.Jaro,
		"JaroWinkler":    mlpred.JaroWinkler,
		"Jaccard":        mlpred.Jaccard,
		"CosineTokens":   mlpred.CosineTokens,
		"AbbrevNameSim":  mlpred.AbbrevNameSim,
		"SurnameSim":     mlpred.SurnameSim,
	}
	f := func(a, b string) bool {
		for name, m := range metrics {
			v := m(a, b)
			if v < 0 || v > 1.0000001 || math.IsNaN(v) {
				t.Logf("%s(%q, %q) = %v out of range", name, a, b, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaccard(t *testing.T) {
	if got := mlpred.Jaccard("a b c", "b c d"); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Jaccard = %v, want 0.5", got)
	}
	if got := mlpred.Jaccard("", ""); got != 1 {
		t.Errorf("Jaccard of empties = %v", got)
	}
	if got := mlpred.Jaccard("x", ""); got != 0 {
		t.Errorf("Jaccard vs empty = %v", got)
	}
}

func TestAbbrevNameSim(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"Ford Smith", "F. Smith", 1},
		{"Tony Brown", "T. Brown", 1},
		{"Ford Smith", "Ford Smith", 1},
		{"Ford Smith", "G. Smith", 0},
		{"Ford Smith", "F. Jones", 0},
		{"Smith", "Smith Jones", 0}, // different token counts
	}
	for _, c := range cases {
		if got := mlpred.AbbrevNameSim(c.a, c.b); got != c.want {
			t.Errorf("AbbrevNameSim(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSurnameSim(t *testing.T) {
	if got := mlpred.SurnameSim("J. Smith, A. Kumar", "John Smith, Anil Kumar"); got != 1 {
		t.Errorf("SurnameSim = %v, want 1", got)
	}
	if got := mlpred.SurnameSim("J. Smith", "A. Jones"); got != 0 {
		t.Errorf("SurnameSim = %v, want 0", got)
	}
}

func TestNGrams(t *testing.T) {
	gs := mlpred.NGrams("ab", 3)
	// "##ab##" -> ##a, #ab, ab#, b##
	if len(gs) != 4 {
		t.Errorf("NGrams = %v", gs)
	}
	if mlpred.NGrams("x", 0) != nil {
		t.Error("n=0 should yield nil")
	}
}

func TestEmbeddingProperties(t *testing.T) {
	a := mlpred.Embed("ThinkPad X1 Carbon", 64)
	if len(a) != 64 {
		t.Fatalf("dim = %d", len(a))
	}
	var norm float64
	for _, x := range a {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("embedding not normalized: %v", norm)
	}
	if got := mlpred.EmbeddingSim("same text", "same text", 64); math.Abs(got-1) > 1e-9 {
		t.Errorf("self similarity = %v", got)
	}
	near := mlpred.EmbeddingSim("ThinkPad X1 Carbon 7th Gen", "ThinkPad X1 Carbon 7 Gen", 64)
	far := mlpred.EmbeddingSim("ThinkPad X1 Carbon 7th Gen", "Apple MacBook Air 13", 64)
	if near <= far {
		t.Errorf("embedding sim not discriminative: near=%v far=%v", near, far)
	}
}

func TestTFIDFCosine(t *testing.T) {
	c := mlpred.NewCorpus()
	c.Add("the quick brown fox")
	c.Add("the lazy dog")
	c.Add("the brown dog")
	if got := c.TFIDFCosine("brown fox", "brown fox"); math.Abs(got-1) > 1e-9 {
		t.Errorf("self cosine = %v", got)
	}
	// "the" is common, "fox" is rare: sharing "fox" must beat sharing "the".
	foxy := c.TFIDFCosine("fox a", "fox b")
	they := c.TFIDFCosine("the a", "the b")
	if foxy <= they {
		t.Errorf("IDF weighting missing: fox=%v the=%v", foxy, they)
	}
}

func TestLogisticModelLearns(t *testing.T) {
	var examples []mlpred.Example
	names := []string{"Alpha Corp", "Bravo Industries", "Charlie Ltd", "Delta GmbH", "Echo SA", "Foxtrot Inc"}
	n := mlpredTestNoise{}
	for i, nm := range names {
		examples = append(examples, mlpred.Example{A: nm, B: n.typo(nm, i), Match: true})
		examples = append(examples, mlpred.Example{A: nm, B: names[(i+1)%len(names)], Match: false})
	}
	m := &mlpred.LogisticModel{}
	m.Fit(examples, 50, 0.5, 1e-4, 1)
	if acc := m.Accuracy(examples); acc < 0.9 {
		t.Errorf("training accuracy = %v, want ≥ 0.9", acc)
	}
	if !m.PredictPair("Alpha Corp", "Alpha C0rp") {
		t.Error("model rejects an obvious near-duplicate")
	}
	if m.PredictPair("Alpha Corp", "Zulu Enterprises") {
		t.Error("model accepts an obvious non-duplicate")
	}
}

type mlpredTestNoise struct{}

func (mlpredTestNoise) typo(s string, i int) string {
	b := []byte(s)
	pos := 1 + i%(len(b)-1)
	b[pos] = 'z'
	return string(b)
}

func TestClassifierRegistry(t *testing.T) {
	r := mlpred.DefaultRegistry()
	for _, name := range []string{"jaccard05", "jaccard07", "jaro085", "lev075", "lev080",
		"embed080", "embed090", "cosine07", "nameabbrev", "surnames06"} {
		if _, err := r.Get(name); err != nil {
			t.Errorf("stock classifier %q missing: %v", name, err)
		}
	}
	if _, err := r.Get("bogus"); err == nil {
		t.Error("unknown classifier resolved")
	}
	if names := r.Names(); len(names) < 10 {
		t.Errorf("Names() = %v", names)
	}
}

func TestSimClassifierAndFlatten(t *testing.T) {
	c := &mlpred.SimClassifier{ClassifierName: "t", Metric: mlpred.Jaccard, Threshold: 0.5}
	l := []relation.Value{relation.S("quick brown"), relation.S("fox")}
	r := []relation.Value{relation.S("quick brown fox")}
	if !c.Predict(l, r) {
		t.Error("flattened vectors should match")
	}
	if got := mlpred.FlattenValues(l); got != "quick brown fox" {
		t.Errorf("FlattenValues = %q", got)
	}
}

func TestCacheMemoization(t *testing.T) {
	calls := 0
	cl := &mlpred.SimClassifier{ClassifierName: "counted", Threshold: 0.5,
		Metric: func(a, b string) float64 { calls++; return 1 }}
	cache := mlpred.NewCache()
	l := []relation.Value{relation.S("x")}
	r := []relation.Value{relation.S("y")}
	cache.Predict(cl, l, r)
	cache.Predict(cl, l, r)
	cache.Predict(cl, r, l) // symmetric classifier: canonical key order
	if calls != 1 {
		t.Errorf("classifier called %d times, want 1", calls)
	}
	hits, misses := cache.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses", hits, misses)
	}
}

func TestFuncClassifier(t *testing.T) {
	c := &mlpred.Func{ClassifierName: "f", Fn: func(l, r []relation.Value) bool {
		return l[0].Equal(r[0])
	}}
	if c.Name() != "f" {
		t.Error("name")
	}
	if !c.Predict([]relation.Value{relation.S("a")}, []relation.Value{relation.S("a")}) {
		t.Error("predict")
	}
}
