package mlpred

import "sync/atomic"

// CalibBins is the number of equal-width score buckets in [0, 1) of a
// Calibration histogram (scores >= 1 land in the last bucket).
const CalibBins = 20

// Calibration records the raw score distribution of one classifier as it
// answers engine queries: a fixed-bin histogram over [0, 1] plus the
// positive-decision count. The health observatory (internal/health) reads
// it to spot threshold drift — a score mass piling up just under the
// threshold, or a bimodal metric collapsing toward it — without labels.
// Observe is lock-free (one atomic add per call) and only runs when a
// classifier has a Calibration attached, preserving the one-branch
// disabled cost of the predict path.
type Calibration struct {
	// Classifier and Threshold identify the instrument in reports.
	Classifier string
	Threshold  float64

	bins       [CalibBins]atomic.Int64
	outOfRange atomic.Int64
	count      atomic.Int64
	positives  atomic.Int64
}

// NewCalibration creates a calibration histogram for the named classifier
// with its decision threshold.
func NewCalibration(classifier string, threshold float64) *Calibration {
	return &Calibration{Classifier: classifier, Threshold: threshold}
}

// Observe records one raw score and the decision made on it.
func (c *Calibration) Observe(score float64, positive bool) {
	if c == nil {
		return
	}
	switch {
	case score < 0 || score > 1:
		c.outOfRange.Add(1)
	case score >= 1:
		c.bins[CalibBins-1].Add(1)
	default:
		c.bins[int(score*CalibBins)].Add(1)
	}
	c.count.Add(1)
	if positive {
		c.positives.Add(1)
	}
}

// CalibSnapshot is a point-in-time copy of a Calibration, JSON-ready for
// the /debug/health report.
type CalibSnapshot struct {
	Classifier string  `json:"classifier"`
	Threshold  float64 `json:"threshold"`
	// Bins[i] counts scores in [i/CalibBins, (i+1)/CalibBins).
	Bins       []int64 `json:"bins"`
	OutOfRange int64   `json:"out_of_range,omitempty"`
	Count      int64   `json:"count"`
	Positives  int64   `json:"positives"`
}

// Snapshot copies the current counts.
func (c *Calibration) Snapshot() CalibSnapshot {
	s := CalibSnapshot{
		Classifier: c.Classifier,
		Threshold:  c.Threshold,
		Bins:       make([]int64, CalibBins),
		OutOfRange: c.outOfRange.Load(),
		Count:      c.count.Load(),
		Positives:  c.positives.Load(),
	}
	for i := range s.Bins {
		s.Bins[i] = c.bins[i].Load()
	}
	return s
}

// EnableCalibration attaches a Calibration to every registered classifier
// that can score (SimClassifier, LogisticClassifier) and returns them by
// classifier name. Idempotent: already-attached calibrations are kept.
// Call during setup, before engines run — the Calib fields are read
// without synchronization on the predict path.
func (r *Registry) EnableCalibration() map[string]*Calibration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*Calibration)
	for name, cl := range r.classifiers {
		switch c := cl.(type) {
		case *SimClassifier:
			if c.Calib == nil {
				c.Calib = NewCalibration(name, c.Threshold)
			}
			out[name] = c.Calib
		case *LogisticClassifier:
			if c.Calib == nil {
				c.Calib = NewCalibration(name, c.threshold())
			}
			out[name] = c.Calib
		}
	}
	return out
}
