// Package fnv implements the 64-bit FNV-1a hash as small composable
// primitives, so hot paths can fingerprint id lists and literals without
// building intermediate strings (hash/fnv forces a []byte round trip).
package fnv

// Offset64 is the FNV-1a 64-bit offset basis.
const Offset64 = 14695981039346656037

// prime64 is the FNV-1a 64-bit prime.
const prime64 = 1099511628211

// Byte folds one byte into h.
func Byte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * prime64
}

// Uint64 folds the eight bytes of x into h, little-endian.
func Uint64(h uint64, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * prime64
		x >>= 8
	}
	return h
}

// String folds the bytes of s into h.
func String(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime64
	}
	return h
}
