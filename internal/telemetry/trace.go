package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
	"time"
)

// Chrome trace-event process IDs: one per pipeline component, so a
// Perfetto view of a run groups lanes by layer. TID 0 within each
// component is the control lane; worker/shard lanes are 1-based
// (tid = worker index + 1) so the control lane never collides with
// worker 0.
const (
	PIDChase  = 1 // chase engine (Deduce/IncDeduce rounds, drains, plans)
	PIDHyPart = 2 // hypercube partitioner (per-shard scan, merge)
	PIDDMatch = 3 // BSP match loop (supersteps, routing, rebalance)
	PIDMLPred = 4 // ML predicate layer (cache-miss classifier calls)
)

// PIDName maps a component PID to its Perfetto process name.
func PIDName(pid int32) string {
	switch pid {
	case PIDChase:
		return "chase"
	case PIDHyPart:
		return "hypart"
	case PIDDMatch:
		return "dmatch"
	case PIDMLPred:
		return "mlpred"
	}
	return "untraced"
}

// laneName maps (pid, tid) to a Perfetto thread name. TID 0 is each
// component's control lane; higher TIDs are 1-based worker/shard lanes.
func laneName(pid, tid int32) string {
	var prefix string
	switch pid {
	case PIDChase:
		if tid == 0 {
			return "engine"
		}
		prefix = "engine"
	case PIDHyPart:
		if tid == 0 {
			return "partition"
		}
		prefix = "shard"
	case PIDDMatch:
		if tid == 0 {
			return "master"
		}
		prefix = "worker"
	case PIDMLPred:
		if tid == 0 {
			return "ml"
		}
		prefix = "ml"
	default:
		if tid == 0 {
			return "main"
		}
		prefix = "lane"
	}
	return prefix + " " + strconv.Itoa(int(tid)-1)
}

// TraceContext carries a causal position inside one trace: the tracer,
// the trace ID, the span to parent new children under, and the
// (pid, tid) lane children record on. It is a small value type intended
// to be passed by value through the pipeline's hot layers. The zero
// TraceContext is disabled: Start returns a no-op span after a single
// nil check, so threading a context through code that runs with tracing
// off costs one branch.
type TraceContext struct {
	tr     *Tracer
	trace  uint64
	parent uint64
	pid    int32
	tid    int32
}

// NewTrace allocates a fresh trace rooted at lane (pid, tid). A nil
// tracer returns the zero (disabled) context.
func (t *Tracer) NewTrace(pid, tid int32) TraceContext {
	if t == nil {
		return TraceContext{}
	}
	return TraceContext{tr: t, trace: t.ids.Add(1), pid: pid, tid: tid}
}

// Enabled reports whether spans started from this context are recorded.
func (tc TraceContext) Enabled() bool { return tc.tr != nil }

// TID returns the context's current thread-lane id.
func (tc TraceContext) TID() int32 { return tc.tid }

// Lane returns the same causal position on a different (pid, tid) lane.
func (tc TraceContext) Lane(pid, tid int32) TraceContext {
	tc.pid, tc.tid = pid, tid
	return tc
}

// Start begins a child span of the context's current parent, on the
// context's lane. The labels are copied at record time, so callers may
// reuse scratch slices.
func (tc TraceContext) Start(name string, labels ...Label) Span {
	if tc.tr == nil {
		return Span{}
	}
	s := tc.tr.Start(name, labels...)
	s.trace = tc.trace
	s.id = tc.tr.ids.Add(1)
	s.parent = tc.parent
	s.pid = tc.pid
	s.tid = tc.tid
	return s
}

// Record logs a completed child span with an explicit start time: the
// caller timed the region itself and decided afterwards that it is worth
// recording (typically against a duration floor). Unlike Start/End this
// pays the label-slice allocation only for spans that actually record,
// which matters for per-rule spans firing thousands of times per run.
func (tc TraceContext) Record(name string, start time.Time, labels ...Label) {
	if tc.tr == nil {
		return
	}
	s := tc.Start(name, labels...)
	s.start = start
	s.End()
}

// Event records an instant (zero-duration) child span — used for
// point-in-time annotations such as plan re-sorts and rebalance
// decisions that carry their payload in labels.
func (tc TraceContext) Event(name string, labels ...Label) {
	if tc.tr == nil {
		return
	}
	tc.Start(name, labels...).End()
}

// Context returns a TraceContext for starting children of s, on s's
// lane. The zero span yields the disabled context.
func (s Span) Context() TraceContext {
	if s.tr == nil {
		return TraceContext{}
	}
	return TraceContext{tr: s.tr, trace: s.trace, parent: s.id, pid: s.pid, tid: s.tid}
}

// WriteChromeTrace writes the retained spans as Chrome trace-event JSON
// ({"traceEvents":[…]}), loadable in Perfetto or chrome://tracing. Every
// span becomes a complete event (ph "X", timestamps in microseconds)
// whose pid/tid map to the component/worker lanes the span was recorded
// on; metadata events name each process and thread. Span labels and the
// causal IDs (trace/span/parent) travel in args.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Snapshot()
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[")
	first := true
	emit := func(v any) {
		b, err := json.Marshal(v)
		if err != nil {
			return
		}
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.Write(b)
	}

	type chromeEvent struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int32          `json:"pid"`
		TID  int32          `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	}

	// Metadata first: process and thread names per distinct lane.
	type lane struct{ pid, tid int32 }
	seenPID := map[int32]bool{}
	seenLane := map[lane]bool{}
	for _, sp := range spans {
		if !seenPID[sp.PID] {
			seenPID[sp.PID] = true
			emit(chromeEvent{Name: "process_name", Ph: "M", PID: sp.PID,
				Args: map[string]any{"name": PIDName(sp.PID)}})
		}
		l := lane{sp.PID, sp.TID}
		if !seenLane[l] {
			seenLane[l] = true
			emit(chromeEvent{Name: "thread_name", Ph: "M", PID: sp.PID, TID: sp.TID,
				Args: map[string]any{"name": laneName(sp.PID, sp.TID)}})
		}
	}

	for _, sp := range spans {
		args := make(map[string]any, len(sp.Labels)+3)
		if sp.TraceID != 0 {
			args["trace_id"] = sp.TraceID
			args["span_id"] = sp.SpanID
			if sp.ParentID != 0 {
				args["parent_id"] = sp.ParentID
			}
		}
		for _, lb := range sp.Labels {
			args[lb.Key] = lb.Value
		}
		emit(chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			Ts:   float64(sp.StartUnixN) / 1e3,
			Dur:  float64(sp.DurationNs) / 1e3,
			PID:  sp.PID,
			TID:  sp.TID,
			Args: args,
		})
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}
