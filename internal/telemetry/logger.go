package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LogLevel orders logger verbosity. Records below the logger's level are
// dropped before formatting.
type LogLevel int32

const (
	LogDebug LogLevel = iota
	LogInfo
	LogWarn
	LogError
	LogOff
)

func (l LogLevel) String() string {
	switch l {
	case LogDebug:
		return "DEBUG"
	case LogInfo:
		return "INFO"
	case LogWarn:
		return "WARN"
	case LogError:
		return "ERROR"
	default:
		return "OFF"
	}
}

// ParseLogLevel parses a level name (case-insensitive: debug, info, warn,
// error, off).
func ParseLogLevel(s string) (LogLevel, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LogDebug, nil
	case "info", "":
		return LogInfo, nil
	case "warn", "warning":
		return LogWarn, nil
	case "error":
		return LogError, nil
	case "off", "none":
		return LogOff, nil
	}
	return LogInfo, fmt.Errorf("telemetry: unknown log level %q (debug|info|warn|error|off)", s)
}

// LogLevelFromEnv reads the DCER_LOG environment variable; unset or
// unparsable means LogInfo.
func LogLevelFromEnv() LogLevel {
	lvl, err := ParseLogLevel(os.Getenv("DCER_LOG"))
	if err != nil {
		return LogInfo
	}
	return lvl
}

// Logger is a minimal leveled logger: one line per record,
// "<RFC3339ms> <LEVEL> <prefix>: <message>". Safe for concurrent use.
// A nil *Logger drops everything.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	prefix string
	level  atomic.Int32
	tail   atomic.Pointer[WideTail]
}

// WideTail is a bounded ring of the most recent wide-event lines. The
// flight-recorder bundles of the health watchdogs capture it so a stall
// diagnosis carries the rounds leading up to the wedge, not just the
// moment of capture. Safe for concurrent use.
type WideTail struct {
	mu    sync.Mutex
	lines []string
	next  int
	total uint64
}

// DefaultWideTailCap is the default retention of a wide-event tail.
const DefaultWideTailCap = 256

// NewWideTail creates a tail retaining the newest n lines (n < 1 means
// DefaultWideTailCap).
func NewWideTail(n int) *WideTail {
	if n < 1 {
		n = DefaultWideTailCap
	}
	return &WideTail{lines: make([]string, 0, n)}
}

func (t *WideTail) add(line string) {
	t.mu.Lock()
	if len(t.lines) < cap(t.lines) {
		t.lines = append(t.lines, line)
	} else {
		t.lines[t.next] = line
	}
	t.next = (t.next + 1) % cap(t.lines)
	t.total++
	t.mu.Unlock()
}

// Lines returns the retained wide-event lines, oldest first.
func (t *WideTail) Lines() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.lines))
	if len(t.lines) < cap(t.lines) {
		return append(out, t.lines...)
	}
	out = append(out, t.lines[t.next:]...)
	return append(out, t.lines[:t.next]...)
}

// Total returns the number of lines ever recorded (including overwritten
// ones).
func (t *WideTail) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// AttachWideTail tees every wide event the logger emits into t (in
// addition to the writer). Detach with nil. The disabled cost on the
// Wide path is one atomic pointer load.
func (l *Logger) AttachWideTail(t *WideTail) {
	if l == nil {
		return
	}
	l.tail.Store(t)
}

// NewLogger creates a logger writing to w at the given level. prefix
// (usually the binary name) may be empty.
func NewLogger(w io.Writer, prefix string, level LogLevel) *Logger {
	l := &Logger{w: w, prefix: prefix}
	l.level.Store(int32(level))
	return l
}

// SetLevel changes the logger's level.
func (l *Logger) SetLevel(level LogLevel) {
	if l == nil {
		return
	}
	l.level.Store(int32(level))
}

// Level returns the logger's current level (LogOff on nil).
func (l *Logger) Level() LogLevel {
	if l == nil {
		return LogOff
	}
	return LogLevel(l.level.Load())
}

func (l *Logger) logf(level LogLevel, format string, args ...any) {
	if l == nil || level < l.Level() {
		return
	}
	ts := time.Now().UTC().Format("2006-01-02T15:04:05.000Z")
	msg := fmt.Sprintf(format, args...)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.prefix != "" {
		fmt.Fprintf(l.w, "%s %-5s %s: %s\n", ts, level, l.prefix, msg)
	} else {
		fmt.Fprintf(l.w, "%s %-5s %s\n", ts, level, msg)
	}
}

// F is one key/value field of a wide event. Values must be
// JSON-marshalable; unmarshalable values render as their error string.
type F struct {
	K string
	V any
}

// Wide emits one wide event: a single structured JSON line carrying the
// full state of one pipeline round ({"ts":…,"level":…,"event":…,
// <fields in order>}), so a long run is post-hoc debuggable from a
// grep. Dropped without formatting when level is below the logger's
// threshold; callers building expensive field sets should gate on
// Level() first.
func (l *Logger) Wide(level LogLevel, event string, fields ...F) {
	if l == nil || level < l.Level() {
		return
	}
	var b []byte
	b = append(b, `{"ts":"`...)
	b = append(b, time.Now().UTC().Format("2006-01-02T15:04:05.000Z")...)
	b = append(b, `","level":"`...)
	b = append(b, level.String()...)
	b = append(b, '"')
	if l.prefix != "" {
		b = append(b, `,"src":`...)
		b = appendJSON(b, l.prefix)
	}
	b = append(b, `,"event":`...)
	b = appendJSON(b, event)
	for _, f := range fields {
		b = append(b, ',')
		b = appendJSON(b, f.K)
		b = append(b, ':')
		b = appendJSON(b, f.V)
	}
	b = append(b, '}', '\n')
	if t := l.tail.Load(); t != nil {
		t.add(string(b[:len(b)-1]))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Write(b)
}

// appendJSON appends the JSON encoding of v, falling back to the
// marshal error as a JSON string so a bad value never breaks the line.
func appendJSON(b []byte, v any) []byte {
	enc, err := json.Marshal(v)
	if err != nil {
		enc, _ = json.Marshal(err.Error())
	}
	return append(b, enc...)
}

// Debugf logs at debug level.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LogDebug, format, args...) }

// Infof logs at info level.
func (l *Logger) Infof(format string, args ...any) { l.logf(LogInfo, format, args...) }

// Warnf logs at warn level.
func (l *Logger) Warnf(format string, args ...any) { l.logf(LogWarn, format, args...) }

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LogError, format, args...) }
