package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a running telemetry exposition endpoint.
type Server struct {
	// Addr is the bound listen address (resolved, so ":0" requests report
	// the ephemeral port actually obtained).
	Addr string

	ln  net.Listener
	srv *http.Server
}

// Serve starts the opt-in exposition endpoint for reg on addr
// (host:port; port 0 picks an ephemeral port) and returns immediately:
//
//	/metrics        Prometheus-style text exposition
//	/debug/dcer     JSON: metric snapshot, trace ring, debug providers,
//	                endpoint index
//	/debug/trace    Chrome trace-event JSON (Perfetto-loadable)
//	/debug/health   JSON health report from the attached monitor
//	                (SetHealth); {"attached": false} when none
//	/debug/pprof/…  the standard net/http/pprof handlers
//
// Every endpoint owned here sets an explicit Content-Type (the pprof
// handlers set their own internally). The server runs until Close.
// Metrics are read live, so scraping during a run observes the engines
// mid-flight (the per-superstep skew series of a DMatch run, the drain
// histograms of a long chase).
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WriteProm(w)
	})
	mux.HandleFunc("/debug/dcer", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		doc := struct {
			Endpoints []string         `json:"endpoints"`
			Metrics   []SeriesSnapshot `json:"metrics"`
			Spans     []SpanRecord     `json:"spans"`
			Debug     map[string]any   `json:"debug,omitempty"`
		}{
			Endpoints: []string{"/metrics", "/debug/dcer", "/debug/trace", "/debug/health", "/debug/pprof/"},
			Metrics:   reg.Snapshot(),
			Spans:     reg.Tracer().Snapshot(),
			Debug:     reg.debugSnapshot(),
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.Tracer().WriteChromeTrace(w)
	})
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		doc := reg.HealthDoc()
		if doc == nil {
			doc = map[string]any{"attached": false}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Close shuts the server down.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
