// Package telemetry is the dependency-free observability layer of the
// engine: a metrics registry (atomic counters, gauges, lock-striped
// log-scale histograms), a lightweight span tracer with a bounded
// in-memory ring, a leveled logger, and an opt-in HTTP exposition server
// (Prometheus-style text at /metrics, trace and timeline JSON at
// /debug/dcer, net/http/pprof wired in).
//
// The hot layers (chase.Deduce, the drain batches, the DMatch BSP loop)
// hold instrument pointers resolved once at setup; a nil instrument (no
// registry attached) makes every operation a no-op, so the disabled cost
// is one branch. The paper's efficiency claims (Section VI) hinge on
// where time goes inside Deduce/IncDeduce and on BSP balance across
// workers; this package is how the repo sees both.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric or span dimension, e.g. {"worker", "3"}.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter. All methods are
// safe for concurrent use and no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 gauge. All methods are safe for concurrent
// use and no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// HistBuckets is the number of fixed log-scale histogram buckets: bucket 0
// holds the value 0 and bucket i (1 ≤ i ≤ 64) holds the values v with
// bits.Len64(v) == i, i.e. v ∈ [2^(i-1), 2^i). The scheme covers the full
// uint64 range — Observe(math.MaxUint64) lands in bucket 64 — with no
// configuration and no overflow arithmetic.
const HistBuckets = 65

// histStripes spreads concurrent Observe calls over independent mutexes
// (a power of two so stripe selection is a mask).
const histStripes = 8

// histBucket returns the bucket index of v.
func histBucket(v uint64) int { return bits.Len64(v) }

// HistBucketUpper returns the inclusive upper bound of bucket i
// (math.MaxUint64 for the last bucket).
func HistBucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

type histStripe struct {
	mu     sync.Mutex
	counts [HistBuckets]uint64
	count  uint64
	sum    float64 // float so max-uint64 observations cannot overflow it
	max    uint64
}

// Histogram is a lock-striped histogram over fixed log-scale buckets.
// Observe is safe for concurrent use (stripes keep contention negligible
// under the parallel drain's fan-out) and a no-op on a nil receiver.
type Histogram struct {
	stripes [histStripes]histStripe
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	// Mix the value so samples spread over stripes; same-valued samples
	// sharing a stripe is fine, the stripes exist to split cache lines and
	// mutexes between concurrent writers, not to shard the distribution.
	s := &h.stripes[(v*0x9e3779b97f4a7c15)>>61&(histStripes-1)]
	s.mu.Lock()
	s.counts[histBucket(v)]++
	s.count++
	s.sum += float64(v)
	if v > s.max {
		s.max = v
	}
	s.mu.Unlock()
}

// ObserveDuration records a duration in nanoseconds (negative clamps to 0).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// HistSnapshot is a merged copy of a histogram's state.
type HistSnapshot struct {
	Counts [HistBuckets]uint64 `json:"counts"`
	Count  uint64              `json:"count"`
	Sum    float64             `json:"sum"`
	Max    uint64              `json:"max"`
}

// Snapshot merges the stripes into one coherent view. Each stripe is read
// under its lock; cross-stripe skew is bounded by in-flight Observes.
func (h *Histogram) Snapshot() HistSnapshot {
	var out HistSnapshot
	if h == nil {
		return out
	}
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.Lock()
		for b, c := range s.counts {
			out.Counts[b] += c
		}
		out.Count += s.count
		out.Sum += s.sum
		if s.max > out.Max {
			out.Max = s.max
		}
		s.mu.Unlock()
	}
	return out
}

// Mean returns the arithmetic mean of the observed samples (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns the upper bound of the bucket containing the q-quantile
// (0 ≤ q ≤ 1) — an over-estimate by at most the bucket width, i.e. a
// factor of 2 on the log-scale buckets.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum > rank {
			// Clamp to the observed max: in the top non-empty bucket the
			// bound would otherwise overshoot the largest sample.
			if up := HistBucketUpper(i); up < s.Max {
				return up
			}
			return s.Max
		}
	}
	return s.Max
}

// metricKind discriminates the instrument families of a registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (name, labels) instrument instance.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family groups the series of one metric name; a name has exactly one kind.
type family struct {
	name   string
	kind   metricKind
	series map[string]*series // keyed by canonical label string
	order  []string
}

// Registry is the process- or run-scoped metric namespace. Instrument
// getters are get-or-create and idempotent: the same (name, labels) always
// returns the same instrument, so hot layers resolve pointers once at
// setup and never touch the registry lock again. A nil *Registry returns
// nil instruments, whose operations are no-ops — the disabled mode.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string

	debug   map[string]func() any
	debugMu sync.Mutex
	health  func() any

	tracer *Tracer
}

// NewRegistry creates an empty registry with a trace ring of the default
// capacity.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		debug:    make(map[string]func() any),
		tracer:   NewTracer(DefaultTraceCap),
	}
}

// Default is the process-wide registry the cmd binaries expose with
// -telemetry.
var Default = NewRegistry()

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	return sb.String()
}

// get returns the series for (name, kind, labels), creating it on first
// use and panicking if the name is already registered with another kind
// (a programming error, caught at setup time).
func (r *Registry) get(name string, kind metricKind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %v and %v", name, f.kind, kind))
	}
	k := labelKey(labels)
	s, ok := f.series[k]
	if !ok {
		s = &series{labels: sortedLabels(labels)}
		f.series[k] = s
		f.order = append(f.order, k)
	}
	return s
}

func sortedLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// Counter returns the counter (name, labels), creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.get(name, kindCounter, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.get(name, kindGauge, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers fn as the value source of the gauge (name, labels);
// fn is called at exposition time and must be safe for concurrent use.
// Re-registering the same series replaces the function (the engines
// re-register on rebuild).
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	s := r.get(name, kindGaugeFunc, labels)
	r.mu.Lock()
	s.gf = fn
	r.mu.Unlock()
}

// Histogram returns the histogram (name, labels), creating it on first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.get(name, kindHistogram, labels)
	if s.h == nil {
		s.h = &Histogram{}
	}
	return s.h
}

// Tracer returns the registry's span ring (nil on a nil registry, whose
// Start returns a no-op span).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// SetDebug registers a named provider surfaced in the /debug/dcer JSON
// document (e.g. the DMatch superstep timeline). fn is called at request
// time and must be safe for concurrent use; its result is JSON-marshaled.
func (r *Registry) SetDebug(name string, fn func() any) {
	if r == nil {
		return
	}
	r.debugMu.Lock()
	r.debug[name] = fn
	r.debugMu.Unlock()
}

// SetHealth registers the health-report provider served at /debug/health.
// The health monitor (internal/health) registers itself here so telemetry
// never imports it; fn is called at request time, must be safe for
// concurrent use, and its result is JSON-marshaled. Detach with nil.
func (r *Registry) SetHealth(fn func() any) {
	if r == nil {
		return
	}
	r.debugMu.Lock()
	r.health = fn
	r.debugMu.Unlock()
}

// HealthDoc returns the attached health provider's current report, or nil
// when no monitor is attached.
func (r *Registry) HealthDoc() any {
	if r == nil {
		return nil
	}
	r.debugMu.Lock()
	fn := r.health
	r.debugMu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

func (r *Registry) debugSnapshot() map[string]any {
	r.debugMu.Lock()
	fns := make(map[string]func() any, len(r.debug))
	for k, v := range r.debug {
		fns[k] = v
	}
	r.debugMu.Unlock()
	out := make(map[string]any, len(fns))
	for k, fn := range fns {
		out[k] = fn()
	}
	return out
}

func promLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

func promLabelsWith(labels []Label, extraKey, extraVal string) string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, l.Value)
	}
	if len(labels) > 0 {
		sb.WriteByte(',')
	}
	fmt.Fprintf(&sb, "%s=%q", extraKey, extraVal)
	sb.WriteByte('}')
	return sb.String()
}

// WriteProm writes the registry in the Prometheus text exposition format.
// Gauge functions are evaluated at write time; histogram stripes are
// merged under their locks.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type famView struct {
		name   string
		kind   metricKind
		series []*series
	}
	fams := make([]famView, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		fv := famView{name: name, kind: f.kind}
		for _, k := range f.order {
			fv.series = append(fv.series, f.series[k])
		}
		fams = append(fams, fv)
	}
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# TYPE %s %v\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(s.labels), s.c.Load())
			case kindGauge:
				fmt.Fprintf(w, "%s%s %g\n", f.name, promLabels(s.labels), s.g.Load())
			case kindGaugeFunc:
				fmt.Fprintf(w, "%s%s %g\n", f.name, promLabels(s.labels), s.gf())
			case kindHistogram:
				snap := s.h.Snapshot()
				var cum uint64
				for i, c := range snap.Counts {
					cum += c
					le := "+Inf"
					if i < 64 {
						le = fmt.Sprintf("%d", HistBucketUpper(i))
					}
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, promLabelsWith(s.labels, "le", le), cum)
				}
				fmt.Fprintf(w, "%s_sum%s %g\n", f.name, promLabels(s.labels), snap.Sum)
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, promLabels(s.labels), snap.Count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// SeriesSnapshot is one exported series in a registry snapshot.
type SeriesSnapshot struct {
	Name      string        `json:"name"`
	Kind      string        `json:"kind"`
	Labels    []Label       `json:"labels,omitempty"`
	Value     float64       `json:"value,omitempty"`
	Histogram *HistSnapshot `json:"histogram,omitempty"`
}

// Snapshot exports every series for the /debug/dcer JSON document.
func (r *Registry) Snapshot() []SeriesSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type pending struct {
		name string
		kind metricKind
		s    *series
	}
	var ps []pending
	for _, name := range r.order {
		f := r.families[name]
		for _, k := range f.order {
			ps = append(ps, pending{name, f.kind, f.series[k]})
		}
	}
	r.mu.Unlock()

	out := make([]SeriesSnapshot, 0, len(ps))
	for _, p := range ps {
		ss := SeriesSnapshot{Name: p.name, Kind: p.kind.String(), Labels: p.s.labels}
		switch p.kind {
		case kindCounter:
			ss.Value = float64(p.s.c.Load())
		case kindGauge:
			ss.Value = p.s.g.Load()
		case kindGaugeFunc:
			ss.Value = p.s.gf()
		case kindHistogram:
			h := p.s.h.Snapshot()
			ss.Histogram = &h
		}
		out = append(out, ss)
	}
	return out
}
