package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestServe(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dcer_serve_test_total").Add(3)
	reg.Histogram("dcer_serve_test_ns").Observe(512)
	reg.SetDebug("answer", func() any { return 42 })
	sp := reg.Tracer().Start("unit", L("k", "v"))
	sp.End()

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	metrics := get(t, "http://"+srv.Addr+"/metrics")
	if !strings.Contains(metrics, "dcer_serve_test_total 3") {
		t.Errorf("/metrics missing counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, "dcer_serve_test_ns_count 1") {
		t.Errorf("/metrics missing histogram:\n%s", metrics)
	}

	debug := get(t, "http://"+srv.Addr+"/debug/dcer")
	var doc struct {
		Metrics []SeriesSnapshot `json:"metrics"`
		Spans   []SpanRecord     `json:"spans"`
		Debug   map[string]any   `json:"debug"`
	}
	if err := json.Unmarshal([]byte(debug), &doc); err != nil {
		t.Fatalf("/debug/dcer is not JSON: %v\n%s", err, debug)
	}
	if len(doc.Metrics) == 0 || len(doc.Spans) != 1 {
		t.Errorf("/debug/dcer: %d metrics, %d spans; want >0, 1", len(doc.Metrics), len(doc.Spans))
	}
	if doc.Debug["answer"] != float64(42) {
		t.Errorf("/debug/dcer debug provider = %v, want 42", doc.Debug["answer"])
	}

	pprofOut := get(t, "http://"+srv.Addr+"/debug/pprof/cmdline")
	if len(pprofOut) == 0 {
		t.Error("/debug/pprof/cmdline returned nothing")
	}
}

// getWithType is get plus the response Content-Type, for the explicit
// media-type assertions (cmd/doctor and browsers both rely on them).
func getWithType(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// TestServeContentTypes asserts every endpoint owned by Serve declares
// its media type explicitly rather than relying on net/http sniffing.
func TestServeContentTypes(t *testing.T) {
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for path, want := range map[string]string{
		"/metrics":      "text/plain; version=0.0.4",
		"/debug/dcer":   "application/json",
		"/debug/trace":  "application/json",
		"/debug/health": "application/json",
	} {
		if _, ct := getWithType(t, "http://"+srv.Addr+path); ct != want {
			t.Errorf("%s Content-Type = %q, want %q", path, ct, want)
		}
	}
}

// TestServeHealthEndpoint covers both sides of /debug/health: without a
// monitor it reports {"attached": false}; with a provider attached via
// SetHealth it serves whatever report the provider returns, and the
// /debug/dcer endpoint index advertises the route.
func TestServeHealthEndpoint(t *testing.T) {
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var unattached struct {
		Attached bool `json:"attached"`
	}
	if err := json.Unmarshal([]byte(get(t, "http://"+srv.Addr+"/debug/health")), &unattached); err != nil {
		t.Fatalf("/debug/health without a monitor is not JSON: %v", err)
	}
	if unattached.Attached {
		t.Fatal("/debug/health reports attached with no monitor")
	}

	reg.SetHealth(func() any {
		return map[string]any{"attached": true, "stalls": 7}
	})
	var attached struct {
		Attached bool `json:"attached"`
		Stalls   int  `json:"stalls"`
	}
	if err := json.Unmarshal([]byte(get(t, "http://"+srv.Addr+"/debug/health")), &attached); err != nil {
		t.Fatalf("/debug/health with a monitor is not JSON: %v", err)
	}
	if !attached.Attached || attached.Stalls != 7 {
		t.Fatalf("/debug/health did not serve the provider's report: %+v", attached)
	}

	var index struct {
		Endpoints []string `json:"endpoints"`
	}
	if err := json.Unmarshal([]byte(get(t, "http://"+srv.Addr+"/debug/dcer")), &index); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range index.Endpoints {
		if e == "/debug/health" {
			found = true
		}
	}
	if !found {
		t.Errorf("/debug/dcer endpoint index lacks /debug/health: %v", index.Endpoints)
	}

	// Detach: the endpoint reverts to unattached.
	reg.SetHealth(nil)
	if err := json.Unmarshal([]byte(get(t, "http://"+srv.Addr+"/debug/health")), &unattached); err != nil {
		t.Fatal(err)
	}
	if unattached.Attached {
		t.Error("/debug/health still attached after SetHealth(nil)")
	}
}
