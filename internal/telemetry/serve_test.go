package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestServe(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dcer_serve_test_total").Add(3)
	reg.Histogram("dcer_serve_test_ns").Observe(512)
	reg.SetDebug("answer", func() any { return 42 })
	sp := reg.Tracer().Start("unit", L("k", "v"))
	sp.End()

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	metrics := get(t, "http://"+srv.Addr+"/metrics")
	if !strings.Contains(metrics, "dcer_serve_test_total 3") {
		t.Errorf("/metrics missing counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, "dcer_serve_test_ns_count 1") {
		t.Errorf("/metrics missing histogram:\n%s", metrics)
	}

	debug := get(t, "http://"+srv.Addr+"/debug/dcer")
	var doc struct {
		Metrics []SeriesSnapshot `json:"metrics"`
		Spans   []SpanRecord     `json:"spans"`
		Debug   map[string]any   `json:"debug"`
	}
	if err := json.Unmarshal([]byte(debug), &doc); err != nil {
		t.Fatalf("/debug/dcer is not JSON: %v\n%s", err, debug)
	}
	if len(doc.Metrics) == 0 || len(doc.Spans) != 1 {
		t.Errorf("/debug/dcer: %d metrics, %d spans; want >0, 1", len(doc.Metrics), len(doc.Spans))
	}
	if doc.Debug["answer"] != float64(42) {
		t.Errorf("/debug/dcer debug provider = %v, want 42", doc.Debug["answer"])
	}

	pprofOut := get(t, "http://"+srv.Addr+"/debug/pprof/cmdline")
	if len(pprofOut) == 0 {
		t.Error("/debug/pprof/cmdline returned nothing")
	}
}
