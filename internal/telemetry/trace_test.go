package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSpanLabelCopy is the regression test for the label-aliasing bug:
// End must copy the label slice, so a caller reusing its scratch slice
// after End cannot corrupt the ring.
func TestSpanLabelCopy(t *testing.T) {
	tr := NewTracer(8)
	scratch := []Label{L("rule", "r1"), L("round", "0")}
	sp := tr.Start("unit", scratch...)
	sp.End()

	// Mutate the caller's slice after End, as a loop reusing one
	// scratch buffer would.
	scratch[0] = L("rule", "CLOBBERED")
	scratch[1] = L("round", "99")

	recs := tr.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("got %d spans, want 1", len(recs))
	}
	got := recs[0].Labels
	if len(got) != 2 || got[0].Value != "r1" || got[1].Value != "0" {
		t.Errorf("ring labels aliased caller memory: %v", got)
	}
}

// TestTraceContextCausality checks the ID plumbing: children started
// from a span's Context carry the parent's span ID and the trace ID,
// and Lane moves only the (pid, tid) coordinates.
func TestTraceContextCausality(t *testing.T) {
	tr := NewTracer(16)
	tc := tr.NewTrace(PIDDMatch, 0)
	if !tc.Enabled() {
		t.Fatal("NewTrace on a live tracer must be enabled")
	}

	root := tc.Start("dmatch.Run")
	rctx := root.Context()
	child := rctx.Lane(PIDDMatch, 3).Start("chase.Deduce")
	rctx.Event("dmatch.rebalance", L("step", "1"))
	child.End()
	root.End()

	recs := tr.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("got %d spans, want 3", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
		if r.TraceID == 0 || r.SpanID == 0 {
			t.Errorf("%s: zero trace/span ID: %+v", r.Name, r)
		}
	}
	rootRec, childRec, evRec := byName["dmatch.Run"], byName["chase.Deduce"], byName["dmatch.rebalance"]
	if rootRec.ParentID != 0 {
		t.Errorf("root has parent %d, want 0", rootRec.ParentID)
	}
	for _, r := range []SpanRecord{childRec, evRec} {
		if r.TraceID != rootRec.TraceID {
			t.Errorf("%s: trace %d, want %d", r.Name, r.TraceID, rootRec.TraceID)
		}
		if r.ParentID != rootRec.SpanID {
			t.Errorf("%s: parent %d, want root span %d", r.Name, r.ParentID, rootRec.SpanID)
		}
	}
	if childRec.PID != PIDDMatch || childRec.TID != 3 {
		t.Errorf("Lane did not move the child: pid=%d tid=%d", childRec.PID, childRec.TID)
	}
	if evRec.TID != 0 {
		t.Errorf("event inherited the wrong lane: tid=%d", evRec.TID)
	}
}

// TestDisabledTraceContextIsNoOp checks that the zero context — what hot
// code sees when tracing is off — records nothing and never panics.
func TestDisabledTraceContextIsNoOp(t *testing.T) {
	var tc TraceContext
	if tc.Enabled() {
		t.Fatal("zero TraceContext must be disabled")
	}
	sp := tc.Start("ghost", L("k", "v"))
	sp.End()
	tc.Event("ghost-event")
	if sub := sp.Context(); sub.Enabled() {
		t.Error("child context of a no-op span must be disabled")
	}
	var nilTr *Tracer
	if nilTr.NewTrace(PIDChase, 0).Enabled() {
		t.Error("NewTrace on a nil tracer must be disabled")
	}
}

// chromeDoc mirrors the trace-event JSON envelope for validation.
type chromeDoc struct {
	TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
}

// validateChromeTrace parses body as trace-event JSON and checks every
// event carries the required keys. It returns the parsed doc.
func validateChromeTrace(t *testing.T, body []byte) chromeDoc {
	t.Helper()
	var doc chromeDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace output is not JSON: %v\n%s", err, body)
	}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event %d missing %q: %v", i, key, ev)
			}
		}
		var ph string
		json.Unmarshal(ev["ph"], &ph)
		if ph != "X" && ph != "M" {
			t.Errorf("event %d: unexpected phase %q", i, ph)
		}
	}
	return doc
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(16)
	tc := tr.NewTrace(PIDChase, 0)
	root := tc.Start("chase.Deduce", L("workload", "test"))
	child := root.Context().Lane(PIDHyPart, 1).Start("hypart.shard.scan")
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	doc := validateChromeTrace(t, buf.Bytes())

	var xEvents, mEvents int
	sawLabel := false
	for _, ev := range doc.TraceEvents {
		var ph string
		json.Unmarshal(ev["ph"], &ph)
		switch ph {
		case "X":
			xEvents++
			if strings.Contains(string(ev["args"]), `"workload":"test"`) {
				sawLabel = true
			}
		case "M":
			mEvents++
		}
	}
	if xEvents != 2 {
		t.Errorf("got %d complete events, want 2", xEvents)
	}
	// 2 distinct pids and 2 distinct lanes → 4 metadata events.
	if mEvents != 4 {
		t.Errorf("got %d metadata events, want 4", mEvents)
	}
	if !sawLabel {
		t.Error("span label did not reach the args of its event")
	}
}

// TestServeDebugTrace checks the /debug/trace endpoint emits valid
// trace-event JSON for the registry's span ring.
func TestServeDebugTrace(t *testing.T) {
	reg := NewRegistry()
	tc := reg.Tracer().NewTrace(PIDDMatch, 0)
	root := tc.Start("dmatch.Run")
	w1 := root.Context().Lane(PIDDMatch, 1).Start("chase.Deduce")
	w1.End()
	w2 := root.Context().Lane(PIDDMatch, 2).Start("chase.Deduce")
	w2.End()
	root.End()

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	body := get(t, "http://"+srv.Addr+"/debug/trace")
	doc := validateChromeTrace(t, []byte(body))
	lanes := map[[2]int64]bool{}
	for _, ev := range doc.TraceEvents {
		var ph string
		json.Unmarshal(ev["ph"], &ph)
		if ph != "X" {
			continue
		}
		var pid, tid int64
		json.Unmarshal(ev["pid"], &pid)
		json.Unmarshal(ev["tid"], &tid)
		lanes[[2]int64{pid, tid}] = true
	}
	if len(lanes) < 3 {
		t.Errorf("got %d distinct lanes, want >= 3 (master + 2 workers)", len(lanes))
	}
}

func TestLoggerWide(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "testsrc", LogDebug)
	l.Wide(LogDebug, "deduce_round",
		F{"round", 3},
		F{"fired", 17},
		F{"plan_on", true},
		F{"note", `quote"and\slash`},
	)

	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("wide event must be exactly one line: %q", line)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(line), &doc); err != nil {
		t.Fatalf("wide event is not JSON: %v\n%s", err, line)
	}
	if doc["event"] != "deduce_round" || doc["src"] != "testsrc" || doc["level"] != "DEBUG" {
		t.Errorf("envelope fields wrong: %v", doc)
	}
	if doc["round"] != float64(3) || doc["fired"] != float64(17) || doc["plan_on"] != true {
		t.Errorf("payload fields wrong: %v", doc)
	}
	if doc["note"] != `quote"and\slash` {
		t.Errorf("string escaping broken: %q", doc["note"])
	}
	// Field order must survive: the keys appear as given, after the
	// envelope, so grepping a run's log stays column-stable.
	if i, j := strings.Index(line, `"round"`), strings.Index(line, `"fired"`); i < 0 || j < 0 || i > j {
		t.Errorf("field order not preserved: %s", line)
	}

	// Below-threshold wide events must be dropped without output, and a
	// nil logger must not panic.
	buf.Reset()
	l.SetLevel(LogInfo)
	l.Wide(LogDebug, "dropped", F{"k", 1})
	if buf.Len() != 0 {
		t.Errorf("wide event below level leaked: %q", buf.String())
	}
	var nilL *Logger
	nilL.Wide(LogError, "nil", F{"k", 1})
}
