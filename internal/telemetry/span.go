package telemetry

import (
	"sync"
	"time"
)

// DefaultTraceCap is the default capacity of a registry's span ring.
const DefaultTraceCap = 4096

// SpanRecord is one completed span in the trace ring.
type SpanRecord struct {
	Name       string  `json:"name"`
	Labels     []Label `json:"labels,omitempty"`
	StartUnixN int64   `json:"start_unix_ns"`
	DurationNs int64   `json:"duration_ns"`
}

// Tracer records completed spans into a bounded in-memory ring: the
// newest cap spans are retained, older ones are overwritten. Safe for
// concurrent use; a nil *Tracer starts no-op spans.
type Tracer struct {
	mu      sync.Mutex
	ring    []SpanRecord
	next    int
	total   uint64
	enabled bool
}

// NewTracer creates a tracer retaining the newest cap spans.
func NewTracer(cap int) *Tracer {
	if cap < 1 {
		cap = 1
	}
	return &Tracer{ring: make([]SpanRecord, 0, cap), enabled: true}
}

// Span is one in-flight timed region. End completes it; the zero Span
// (and any span from a nil tracer) is a no-op.
type Span struct {
	tr     *Tracer
	name   string
	labels []Label
	start  time.Time
}

// Start begins a span. The labels are retained in the ring as given.
func (t *Tracer) Start(name string, labels ...Label) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, name: name, labels: labels, start: time.Now()}
}

// End completes the span, records it in the ring, and returns its
// duration (0 for a no-op span).
func (s Span) End() time.Duration {
	if s.tr == nil {
		return 0
	}
	d := time.Since(s.start)
	rec := SpanRecord{
		Name:       s.name,
		Labels:     s.labels,
		StartUnixN: s.start.UnixNano(),
		DurationNs: int64(d),
	}
	t := s.tr
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next] = rec
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
	t.mu.Unlock()
	return d
}

// Total returns the number of spans ever recorded (including overwritten
// ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the retained spans, oldest first.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		return append(out, t.ring...)
	}
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}
