package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCap is the default capacity of a registry's span ring.
const DefaultTraceCap = 4096

// SpanRecord is one completed span in the trace ring. TraceID groups the
// spans of one pipeline run; ParentID links a span to the span whose
// TraceContext started it (0 for roots). PID/TID are the Chrome
// trace-event lanes the span renders on: PID identifies the pipeline
// component (see PIDChase…PIDMLPred), TID the worker/shard lane within
// it.
type SpanRecord struct {
	Name       string  `json:"name"`
	Labels     []Label `json:"labels,omitempty"`
	StartUnixN int64   `json:"start_unix_ns"`
	DurationNs int64   `json:"duration_ns"`
	TraceID    uint64  `json:"trace_id,omitempty"`
	SpanID     uint64  `json:"span_id,omitempty"`
	ParentID   uint64  `json:"parent_id,omitempty"`
	PID        int32   `json:"pid,omitempty"`
	TID        int32   `json:"tid,omitempty"`
}

// Tracer records completed spans into a bounded in-memory ring: the
// newest cap spans are retained, older ones are overwritten. Safe for
// concurrent use; a nil *Tracer starts no-op spans.
type Tracer struct {
	ids atomic.Uint64 // trace- and span-ID allocator; 0 is reserved

	mu      sync.Mutex
	ring    []SpanRecord
	next    int
	total   uint64
	enabled bool
}

// NewTracer creates a tracer retaining the newest cap spans.
func NewTracer(cap int) *Tracer {
	if cap < 1 {
		cap = 1
	}
	return &Tracer{ring: make([]SpanRecord, 0, cap), enabled: true}
}

// Span is one in-flight timed region. End completes it; the zero Span
// (and any span from a nil tracer) is a no-op.
type Span struct {
	tr     *Tracer
	name   string
	labels []Label
	start  time.Time

	trace  uint64
	id     uint64
	parent uint64
	pid    int32
	tid    int32
}

// Start begins a span with no causal identity (no trace/span IDs). Use a
// TraceContext's Start for spans that participate in a causal trace. The
// label slice is copied at record time, so callers may reuse it.
func (t *Tracer) Start(name string, labels ...Label) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, name: name, labels: labels, start: time.Now()}
}

// End completes the span, records it in the ring, and returns its
// duration (0 for a no-op span).
func (s Span) End() time.Duration {
	if s.tr == nil {
		return 0
	}
	d := time.Since(s.start)
	var labels []Label
	if len(s.labels) > 0 {
		// Copy defensively: callers commonly build labels in a reusable
		// scratch slice, and the ring must not alias caller memory.
		labels = append(make([]Label, 0, len(s.labels)), s.labels...)
	}
	rec := SpanRecord{
		Name:       s.name,
		Labels:     labels,
		StartUnixN: s.start.UnixNano(),
		DurationNs: int64(d),
		TraceID:    s.trace,
		SpanID:     s.id,
		ParentID:   s.parent,
		PID:        s.pid,
		TID:        s.tid,
	}
	t := s.tr
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next] = rec
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
	t.mu.Unlock()
	return d
}

// EndIf completes the span but records it only when its duration is at
// least min — the pressure valve for fine-grained spans (per-rule
// enumeration, drain batches, classifier calls) that fire thousands of
// times per run: sub-floor spans cost two clock reads and a branch, not
// a ring write, and they would render as unreadable dust in Perfetto
// anyway. Returns the duration either way (0 for a no-op span).
func (s Span) EndIf(min time.Duration) time.Duration {
	if s.tr == nil {
		return 0
	}
	if d := time.Since(s.start); d < min {
		return d
	}
	return s.End()
}

// Total returns the number of spans ever recorded (including overwritten
// ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the retained spans, oldest first.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		return append(out, t.ring...)
	}
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}
