package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketEdges(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(4)
	h.Observe(math.MaxUint64)
	snap := h.Snapshot()
	if snap.Count != 6 {
		t.Fatalf("count = %d, want 6", snap.Count)
	}
	if snap.Counts[0] != 1 {
		t.Errorf("bucket 0 (value 0) = %d, want 1", snap.Counts[0])
	}
	if snap.Counts[1] != 1 {
		t.Errorf("bucket 1 (value 1) = %d, want 1", snap.Counts[1])
	}
	if snap.Counts[2] != 2 {
		t.Errorf("bucket 2 (values 2,3) = %d, want 2", snap.Counts[2])
	}
	if snap.Counts[3] != 1 {
		t.Errorf("bucket 3 (value 4) = %d, want 1", snap.Counts[3])
	}
	if snap.Counts[64] != 1 {
		t.Errorf("bucket 64 (max uint64) = %d, want 1", snap.Counts[64])
	}
	if snap.Max != math.MaxUint64 {
		t.Errorf("max = %d, want max uint64", snap.Max)
	}
	// The float sum absorbs max-uint64 without wrapping.
	if snap.Sum < float64(math.MaxUint64) {
		t.Errorf("sum = %g, want ≥ 2^64-1", snap.Sum)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// Every bucket's upper bound lands in that bucket; upper+1 in the next.
	for i := 1; i < 64; i++ {
		up := HistBucketUpper(i)
		if got := histBucket(up); got != i {
			t.Fatalf("histBucket(%d) = %d, want %d", up, got, i)
		}
		if got := histBucket(up + 1); got != i+1 {
			t.Fatalf("histBucket(%d) = %d, want %d", up+1, got, i+1)
		}
	}
	if HistBucketUpper(64) != math.MaxUint64 {
		t.Fatalf("last bucket upper bound must be max uint64")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	// Exercised by ci.sh under -race: concurrent Observe across stripes
	// must neither race nor lose samples.
	h := &Histogram{}
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(uint64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", snap.Count, goroutines*per)
	}
	var sum uint64
	for _, c := range snap.Counts {
		sum += c
	}
	if sum != snap.Count {
		t.Fatalf("bucket sum %d != count %d", sum, snap.Count)
	}
}

func TestHistogramQuantileAndMean(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	h.Observe(1 << 30)
	snap := h.Snapshot()
	if q := snap.Quantile(0.5); q < 1000 || q > 2047 {
		t.Errorf("p50 = %d, want within bucket of 1000 (≤2047)", q)
	}
	if q := snap.Quantile(1.0); q != 1<<30 {
		t.Errorf("p100 = %d, want max observation %d", q, 1<<30)
	}
	if m := snap.Mean(); m < 1000 {
		t.Errorf("mean = %g, want ≥ 1000", m)
	}
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Errorf("empty snapshot quantile/mean must be 0")
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	var tr *Tracer
	c.Add(1)
	c.Inc()
	g.Set(3)
	h.Observe(7)
	h.ObserveDuration(time.Second)
	if c.Load() != 0 || g.Load() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	r.GaugeFunc("x", func() float64 { return 1 })
	r.SetDebug("x", func() any { return nil })
	if err := r.WriteProm(nil); err != nil {
		t.Fatal(err)
	}
	sp := tr.Start("noop")
	if d := sp.End(); d != 0 {
		t.Fatal("nil tracer span must be a no-op")
	}
}

func TestRegistryIdentityAndKindConflict(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs", L("worker", "1"))
	b := r.Counter("reqs", L("worker", "1"))
	if a != b {
		t.Fatal("get-or-create must return the same instrument")
	}
	other := r.Counter("reqs", L("worker", "2"))
	if a == other {
		t.Fatal("distinct labels must yield distinct instruments")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict must panic")
		}
	}()
	r.Gauge("reqs")
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("dcer_test_total", L("worker", "0")).Add(42)
	r.Gauge("dcer_test_skew").Set(1.5)
	r.GaugeFunc("dcer_test_fn", func() float64 { return 7 })
	r.Histogram("dcer_test_ns").Observe(1000)
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE dcer_test_total counter",
		`dcer_test_total{worker="0"} 42`,
		"dcer_test_skew 1.5",
		"dcer_test_fn 7",
		"# TYPE dcer_test_ns histogram",
		`dcer_test_ns_bucket{le="+Inf"} 1`,
		"dcer_test_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestTracerRingBound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		sp := tr.Start("work")
		sp.End()
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].StartUnixN < spans[i-1].StartUnixN {
			t.Fatal("snapshot must be oldest-first")
		}
	}
}

func TestLoggerLevels(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, "test", LogWarn)
	l.Debugf("dropped %d", 1)
	l.Infof("dropped %d", 2)
	l.Warnf("kept %d", 3)
	l.Errorf("kept %d", 4)
	out := sb.String()
	if strings.Contains(out, "dropped") {
		t.Errorf("records below level leaked:\n%s", out)
	}
	if !strings.Contains(out, "WARN  test: kept 3") || !strings.Contains(out, "ERROR test: kept 4") {
		t.Errorf("missing records:\n%s", out)
	}
	l.SetLevel(LogDebug)
	l.Debugf("now visible")
	if !strings.Contains(sb.String(), "now visible") {
		t.Error("SetLevel did not lower the threshold")
	}
}

func TestParseLogLevel(t *testing.T) {
	for s, want := range map[string]LogLevel{
		"debug": LogDebug, "INFO": LogInfo, "Warn": LogWarn,
		"error": LogError, "off": LogOff, "": LogInfo,
	} {
		got, err := ParseLogLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Error("expected error for unknown level")
	}
}
