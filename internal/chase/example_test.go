package chase_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"dcer/internal/chase"
	"dcer/internal/datagen"
	"dcer/internal/mlpred"
	"dcer/internal/relation"
	"dcer/internal/rule"
)

// runPaperExample chases Tables I-IV with φ1..φ5 and returns the engine
// and the tuple labels.
func runPaperExample(t *testing.T, opts chase.Options) (*chase.Engine, map[string]*relation.Tuple) {
	t.Helper()
	d, labels := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatalf("PaperRules: %v", err)
	}
	eng, err := chase.New(d, rules, mlpred.DefaultRegistry(), opts)
	if err != nil {
		t.Fatalf("chase.New: %v", err)
	}
	eng.Run()
	return eng, labels
}

// TestPaperExampleMatches reproduces the end-to-end deduction of
// Examples 1-3: Γ must contain exactly the matches
// (t1,t3), (t2,t3), (t9,t10), (t12,t13) plus the transitive (t1,t2),
// with (t1,t3) only derivable deeply from the φ2 and φ3 matches.
func TestPaperExampleMatches(t *testing.T) {
	eng, l := runPaperExample(t, chase.Options{ShareIndexes: true})

	mustMatch := [][2]string{
		{"t1", "t2"}, {"t1", "t3"}, {"t2", "t3"}, // customers c1=c2=c3
		{"t9", "t10"},  // shops s4=s5
		{"t12", "t13"}, // products p2=p3
	}
	for _, p := range mustMatch {
		if !eng.Same(l[p[0]].GID, l[p[1]].GID) {
			t.Errorf("expected %s and %s matched", p[0], p[1])
		}
	}
	mustNot := [][2]string{
		{"t1", "t4"}, {"t4", "t5"}, {"t6", "t7"}, {"t11", "t12"},
		{"t12", "t14"}, {"t9", "t6"}, {"t15", "t16"},
	}
	for _, p := range mustNot {
		if eng.Same(l[p[0]].GID, l[p[1]].GID) {
			t.Errorf("unexpected match between %s and %s", p[0], p[1])
		}
	}

	// Exactly three non-singleton entities: {t1,t2,t3}, {t9,t10}, {t12,t13}.
	classes := eng.Classes()
	if len(classes) != 3 {
		t.Fatalf("got %d non-singleton classes, want 3: %v", len(classes), classes)
	}
	sizes := []int{}
	for _, c := range classes {
		sizes = append(sizes, len(c))
	}
	sort.Ints(sizes)
	if sizes[0] != 2 || sizes[1] != 2 || sizes[2] != 3 {
		t.Errorf("class sizes = %v, want [2 2 3]", sizes)
	}
}

// TestPaperExampleValidatedML checks Γ_M of Example 3: φ5 validates
// M4 = jaccard05 on preferences exactly for the customer pairs that bought
// the same item: (t1,t3), (t1,t4), (t3,t4) — as unordered pairs.
func TestPaperExampleValidatedML(t *testing.T) {
	eng, l := runPaperExample(t, chase.Options{ShareIndexes: true})
	g := eng.Gamma()
	pairs := map[[2]relation.TID]bool{}
	for _, f := range g.Validated {
		if f.Model != "jaccard05" {
			continue
		}
		a, b := f.A, f.B
		if b < a {
			a, b = b, a
		}
		pairs[[2]relation.TID{a, b}] = true
	}
	want := [][2]string{{"t1", "t3"}, {"t1", "t4"}, {"t3", "t4"}}
	if len(pairs) != len(want) {
		t.Errorf("got %d distinct validated M4 pairs, want %d: %v", len(pairs), len(want), pairs)
	}
	for _, w := range want {
		a, b := l[w[0]].GID, l[w[1]].GID
		if b < a {
			a, b = b, a
		}
		if !pairs[[2]relation.TID{a, b}] {
			t.Errorf("missing validated M4(%s, %s)", w[0], w[1])
		}
	}
}

// TestPaperExampleDeepDependency verifies the deduction is genuinely deep:
// without φ2 and φ3 (whose matches feed φ4's id preconditions), customers
// t1 and t3 must NOT match.
func TestPaperExampleDeepDependency(t *testing.T) {
	d, l := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	var pruned = rules[:0:0]
	for _, r := range rules {
		if r.Name != "phi2" && r.Name != "phi3" {
			pruned = append(pruned, r)
		}
	}
	eng, err := chase.New(d, pruned, mlpred.DefaultRegistry(), chase.Options{ShareIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if eng.Same(l["t1"].GID, l["t3"].GID) {
		t.Error("t1,t3 matched without the φ2/φ3 prerequisites; deduction is not deep")
	}
	if !eng.Same(l["t2"].GID, l["t3"].GID) {
		t.Error("t2,t3 should still match via φ1 alone")
	}
}

// TestPaperExampleNoMQO verifies the DMatch_noMQO configuration (no index
// or ML-cache sharing) reaches the same fixpoint.
func TestPaperExampleNoMQO(t *testing.T) {
	shared, l := runPaperExample(t, chase.Options{ShareIndexes: true})
	private, _ := runPaperExample(t, chase.Options{ShareIndexes: false})
	for _, a := range []string{"t1", "t2", "t3", "t9", "t10", "t12", "t13"} {
		for _, b := range []string{"t1", "t2", "t3", "t9", "t10", "t12", "t13"} {
			if shared.Same(l[a].GID, l[b].GID) != private.Same(l[a].GID, l[b].GID) {
				t.Errorf("MQO and noMQO disagree on (%s,%s)", a, b)
			}
		}
	}
}

// TestPaperExampleTinyDepStore forces the H-capacity fallback: with room
// for a single dependency the update-driven path must still reach the same
// fixpoint (correctness does not rely on H).
func TestPaperExampleTinyDepStore(t *testing.T) {
	eng, l := runPaperExample(t, chase.Options{ShareIndexes: true, MaxDeps: 1})
	if !eng.Same(l["t1"].GID, l["t3"].GID) {
		t.Error("deep match (t1,t3) lost with MaxDeps=1")
	}
	if !eng.Same(l["t1"].GID, l["t2"].GID) {
		t.Error("transitive match (t1,t2) lost with MaxDeps=1")
	}
	if len(eng.Classes()) != 3 {
		t.Errorf("got %d classes with MaxDeps=1, want 3", len(eng.Classes()))
	}
}

// TestChurchRosserRuleOrder checks Corollary 1 on the running example: any
// rule application order converges to the same Γ (same equivalence classes
// and same set of validated predictions).
func TestChurchRosserRuleOrder(t *testing.T) {
	perms := [][]int{
		{0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}, {3, 4, 0, 2, 1},
	}
	var baseline string
	for pi, perm := range perms {
		d, _ := datagen.PaperExample()
		rules, err := datagen.PaperRules(d.DB)
		if err != nil {
			t.Fatal(err)
		}
		permuted := make([]*rule.Rule, len(rules))
		for i, j := range perm {
			permuted[i] = rules[j]
		}
		eng, err := chase.New(d, permuted, mlpred.DefaultRegistry(), chase.Options{ShareIndexes: true})
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		sig := gammaSignature(eng)
		if pi == 0 {
			baseline = sig
		} else if sig != baseline {
			t.Errorf("perm %v converged to a different Γ:\n%s\nvs baseline\n%s", perm, sig, baseline)
		}
	}
}

// gammaSignature canonicalizes an engine's fixpoint: sorted equivalence
// classes plus the sorted set of unordered validated-prediction pairs.
func gammaSignature(eng *chase.Engine) string {
	classes := eng.Classes()
	var classStrs []string
	for _, c := range classes {
		ids := make([]int, len(c))
		for i, x := range c {
			ids[i] = int(x)
		}
		sort.Ints(ids)
		classStrs = append(classStrs, fmt.Sprint(ids))
	}
	sort.Strings(classStrs)
	var vals []string
	for _, f := range eng.Gamma().Validated {
		a, b := f.A, f.B
		if b < a {
			a, b = b, a
		}
		vals = append(vals, fmt.Sprintf("%s(%d,%d)", f.Model, a, b))
	}
	sort.Strings(vals)
	vals = dedupeStrings(vals)
	return strings.Join(classStrs, ";") + "|" + strings.Join(vals, ";")
}

func dedupeStrings(ss []string) []string {
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || s != ss[i-1] {
			out = append(out, s)
		}
	}
	return out
}
