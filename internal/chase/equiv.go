package chase

import (
	"dcer/internal/relation"
	"dcer/internal/unionfind"
)

// BuildEquivalence materializes the id-equivalence relation E_id induced
// by a set of match facts over dataset d, including the implicit merges of
// tuples sharing a literal id value within a relation (the same
// initialization New performs). The parallel engine uses it to assemble
// the global Γ from the workers' deltas.
func BuildEquivalence(d *relation.Dataset, facts []Fact) *unionfind.UnionFind {
	size := 0
	for _, t := range d.Tuples() {
		if int(t.GID)+1 > size {
			size = int(t.GID) + 1
		}
	}
	uf := unionfind.New(size)
	for _, rel := range d.Relations {
		byID := make(map[string]relation.TID)
		for _, t := range rel.Tuples {
			k := t.Val(rel.Schema.IDAttr).Key()
			if first, ok := byID[k]; ok {
				uf.Union(int(first), int(t.GID))
			} else {
				byID[k] = t.GID
			}
		}
	}
	for _, f := range facts {
		if f.Kind == FactMatch {
			uf.Union(int(f.A), int(f.B))
		}
	}
	return uf
}
