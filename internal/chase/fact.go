// Package chase implements the sequential deep-and-collective ER engine
// Match of Section V-A: chasing a dataset with a set Σ of MRLs to a
// fixpoint Γ of matches and validated ML predictions, via one full
// deduction pass (Deduce) followed by update-driven incremental passes
// (IncDeduce) using a bounded dependency store H and the id-equivalence
// relation E_id.
package chase

import (
	"fmt"

	"dcer/internal/relation"
)

// FactKind discriminates the two kinds of facts in Γ.
type FactKind uint8

const (
	// FactMatch is an id match (t.id, s.id).
	FactMatch FactKind = iota
	// FactML is a validated ML prediction M(t[Ā], s[B̄]).
	FactML
)

// Fact is one element of Γ: either a match between two tuples or a
// validated ML prediction. Facts are exchanged verbatim between workers in
// the parallel engine, so they reference tuples by global id only.
type Fact struct {
	Kind  FactKind
	A, B  relation.TID
	Model string // classifier name; FactML only
}

// MatchFact builds a canonical (A ≤ B) id-match fact.
func MatchFact(a, b relation.TID) Fact {
	if b < a {
		a, b = b, a
	}
	return Fact{Kind: FactMatch, A: a, B: b}
}

// MLFact builds a validated-prediction fact. ML predicates are not assumed
// symmetric, so the pair keeps its order.
func MLFact(model string, a, b relation.TID) Fact {
	return Fact{Kind: FactML, A: a, B: b, Model: model}
}

// String renders the fact for logs and tests.
func (f Fact) String() string {
	if f.Kind == FactMatch {
		return fmt.Sprintf("(%d.id = %d.id)", f.A, f.B)
	}
	return fmt.Sprintf("%s(%d, %d)", f.Model, f.A, f.B)
}

// mlKey is the map key of a validated ML prediction.
type mlKey struct {
	model string
	a, b  relation.TID
}

// Gamma is the deduced set Γ: the id-equivalence relation over tuples plus
// the validated ML predictions. See Engine for the full state.
type Gamma struct {
	// Matches lists the deduced non-trivial match facts in deduction
	// order (reflexive matches (t,t) are implicit).
	Matches []Fact
	// Validated lists the validated ML predictions in deduction order.
	Validated []Fact
}

// Size returns |Γ| excluding the implicit reflexive matches.
func (g *Gamma) Size() int { return len(g.Matches) + len(g.Validated) }
