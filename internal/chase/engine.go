package chase

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"dcer/internal/health"
	"dcer/internal/mlpred"
	"dcer/internal/provenance"
	"dcer/internal/relation"
	"dcer/internal/rule"
	"dcer/internal/telemetry"
	"dcer/internal/unionfind"
)

// Options configures the engine.
type Options struct {
	// MaxDeps is the capacity K of the dependency store H (Section V-A);
	// 0 means DefaultMaxDeps, negative means unbounded. When H is full,
	// new dependencies are dropped and the update-driven re-evaluation
	// path of IncDeduce preserves correctness.
	MaxDeps int
	// ShareIndexes enables MQO-style sharing of inverted indexes and the
	// ML answer cache across rules. Disabling it reproduces the
	// DMatch_noMQO ablation: every rule rebuilds its own indexes and ML
	// cache, so no intermediate results are shared.
	ShareIndexes bool
	// IDSpace overrides the size of the global tuple-id space; fragments
	// of a larger dataset must pass the parent's size so the
	// id-equivalence relation can host remote ids. 0 means the dataset's
	// own size.
	IDSpace int
	// SequentialDeduce disables the concurrent first pass of Deduce, so
	// rules enumerate strictly one after another on the calling
	// goroutine. The final Γ is identical either way (the chase is
	// Church-Rosser); sequential mode exists for deterministic debugging
	// and undistorted single-thread timings.
	SequentialDeduce bool
	// SequentialDrain disables the batched parallel update-driven pass:
	// every drain round seeds its re-enumerations strictly one after
	// another on the calling goroutine, each seeing the facts of the
	// previous. The final Γ is identical either way (Church-Rosser);
	// sequential mode exists for A/B timing and deterministic debugging.
	SequentialDrain bool
	// DrainParallelMin is the minimum number of seeded re-enumerations a
	// drain batch must contain before it fans out across goroutines; 0
	// means DefaultDrainParallelMin on multi-processor hosts and a fully
	// sequential drain when GOMAXPROCS is 1 (buffered chunks re-derive
	// facts of their own batch, which a lone processor pays for with no
	// fan-out in return). Small batches stay sequential either way — the
	// fan-out overhead (root snapshot, buffered merge) only pays off on
	// bulk batches like the event floods behind IncDeduce. Setting the
	// field explicitly forces the batched path even on one processor.
	DrainParallelMin int
	// Metrics attaches the engine to a telemetry registry: per-rule
	// enumeration and merge timings, drain batch histograms, queue
	// depths, and gauge views over the Stats counters (so /metrics and
	// Stats() expose the same numbers). nil disables all instrumentation;
	// the disabled overhead is one branch per timed region.
	Metrics *telemetry.Registry
	// MetricsLabels is attached to every series the engine registers
	// (the parallel engine labels each worker's engine with its id).
	MetricsLabels []telemetry.Label
	// Provenance, when non-nil, receives one justification entry per fact
	// the engine adds to Γ: the rule and valuation, the prerequisite facts
	// consumed, and the ML predicate outcomes relied on. Same discipline
	// as Metrics — nil disables capture and the disabled cost is one
	// branch per applied fact, nothing on the valuation hot path. The
	// parallel engine passes each worker a log stamped with its id.
	Provenance *provenance.Log
	// InterpretRules disables the compiled predicate plans: enumeration
	// checks each rule literal per candidate through boxed-free word
	// compares but without batch vectorization or adaptive reordering.
	// The compiled path is the default; the interpreter is retained as
	// the equivalence oracle for A/B runs — Γ is byte-identical either
	// way (see DESIGN.md §13 for the determinism argument).
	InterpretRules bool
	// PlanResortMinEvals is the number of predicate evaluations a rule's
	// compiled plan accumulates before its program order is re-sorted by
	// observed fail rate, always between drain rounds, never mid-batch.
	// 0 means DefaultPlanResortMinEvals; negative disables adaptive
	// reordering. Rules whose per-rule telemetry histograms already carry
	// observations (a registry shared with a previous engine) warm-start
	// with a warmResortDiv-times lower threshold.
	PlanResortMinEvals int
	// Trace threads causal span attribution through the engine: Deduce /
	// IncDeduce roots, per-rule enumerate and merge spans, per-round
	// drain and batch spans, plan re-sort events (stamped with the
	// before/after predicate order and the pass/fail counts that
	// triggered them), and cache-miss classifier calls above a duration
	// floor. The zero value disables capture; when Metrics is set and
	// Trace is not, a root is derived from the registry's tracer so a
	// -telemetry run always yields a causal trace. The disabled cost is
	// one branch per instrumented site.
	Trace telemetry.TraceContext
	// Log, when non-nil and at debug level, receives one wide event per
	// drain round: a single JSON line carrying the round's progress and
	// the engine's full knob state (plan on/off + resort count, memory
	// budget + evictions, drain mode). nil disables emission; the
	// disabled cost is one level comparison per round.
	Log *telemetry.Logger
	// Health attaches the engine to a health monitor: a drain heartbeat
	// for the stall watchdog plus sampled invariant auditors (union-find
	// chains, Γ/provenance consistency, H byte accounting, plan order)
	// run at quiesced round boundaries, and — when the monitor carries
	// ground truth — the live accuracy observatory. nil disables the
	// layer; the disabled cost is one branch per drain round.
	Health *health.Monitor
	// MemBudgetBytes caps the engine's accounted memory: the dataset's
	// arenas, the Γ fact log, and the dependency store H. When the live
	// estimate exceeds the budget the engine spills H oldest-first
	// (spill-to-regeneration: a dropped dependency is re-derived by the
	// update-driven path on demand, the same invariant that makes the
	// MaxDeps drop path safe), so a chase over a dataset that fits the
	// budget completes without Γ/H pushing it over. 0 means unbounded.
	MemBudgetBytes int64
}

// DefaultMaxDeps is the default capacity of the dependency store.
const DefaultMaxDeps = 1 << 20

// DefaultDrainParallelMin is the default parallelism threshold of a drain
// batch (Options.DrainParallelMin).
const DefaultDrainParallelMin = 16

// deduceSem bounds the process-wide fan-out of concurrent rule
// enumerations: with n parallel dmatch workers × r rules each, up to n·r
// goroutines contend for these GOMAXPROCS slots, so the chase never
// oversubscribes the machine no matter how many engines run at once.
var deduceSem = make(chan struct{}, runtime.GOMAXPROCS(0))

// Stats is a point-in-time snapshot of the engine's work counters, for
// the efficiency experiments. The counters live in atomics and the cache
// and feature-store triples are each taken in one locked pass
// (mlpred.Snapshot), so a snapshot taken while a drain is in flight is
// coherent — hits, misses, and sizes never tear against each other. When
// Options.Metrics is set the same counters back the registry's gauge
// series, so Stats() and /metrics cannot disagree.
type Stats struct {
	Valuations   int64 // complete valuations inspected (emit calls)
	Extensions   int64 // partial-binding extension steps
	PlanPreds    int64 // compiled-plan predicate evaluations (per candidate per step)
	PlanBatches  int64 // compiled-plan candidate batches filtered
	PlanReorders int64 // adaptive plan re-sorts that changed an order
	MatchesFound int64 // non-trivial id matches deduced
	MLValidated  int64 // ML predictions validated by rule heads
	DepsRecorded int64
	DepsFired    int64
	DepsDropped  int64
	Rounds       int64 // internal incremental rounds
	IndexBuilds  int   // inverted indexes materialized
	MLCacheHits  int64 // answers served from the id-keyed pair cache
	MLCacheMiss  int64 // classifier invocations (pair-cache misses)
	MLCacheSize  int   // memoized (classifier, pair) answers retained
	FeatHits     int64 // feature-store lookups served from the store
	FeatMisses   int64 // feature bundles computed (one per miss)
	FeatEntries  int   // (tuple, attr-list) feature bundles retained
}

// boundMLPred is an ML body predicate resolved to its classifier.
type boundMLPred struct {
	pred    *rule.Pred
	cl      mlpred.Classifier
	dynamic bool // the model appears in some rule head, so validation can flip it

	// fc is cl's feature-scoring interface, nil when cl cannot score
	// precomputed Features (then the gathered-value path is used).
	fc mlpred.FeatureClassifier
	// clID is the pair-cache id of (model, A1Vec, A2Vec): two predicates
	// share answers iff classifier and both attribute lists agree.
	clID uint32
	// aID / bID are the feature-store ids of the two attribute lists.
	aID, bID uint32
	// canonical marks that (a, b) and (b, a) provably share an answer
	// (symmetric classifier, identical attribute lists), so the cache key
	// is ordered a ≤ b and each unordered pair is stored once.
	canonical bool
}

// boundRule is a rule prepared for enumeration.
type boundRule struct {
	r *rule.Rule

	consts [][]*rule.Pred // per-var constant predicates
	intra  [][]*rule.Pred // per-var equality predicates with both sides on the var
	eqs    []*rule.Pred   // cross-variable equality predicates
	ids    []*rule.Pred   // id predicates in the body
	mls    []boundMLPred  // ML predicates in the body

	// eqIx pre-resolves, aligned with eqs, the two indexes each equality
	// can probe: eqIx[i][0] indexes (V1's relation, A1) and eqIx[i][1]
	// (V2's relation, A2). Candidate selection probes an index for every
	// enumeration node, so the IndexSet map lookup is paid once at bind
	// time instead of per probe. The pointers stay valid across
	// incremental insertions — IndexSet.Add mutates each Index in place.
	eqIx [][2]*relation.Index

	// plan is the compiled predicate program (plan.go): per-variable
	// selectivity-ordered word/ML steps plus the resolved constant probe
	// words. Compiled even under Options.InterpretRules — candidatesFor
	// and checkNewBinding read it in both modes.
	plan *rulePlan

	headCl mlpred.Classifier // classifier of an ML head, if any

	// scope is the sub-dataset this rule enumerates over. In the
	// sequential engine it is the whole dataset; in the parallel engine
	// it is the union of the worker's virtual blocks generated for this
	// rule (hypercube semantics evaluate each rule within its blocks).
	scope *relation.Dataset
	// ix indexes the rule's scope. With MQO sharing, rules with the same
	// scope share one index set; without, every rule gets its own.
	ix *relation.IndexSet
	// cache and feats are the rule-private ML answer cache and feature
	// store used when MQO sharing is off (the noMQO ablation shares no
	// intermediate results between rules).
	cache *mlpred.PairCache
	feats *mlpred.FeatureStore

	// enumHist and mergeHist time this rule's enumerations and merge
	// passes; nil when telemetry is off (Observe on nil is a no-op, and
	// the timed regions skip the clock reads entirely).
	enumHist  *telemetry.Histogram
	mergeHist *telemetry.Histogram
}

// Engine is the sequential Match engine of Section V-A. It owns the
// deduced set Γ (an id-equivalence relation plus validated ML
// predictions), the bounded dependency store H, and the inverted indexes,
// and exposes Deduce / IncDeduce so the parallel engine can drive it as
// the partial-evaluation and incremental algorithms A and A_Δ.
type Engine struct {
	d     *relation.Dataset
	rules []*boundRule
	reg   *mlpred.Registry
	opts  Options

	uf *unionfind.UnionFind
	// members maps a class root to the hosted members of the class.
	// Singleton classes are implicit: a root with no entry is the class
	// {root} when the engine hosts that tuple (and empty otherwise), so
	// the map only materializes classes an actual merge touched — at
	// million-tuple scale that is the difference between |D| seeded
	// slices and |matches| merged ones.
	members   map[int][]relation.TID
	validated map[mlKey]bool
	H         *DepStore
	ixSets    map[*relation.Dataset]*relation.IndexSet // shared per scope
	pairCache *mlpred.PairCache
	feats     *mlpred.FeatureStore

	// idIndex maps, per relation, the packed storage word of a literal id
	// value to the first tuple carrying it, so setup pre-merging and the
	// ΔD path of InsertTuples find duplicate ids in O(1) instead of
	// scanning the relation per tuple. Words are exact within a relation
	// (one typed id column), so no canonical key strings are built.
	idIndex []map[uint64]relation.TID

	dynamicModels map[string]bool

	// anyIDs records whether any rule carries an id body predicate: when
	// none does, class-merge events have no consumer and are not queued.
	anyIDs bool

	// prebuilt marks that every index reachable from the rules' query
	// plans has been materialized (required before the concurrent pass,
	// whose goroutines must not mutate the lazy index cache).
	prebuilt bool

	// ctx is the reusable evaluation context of the sequential paths
	// (seeded re-enumerations and SequentialDeduce).
	ctx evalCtx

	// bctx is the reusable buffered context of the single-slot parallel
	// drain path (see drainConcurrent).
	bctx evalCtx

	// prov is the justification log (Options.Provenance); nil disables
	// capture. provOrigin labels facts applied without a rule
	// justification — IncDeduce sets it to OriginExternal around the
	// external loop, InsertTuples to OriginIDDup around the ΔD
	// duplicate-id merges.
	prov       *provenance.Log
	provOrigin provenance.Origin

	gamma Gamma
	cnt   engineCounters
	// health is the engine's health-observatory wiring (Options.Health);
	// nil disables auditors and heartbeats at one branch per drain round.
	health *engineHealth
	// tel is the engine's telemetry wiring; nil when Options.Metrics is
	// unset (every instrumented site nil-checks before reading the clock).
	tel *chaseMetrics

	// tc is the engine's root trace context (Options.Trace, or derived
	// from the metrics registry); the zero value disables span capture.
	// curTC is the in-flight Deduce/IncDeduce call's child context —
	// written only while the engine is quiescent (before the concurrent
	// passes spawn, between drain rounds), so worker goroutines read a
	// stable value.
	tc    telemetry.TraceContext
	curTC telemetry.TraceContext
	// log receives the per-round wide events (Options.Log).
	log *telemetry.Logger

	// queue of unprocessed events driving the update-driven path.
	queue []event

	// jobBuf is the reusable scratch the drain rounds expand their event
	// batches into (see drain.go).
	jobBuf []drainJob

	// delta accumulates the facts deduced during the current Deduce or
	// IncDeduce call.
	delta []Fact
}

// event is one unprocessed state change: either a class merge newly made
// by a union, or one newly validated ML prediction. A merge stores the two
// classes' member slices; the cross pairs are expanded lazily in
// processEvent, per id predicate in scope, instead of being materialized
// O(|Ca|·|Cb|) up front for rules that may not need them.
type event struct {
	kind   FactKind
	ma, mb []relation.TID // FactMatch: members of the two merged classes
	model  string         // FactML
	a, b   relation.TID   // FactML
}

// New prepares an engine over dataset d with resolved rules and the
// classifier registry. Every rule enumerates over the whole dataset; the
// parallel engine uses NewScoped instead.
func New(d *relation.Dataset, rules []*rule.Rule, reg *mlpred.Registry, opts Options) (*Engine, error) {
	return NewScoped(d, rules, nil, reg, opts)
}

// NewScoped prepares an engine whose rule i enumerates only over
// scopes[i] (nil entries and a nil slice mean the whole dataset). The
// parallel engine passes each worker's per-rule block unions, so rules do
// not re-scan tuples that other rules' blocks brought to the worker.
func NewScoped(d *relation.Dataset, rules []*rule.Rule, scopes []*relation.Dataset, reg *mlpred.Registry, opts Options) (*Engine, error) {
	if opts.MaxDeps == 0 {
		opts.MaxDeps = DefaultMaxDeps
	}
	idSpace := opts.IDSpace
	if idSpace == 0 {
		for _, t := range d.Tuples() {
			if int(t.GID)+1 > idSpace {
				idSpace = int(t.GID) + 1
			}
		}
	}
	e := &Engine{
		d:             d,
		reg:           reg,
		opts:          opts,
		uf:            unionfind.New(idSpace),
		members:       make(map[int][]relation.TID),
		validated:     make(map[mlKey]bool),
		H:             NewDepStore(opts.MaxDeps),
		ixSets:        make(map[*relation.Dataset]*relation.IndexSet),
		pairCache:     mlpred.NewPairCache(),
		feats:         mlpred.NewFeatureStore(0),
		dynamicModels: make(map[string]bool),
	}
	e.ctx.e = e
	e.bctx.e = e
	e.bctx.buffered = true
	e.prov = opts.Provenance
	e.provOrigin = provenance.OriginIDDup
	if opts.Metrics != nil {
		e.initMetrics(opts.Metrics, opts.MetricsLabels)
	}
	e.log = opts.Log
	e.initHealth(opts.Health)
	e.tc = opts.Trace
	if !e.tc.Enabled() && opts.Metrics != nil {
		e.tc = opts.Metrics.Tracer().NewTrace(telemetry.PIDChase, 0)
	}
	for _, r := range rules {
		if r.Head.Kind == rule.PredML {
			e.dynamicModels[r.Head.Model] = true
		}
	}
	for i, r := range rules {
		scope := d
		if scopes != nil && i < len(scopes) && scopes[i] != nil {
			scope = scopes[i]
		}
		br, err := e.bindRule(r, scope)
		if err != nil {
			return nil, err
		}
		e.rules = append(e.rules, br)
		if len(br.ids) > 0 {
			e.anyIDs = true
		}
	}
	e.rebudget()
	// Tuples sharing a literal id value within a relation denote the same
	// entity by definition; pre-merge them (these trivial matches are not
	// reported in Γ). The id index is retained so InsertTuples can find
	// later duplicates without re-scanning the relation.
	e.idIndex = make([]map[uint64]relation.TID, len(d.Relations))
	for ri, rel := range d.Relations {
		byID := make(map[uint64]relation.TID, len(rel.Tuples))
		for _, t := range rel.Tuples {
			w := t.IDWord()
			if first, ok := byID[w]; ok {
				e.unionInternal(first, t.GID)
			} else {
				byID[w] = t.GID
			}
		}
		e.idIndex[ri] = byID
	}
	return e, nil
}

func (e *Engine) bindRule(r *rule.Rule, scope *relation.Dataset) (*boundRule, error) {
	if !r.Resolved() {
		return nil, fmt.Errorf("chase: rule %s is not resolved", r.Name)
	}
	br := &boundRule{
		r:      r,
		scope:  scope,
		consts: make([][]*rule.Pred, len(r.Vars)),
		intra:  make([][]*rule.Pred, len(r.Vars)),
	}
	for i := range r.Body {
		p := &r.Body[i]
		switch p.Kind {
		case rule.PredConst:
			br.consts[p.V1] = append(br.consts[p.V1], p)
		case rule.PredEq:
			if p.V1 == p.V2 {
				br.intra[p.V1] = append(br.intra[p.V1], p)
			} else {
				br.eqs = append(br.eqs, p)
			}
		case rule.PredID:
			br.ids = append(br.ids, p)
		case rule.PredML:
			cl, err := e.reg.Get(p.Model)
			if err != nil {
				return nil, fmt.Errorf("chase: rule %s: %w", r.Name, err)
			}
			br.mls = append(br.mls, boundMLPred{pred: p, cl: cl, dynamic: e.dynamicModels[p.Model]})
		}
	}
	if r.Head.Kind == rule.PredML {
		cl, err := e.reg.Get(r.Head.Model)
		if err != nil {
			return nil, fmt.Errorf("chase: rule %s head: %w", r.Name, err)
		}
		br.headCl = cl
	}
	if e.tel != nil {
		br.enumHist, br.mergeHist = e.tel.ruleHists(r.Name)
	}
	if e.opts.ShareIndexes {
		ix, ok := e.ixSets[scope]
		if !ok {
			ix = relation.NewIndexSet(scope)
			e.ixSets[scope] = ix
		}
		br.ix = ix
	} else {
		br.ix = relation.NewIndexSet(scope)
		br.cache = mlpred.NewPairCache()
		br.feats = mlpred.NewFeatureStore(0)
	}
	// Resolve the cache and feature-store ids of the ML predicates against
	// whichever cache pair this rule will consult at prediction time, so the
	// hot path works with small interned integers only.
	cache, feats := e.pairCache, e.feats
	if br.cache != nil {
		cache, feats = br.cache, br.feats
	}
	for i := range br.mls {
		m := &br.mls[i]
		p := m.pred
		m.fc, _ = m.cl.(mlpred.FeatureClassifier)
		m.clID = cache.ClassifierID(predSignature(p))
		m.aID = feats.AttrsID(p.A1Vec)
		m.bID = feats.AttrsID(p.A2Vec)
		m.canonical = m.fc != nil && m.fc.Symmetric() && sameInts(p.A1Vec, p.A2Vec)
	}
	for _, p := range br.eqs {
		br.eqIx = append(br.eqIx, [2]*relation.Index{
			br.ix.For(r.Vars[p.V1].RelIdx, p.A1),
			br.ix.For(r.Vars[p.V2].RelIdx, p.A2),
		})
	}
	br.plan = compilePlan(e, br)
	return br, nil
}

// predSignature identifies an ML predicate for answer sharing: two bound
// predicates may share cached answers iff they agree on the classifier and
// on both attribute lists — the same model over different attribute lists
// is a different function of the tuple pair.
func predSignature(p *rule.Pred) string {
	var sb strings.Builder
	sb.WriteString(p.Model)
	for _, a := range p.A1Vec {
		fmt.Fprintf(&sb, "|%d", a)
	}
	sb.WriteByte('~')
	for _, a := range p.A2Vec {
		fmt.Fprintf(&sb, "|%d", a)
	}
	return sb.String()
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// prebuildIndexes materializes every index a rule's query plan can reach
// (one per equality- or constant-predicate attribute), so the concurrent
// pass never mutates the lazy index caches. Since bindRule resolves eqIx
// and the plan's constant probes eagerly, this is a backstop that runs
// once and finds everything already built.
func (e *Engine) prebuildIndexes() {
	if e.prebuilt {
		return
	}
	e.prebuilt = true
	for _, br := range e.rules {
		for _, p := range br.eqs {
			br.ix.For(br.r.Vars[p.V1].RelIdx, p.A1)
			br.ix.For(br.r.Vars[p.V2].RelIdx, p.A2)
		}
		for v := range br.consts {
			for _, p := range br.consts[v] {
				br.ix.For(br.r.Vars[p.V1].RelIdx, p.A1)
			}
		}
	}
}

// frozenRoots snapshots the union-find roots so concurrent enumerations
// can answer Same without path-compressing shared state.
func (e *Engine) frozenRoots() []int32 {
	roots := make([]int32, e.uf.Len())
	for i := range roots {
		roots[i] = int32(e.uf.Find(i))
	}
	return roots
}

// MemUsage is the engine's accounted memory estimate under
// Options.MemBudgetBytes: the dataset's columnar arenas (packed columns,
// symbol table, tuple handles), the deduced set Γ (fact logs, class
// members, validated predictions, pending events), and the dependency
// store H. Inverted indexes and ML caches are not part of the account —
// the budget governs the structures that grow with the chase itself.
type MemUsage struct {
	DatasetBytes int64
	GammaBytes   int64
	DepsBytes    int64
	BudgetBytes  int64
}

// Total sums the accounted components.
func (m MemUsage) Total() int64 { return m.DatasetBytes + m.GammaBytes + m.DepsBytes }

// Mem returns the engine's current accounted memory estimate.
func (e *Engine) Mem() MemUsage {
	return MemUsage{
		DatasetBytes: e.d.MemBytes(),
		GammaBytes:   e.gammaBytes(),
		DepsBytes:    e.H.MemBytes(),
		BudgetBytes:  e.opts.MemBudgetBytes,
	}
}

// gammaBytes estimates Γ's resident footprint: the match and validated
// fact logs (gamma + delta copies), the validated map, the materialized
// class-member slices, and the pending event queue.
func (e *Engine) gammaBytes() int64 {
	n := int64(cap(e.gamma.Matches)+cap(e.gamma.Validated)+cap(e.delta)) * 32
	n += int64(len(e.validated)) * 64
	n += int64(len(e.members)) * 48
	for _, ms := range e.members {
		n += int64(cap(ms)) * 4
	}
	n += int64(cap(e.queue)) * 64
	return n
}

// rebudget refreshes H's byte bound from the live estimate: H may keep
// whatever Options.MemBudgetBytes leaves after the dataset and Γ, and
// sheds oldest-first when Γ's growth squeezes it (spill-to-regeneration —
// an evicted dependency is re-derived by the update-driven path when its
// head still matters, the invariant the MaxDeps drop path already relies
// on). Called at setup and once per drain round; Γ only grows, so between
// calls H can overshoot by at most one round's Γ growth.
func (e *Engine) rebudget() {
	b := e.opts.MemBudgetBytes
	if b <= 0 && e.tel == nil {
		return
	}
	ds, gb := e.d.MemBytes(), e.gammaBytes()
	e.cnt.memDataset.Store(ds)
	e.cnt.memGamma.Store(gb)
	e.cnt.memDeps.Store(e.H.MemBytes())
	e.cnt.memEvicted.Store(int64(e.H.Evicted()))
	if b <= 0 {
		return
	}
	rem := b - ds - gb
	if rem < 1 {
		rem = 1 // keep the bound active: every insert sheds immediately
	}
	e.H.SetByteBudget(rem)
}

// Same reports whether two tuples are currently matched (t.id = s.id ∈ Γ).
func (e *Engine) Same(a, b relation.TID) bool {
	return a == b || e.uf.Same(int(a), int(b))
}

// Validated reports whether the ML prediction (model, a, b) is in Γ.
func (e *Engine) Validated(model string, a, b relation.TID) bool {
	return e.validated[mlKey{model, a, b}]
}

// membersOf returns the hosted members of the class rooted at r. A root
// with no stored entry is an implicit singleton: {r} when the engine
// hosts tuple r, empty otherwise (remote ids merged in from other
// workers). Only call with current roots — a stale root's absence would
// read as a singleton.
func (e *Engine) membersOf(r int) []relation.TID {
	if ms, ok := e.members[r]; ok {
		return ms
	}
	if e.d.Has(relation.TID(r)) {
		return []relation.TID{relation.TID(r)}
	}
	return nil
}

// unionInternal merges two classes without reporting a fact; used for
// literal id-value duplicates at setup.
func (e *Engine) unionInternal(a, b relation.TID) {
	ra, rb := e.uf.Find(int(a)), e.uf.Find(int(b))
	if ra == rb {
		return
	}
	ma, mb := e.membersOf(ra), e.membersOf(rb)
	e.uf.Union(ra, rb)
	root := e.uf.Find(ra)
	merged := append(append(make([]relation.TID, 0, len(ma)+len(mb)), ma...), mb...)
	delete(e.members, ra)
	delete(e.members, rb)
	if len(merged) > 0 {
		e.members[root] = merged
	}
}

// applyFact integrates a fact into Γ without a rule justification (the
// recorded origin is the engine's current provOrigin). It reports whether
// the fact was new.
func (e *Engine) applyFact(f Fact) bool {
	return e.applyFactJ(f, nil)
}

// applyFactJ integrates a fact into Γ. If the fact is new, it is appended
// to the current delta, an event is queued for the update-driven path,
// and — when provenance capture is on — its justification j is recorded.
// It reports whether the fact was new.
func (e *Engine) applyFactJ(f Fact, j *justification) bool {
	switch f.Kind {
	case FactMatch:
		ra, rb := e.uf.Find(int(f.A)), e.uf.Find(int(f.B))
		if ra == rb {
			return false
		}
		ma, mb := e.membersOf(ra), e.membersOf(rb)
		e.uf.Union(ra, rb)
		root := e.uf.Find(ra)
		merged := append(append(make([]relation.TID, 0, len(ma)+len(mb)), ma...), mb...)
		delete(e.members, ra)
		delete(e.members, rb)
		if len(merged) > 0 {
			e.members[root] = merged
		}
		e.gamma.Matches = append(e.gamma.Matches, f)
		e.delta = append(e.delta, f)
		e.cnt.matches.Add(1)
		if e.prov != nil {
			e.recordProvenance(f, j)
		}
		// The old member slices stay intact (merges build fresh slices),
		// so the event can reference them without copying.
		if e.anyIDs && len(ma) > 0 && len(mb) > 0 {
			e.queue = append(e.queue, event{kind: FactMatch, ma: ma, mb: mb})
		}
		return true
	default:
		k := mlKey{f.Model, f.A, f.B}
		if e.validated[k] {
			return false
		}
		e.validated[k] = true
		e.gamma.Validated = append(e.gamma.Validated, f)
		e.delta = append(e.delta, f)
		e.cnt.mlValidated.Add(1)
		if e.prov != nil {
			e.recordProvenance(f, j)
		}
		e.queue = append(e.queue, event{kind: FactML, model: f.Model, a: f.A, b: f.B})
		return true
	}
}

// enumerateRule runs one seeded (or full, seed == nil) enumeration of br
// on the engine's sequential context, applying facts directly.
func (e *Engine) enumerateRule(br *boundRule, seed []*relation.Tuple) {
	var t0 time.Time
	if e.tel != nil || e.curTC.Enabled() {
		t0 = time.Now()
	}
	e.ctx.reset(br)
	e.ctx.enumerate(seed)
	if e.curTC.Enabled() && time.Since(t0) >= fineSpanFloor {
		e.curTC.Record("chase.enumerate", t0, telemetry.L("rule", br.r.Name))
	}
	if e.tel != nil {
		br.enumHist.ObserveDuration(time.Since(t0))
	}
	e.flushCtxCounters(&e.ctx)
}

// flushCtxCounters lands a context's plain work counters in the engine
// atomics (the merge-point discipline that keeps the hot loops free of
// atomic traffic).
func (e *Engine) flushCtxCounters(c *evalCtx) {
	e.cnt.valuations.Add(c.valuations)
	e.cnt.extensions.Add(c.extensions)
	e.cnt.planPreds.Add(c.planEvals)
	e.cnt.planBatches.Add(c.planBatches)
	c.valuations, c.extensions, c.planEvals, c.planBatches = 0, 0, 0, 0
}

// Deduce runs the first full chase pass over all rules (procedure Deduce
// of Section V-A) and then drains the internal update-driven fixpoint.
// The pass enumerates rules concurrently against a frozen snapshot of Γ
// unless Options.SequentialDeduce is set; either way the final Γ is the
// same, by the Church-Rosser property of the chase. It returns the facts
// deduced during the call.
func (e *Engine) Deduce() []Fact {
	sp := e.startRoot("chase.Deduce")
	defer e.endRoot(sp)
	if h := e.health; h != nil {
		h.hb.Enter()
		defer h.hb.Exit()
	}
	e.delta = e.delta[:0]
	e.maybeResortPlans() // quiesced: no enumeration in flight between calls
	if e.opts.SequentialDeduce || len(e.rules) <= 1 {
		for _, br := range e.rules {
			e.enumerateRule(br, nil)
		}
	} else {
		e.deduceConcurrent()
	}
	e.drain()
	return append([]Fact(nil), e.delta...)
}

// deduceConcurrent is the snapshot-enumerate-merge first pass: every rule
// enumerates on its own goroutine against the frozen Γ (frozen roots, the
// read-only validated set, prebuilt indexes and the thread-safe ML cache),
// buffering candidate facts and dependencies; a single-threaded merge then
// applies them in rule order, which keeps the engine deterministic.
func (e *Engine) deduceConcurrent() {
	e.prebuildIndexes()
	roots := e.frozenRoots()
	ctxs := make([]*evalCtx, len(e.rules))
	tc := e.curTC // stable for the whole pass; goroutines copy it
	var wg sync.WaitGroup
	for i, br := range e.rules {
		ctx := &evalCtx{e: e, roots: roots, buffered: true}
		ctxs[i] = ctx
		wg.Add(1)
		go func(ctx *evalCtx, br *boundRule) {
			defer wg.Done()
			deduceSem <- struct{}{}
			defer func() { <-deduceSem }()
			var t0 time.Time
			if e.tel != nil || tc.Enabled() {
				t0 = time.Now()
			}
			ctx.reset(br)
			ctx.enumerate(nil)
			if tc.Enabled() && time.Since(t0) >= fineSpanFloor {
				tc.Record("chase.enumerate", t0, telemetry.L("rule", br.r.Name))
			}
			if e.tel != nil {
				// Each goroutine owns its rule's histogram observation;
				// the lock-striped histogram absorbs the concurrency.
				br.enumHist.ObserveDuration(time.Since(t0))
			}
		}(ctx, br)
	}
	wg.Wait()
	for i, ctx := range ctxs {
		var t0 time.Time
		if e.tel != nil || tc.Enabled() {
			t0 = time.Now()
		}
		e.mergeCtx(ctx)
		if tc.Enabled() && time.Since(t0) >= fineSpanFloor {
			tc.Record("chase.merge", t0, telemetry.L("rule", e.rules[i].r.Name))
		}
		if e.tel != nil {
			e.rules[i].mergeHist.ObserveDuration(time.Since(t0))
		}
	}
}

// IncDeduce applies externally supplied updates ΔΓ (matches and validated
// predictions deduced elsewhere, e.g. on other workers) and incrementally
// deduces their consequences (procedure IncDeduce / algorithm A_Δ). It
// returns the facts newly deduced here, excluding the external inputs.
func (e *Engine) IncDeduce(external []Fact) []Fact {
	sp := e.startRoot("chase.IncDeduce")
	defer e.endRoot(sp)
	if h := e.health; h != nil {
		h.hb.Enter()
		defer h.hb.Exit()
	}
	e.delta = e.delta[:0]
	// Externally supplied facts carry their derivation on the worker that
	// deduced them; here they are recorded as arrivals, which the merged
	// cross-worker log displaces with the originating derivation.
	e.provOrigin = provenance.OriginExternal
	for _, f := range external {
		e.applyFact(f)
	}
	e.provOrigin = provenance.OriginIDDup
	// External facts are not "newly deduced here": they are removed from
	// the reported delta but still drive the update path via the queue.
	skip := len(e.delta)
	e.drain()
	return append([]Fact(nil), e.delta[skip:]...)
}

func literalFact(l Literal) Fact {
	if l.Kind == FactMatch {
		return MatchFact(l.A, l.B)
	}
	return MLFact(l.ModelName(), l.A, l.B)
}

// satisfied reports whether a dependency literal currently holds in Γ.
func (e *Engine) satisfied(l Literal) bool {
	if l.Kind == FactMatch {
		return e.Same(l.A, l.B)
	}
	return e.validated[mlKey{l.ModelName(), l.A, l.B}]
}

// Run executes the full sequential algorithm Match and returns Γ.
func (e *Engine) Run() *Gamma {
	e.Deduce()
	return e.Gamma()
}

// Gamma returns the deduced set Γ so far.
func (e *Engine) Gamma() *Gamma {
	g := &Gamma{
		Matches:   append([]Fact(nil), e.gamma.Matches...),
		Validated: append([]Fact(nil), e.gamma.Validated...),
	}
	return g
}

// Classes returns the non-singleton id-equivalence classes of hosted
// tuples, i.e. the resolved entities.
func (e *Engine) Classes() [][]relation.TID {
	var out [][]relation.TID
	for _, ms := range e.members {
		if len(ms) > 1 {
			out = append(out, append([]relation.TID(nil), ms...))
		}
	}
	return out
}

// Stats returns a snapshot of the engine counters. The engine counters
// are read from atomics, and each ML cache and feature store contributes
// one coherent locked Snapshot (hits, misses, and size taken together,
// never in separate calls that could tear mid-drain), so Stats is safe
// to call — and meaningful — while a deduction is in flight on other
// goroutines. DepsDropped reflects the engine goroutine's view of H.
func (e *Engine) Stats() Stats {
	s := Stats{
		Valuations:   e.cnt.valuations.Load(),
		Extensions:   e.cnt.extensions.Load(),
		PlanPreds:    e.cnt.planPreds.Load(),
		PlanBatches:  e.cnt.planBatches.Load(),
		PlanReorders: e.cnt.planReorders.Load(),
		MatchesFound: e.cnt.matches.Load(),
		MLValidated:  e.cnt.mlValidated.Load(),
		DepsRecorded: e.cnt.depsRecorded.Load(),
		DepsFired:    e.cnt.depsFired.Load(),
		Rounds:       e.cnt.rounds.Load(),
		DepsDropped:  int64(e.H.Dropped()),
	}
	counted := make(map[*relation.IndexSet]bool)
	for _, br := range e.rules {
		if !counted[br.ix] {
			counted[br.ix] = true
			s.IndexBuilds += br.ix.Built()
		}
	}
	pair, feat := e.cacheSnapshots()
	s.MLCacheHits, s.MLCacheMiss, s.MLCacheSize = pair.Hits, pair.Misses, pair.Entries
	s.FeatHits, s.FeatMisses, s.FeatEntries = feat.Hits, feat.Misses, feat.Entries
	return s
}
