package chase

import (
	"fmt"
	"runtime"
	"sync"

	"dcer/internal/mlpred"
	"dcer/internal/relation"
	"dcer/internal/rule"
	"dcer/internal/unionfind"
)

// Options configures the engine.
type Options struct {
	// MaxDeps is the capacity K of the dependency store H (Section V-A);
	// 0 means DefaultMaxDeps, negative means unbounded. When H is full,
	// new dependencies are dropped and the update-driven re-evaluation
	// path of IncDeduce preserves correctness.
	MaxDeps int
	// ShareIndexes enables MQO-style sharing of inverted indexes and the
	// ML answer cache across rules. Disabling it reproduces the
	// DMatch_noMQO ablation: every rule rebuilds its own indexes and ML
	// cache, so no intermediate results are shared.
	ShareIndexes bool
	// IDSpace overrides the size of the global tuple-id space; fragments
	// of a larger dataset must pass the parent's size so the
	// id-equivalence relation can host remote ids. 0 means the dataset's
	// own size.
	IDSpace int
	// SequentialDeduce disables the concurrent first pass of Deduce, so
	// rules enumerate strictly one after another on the calling
	// goroutine. The final Γ is identical either way (the chase is
	// Church-Rosser); sequential mode exists for deterministic debugging
	// and undistorted single-thread timings.
	SequentialDeduce bool
}

// DefaultMaxDeps is the default capacity of the dependency store.
const DefaultMaxDeps = 1 << 20

// deduceSem bounds the process-wide fan-out of concurrent rule
// enumerations: with n parallel dmatch workers × r rules each, up to n·r
// goroutines contend for these GOMAXPROCS slots, so the chase never
// oversubscribes the machine no matter how many engines run at once.
var deduceSem = make(chan struct{}, runtime.GOMAXPROCS(0))

// Stats counts the engine's work, for the efficiency experiments.
type Stats struct {
	Valuations   int64 // complete valuations inspected (emit calls)
	Extensions   int64 // partial-binding extension steps
	MatchesFound int64 // non-trivial id matches deduced
	MLValidated  int64 // ML predictions validated by rule heads
	DepsRecorded int64
	DepsFired    int64
	DepsDropped  int64
	Rounds       int64 // internal incremental rounds
	IndexBuilds  int   // inverted indexes materialized
	MLCacheHits  int64
	MLCacheMiss  int64
}

// boundMLPred is an ML body predicate resolved to its classifier.
type boundMLPred struct {
	pred    *rule.Pred
	cl      mlpred.Classifier
	dynamic bool // the model appears in some rule head, so validation can flip it
}

// boundRule is a rule prepared for enumeration.
type boundRule struct {
	r *rule.Rule

	consts [][]*rule.Pred // per-var constant predicates
	intra  [][]*rule.Pred // per-var equality predicates with both sides on the var
	eqs    []*rule.Pred   // cross-variable equality predicates
	ids    []*rule.Pred   // id predicates in the body
	mls    []boundMLPred  // ML predicates in the body

	headCl mlpred.Classifier // classifier of an ML head, if any

	// scope is the sub-dataset this rule enumerates over. In the
	// sequential engine it is the whole dataset; in the parallel engine
	// it is the union of the worker's virtual blocks generated for this
	// rule (hypercube semantics evaluate each rule within its blocks).
	scope *relation.Dataset
	// ix indexes the rule's scope. With MQO sharing, rules with the same
	// scope share one index set; without, every rule gets its own.
	ix *relation.IndexSet
	// cache is the rule-private ML cache used when MQO sharing is off.
	cache *mlpred.Cache
}

// Engine is the sequential Match engine of Section V-A. It owns the
// deduced set Γ (an id-equivalence relation plus validated ML
// predictions), the bounded dependency store H, and the inverted indexes,
// and exposes Deduce / IncDeduce so the parallel engine can drive it as
// the partial-evaluation and incremental algorithms A and A_Δ.
type Engine struct {
	d     *relation.Dataset
	rules []*boundRule
	reg   *mlpred.Registry
	opts  Options

	uf        *unionfind.UnionFind
	members   map[int][]relation.TID // root -> hosted members of the class
	validated map[mlKey]bool
	H         *DepStore
	ixSets    map[*relation.Dataset]*relation.IndexSet // shared per scope
	cache     *mlpred.Cache

	dynamicModels map[string]bool

	// anyIDs records whether any rule carries an id body predicate: when
	// none does, class-merge events have no consumer and are not queued.
	anyIDs bool

	// prebuilt marks that every index reachable from the rules' query
	// plans has been materialized (required before the concurrent pass,
	// whose goroutines must not mutate the lazy index cache).
	prebuilt bool

	// ctx is the reusable evaluation context of the sequential paths
	// (seeded re-enumerations and SequentialDeduce).
	ctx evalCtx

	// seedBuf is the reusable seed scratch of seedIDPair / seedMLPair.
	seedBuf []*relation.Tuple

	gamma Gamma
	stats Stats

	// queue of unprocessed events driving the update-driven path.
	queue []event

	// delta accumulates the facts deduced during the current Deduce or
	// IncDeduce call.
	delta []Fact
}

// event is one unprocessed state change: either a class merge newly made
// by a union, or one newly validated ML prediction. A merge stores the two
// classes' member slices; the cross pairs are expanded lazily in
// processEvent, per id predicate in scope, instead of being materialized
// O(|Ca|·|Cb|) up front for rules that may not need them.
type event struct {
	kind   FactKind
	ma, mb []relation.TID // FactMatch: members of the two merged classes
	model  string         // FactML
	a, b   relation.TID   // FactML
}

// New prepares an engine over dataset d with resolved rules and the
// classifier registry. Every rule enumerates over the whole dataset; the
// parallel engine uses NewScoped instead.
func New(d *relation.Dataset, rules []*rule.Rule, reg *mlpred.Registry, opts Options) (*Engine, error) {
	return NewScoped(d, rules, nil, reg, opts)
}

// NewScoped prepares an engine whose rule i enumerates only over
// scopes[i] (nil entries and a nil slice mean the whole dataset). The
// parallel engine passes each worker's per-rule block unions, so rules do
// not re-scan tuples that other rules' blocks brought to the worker.
func NewScoped(d *relation.Dataset, rules []*rule.Rule, scopes []*relation.Dataset, reg *mlpred.Registry, opts Options) (*Engine, error) {
	if opts.MaxDeps == 0 {
		opts.MaxDeps = DefaultMaxDeps
	}
	idSpace := opts.IDSpace
	if idSpace == 0 {
		for _, t := range d.Tuples() {
			if int(t.GID)+1 > idSpace {
				idSpace = int(t.GID) + 1
			}
		}
	}
	e := &Engine{
		d:             d,
		reg:           reg,
		opts:          opts,
		uf:            unionfind.New(idSpace),
		members:       make(map[int][]relation.TID, d.Size()),
		validated:     make(map[mlKey]bool),
		H:             NewDepStore(opts.MaxDeps),
		ixSets:        make(map[*relation.Dataset]*relation.IndexSet),
		cache:         mlpred.NewCache(),
		dynamicModels: make(map[string]bool),
	}
	e.ctx.e = e
	for _, t := range d.Tuples() {
		e.members[int(t.GID)] = []relation.TID{t.GID}
	}
	for _, r := range rules {
		if r.Head.Kind == rule.PredML {
			e.dynamicModels[r.Head.Model] = true
		}
	}
	for i, r := range rules {
		scope := d
		if scopes != nil && i < len(scopes) && scopes[i] != nil {
			scope = scopes[i]
		}
		br, err := e.bindRule(r, scope)
		if err != nil {
			return nil, err
		}
		e.rules = append(e.rules, br)
		if len(br.ids) > 0 {
			e.anyIDs = true
		}
	}
	// Tuples sharing a literal id value within a relation denote the same
	// entity by definition; pre-merge them (these trivial matches are not
	// reported in Γ).
	for _, rel := range d.Relations {
		byID := make(map[string]relation.TID)
		for _, t := range rel.Tuples {
			k := t.Values[rel.Schema.IDAttr].Key()
			if first, ok := byID[k]; ok {
				e.unionInternal(first, t.GID)
			} else {
				byID[k] = t.GID
			}
		}
	}
	return e, nil
}

func (e *Engine) bindRule(r *rule.Rule, scope *relation.Dataset) (*boundRule, error) {
	if !r.Resolved() {
		return nil, fmt.Errorf("chase: rule %s is not resolved", r.Name)
	}
	br := &boundRule{
		r:      r,
		scope:  scope,
		consts: make([][]*rule.Pred, len(r.Vars)),
		intra:  make([][]*rule.Pred, len(r.Vars)),
	}
	for i := range r.Body {
		p := &r.Body[i]
		switch p.Kind {
		case rule.PredConst:
			br.consts[p.V1] = append(br.consts[p.V1], p)
		case rule.PredEq:
			if p.V1 == p.V2 {
				br.intra[p.V1] = append(br.intra[p.V1], p)
			} else {
				br.eqs = append(br.eqs, p)
			}
		case rule.PredID:
			br.ids = append(br.ids, p)
		case rule.PredML:
			cl, err := e.reg.Get(p.Model)
			if err != nil {
				return nil, fmt.Errorf("chase: rule %s: %w", r.Name, err)
			}
			br.mls = append(br.mls, boundMLPred{pred: p, cl: cl, dynamic: e.dynamicModels[p.Model]})
		}
	}
	if r.Head.Kind == rule.PredML {
		cl, err := e.reg.Get(r.Head.Model)
		if err != nil {
			return nil, fmt.Errorf("chase: rule %s head: %w", r.Name, err)
		}
		br.headCl = cl
	}
	if e.opts.ShareIndexes {
		ix, ok := e.ixSets[scope]
		if !ok {
			ix = relation.NewIndexSet(scope)
			e.ixSets[scope] = ix
		}
		br.ix = ix
	} else {
		br.ix = relation.NewIndexSet(scope)
		br.cache = mlpred.NewCache()
	}
	return br, nil
}

// indexFor returns the rule's (scope-local) index.
func (e *Engine) indexFor(br *boundRule, rel, attr int) *relation.Index {
	return br.ix.For(rel, attr)
}

// prebuildIndexes materializes every index a rule's query plan can reach
// (one per equality- or constant-predicate attribute), so the concurrent
// pass never mutates the lazy index caches.
func (e *Engine) prebuildIndexes() {
	if e.prebuilt {
		return
	}
	e.prebuilt = true
	for _, br := range e.rules {
		for _, p := range br.eqs {
			br.ix.For(br.r.Vars[p.V1].RelIdx, p.A1)
			br.ix.For(br.r.Vars[p.V2].RelIdx, p.A2)
		}
		for v := range br.consts {
			for _, p := range br.consts[v] {
				br.ix.For(br.r.Vars[p.V1].RelIdx, p.A1)
			}
		}
	}
}

// frozenRoots snapshots the union-find roots so concurrent enumerations
// can answer Same without path-compressing shared state.
func (e *Engine) frozenRoots() []int32 {
	roots := make([]int32, e.uf.Len())
	for i := range roots {
		roots[i] = int32(e.uf.Find(i))
	}
	return roots
}

// mlPredict answers an ML predicate through the (possibly rule-private)
// memoizing cache.
func (e *Engine) mlPredict(br *boundRule, cl mlpred.Classifier, left, right []relation.Value) bool {
	c := e.cache
	if br != nil && br.cache != nil {
		c = br.cache
	}
	return c.Predict(cl, left, right)
}

// Same reports whether two tuples are currently matched (t.id = s.id ∈ Γ).
func (e *Engine) Same(a, b relation.TID) bool {
	return a == b || e.uf.Same(int(a), int(b))
}

// Validated reports whether the ML prediction (model, a, b) is in Γ.
func (e *Engine) Validated(model string, a, b relation.TID) bool {
	return e.validated[mlKey{model, a, b}]
}

// unionInternal merges two classes without reporting a fact; used for
// literal id-value duplicates at setup.
func (e *Engine) unionInternal(a, b relation.TID) {
	ra, rb := e.uf.Find(int(a)), e.uf.Find(int(b))
	if ra == rb {
		return
	}
	ma, mb := e.members[ra], e.members[rb]
	e.uf.Union(ra, rb)
	root := e.uf.Find(ra)
	merged := append(append(make([]relation.TID, 0, len(ma)+len(mb)), ma...), mb...)
	delete(e.members, ra)
	delete(e.members, rb)
	if len(merged) > 0 {
		e.members[root] = merged
	}
}

// applyFact integrates a fact into Γ. If the fact is new, it is appended
// to the current delta and an event is queued for the update-driven path.
// It reports whether the fact was new.
func (e *Engine) applyFact(f Fact) bool {
	switch f.Kind {
	case FactMatch:
		ra, rb := e.uf.Find(int(f.A)), e.uf.Find(int(f.B))
		if ra == rb {
			return false
		}
		ma, mb := e.members[ra], e.members[rb]
		e.uf.Union(ra, rb)
		root := e.uf.Find(ra)
		merged := append(append(make([]relation.TID, 0, len(ma)+len(mb)), ma...), mb...)
		delete(e.members, ra)
		delete(e.members, rb)
		if len(merged) > 0 {
			e.members[root] = merged
		}
		e.gamma.Matches = append(e.gamma.Matches, f)
		e.delta = append(e.delta, f)
		e.stats.MatchesFound++
		// The old member slices stay intact (merges build fresh slices),
		// so the event can reference them without copying.
		if e.anyIDs && len(ma) > 0 && len(mb) > 0 {
			e.queue = append(e.queue, event{kind: FactMatch, ma: ma, mb: mb})
		}
		return true
	default:
		k := mlKey{f.Model, f.A, f.B}
		if e.validated[k] {
			return false
		}
		e.validated[k] = true
		e.gamma.Validated = append(e.gamma.Validated, f)
		e.delta = append(e.delta, f)
		e.stats.MLValidated++
		e.queue = append(e.queue, event{kind: FactML, model: f.Model, a: f.A, b: f.B})
		return true
	}
}

// enumerateRule runs one seeded (or full, seed == nil) enumeration of br
// on the engine's sequential context, applying facts directly.
func (e *Engine) enumerateRule(br *boundRule, seed []*relation.Tuple) {
	e.ctx.reset(br)
	e.ctx.enumerate(seed)
	e.stats.Valuations += e.ctx.valuations
	e.stats.Extensions += e.ctx.extensions
	e.ctx.valuations, e.ctx.extensions = 0, 0
}

// Deduce runs the first full chase pass over all rules (procedure Deduce
// of Section V-A) and then drains the internal update-driven fixpoint.
// The pass enumerates rules concurrently against a frozen snapshot of Γ
// unless Options.SequentialDeduce is set; either way the final Γ is the
// same, by the Church-Rosser property of the chase. It returns the facts
// deduced during the call.
func (e *Engine) Deduce() []Fact {
	e.delta = e.delta[:0]
	if e.opts.SequentialDeduce || len(e.rules) <= 1 {
		for _, br := range e.rules {
			e.enumerateRule(br, nil)
		}
	} else {
		e.deduceConcurrent()
	}
	e.drain()
	return append([]Fact(nil), e.delta...)
}

// deduceConcurrent is the snapshot-enumerate-merge first pass: every rule
// enumerates on its own goroutine against the frozen Γ (frozen roots, the
// read-only validated set, prebuilt indexes and the thread-safe ML cache),
// buffering candidate facts and dependencies; a single-threaded merge then
// applies them in rule order, which keeps the engine deterministic.
func (e *Engine) deduceConcurrent() {
	e.prebuildIndexes()
	roots := e.frozenRoots()
	ctxs := make([]*evalCtx, len(e.rules))
	var wg sync.WaitGroup
	for i, br := range e.rules {
		ctx := &evalCtx{e: e, roots: roots, buffered: true}
		ctxs[i] = ctx
		wg.Add(1)
		go func(ctx *evalCtx, br *boundRule) {
			defer wg.Done()
			deduceSem <- struct{}{}
			defer func() { <-deduceSem }()
			ctx.reset(br)
			ctx.enumerate(nil)
		}(ctx, br)
	}
	wg.Wait()
	for _, ctx := range ctxs {
		e.stats.Valuations += ctx.valuations
		e.stats.Extensions += ctx.extensions
		for _, l := range ctx.facts {
			e.applyFact(literalFact(l))
		}
		for i := range ctx.deps {
			d := &ctx.deps[i]
			if e.H.Add(d) {
				e.stats.DepsRecorded++
			}
		}
	}
}

// IncDeduce applies externally supplied updates ΔΓ (matches and validated
// predictions deduced elsewhere, e.g. on other workers) and incrementally
// deduces their consequences (procedure IncDeduce / algorithm A_Δ). It
// returns the facts newly deduced here, excluding the external inputs.
func (e *Engine) IncDeduce(external []Fact) []Fact {
	e.delta = e.delta[:0]
	for _, f := range external {
		e.applyFact(f)
	}
	// External facts are not "newly deduced here": they are removed from
	// the reported delta but still drive the update path via the queue.
	skip := len(e.delta)
	e.drain()
	return append([]Fact(nil), e.delta[skip:]...)
}

// drain alternates dependency firing and update-driven re-evaluation until
// no new facts appear (the while-loop of algorithm Match).
func (e *Engine) drain() {
	for {
		progressed := false
		// Lines 2-3 of IncDeduce: fire satisfied dependencies.
		heads := e.H.Fire(e.satisfied)
		for _, h := range heads {
			e.stats.DepsFired++
			if e.applyFact(literalFact(h)) {
				progressed = true
			}
		}
		// Lines 4-7: update-driven re-evaluation of valuations that
		// involve a new match or validated prediction.
		if len(e.queue) > 0 {
			progressed = true
			q := e.queue
			e.queue = nil
			for _, ev := range q {
				e.processEvent(ev)
			}
		}
		if !progressed {
			return
		}
		e.stats.Rounds++
	}
}

func literalFact(l Literal) Fact {
	if l.Kind == FactMatch {
		return MatchFact(l.A, l.B)
	}
	return MLFact(l.Model, l.A, l.B)
}

// satisfied reports whether a dependency literal currently holds in Γ.
func (e *Engine) satisfied(l Literal) bool {
	if l.Kind == FactMatch {
		return e.Same(l.A, l.B)
	}
	return e.validated[mlKey{l.Model, l.A, l.B}]
}

// processEvent re-inspects only valuations involving the new facts. Class
// merges expand their cross pairs here, lazily per id predicate in scope.
func (e *Engine) processEvent(ev event) {
	switch ev.kind {
	case FactMatch:
		for _, br := range e.rules {
			for _, p := range br.ids {
				for _, x := range ev.ma {
					for _, y := range ev.mb {
						e.seedIDPair(br, p, x, y)
						e.seedIDPair(br, p, y, x)
					}
				}
			}
		}
	case FactML:
		for _, br := range e.rules {
			for i := range br.mls {
				m := &br.mls[i]
				if !m.dynamic || m.pred.Model != ev.model {
					continue
				}
				e.seedMLPair(br, m.pred, ev.a, ev.b)
			}
		}
	}
}

// seedScratch clears and returns the reusable seed buffer, sized to n.
func (e *Engine) seedScratch(n int) []*relation.Tuple {
	if cap(e.seedBuf) < n {
		e.seedBuf = make([]*relation.Tuple, n)
	}
	e.seedBuf = e.seedBuf[:n]
	for i := range e.seedBuf {
		e.seedBuf[i] = nil
	}
	return e.seedBuf
}

// seedIDPair starts a restricted enumeration of br with the id predicate
// p's variables bound to tuples x and y (both must be in the rule's scope).
func (e *Engine) seedIDPair(br *boundRule, p *rule.Pred, x, y relation.TID) {
	tx, ty := br.scope.Tuple(x), br.scope.Tuple(y)
	if tx == nil || ty == nil {
		return
	}
	if tx.Rel != br.r.Vars[p.V1].RelIdx || ty.Rel != br.r.Vars[p.V2].RelIdx {
		return
	}
	seed := e.seedScratch(len(br.r.Vars))
	seed[p.V1] = tx
	if p.V1 != p.V2 {
		seed[p.V2] = ty
	} else if x != y {
		return
	}
	e.enumerateRule(br, seed)
}

// seedMLPair starts a restricted enumeration of br with the ML predicate
// p's variables bound to tuples a and b.
func (e *Engine) seedMLPair(br *boundRule, p *rule.Pred, a, b relation.TID) {
	ta, tb := br.scope.Tuple(a), br.scope.Tuple(b)
	if ta == nil || tb == nil {
		return
	}
	if ta.Rel != br.r.Vars[p.V1].RelIdx || tb.Rel != br.r.Vars[p.V2].RelIdx {
		return
	}
	seed := e.seedScratch(len(br.r.Vars))
	seed[p.V1] = ta
	if p.V1 != p.V2 {
		seed[p.V2] = tb
	} else if a != b {
		return
	}
	e.enumerateRule(br, seed)
}

// Run executes the full sequential algorithm Match and returns Γ.
func (e *Engine) Run() *Gamma {
	e.Deduce()
	return e.Gamma()
}

// Gamma returns the deduced set Γ so far.
func (e *Engine) Gamma() *Gamma {
	g := &Gamma{
		Matches:   append([]Fact(nil), e.gamma.Matches...),
		Validated: append([]Fact(nil), e.gamma.Validated...),
	}
	return g
}

// Classes returns the non-singleton id-equivalence classes of hosted
// tuples, i.e. the resolved entities.
func (e *Engine) Classes() [][]relation.TID {
	var out [][]relation.TID
	for _, ms := range e.members {
		if len(ms) > 1 {
			out = append(out, append([]relation.TID(nil), ms...))
		}
	}
	return out
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.DepsDropped = int64(e.H.Dropped())
	counted := make(map[*relation.IndexSet]bool)
	for _, br := range e.rules {
		if !counted[br.ix] {
			counted[br.ix] = true
			s.IndexBuilds += br.ix.Built()
		}
	}
	h, m := e.cache.Stats()
	for _, br := range e.rules {
		if br.cache != nil {
			bh, bm := br.cache.Stats()
			h += bh
			m += bm
		}
	}
	s.MLCacheHits, s.MLCacheMiss = h, m
	return s
}
