package chase_test

import (
	"sort"
	"strconv"
	"strings"
	"testing"

	"dcer/internal/chase"
	"dcer/internal/dmatch"
	"dcer/internal/mlpred"
	"dcer/internal/relation"
)

// canonClasses renders equivalence classes canonically for comparison.
func canonClasses(classes [][]relation.TID) string {
	canon := make([][]relation.TID, len(classes))
	for i, c := range classes {
		cc := append([]relation.TID(nil), c...)
		sort.Slice(cc, func(a, b int) bool { return cc[a] < cc[b] })
		canon[i] = cc
	}
	sort.Slice(canon, func(a, b int) bool { return canon[a][0] < canon[b][0] })
	var b strings.Builder
	for _, c := range canon {
		for _, id := range c {
			b.WriteString(" ")
			b.WriteString(strconv.Itoa(int(id)))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// canonValidated renders a validated-prediction set canonically.
func canonValidated(facts []chase.Fact) string {
	keys := make([]string, len(facts))
	for i, f := range facts {
		keys[i] = f.String()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// TestDeduceParallelEquivalence is the property test for the concurrent
// first pass of Deduce: on randomized datasets and rule sets, the
// sequential and concurrent passes of the standalone engine must reach
// byte-identical equivalence classes and validated sets.
func TestDeduceParallelEquivalence(t *testing.T) {
	reg := mlpred.DefaultRegistry()
	seeds := int64(40)
	if testing.Short() {
		seeds = 12
	}
	for seed := int64(200); seed < 200+seeds; seed++ {
		d, rules, err := randomInstance(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var classes, validated []string
		for _, seq := range []bool{true, false} {
			eng, err := chase.New(d, rules, reg, chase.Options{ShareIndexes: true, SequentialDeduce: seq})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			eng.Run()
			classes = append(classes, canonClasses(eng.Classes()))
			validated = append(validated, canonValidated(eng.Gamma().Validated))
		}
		if classes[0] != classes[1] {
			t.Fatalf("seed %d: sequential and concurrent Deduce classes differ:\nseq:\n%s\npar:\n%s",
				seed, classes[0], classes[1])
		}
		if validated[0] != validated[1] {
			t.Fatalf("seed %d: validated sets differ:\nseq:\n%s\npar:\n%s",
				seed, validated[0], validated[1])
		}
	}
}

// TestDMatchModesEquivalence is the property test for the three dmatch
// execution modes: fully sequential supersteps, parallel supersteps with
// sequential per-worker Deduce, and parallel supersteps with the
// concurrent per-rule Deduce. All three must produce the same global
// equivalence classes and validated set on randomized instances.
func TestDMatchModesEquivalence(t *testing.T) {
	reg := mlpred.DefaultRegistry()
	seeds := int64(30)
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(300); seed < 300+seeds; seed++ {
		d, rules, err := randomInstance(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		workers := 2 + int(seed%5)
		modes := []dmatch.Options{
			{Workers: workers, Sequential: true},
			{Workers: workers, SequentialDeduce: true},
			{Workers: workers},
		}
		var classes, validated []string
		for _, opts := range modes {
			res, err := dmatch.Run(d, rules, reg, opts)
			if err != nil {
				t.Fatalf("seed %d opts %+v: %v", seed, opts, err)
			}
			classes = append(classes, canonClasses(res.Classes()))
			validated = append(validated, canonValidated(res.Validated))
		}
		for i := 1; i < len(modes); i++ {
			if classes[i] != classes[0] {
				t.Fatalf("seed %d n=%d: mode %+v classes diverge from sequential:\nseq:\n%s\ngot:\n%s",
					seed, workers, modes[i], classes[0], classes[i])
			}
			if validated[i] != validated[0] {
				t.Fatalf("seed %d n=%d: mode %+v validated set diverges:\nseq:\n%s\ngot:\n%s",
					seed, workers, modes[i], validated[0], validated[i])
			}
		}
	}
}
