package chase_test

import (
	"sort"
	"strconv"
	"strings"
	"testing"

	"dcer/internal/chase"
	"dcer/internal/dmatch"
	"dcer/internal/mlpred"
	"dcer/internal/relation"
)

// canonClasses renders equivalence classes canonically for comparison.
func canonClasses(classes [][]relation.TID) string {
	canon := make([][]relation.TID, len(classes))
	for i, c := range classes {
		cc := append([]relation.TID(nil), c...)
		sort.Slice(cc, func(a, b int) bool { return cc[a] < cc[b] })
		canon[i] = cc
	}
	sort.Slice(canon, func(a, b int) bool { return canon[a][0] < canon[b][0] })
	var b strings.Builder
	for _, c := range canon {
		for _, id := range c {
			b.WriteString(" ")
			b.WriteString(strconv.Itoa(int(id)))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// canonValidated renders a validated-prediction set canonically.
func canonValidated(facts []chase.Fact) string {
	keys := make([]string, len(facts))
	for i, f := range facts {
		keys[i] = f.String()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// TestDeduceParallelEquivalence is the property test for the concurrent
// first pass of Deduce: on randomized datasets and rule sets, the
// sequential and concurrent passes of the standalone engine must reach
// byte-identical equivalence classes and validated sets.
func TestDeduceParallelEquivalence(t *testing.T) {
	reg := mlpred.DefaultRegistry()
	seeds := int64(40)
	if testing.Short() {
		seeds = 12
	}
	for seed := int64(200); seed < 200+seeds; seed++ {
		d, rules, err := randomInstance(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var classes, validated []string
		for _, seq := range []bool{true, false} {
			eng, err := chase.New(d, rules, reg, chase.Options{ShareIndexes: true, SequentialDeduce: seq})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			eng.Run()
			classes = append(classes, canonClasses(eng.Classes()))
			validated = append(validated, canonValidated(eng.Gamma().Validated))
		}
		if classes[0] != classes[1] {
			t.Fatalf("seed %d: sequential and concurrent Deduce classes differ:\nseq:\n%s\npar:\n%s",
				seed, classes[0], classes[1])
		}
		if validated[0] != validated[1] {
			t.Fatalf("seed %d: validated sets differ:\nseq:\n%s\npar:\n%s",
				seed, validated[0], validated[1])
		}
	}
}

// TestDrainParallelEquivalence is the property test for the batched
// parallel drain: on randomized instances, the sequential drain, the
// default-threshold drain, and a forced parallel drain (every batch fans
// out) must reach byte-identical equivalence classes and validated sets.
func TestDrainParallelEquivalence(t *testing.T) {
	reg := mlpred.DefaultRegistry()
	seeds := int64(40)
	if testing.Short() {
		seeds = 12
	}
	for seed := int64(400); seed < 400+seeds; seed++ {
		d, rules, err := randomInstance(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opts := []chase.Options{
			{ShareIndexes: true, SequentialDrain: true},
			{ShareIndexes: true},
			{ShareIndexes: true, DrainParallelMin: 1},
		}
		var classes, validated []string
		for _, o := range opts {
			eng, err := chase.New(d, rules, reg, o)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			eng.Run()
			classes = append(classes, canonClasses(eng.Classes()))
			validated = append(validated, canonValidated(eng.Gamma().Validated))
		}
		for i := 1; i < len(opts); i++ {
			if classes[i] != classes[0] {
				t.Fatalf("seed %d: drain mode %+v classes diverge from sequential:\nseq:\n%s\ngot:\n%s",
					seed, opts[i], classes[0], classes[i])
			}
			if validated[i] != validated[0] {
				t.Fatalf("seed %d: drain mode %+v validated set diverges:\nseq:\n%s\ngot:\n%s",
					seed, opts[i], validated[0], validated[i])
			}
		}
	}
}

// TestInsertTuplesRandomSplitEquivalence is the property test for the
// incremental ΔD path: withholding a random slice of a random instance and
// inserting it later (with the parallel drain forced on) must reach
// exactly the Γ of a full chase over the whole dataset.
func TestInsertTuplesRandomSplitEquivalence(t *testing.T) {
	reg := mlpred.DefaultRegistry()
	seeds := int64(25)
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(500); seed < 500+seeds; seed++ {
		d, rules, err := randomInstance(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		scratch, err := chase.New(d, rules, reg, chase.Options{ShareIndexes: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		scratch.Run()

		// Rebuild withholding every k-th tuple, chase, then insert them.
		k := 3 + int(seed%4)
		d2 := relation.NewDataset(d.DB)
		gidMap := make(map[relation.TID]relation.TID) // src gid -> new gid
		var heldSrc []*relation.Tuple
		for i, tt := range d.Tuples() {
			if i%k == 1 {
				heldSrc = append(heldSrc, tt)
				continue
			}
			nt := d2.MustAppend(d.DB.Schemas[tt.Rel].Name, tt.Values()...)
			gidMap[tt.GID] = nt.GID
		}
		eng, err := chase.New(d2, rules, reg, chase.Options{ShareIndexes: true, DrainParallelMin: 1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		eng.Run()
		var held []*relation.Tuple
		for _, tt := range heldSrc {
			nt := d2.MustAppend(d.DB.Schemas[tt.Rel].Name, tt.Values()...)
			gidMap[tt.GID] = nt.GID
			held = append(held, nt)
		}
		if _, err := eng.InsertTuples(held); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := 0; i < d.Size(); i++ {
			for j := i + 1; j < d.Size(); j++ {
				a, b := relation.TID(i), relation.TID(j)
				if scratch.Same(a, b) != eng.Same(gidMap[a], gidMap[b]) {
					t.Fatalf("seed %d: scratch and incremental disagree on (%d,%d)", seed, i, j)
				}
			}
		}
		want := make([]chase.Fact, 0, len(scratch.Gamma().Validated))
		for _, f := range scratch.Gamma().Validated {
			want = append(want, chase.MLFact(f.Model, gidMap[f.A], gidMap[f.B]))
		}
		if wv, gv := canonValidated(want), canonValidated(eng.Gamma().Validated); wv != gv {
			t.Fatalf("seed %d: validated sets differ:\nscratch:\n%s\nincremental:\n%s", seed, wv, gv)
		}
	}
}

// TestDMatchModesEquivalence is the property test for the dmatch execution
// modes: fully sequential supersteps, parallel supersteps with sequential
// per-worker Deduce, parallel supersteps with the sequential (and the
// always-parallel) per-worker drain, and the fully parallel default. All
// must produce the same global equivalence classes and validated set on
// randomized instances.
func TestDMatchModesEquivalence(t *testing.T) {
	reg := mlpred.DefaultRegistry()
	seeds := int64(30)
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(300); seed < 300+seeds; seed++ {
		d, rules, err := randomInstance(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		workers := 2 + int(seed%5)
		modes := []dmatch.Options{
			{Workers: workers, Sequential: true},
			{Workers: workers, SequentialDeduce: true},
			{Workers: workers, SequentialDrain: true},
			{Workers: workers, DrainParallelMin: 1},
			{Workers: workers},
		}
		var classes, validated []string
		for _, opts := range modes {
			res, err := dmatch.Run(d, rules, reg, opts)
			if err != nil {
				t.Fatalf("seed %d opts %+v: %v", seed, opts, err)
			}
			classes = append(classes, canonClasses(res.Classes()))
			validated = append(validated, canonValidated(res.Validated))
		}
		for i := 1; i < len(modes); i++ {
			if classes[i] != classes[0] {
				t.Fatalf("seed %d n=%d: mode %+v classes diverge from sequential:\nseq:\n%s\ngot:\n%s",
					seed, workers, modes[i], classes[0], classes[i])
			}
			if validated[i] != validated[0] {
				t.Fatalf("seed %d n=%d: mode %+v validated set diverges:\nseq:\n%s\ngot:\n%s",
					seed, workers, modes[i], validated[0], validated[i])
			}
		}
	}
}
