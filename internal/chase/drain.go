package chase

// The update-driven drain loop of algorithm Match: every drain round fires
// the satisfied dependencies of H and re-inspects the valuations involving
// the round's new facts. This file batches each round's event queue into
// explicit re-enumeration jobs and fans large batches out across
// goroutines with the same snapshot-enumerate-merge discipline as the
// concurrent first pass of Deduce (engine.go): frozen union-find roots,
// per-goroutine buffered contexts, deterministic event-order merge, fan-out
// bounded by the process-wide deduceSem. The final Γ is identical to the
// sequential drain by the Church-Rosser property of the chase.

import (
	"runtime"
	"strconv"
	"sync"
	"time"

	"dcer/internal/rule"
	"dcer/internal/telemetry"

	"dcer/internal/relation"
)

// minDrainJobsPerWorker is the smallest job chunk worth a goroutine of its
// own; batches fan out over at most ceil(jobs/minDrainJobsPerWorker)
// workers.
const minDrainJobsPerWorker = 8

// drainBatchCap bounds how many jobs a drain round materializes at once.
// Merging two large classes expands |Ca|·|Cb| cross pairs per id predicate;
// the sequential loop visited them in O(1) space, so the batched path must
// not hold them all either — it flushes full batches (in event order)
// before expanding further.
const drainBatchCap = 1 << 15

// drainJob is one seeded re-enumeration: rule br restarted with the
// seeding predicate p's variables bound to tuples tx and ty. Scope and
// relation compatibility are checked at expansion time, so every
// materialized job is real work.
type drainJob struct {
	br     *boundRule
	p      *rule.Pred
	tx, ty *relation.Tuple
}

// drain alternates dependency firing and update-driven re-evaluation until
// no new facts appear (the while-loop of algorithm Match). Each round is
// traced as a child span of the in-flight Deduce/IncDeduce root and —
// at debug level — emits one wide event carrying the engine's full knob
// state.
func (e *Engine) drain() {
	outer := e.curTC
	for round := 0; ; round++ {
		var rsp telemetry.Span
		if outer.Enabled() {
			rsp = outer.Start("chase.drain.round", telemetry.L("round", strconv.Itoa(round)))
			e.curTC = rsp.Context()
		}
		progressed := false
		e.rebudget()
		// Round boundary: every enumeration of the previous round has
		// joined, so plans may re-sort without a batch observing a
		// mid-flight order change.
		e.maybeResortPlans()
		if e.health != nil {
			// The same quiesced boundary serves the health layer: one
			// heartbeat per round for the stall watchdog, and a periodic
			// sampled audit of the engine's invariants.
			e.health.hb.Beat()
			if round > 0 && round%healthAuditEvery == 0 {
				e.auditHealth()
			}
		}
		// Lines 2-3 of IncDeduce: fire satisfied dependencies.
		fired := e.H.Fire(e.satisfied)
		for i := range fired {
			dp := &fired[i]
			e.cnt.depsFired.Add(1)
			var j *justification
			if e.prov != nil {
				j = firedJust(dp)
			}
			if e.applyFactJ(literalFact(dp.Head), j) {
				progressed = true
			}
		}
		// Lines 4-7: update-driven re-evaluation of valuations that
		// involve a new match or validated prediction.
		events := len(e.queue)
		if len(e.queue) > 0 {
			progressed = true
			if e.tel != nil {
				e.tel.queueDepth.Observe(uint64(len(e.queue)))
			}
			q := e.queue
			e.queue = nil
			e.processEvents(q)
		}
		if e.log.Level() <= telemetry.LogDebug {
			e.wideRound(round, len(fired), events)
		}
		rsp.End()
		if !progressed {
			if e.health != nil {
				// Fixpoint reached: audit unconditionally, so every
				// deduction ends with a fresh invariant pass even when it
				// took fewer than healthAuditEvery rounds.
				e.auditHealth()
			}
			e.curTC = outer
			return
		}
		e.cnt.rounds.Add(1)
	}
}

// processEvents expands a round's events into re-enumeration jobs and runs
// them batch-wise. Class merges expand their cross pairs here, lazily per
// id predicate in scope, instead of being materialized O(|Ca|·|Cb|) inside
// the event.
func (e *Engine) processEvents(q []event) {
	jobs := e.jobBuf[:0]
	for _, ev := range q {
		switch ev.kind {
		case FactMatch:
			for _, br := range e.rules {
				for _, p := range br.ids {
					for _, x := range ev.ma {
						for _, y := range ev.mb {
							jobs = e.addJob(jobs, br, p, x, y)
							jobs = e.addJob(jobs, br, p, y, x)
							if len(jobs) >= drainBatchCap {
								e.runJobs(jobs)
								jobs = jobs[:0]
							}
						}
					}
				}
			}
		case FactML:
			for _, br := range e.rules {
				for i := range br.mls {
					m := &br.mls[i]
					if !m.dynamic || m.pred.Model != ev.model {
						continue
					}
					jobs = e.addJob(jobs, br, m.pred, ev.a, ev.b)
					if len(jobs) >= drainBatchCap {
						e.runJobs(jobs)
						jobs = jobs[:0]
					}
				}
			}
		}
	}
	e.runJobs(jobs)
	e.jobBuf = jobs[:0]
}

// addJob appends the job (br, p, x, y) if it is viable: both tuples in the
// rule's scope, on the predicate's relations, and not a self pair under a
// single-variable predicate.
func (e *Engine) addJob(jobs []drainJob, br *boundRule, p *rule.Pred, x, y relation.TID) []drainJob {
	tx, ty := br.scope.Tuple(x), br.scope.Tuple(y)
	if tx == nil || ty == nil {
		return jobs
	}
	if tx.Rel != br.r.Vars[p.V1].RelIdx || ty.Rel != br.r.Vars[p.V2].RelIdx {
		return jobs
	}
	if p.V1 == p.V2 && x != y {
		return jobs
	}
	return append(jobs, drainJob{br: br, p: p, tx: tx, ty: ty})
}

// runJobs executes one batch, sequentially for small batches (or under
// Options.SequentialDrain), in parallel otherwise.
func (e *Engine) runJobs(jobs []drainJob) {
	if len(jobs) == 0 {
		return
	}
	if e.tel != nil {
		t0 := time.Now()
		defer func() {
			e.tel.drainBatchNs.ObserveDuration(time.Since(t0))
			e.tel.drainBatchJobs.Observe(uint64(len(jobs)))
		}()
	}
	if e.curTC.Enabled() {
		defer e.curTC.Start("chase.drain.batch",
			telemetry.L("jobs", strconv.Itoa(len(jobs)))).EndIf(fineSpanFloor)
	}
	min := e.opts.DrainParallelMin
	if min <= 0 {
		// By default the batched path is only taken when there is real
		// parallelism to buy: a buffered chunk cannot see the facts of
		// earlier jobs in its own batch and re-derives them, which a lone
		// processor pays for without any fan-out to show for it. An
		// explicit DrainParallelMin forces the batched path regardless
		// (A/B runs and the equivalence tests).
		if runtime.GOMAXPROCS(0) <= 1 {
			e.runJobsSequential(jobs)
			return
		}
		min = DefaultDrainParallelMin
	}
	if e.opts.SequentialDrain || len(jobs) < min {
		e.runJobsSequential(jobs)
		return
	}
	e.drainConcurrent(jobs)
}

// runJobsSequential runs the batch on the engine's live context, each job
// seeing the facts applied by the previous — the original drain order.
func (e *Engine) runJobsSequential(jobs []drainJob) {
	for i := range jobs {
		e.ctx.runSeed(&jobs[i])
	}
	e.flushCtxCounters(&e.ctx)
}

// drainConcurrent is the snapshot-enumerate-merge path: the batch is split
// into contiguous chunks, each enumerated by a goroutine holding its own
// buffered context against the frozen Γ; the buffered facts and
// dependencies are then merged in batch order, which keeps the engine
// deterministic. A chunk may buffer a dependency where the sequential
// drain (seeing an earlier chunk's fact) would have emitted the head
// directly; the merged facts queue their own events, so the update-driven
// path re-derives such heads in the next round even if H drops the
// dependency — the same invariant the bounded store relies on everywhere.
func (e *Engine) drainConcurrent(jobs []drainJob) {
	e.prebuildIndexes()
	nw := (len(jobs) + minDrainJobsPerWorker - 1) / minDrainJobsPerWorker
	if g := runtime.GOMAXPROCS(0); nw > g {
		nw = g
	}
	if nw <= 1 {
		// One slot: run buffered on the engine's reusable context against
		// the live union-find — a buffered pass never mutates Γ, so live
		// reads equal a snapshot — then merge. Same semantics as the
		// multi-worker path without the snapshot and goroutine overhead.
		for i := range jobs {
			e.bctx.runSeed(&jobs[i])
		}
		e.mergeCtx(&e.bctx)
		return
	}
	roots := e.frozenRoots()
	ctxs := make([]*evalCtx, 0, nw)
	chunk := (len(jobs) + nw - 1) / nw
	var wg sync.WaitGroup
	for lo := 0; lo < len(jobs); lo += chunk {
		hi := lo + chunk
		if hi > len(jobs) {
			hi = len(jobs)
		}
		ctx := &evalCtx{e: e, roots: roots, buffered: true}
		ctxs = append(ctxs, ctx)
		wg.Add(1)
		go func(ctx *evalCtx, part []drainJob) {
			defer wg.Done()
			deduceSem <- struct{}{}
			defer func() { <-deduceSem }()
			for i := range part {
				ctx.runSeed(&part[i])
			}
		}(ctx, jobs[lo:hi])
	}
	wg.Wait()
	for _, ctx := range ctxs {
		e.mergeCtx(ctx)
	}
}

// mergeCtx applies a buffered context's facts and dependencies to the
// engine and resets the context for reuse. Duplicate facts (deduced by
// several chunks against the same snapshot) coalesce in applyFact.
func (e *Engine) mergeCtx(ctx *evalCtx) {
	e.flushCtxCounters(ctx)
	for i, l := range ctx.facts {
		var j *justification
		if i < len(ctx.justs) {
			j = ctx.justs[i]
		}
		e.applyFactJ(literalFact(l), j)
	}
	for i := range ctx.deps {
		// The store copies the body into its own slab storage, so the
		// context's literal arena can be reused immediately after.
		d := &ctx.deps[i]
		if e.H.add(d.Body, d.Head, d.J) {
			e.cnt.depsRecorded.Add(1)
		}
	}
	ctx.facts = ctx.facts[:0]
	ctx.deps = ctx.deps[:0]
	ctx.justs = ctx.justs[:0]
	ctx.litArena = ctx.litArena[:0]
}
