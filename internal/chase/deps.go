package chase

import (
	"dcer/internal/fnv"
	"dcer/internal/relation"
)

// Literal is one id or ML literal appearing in a dependency of H.
type Literal struct {
	Kind  FactKind
	A, B  relation.TID
	Model string
}

// less orders literals for the normalized dependency bodies.
func (l Literal) less(o Literal) bool {
	if l.Kind != o.Kind {
		return l.Kind < o.Kind
	}
	if l.Model != o.Model {
		return l.Model < o.Model
	}
	if l.A != o.A {
		return l.A < o.A
	}
	return l.B < o.B
}

// hashInto folds the literal into an FNV-1a state.
func (l Literal) hashInto(h uint64) uint64 {
	h = fnv.Byte(h, byte(l.Kind))
	h = fnv.String(h, l.Model)
	h = fnv.Uint64(h, uint64(l.A))
	return fnv.Uint64(h, uint64(l.B))
}

// Dep is one dependency l1 ∧ ... ∧ ln → l of the store H (Section V-A,
// data structure (2)): whenever every body literal is valid, the head must
// be enforced. J carries the provenance evidence satisfied when the
// dependency was recorded (nil when capture is off); it is not part of the
// dependency's identity.
type Dep struct {
	Body []Literal
	Head Literal
	J    *justification
}

// key fingerprints the dependency with FNV-1a over its normalized body
// (the caller sorts) and head. The store treats equal fingerprints as
// duplicates; in the astronomically unlikely event of a collision the
// dropped dependency is recovered by the update-driven re-evaluation
// path, which never relies on H for correctness.
func (d *Dep) key() uint64 {
	h := uint64(fnv.Offset64)
	for _, l := range d.Body {
		h = l.hashInto(h)
		h = fnv.Byte(h, ';')
	}
	h = fnv.Byte(h, '>')
	return d.Head.hashInto(h)
}

// DepStore is the bounded dependency set H. Capacity K bounds memory;
// when full, new dependencies are dropped and correctness falls back to
// the update-driven re-evaluation path of IncDeduce. Whenever a head
// becomes validated, every dependency with that head is discarded
// (it "will no longer be checked later on").
type DepStore struct {
	cap     int
	deps    map[uint64]*Dep
	byHead  map[Literal][]uint64 // head -> dep keys
	dropped int
}

// NewDepStore creates a store with capacity k (k ≤ 0 means unbounded).
func NewDepStore(k int) *DepStore {
	return &DepStore{cap: k, deps: make(map[uint64]*Dep), byHead: make(map[Literal][]uint64)}
}

// Len returns the number of stored dependencies.
func (s *DepStore) Len() int { return len(s.deps) }

// Dropped returns how many dependencies were rejected for capacity.
func (s *DepStore) Dropped() int { return s.dropped }

// Add inserts a dependency unless it is a duplicate or the store is full.
// It reports whether the dependency is stored (true also for duplicates).
func (s *DepStore) Add(d *Dep) bool {
	k := d.key()
	if _, dup := s.deps[k]; dup {
		return true
	}
	if s.cap > 0 && len(s.deps) >= s.cap {
		s.dropped++
		return false
	}
	s.deps[k] = d
	s.byHead[d.Head] = append(s.byHead[d.Head], k)
	return true
}

// RemoveHead discards every dependency whose head is l.
func (s *DepStore) RemoveHead(l Literal) {
	for _, dk := range s.byHead[l] {
		delete(s.deps, dk)
	}
	delete(s.byHead, l)
}

// Fire scans the store and returns the dependencies whose bodies are
// fully satisfied according to sat; fired dependencies are removed (along
// with every other dependency sharing the same head). The full scan
// mirrors lines 2-3 of IncDeduce in the paper; H is bounded so the scan
// is cheap. The *Dep is returned (not just the head) so the caller can
// reconstruct the derivation's justification from the stored evidence.
func (s *DepStore) Fire(sat func(Literal) bool) []*Dep {
	var fired []*Dep
	for _, d := range s.deps {
		ok := true
		for _, l := range d.Body {
			if !sat(l) {
				ok = false
				break
			}
		}
		if ok {
			fired = append(fired, d)
		}
	}
	for _, d := range fired {
		s.RemoveHead(d.Head)
	}
	return fired
}
