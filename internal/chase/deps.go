package chase

import (
	"sort"
	"sync"
	"sync/atomic"

	"dcer/internal/fnv"
	"dcer/internal/relation"
)

// Literal is one id or ML literal appearing in a dependency of H. The
// classifier name of an ML literal is held as an index into the
// process-wide model table, packing a literal into 12 bytes — H holds
// hundreds of thousands of these at million-tuple scale, so the
// per-literal string header is the difference between H fitting a
// memory budget and not.
type Literal struct {
	A, B  relation.TID
	model uint16
	Kind  FactKind
}

// mlLit builds an ML-prediction literal, interning the model name.
func mlLit(model string, a, b relation.TID) Literal {
	return Literal{Kind: FactML, A: a, B: b, model: internModel(model)}
}

// matchLit builds an id-match literal.
func matchLit(a, b relation.TID) Literal {
	return Literal{Kind: FactMatch, A: a, B: b}
}

// ModelName resolves the classifier name of an ML literal ("" for a
// match literal).
func (l Literal) ModelName() string { return modelName(l.model) }

// modelTab interns ML model names process-wide. A ruleset references a
// handful of classifiers, so the table stays tiny and is never pruned;
// reads go through an atomically published slice so the chase hot path
// never takes the lock.
var modelTab = struct {
	mu    sync.Mutex
	idx   map[string]uint16
	names atomic.Pointer[[]string]
}{idx: map[string]uint16{"": 0}}

func init() {
	names := []string{""}
	modelTab.names.Store(&names)
}

func internModel(s string) uint16 {
	if s == "" {
		return 0
	}
	names := *modelTab.names.Load()
	// Fast path: linear scan of the published table — it holds a handful
	// of entries and stays resident in cache.
	for i, n := range names {
		if n == s {
			return uint16(i)
		}
	}
	modelTab.mu.Lock()
	defer modelTab.mu.Unlock()
	if i, ok := modelTab.idx[s]; ok {
		return i
	}
	old := *modelTab.names.Load()
	i := uint16(len(old))
	modelTab.idx[s] = i
	next := append(append(make([]string, 0, len(old)+1), old...), s)
	modelTab.names.Store(&next)
	return i
}

func modelName(i uint16) string { return (*modelTab.names.Load())[i] }

// less orders literals for the normalized dependency bodies. ML
// literals compare by model name (not table index) so body order — and
// therefore dependency fingerprints and provenance output — does not
// depend on interning order.
func (l Literal) less(o Literal) bool {
	if l.Kind != o.Kind {
		return l.Kind < o.Kind
	}
	if l.model != o.model {
		return l.ModelName() < o.ModelName()
	}
	if l.A != o.A {
		return l.A < o.A
	}
	return l.B < o.B
}

// hashInto folds the literal into an FNV-1a state.
func (l Literal) hashInto(h uint64) uint64 {
	h = fnv.Byte(h, byte(l.Kind))
	h = fnv.String(h, modelName(l.model))
	h = fnv.Uint64(h, uint64(l.A))
	return fnv.Uint64(h, uint64(l.B))
}

// Dep is one dependency l1 ∧ ... ∧ ln → l of the store H (Section V-A,
// data structure (2)): whenever every body literal is valid, the head must
// be enforced. J carries the provenance evidence satisfied when the
// dependency was recorded (nil when capture is off); it is not part of the
// dependency's identity.
type Dep struct {
	Body []Literal
	Head Literal
	J    *justification

	// seq distinguishes reincarnations of a recycled slab slot, so stale
	// insertion-order entries are skipped instead of evicting a newcomer.
	seq uint64
}

// depKey fingerprints a dependency with FNV-1a over its normalized body
// (the caller sorts) and head. The store treats equal fingerprints as
// duplicates; in the astronomically unlikely event of a collision the
// dropped dependency is recovered by the update-driven re-evaluation
// path, which never relies on H for correctness.
func depKey(body []Literal, head Literal) uint64 {
	h := uint64(fnv.Offset64)
	for _, l := range body {
		h = l.hashInto(h)
		h = fnv.Byte(h, ';')
	}
	h = fnv.Byte(h, '>')
	return head.hashInto(h)
}

// key fingerprints the dependency. See depKey.
func (d *Dep) key() uint64 { return depKey(d.Body, d.Head) }

// Byte-accounting constants: a stored dependency costs roughly one Dep
// struct, a cell in the deps map, a cell (amortized) in byHead, and one
// insertion-order entry; each body literal costs one Literal slot. The
// estimates only steer the byte budget — they are deliberately on the
// generous side so a budgeted store undershoots rather than overshoots.
const (
	depSlab       = 512 // Deps per slab chunk (stable pointers)
	depFixedBytes = 176
	depLitBytes   = 16
)

// fifoEnt is one insertion-order record; key resolves through the deps
// map at eviction time and seq guards against recycled slots.
type fifoEnt struct {
	key uint64
	seq uint64
}

// DepStore is the bounded dependency set H. Capacity K bounds the entry
// count and ByteBudget bounds the resident bytes; when either bound is
// hit, dependencies are shed (newcomers dropped at the count bound,
// oldest entries evicted at the byte bound) and correctness falls back to
// the update-driven re-evaluation path of IncDeduce. Whenever a head
// becomes validated, every dependency with that head is discarded
// (it "will no longer be checked later on").
//
// Dep structs live in slab chunks and their body buffers are recycled
// across insert/remove cycles, so a chase run allocates O(peak resident
// deps) for H rather than O(deps ever recorded).
type DepStore struct {
	cap     int
	budget  int64 // resident-byte bound; 0 = unbounded
	bytes   int64 // current estimated resident bytes
	deps    map[uint64]*Dep
	byHead  map[Literal][]uint64 // head -> dep keys
	dropped int
	evicted int

	slabs  [][]Dep
	free   []*Dep
	fifo   []fifoEnt // insertion order; may carry stale entries
	fifoLo int
	seq    uint64
}

// NewDepStore creates a store with capacity k (k ≤ 0 means unbounded).
func NewDepStore(k int) *DepStore {
	return &DepStore{cap: k, deps: make(map[uint64]*Dep), byHead: make(map[Literal][]uint64)}
}

// SetByteBudget bounds the store's estimated resident bytes; inserting
// past the bound evicts the oldest dependencies first (spill-to-
// regeneration: the update-driven path re-derives anything evicted that
// still matters). n ≤ 0 removes the bound.
func (s *DepStore) SetByteBudget(n int64) {
	if n < 0 {
		n = 0
	}
	s.budget = n
}

// Len returns the number of stored dependencies.
func (s *DepStore) Len() int { return len(s.deps) }

// Dropped returns how many dependencies were rejected for capacity.
func (s *DepStore) Dropped() int { return s.dropped }

// Evicted returns how many resident dependencies were displaced by the
// byte budget to make room for newer ones.
func (s *DepStore) Evicted() int { return s.evicted }

// MemBytes returns the store's estimated resident bytes.
func (s *DepStore) MemBytes() int64 { return s.bytes }

// auditBytes recomputes the per-entry byte estimate over up to max
// resident dependencies (map order: arbitrary but unbiased) and returns
// how many were sampled and their summed bytes. The health auditor
// compares the sum against the incrementally maintained account — exact
// equality when the sample covers the whole store.
func (s *DepStore) auditBytes(max int) (sampled int, bytes int64) {
	for _, d := range s.deps {
		if sampled >= max {
			break
		}
		sampled++
		bytes += int64(depFixedBytes + cap(d.Body)*depLitBytes)
	}
	return sampled, bytes
}

// Add inserts a dependency unless it is a duplicate or the store is full.
// It reports whether the dependency is stored (true also for duplicates).
// The store copies the body into its own storage; the argument is not
// retained.
func (s *DepStore) Add(d *Dep) bool { return s.add(d.Body, d.Head, d.J) }

// add is the allocation-free insert path: body is copied into a recycled
// slab slot, so callers may pass scratch buffers.
func (s *DepStore) add(body []Literal, head Literal, j *justification) bool {
	k := depKey(body, head)
	if _, dup := s.deps[k]; dup {
		return true
	}
	if s.cap > 0 && len(s.deps) >= s.cap {
		s.dropped++
		return false
	}
	if s.budget > 0 {
		need := int64(depFixedBytes + len(body)*depLitBytes)
		for s.bytes+need > s.budget && s.evictOldest() {
		}
		if s.bytes+need > s.budget {
			s.dropped++
			return false
		}
	}
	d := s.alloc()
	d.Body = append(d.Body[:0], body...)
	d.Head = head
	d.J = j
	s.seq++
	d.seq = s.seq
	s.deps[k] = d
	s.byHead[head] = append(s.byHead[head], k)
	s.fifo = append(s.fifo, fifoEnt{key: k, seq: d.seq})
	s.bytes += int64(depFixedBytes + cap(d.Body)*depLitBytes)
	return true
}

// alloc hands out a Dep slot: a recycled one (body capacity retained) if
// available, else the next cell of the current slab chunk.
func (s *DepStore) alloc() *Dep {
	if n := len(s.free); n > 0 {
		d := s.free[n-1]
		s.free = s.free[:n-1]
		return d
	}
	if len(s.slabs) == 0 || len(s.slabs[len(s.slabs)-1]) == cap(s.slabs[len(s.slabs)-1]) {
		s.slabs = append(s.slabs, make([]Dep, 0, depSlab))
	}
	sl := &s.slabs[len(s.slabs)-1]
	*sl = append(*sl, Dep{})
	return &(*sl)[len(*sl)-1]
}

// release returns a slot to the free list, dropping references the GC
// cares about but keeping the body buffer for the next occupant.
func (s *DepStore) release(d *Dep) {
	s.bytes -= int64(depFixedBytes + cap(d.Body)*depLitBytes)
	d.Body = d.Body[:0]
	d.J = nil
	s.free = append(s.free, d)
}

// evictOldest removes the oldest resident dependency, skipping stale
// insertion-order entries. It reports whether anything was evicted.
func (s *DepStore) evictOldest() bool {
	for s.fifoLo < len(s.fifo) {
		ent := s.fifo[s.fifoLo]
		s.fifoLo++
		if s.fifoLo > 1024 && s.fifoLo > len(s.fifo)/2 {
			s.fifo = append(s.fifo[:0], s.fifo[s.fifoLo:]...)
			s.fifoLo = 0
		}
		d, ok := s.deps[ent.key]
		if !ok || d.seq != ent.seq {
			continue // the slot was removed or recycled since insertion
		}
		s.removeKey(ent.key, d)
		s.evicted++
		return true
	}
	return false
}

// removeKey unlinks one dependency from the maps and recycles its slot.
func (s *DepStore) removeKey(k uint64, d *Dep) {
	delete(s.deps, k)
	keys := s.byHead[d.Head]
	for i, dk := range keys {
		if dk == k {
			keys[i] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
			break
		}
	}
	if len(keys) == 0 {
		delete(s.byHead, d.Head)
	} else {
		s.byHead[d.Head] = keys
	}
	s.release(d)
}

// RemoveHead discards every dependency whose head is l.
func (s *DepStore) RemoveHead(l Literal) {
	for _, dk := range s.byHead[l] {
		if d, ok := s.deps[dk]; ok {
			delete(s.deps, dk)
			s.release(d)
		}
	}
	delete(s.byHead, l)
}

// Fire scans the store and returns the dependencies whose bodies are
// fully satisfied according to sat, in insertion order; fired
// dependencies are removed (along with every other dependency sharing
// the same head). The full scan mirrors lines 2-3 of IncDeduce in the
// paper; H is bounded so the scan is cheap. The whole Dep is returned
// (not just the head) so the caller can reconstruct the derivation's
// justification from the stored evidence. The returned entries are value
// copies whose body buffers stay intact until a later Add recycles the
// freed slots, so consume them before inserting again.
//
// The insertion-order sort matters for determinism: the scan walks a Go
// map, and when two fired heads land in the same union-find class only
// the first applied becomes a Γ fact — map iteration order must not pick
// the winner.
func (s *DepStore) Fire(sat func(Literal) bool) []Dep {
	var fired []Dep
	for _, d := range s.deps {
		ok := true
		for _, l := range d.Body {
			if !sat(l) {
				ok = false
				break
			}
		}
		if ok {
			fired = append(fired, *d)
		}
	}
	sort.Slice(fired, func(i, j int) bool { return fired[i].seq < fired[j].seq })
	for i := range fired {
		s.RemoveHead(fired[i].Head)
	}
	return fired
}
