package chase

import (
	"strconv"
	"strings"

	"dcer/internal/relation"
)

// Literal is one id or ML literal appearing in a dependency of H.
type Literal struct {
	Kind  FactKind
	A, B  relation.TID
	Model string
}

func (l Literal) key() string {
	var b strings.Builder
	if l.Kind == FactMatch {
		b.WriteString("m:")
	} else {
		b.WriteString("v:")
		b.WriteString(l.Model)
		b.WriteByte(':')
	}
	b.WriteString(strconv.Itoa(int(l.A)))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(int(l.B)))
	return b.String()
}

// Dep is one dependency l1 ∧ ... ∧ ln → l of the store H (Section V-A,
// data structure (2)): whenever every body literal is valid, the head must
// be enforced.
type Dep struct {
	Body []Literal
	Head Literal
}

func (d *Dep) key() string {
	parts := make([]string, 0, len(d.Body)+1)
	for _, l := range d.Body {
		parts = append(parts, l.key())
	}
	// Body literal order is normalized by the caller (recordDep sorts).
	parts = append(parts, "->", d.Head.key())
	return strings.Join(parts, ";")
}

// DepStore is the bounded dependency set H. Capacity K bounds memory;
// when full, new dependencies are dropped and correctness falls back to
// the update-driven re-evaluation path of IncDeduce. Whenever a head
// becomes validated, every dependency with that head is discarded
// (it "will no longer be checked later on").
type DepStore struct {
	cap     int
	deps    map[string]*Dep
	byHead  map[string][]string // head key -> dep keys
	dropped int
}

// NewDepStore creates a store with capacity k (k ≤ 0 means unbounded).
func NewDepStore(k int) *DepStore {
	return &DepStore{cap: k, deps: make(map[string]*Dep), byHead: make(map[string][]string)}
}

// Len returns the number of stored dependencies.
func (s *DepStore) Len() int { return len(s.deps) }

// Dropped returns how many dependencies were rejected for capacity.
func (s *DepStore) Dropped() int { return s.dropped }

// Add inserts a dependency unless it is a duplicate or the store is full.
// It reports whether the dependency is stored (true also for duplicates).
func (s *DepStore) Add(d *Dep) bool {
	k := d.key()
	if _, dup := s.deps[k]; dup {
		return true
	}
	if s.cap > 0 && len(s.deps) >= s.cap {
		s.dropped++
		return false
	}
	s.deps[k] = d
	hk := d.Head.key()
	s.byHead[hk] = append(s.byHead[hk], k)
	return true
}

// RemoveHead discards every dependency whose head is l.
func (s *DepStore) RemoveHead(l Literal) {
	hk := l.key()
	for _, dk := range s.byHead[hk] {
		delete(s.deps, dk)
	}
	delete(s.byHead, hk)
}

// Fire scans the store and returns the heads of all dependencies whose
// bodies are fully satisfied according to sat; fired dependencies are
// removed (along with every other dependency sharing the same head).
// The full scan mirrors lines 2-3 of IncDeduce in the paper; H is bounded
// so the scan is cheap.
func (s *DepStore) Fire(sat func(Literal) bool) []Literal {
	var heads []Literal
	for _, d := range s.deps {
		ok := true
		for _, l := range d.Body {
			if !sat(l) {
				ok = false
				break
			}
		}
		if ok {
			heads = append(heads, d.Head)
		}
	}
	for _, h := range heads {
		s.RemoveHead(h)
	}
	return heads
}
