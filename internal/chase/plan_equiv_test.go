package chase_test

import (
	"reflect"
	"testing"

	"dcer/internal/chase"
	"dcer/internal/dmatch"
	"dcer/internal/mlpred"
	"dcer/internal/relation"
	"dcer/internal/rule"
)

// gammaOf runs a fresh engine over (d, rules) with opts and returns Γ.
func gammaOf(t *testing.T, d *relation.Dataset, rules []*rule.Rule, reg *mlpred.Registry, opts chase.Options) *chase.Gamma {
	t.Helper()
	eng, err := chase.New(d, rules, reg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng.Run()
}

// TestPlanGammaEquivalence is the compiled-plan determinism property: on
// random rules and datasets, Γ — the exact fact log, not just the final
// equivalence classes — must be byte-identical between the interpreter
// (Options.InterpretRules) and the compiled plans, under the sequential
// and the batched/parallel drain, with and without aggressive adaptive
// reordering (PlanResortMinEvals: 1 re-sorts at every round boundary).
func TestPlanGammaEquivalence(t *testing.T) {
	reg := mlpred.DefaultRegistry()
	seeds := int64(40)
	if testing.Short() {
		seeds = 10
	}
	modes := []struct {
		name string
		opts chase.Options
	}{
		{"seq", chase.Options{ShareIndexes: true, SequentialDeduce: true, SequentialDrain: true}},
		{"conc", chase.Options{ShareIndexes: true}},
		{"conc/batched-drain", chase.Options{ShareIndexes: true, DrainParallelMin: 1}},
		{"noMQO", chase.Options{ShareIndexes: false, DrainParallelMin: 1}},
	}
	for seed := int64(200); seed < 200+seeds; seed++ {
		d, rules, err := randomInstance(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, m := range modes {
			interp := m.opts
			interp.InterpretRules = true
			want := gammaOf(t, d, rules, reg, interp)

			planned := m.opts
			got := gammaOf(t, d, rules, reg, planned)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d mode %s: Γ differs between interpreter and compiled plans\nrules:\n%s",
					seed, m.name, rulesOf(rules))
			}

			eager := m.opts
			eager.PlanResortMinEvals = 1
			got = gammaOf(t, d, rules, reg, eager)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d mode %s: Γ differs under per-round adaptive reordering\nrules:\n%s",
					seed, m.name, rulesOf(rules))
			}
		}
	}
}

// TestPlanDMatchEquivalence extends the property to the parallel BSP
// engine: the deduplicated global fact sets must be identical between
// interpreter and compiled-plan worker engines for w ∈ {1, 4}.
func TestPlanDMatchEquivalence(t *testing.T) {
	reg := mlpred.DefaultRegistry()
	seeds := int64(16)
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(300); seed < 300+seeds; seed++ {
		d, rules, err := randomInstance(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, workers := range []int{1, 4} {
			run := func(interpret bool) *dmatch.Result {
				res, err := dmatch.Run(d, rules, reg, dmatch.Options{
					Workers:        workers,
					InterpretRules: interpret,
					// Eager reordering inside every worker engine, so the
					// parallel path also exercises mid-run re-sorts.
					PlanResortMinEvals: 1,
				})
				if err != nil {
					t.Fatalf("seed %d w=%d interpret=%v: %v", seed, workers, interpret, err)
				}
				return res
			}
			want, got := run(true), run(false)
			if !reflect.DeepEqual(want.Matches, got.Matches) || !reflect.DeepEqual(want.Validated, got.Validated) {
				t.Fatalf("seed %d w=%d: global Γ differs between interpreter and compiled plans\nrules:\n%s",
					seed, workers, rulesOf(rules))
			}
		}
	}
}

// TestPlanAdaptiveReorderEquivalence forces an adaptive reorder: the
// static seed order (const before intra) is maximally anti-selective —
// the constant never fails, the intra-tuple equality almost always does —
// so the first round boundary must re-sort the program, and Γ must still
// equal the interpreter's.
func TestPlanAdaptiveReorderEquivalence(t *testing.T) {
	str := relation.TypeString
	a := func(n string) relation.Attribute { return relation.Attribute{Name: n, Type: str} }
	db := relation.MustDatabase(relation.MustSchema("P", "pk", a("pk"), a("x"), a("y")))
	build := func() *relation.Dataset {
		d := relation.NewDataset(db)
		ys := []string{"u", "a1", "a2", "a3", "a4", "a5", "a6", "a7"}
		for i := 0; i < 64; i++ {
			y := ys[i%len(ys)] // every 8th tuple has y = "u"
			d.MustAppend("P", relation.S(string(rune('A'+i/26))+string(rune('a'+i%26))), relation.S("u"), relation.S(y))
		}
		return d
	}
	rules, err := rule.ParseResolved(
		"anti: P(a) ^ P(b) ^ a.x = \"u\" ^ a.x = a.y ^ a.y = b.y -> a.id = b.id\n", db)
	if err != nil {
		t.Fatal(err)
	}
	reg := mlpred.DefaultRegistry()

	interp, err := chase.New(build(), rules, reg, chase.Options{ShareIndexes: true, InterpretRules: true})
	if err != nil {
		t.Fatal(err)
	}
	want := interp.Run()

	eng, err := chase.New(build(), rules, reg, chase.Options{ShareIndexes: true, PlanResortMinEvals: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := eng.Run()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("Γ differs between interpreter and compiled plans under forced reorder")
	}
	if n := eng.Stats().PlanReorders; n < 1 {
		t.Fatalf("PlanReorders = %d, want >= 1 (anti-selective static order must trigger a re-sort)", n)
	}
	// The re-sorted program must rank the near-always-failing intra check
	// before the never-failing constant.
	rep := eng.PlanReport()
	preds := rep.Rules[0].Vars[0].Preds
	if len(preds) < 2 || preds[0].Kind != "intra" {
		t.Fatalf("re-sorted program does not lead with the intra check: %+v", preds)
	}
	if interp.Stats().PlanReorders != 0 {
		t.Fatalf("interpreter mode must never reorder")
	}
}
