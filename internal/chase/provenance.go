package chase

// Provenance capture inside the production chase. Every fact enters Γ
// through applyFactJ (engine.go); when Options.Provenance is set, the
// justification carried alongside the fact — built at emit time from the
// satisfied body predicates of the deriving valuation, or reconstructed
// at dependency-fire time from the stored Dep — is converted to a
// provenance.Entry and recorded. When capture is off every justification
// pointer is nil and the valuation hot path allocates nothing.

import (
	"dcer/internal/provenance"
	"dcer/internal/relation"
	"dcer/internal/unionfind"
)

// justification is the chase-internal evidence of one rule application:
// which rule fired on which valuation, which facts of Γ satisfied its
// dynamic body predicates (deps), and which ML predicate outcomes it
// consumed directly from the classifiers (checks). For a valuation parked
// in H it holds the evidence satisfied at emit time; the dependency's
// body supplies the rest when it fires.
type justification struct {
	origin    provenance.Origin
	rule      string
	valuation []relation.TID
	deps      []Literal
	checks    []provenance.MLCheck
}

// justArena batch-allocates justifications and their evidence slices.
// Dependencies vastly outnumber derived facts and every dependency
// carries a justification, so per-justification heap allocation is the
// dominant capture cost; the arena amortizes it to one slab allocation
// per justSlabSize justifications plus the doubling growth of the three
// shared evidence buffers. Evidence sub-slices are taken with full-slice
// expressions, so when an arena buffer grows, justifications built
// earlier keep the previous backing array alive and are never aliased
// by later appends. The arena retains all evidence for the life of its
// context — including justifications of dependencies later discarded —
// which a provenance-enabled run accepts: the log it feeds retains
// comparable state anyway, and a disabled run never touches the arena.
type justArena struct {
	slab   []justification
	vals   []relation.TID
	deps   []Literal
	checks []provenance.MLCheck
}

const justSlabSize = 256

// alloc returns a zeroed justification from the current slab, starting a
// fresh slab when full. Pointers into previous slabs stay valid.
func (a *justArena) alloc() *justification {
	if len(a.slab) == cap(a.slab) {
		a.slab = make([]justification, 0, justSlabSize)
	}
	a.slab = a.slab[:len(a.slab)+1]
	return &a.slab[len(a.slab)-1]
}

// factID converts an engine fact to its provenance identity.
func factID(f Fact) provenance.FactID {
	if f.Kind == FactMatch {
		return provenance.MatchID(f.A, f.B)
	}
	return provenance.MLID(f.Model, f.A, f.B)
}

// literalID converts a dependency literal to its provenance identity.
func literalID(l Literal) provenance.FactID {
	if l.Kind == FactMatch {
		return provenance.MatchID(l.A, l.B)
	}
	return provenance.MLID(l.ModelName(), l.A, l.B)
}

// recordProvenance logs the derivation of a newly applied fact. A nil
// justification means the fact arrived without a rule application — an
// external input or a ΔD duplicate-id merge — and is labeled with the
// engine's current provOrigin.
func (e *Engine) recordProvenance(f Fact, j *justification) {
	en := provenance.Entry{Fact: factID(f)}
	if j == nil {
		en.Origin = e.provOrigin
	} else {
		en.Origin = j.origin
		en.Rule = j.rule
		en.Valuation = j.valuation
		if len(j.deps) > 0 {
			ids := make([]provenance.FactID, len(j.deps))
			for i, l := range j.deps {
				ids[i] = literalID(l)
			}
			en.Deps = ids
		}
		en.Checks = j.checks
	}
	e.prov.Record(en)
}

// litIn reports whether l is one of the literals in ls. Dependency
// bodies hold at most a handful of literals, so a linear scan wins.
func litIn(ls []Literal, l Literal) bool {
	for _, x := range ls {
		if x == l {
			return true
		}
	}
	return false
}

// buildJust captures the evidence of the current complete valuation: the
// rule, the bound tuple ids, the dynamic body predicates satisfied
// through Γ (deps), and the ML outcomes consumed from the classifiers
// (checks). It runs inside emit, after the unsatisfied literals of the
// valuation were collected into c.unsat, and re-derives nothing: a
// static ML predicate is positive by construction of the binding
// (checkNewBinding enforced it), and a dynamic id or ML predicate is
// satisfied exactly when its literal is absent from c.unsat — so
// capture costs no union-find or pair-cache probes. Unsatisfied
// predicates contribute nothing; they form the body of the dependency
// parked in H and join the justification when it fires.
func (c *evalCtx) buildJust() *justification {
	br, binding, ar, unsat := c.br, c.binding, &c.arena, c.unsat
	j := ar.alloc()
	j.origin = provenance.OriginRule
	j.rule = br.r.Name
	vstart := len(ar.vals)
	for _, t := range binding {
		ar.vals = append(ar.vals, t.GID)
	}
	j.valuation = ar.vals[vstart:len(ar.vals):len(ar.vals)]
	dstart := len(ar.deps)
	for _, p := range br.ids {
		ta, tb := binding[p.V1], binding[p.V2]
		if ta == tb {
			continue
		}
		x, y := ta.GID, tb.GID
		if y < x {
			x, y = y, x
		}
		l := matchLit(x, y)
		if litIn(unsat, l) {
			continue
		}
		ar.deps = append(ar.deps, l)
	}
	cstart := len(ar.checks)
	for i := range br.mls {
		m := &br.mls[i]
		p := m.pred
		ta, tb := binding[p.V1], binding[p.V2]
		if m.dynamic {
			if c.e.validated[mlKey{p.Model, ta.GID, tb.GID}] {
				ar.deps = append(ar.deps, mlLit(p.Model, ta.GID, tb.GID))
				continue
			}
			if litIn(unsat, mlLit(p.Model, ta.GID, tb.GID)) {
				continue
			}
		}
		ar.checks = append(ar.checks, provenance.MLCheck{Model: p.Model, A: ta.GID, B: tb.GID, Positive: true})
	}
	if dstart < len(ar.deps) {
		j.deps = ar.deps[dstart:len(ar.deps):len(ar.deps)]
	}
	if cstart < len(ar.checks) {
		j.checks = ar.checks[cstart:len(ar.checks):len(ar.checks)]
	}
	return j
}

// firedJust reconstructs the justification of a dependency fired from H:
// the emit-time evidence stored on the Dep plus the body literals that
// have since entered Γ. A Dep recorded before capture was enabled has no
// stored evidence; its body alone still names the prerequisite facts.
func firedJust(d *Dep) *justification {
	j := &justification{origin: provenance.OriginDep}
	if d.J != nil {
		j.rule = d.J.rule
		j.valuation = d.J.valuation
		j.checks = d.J.checks
		j.deps = append(append([]Literal(nil), d.J.deps...), d.Body...)
	} else {
		j.deps = append([]Literal(nil), d.Body...)
	}
	return j
}

// Provenance returns the engine's justification log (nil when capture is
// off).
func (e *Engine) Provenance() *provenance.Log { return e.prov }

// BaseEquivalence returns the pre-chase id equivalence of the engine's
// dataset — literal id-value duplicates merged, no deduced matches — the
// base a proof extraction replays recorded entries on top of.
func (e *Engine) BaseEquivalence() *unionfind.UnionFind {
	return BuildEquivalence(e.d, nil)
}

// Proof extracts a justification of the pair (a, b) from the engine's
// log: a minimal subsequence of recorded derivations, in derivation
// order, sufficient to match the pair. It returns
// provenance.ErrNotEntailed when the pair is not matched and
// provenance.ErrIncomplete when capture was off or the log overflowed.
func (e *Engine) Proof(a, b relation.TID) ([]provenance.Entry, error) {
	return e.prov.Proof([2]relation.TID{a, b}, e.BaseEquivalence())
}
