package chase_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dcer/internal/chase"
	"dcer/internal/complexity"
	"dcer/internal/dmatch"
	"dcer/internal/mlpred"
	"dcer/internal/relation"
	"dcer/internal/rule"
)

// randomInstance builds a small random dataset over a fixed 3-relation
// schema with tiny value domains (to force collisions) and a random rule
// set mixing equality, constant, id and ML predicates — deep, collective,
// or both.
func randomInstance(seed int64) (*relation.Dataset, []*rule.Rule, error) {
	rng := rand.New(rand.NewSource(seed))
	str := relation.TypeString
	a := func(n string) relation.Attribute { return relation.Attribute{Name: n, Type: str} }
	db := relation.MustDatabase(
		relation.MustSchema("P", "pk", a("pk"), a("x"), a("y"), a("ref")),
		relation.MustSchema("Q", "qk", a("qk"), a("x"), a("y"), a("ref")),
		relation.MustSchema("R", "rk", a("rk"), a("x"), a("y"), a("ref")),
	)
	d := relation.NewDataset(db)
	names := []string{"P", "Q", "R"}
	vals := []string{"u", "v", "w"} // tiny domain: plenty of collisions
	size := 6 + rng.Intn(10)
	for _, rel := range names {
		for i := 0; i < size; i++ {
			d.MustAppend(rel,
				relation.S(fmt.Sprintf("%s%d", rel, i)),
				relation.S(vals[rng.Intn(len(vals))]),
				relation.S(vals[rng.Intn(len(vals))]),
				relation.S(fmt.Sprintf("%s%d", names[rng.Intn(3)], rng.Intn(size))))
		}
	}
	attrs := []string{"x", "y"}
	var rulesText string
	numRules := 2 + rng.Intn(4)
	for ri := 0; ri < numRules; ri++ {
		relA := names[rng.Intn(3)]
		relB := names[rng.Intn(3)]
		body := ""
		// 1-2 equality predicates between a and b.
		for k := 0; k <= rng.Intn(2); k++ {
			body += fmt.Sprintf(" ^ a.%s = b.%s", attrs[rng.Intn(2)], attrs[rng.Intn(2)])
		}
		extra := ""
		switch rng.Intn(4) {
		case 0: // constant predicate
			body += fmt.Sprintf(" ^ a.x = %q", vals[rng.Intn(len(vals))])
		case 1: // ML predicate (threshold similarity on small strings)
			body += " ^ lev080(a.y, b.y)"
		case 2: // deep: id predicate over a third pair of variables
			relC := names[rng.Intn(3)]
			extra = fmt.Sprintf(" ^ %s(c) ^ %s(e) ^ a.ref = c.%sk ^ b.ref = e.%sk ^ c.id = e.id",
				relC, relC, lower(relC), lower(relC))
		case 3: // collective join through a third variable
			relC := names[rng.Intn(3)]
			extra = fmt.Sprintf(" ^ %s(c) ^ a.ref = c.%sk ^ c.x = b.y", relC, lower(relC))
		}
		rulesText += fmt.Sprintf("r%d: %s(a) ^ %s(b)%s%s -> a.id = b.id\n",
			ri, relA, relB, body, extra)
	}
	rules, err := rule.ParseResolved(rulesText, db)
	return d, rules, err
}

func lower(s string) string { return string(s[0] + 32) }

// TestEngineMatchesNaiveOracle cross-validates the optimized engine
// against the brute-force reference chase on many random instances: the
// final equivalence relations must be identical.
func TestEngineMatchesNaiveOracle(t *testing.T) {
	reg := mlpred.DefaultRegistry()
	seeds := int64(60)
	if testing.Short() {
		seeds = 15
	}
	for seed := int64(0); seed < seeds; seed++ {
		d, rules, err := randomInstance(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		naive, err := complexity.NaiveChase(d, rules, reg)
		if err != nil {
			t.Fatalf("seed %d: naive: %v", seed, err)
		}
		for _, opts := range []chase.Options{
			{ShareIndexes: true},
			{ShareIndexes: false},
			{ShareIndexes: true, MaxDeps: 1},
			{ShareIndexes: true, MaxDeps: -1},
		} {
			eng, err := chase.New(d, rules, reg, opts)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			eng.Run()
			for i := 0; i < d.Size(); i++ {
				for j := i + 1; j < d.Size(); j++ {
					a, b := relation.TID(i), relation.TID(j)
					if eng.Same(a, b) != naive.Same(a, b) {
						t.Fatalf("seed %d opts %+v: engine and oracle disagree on (%d,%d): engine=%v oracle=%v\nrules:\n%s",
							seed, opts, i, j, eng.Same(a, b), naive.Same(a, b), rulesOf(rules))
					}
				}
			}
		}
	}
}

// TestParallelMatchesNaiveOracle extends the cross-validation to the
// parallel BSP engine with random worker counts.
func TestParallelMatchesNaiveOracle(t *testing.T) {
	reg := mlpred.DefaultRegistry()
	seeds := int64(30)
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(100); seed < 100+seeds; seed++ {
		d, rules, err := randomInstance(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		naive, err := complexity.NaiveChase(d, rules, reg)
		if err != nil {
			t.Fatalf("seed %d: naive: %v", seed, err)
		}
		workers := 2 + int(seed%5)
		res, err := dmatch.Run(d, rules, reg, dmatch.Options{Workers: workers})
		if err != nil {
			t.Fatalf("seed %d: dmatch: %v", seed, err)
		}
		for i := 0; i < d.Size(); i++ {
			for j := i + 1; j < d.Size(); j++ {
				a, b := relation.TID(i), relation.TID(j)
				if res.Same(a, b) != naive.Same(a, b) {
					t.Fatalf("seed %d n=%d: parallel and oracle disagree on (%d,%d)\nrules:\n%s",
						seed, workers, i, j, rulesOf(rules))
				}
			}
		}
	}
}

func rulesOf(rules []*rule.Rule) string {
	out := ""
	for _, r := range rules {
		out += r.String() + "\n"
	}
	return out
}
