package chase

import (
	"dcer/internal/relation"
	"dcer/internal/rule"
)

// evalCtx carries the mutable state of one rule enumeration: the scratch
// buffers reused across valuations and, in the concurrent first pass of
// Deduce, the per-goroutine result buffers and the frozen view of Γ.
//
// The sequential path reuses a single context owned by the engine and
// applies facts directly; the concurrent pass gives each rule goroutine
// its own context so the enumerations share no mutable state (the engine
// structures they read — validated set, indexes, scopes — are frozen for
// the duration of the pass) and are merged deterministically afterwards.
type evalCtx struct {
	e  *Engine
	br *boundRule

	// roots freezes the id-equivalence relation: when non-nil, Same is
	// answered from this snapshot instead of the engine's union-find
	// (whose Find path-compresses and must not run under concurrent
	// readers).
	roots []int32

	// buffered redirects emitted facts and dependencies into the context
	// instead of applying them to the engine, for the post-pass merge.
	buffered bool
	facts    []Literal
	deps     []Dep
	// justs carries the justification of each buffered fact (aligned with
	// facts); nil when provenance capture is off.
	justs []*justification

	valuations int64
	extensions int64

	// arena batch-allocates justifications and their evidence slices when
	// provenance capture is on, so each captured valuation costs O(1)
	// amortized allocations instead of a handful.
	arena justArena

	// scratch buffers, reused across valuations to keep the hot path
	// allocation-free.
	binding []*relation.Tuple
	lvals   []relation.Value
	rvals   []relation.Value
	unsat   []Literal
	seedBuf []*relation.Tuple

	// litArena batches the buffered path's dependency-body copies into
	// chunked appends; the slices handed out stay valid because a full
	// chunk is replaced, never regrown. Reset by mergeCtx once the deps
	// have been copied into H's own storage.
	litArena []Literal
}

// reset points the context at rule br and clears the binding scratch.
func (c *evalCtx) reset(br *boundRule) {
	c.br = br
	n := len(br.r.Vars)
	if cap(c.binding) < n {
		c.binding = make([]*relation.Tuple, n)
	}
	c.binding = c.binding[:n]
	for i := range c.binding {
		c.binding[i] = nil
	}
}

// same answers t.id = s.id ∈ Γ from the frozen snapshot if present, else
// from the live union-find.
func (c *evalCtx) same(a, b relation.TID) bool {
	if a == b {
		return true
	}
	if c.roots != nil {
		return c.roots[a] == c.roots[b]
	}
	return c.e.uf.Same(int(a), int(b))
}

// apply hands a deduced head literal and its justification to the engine
// (sequential mode) or buffers both for the merge step (concurrent mode).
func (c *evalCtx) apply(l Literal, j *justification) {
	if c.buffered {
		c.facts = append(c.facts, l)
		if c.e.prov != nil {
			c.justs = append(c.justs, j)
		}
		return
	}
	c.e.applyFactJ(literalFact(l), j)
}

// recordDep stores dependency body → head. The direct path hands the
// scratch body straight to H, which copies it into slab storage; the
// buffered path copies it into the context's literal arena so the scratch
// buffer can be reused before the merge. The justification holds the
// evidence already satisfied at emit time, completed by the body when the
// dependency fires.
func (c *evalCtx) recordDep(body []Literal, head Literal, j *justification) {
	if c.buffered {
		c.deps = append(c.deps, Dep{Body: c.ownLits(body), Head: head, J: j})
		return
	}
	if c.e.H.add(body, head, j) {
		c.e.cnt.depsRecorded.Add(1)
	}
}

// ownLits copies body into the context's chunked literal arena and
// returns a capacity-clipped view. A chunk that cannot fit the copy is
// swapped for a fresh one (the old chunk stays alive through the views
// already handed out), so views never move.
func (c *evalCtx) ownLits(body []Literal) []Literal {
	if len(c.litArena)+len(body) > cap(c.litArena) {
		n := 1024
		if len(body) > n {
			n = len(body)
		}
		c.litArena = make([]Literal, 0, n)
	}
	lo := len(c.litArena)
	c.litArena = append(c.litArena, body...)
	return c.litArena[lo:len(c.litArena):len(c.litArena)]
}

// enumerate walks the valuations of the context's rule, starting from an
// optional partial binding seed (nil-padded, indexed by variable
// position). For every complete valuation that satisfies all static
// predicates it calls emit, which derives the head or records a
// dependency in H.
func (c *evalCtx) enumerate(seed []*relation.Tuple) {
	nbound := 0
	if seed != nil {
		for v, t := range seed {
			if t == nil {
				continue
			}
			if !c.checkNewBinding(v, t) {
				return
			}
			c.binding[v] = t
			nbound++
		}
	}
	c.extend(nbound)
}

// extend recursively binds the remaining variables, greedily choosing the
// unbound variable with the fewest index-backed candidates (the per-rule
// "query plan" of Section V-A built on the shared inverted indexes).
func (c *evalCtx) extend(nbound int) {
	binding := c.binding
	if nbound == len(binding) {
		c.emit()
		return
	}
	bestVar := -1
	var bestCands []*relation.Tuple
	for v := range binding {
		if binding[v] != nil {
			continue
		}
		cands := c.candidatesFor(v)
		if bestVar < 0 || len(cands) < len(bestCands) {
			bestVar, bestCands = v, cands
		}
		if len(bestCands) == 0 {
			return
		}
	}
	for _, t := range bestCands {
		c.extensions++
		if !c.checkNewBinding(bestVar, t) {
			continue
		}
		binding[bestVar] = t
		c.extend(nbound + 1)
		binding[bestVar] = nil
	}
}

// candidatesFor returns the smallest available candidate list for binding
// variable v: the tightest inverted-index posting list reachable through
// an equality predicate to an already-bound variable, else a constant
// predicate's posting list, else a full scan of v's relation.
func (c *evalCtx) candidatesFor(v int) []*relation.Tuple {
	br, binding := c.br, c.binding
	relIdx := br.r.Vars[v].RelIdx
	var best []*relation.Tuple
	found := false
	consider := func(lst []*relation.Tuple) {
		if !found || len(lst) < len(best) {
			best, found = lst, true
		}
	}
	for _, p := range br.eqs {
		if p.V1 == v && binding[p.V2] != nil {
			ix := c.e.indexFor(br, relIdx, p.A1)
			consider(ix.LookupTuple(binding[p.V2], p.A2))
		} else if p.V2 == v && binding[p.V1] != nil {
			ix := c.e.indexFor(br, relIdx, p.A2)
			consider(ix.LookupTuple(binding[p.V1], p.A1))
		}
	}
	for _, p := range br.consts[v] {
		ix := c.e.indexFor(br, relIdx, p.A1)
		consider(ix.Lookup(p.Const))
	}
	if found {
		return best
	}
	return br.scope.Relations[relIdx].Tuples
}

// checkNewBinding verifies every static predicate that becomes fully bound
// when variable v is set to tuple t, and prunes valuations whose head is
// already known. Dynamic predicates (id, and ML predicates whose model can
// be validated by some rule head) are deferred to emit.
func (c *evalCtx) checkNewBinding(v int, t *relation.Tuple) bool {
	br, binding := c.br, c.binding
	for _, p := range br.consts[v] {
		if !t.Val(p.A1).Equal(p.Const) {
			return false
		}
	}
	for _, p := range br.intra[v] {
		if !t.Val(p.A1).Equal(t.Val(p.A2)) {
			return false
		}
	}
	for _, p := range br.eqs {
		if p.V1 == v && binding[p.V2] != nil {
			if !t.Val(p.A1).Equal(binding[p.V2].Val(p.A2)) {
				return false
			}
		} else if p.V2 == v && binding[p.V1] != nil {
			if !t.Val(p.A2).Equal(binding[p.V1].Val(p.A1)) {
				return false
			}
		}
	}
	for i := range br.mls {
		m := &br.mls[i]
		if m.dynamic {
			continue
		}
		p := m.pred
		var ta, tb *relation.Tuple
		switch {
		case p.V1 == v && p.V2 == v:
			ta, tb = t, t
		case p.V1 == v && binding[p.V2] != nil:
			ta, tb = t, binding[p.V2]
		case p.V2 == v && binding[p.V1] != nil:
			ta, tb = binding[p.V1], t
		default:
			continue
		}
		if !c.predict(m, ta, tb) {
			return false
		}
	}
	// Prune subtrees whose head is already enforced.
	h := &br.r.Head
	switch h.Kind {
	case rule.PredID:
		var ta, tb *relation.Tuple
		switch {
		case h.V1 == v && h.V2 == v:
			ta, tb = t, t
		case h.V1 == v && binding[h.V2] != nil:
			ta, tb = t, binding[h.V2]
		case h.V2 == v && binding[h.V1] != nil:
			ta, tb = binding[h.V1], t
		}
		if ta != nil && (ta == tb || c.same(ta.GID, tb.GID)) {
			return false
		}
	case rule.PredML:
		var ta, tb *relation.Tuple
		switch {
		case h.V1 == v && h.V2 == v:
			ta, tb = t, t
		case h.V1 == v && binding[h.V2] != nil:
			ta, tb = t, binding[h.V2]
		case h.V2 == v && binding[h.V1] != nil:
			ta, tb = binding[h.V1], t
		}
		if ta != nil && c.e.validated[mlKey{h.Model, ta.GID, tb.GID}] {
			return false
		}
	}
	return true
}

// predict answers ML predicate m over tuples ta, tb through the id-keyed
// pair cache, scoring misses over precomputed feature bundles when the
// classifier supports it. The attribute vectors are gathered into the
// context's scratch buffers only on a miss (the stores never retain them).
func (c *evalCtx) predict(m *boundMLPred, ta, tb *relation.Tuple) bool {
	cache, feats := c.e.pairCache, c.e.feats
	if c.br.cache != nil {
		cache, feats = c.br.cache, c.br.feats
	}
	ka, kb := ta.GID, tb.GID
	if m.canonical && kb < ka {
		ka, kb = kb, ka
	}
	if ans, ok := cache.Lookup(m.clID, ka, kb); ok {
		return ans
	}
	c.lvals = gatherInto(c.lvals, ta, m.pred.A1Vec)
	c.rvals = gatherInto(c.rvals, tb, m.pred.A2Vec)
	var ans bool
	if m.fc != nil {
		fa := feats.Get(ta.GID, m.aID, c.lvals)
		fb := feats.Get(tb.GID, m.bID, c.rvals)
		ans = m.fc.PredictFeatures(fa, fb)
	} else {
		ans = m.cl.Predict(c.lvals, c.rvals)
	}
	cache.Store(m.clID, ka, kb, ans)
	return ans
}

// runSeed runs one drain job: a restricted enumeration of the job's rule
// with the seeding predicate's variables bound to the job's tuples.
func (c *evalCtx) runSeed(j *drainJob) {
	c.reset(j.br)
	n := len(j.br.r.Vars)
	if cap(c.seedBuf) < n {
		c.seedBuf = make([]*relation.Tuple, n)
	}
	seed := c.seedBuf[:n]
	for i := range seed {
		seed[i] = nil
	}
	seed[j.p.V1] = j.tx
	if j.p.V1 != j.p.V2 {
		seed[j.p.V2] = j.ty
	}
	c.enumerate(seed)
}

// gatherInto collects an ML predicate's attribute-value vector from a
// tuple into a reused buffer.
func gatherInto(buf []relation.Value, t *relation.Tuple, attrs []int) []relation.Value {
	buf = buf[:0]
	for _, a := range attrs {
		buf = append(buf, t.Val(a))
	}
	return buf
}

// emit processes one complete valuation: if all dynamic predicates hold,
// the head fact is derived; otherwise a dependency "unsatisfied literals →
// head" is recorded in H (procedure Deduce of Section V-A).
func (c *evalCtx) emit() {
	c.valuations++
	br, binding := c.br, c.binding
	h := &br.r.Head
	var headLit Literal
	if h.Kind == rule.PredID {
		a, b := binding[h.V1], binding[h.V2]
		if a == b || c.same(a.GID, b.GID) {
			return // already enforced
		}
		x, y := a.GID, b.GID
		if y < x {
			x, y = y, x
		}
		headLit = matchLit(x, y)
	} else {
		a, b := binding[h.V1], binding[h.V2]
		if a == b || c.e.validated[mlKey{h.Model, a.GID, b.GID}] {
			return // trivial self prediction, or already validated
		}
		headLit = mlLit(h.Model, a.GID, b.GID)
	}

	unsat := c.unsat[:0]
	for _, p := range br.ids {
		a, b := binding[p.V1], binding[p.V2]
		if a == b || c.same(a.GID, b.GID) {
			continue
		}
		x, y := a.GID, b.GID
		if y < x {
			x, y = y, x
		}
		unsat = append(unsat, matchLit(x, y))
	}
	for i := range br.mls {
		m := &br.mls[i]
		if !m.dynamic {
			continue // already checked during binding
		}
		p := m.pred
		a, b := binding[p.V1], binding[p.V2]
		if c.e.validated[mlKey{p.Model, a.GID, b.GID}] {
			continue
		}
		if c.predict(m, a, b) {
			continue
		}
		unsat = append(unsat, mlLit(p.Model, a.GID, b.GID))
	}
	c.unsat = unsat

	var j *justification
	if c.e.prov != nil {
		j = c.buildJust()
	}
	if len(unsat) == 0 {
		c.apply(headLit, j)
		return
	}
	sortLiterals(unsat)
	c.recordDep(unsat, headLit, j)
}

func sortLiterals(ls []Literal) {
	// Insertion sort by key: dependency bodies are tiny.
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j].less(ls[j-1]); j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}
