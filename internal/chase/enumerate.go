package chase

import (
	"time"

	"dcer/internal/relation"
	"dcer/internal/rule"
	"dcer/internal/telemetry"
)

// evalCtx carries the mutable state of one rule enumeration: the scratch
// buffers reused across valuations and, in the concurrent first pass of
// Deduce, the per-goroutine result buffers and the frozen view of Γ.
//
// The sequential path reuses a single context owned by the engine and
// applies facts directly; the concurrent pass gives each rule goroutine
// its own context so the enumerations share no mutable state (the engine
// structures they read — validated set, indexes, scopes — are frozen for
// the duration of the pass) and are merged deterministically afterwards.
type evalCtx struct {
	e  *Engine
	br *boundRule

	// roots freezes the id-equivalence relation: when non-nil, Same is
	// answered from this snapshot instead of the engine's union-find
	// (whose Find path-compresses and must not run under concurrent
	// readers).
	roots []int32

	// buffered redirects emitted facts and dependencies into the context
	// instead of applying them to the engine, for the post-pass merge.
	buffered bool
	facts    []Literal
	deps     []Dep
	// justs carries the justification of each buffered fact (aligned with
	// facts); nil when provenance capture is off.
	justs []*justification

	valuations int64
	extensions int64

	// plans mirrors !Options.InterpretRules (latched by reset so the hot
	// path reads a local flag); planBufs are the per-recursion-depth
	// candidate scratch buffers of the compiled path, and planEvals /
	// planBatches accumulate its work account, landing in the engine
	// counters at the same merge points as valuations and extensions.
	plans       bool
	planBufs    [][]*relation.Tuple
	planEvals   int64
	planBatches int64

	// arena batch-allocates justifications and their evidence slices when
	// provenance capture is on, so each captured valuation costs O(1)
	// amortized allocations instead of a handful.
	arena justArena

	// candRows memoizes, per recursion depth and unbound variable, the
	// tightest candidate posting list found so far, so each depth probes
	// only the equalities opened by the variable it just bound instead of
	// re-probing every index for every unbound variable (see extend).
	candRows [][]candList

	// scratch buffers, reused across valuations to keep the hot path
	// allocation-free.
	binding []*relation.Tuple
	lvals   []relation.Value
	rvals   []relation.Value
	unsat   []Literal
	seedBuf []*relation.Tuple

	// litArena batches the buffered path's dependency-body copies into
	// chunked appends; the slices handed out stay valid because a full
	// chunk is replaced, never regrown. Reset by mergeCtx once the deps
	// have been copied into H's own storage.
	litArena []Literal
}

// reset points the context at rule br and clears the binding scratch.
func (c *evalCtx) reset(br *boundRule) {
	c.br = br
	c.plans = !c.e.opts.InterpretRules
	n := len(br.r.Vars)
	if cap(c.binding) < n {
		c.binding = make([]*relation.Tuple, n)
	}
	c.binding = c.binding[:n]
	for i := range c.binding {
		c.binding[i] = nil
	}
	if cap(c.candRows) < n {
		c.candRows = make([][]candList, n)
	}
	c.candRows = c.candRows[:n]
	for i := range c.candRows {
		if cap(c.candRows[i]) < n {
			c.candRows[i] = make([]candList, n)
		}
		c.candRows[i] = c.candRows[i][:n]
	}
}

// same answers t.id = s.id ∈ Γ from the frozen snapshot if present, else
// from the live union-find.
func (c *evalCtx) same(a, b relation.TID) bool {
	if a == b {
		return true
	}
	if c.roots != nil {
		return c.roots[a] == c.roots[b]
	}
	return c.e.uf.Same(int(a), int(b))
}

// apply hands a deduced head literal and its justification to the engine
// (sequential mode) or buffers both for the merge step (concurrent mode).
func (c *evalCtx) apply(l Literal, j *justification) {
	if c.buffered {
		c.facts = append(c.facts, l)
		if c.e.prov != nil {
			c.justs = append(c.justs, j)
		}
		return
	}
	c.e.applyFactJ(literalFact(l), j)
}

// recordDep stores dependency body → head. The direct path hands the
// scratch body straight to H, which copies it into slab storage; the
// buffered path copies it into the context's literal arena so the scratch
// buffer can be reused before the merge. The justification holds the
// evidence already satisfied at emit time, completed by the body when the
// dependency fires.
func (c *evalCtx) recordDep(body []Literal, head Literal, j *justification) {
	if c.buffered {
		c.deps = append(c.deps, Dep{Body: c.ownLits(body), Head: head, J: j})
		return
	}
	if c.e.H.add(body, head, j) {
		c.e.cnt.depsRecorded.Add(1)
	}
}

// ownLits copies body into the context's chunked literal arena and
// returns a capacity-clipped view. A chunk that cannot fit the copy is
// swapped for a fresh one (the old chunk stays alive through the views
// already handed out), so views never move.
func (c *evalCtx) ownLits(body []Literal) []Literal {
	if len(c.litArena)+len(body) > cap(c.litArena) {
		n := 1024
		if len(body) > n {
			n = len(body)
		}
		c.litArena = make([]Literal, 0, n)
	}
	lo := len(c.litArena)
	c.litArena = append(c.litArena, body...)
	return c.litArena[lo:len(c.litArena):len(c.litArena)]
}

// enumerate walks the valuations of the context's rule, starting from an
// optional partial binding seed (nil-padded, indexed by variable
// position). For every complete valuation that satisfies all static
// predicates it calls emit, which derives the head or records a
// dependency in H.
func (c *evalCtx) enumerate(seed []*relation.Tuple) {
	nbound := 0
	if seed != nil {
		for v, t := range seed {
			if t == nil {
				continue
			}
			if !c.checkNewBinding(v, t) {
				return
			}
			c.binding[v] = t
			nbound++
		}
	}
	c.extend(nbound, -1)
}

// candList is one memoized candidate set: the tightest posting list seen
// for a variable so far, and whether any index probe produced it (found
// false means the list is the fallback full relation scan, which any
// probe beats regardless of length).
type candList struct {
	list  []*relation.Tuple
	found bool
}

// refineSkipLen is the candidate-list length below which extend reuses
// the parent depth's memoized list instead of probing the indexes again:
// scanning a handful of tuples through the word filters is cheaper than
// a hash probe per joining equality.
const refineSkipLen = 8

// extend recursively binds the remaining variables, greedily choosing the
// unbound variable with the fewest index-backed candidates (the per-rule
// "query plan" of Section V-A built on the shared inverted indexes).
//
// Candidate lists are maintained incrementally: binding a variable can
// only tighten another variable's candidates through the equality
// predicates that join the two, so each depth refines the parent depth's
// memoized lists with probes for the last-bound variable alone (last < 0
// recomputes from scratch — the entry point, where seeds may have bound
// several variables at once). This turns the per-node index work from
// O(eqs × unbound vars) map probes into O(eqs touching the new binding).
func (c *evalCtx) extend(nbound, last int) {
	binding := c.binding
	if nbound == len(binding) {
		c.emit()
		return
	}
	row := c.candRows[nbound]
	var prev []candList
	if last >= 0 {
		prev = c.candRows[nbound-1]
	}
	bestVar := -1
	var bestCands []*relation.Tuple
	for v := range binding {
		if binding[v] != nil {
			continue
		}
		var cs candList
		if last < 0 {
			cs = c.candidatesFor(v)
		} else if cs = prev[v]; !cs.found || len(cs.list) > refineSkipLen {
			// Refining an already-tiny list costs more in index probes
			// than the batch filters save: below the threshold the parent
			// list is reused as-is (the predicate programs still check
			// every equality, so a looser candidate list never changes
			// the survivor set — only the constant work per node).
			cs = c.refineCandidates(cs, v, last)
		}
		row[v] = cs
		if bestVar < 0 || len(cs.list) < len(bestCands) {
			bestVar, bestCands = v, cs.list
		}
		if len(bestCands) == 0 {
			return
		}
	}
	if c.plans {
		c.extendPlanned(bestVar, bestCands, nbound)
		return
	}
	for _, t := range bestCands {
		c.extensions++
		if !c.checkNewBinding(bestVar, t) {
			continue
		}
		binding[bestVar] = t
		c.extend(nbound+1, bestVar)
		binding[bestVar] = nil
	}
}

// candidatesFor computes from scratch the smallest available candidate
// list for binding variable v: the tightest inverted-index posting list
// reachable through an equality predicate to an already-bound variable,
// else a constant predicate's posting list, else a full scan of v's
// relation.
func (c *evalCtx) candidatesFor(v int) candList {
	br, binding := c.br, c.binding
	relIdx := br.r.Vars[v].RelIdx
	var cs candList
	consider := func(lst []*relation.Tuple) {
		if !cs.found || len(lst) < len(cs.list) {
			cs = candList{list: lst, found: true}
		}
	}
	for i, p := range br.eqs {
		if p.V1 == v && binding[p.V2] != nil {
			consider(br.eqIx[i][0].LookupTuple(binding[p.V2], p.A2))
		} else if p.V2 == v && binding[p.V1] != nil {
			consider(br.eqIx[i][1].LookupTuple(binding[p.V1], p.A1))
		}
	}
	for _, w := range br.plan.consts[v] {
		if !w.constOK {
			// Unresolvable probe (string not interned, or NaN): the
			// constant matches nothing, so v has no candidates at all.
			consider(nil)
			continue
		}
		consider(w.ix.LookupWord(w.constW))
	}
	if !cs.found {
		cs.list = br.scope.Relations[relIdx].Tuples
	}
	return cs
}

// refineCandidates tightens v's memoized candidate list with the index
// probes that binding variable `last` just made available: the equality
// predicates joining v and last, walked in rule order (the same stable
// order candidatesFor uses, so adaptive plan re-sorts never influence
// which of two equal-length postings is kept).
func (c *evalCtx) refineCandidates(cs candList, v, last int) candList {
	br, binding := c.br, c.binding
	for i, p := range br.eqs {
		var lst []*relation.Tuple
		if p.V1 == v && p.V2 == last {
			lst = br.eqIx[i][0].LookupTuple(binding[last], p.A2)
		} else if p.V2 == v && p.V1 == last {
			lst = br.eqIx[i][1].LookupTuple(binding[last], p.A1)
		} else {
			continue
		}
		if !cs.found || len(lst) < len(cs.list) {
			cs = candList{list: lst, found: true}
		}
	}
	return cs
}

// checkNewBinding verifies every static predicate that becomes fully bound
// when variable v is set to tuple t, and prunes valuations whose head is
// already known. Dynamic predicates (id, and ML predicates whose model can
// be validated by some rule head) are deferred to emit.
//
// The word checks walk the compiled plan's program (shared with the
// batched path) instead of boxing Values: packed words already collapse
// -0/+0 and canonicalize NaN payloads, so word equality equals Value
// equality except for NaN = NaN, which the isFloat guard restores.
// Conjunct order cannot change the conjunction's outcome, so the
// adaptive reordering of the program is invisible here.
func (c *evalCtx) checkNewBinding(v int, t *relation.Tuple) bool {
	br, binding := c.br, c.binding
	for _, w := range *br.plan.vars[v].words.Load() {
		switch w.kind {
		case wpConst:
			if !w.constOK || t.Word(w.attr) != w.constW {
				return false
			}
		case wpIntra:
			wa := t.Word(w.attr)
			if wa != t.Word(w.attr2) || (w.isFloat && wa == relation.QNaNWord) {
				return false
			}
		case wpEq:
			o := binding[w.other]
			if o == nil {
				continue
			}
			wa := t.Word(w.attr)
			if wa != o.Word(w.otherAttr) || (w.isFloat && wa == relation.QNaNWord) {
				return false
			}
		}
	}
	for i := range br.mls {
		m := &br.mls[i]
		if m.dynamic {
			continue
		}
		p := m.pred
		var ta, tb *relation.Tuple
		switch {
		case p.V1 == v && p.V2 == v:
			ta, tb = t, t
		case p.V1 == v && binding[p.V2] != nil:
			ta, tb = t, binding[p.V2]
		case p.V2 == v && binding[p.V1] != nil:
			ta, tb = binding[p.V1], t
		default:
			continue
		}
		if !c.predict(m, ta, tb) {
			return false
		}
	}
	// Prune subtrees whose head is already enforced.
	h := &br.r.Head
	switch h.Kind {
	case rule.PredID:
		var ta, tb *relation.Tuple
		switch {
		case h.V1 == v && h.V2 == v:
			ta, tb = t, t
		case h.V1 == v && binding[h.V2] != nil:
			ta, tb = t, binding[h.V2]
		case h.V2 == v && binding[h.V1] != nil:
			ta, tb = binding[h.V1], t
		}
		if ta != nil && (ta == tb || c.same(ta.GID, tb.GID)) {
			return false
		}
	case rule.PredML:
		var ta, tb *relation.Tuple
		switch {
		case h.V1 == v && h.V2 == v:
			ta, tb = t, t
		case h.V1 == v && binding[h.V2] != nil:
			ta, tb = t, binding[h.V2]
		case h.V2 == v && binding[h.V1] != nil:
			ta, tb = binding[h.V1], t
		}
		if ta != nil && c.e.validated[mlKey{h.Model, ta.GID, tb.GID}] {
			return false
		}
	}
	return true
}

// predict answers ML predicate m over tuples ta, tb through the id-keyed
// pair cache, scoring misses over precomputed feature bundles when the
// classifier supports it. The attribute vectors are gathered into the
// context's scratch buffers only on a miss (the stores never retain them).
func (c *evalCtx) predict(m *boundMLPred, ta, tb *relation.Tuple) bool {
	cache, feats := c.e.pairCache, c.e.feats
	if c.br.cache != nil {
		cache, feats = c.br.cache, c.br.feats
	}
	ka, kb := ta.GID, tb.GID
	if m.canonical && kb < ka {
		ka, kb = kb, ka
	}
	if ans, ok := cache.Lookup(m.clID, ka, kb); ok {
		return ans
	}
	// Cache miss: the classifier actually runs. Record it as a span on
	// the ML lane when it clears the duration floor (sub-floor calls are
	// plentiful and would flood the bounded ring).
	var mt0 time.Time
	if c.e.curTC.Enabled() {
		mt0 = time.Now()
	}
	var ans bool
	if m.fc != nil {
		// Feature-scoring classifiers only need the boxed attribute
		// vectors when a tuple's bundle is not in the store yet; probe the
		// store first so warm lookups never rehydrate Values.
		fa, ok := feats.Cached(ta.GID, m.aID)
		if !ok {
			c.lvals = gatherInto(c.lvals, ta, m.pred.A1Vec)
			fa = feats.Get(ta.GID, m.aID, c.lvals)
		}
		fb, ok := feats.Cached(tb.GID, m.bID)
		if !ok {
			c.rvals = gatherInto(c.rvals, tb, m.pred.A2Vec)
			fb = feats.Get(tb.GID, m.bID, c.rvals)
		}
		ans = m.fc.PredictFeatures(fa, fb)
	} else {
		c.lvals = gatherInto(c.lvals, ta, m.pred.A1Vec)
		c.rvals = gatherInto(c.rvals, tb, m.pred.A2Vec)
		ans = m.cl.Predict(c.lvals, c.rvals)
	}
	if !mt0.IsZero() && time.Since(mt0) >= mlTraceFloor {
		tc := c.e.curTC
		tc.Lane(telemetry.PIDMLPred, tc.TID()).Record("mlpred.classify", mt0,
			telemetry.L("model", m.pred.Model))
	}
	cache.Store(m.clID, ka, kb, ans)
	return ans
}

// runSeed runs one drain job: a restricted enumeration of the job's rule
// with the seeding predicate's variables bound to the job's tuples.
func (c *evalCtx) runSeed(j *drainJob) {
	c.reset(j.br)
	n := len(j.br.r.Vars)
	if cap(c.seedBuf) < n {
		c.seedBuf = make([]*relation.Tuple, n)
	}
	seed := c.seedBuf[:n]
	for i := range seed {
		seed[i] = nil
	}
	seed[j.p.V1] = j.tx
	if j.p.V1 != j.p.V2 {
		seed[j.p.V2] = j.ty
	}
	c.enumerate(seed)
}

// gatherInto collects an ML predicate's attribute-value vector from a
// tuple into a reused buffer.
func gatherInto(buf []relation.Value, t *relation.Tuple, attrs []int) []relation.Value {
	buf = buf[:0]
	for _, a := range attrs {
		buf = append(buf, t.Val(a))
	}
	return buf
}

// emit processes one complete valuation: if all dynamic predicates hold,
// the head fact is derived; otherwise a dependency "unsatisfied literals →
// head" is recorded in H (procedure Deduce of Section V-A).
func (c *evalCtx) emit() {
	c.valuations++
	br, binding := c.br, c.binding
	h := &br.r.Head
	var headLit Literal
	if h.Kind == rule.PredID {
		a, b := binding[h.V1], binding[h.V2]
		if a == b || c.same(a.GID, b.GID) {
			return // already enforced
		}
		x, y := a.GID, b.GID
		if y < x {
			x, y = y, x
		}
		headLit = matchLit(x, y)
	} else {
		a, b := binding[h.V1], binding[h.V2]
		if a == b || c.e.validated[mlKey{h.Model, a.GID, b.GID}] {
			return // trivial self prediction, or already validated
		}
		headLit = mlLit(h.Model, a.GID, b.GID)
	}

	unsat := c.unsat[:0]
	for _, p := range br.ids {
		a, b := binding[p.V1], binding[p.V2]
		if a == b || c.same(a.GID, b.GID) {
			continue
		}
		x, y := a.GID, b.GID
		if y < x {
			x, y = y, x
		}
		unsat = append(unsat, matchLit(x, y))
	}
	for i := range br.mls {
		m := &br.mls[i]
		if !m.dynamic {
			continue // already checked during binding
		}
		p := m.pred
		a, b := binding[p.V1], binding[p.V2]
		if c.e.validated[mlKey{p.Model, a.GID, b.GID}] {
			continue
		}
		if c.predict(m, a, b) {
			continue
		}
		unsat = append(unsat, mlLit(p.Model, a.GID, b.GID))
	}
	c.unsat = unsat

	var j *justification
	if c.e.prov != nil {
		j = c.buildJust()
	}
	if len(unsat) == 0 {
		c.apply(headLit, j)
		return
	}
	sortLiterals(unsat)
	c.recordDep(unsat, headLit, j)
}

func sortLiterals(ls []Literal) {
	// Insertion sort by key: dependency bodies are tiny.
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j].less(ls[j-1]); j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}
