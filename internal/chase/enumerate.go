package chase

import (
	"dcer/internal/relation"
	"dcer/internal/rule"
)

// enumerateRule enumerates the valuations of br over the dataset, starting
// from an optional partial binding seed (nil-padded, indexed by variable
// position). For every complete valuation that satisfies all static
// predicates it calls emit, which derives the head or records a
// dependency in H.
func (e *Engine) enumerateRule(br *boundRule, seed []*relation.Tuple) {
	binding := make([]*relation.Tuple, len(br.r.Vars))
	nbound := 0
	if seed != nil {
		for v, t := range seed {
			if t == nil {
				continue
			}
			if !e.checkNewBinding(br, binding, v, t) {
				return
			}
			binding[v] = t
			nbound++
		}
	}
	e.extend(br, binding, nbound)
}

// extend recursively binds the remaining variables, greedily choosing the
// unbound variable with the fewest index-backed candidates (the per-rule
// "query plan" of Section V-A built on the shared inverted indexes).
func (e *Engine) extend(br *boundRule, binding []*relation.Tuple, nbound int) {
	if nbound == len(binding) {
		e.emit(br, binding)
		return
	}
	bestVar := -1
	var bestCands []*relation.Tuple
	for v := range binding {
		if binding[v] != nil {
			continue
		}
		cands := e.candidatesFor(br, binding, v)
		if bestVar < 0 || len(cands) < len(bestCands) {
			bestVar, bestCands = v, cands
		}
		if len(bestCands) == 0 {
			return
		}
	}
	for _, t := range bestCands {
		e.stats.Extensions++
		if !e.checkNewBinding(br, binding, bestVar, t) {
			continue
		}
		binding[bestVar] = t
		e.extend(br, binding, nbound+1)
		binding[bestVar] = nil
	}
}

// candidatesFor returns the smallest available candidate list for binding
// variable v: the tightest inverted-index posting list reachable through
// an equality predicate to an already-bound variable, else a constant
// predicate's posting list, else a full scan of v's relation.
func (e *Engine) candidatesFor(br *boundRule, binding []*relation.Tuple, v int) []*relation.Tuple {
	relIdx := br.r.Vars[v].RelIdx
	var best []*relation.Tuple
	found := false
	consider := func(lst []*relation.Tuple) {
		if !found || len(lst) < len(best) {
			best, found = lst, true
		}
	}
	for _, p := range br.eqs {
		if p.V1 == v && binding[p.V2] != nil {
			ix := e.indexFor(br, relIdx, p.A1)
			consider(ix.Lookup(binding[p.V2].Values[p.A2]))
		} else if p.V2 == v && binding[p.V1] != nil {
			ix := e.indexFor(br, relIdx, p.A2)
			consider(ix.Lookup(binding[p.V1].Values[p.A1]))
		}
	}
	for _, p := range br.consts[v] {
		ix := e.indexFor(br, relIdx, p.A1)
		consider(ix.Lookup(p.Const))
	}
	if found {
		return best
	}
	return br.scope.Relations[relIdx].Tuples
}

// checkNewBinding verifies every static predicate that becomes fully bound
// when variable v is set to tuple t, and prunes valuations whose head is
// already known. Dynamic predicates (id, and ML predicates whose model can
// be validated by some rule head) are deferred to emit.
func (e *Engine) checkNewBinding(br *boundRule, binding []*relation.Tuple, v int, t *relation.Tuple) bool {
	for _, p := range br.consts[v] {
		if !t.Values[p.A1].Equal(p.Const) {
			return false
		}
	}
	for _, p := range br.intra[v] {
		if !t.Values[p.A1].Equal(t.Values[p.A2]) {
			return false
		}
	}
	for _, p := range br.eqs {
		if p.V1 == v && binding[p.V2] != nil {
			if !t.Values[p.A1].Equal(binding[p.V2].Values[p.A2]) {
				return false
			}
		} else if p.V2 == v && binding[p.V1] != nil {
			if !t.Values[p.A2].Equal(binding[p.V1].Values[p.A1]) {
				return false
			}
		}
	}
	for i := range br.mls {
		m := &br.mls[i]
		if m.dynamic {
			continue
		}
		p := m.pred
		var ta, tb *relation.Tuple
		switch {
		case p.V1 == v && p.V2 == v:
			ta, tb = t, t
		case p.V1 == v && binding[p.V2] != nil:
			ta, tb = t, binding[p.V2]
		case p.V2 == v && binding[p.V1] != nil:
			ta, tb = binding[p.V1], t
		default:
			continue
		}
		if !e.mlPredict(br, m.cl, gather(ta, p.A1Vec), gather(tb, p.A2Vec)) {
			return false
		}
	}
	// Prune subtrees whose head is already enforced.
	h := &br.r.Head
	switch h.Kind {
	case rule.PredID:
		var ta, tb *relation.Tuple
		switch {
		case h.V1 == v && h.V2 == v:
			ta, tb = t, t
		case h.V1 == v && binding[h.V2] != nil:
			ta, tb = t, binding[h.V2]
		case h.V2 == v && binding[h.V1] != nil:
			ta, tb = binding[h.V1], t
		}
		if ta != nil && (ta == tb || e.Same(ta.GID, tb.GID)) {
			return false
		}
	case rule.PredML:
		var ta, tb *relation.Tuple
		switch {
		case h.V1 == v && h.V2 == v:
			ta, tb = t, t
		case h.V1 == v && binding[h.V2] != nil:
			ta, tb = t, binding[h.V2]
		case h.V2 == v && binding[h.V1] != nil:
			ta, tb = binding[h.V1], t
		}
		if ta != nil && e.validated[mlKey{h.Model, ta.GID, tb.GID}] {
			return false
		}
	}
	return true
}

// gather collects an ML predicate's attribute-value vector from a tuple.
func gather(t *relation.Tuple, attrs []int) []relation.Value {
	vs := make([]relation.Value, len(attrs))
	for i, a := range attrs {
		vs[i] = t.Values[a]
	}
	return vs
}

// emit processes one complete valuation: if all dynamic predicates hold,
// the head fact is derived; otherwise a dependency "unsatisfied literals →
// head" is recorded in H (procedure Deduce of Section V-A).
func (e *Engine) emit(br *boundRule, binding []*relation.Tuple) {
	e.stats.Valuations++
	h := &br.r.Head
	var headLit Literal
	if h.Kind == rule.PredID {
		a, b := binding[h.V1], binding[h.V2]
		if a == b || e.Same(a.GID, b.GID) {
			return // already enforced
		}
		x, y := a.GID, b.GID
		if y < x {
			x, y = y, x
		}
		headLit = Literal{Kind: FactMatch, A: x, B: y}
	} else {
		a, b := binding[h.V1], binding[h.V2]
		if a == b || e.validated[mlKey{h.Model, a.GID, b.GID}] {
			return // trivial self prediction, or already validated
		}
		headLit = Literal{Kind: FactML, Model: h.Model, A: a.GID, B: b.GID}
	}

	var unsat []Literal
	for _, p := range br.ids {
		a, b := binding[p.V1], binding[p.V2]
		if a == b || e.Same(a.GID, b.GID) {
			continue
		}
		x, y := a.GID, b.GID
		if y < x {
			x, y = y, x
		}
		unsat = append(unsat, Literal{Kind: FactMatch, A: x, B: y})
	}
	for i := range br.mls {
		m := &br.mls[i]
		if !m.dynamic {
			continue // already checked during binding
		}
		p := m.pred
		a, b := binding[p.V1], binding[p.V2]
		if e.validated[mlKey{p.Model, a.GID, b.GID}] {
			continue
		}
		if e.mlPredict(br, m.cl, gather(a, p.A1Vec), gather(b, p.A2Vec)) {
			continue
		}
		unsat = append(unsat, Literal{Kind: FactML, Model: p.Model, A: a.GID, B: b.GID})
	}

	if len(unsat) == 0 {
		e.applyFact(literalFact(headLit))
		return
	}
	sortLiterals(unsat)
	if e.H.Add(&Dep{Body: unsat, Head: headLit}) {
		e.stats.DepsRecorded++
	}
}

func sortLiterals(ls []Literal) {
	// Insertion sort by key: dependency bodies are tiny.
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j].key() < ls[j-1].key(); j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}
