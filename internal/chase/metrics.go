package chase

import (
	"sync/atomic"

	"dcer/internal/mlpred"
	"dcer/internal/telemetry"
)

// engineCounters is the engine's live work account. The fields are
// atomics so Stats() — and the registry gauge views scraped over HTTP
// mid-run — read a torn-free snapshot while the drain's worker
// goroutines merge results; the hot enumeration loops still accumulate
// into per-context plain counters and only land here at merge points.
type engineCounters struct {
	valuations   atomic.Int64
	extensions   atomic.Int64
	matches      atomic.Int64
	mlValidated  atomic.Int64
	depsRecorded atomic.Int64
	depsFired    atomic.Int64
	rounds       atomic.Int64

	// Compiled-plan work account (plan.go): predicate evaluations and
	// candidate batches land here at the context merge points; reorders
	// are counted directly by maybeResortPlans on the engine goroutine.
	planPreds    atomic.Int64
	planBatches  atomic.Int64
	planReorders atomic.Int64

	// Memory-account mirrors, refreshed by rebudget on the engine
	// goroutine once per drain round so the /metrics scrape goroutine
	// never walks the live maps.
	memDataset atomic.Int64
	memGamma   atomic.Int64
	memDeps    atomic.Int64
	memEvicted atomic.Int64
}

// chaseMetrics is the engine's telemetry wiring: the per-stage histograms
// of Deduce and the drain, the tracer, and the registry gauge views over
// the engine counters. nil when Options.Metrics is unset — every call
// site guards with a nil check, so the disabled overhead is one branch
// and no clock reads.
type chaseMetrics struct {
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	labels []telemetry.Label

	// drain stage instruments (batch = one runJobs call).
	drainBatchNs   *telemetry.Histogram
	drainBatchJobs *telemetry.Histogram
	queueDepth     *telemetry.Histogram

	// planDepth observes, per compiled-plan batch, how many program steps
	// ran before the batch finished or short-circuited to zero survivors.
	planDepth *telemetry.Histogram
}

// cacheSnapshots returns the engine's combined ML pair-cache and
// feature-store snapshots, summing the rule-private stores of the noMQO
// configuration into the shared ones. Safe for concurrent use (the
// stores snapshot under their shard locks).
func (e *Engine) cacheSnapshots() (pair, feat mlpred.CacheSnapshot) {
	add := func(dst *mlpred.CacheSnapshot, s mlpred.CacheSnapshot) {
		dst.Hits += s.Hits
		dst.Misses += s.Misses
		dst.Entries += s.Entries
	}
	pair = e.pairCache.Snapshot()
	feat = e.feats.Snapshot()
	for _, br := range e.rules {
		if br.cache != nil {
			add(&pair, br.cache.Snapshot())
			add(&feat, br.feats.Snapshot())
		}
	}
	return pair, feat
}

func hitRate(s mlpred.CacheSnapshot) float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// initMetrics attaches the engine to a registry: creates the stage
// histograms and registers the gauge views that make /metrics and
// Engine.Stats two faces of the same counters.
func (e *Engine) initMetrics(reg *telemetry.Registry, labels []telemetry.Label) {
	m := &chaseMetrics{reg: reg, tracer: reg.Tracer(), labels: labels}
	m.drainBatchNs = reg.Histogram("dcer_chase_drain_batch_ns", labels...)
	m.drainBatchJobs = reg.Histogram("dcer_chase_drain_batch_jobs", labels...)
	m.queueDepth = reg.Histogram("dcer_chase_drain_queue_depth", labels...)
	m.planDepth = reg.Histogram("dcer_plan_short_circuit_depth", labels...)
	e.tel = m

	views := []struct {
		name string
		fn   func() float64
	}{
		{"dcer_chase_valuations", func() float64 { return float64(e.cnt.valuations.Load()) }},
		{"dcer_chase_extensions", func() float64 { return float64(e.cnt.extensions.Load()) }},
		{"dcer_chase_matches", func() float64 { return float64(e.cnt.matches.Load()) }},
		{"dcer_chase_ml_validated", func() float64 { return float64(e.cnt.mlValidated.Load()) }},
		{"dcer_chase_deps_recorded", func() float64 { return float64(e.cnt.depsRecorded.Load()) }},
		{"dcer_chase_deps_fired", func() float64 { return float64(e.cnt.depsFired.Load()) }},
		{"dcer_chase_rounds", func() float64 { return float64(e.cnt.rounds.Load()) }},
		{"dcer_plan_preds_evaluated", func() float64 { return float64(e.cnt.planPreds.Load()) }},
		{"dcer_plan_batches", func() float64 { return float64(e.cnt.planBatches.Load()) }},
		{"dcer_plan_reorders", func() float64 { return float64(e.cnt.planReorders.Load()) }},
		{"dcer_chase_mlcache_hit_rate", func() float64 { p, _ := e.cacheSnapshots(); return hitRate(p) }},
		{"dcer_chase_mlcache_entries", func() float64 { p, _ := e.cacheSnapshots(); return float64(p.Entries) }},
		{"dcer_chase_featstore_hit_rate", func() float64 { _, f := e.cacheSnapshots(); return hitRate(f) }},
		{"dcer_chase_featstore_entries", func() float64 { _, f := e.cacheSnapshots(); return float64(f.Entries) }},
		{"dcer_mem_dataset_bytes", func() float64 { return float64(e.cnt.memDataset.Load()) }},
		{"dcer_mem_gamma_bytes", func() float64 { return float64(e.cnt.memGamma.Load()) }},
		{"dcer_mem_deps_bytes", func() float64 { return float64(e.cnt.memDeps.Load()) }},
		{"dcer_mem_total_bytes", func() float64 {
			return float64(e.cnt.memDataset.Load() + e.cnt.memGamma.Load() + e.cnt.memDeps.Load())
		}},
		{"dcer_mem_budget_bytes", func() float64 { return float64(e.opts.MemBudgetBytes) }},
		{"dcer_mem_deps_evicted", func() float64 { return float64(e.cnt.memEvicted.Load()) }},
	}
	for _, v := range views {
		reg.GaugeFunc(v.name, v.fn, labels...)
	}

	// The plans provider name is suffixed with the label values so the
	// parallel engine's per-worker engines (labelled worker=i) publish
	// side by side instead of replacing each other.
	planName := "plans"
	for _, l := range labels {
		planName += "_" + l.Value
	}
	reg.SetDebug(planName, func() any { return e.PlanReport() })

	if p := e.opts.Provenance; p != nil {
		p.AttachMetrics(reg, labels...)
		// The parallel engine replaces this per-engine provider with an
		// aggregate over all worker logs (SetDebug replaces by name).
		reg.SetDebug("provenance", func() any { return p.Summarize() })
	}
}

// ruleHists resolves the per-rule enumeration and merge histograms, once
// per bound rule at setup.
func (m *chaseMetrics) ruleHists(ruleName string) (enum, merge *telemetry.Histogram) {
	lbls := append(append([]telemetry.Label(nil), m.labels...), telemetry.L("rule", ruleName))
	return m.reg.Histogram("dcer_chase_rule_enumerate_ns", lbls...),
		m.reg.Histogram("dcer_chase_rule_merge_ns", lbls...)
}
