package chase_test

import (
	"testing"

	"dcer/internal/chase"
	"dcer/internal/datagen"
	"dcer/internal/mlpred"
	"dcer/internal/relation"
	"dcer/internal/rule"
)

func smallEngine(t *testing.T, opts chase.Options) (*chase.Engine, *relation.Dataset) {
	t.Helper()
	d, _ := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chase.New(d, rules, mlpred.DefaultRegistry(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng, d
}

func TestEngineStats(t *testing.T) {
	eng, _ := smallEngine(t, chase.Options{ShareIndexes: true})
	eng.Run()
	st := eng.Stats()
	if st.Valuations == 0 || st.Extensions == 0 {
		t.Error("no enumeration work recorded")
	}
	if st.MatchesFound != 4 {
		t.Errorf("MatchesFound = %d, want 4 (t2-t3, t12-t13, t9-t10, t1-t3)", st.MatchesFound)
	}
	if st.MLValidated != 6 {
		t.Errorf("MLValidated = %d, want 6 (3 unordered M4 pairs, both orders)", st.MLValidated)
	}
	if st.IndexBuilds == 0 {
		t.Error("no indexes built")
	}
	if st.MLCacheMiss == 0 {
		t.Error("no ML calls recorded")
	}
}

func TestEngineValidatedLookup(t *testing.T) {
	eng, d := smallEngine(t, chase.Options{ShareIndexes: true})
	eng.Run()
	g := eng.Gamma()
	if len(g.Validated) == 0 {
		t.Fatal("no validated predictions")
	}
	f := g.Validated[0]
	if !eng.Validated(f.Model, f.A, f.B) {
		t.Error("Validated() misses a validated fact")
	}
	if eng.Validated("nosuch", f.A, f.B) {
		t.Error("Validated() invents facts")
	}
	_ = d
}

// TestIncDeduceExternalFacts drives the engine the way the parallel master
// does: facts deduced "elsewhere" arrive as external updates and must
// trigger local deep deductions, and must not be echoed back in the delta.
func TestIncDeduceExternalFacts(t *testing.T) {
	src, labels := datagen.PaperExample()
	// This worker hosts every tuple but lacks φ2, so it cannot derive the
	// product match (t12,t13) itself — the match arrives from another
	// worker as an external fact and must trigger the deep φ4 deduction.
	all, err := datagen.PaperRules(src.DB)
	if err != nil {
		t.Fatal(err)
	}
	var rules []*rule.Rule
	for _, r := range all {
		if r.Name != "phi2" {
			rules = append(rules, r)
		}
	}
	eng, err := chase.New(src, rules, mlpred.DefaultRegistry(),
		chase.Options{ShareIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.Deduce()
	if eng.Same(labels["t1"].GID, labels["t3"].GID) {
		t.Fatal("(t1,t3) should not be derivable without the product match")
	}
	// The product match (t12,t13) arrives from another worker.
	ext := []chase.Fact{chase.MatchFact(labels["t12"].GID, labels["t13"].GID)}
	delta := eng.IncDeduce(ext)
	if !eng.Same(labels["t1"].GID, labels["t3"].GID) {
		t.Error("external product match did not trigger the deep deduction")
	}
	for _, f := range delta {
		if f == ext[0] {
			t.Error("external fact echoed back in the delta")
		}
	}
	// Repeating the same external fact must be a no-op.
	if again := eng.IncDeduce(ext); len(again) != 0 {
		t.Errorf("replayed external fact produced %d new facts", len(again))
	}
}

// TestScopedEngineRestrictsRules checks NewScoped: a rule scoped away from
// the matching tuples must not fire, while an unscoped one does.
func TestScopedEngineRestrictsRules(t *testing.T) {
	str := relation.TypeString
	db := relation.MustDatabase(relation.MustSchema("A", "k",
		relation.Attribute{Name: "k", Type: str},
		relation.Attribute{Name: "x", Type: str}))
	d := relation.NewDataset(db)
	t0 := d.MustAppend("A", relation.S("k0"), relation.S("same"))
	t1 := d.MustAppend("A", relation.S("k1"), relation.S("same"))
	t2 := d.MustAppend("A", relation.S("k2"), relation.S("same"))
	rules, err := rule.ParseResolved(`r: A(a) ^ A(b) ^ a.x = b.x -> a.id = b.id`, db)
	if err != nil {
		t.Fatal(err)
	}
	scope := d.Fragment([]relation.TID{t0.GID, t1.GID})
	eng, err := chase.NewScoped(d, rules, []*relation.Dataset{scope},
		mlpred.DefaultRegistry(), chase.Options{ShareIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !eng.Same(t0.GID, t1.GID) {
		t.Error("in-scope pair not matched")
	}
	if eng.Same(t0.GID, t2.GID) {
		t.Error("out-of-scope tuple matched")
	}
}
