package chase

import (
	"testing"

	"dcer/internal/datagen"
	"dcer/internal/mlpred"
)

// TestEnumerationAllocs is the allocation-regression guard for the
// enumeration inner loop: once Γ is saturated and the scratch buffers are
// grown, re-enumerating a rule (extend, candidatesFor, checkNewBinding,
// predict on warm caches) must be allocation-free. Both the interpreter
// and the compiled-plan batch path are held to the same budget — the
// plan path's per-depth candidate scratch must be reused, not regrown.
func TestEnumerationAllocs(t *testing.T) {
	for _, mode := range []struct {
		name      string
		interpret bool
	}{
		{"plan", false},
		{"interpret", true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			g := datagen.TPCH(datagen.TPCHOptions{Scale: 0.2, Dup: 0.2, Seed: 7})
			rules, err := g.Rules()
			if err != nil {
				t.Fatal(err)
			}
			e, err := New(g.D, rules, mlpred.DefaultRegistry(), Options{
				ShareIndexes:     true,
				SequentialDeduce: true,
				SequentialDrain:  true,
				InterpretRules:   mode.interpret,
			})
			if err != nil {
				t.Fatal(err)
			}
			e.Deduce()
			for _, br := range e.rules {
				br := br
				avg := testing.AllocsPerRun(3, func() { e.enumerateRule(br, nil) })
				// The budget tolerates incidental growth (a map bucket split,
				// a posting append) but catches any per-valuation allocation:
				// these rules inspect hundreds to thousands of valuations per
				// pass.
				if avg > 16 {
					t.Errorf("rule %s: %.1f allocs per saturated enumeration, want ~0 (per-valuation allocation regressed)",
						br.r.Name, avg)
				}
			}
		})
	}
}
