package chase

import (
	"fmt"

	"dcer/internal/relation"
)

// InsertTuples implements the ΔD extension sketched in the paper's
// Section V-A remark: given newly appended tuples, the engine inspects
// only the valuations that involve a new tuple and recursively propagates
// the consequences, instead of re-chasing from scratch.
//
// The tuples must already have been appended to the engine's dataset (via
// Dataset.Append) after the engine was constructed. Only unscoped engines
// (built with New, rules ranging over the whole dataset) support
// incremental updates. The returned facts are the newly deduced matches
// and validated predictions.
func (e *Engine) InsertTuples(tuples []*relation.Tuple) ([]Fact, error) {
	for _, br := range e.rules {
		if br.scope != e.d {
			return nil, fmt.Errorf("chase: InsertTuples requires an unscoped engine")
		}
	}
	// Extend the id space and membership bookkeeping.
	maxGID := -1
	for _, t := range tuples {
		if e.d.Tuple(t.GID) != t {
			return nil, fmt.Errorf("chase: tuple %d is not part of this engine's dataset", t.GID)
		}
		if int(t.GID) > maxGID {
			maxGID = int(t.GID)
		}
	}
	// Singleton classes are implicit in the members map (membersOf), so
	// growing the union-find is the only per-tuple bookkeeping needed.
	e.uf.Grow(maxGID + 1)
	// Maintain every materialized index (shared and rule-private).
	seenIx := make(map[*relation.IndexSet]bool)
	for _, br := range e.rules {
		if seenIx[br.ix] {
			continue
		}
		seenIx[br.ix] = true
		for _, t := range tuples {
			br.ix.Add(t)
		}
	}
	// Appending the tuples may have interned string payloads that a
	// constant predicate could not resolve at compile time; retry those
	// probe words now, while no enumeration is in flight.
	e.refreshPlanConsts()
	// A new tuple sharing a literal id value with an existing one denotes
	// the same entity; merge through the regular fact path so dependent
	// valuations are re-inspected. The engine's id index answers the
	// duplicate probe in O(1) per tuple instead of scanning the relation.
	e.delta = e.delta[:0]
	for _, t := range tuples {
		w := t.IDWord()
		if first, ok := e.idIndex[t.Rel][w]; ok {
			if first != t.GID {
				e.applyFact(MatchFact(first, t.GID))
			}
		} else {
			e.idIndex[t.Rel][w] = t.GID
		}
	}
	// Update-driven pass: only valuations involving a new tuple are new,
	// so seed each rule variable with each compatible new tuple.
	for _, br := range e.rules {
		for vi, v := range br.r.Vars {
			for _, t := range tuples {
				if t.Rel != v.RelIdx {
					continue
				}
				seed := make([]*relation.Tuple, len(br.r.Vars))
				seed[vi] = t
				e.enumerateRule(br, seed)
			}
		}
	}
	e.drain()
	return append([]Fact(nil), e.delta...), nil
}
