package chase

// Compiled predicate plans: every bound rule's static body predicates are
// compiled into one flat program per variable — constant checks, then
// intra-tuple and cross-variable equalities on packed words, then cheap
// similarity classifiers, heavier ML predicates last — and the enumeration
// inner loop evaluates whole candidate batches against the program with
// tight compaction loops over the columnar arenas (the CPU analog of
// HyperBlocker's rule execution-plan DAGs).
//
// Ordering is seeded statically (const → intra → index-backed equalities →
// sim → ML) and re-sorted adaptively from observed pass/fail counters,
// warm-started from the PR-3 per-rule enumeration histograms. Re-sorting
// happens only between drain rounds, never mid-batch, and reordering the
// conjuncts of a conjunction cannot change its survivor set, so Γ is
// byte-identical to the interpreter (Options.InterpretRules) under every
// drain mode.

import (
	"sort"
	"sync/atomic"

	"dcer/internal/mlpred"
	"dcer/internal/relation"
	"dcer/internal/rule"
	"dcer/internal/telemetry"
)

// DefaultPlanResortMinEvals is the default number of predicate
// evaluations a rule plan accumulates before its program order is
// re-sorted by observed selectivity (Options.PlanResortMinEvals).
const DefaultPlanResortMinEvals = 4096

// warmResortDiv divides the resort threshold for rules whose telemetry
// histograms already carry observations from an earlier engine on the
// same registry: their first batches refine an order that prior runs
// began calibrating, so they may re-rank sooner.
const warmResortDiv = 8

// wordPredKind discriminates the packed-word predicate forms.
type wordPredKind uint8

const (
	wpConst wordPredKind = iota // t.A = c
	wpIntra                     // t.A = t.B (both sides on the plan variable)
	wpEq                        // t.A = s.B (s bound earlier)
)

func (k wordPredKind) String() string {
	switch k {
	case wpConst:
		return "const"
	case wpIntra:
		return "intra"
	case wpEq:
		return "eq"
	}
	return "?"
}

// wordPred is one compiled packed-word check of a variable's program. The
// word comparisons mirror Value.Equal exactly: the packed layout already
// collapses -0/+0 and canonicalizes NaN payloads, so the only case where
// word equality and Value equality part ways is NaN = NaN, guarded by
// isFloat (int columns cannot hold a NaN word — they pack integral
// payloads — and string columns compare Syms).
type wordPred struct {
	kind wordPredKind
	p    *rule.Pred

	attr      int // attribute of the plan variable (A1 or A2 as oriented)
	attr2     int // second attribute of the variable (wpIntra)
	other     int // the other variable (wpEq)
	otherAttr int // the other variable's attribute (wpEq)
	isFloat   bool

	// constW is the resolved probe word of a wpConst. A string constant
	// not interned in the dataset matches nothing (constOK false); it is
	// re-resolved when InsertTuples interns new symbols. A NaN constant
	// stays unresolved forever (NaN equals nothing). Only mutated while
	// the engine is quiesced.
	constW  uint64
	constOK bool
	syms    *relation.SymTab
	// ix is the pre-resolved index over the constant's (relation,
	// attribute), probed by candidatesFor; nil on non-const steps.
	ix *relation.Index

	rank int // static seed position; adaptive tie-break

	// Observed selectivity, accumulated once per batch by the compiled
	// path (atomically: parallel drain chunks share the rule's plan).
	evals atomic.Int64
	fails atomic.Int64
}

// resolveConst (re)resolves a wpConst's probe word against the symbol
// table. Numeric constants resolve permanently at compile time; string
// constants may become resolvable later when an insertion interns the
// payload. Callers must be quiesced with respect to enumerations.
func (w *wordPred) resolveConst() {
	w.constW, w.constOK = w.syms.PackValue(w.p.Const)
}

// mlStep is one compiled ML predicate check; mi indexes the rule's
// boundMLPred (which owns the classifier, cache ids and dynamic flag).
type mlStep struct {
	mi   int
	p    *rule.Pred
	rank int

	evals atomic.Int64
	fails atomic.Int64
}

// varPlan is the compiled program for binding one rule variable. The
// slices are published through atomic pointers so the /debug/dcer plans
// provider can walk a plan while a drain is running: a reader sees either
// the pre- or post-resort order, never a partially sorted slice. The
// enumeration goroutines themselves only observe resorts between drain
// rounds (maybeResortPlans runs on the engine goroutine at round
// boundaries, after the workers have joined).
type varPlan struct {
	words atomic.Pointer[[]*wordPred]
	mls   atomic.Pointer[[]*mlStep]
}

// rulePlan is the compiled predicate program of one bound rule.
type rulePlan struct {
	vars []varPlan

	// consts keeps the per-variable constant checks in rule order for
	// candidatesFor: posting-list selection wants the resolved probe words
	// regardless of the adaptive order.
	consts [][]*wordPred

	// sortMin gates adaptive reordering: once sinceSort accumulates this
	// many predicate evaluations the next round boundary re-sorts the
	// programs. Non-positive disables reordering.
	sortMin   int64
	sinceSort atomic.Int64
	reorders  atomic.Int64
}

// compilePlan builds the predicate program of br. Plans are compiled even
// when Options.InterpretRules is set: candidatesFor uses the resolved
// constant words in both modes, and the interpreter's checkNewBinding
// walks the same word list (in whatever order it currently holds —
// conjunct order cannot change the outcome).
func compilePlan(e *Engine, br *boundRule) *rulePlan {
	r := br.r
	p := &rulePlan{
		vars:   make([]varPlan, len(r.Vars)),
		consts: make([][]*wordPred, len(r.Vars)),
	}
	syms := br.scope.Syms()
	attrType := func(v, a int) relation.Type {
		return br.scope.Relations[r.Vars[v].RelIdx].Schema.Attrs[a].Type
	}
	for v := range r.Vars {
		var words []*wordPred
		rank := 0
		for _, pr := range br.consts[v] {
			w := &wordPred{
				kind: wpConst, p: pr, attr: pr.A1, syms: syms, rank: rank,
				ix: br.ix.For(r.Vars[v].RelIdx, pr.A1),
			}
			w.resolveConst()
			rank++
			words = append(words, w)
			p.consts[v] = append(p.consts[v], w)
		}
		for _, pr := range br.intra[v] {
			words = append(words, &wordPred{
				kind: wpIntra, p: pr, attr: pr.A1, attr2: pr.A2,
				isFloat: attrType(v, pr.A1) == relation.TypeFloat,
				rank:    100 + rank,
			})
			rank++
		}
		for _, pr := range br.eqs {
			switch {
			case pr.V1 == v && pr.V2 != v:
				words = append(words, &wordPred{
					kind: wpEq, p: pr, attr: pr.A1, other: pr.V2, otherAttr: pr.A2,
					isFloat: attrType(v, pr.A1) == relation.TypeFloat,
					rank:    200 + rank,
				})
				rank++
			case pr.V2 == v && pr.V1 != v:
				words = append(words, &wordPred{
					kind: wpEq, p: pr, attr: pr.A2, other: pr.V1, otherAttr: pr.A1,
					isFloat: attrType(v, pr.A2) == relation.TypeFloat,
					rank:    200 + rank,
				})
				rank++
			}
		}
		var mls []*mlStep
		for i := range br.mls {
			m := &br.mls[i]
			if m.dynamic {
				continue // deferred to emit, like the interpreter
			}
			if m.pred.V1 != v && m.pred.V2 != v {
				continue
			}
			mrank := 400 + i
			if _, sim := m.cl.(*mlpred.SimClassifier); sim {
				mrank = 300 + i // cheap similarity classifiers before heavier models
			}
			mls = append(mls, &mlStep{mi: i, p: m.pred, rank: mrank})
		}
		p.vars[v].words.Store(&words)
		p.vars[v].mls.Store(&mls)
	}
	min := int64(e.opts.PlanResortMinEvals)
	switch {
	case min < 0:
		p.sortMin = 0
	case min == 0:
		p.sortMin = DefaultPlanResortMinEvals
	default:
		p.sortMin = min
	}
	if p.sortMin > warmResortDiv && br.enumHist != nil && br.enumHist.Snapshot().Count > 0 {
		p.sortMin /= warmResortDiv
	}
	return p
}

// refreshPlanConsts re-resolves the unresolved constant probe words of
// every plan, for insertion paths that intern new symbols after compile
// time. Must run quiesced (no enumeration in flight).
func (e *Engine) refreshPlanConsts() {
	for _, br := range e.rules {
		for _, ws := range br.plan.consts {
			for _, w := range ws {
				if !w.constOK {
					w.resolveConst()
				}
			}
		}
	}
}

// maybeResortPlans re-sorts the predicate programs of rules whose
// observation budget is due. Called only at quiesced points — the top of
// a drain round, after every worker of the previous batch has joined —
// so a batch never observes a mid-flight reorder and Γ stays
// deterministic (conjunct order cannot change a conjunction's survivors;
// determinism only needs the order to be stable within a batch).
func (e *Engine) maybeResortPlans() {
	if e.opts.InterpretRules {
		return
	}
	traced := e.curTC.Enabled()
	for _, br := range e.rules {
		p := br.plan
		if p == nil || p.sortMin <= 0 || p.sinceSort.Load() < p.sortMin {
			continue
		}
		p.sinceSort.Store(0)
		var before string
		if traced {
			before = planOrderDesc(br)
		}
		if p.resort() {
			e.cnt.planReorders.Add(1)
			if traced {
				// Stamp the re-sort with the order it replaced and the
				// pass/fail counts that triggered it (the "after" string
				// carries the same counters in the new order).
				e.curTC.Event("chase.plan.resort",
					telemetry.L("rule", br.r.Name),
					telemetry.L("before", before),
					telemetry.L("after", planOrderDesc(br)))
			}
		}
	}
}

// resort stably re-sorts every variable program by observed fail rate
// (most selective first), breaking ties — and ordering steps that have
// not been exercised yet — by static rank. Reports whether any program's
// order actually changed.
func (p *rulePlan) resort() bool {
	changed := false
	for v := range p.vars {
		vp := &p.vars[v]
		if resortSteps(&vp.words, func(w *wordPred) (int64, int64, int) {
			return w.evals.Load(), w.fails.Load(), w.rank
		}) {
			changed = true
		}
		if resortSteps(&vp.mls, func(m *mlStep) (int64, int64, int) {
			return m.evals.Load(), m.fails.Load(), m.rank
		}) {
			changed = true
		}
	}
	if changed {
		p.reorders.Add(1)
	}
	return changed
}

// resortSteps sorts one program slice through its atomic pointer,
// publishing a freshly sorted copy so concurrent readers never see a
// partial permutation. stats returns (evals, fails, static rank).
func resortSteps[T comparable](ptr *atomic.Pointer[[]T], stats func(T) (int64, int64, int)) bool {
	old := *ptr.Load()
	if len(old) < 2 {
		return false
	}
	failRate := func(s T) float64 {
		evals, fails, _ := stats(s)
		if evals == 0 {
			return -1 // unexercised: keep behind every observed step
		}
		return float64(fails) / float64(evals)
	}
	next := append([]T(nil), old...)
	sort.SliceStable(next, func(i, j int) bool {
		fi, fj := failRate(next[i]), failRate(next[j])
		if fi != fj {
			return fi > fj
		}
		_, _, ri := stats(next[i])
		_, _, rj := stats(next[j])
		return ri < rj
	})
	for i := range next {
		if next[i] != old[i] {
			ptr.Store(&next)
			return true
		}
	}
	return false
}

// planBuf returns the reusable candidate scratch for recursion depth d,
// sized for n tuples. One buffer per depth keeps the whole batched
// enumeration allocation-free after warm-up.
func (c *evalCtx) planBuf(d, n int) []*relation.Tuple {
	for len(c.planBufs) <= d {
		c.planBufs = append(c.planBufs, nil)
	}
	if cap(c.planBufs[d]) < n {
		c.planBufs[d] = make([]*relation.Tuple, n)
	}
	c.planBufs[d] = c.planBufs[d][:n]
	return c.planBufs[d]
}

// extendPlanned is the compiled counterpart of extend's candidate loop:
// the candidate batch for variable v is gathered into the depth's scratch
// and each applicable program step runs as one tight loop over the packed
// columns, compacting survivors in place. Candidate order is preserved,
// the variable choice was already made by extend, and the surviving set
// equals the interpreter's (each step is one conjunct of the same
// conjunction), so the recursion — and therefore Γ — is reached in the
// exact same order as the per-candidate interpreter.
func (c *evalCtx) extendPlanned(v int, cands []*relation.Tuple, nbound int) {
	c.extensions += int64(len(cands))
	br, binding := c.br, c.binding
	vp := &br.plan.vars[v]
	// src is read-only until the first filtering step, which writes its
	// survivors into the depth's scratch buffer; from then on the steps
	// compact buf in place. Reading the candidate posting list directly
	// spares the up-front batch copy (and skips it entirely on nodes
	// where no step applies).
	src := cands
	buf := c.planBuf(nbound, len(cands))
	n := len(src)
	var evals, steps int64

	for _, w := range *vp.words.Load() {
		if n == 0 {
			break
		}
		switch w.kind {
		case wpConst:
			if !w.constOK {
				// Unresolvable constant (unknown string or NaN): no tuple
				// can satisfy it.
				w.evals.Add(int64(n))
				w.fails.Add(int64(n))
				evals += int64(n)
				n = 0
			} else {
				n = filterWord(buf, src, n, w, w.constW, &evals)
				src = buf
			}
		case wpIntra:
			colA, colB := src[0].Col(w.attr), src[0].Col(w.attr2)
			k := 0
			for i := 0; i < n; i++ {
				t := src[i]
				wa := colA[t.Row]
				if wa == colB[t.Row] && !(w.isFloat && wa == relation.QNaNWord) {
					buf[k] = t
					k++
				}
			}
			w.evals.Add(int64(n))
			w.fails.Add(int64(n - k))
			evals += int64(n)
			n = k
			src = buf
		case wpEq:
			o := binding[w.other]
			if o == nil {
				continue // not applicable yet at this depth
			}
			key := o.Word(w.otherAttr)
			if w.isFloat && key == relation.QNaNWord {
				// NaN equals nothing, and the stored words canonicalize
				// every NaN payload to this one word.
				w.evals.Add(int64(n))
				w.fails.Add(int64(n))
				evals += int64(n)
				n = 0
			} else {
				n = filterWord(buf, src, n, w, key, &evals)
				src = buf
			}
		}
		steps++
	}

	// Head pruning runs before the ML steps: dropping a candidate whose
	// head fact is already enforced cannot change the survivor set (emit
	// re-checks the head under the final binding), and it spares
	// classifier calls on valuations that would be discarded anyway.
	if n > 0 {
		n, src = c.pruneHead(v, buf, src, n)
	}

	for _, m := range *vp.mls.Load() {
		if n == 0 {
			break
		}
		bm := &br.mls[m.mi]
		p := m.p
		self := p.V1 == v && p.V2 == v
		var other *relation.Tuple
		vIsLeft := false
		if !self {
			if p.V1 == v {
				other, vIsLeft = binding[p.V2], true
			} else {
				other = binding[p.V1]
			}
			if other == nil {
				continue
			}
		}
		k := 0
		for i := 0; i < n; i++ {
			t := src[i]
			ta, tb := t, t
			if !self {
				if vIsLeft {
					tb = other
				} else {
					ta = other
				}
			}
			if c.predict(bm, ta, tb) {
				buf[k] = t
				k++
			}
		}
		m.evals.Add(int64(n))
		m.fails.Add(int64(n - k))
		evals += int64(n)
		n = k
		src = buf
		steps++
	}

	c.planEvals += evals
	c.planBatches++
	br.plan.sinceSort.Add(evals)
	if c.e.tel != nil {
		c.e.tel.planDepth.Observe(uint64(steps))
	}

	for i := 0; i < n; i++ {
		binding[v] = src[i]
		c.extend(nbound+1, v)
	}
	binding[v] = nil
}

// filterWord writes into buf the candidates of src[:n] whose packed word
// of w.attr equals key. All candidates of a variable share one root
// relation (fragments share root tuples), so the column slice is hoisted
// once and the loop touches only packed words. buf == src is the in-place
// compaction of every step after the first. Callers guarantee key is
// never the canonical NaN word, so col[row] == key implies Value equality.
func filterWord(buf, src []*relation.Tuple, n int, w *wordPred, key uint64, evals *int64) int {
	col := src[0].Col(w.attr)
	k := 0
	for i := 0; i < n; i++ {
		t := src[i]
		if col[t.Row] == key {
			buf[k] = t
			k++
		}
	}
	w.evals.Add(int64(n))
	w.fails.Add(int64(n - k))
	*evals += int64(n)
	return k
}

// pruneHead writes into buf the candidates of src[:n] whose head fact is
// not already enforced in Γ, mirroring the head-pruning branch of
// checkNewBinding batch-wise; it returns the surviving count and the
// slice holding the survivors (src untouched when the head does not
// apply at this depth, buf otherwise; buf == src compacts in place).
func (c *evalCtx) pruneHead(v int, buf, src []*relation.Tuple, n int) (int, []*relation.Tuple) {
	br, binding := c.br, c.binding
	h := &br.r.Head
	self := h.V1 == v && h.V2 == v
	var other *relation.Tuple
	if !self {
		switch {
		case h.V1 == v:
			other = binding[h.V2]
		case h.V2 == v:
			other = binding[h.V1]
		default:
			return n, src
		}
		if other == nil {
			return n, src
		}
	}
	k := 0
	for i := 0; i < n; i++ {
		t := src[i]
		ta, tb := t, t
		if !self {
			if h.V1 == v {
				tb = other
			} else {
				ta = other
			}
		}
		if h.Kind == rule.PredID {
			if ta == tb || c.same(ta.GID, tb.GID) {
				continue
			}
		} else if c.e.validated[mlKey{h.Model, ta.GID, tb.GID}] {
			continue
		}
		buf[k] = t
		k++
	}
	return k, buf
}

// PlanPred is one step of a compiled predicate program together with its
// observed selectivity, as exposed by PlanReport, the plans debug
// provider, and cmd/bench -plandump.
type PlanPred struct {
	Pred     string  `json:"pred"`
	Kind     string  `json:"kind"`
	Evals    int64   `json:"evals"`
	Fails    int64   `json:"fails"`
	FailRate float64 `json:"fail_rate"`
}

// PlanVarReport is the compiled program of one rule variable, in current
// (possibly adaptively re-sorted) execution order.
type PlanVarReport struct {
	Var   string     `json:"var"`
	Preds []PlanPred `json:"preds"`
}

// RulePlanReport describes one rule's compiled plan.
type RulePlanReport struct {
	Rule     string          `json:"rule"`
	Reorders int64           `json:"reorders"`
	Vars     []PlanVarReport `json:"vars"`
}

// PlanReport is a point-in-time snapshot of the engine's compiled plans
// and their observed selectivities. Safe to call while a deduction is in
// flight: program slices are read through their atomic pointers and the
// counters are atomics.
type PlanReport struct {
	Interpreted    bool             `json:"interpreted"`
	PredsEvaluated int64            `json:"preds_evaluated"`
	Batches        int64            `json:"batches"`
	Reorders       int64            `json:"reorders"`
	Rules          []RulePlanReport `json:"rules"`
}

// PlanReport snapshots the engine's compiled predicate plans.
func (e *Engine) PlanReport() PlanReport {
	rep := PlanReport{
		Interpreted:    e.opts.InterpretRules,
		PredsEvaluated: e.cnt.planPreds.Load(),
		Batches:        e.cnt.planBatches.Load(),
		Reorders:       e.cnt.planReorders.Load(),
	}
	for _, br := range e.rules {
		rr := RulePlanReport{Rule: br.r.Name, Reorders: br.plan.reorders.Load()}
		for v := range br.plan.vars {
			vp := &br.plan.vars[v]
			pv := PlanVarReport{Var: br.r.Vars[v].Name}
			for _, w := range *vp.words.Load() {
				pv.Preds = append(pv.Preds, planPred(w.p.String(), w.kind.String(), w.evals.Load(), w.fails.Load()))
			}
			for _, m := range *vp.mls.Load() {
				pv.Preds = append(pv.Preds, planPred(m.p.String(), "ml", m.evals.Load(), m.fails.Load()))
			}
			rr.Vars = append(rr.Vars, pv)
		}
		rep.Rules = append(rep.Rules, rr)
	}
	return rep
}

func planPred(pred, kind string, evals, fails int64) PlanPred {
	pp := PlanPred{Pred: pred, Kind: kind, Evals: evals, Fails: fails}
	if evals > 0 {
		pp.FailRate = float64(fails) / float64(evals)
	}
	return pp
}
