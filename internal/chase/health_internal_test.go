package chase

// Internal health drills: these tests reach into the engine to plant
// corruption (a union-find parent cycle, a malformed Γ fact) or force a
// genuine drain stall, and assert the observatory catches each one.

import (
	"testing"
	"time"

	"dcer/internal/datagen"
	"dcer/internal/health"
	"dcer/internal/mlpred"
)

// paperEngine builds a paper-example engine attached to a fresh monitor
// whose sample size covers every id, so planted corruption is always
// sampled.
func paperEngine(t *testing.T, mon *health.Monitor) *Engine {
	t.Helper()
	d, _ := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(d, rules, mlpred.DefaultRegistry(), Options{ShareIndexes: true, Health: mon})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestAuditorsPassOnHealthyRun(t *testing.T) {
	mon := health.NewMonitor(health.Options{DiagnosisDir: t.TempDir(), SampleSize: 1 << 20, Seed: 1})
	defer mon.Stop()
	eng := paperEngine(t, mon)
	eng.Deduce()
	for _, name := range []string{"unionfind_roots", "gamma_provenance", "depstore_bytes", "plan_order"} {
		c := mon.Check(name)
		if c.Status() != health.StatusPass || c.Violations() != 0 {
			t.Errorf("check %s after a healthy Deduce: status %v, %d violation(s): %s",
				name, c.Status(), c.Violations(), c.Detail())
		}
	}
	if d := health.Diagnose(mon.Report()); !d.Healthy() {
		t.Errorf("healthy run diagnosed unhealthy:\n%s", d)
	}
}

// TestAuditorDetectsUnionFindCorruption plants a parent cycle in E_id
// after a clean run and asserts the auditor flips unionfind_roots to fail
// — the forced-corruption drill of the acceptance criteria.
func TestAuditorDetectsUnionFindCorruption(t *testing.T) {
	mon := health.NewMonitor(health.Options{DiagnosisDir: t.TempDir(), SampleSize: 1 << 20, Seed: 1})
	defer mon.Stop()
	eng := paperEngine(t, mon)
	eng.Deduce()

	eng.uf.SetParent(0, 1)
	eng.uf.SetParent(1, 0)
	eng.auditHealth()

	c := mon.Check("unionfind_roots")
	if c.Status() != health.StatusFail || c.Violations() == 0 {
		t.Fatalf("planted parent cycle not detected: status %v, %d violation(s)", c.Status(), c.Violations())
	}
	if d := health.Diagnose(mon.Report()); d.Healthy() {
		t.Fatal("diagnosis of a corrupted union-find reports healthy (cmd/doctor would exit 0)")
	}
}

// TestAuditorDetectsMalformedGamma appends a non-canonical match fact to
// Γ and asserts the gamma auditor rejects it.
func TestAuditorDetectsMalformedGamma(t *testing.T) {
	mon := health.NewMonitor(health.Options{DiagnosisDir: t.TempDir(), SampleSize: 1 << 20, Seed: 1})
	defer mon.Stop()
	eng := paperEngine(t, mon)
	eng.Deduce()

	// A > B breaks the canonical symmetric pair form MatchFact maintains.
	eng.gamma.Matches = append(eng.gamma.Matches, Fact{Kind: FactMatch, A: 5, B: 3})
	eng.auditHealth()

	c := mon.Check("gamma_provenance")
	if c.Status() != health.StatusFail || c.Violations() == 0 {
		t.Fatalf("malformed Γ fact not detected: status %v, %d violation(s)", c.Status(), c.Violations())
	}
}

// TestDrainStallCapturesBundle forces a genuine deduction stall — the
// paper-example chase with jaccard05 slowed to 40ms per call (4x the
// clamped-minimum watchdog deadline) — and asserts the whole stall
// pipeline: the stall is counted, a complete flight-recorder bundle is
// written and loads back, and the diagnosis fails (so cmd/doctor exits
// nonzero on it).
func TestDrainStallCapturesBundle(t *testing.T) {
	d, _ := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	reg := mlpred.DefaultRegistry()
	reg.Register(&mlpred.SimClassifier{
		ClassifierName: "jaccard05",
		Metric: func(a, b string) float64 {
			time.Sleep(40 * time.Millisecond)
			return mlpred.Jaccard(a, b)
		},
		Threshold: 0.5,
	})

	dir := t.TempDir()
	mon := health.NewMonitor(health.Options{
		DiagnosisDir:  dir,
		StallDeadline: health.MinStallDeadline,
	})
	mon.Start()
	defer mon.Stop()

	eng, err := New(d, rules, reg, Options{ShareIndexes: true, Health: mon})
	if err != nil {
		t.Fatal(err)
	}
	eng.Deduce()
	mon.Stop()

	rep := mon.Report()
	if rep.Stalls == 0 {
		t.Fatal("slowed chase ran past the deadline but no stall was recorded")
	}
	if rep.LastBundle == "" {
		t.Fatal("stall recorded but no flight-recorder bundle captured")
	}
	b, err := health.LoadBundle(rep.LastBundle)
	if err != nil {
		t.Fatalf("LoadBundle(%s): %v", rep.LastBundle, err)
	}
	if len(b.Missing) != 0 {
		t.Fatalf("stall bundle incomplete, missing %v", b.Missing)
	}
	if b.Manifest.Reason != "stall:chase_drain" {
		t.Errorf("bundle reason = %q, want stall:chase_drain", b.Manifest.Reason)
	}
	if diag := health.Diagnose(rep); diag.Healthy() {
		t.Fatal("diagnosis of a stalled run reports healthy (cmd/doctor would exit 0)")
	}
}

// TestHealthDisabledIsInert: with Options.Health nil the engine must run
// exactly as before — no health state, no checks, identical classes.
func TestHealthDisabledIsInert(t *testing.T) {
	d, _ := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(d, rules, mlpred.DefaultRegistry(), Options{ShareIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	if eng.health != nil {
		t.Fatal("nil Options.Health still initialized engine health state")
	}
	eng.Deduce()
}
