package chase_test

import (
	"testing"

	"dcer/internal/chase"
	"dcer/internal/telemetry"
)

// TestEngineMetricsRegistry runs Deduce with a registry attached and checks
// that the registry's gauge views agree with Engine.Stats (one source of
// truth), the per-rule stage histograms saw work, and the tracer recorded
// the Deduce span.
func TestEngineMetricsRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	eng, _ := smallEngine(t, chase.Options{
		ShareIndexes: true,
		Metrics:      reg,
		MetricsLabels: []telemetry.Label{
			telemetry.L("worker", "0"),
		},
	})
	eng.Run()
	st := eng.Stats()

	vals := map[string]float64{}
	hists := map[string]*telemetry.HistSnapshot{}
	for _, s := range reg.Snapshot() {
		switch s.Kind {
		case "histogram":
			if prev, ok := hists[s.Name]; ok {
				prev.Count += s.Histogram.Count
			} else {
				h := *s.Histogram
				hists[s.Name] = &h
			}
		default:
			vals[s.Name] += s.Value
		}
	}

	checks := []struct {
		name string
		want int64
	}{
		{"dcer_chase_valuations", st.Valuations},
		{"dcer_chase_extensions", st.Extensions},
		{"dcer_chase_matches", st.MatchesFound},
		{"dcer_chase_ml_validated", st.MLValidated},
		{"dcer_chase_deps_recorded", st.DepsRecorded},
		{"dcer_chase_deps_fired", st.DepsFired},
	}
	for _, c := range checks {
		got, ok := vals[c.name]
		if !ok {
			t.Errorf("series %s missing from registry", c.name)
			continue
		}
		if int64(got) != c.want {
			t.Errorf("%s = %v, registry and Stats disagree (want %d)", c.name, got, c.want)
		}
	}
	if vals["dcer_chase_mlcache_entries"] != float64(st.MLCacheSize) {
		t.Errorf("mlcache_entries = %v, want %d", vals["dcer_chase_mlcache_entries"], st.MLCacheSize)
	}

	enum, ok := hists["dcer_chase_rule_enumerate_ns"]
	if !ok || enum.Count == 0 {
		t.Error("no per-rule enumeration timings recorded")
	}

	var sawDeduce bool
	for _, sp := range reg.Tracer().Snapshot() {
		if sp.Name == "chase.Deduce" {
			sawDeduce = true
		}
	}
	if !sawDeduce {
		t.Error("tracer has no chase.Deduce span")
	}
}

// TestEngineMetricsDisabled: with no registry the engine must behave
// identically and Stats must still count.
func TestEngineMetricsDisabled(t *testing.T) {
	eng, _ := smallEngine(t, chase.Options{ShareIndexes: true})
	eng.Run()
	if st := eng.Stats(); st.Valuations == 0 || st.MatchesFound == 0 {
		t.Error("stats not recorded without a registry")
	}
}
