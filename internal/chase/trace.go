package chase

// Causal tracing and wide events of the engine. Spans follow the call
// tree: Deduce/IncDeduce roots parent the per-rule enumerate/merge spans
// of the first pass and the per-round drain spans, which in turn parent
// the drain batches, the plan re-sort events, and the cache-miss
// classifier calls of the ML predicate layer. Everything is gated on
// TraceContext.Enabled() (one branch per site when tracing is off) and
// records into the bounded ring of the registry's tracer, so a live run
// can be exported as a Perfetto-loadable Chrome trace at any time
// (/debug/trace, cmd -traceout).

import (
	"strconv"
	"strings"
	"time"

	"dcer/internal/telemetry"
)

// mlTraceFloor is the duration floor under which a cache-miss classifier
// call is not recorded as a span: sub-floor predictions are plentiful
// and individually uninteresting, and the ring is bounded.
const mlTraceFloor = 200 * time.Microsecond

// fineSpanFloor is the duration floor for the per-rule and per-batch
// spans inside a drain (enumerate, merge, drain.batch). A scale-2 Deduce
// runs thousands of drain rounds whose per-rule enumerations mostly take
// a few tens of microseconds; recording each would roughly double the
// instrumented-run overhead and bury the trace in dust. Round and root
// spans always record, so the causal skeleton stays complete.
const fineSpanFloor = 100 * time.Microsecond

// startRoot opens a top-level engine span (Deduce / IncDeduce) and, when
// tracing is enabled, re-parents the in-flight context under it so the
// pass's child spans (enumerations, drain rounds) attach to this call.
func (e *Engine) startRoot(name string) telemetry.Span {
	if e.tc.Enabled() {
		sp := e.tc.Start(name, e.opts.MetricsLabels...)
		e.curTC = sp.Context()
		return sp
	}
	if e.tel != nil {
		return e.tel.tracer.Start(name, e.tel.labels...)
	}
	return telemetry.Span{}
}

// endRoot closes a top-level engine span and drops the in-flight
// context.
func (e *Engine) endRoot(sp telemetry.Span) {
	e.curTC = telemetry.TraceContext{}
	sp.End()
}

// SetTraceContext re-parents the engine's future Deduce/IncDeduce roots
// under tc — the parallel engine points each worker's engine at the
// current superstep span, on the worker's lane. Only call while the
// engine is quiescent (no deduction in flight).
func (e *Engine) SetTraceContext(tc telemetry.TraceContext) { e.tc = tc }

// planOrderDesc renders the current execution order of a rule's compiled
// plan with each step's observed pass/fail account — the payload the
// re-sort events stamp so a Perfetto view shows why the order changed.
func planOrderDesc(br *boundRule) string {
	var sb strings.Builder
	for v := range br.plan.vars {
		vp := &br.plan.vars[v]
		if v > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(br.r.Vars[v].Name)
		sb.WriteByte(':')
		sb.WriteByte('[')
		first := true
		step := func(pred string, evals, fails int64) {
			if !first {
				sb.WriteByte(' ')
			}
			first = false
			sb.WriteString(pred)
			sb.WriteByte('(')
			sb.WriteString(strconv.FormatInt(evals-fails, 10))
			sb.WriteByte('/')
			sb.WriteString(strconv.FormatInt(fails, 10))
			sb.WriteByte(')')
		}
		for _, w := range *vp.words.Load() {
			step(w.p.String(), w.evals.Load(), w.fails.Load())
		}
		for _, m := range *vp.mls.Load() {
			step(m.p.String(), m.evals.Load(), m.fails.Load())
		}
		sb.WriteByte(']')
	}
	return sb.String()
}

// wideRound emits the per-drain-round wide event: one JSON line carrying
// the round's progress and the full knob state of the engine, so a long
// run is post-hoc debuggable from a grep. Callers gate on the logger's
// level before computing any of the arguments.
func (e *Engine) wideRound(round, fired, events int) {
	fields := make([]telemetry.F, 0, 16+len(e.opts.MetricsLabels))
	for _, l := range e.opts.MetricsLabels {
		fields = append(fields, telemetry.F{K: l.Key, V: l.Value})
	}
	fields = append(fields,
		telemetry.F{K: "round", V: round},
		telemetry.F{K: "deps_fired", V: fired},
		telemetry.F{K: "events", V: events},
		telemetry.F{K: "matches", V: e.cnt.matches.Load()},
		telemetry.F{K: "ml_validated", V: e.cnt.mlValidated.Load()},
		telemetry.F{K: "plan_on", V: !e.opts.InterpretRules},
		telemetry.F{K: "plan_resorts", V: e.cnt.planReorders.Load()},
		telemetry.F{K: "mem_budget_bytes", V: e.opts.MemBudgetBytes},
		telemetry.F{K: "mem_dataset_bytes", V: e.cnt.memDataset.Load()},
		telemetry.F{K: "mem_gamma_bytes", V: e.cnt.memGamma.Load()},
		telemetry.F{K: "mem_deps_bytes", V: e.cnt.memDeps.Load()},
		telemetry.F{K: "deps_evicted", V: e.cnt.memEvicted.Load()},
		telemetry.F{K: "seq_drain", V: e.opts.SequentialDrain},
	)
	e.log.Wide(telemetry.LogDebug, "deduce_round", fields...)
}
