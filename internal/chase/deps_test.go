package chase

import (
	"testing"

	"dcer/internal/relation"
)

func lit(a, b relation.TID) Literal { return Literal{Kind: FactMatch, A: a, B: b} }

func TestDepStoreAddAndDedup(t *testing.T) {
	s := NewDepStore(10)
	d := &Dep{Body: []Literal{lit(1, 2)}, Head: lit(3, 4)}
	if !s.Add(d) || s.Len() != 1 {
		t.Fatal("first add failed")
	}
	if !s.Add(d) || s.Len() != 1 {
		t.Error("duplicate changed the store")
	}
	if s.Dropped() != 0 {
		t.Error("dedup counted as drop")
	}
}

func TestDepStoreCapacity(t *testing.T) {
	s := NewDepStore(2)
	for i := relation.TID(0); i < 5; i++ {
		s.Add(&Dep{Body: []Literal{lit(i, i+1)}, Head: lit(i+10, i+11)})
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if s.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", s.Dropped())
	}
	// Unbounded store.
	u := NewDepStore(-1)
	for i := relation.TID(0); i < 100; i++ {
		u.Add(&Dep{Body: []Literal{lit(i, i+1)}, Head: lit(i+200, i+201)})
	}
	if u.Len() != 100 || u.Dropped() != 0 {
		t.Errorf("unbounded store: Len=%d Dropped=%d", u.Len(), u.Dropped())
	}
}

func TestDepStoreFire(t *testing.T) {
	s := NewDepStore(10)
	s.Add(&Dep{Body: []Literal{lit(1, 2), lit(3, 4)}, Head: lit(5, 6)})
	s.Add(&Dep{Body: []Literal{lit(7, 8)}, Head: lit(5, 6)}) // same head, other body
	s.Add(&Dep{Body: []Literal{lit(9, 10)}, Head: lit(11, 12)})

	sat := map[Literal]bool{lit(1, 2): true}
	fired := s.Fire(func(l Literal) bool { return sat[l] })
	if len(fired) != 0 {
		t.Fatalf("fired with unsatisfied body: %v", fired)
	}
	sat[lit(3, 4)] = true
	fired = s.Fire(func(l Literal) bool { return sat[l] })
	if len(fired) != 1 || fired[0].Head != lit(5, 6) {
		t.Fatalf("fired = %v", fired)
	}
	// Both deps with head (5,6) must be gone; the third dep remains.
	if s.Len() != 1 {
		t.Errorf("Len after fire = %d, want 1", s.Len())
	}
}

func TestDepStoreRemoveHead(t *testing.T) {
	s := NewDepStore(10)
	s.Add(&Dep{Body: []Literal{lit(1, 2)}, Head: lit(5, 6)})
	s.Add(&Dep{Body: []Literal{lit(3, 4)}, Head: lit(5, 6)})
	s.RemoveHead(lit(5, 6))
	if s.Len() != 0 {
		t.Errorf("Len = %d after RemoveHead", s.Len())
	}
}

func TestLiteralKeysDistinct(t *testing.T) {
	a := Literal{Kind: FactMatch, A: 1, B: 2}
	b := mlLit("m", 1, 2)
	c := mlLit("n", 1, 2)
	const basis = 14695981039346656037
	if a.hashInto(basis) == b.hashInto(basis) || b.hashInto(basis) == c.hashInto(basis) {
		t.Error("literal hashes collide across kinds/models")
	}
	// Dependency fingerprints must separate body from head: l1 → l2 and
	// l2 → l1 are different dependencies.
	d1 := &Dep{Body: []Literal{a}, Head: b}
	d2 := &Dep{Body: []Literal{b}, Head: a}
	if d1.key() == d2.key() {
		t.Error("dep keys ignore body/head position")
	}
}

func TestFactString(t *testing.T) {
	if MatchFact(2, 1).String() != "(1.id = 2.id)" {
		t.Errorf("MatchFact string: %s", MatchFact(2, 1))
	}
	if MLFact("m", 1, 2).String() != "m(1, 2)" {
		t.Errorf("MLFact string: %s", MLFact("m", 1, 2))
	}
	g := &Gamma{Matches: []Fact{MatchFact(1, 2)}, Validated: []Fact{MLFact("m", 1, 2)}}
	if g.Size() != 2 {
		t.Errorf("Gamma.Size = %d", g.Size())
	}
}
