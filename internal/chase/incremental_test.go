package chase_test

import (
	"fmt"
	"testing"

	"dcer/internal/chase"
	"dcer/internal/datagen"
	"dcer/internal/mlpred"
	"dcer/internal/relation"
	"dcer/internal/rule"
)

func parseFor(db *relation.Database, text string) ([]*rule.Rule, error) {
	return rule.ParseResolved(text, db)
}

// TestInsertTuplesPaperExample chases Tables I-IV *without* the two
// IP-sharing orders that enable the deep φ4 deduction, then inserts them
// incrementally: the engine must converge to the same Γ as a from-scratch
// chase (the ΔD extension of the Section V-A remark).
func TestInsertTuplesPaperExample(t *testing.T) {
	src, labels := datagen.PaperExample()
	d := relation.NewDataset(src.DB)
	label := map[string]*relation.Tuple{}
	for i, tt := range src.Tuples() {
		if tt == labels["t16"] || tt == labels["t17"] {
			continue
		}
		name := src.DB.Schemas[tt.Rel].Name
		label[fmt.Sprintf("t%d", i+1)] = d.MustAppend(name, tt.Values()...)
	}
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chase.New(d, rules, mlpred.DefaultRegistry(), chase.Options{ShareIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Before the orders exist, the deep customer match must be absent.
	if eng.Same(label["t1"].GID, label["t3"].GID) {
		t.Fatal("(t1,t3) matched before the enabling orders exist")
	}

	var inserted []*relation.Tuple
	for _, name := range []string{"t16", "t17"} {
		inserted = append(inserted, d.MustAppend("Orders", labels[name].Values()...))
	}
	delta, err := eng.InsertTuples(inserted)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) == 0 {
		t.Fatal("incremental insertion deduced nothing")
	}
	if !eng.Same(label["t1"].GID, label["t3"].GID) {
		t.Error("deep match (t1,t3) not recovered incrementally")
	}
	if !eng.Same(label["t1"].GID, label["t2"].GID) {
		t.Error("transitive match (t1,t2) not recovered incrementally")
	}
	if got, want := len(eng.Classes()), 3; got != want {
		t.Errorf("classes after insertion = %d, want %d", got, want)
	}
}

// TestInsertTuplesMatchesScratch inserts random slices of the TPC-H data
// incrementally and compares against a from-scratch chase.
func TestInsertTuplesMatchesScratch(t *testing.T) {
	g := datagen.TPCH(datagen.TPCHOptions{Scale: 0.03, Dup: 0.4, Seed: 5})
	rules, err := g.Rules()
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := chase.New(g.D, rules, mlpred.DefaultRegistry(), chase.Options{ShareIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	scratch.Run()

	// Rebuild the dataset withholding every 7th tuple, then insert them.
	d := relation.NewDataset(g.D.DB)
	gidMap := make(map[relation.TID]relation.TID) // src gid -> new gid
	var heldSrc []*relation.Tuple
	for i, tt := range g.D.Tuples() {
		if i%7 == 3 {
			heldSrc = append(heldSrc, tt)
			continue
		}
		nt := d.MustAppend(g.D.DB.Schemas[tt.Rel].Name, tt.Values()...)
		gidMap[tt.GID] = nt.GID
	}
	rules2, err := g.Rules()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chase.New(d, rules2, mlpred.DefaultRegistry(), chase.Options{ShareIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	var held []*relation.Tuple
	for _, tt := range heldSrc {
		nt := d.MustAppend(g.D.DB.Schemas[tt.Rel].Name, tt.Values()...)
		gidMap[tt.GID] = nt.GID
		held = append(held, nt)
	}
	if _, err := eng.InsertTuples(held); err != nil {
		t.Fatal(err)
	}
	// Compare the full pairwise relation through the gid mapping.
	for i := 0; i < g.D.Size(); i++ {
		for j := i + 1; j < g.D.Size(); j++ {
			a, b := relation.TID(i), relation.TID(j)
			if scratch.Same(a, b) != eng.Same(gidMap[a], gidMap[b]) {
				t.Fatalf("incremental and scratch disagree on (%d,%d)", i, j)
			}
		}
	}
}

// TestInsertTuplesDupID checks that an inserted tuple sharing a literal id
// with an existing tuple is merged and drives further deductions.
func TestInsertTuplesDupID(t *testing.T) {
	str := relation.TypeString
	db := relation.MustDatabase(relation.MustSchema("A", "k",
		relation.Attribute{Name: "k", Type: str},
		relation.Attribute{Name: "x", Type: str}))
	d := relation.NewDataset(db)
	d.MustAppend("A", relation.S("k1"), relation.S("u"))
	d.MustAppend("A", relation.S("k2"), relation.S("v"))
	rs, err := parseFor(db, `r: A(a) ^ A(b) ^ a.x = b.x -> a.id = b.id`)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chase.New(d, rs, mlpred.DefaultRegistry(), chase.Options{ShareIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Insert a tuple with id k2 but value "u": merging with k2 by literal
	// id and with k1 by the rule joins everything.
	nt := d.MustAppend("A", relation.S("k2"), relation.S("u"))
	if _, err := eng.InsertTuples([]*relation.Tuple{nt}); err != nil {
		t.Fatal(err)
	}
	if !eng.Same(0, 1) || !eng.Same(0, 2) {
		t.Error("insertion did not bridge k1 and k2")
	}
}

// TestInsertTuplesErrors checks the guard rails.
func TestInsertTuplesErrors(t *testing.T) {
	d, _ := datagen.PaperExample()
	rules, err := datagen.PaperRules(d.DB)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chase.New(d, rules, mlpred.DefaultRegistry(), chase.Options{ShareIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	other, _ := datagen.PaperExample()
	if _, err := eng.InsertTuples(other.Tuples()[:1]); err == nil {
		t.Error("foreign tuple accepted")
	}
}
