package chase

// The engine's side of the health observatory (internal/health): a
// heartbeat bracketing every deduction, and sampled invariant auditors
// run at quiesced drain-round boundaries — the same point where plans
// re-sort and budgets recompute, so no enumeration is in flight and the
// engine's single-goroutine state (union-find, Γ, H) is stable without
// locks. Disabled (Options.Health nil) the whole layer costs one nil
// check per drain round.

import (
	"dcer/internal/health"
	"dcer/internal/provenance"
	"dcer/internal/relation"
)

// healthAuditEvery is the drain-round period of the sampled audits; the
// final quiesced round of every deduction always audits, so short chases
// are still covered.
const healthAuditEvery = 32

// engineHealth holds the engine's registered checks and heartbeat.
type engineHealth struct {
	mon   *health.Monitor
	hb    *health.Heartbeat
	uf    *health.Check
	gamma *health.Check
	deps  *health.Check
	plan  *health.Check

	sampleN int
	seed    int64
	audits  int64
	// accSeen is how many Γ match facts the accuracy observatory has
	// already scored, so each fact is sampled at most once.
	accSeen int
}

func (e *Engine) initHealth(m *health.Monitor) {
	if m == nil {
		return
	}
	e.health = &engineHealth{
		mon:     m,
		hb:      m.Heartbeat("chase_drain"),
		uf:      m.Check("unionfind_roots"),
		gamma:   m.Check("gamma_provenance"),
		deps:    m.Check("depstore_bytes"),
		plan:    m.Check("plan_order"),
		sampleN: m.SampleSize(),
		seed:    m.Seed(),
	}
}

// auditHealth runs every invariant auditor once over fresh samples, then
// feeds the accuracy observatory. Called on the engine's goroutine at a
// quiesced round boundary only. The Γ and accuracy passes resolve pairs
// through E_id's Find, which only terminates on a canonical forest — so
// they run only when the union-find audit passes; its failure already
// fails the diagnosis.
func (e *Engine) auditHealth() {
	h := e.health
	h.audits++
	seed := h.seed + h.audits
	ufOK := e.auditUnionFind(seed)
	if ufOK {
		e.auditGamma(seed)
	}
	e.auditDeps()
	e.auditPlans()
	if ufOK {
		e.observeAccuracy()
	}
}

// auditUnionFind checks that sampled parent chains of E_id are canonical:
// in-range links ending at a self-parented root, no cycles. Returns
// whether the sampled forest is safe to traverse.
func (e *Engine) auditUnionFind(seed int64) bool {
	h := e.health
	sample := health.SampleIDs(e.uf.Len(), h.sampleN, seed)
	if err := health.AuditUnionFind(e.uf, sample); err != nil {
		h.uf.Fail(len(sample), "%v", err)
		return false
	}
	h.uf.Pass(len(sample))
	return true
}

// auditGamma checks sampled Γ match facts: canonical symmetric form
// (A < B, never reflexive), hosted by E_id, and — when provenance is on
// and complete — justified in the log, with rule-origin entries naming
// their rule.
func (e *Engine) auditGamma(seed int64) {
	h := e.health
	n := len(e.gamma.Matches)
	idx := health.SampleIDs(n, h.sampleN, seed)
	provComplete := e.prov != nil && e.prov.Complete()
	for _, i := range idx {
		f := e.gamma.Matches[i]
		switch {
		case f.A == f.B:
			h.gamma.Fail(len(idx), "reflexive match %v in Γ", f)
			return
		case f.B < f.A:
			h.gamma.Fail(len(idx), "non-canonical match %v (A > B breaks the symmetric pair form)", f)
			return
		case !e.uf.Same(int(f.A), int(f.B)):
			h.gamma.Fail(len(idx), "match %v not reflected in E_id", f)
			return
		}
		if provComplete {
			ent, ok := e.prov.Lookup(provenance.MatchID(f.A, f.B))
			if !ok {
				h.gamma.Fail(len(idx), "match %v has no justification in the complete provenance log", f)
				return
			}
			if ent.Origin == provenance.OriginRule && ent.Rule == "" {
				h.gamma.Fail(len(idx), "match %v: rule-origin justification names no rule", f)
				return
			}
		}
	}
	h.gamma.Pass(len(idx))
}

// auditDeps recomputes the dependency store's byte account over a sample:
// exact equality when the sample covers the store, a tolerance-banded
// extrapolation (warn, not fail) otherwise.
func (e *Engine) auditDeps() {
	h := e.health
	n := e.H.Len()
	sampled, got := e.H.auditBytes(h.sampleN)
	acct := e.H.MemBytes()
	if sampled == n {
		if got != acct {
			h.deps.Fail(sampled, "H accounts %d bytes but a full recount gives %d (%d deps)", acct, got, n)
			return
		}
		h.deps.Pass(sampled)
		return
	}
	est := got / int64(sampled) * int64(n)
	if acct > est+est/2 || acct < est/2 {
		h.deps.Warn(sampled, "H accounts %d bytes vs ~%d extrapolated from %d of %d deps", acct, est, sampled, n)
		return
	}
	h.deps.Pass(sampled)
}

// planOrderEvalFloor is the per-predicate evaluation count below which
// observed fail rates are considered noise for the order-sanity warning.
const planOrderEvalFloor = 256

// auditPlans checks the compiled plans' counter sanity (fails ≤ evals,
// rates in [0,1]) and warns when adaptive reordering left a variable's
// word program strongly inverted (a much more selective predicate running
// after a much less selective one).
func (e *Engine) auditPlans() {
	h := e.health
	rep := e.PlanReport()
	preds := 0
	for _, r := range rep.Rules {
		for _, v := range r.Vars {
			for _, p := range v.Preds {
				preds++
				if p.Fails < 0 || p.Evals < 0 || p.Fails > p.Evals {
					h.plan.Fail(preds, "rule %s var %s pred %s: fails %d vs evals %d", r.Rule, v.Var, p.Pred, p.Fails, p.Evals)
					return
				}
				if p.FailRate < 0 || p.FailRate > 1 {
					h.plan.Fail(preds, "rule %s var %s pred %s: fail rate %v outside [0,1]", r.Rule, v.Var, p.Pred, p.FailRate)
					return
				}
			}
			if e.opts.PlanResortMinEvals >= 0 && !rep.Interpreted {
				if first, last, ok := wordRateSpread(v.Preds); ok && last-first > 0.5 {
					h.plan.Warn(preds, "rule %s var %s: word order inverted (first fail rate %.2f, last %.2f)", r.Rule, v.Var, first, last)
					return
				}
			}
		}
	}
	h.plan.Pass(preds)
}

// wordRateSpread returns the observed fail rates of the first and last
// non-ML predicate of a variable program with enough evaluations to
// matter; ok is false when fewer than two qualify.
func wordRateSpread(preds []PlanPred) (first, last float64, ok bool) {
	seen := 0
	for _, p := range preds {
		if p.Kind == "ml" || p.Evals < planOrderEvalFloor {
			continue
		}
		if seen == 0 {
			first = p.FailRate
		}
		last = p.FailRate
		seen++
	}
	return first, last, seen >= 2
}

// observeAccuracy feeds the live accuracy observatory: newly deduced Γ
// matches (each fact sampled at most once, via a stride over the new
// suffix) scored against the ground truth with false positives attributed
// through their provenance proofs, then a recall probe over the
// deterministic truth sample.
func (e *Engine) observeAccuracy() {
	h := e.health
	acc := h.mon.Accuracy()
	if acc == nil {
		return
	}
	if n := len(e.gamma.Matches); n > h.accSeen {
		fresh := e.gamma.Matches[h.accSeen:n]
		h.accSeen = n
		step := (len(fresh) + h.sampleN - 1) / h.sampleN
		if step < 1 {
			step = 1
		}
		pairs := make([][2]relation.TID, 0, (len(fresh)+step-1)/step)
		for i := 0; i < len(fresh); i += step {
			pairs = append(pairs, [2]relation.TID{fresh[i].A, fresh[i].B})
		}
		var attribute func(p [2]relation.TID) string
		if e.prov != nil {
			attribute = func(p [2]relation.TID) string {
				ent, ok := e.prov.Lookup(provenance.MatchID(p[0], p[1]))
				if !ok {
					return ""
				}
				if ent.Rule != "" {
					return ent.Rule
				}
				return ent.Origin.String()
			}
		}
		acc.ObserveMatches(pairs, attribute)
	}
	acc.ObserveRecall(func(a, b relation.TID) bool { return e.Same(a, b) })
}
