package chase

import (
	"sort"
	"testing"

	"dcer/internal/datagen"
	"dcer/internal/mlpred"
	"dcer/internal/relation"
)

// TestDepStoreByteBudget pins the eviction contract: the store sheds its
// oldest entries to stay under the byte bound, newest entries survive,
// and the byte estimate tracks what is resident.
func TestDepStoreByteBudget(t *testing.T) {
	s := NewDepStore(-1)
	// Room for roughly three single-literal deps.
	s.SetByteBudget(3 * (depFixedBytes + depLitBytes))
	for i := relation.TID(0); i < 10; i++ {
		s.Add(&Dep{Body: []Literal{lit(i, i+1)}, Head: lit(i+100, i+101)})
	}
	if s.Len() > 3 {
		t.Fatalf("Len = %d, want ≤ 3 under the byte budget", s.Len())
	}
	if s.Evicted()+s.Dropped() < 7 {
		t.Fatalf("evicted %d + dropped %d, want ≥ 7 shed", s.Evicted(), s.Dropped())
	}
	// The survivors must be the newest insertions.
	for i := relation.TID(10 - s.Len()); i < 10; i++ {
		if _, ok := s.deps[depKey([]Literal{lit(i, i+1)}, lit(i+100, i+101))]; !ok {
			t.Errorf("newest dep %d should have survived eviction", i)
		}
	}
	if s.MemBytes() <= 0 || s.MemBytes() > s.budget {
		t.Errorf("MemBytes = %d, want within (0, %d]", s.MemBytes(), s.budget)
	}
	// Removing the bound lets the store grow again.
	s.SetByteBudget(0)
	before := s.Len()
	s.Add(&Dep{Body: []Literal{lit(50, 51)}, Head: lit(150, 151)})
	if s.Len() != before+1 {
		t.Error("unbounded store should accept new deps")
	}
}

// TestDepStoreSlotRecycling checks that removed slots are reused and that
// recycled bodies do not leak into new occupants.
func TestDepStoreSlotRecycling(t *testing.T) {
	s := NewDepStore(-1)
	s.Add(&Dep{Body: []Literal{lit(1, 2), lit(3, 4)}, Head: lit(5, 6)})
	s.RemoveHead(lit(5, 6))
	if len(s.free) != 1 {
		t.Fatalf("free list has %d slots, want 1", len(s.free))
	}
	s.Add(&Dep{Body: []Literal{lit(7, 8)}, Head: lit(9, 10)})
	if len(s.free) != 0 {
		t.Fatal("recycled slot not reused")
	}
	d := s.deps[depKey([]Literal{lit(7, 8)}, lit(9, 10))]
	if len(d.Body) != 1 || d.Body[0] != lit(7, 8) {
		t.Fatalf("recycled slot carries stale body: %v", d.Body)
	}
}

// TestMemBudgetGammaEquivalence is the spill-to-regeneration correctness
// check: a chase squeezed under a tight memory budget (H constantly
// shedding) must deduce exactly the same Γ as an unbounded run — only
// slower, via the update-driven re-evaluation path.
func TestMemBudgetGammaEquivalence(t *testing.T) {
	run := func(budget int64) ([]Fact, MemUsage, int) {
		g := datagen.TPCH(datagen.TPCHOptions{Scale: 0.3, Dup: 0.3, Seed: 11})
		rules, err := g.Rules()
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(g.D, rules, mlpred.DefaultRegistry(), Options{
			ShareIndexes:   true,
			MemBudgetBytes: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.Deduce()
		gm := e.Gamma()
		facts := append(append([]Fact(nil), gm.Matches...), gm.Validated...)
		sort.Slice(facts, func(i, j int) bool {
			a, b := facts[i], facts[j]
			if a.Kind != b.Kind {
				return a.Kind < b.Kind
			}
			if a.Model != b.Model {
				return a.Model < b.Model
			}
			if a.A != b.A {
				return a.A < b.A
			}
			return a.B < b.B
		})
		return facts, e.Mem(), e.H.Evicted()
	}
	unbounded, _, _ := run(0)
	// Budget: the dataset plus a little headroom, so H is squeezed hard
	// but the run itself fits.
	g := datagen.TPCH(datagen.TPCHOptions{Scale: 0.3, Dup: 0.3, Seed: 11})
	base := g.D.MemBytes()
	bounded, mem, evicted := run(base + base/4)
	if evicted == 0 {
		t.Error("budget did not squeeze H: no deps evicted, equivalence check is vacuous")
	}
	if len(unbounded) == 0 {
		t.Fatal("unbounded run deduced nothing")
	}
	if len(bounded) != len(unbounded) {
		t.Fatalf("budgeted run deduced %d facts, unbounded %d", len(bounded), len(unbounded))
	}
	for i := range bounded {
		if bounded[i] != unbounded[i] {
			t.Fatalf("fact %d differs: budgeted %v, unbounded %v", i, bounded[i], unbounded[i])
		}
	}
	if mem.BudgetBytes == 0 {
		t.Error("budgeted run should report its budget")
	}
	if mem.Total() > mem.BudgetBytes+mem.BudgetBytes/10 {
		t.Errorf("accounted memory %d exceeds budget %d by more than the per-round slack",
			mem.Total(), mem.BudgetBytes)
	}
}
