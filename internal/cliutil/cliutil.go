// Package cliutil carries the observability wiring shared by the dcer
// command-line binaries: the opt-in -telemetry exposition endpoint and
// the leveled progress logger (DCER_LOG / -log).
package cliutil

import (
	"flag"
	"os"

	"dcer/internal/telemetry"
)

// Flags holds the shared observability flags; call Register before
// flag.Parse and Init after.
type Flags struct {
	addr  *string
	level *string
	on    bool
}

// Register installs -telemetry and -log on the default flag set.
func Register() *Flags {
	return &Flags{
		addr: flag.String("telemetry", "",
			"serve /metrics, /debug/dcer and pprof on this address (empty = disabled; :0 picks a port)"),
		level: flag.String("log", "",
			"log level: debug, info, warn, error, off (default $DCER_LOG, else info)"),
	}
}

// Init resolves the flags after flag.Parse: it builds the binary's stderr
// logger and, when -telemetry was given, starts the exposition server over
// telemetry.Default. The returned stop function is safe to defer either way.
func (f *Flags) Init(prefix string) (*telemetry.Logger, func(), error) {
	lvl := telemetry.LogLevelFromEnv()
	if *f.level != "" {
		var err error
		if lvl, err = telemetry.ParseLogLevel(*f.level); err != nil {
			return nil, nil, err
		}
	}
	logg := telemetry.NewLogger(os.Stderr, prefix, lvl)
	stop := func() {}
	if *f.addr != "" {
		srv, err := telemetry.Serve(*f.addr, telemetry.Default)
		if err != nil {
			return nil, nil, err
		}
		f.on = true
		logg.Infof("telemetry: http://%s/metrics (also /debug/dcer, /debug/pprof/)", srv.Addr)
		stop = func() { srv.Close() }
	}
	return logg, stop, nil
}

// Registry returns the registry engines should publish to:
// telemetry.Default when -telemetry is live, nil (all instruments no-op)
// otherwise.
func (f *Flags) Registry() *telemetry.Registry {
	if f.on {
		return telemetry.Default
	}
	return nil
}
